module harness2

go 1.22
