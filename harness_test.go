package harness

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"harness2/internal/mpi"
	"harness2/internal/runnerbox"
	"harness2/internal/wire"
)

// Helpers keeping the facade tests terse.
var mpiOpSum = mpi.OpSum

func tupleStruct(name string, kv ...string) *wire.Struct {
	s := wire.NewStruct(name)
	for i := 0; i+1 < len(kv); i += 2 {
		s.Set(kv[i], kv[i+1])
	}
	return s
}

// TestFacadeEndToEnd exercises the public API exactly as the README
// quickstart does: framework, node, deploy, discover, dial, invoke.
func TestFacadeEndToEnd(t *testing.T) {
	fw := NewFramework(nil)
	defer fw.Close()
	node, err := fw.AddNode("n1", NodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	RegisterBuiltins(node.Container())
	if _, _, err := fw.DeployAndPublish("n1", "MatMul", "mm"); err != nil {
		t.Fatal(err)
	}
	defs, err := fw.Discover("MatMul")
	if err != nil || len(defs) != 1 {
		t.Fatalf("discover: %v %v", defs, err)
	}
	port, err := fw.Dial(defs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer port.Close()
	if port.Kind() != BindJavaObject {
		t.Fatalf("kind = %v", port.Kind())
	}
	out, err := port.Invoke(context.Background(), "getResult",
		Args("mata", []float64{1, 2, 3, 4}, "matb", []float64{5, 6, 7, 8}, "n", int32(2)))
	if err != nil {
		t.Fatal(err)
	}
	res, ok := GetArg(out, "result")
	if !ok {
		t.Fatal("no result")
	}
	want := []float64{19, 22, 43, 50}
	got := res.([]float64)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("result = %v", got)
		}
	}
}

func TestFacadeWSDLRoundTrip(t *testing.T) {
	spec := ServiceSpec{
		Name: "Demo",
		Operations: []OpSpec{{
			Name:   "noop",
			Output: []ParamSpec{{Name: "ok", Type: KindBool}},
		}},
	}
	defs, err := GenerateWSDL(spec, EndpointSet{SOAPAddress: "http://h/demo"})
	if err != nil {
		t.Fatal(err)
	}
	again, err := ParseWSDL(defs.String())
	if err != nil {
		t.Fatal(err)
	}
	if again.Name != "Demo" || len(again.Bindings) != 1 || again.Bindings[0].Kind != BindSOAP {
		t.Fatalf("round trip = %+v", again)
	}
}

func TestFacadeDVM(t *testing.T) {
	net := NewSimNetwork(LAN)
	d := NewDVM("demo", NewHybrid(net, 2))
	for _, name := range []string{"a", "b", "c"} {
		c := NewContainer(ContainerConfig{Name: name})
		RegisterBuiltins(c)
		if err := d.AddNode(c); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Deploy("b", "WSTime", "clk"); err != nil {
		t.Fatal(err)
	}
	entries, err := d.Lookup("a", DVMQuery{Service: "WSTime"})
	if err != nil || len(entries) != 1 || entries[0].Node != "b" {
		t.Fatalf("lookup = %v %v", entries, err)
	}
	out, err := d.Invoke(context.Background(), "c", DVMQuery{Service: "WSTime"}, "getTime", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := GetArg(out, "time"); !ok {
		t.Fatal("no time result")
	}
	if net.Stats().Messages == 0 {
		t.Fatal("coherency generated no traffic")
	}
}

func TestFacadeRegistryServer(t *testing.T) {
	// The registry facade compiles into a full remote round trip in
	// internal/registry tests; here just confirm construction paths.
	reg := NewRegistry()
	if reg.Len() != 0 {
		t.Fatal("fresh registry not empty")
	}
	if NewRegistryServer(reg) == nil || NewRemoteRegistry("http://x/") == nil {
		t.Fatal("constructors broken")
	}
}

func TestNumericKernels(t *testing.T) {
	out, err := MatMul([]float64{2}, []float64{3}, 1)
	if err != nil || out[0] != 6 {
		t.Fatalf("MatMul: %v %v", out, err)
	}
	x, err := LinSolve([]float64{2}, []float64{8}, 1)
	if err != nil || x[0] != 4 {
		t.Fatalf("LinSolve: %v %v", x, err)
	}
}

func TestDeployPolicies(t *testing.T) {
	if Lightweight.Cost() >= Heavyweight.Cost() {
		t.Fatal("policy costs inverted")
	}
	if Heavyweight.Cost() < time.Minute {
		t.Fatal("heavyweight should model minutes of cost")
	}
}

func TestFacadePVMAndMPI(t *testing.T) {
	router := NewPVMRouter(nil)
	var daemons []*PVMDaemon
	for i := 0; i < 2; i++ {
		_, d, err := NewPVMKernel(fmt.Sprintf("fk%d", i), router)
		if err != nil {
			t.Fatal(err)
		}
		daemons = append(daemons, d)
	}
	world, err := NewMPIWorld(router, daemons)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	sum := 0.0
	err = world.Run(4, func(ctx context.Context, c *MPIComm) error {
		total, err := c.AllReduce(mpiOpSum, float64(c.Rank()+1))
		if err != nil {
			return err
		}
		mu.Lock()
		sum = total
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum != 10 {
		t.Fatalf("allreduce = %v", sum)
	}
}

func TestFacadeTupleSpace(t *testing.T) {
	s := NewTupleSpace()
	entry := tupleStruct("Task", "name", "t1")
	if _, err := s.Write(entry, 0); err != nil {
		t.Fatal(err)
	}
	got, found := s.TakeIfExists(tupleStruct("Task"))
	if !found {
		t.Fatal("miss")
	}
	if name, _ := got.Get("name"); name.(string) != "t1" {
		t.Fatalf("name = %v", name)
	}
}

func TestFacadeRunnerBox(t *testing.T) {
	box := NewRunnerBox()
	be, ok := box.Backend().(*runnerbox.LocalBackend)
	if !ok {
		t.Fatalf("backend = %T", box.Backend())
	}
	ran := make(chan struct{})
	be.Register("job", func(ctx context.Context, args []string) error {
		close(ran)
		return nil
	})
	id, _, err := box.Run("job", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := box.Wait(id); err != nil {
		t.Fatal(err)
	}
	<-ran
}
