# HARNESS II reproduction — build/test/bench entry points.
# `make ci` is what .github/workflows/ci.yml runs.

GO ?= go

.PHONY: all build vet lint test race cover bench bench-xdr bench-e15 bench-e16 bench-e17 bench-e18 bench-e19 hbench fuzz chaos-smoke churn-smoke fleet-smoke metacity-smoke ci clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis beyond vet. Fetched on demand (needs network); CI runs
# the same pinned version.
lint:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@2025.1 ./...

test:
	$(GO) test ./...

# Coverage profile plus the per-package summary CI publishes.
cover:
	$(GO) test -cover -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1

# Race-detector pass over the whole tree (timing-shape tests skip
# themselves under the detector's slowdown).
race:
	$(GO) test -race ./...

# All Go microbenchmarks with allocation stats.
bench:
	$(GO) test -run xxx -bench . -benchmem ./...

# The XDR transport benchmarks backing EXPERIMENTS.md E11.
bench-xdr:
	$(GO) test -run xxx -bench 'BenchmarkXDRInvoke' -benchmem -benchtime 2s ./internal/invoke/
	$(GO) test -run xxx -bench . -benchmem -benchtime 2s ./internal/xdr/

# The S34 metacity gate and tables: 0 allocs/op on the cache-hit and
# registry-Get read paths, the deterministic virtual-time macro slice
# inside its availability/p99 envelope, and the E15 throughput/latency
# curves per coherency strategy and resilience policy (EXPERIMENTS.md
# E15). The hot-path microbenchmarks behind the before/after table run
# last.
bench-e15:
	E15_GATE=1 $(GO) test -run TestE15Gate -v ./internal/bench/
	$(GO) run ./cmd/hbench -exp E15
	$(GO) test -run xxx -bench 'BenchmarkHot' -benchmem -benchtime 1s ./internal/registry/

# The S30 data-plane gate and tables: zero-copy codec vs portable
# ablation and shm rings vs XDR loopback (EXPERIMENTS.md E16).
bench-e16:
	E16_GATE=1 $(GO) test -run TestE16Gate -v ./internal/bench/
	$(GO) run ./cmd/hbench -exp E16

# The S31 registry-cluster gate and tables: routed-find p99 vs the
# single-node owner-shard read at 10^5 entries, plus kill/join churn
# (EXPERIMENTS.md E17).
bench-e17:
	E17_GATE=1 $(GO) test -run TestE17Gate -v ./internal/bench/
	$(GO) run ./cmd/hbench -exp E17

# The S32 fleet gate and tables: time-to-N-serving plus recovery-after-
# kill latency against the restart-backoff bound, with zero failed finds
# during recovery (EXPERIMENTS.md E18).
bench-e18:
	E18_GATE=1 $(GO) test -run TestE18Gate -v ./internal/bench/
	$(GO) run ./cmd/hbench -exp E18

# The S33 WAN data-plane gate and tables: adaptive v3 compression vs raw
# through paced LAN/WAN link proxies, plus the loopback v2-vs-v3-raw
# ablation and the negotiation compatibility matrix under the race
# detector (EXPERIMENTS.md E19).
bench-e19:
	E19_GATE=1 $(GO) test -run TestE19Gate -v ./internal/bench/
	$(GO) test -race -run 'TestXDRNegotiation' -v ./internal/invoke/
	$(GO) run ./cmd/hbench -exp E19

# Regenerate the experiment tables (quick parameters; add ARGS=-full).
hbench:
	$(GO) run ./cmd/hbench $(ARGS)

# Short fuzz pass over the v2 frame-header and array decoders, the v3
# compressed-frame header/flags decoder, the v3-vs-v2 framing
# differential, the zero-copy-vs-portable codec differential, the SOAP
# fast-vs-DOM differential, the shm ring record framing, the chaos spec
# parser, the resilience policy validators, the cluster gossip digest
# codec, and the ring rebalance planner, and the fleet
# deployment-descriptor grammar.
fuzz:
	$(GO) test -run xxx -fuzz FuzzReadFrameID -fuzztime 30s ./internal/xdr/
	$(GO) test -run xxx -fuzz FuzzReadFrameV3 -fuzztime 30s ./internal/xdr/
	$(GO) test -run xxx -fuzz FuzzXDRV3Differential -fuzztime 30s ./internal/xdr/
	$(GO) test -run xxx -fuzz FuzzDecoderArrays -fuzztime 30s ./internal/xdr/
	$(GO) test -run xxx -fuzz FuzzXDRZeroCopyDifferential -fuzztime 30s ./internal/xdr/
	$(GO) test -run xxx -fuzz FuzzFastDecodeDifferential -fuzztime 30s ./internal/soap/
	$(GO) test -run xxx -fuzz FuzzShmRingRecord -fuzztime 30s ./internal/shmring/
	$(GO) test -run xxx -fuzz FuzzParse -fuzztime 30s ./internal/resilience/chaos/
	$(GO) test -run xxx -fuzz FuzzPolicyOptions -fuzztime 30s ./internal/resilience/
	$(GO) test -run xxx -fuzz FuzzGossipDigest -fuzztime 30s ./internal/registry/cluster/
	$(GO) test -run xxx -fuzz FuzzRingPlan -fuzztime 30s ./internal/registry/cluster/
	$(GO) test -run xxx -fuzz FuzzParseDescriptor -fuzztime 30s ./internal/fleet/

# The deterministic chaos sweep at CI smoke size (seconds).
chaos-smoke:
	$(GO) run ./cmd/hbench -exp E13,E13b -short

# The cluster churn smoke: kill one of three peers (and absorb a
# joiner) at a small entry population, asserting zero failed finds.
churn-smoke:
	$(GO) test -run TestE17ChurnSmoke -v ./internal/bench/
	$(GO) test -race ./internal/registry/cluster/

# The fleet smoke: a daemon supervising real HARNESS II nodes over the
# HTTP control protocol; kill one mid-traffic and assert automatic
# restart, re-enrollment, and lease recovery with zero failed finds.
fleet-smoke:
	$(GO) test -run 'TestE18FleetSmoke|TestE18RecoverySmoke' -v -count=1 ./internal/bench/
	$(GO) test -race ./internal/fleet/

# The metacity smoke: both E15 modes race-enabled at a small client
# count (the always-on slice), plus the env-gated alloc/envelope gate.
metacity-smoke:
	$(GO) test -race -run 'TestE15Smoke|TestE15SimnetDeterminism' -v ./internal/bench/
	E15_GATE=1 $(GO) test -run TestE15Gate -v ./internal/bench/

ci: vet build race chaos-smoke churn-smoke fleet-smoke metacity-smoke

clean:
	$(GO) clean ./...
