// Command hregistry runs a standalone HARNESS II lookup service: a
// UDDI-style registry exposed as a SOAP web service. Nodes publish their
// component WSDL here; any SOAP-aware client can discover them.
//
// Usage:
//
//	hregistry -addr 127.0.0.1:8900
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"harness2/internal/registry"
	"harness2/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8900", "listen address")
	flag.Parse()

	reg := registry.New()
	for _, tm := range registry.WellKnownTModels() {
		if err := reg.PublishTModel(tm); err != nil {
			log.Fatalf("hregistry: %v", err)
		}
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("hregistry: %v", err)
	}
	fmt.Printf("hregistry: serving SOAP registry at http://%s/\n", ln.Addr())
	fmt.Printf("hregistry: metrics at http://%s/metrics\n", ln.Addr())
	mux := http.NewServeMux()
	// The observability plane (telemetry S27): find/publish latency and
	// the live-lease gauge land in the process-default registry.
	mux.Handle("/metrics", telemetry.Handler(telemetry.Or(nil)))
	mux.Handle("/", registry.NewServer(reg))
	srv := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Fatal(srv.Serve(ln))
}
