// Command hregistry runs a standalone HARNESS II lookup service: a
// UDDI-style registry exposed as a SOAP web service. Nodes publish their
// component WSDL here; any SOAP-aware client can discover them.
//
// Single-node usage:
//
//	hregistry -addr 127.0.0.1:8900
//
// Cluster usage (S31): N processes form one logical registry — a
// consistent-hash ring with lease-scoped replication and gossip
// membership. Every peer serves the full public SOAP surface; clients
// may bootstrap from any subset of peers.
//
//	hregistry -addr 127.0.0.1:8900 -id r1 \
//	    -peers r2=http://127.0.0.1:8901,r3=http://127.0.0.1:8902 \
//	    -replicas 2
//
// A late joiner names any live peer with -join:
//
//	hregistry -addr 127.0.0.1:8903 -id r4 -replicas 2 \
//	    -join http://127.0.0.1:8900
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"harness2/internal/profiling"
	"harness2/internal/registry"
	"harness2/internal/registry/cluster"
	"harness2/internal/soap"
	"harness2/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8900", "listen address")
	id := flag.String("id", "", "cluster node ID (default: the listen address)")
	peers := flag.String("peers", "", "static cluster peers as id=url,id=url")
	join := flag.String("join", "", "URL of a live peer to learn membership from")
	replicas := flag.Int("replicas", 2, "copies per entry in cluster mode (owner + successors)")
	gossipEvery := flag.Duration("gossip", 500*time.Millisecond, "gossip round interval in cluster mode")
	compress := flag.Bool("compress", true, "gzip SOAP responses for clients that send Accept-Encoding: gzip (S33)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (empty = off)")
	pprofMutex := flag.Int("pprof-mutex", 5, "mutex profile fraction when -pprof is set (0 = off)")
	pprofBlock := flag.Int("pprof-block", 10000, "block profile rate in ns when -pprof is set (0 = off)")
	flag.Parse()

	if *pprofAddr != "" {
		paddr, err := profiling.Serve(*pprofAddr, *pprofMutex, *pprofBlock)
		if err != nil {
			log.Fatalf("hregistry: -pprof: %v", err)
		}
		fmt.Printf("hregistry: pprof at http://%s/debug/pprof/ (mutex 1/%d, block %dns)\n",
			paddr, *pprofMutex, *pprofBlock)
	}

	reg := registry.New()
	for _, tm := range registry.WellKnownTModels() {
		if err := reg.PublishTModel(tm); err != nil {
			log.Fatalf("hregistry: %v", err)
		}
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("hregistry: %v", err)
	}
	selfURL := "http://" + ln.Addr().String()

	var handler http.Handler
	if *peers != "" || *join != "" {
		nodeID := *id
		if nodeID == "" {
			nodeID = ln.Addr().String()
		}
		seed, err := seedPeers(*peers, *join)
		if err != nil {
			log.Fatalf("hregistry: %v", err)
		}
		node := cluster.NewNode(cluster.Config{
			ID:       nodeID,
			Addr:     selfURL,
			Seed:     seed,
			Replicas: *replicas,
			Caller:   &cluster.HTTPCaller{},
			Store:    reg,
		})
		handler = cluster.NewServer(node)
		go func() {
			for range time.Tick(*gossipEvery) {
				node.Step(context.Background())
			}
		}()
		fmt.Printf("hregistry: cluster node %s, %d seed peers, R=%d\n",
			nodeID, len(seed), *replicas)
	} else {
		handler = registry.NewServer(reg)
	}

	fmt.Printf("hregistry: serving SOAP registry at %s/\n", selfURL)
	fmt.Printf("hregistry: metrics at %s/metrics\n", selfURL)
	mux := http.NewServeMux()
	// The observability plane (telemetry S27): find/publish latency, the
	// live-lease gauge, and — in cluster mode — the ring/membership
	// gauges and rebalance counters land in the process-default registry.
	mux.Handle("/metrics", telemetry.Handler(telemetry.Or(nil)))
	if *compress {
		// WAN-friendly SOAP: large find/publish response envelopes gzip
		// well; the floor inside the middleware keeps probes identity.
		handler = soap.Gzip(handler)
	}
	mux.Handle("/", handler)
	srv := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Fatal(srv.Serve(ln))
}

// seedPeers builds the initial membership from the -peers list and, when
// -join names a live peer, that peer's current member list.
func seedPeers(peersFlag, joinURL string) ([]cluster.PeerState, error) {
	var seed []cluster.PeerState
	if peersFlag != "" {
		for _, kv := range strings.Split(peersFlag, ",") {
			id, url, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok || id == "" || url == "" {
				return nil, fmt.Errorf("bad -peers element %q (want id=url)", kv)
			}
			seed = append(seed, cluster.PeerState{ID: id, Addr: url})
		}
	}
	if joinURL != "" {
		ids, addrs, err := memberList(joinURL)
		if err != nil {
			return nil, fmt.Errorf("joining via %s: %w", joinURL, err)
		}
		known := make(map[string]bool, len(seed))
		for _, p := range seed {
			known[p.ID] = true
		}
		for i := range ids {
			if !known[ids[i]] {
				seed = append(seed, cluster.PeerState{ID: ids[i], Addr: addrs[i]})
			}
		}
	}
	return seed, nil
}

// memberList asks a live peer for the cluster's current membership.
func memberList(url string) (ids, addrs []string, err error) {
	var cl soap.Client
	out, err := cl.CallRemote(url, &soap.Call{Method: cluster.OpMembers})
	if err != nil {
		return nil, nil, err
	}
	for _, p := range out {
		ss, ok := p.Value.([]string)
		if !ok {
			continue
		}
		switch p.Name {
		case "ids":
			ids = ss
		case "addrs":
			addrs = ss
		}
	}
	if len(ids) != len(addrs) {
		return nil, nil, fmt.Errorf("malformed member list (%d ids, %d addrs)", len(ids), len(addrs))
	}
	return ids, addrs, nil
}
