package main

import (
	"testing"
	"time"

	"harness2/internal/container"
	"harness2/internal/core"
	"harness2/internal/registry"
)

// TestShutdownReleasesRegistrations is the regression test for the
// SIGTERM path: a node that published both persistent and leased
// registrations must withdraw every one of them on graceful shutdown —
// previously entries were simply abandoned, so a politely terminated
// node kept answering discovery until an operator cleaned up.
func TestShutdownReleasesRegistrations(t *testing.T) {
	c := container.New(container.Config{Name: "n1"})
	core.RegisterBuiltins(c)
	persistent := registry.New()
	leasedReg := registry.New()

	inst1, _, err := c.Deploy("MatMul", "m1")
	if err != nil {
		t.Fatal(err)
	}
	inst2, _, err := c.Deploy("WSTime", "w1")
	if err != nil {
		t.Fatal(err)
	}
	// One persistent, one leased — the two hnode publication modes.
	if _, err := publishInstance(c, inst1.ID, persistent, nil, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := publishInstance(c, inst2.ID, leasedReg, leasedReg, time.Second, 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if persistent.Len() != 1 || leasedReg.Len() != 1 {
		t.Fatalf("published %d persistent, %d leased; want 1 each", persistent.Len(), leasedReg.Len())
	}
	key2 := "n1::" + inst2.ID
	if e, ok := leasedReg.Get(key2); !ok || e.LeaseRemaining <= 0 {
		t.Fatalf("leased entry = %+v ok=%v, want live lease at deterministic key", e, ok)
	}

	if n := releaseRegistrations(c); n != 2 {
		t.Fatalf("released %d registrations, want 2", n)
	}
	if persistent.Len() != 0 {
		t.Fatal("persistent registration left behind after shutdown")
	}
	if leasedReg.Len() != 0 {
		t.Fatal("leased registration left behind after shutdown (lease keeper not stopped)")
	}
	// Idempotent: a second release finds nothing.
	if n := releaseRegistrations(c); n != 0 {
		t.Fatalf("second release withdrew %d registrations, want 0", n)
	}
}

// TestPublishInstanceLeaseRenewal: the leased mode outlives its TTL
// while the node runs (the keeper renews), unlike a lease left to lapse.
func TestPublishInstanceLeaseRenewal(t *testing.T) {
	c := container.New(container.Config{Name: "n2"})
	core.RegisterBuiltins(c)
	reg := registry.New()
	inst, _, err := c.Deploy("MatMul", "m1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := publishInstance(c, inst.ID, reg, reg, 60*time.Millisecond, 15*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(180 * time.Millisecond)
	for time.Now().Before(deadline) {
		if reg.Len() != 1 {
			t.Fatal("leased registration lapsed while the node was alive")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if n := releaseRegistrations(c); n != 1 {
		t.Fatalf("released %d, want 1", n)
	}
}
