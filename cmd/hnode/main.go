// Command hnode runs one HARNESS II host: a component container with live
// SOAP/HTTP and XDR endpoints, the built-in component classes installed,
// and (optionally) instances deployed and published into a registry.
//
// Usage:
//
//	hnode -name n1 -deploy MatMul,WSTime -registry http://127.0.0.1:8900/
//
// The node prints each deployed instance's WSDL endpoints, then serves
// until interrupted.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"harness2/internal/container"
	"harness2/internal/core"
	"harness2/internal/dvm"
	"harness2/internal/invoke"
	"harness2/internal/profiling"
	"harness2/internal/registry"
	"harness2/internal/resilience"
	"harness2/internal/resilience/chaos"
	"harness2/internal/simnet"
	"harness2/internal/wire"
)

func main() {
	var (
		name     = flag.String("name", "node1", "node (container) name")
		addr     = flag.String("addr", "127.0.0.1:0", "SOAP listen address")
		deploy   = flag.String("deploy", "MatMul,WSTime,LinSolve", "comma-separated component classes to deploy")
		regURL   = flag.String("registry", "", "SOAP registry endpoint (empty = private node)")
		cacheTTL = flag.Duration("discovery-ttl", 30*time.Second, "client-side discovery cache TTL for registry lookups (0 disables caching)")
		negTTL   = flag.Duration("discovery-neg-ttl", 0, "discovery cache TTL for misses, kept shorter than -discovery-ttl so unpublished names reappear fast while hot-miss storms still coalesce (0 = discovery-ttl/4)")
		leaseDur = flag.Duration("lease", 0, "registration lease TTL; a crashed node's entries expire instead of dangling (0 = persistent registration)")
		leaseRen = flag.Duration("lease-renew", 0, "lease renewal interval (0 = lease/4)")
		manage   = flag.Bool("manage", true, "deploy the remote-management component")
		printDoc = flag.Bool("wsdl", false, "print each instance's WSDL document")
		prime    = flag.Bool("prime", true, "run startup self-invocations so /metrics exposes every instrument family")
		noShm    = flag.Bool("no-shm", false, "do not expose the same-host shared-memory binding")
		compress = flag.String("compress", "auto", `XDR wire compression: auto|off|on|adaptive[:codec] (S33)`)

		// Resilience plane (S28): admission control + fault injection.
		maxInflight = flag.Int("max-inflight", 0, "max concurrent invocations before shedding (0 = unlimited)")
		maxQueue    = flag.Int("max-queue", 0, "admission queue depth beyond the in-flight limit")
		queueWait   = flag.Duration("queue-wait", 0, "max time a queued invocation waits before shedding")
		chaosSpec   = flag.String("chaos", "", `chaos rule spec, e.g. "error:0.1@container" or "latency:0.05:20ms" (empty = off)`)
		chaosSeed   = flag.Int64("chaos-seed", 1, "seed for the deterministic chaos schedule")

		// Profiling plane (S34): contention-visible pprof on demand.
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (empty = off)")
		pprofMutex = flag.Int("pprof-mutex", 5, "mutex profile fraction when -pprof is set (0 = off)")
		pprofBlock = flag.Int("pprof-block", 10000, "block profile rate in ns when -pprof is set (0 = off)")
	)
	flag.Parse()

	if *pprofAddr != "" {
		addr, err := profiling.Serve(*pprofAddr, *pprofMutex, *pprofBlock)
		if err != nil {
			log.Fatalf("hnode: -pprof: %v", err)
		}
		fmt.Printf("hnode: pprof at http://%s/debug/pprof/ (mutex 1/%d, block %dns)\n",
			addr, *pprofMutex, *pprofBlock)
	}

	opts := core.NodeOptions{Addr: *addr, DisableShm: *noShm}
	cpol, err := invoke.ParseCompressPolicy(*compress)
	if err != nil {
		log.Fatalf("hnode: -compress: %v", err)
	}
	opts.Compress = cpol
	if adv := cpol.Advertised(); adv != "" {
		fmt.Printf("hnode: XDR wire compression %s (codec %s)\n", cpol.Mode, adv)
	}
	if *maxInflight > 0 {
		opts.Admission = resilience.NewLimiter(*maxInflight, *maxQueue, *queueWait)
		fmt.Printf("hnode: admission control: %d in flight, %d queued (wait %v)\n",
			*maxInflight, *maxQueue, *queueWait)
	}
	if *chaosSpec != "" {
		inj, err := chaos.NewFromSpec(*chaosSeed, *chaosSpec)
		if err != nil {
			log.Fatalf("hnode: -chaos: %v", err)
		}
		opts.Chaos = inj
		fmt.Printf("hnode: chaos armed (seed %d): %s\n", *chaosSeed, *chaosSpec)
	}
	node, err := core.NewNode(*name, opts)
	if err != nil {
		log.Fatalf("hnode: %v", err)
	}
	defer node.Close()
	core.RegisterBuiltins(node.Container())
	if *manage {
		node.Container().RegisterFactory(container.ManagerClass, container.ManagerFactory())
		if _, _, err := node.Container().Deploy(container.ManagerClass, "manager"); err != nil {
			log.Fatalf("hnode: manager: %v", err)
		}
		fmt.Printf("hnode: remote management at %s/manager\n", node.SOAPBase())
	}

	var lookup registry.Lookup
	var leased container.LeasedRegistry
	if *regURL != "" {
		remote := registry.NewRemote(*regURL)
		lookup = remote
		if *leaseDur > 0 {
			leased = remote
			fmt.Printf("hnode: leased registrations (ttl %v)\n", *leaseDur)
		}
		if *cacheTTL > 0 {
			// Memoize discovery reads so steady-state lookups skip the
			// SOAP round trip; TTLs are clamped to registration leases
			// and writes through the cache invalidate it (DESIGN.md S29).
			cache := registry.NewCache(lookup, *cacheTTL)
			eff := *cacheTTL / 4
			if *negTTL > 0 {
				cache.SetNegativeTTL(*negTTL)
				eff = *negTTL
			}
			lookup = cache
			fmt.Printf("hnode: discovery cache on (ttl %v, neg-ttl %v)\n", *cacheTTL, eff)
		}
	}

	fmt.Printf("hnode: %s soap=%s xdr=%s shm=%s\n", node.Name(), node.SOAPBase(), node.XDRAddr(), node.ShmAddr())
	fmt.Printf("hnode: metrics at %s/metrics\n", strings.TrimSuffix(node.SOAPBase(), "/services"))
	for _, class := range strings.Split(*deploy, ",") {
		class = strings.TrimSpace(class)
		if class == "" {
			continue
		}
		inst, _, err := node.Container().Deploy(class, "")
		if err != nil {
			log.Fatalf("hnode: deploy %s: %v", class, err)
		}
		defs, err := node.Container().WSDLFor(inst.ID)
		if err != nil {
			log.Fatalf("hnode: wsdl %s: %v", inst.ID, err)
		}
		if lookup != nil {
			key, err := publishInstance(node.Container(), inst.ID, lookup, leased, *leaseDur, *leaseRen)
			if err != nil {
				log.Fatalf("hnode: publish %s: %v", inst.ID, err)
			}
			fmt.Printf("hnode: deployed %s published as %s\n", inst.ID, key)
		} else {
			fmt.Printf("hnode: deployed %s (private)\n", inst.ID)
		}
		if *printDoc {
			fmt.Println(defs.String())
		}
	}

	if *prime {
		primeMetrics(node)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	// Graceful shutdown: deregister everywhere and release leases so the
	// registry never serves this node's endpoints after it is gone. (A
	// crash skips this — that is what leases are for.)
	n := releaseRegistrations(node.Container())
	fmt.Printf("hnode: shutting down (released %d registrations)\n", n)
}

// publishInstance registers one instance in the lookup service: leased
// when lease > 0 (the keeper renews until shutdown), persistent
// otherwise.
func publishInstance(c *container.Container, id string, lookup registry.Lookup, leased container.LeasedRegistry, lease, renew time.Duration) (string, error) {
	if leased != nil && lease > 0 {
		if renew <= 0 || renew >= lease {
			renew = lease / 4
		}
		return c.ExposeLeased(id, leased, lease, renew)
	}
	return c.Expose(id, lookup)
}

// releaseRegistrations withdraws every published instance from every
// registry it was exposed in, stopping lease keepers; it returns the
// number of registrations released.
func releaseRegistrations(c *container.Container) int {
	total := 0
	for _, inst := range c.Instances() {
		n, err := c.UnexposeEverywhere(inst.ID)
		if err != nil {
			fmt.Printf("hnode: release %s: %v\n", inst.ID, err)
		}
		total += n
	}
	return total
}

// primeMetrics exercises every observability surface once, so a freshly
// started node's /metrics already carries the per-binding invoke latency
// families and the DVM coherency counters rather than an empty page: one
// self-invocation of MatMul.getResult through each advertised binding
// (MatMul is numeric, so it exposes every binding including XDR and shm —
// WSTime's string result would exclude both), and one enroll/deploy/lookup
// round-trip through a
// two-member DVM (the node plus a shadow peer on a simulated LAN fabric).
func primeMetrics(node *core.Node) {
	c := node.Container()
	var id string
	for _, in := range c.Instances() {
		if in.Class == "MatMul" {
			id = in.ID
			break
		}
	}
	if id != "" {
		if defs, err := c.WSDLFor(id); err == nil {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			args := wire.Args("mata", []float64{1}, "matb", []float64{1}, "n", int32(1))
			ports := invoke.OpenAll(defs, invoke.Options{
				LocalContainers: []*container.Container{c},
			})
			for _, p := range ports {
				_, _ = p.Invoke(ctx, "getResult", args)
				_ = p.Close()
			}
			fmt.Printf("hnode: primed %d invoke bindings\n", len(ports))
		}
	}

	peer := container.New(container.Config{Name: node.Name() + "-peer"})
	core.RegisterBuiltins(peer)
	d := dvm.New(node.Name(), dvm.NewFullSync(simnet.New(simnet.LAN)))
	if err := d.AddNode(c); err != nil {
		return
	}
	if err := d.AddNode(peer); err != nil {
		return
	}
	if _, err := d.Deploy(peer.Name(), "WSTime", "wstime-peer"); err != nil {
		return
	}
	if _, err := d.Lookup(node.Name(), dvm.Query{Service: "WSTime"}); err != nil {
		return
	}
	fmt.Printf("hnode: primed dvm coherency metrics (%s)\n", d.Coherency().Name())
}
