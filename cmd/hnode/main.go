// Command hnode runs one HARNESS II host: a component container with live
// SOAP/HTTP and XDR endpoints, the built-in component classes installed,
// and (optionally) instances deployed and published into a registry.
//
// Usage:
//
//	hnode -name n1 -deploy MatMul,WSTime -registry http://127.0.0.1:8900/
//
// The node prints each deployed instance's WSDL endpoints, then serves
// until interrupted.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"harness2/internal/container"
	"harness2/internal/core"
	"harness2/internal/registry"
)

func main() {
	var (
		name     = flag.String("name", "node1", "node (container) name")
		addr     = flag.String("addr", "127.0.0.1:0", "SOAP listen address")
		deploy   = flag.String("deploy", "MatMul,WSTime,LinSolve", "comma-separated component classes to deploy")
		regURL   = flag.String("registry", "", "SOAP registry endpoint (empty = private node)")
		manage   = flag.Bool("manage", true, "deploy the remote-management component")
		printDoc = flag.Bool("wsdl", false, "print each instance's WSDL document")
	)
	flag.Parse()

	node, err := core.NewNode(*name, core.NodeOptions{Addr: *addr})
	if err != nil {
		log.Fatalf("hnode: %v", err)
	}
	defer node.Close()
	core.RegisterBuiltins(node.Container())
	if *manage {
		node.Container().RegisterFactory(container.ManagerClass, container.ManagerFactory())
		if _, _, err := node.Container().Deploy(container.ManagerClass, "manager"); err != nil {
			log.Fatalf("hnode: manager: %v", err)
		}
		fmt.Printf("hnode: remote management at %s/manager\n", node.SOAPBase())
	}

	var lookup registry.Lookup
	if *regURL != "" {
		lookup = registry.NewRemote(*regURL)
	}

	fmt.Printf("hnode: %s soap=%s xdr=%s\n", node.Name(), node.SOAPBase(), node.XDRAddr())
	for _, class := range strings.Split(*deploy, ",") {
		class = strings.TrimSpace(class)
		if class == "" {
			continue
		}
		inst, _, err := node.Container().Deploy(class, "")
		if err != nil {
			log.Fatalf("hnode: deploy %s: %v", class, err)
		}
		defs, err := node.Container().WSDLFor(inst.ID)
		if err != nil {
			log.Fatalf("hnode: wsdl %s: %v", inst.ID, err)
		}
		if lookup != nil {
			key, err := node.Container().Expose(inst.ID, lookup)
			if err != nil {
				log.Fatalf("hnode: publish %s: %v", inst.ID, err)
			}
			fmt.Printf("hnode: deployed %s published as %s\n", inst.ID, key)
		} else {
			fmt.Printf("hnode: deployed %s (private)\n", inst.ID)
		}
		if *printDoc {
			fmt.Println(defs.String())
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("hnode: shutting down")
}
