// Command hclient is a generic HARNESS II service client: it discovers a
// service (through a SOAP registry or a node's WSIL inspection document),
// prints its description, and optionally invokes an operation with
// parameters given on the command line.
//
// Usage:
//
//	hclient -registry http://127.0.0.1:8900/ -service WSTime -op getTime
//	hclient -wsil http://127.0.0.1:8080/inspection.wsil -service MatMul \
//	        -op getResult -arg mata=1,2,3,4 -arg matb=5,6,7,8 -arg n:int=2
//
// Arguments are name=value pairs; values parse as float64 arrays when they
// contain a comma, float64 otherwise. A ":int", ":long", ":string" or
// ":bool" suffix on the name forces the type.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"
	"time"

	"harness2/internal/invoke"
	"harness2/internal/registry"
	"harness2/internal/wire"
	"harness2/internal/wsdl"
)

type argList []string

func (a *argList) String() string     { return strings.Join(*a, " ") }
func (a *argList) Set(s string) error { *a = append(*a, s); return nil }

func main() {
	var (
		regURL  = flag.String("registry", "", "SOAP registry endpoint")
		wsilURL = flag.String("wsil", "", "WSIL inspection document URL")
		service = flag.String("service", "", "service name to discover")
		op      = flag.String("op", "", "operation to invoke (empty: just print the WSDL)")
		binding = flag.String("binding", "auto", "binding preference: auto | soap | xdr | shm | http")
		timeout = flag.Duration("timeout", 30*time.Second, "invocation timeout")
	)
	var rawArgs argList
	flag.Var(&rawArgs, "arg", "operation argument name[:type]=value (repeatable)")
	flag.Parse()

	defs, err := discover(*regURL, *wsilURL, *service)
	if err != nil {
		log.Fatalf("hclient: %v", err)
	}
	fmt.Printf("--- %s ---\n%s\n", defs.Name, defs.String())
	if *op == "" {
		return
	}

	opts := invoke.Options{}
	switch *binding {
	case "auto":
	case "soap":
		opts.Forbid = []wsdl.BindingKind{wsdl.BindXDR, wsdl.BindShm, wsdl.BindHTTP, wsdl.BindJavaObject}
	case "xdr":
		opts.Forbid = []wsdl.BindingKind{wsdl.BindSOAP, wsdl.BindShm, wsdl.BindHTTP, wsdl.BindJavaObject}
	case "shm":
		opts.Forbid = []wsdl.BindingKind{wsdl.BindSOAP, wsdl.BindXDR, wsdl.BindHTTP, wsdl.BindJavaObject}
	case "http":
		opts.Forbid = []wsdl.BindingKind{wsdl.BindSOAP, wsdl.BindXDR, wsdl.BindShm, wsdl.BindJavaObject}
	default:
		log.Fatalf("hclient: unknown binding %q", *binding)
	}
	port, err := invoke.Dial(defs, opts)
	if err != nil {
		log.Fatalf("hclient: %v", err)
	}
	defer port.Close()

	args, err := parseArgs(rawArgs)
	if err != nil {
		log.Fatalf("hclient: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	start := time.Now()
	out, err := port.Invoke(ctx, *op, args)
	if err != nil {
		log.Fatalf("hclient: invoke %s: %v", *op, err)
	}
	fmt.Printf("invoked %s over the %v binding in %v\n", *op, port.Kind(), time.Since(start))
	for _, o := range out {
		fmt.Printf("  %s = %v\n", o.Name, truncate(fmt.Sprintf("%v", o.Value), 120))
	}
}

func discover(regURL, wsilURL, service string) (*wsdl.Definitions, error) {
	if service == "" {
		return nil, fmt.Errorf("a -service name is required")
	}
	switch {
	case regURL != "":
		remote := registry.NewRemote(regURL)
		entries := remote.FindByName(service)
		if len(entries) == 0 {
			return nil, fmt.Errorf("service %q not found in registry %s", service, regURL)
		}
		return wsdl.ParseString(entries[0].WSDL)
	case wsilURL != "":
		all, err := registry.DiscoverViaWSIL(wsilURL)
		if err != nil {
			return nil, err
		}
		for _, d := range all {
			if d.Name == service {
				return d, nil
			}
		}
		return nil, fmt.Errorf("service %q not in inspection document %s", service, wsilURL)
	}
	return nil, fmt.Errorf("either -registry or -wsil is required")
}

func parseArgs(raw []string) ([]wire.Arg, error) {
	var out []wire.Arg
	for _, r := range raw {
		name, value, ok := strings.Cut(r, "=")
		if !ok {
			return nil, fmt.Errorf("argument %q is not name=value", r)
		}
		typ := ""
		if n, t, ok := strings.Cut(name, ":"); ok {
			name, typ = n, t
		}
		v, err := parseValue(typ, value)
		if err != nil {
			return nil, fmt.Errorf("argument %q: %w", name, err)
		}
		out = append(out, wire.Arg{Name: name, Value: v})
	}
	return out, nil
}

func parseValue(typ, value string) (any, error) {
	switch typ {
	case "string":
		return value, nil
	case "bool":
		return strconv.ParseBool(value)
	case "int":
		v, err := strconv.ParseInt(value, 10, 32)
		return int32(v), err
	case "long":
		return strconv.ParseInt(value, 10, 64)
	case "double", "":
		if strings.Contains(value, ",") {
			parts := strings.Split(value, ",")
			arr := make([]float64, len(parts))
			for i, p := range parts {
				v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
				if err != nil {
					return nil, err
				}
				arr[i] = v
			}
			return arr, nil
		}
		if typ == "" {
			// Untyped scalars default to double, matching the numeric
			// bias of the XDR binding.
			if v, err := strconv.ParseFloat(value, 64); err == nil {
				return v, nil
			}
			return value, nil // fall back to string
		}
		return strconv.ParseFloat(value, 64)
	}
	return nil, fmt.Errorf("unknown type %q", typ)
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}
