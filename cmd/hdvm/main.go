// Command hdvm demonstrates the Distributed Virtual Machine layer: it
// assembles an in-process DVM of N member containers under a chosen
// state-coherency strategy, deploys components across the members, runs
// unified-namespace lookups and an invocation, and reports the traffic
// the coherency protocol generated on the simulated fabric.
//
// Usage:
//
//	hdvm -nodes 8 -coherency full-sync -deploy MatMul=4 -query MatMul
//	hdvm -nodes 32 -coherency hybrid -k 4 -link wan
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"harness2/internal/container"
	"harness2/internal/core"
	"harness2/internal/dvm"
	"harness2/internal/simnet"
	"harness2/internal/telemetry"
	"harness2/internal/wire"
)

func main() {
	var (
		nodes     = flag.Int("nodes", 4, "number of member containers")
		coherency = flag.String("coherency", "full-sync", "full-sync | decentralized | hybrid")
		k         = flag.Int("k", 4, "hybrid neighbourhood size")
		link      = flag.String("link", "lan", "fabric link class: lan | wan")
		deploys   = flag.String("deploy", "MatMul=2,WSTime=1", "class=count pairs to deploy round-robin")
		query     = flag.String("query", "MatMul", "service name to look up from every node")
		status    = flag.Bool("status", false, "dump the telemetry snapshot (counters, gauges, histograms, spans) before exit")
	)
	flag.Parse()

	linkCfg := simnet.LAN
	if *link == "wan" {
		linkCfg = simnet.WAN
	}
	net := simnet.New(linkCfg)
	var coh dvm.Coherency
	switch *coherency {
	case "full-sync":
		coh = dvm.NewFullSync(net)
	case "decentralized":
		coh = dvm.NewDecentralized(net)
	case "hybrid":
		coh = dvm.NewHybrid(net, *k)
	default:
		log.Fatalf("hdvm: unknown coherency %q", *coherency)
	}

	d := dvm.New("hdvm", coh)
	names := make([]string, *nodes)
	for i := range names {
		names[i] = fmt.Sprintf("n%d", i)
		c := container.New(container.Config{Name: names[i]})
		core.RegisterBuiltins(c)
		if err := d.AddNode(c); err != nil {
			log.Fatalf("hdvm: %v", err)
		}
	}
	fmt.Printf("hdvm: %d nodes under %s on %s fabric\n", *nodes, coh.Name(), *link)

	i := 0
	for _, pair := range strings.Split(*deploys, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		class, countStr, ok := strings.Cut(pair, "=")
		count := 1
		if ok {
			var err error
			count, err = strconv.Atoi(countStr)
			if err != nil {
				log.Fatalf("hdvm: bad deploy spec %q", pair)
			}
		}
		for j := 0; j < count; j++ {
			node := names[i%len(names)]
			inst, err := d.Deploy(node, class, "")
			if err != nil {
				log.Fatalf("hdvm: deploy %s on %s: %v", class, node, err)
			}
			fmt.Printf("hdvm: deployed %s/%s\n", node, inst.ID)
			i++
		}
	}

	fmt.Println("hdvm: status:")
	for _, st := range d.Status() {
		fmt.Printf("  %-6s %2d instances  classes=%v\n", st.Node, st.Instances, st.Classes)
	}

	if *query != "" {
		for _, from := range []string{names[0], names[len(names)-1]} {
			entries, err := d.Lookup(from, dvm.Query{Service: *query})
			if err != nil {
				log.Fatalf("hdvm: lookup: %v", err)
			}
			fmt.Printf("hdvm: lookup %q from %s -> %d entries\n", *query, from, len(entries))
		}
		// Invoke the first match once through the unified namespace.
		if *query == "MatMul" {
			out, err := d.Invoke(context.Background(), names[0], dvm.Query{Service: "MatMul"},
				"getResult", wire.Args("mata", []float64{1, 2, 3, 4}, "matb", []float64{5, 6, 7, 8}, "n", int32(2)))
			if err != nil {
				log.Fatalf("hdvm: invoke: %v", err)
			}
			res, _ := wire.GetArg(out, "result")
			fmt.Printf("hdvm: MatMul([[1,2],[3,4]],[[5,6],[7,8]]) = %v\n", res)
		}
	}

	st := net.Stats()
	fmt.Printf("hdvm: fabric traffic: %d messages, %s; modelled coherency time %s\n",
		st.Messages, byteCount(st.Bytes), d.VirtualTime())

	if *status {
		// The S27 snapshot view: every instrument the run charged to the
		// process-default registry, including the per-op coherency series.
		fmt.Println("hdvm: telemetry snapshot:")
		if err := telemetry.Or(nil).WriteSnapshot(os.Stdout); err != nil {
			log.Fatalf("hdvm: snapshot: %v", err)
		}
	}
}

func byteCount(n int64) string {
	switch {
	case n < 1<<10:
		return fmt.Sprintf("%dB", n)
	case n < 1<<20:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	}
}
