// Command hbench regenerates the HARNESS II experiment tables (E1–E19 in
// DESIGN.md): every figure-scenario and quantified design claim of the
// paper, plus the plane audits (telemetry E12, resilience E13, SOAP fast
// path E14, metacity macro-load E15, data plane E16/E19, registry
// cluster E17, fleet E18), printed as aligned text tables.
//
// Usage:
//
//	hbench                  # run every experiment with quick parameters
//	hbench -exp E2,E5       # selected experiments
//	hbench -full            # report-quality sweeps (slower)
//	hbench -short           # CI smoke sizes (seconds)
//	hbench -list            # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"harness2/internal/bench"
	"harness2/internal/profiling"
)

func main() {
	var (
		exps  = flag.String("exp", "all", "comma-separated experiment IDs (E1..E19) or 'all'")
		full  = flag.Bool("full", false, "run the full (report-quality) parameter sweeps")
		short = flag.Bool("short", false, "run CI smoke-sized sweeps (wins over -full)")
		list  = flag.Bool("list", false, "list experiment IDs and exit")

		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address while experiments run (empty = off)")
		pprofMutex = flag.Int("pprof-mutex", 5, "mutex profile fraction when -pprof is set (0 = off)")
		pprofBlock = flag.Int("pprof-block", 10000, "block profile rate in ns when -pprof is set (0 = off)")
	)
	flag.Parse()

	if *pprofAddr != "" {
		addr, err := profiling.Serve(*pprofAddr, *pprofMutex, *pprofBlock)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hbench: -pprof: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("hbench: pprof at http://%s/debug/pprof/ (mutex 1/%d, block %dns)\n",
			addr, *pprofMutex, *pprofBlock)
	}

	if *list {
		for _, id := range bench.IDs() {
			fmt.Println(id)
		}
		return
	}
	ids := bench.IDs()
	if *exps != "all" {
		ids = strings.Split(*exps, ",")
	}
	p := bench.Params{Full: *full, Short: *short}
	failed := false
	for _, id := range ids {
		id = strings.TrimSpace(id)
		table, err := bench.Run(id, p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hbench: %s: %v\n", id, err)
			failed = true
			continue
		}
		table.Fprint(os.Stdout)
	}
	if failed {
		os.Exit(1)
	}
}
