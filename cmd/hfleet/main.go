// Command hfleet is the HARNESS II deployment daemon and its control
// client (S32).
//
// Daemon mode — supervise a fleet of runner boxes and serve the control
// protocol:
//
//	hfleet -control 127.0.0.1:8970 -boxes "left:local,right:local:slots=4:zone=eu"
//
// Each spawned unit is a full HARNESS II node (SOAP/XDR/shm listeners,
// builtins installed) whose components are lease-published into the
// registry named by -registry or by the deploy descriptor. Killed or
// crashed units restart automatically with backoff and republish under
// their previous keys.
//
// Client mode — talk to a running daemon (pick exactly one action):
//
//	hfleet -connect 127.0.0.1:8970 -deploy web.hfd   # or "-" for stdin
//	hfleet -connect 127.0.0.1:8970 -status
//	hfleet -connect 127.0.0.1:8970 -attach web-1
//	hfleet -connect 127.0.0.1:8970 -kill web-1
//	hfleet -connect 127.0.0.1:8970 -stop web-1 | -stop-deployment web
//	hfleet -connect 127.0.0.1:8970 -drain left
//	hfleet -connect 127.0.0.1:8970 -upgrade web -deploy web-v2.hfd
//	hfleet -connect 127.0.0.1:8970 -tail
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"harness2/internal/container"
	"harness2/internal/fleet"
	"harness2/internal/registry"
	"harness2/internal/runnerbox"
	"harness2/internal/telemetry"
)

func main() {
	var (
		// Daemon mode.
		control  = flag.String("control", "127.0.0.1:8970", "control listen address (daemon mode)")
		boxes    = flag.String("boxes", "box0:local", "comma-separated runner boxes: name:backend[:k=v[:k=v...]] (backends: local, rsh, grid; options: slots=N, cost=DUR, plus free-form labels)")
		regURL   = flag.String("registry", "", "SOAP registry endpoint units publish into (descriptors may override)")
		lease    = flag.Duration("lease", fleet.DefaultLease, "default registration lease for spawned units")
		renew    = flag.Duration("renew", 0, "default lease renewal interval (0 = lease/4)")
		daemonNm = flag.String("name", "hfleet", "daemon name (event source, telemetry label)")
		noShm    = flag.Bool("no-shm", false, "spawn units without the shared-memory binding")

		// Client mode.
		connect  = flag.String("connect", "", "daemon control endpoint; presence selects client mode")
		deploy   = flag.String("deploy", "", "descriptor file to deploy (\"-\" reads stdin); in daemon mode, deployed at startup")
		wait     = flag.Int("wait", 0, "with -deploy: block until N units serve (0 = all)")
		status   = flag.Bool("status", false, "print the fleet state")
		attach   = flag.String("attach", "", "unit to attach to: endpoints + event history")
		since    = flag.Int64("since", 0, "with -attach/-tail: replay events after this sequence number")
		kill     = flag.String("kill", "", "unit to kill abruptly (daemon restarts it)")
		stop     = flag.String("stop", "", "unit to stop gracefully (deregistered, not restarted)")
		stopDep  = flag.String("stop-deployment", "", "deployment to stop gracefully")
		drain    = flag.String("drain", "", "box to drain (relocate units, live-migrating state)")
		upgrade  = flag.String("upgrade", "", "deployment to roll to the -deploy descriptor")
		tailFlag = flag.Bool("tail", false, "follow the fleet event log")
	)
	flag.Parse()

	if *connect != "" {
		runClient(*connect, clientArgs{
			deploy: *deploy, wait: *wait, status: *status, attach: *attach,
			since: *since, kill: *kill, stop: *stop, stopDep: *stopDep,
			drain: *drain, upgrade: *upgrade, tail: *tailFlag,
		})
		return
	}
	runDaemon(*control, *boxes, *regURL, *lease, *renew, *daemonNm, *noShm, *deploy, *wait)
}

func runDaemon(control, boxSpecs, regURL string, lease, renew time.Duration, name string, noShm bool, deployFile string, waitN int) {
	tel := telemetry.New()
	var reg container.LeasedRegistry
	if regURL != "" {
		reg = registry.NewRemote(regURL)
	}
	sup, err := fleet.New(fleet.Config{
		Name: name,
		Launcher: fleet.NewNodeLauncher(fleet.NodeLauncherConfig{
			Registry:   reg,
			Lease:      lease,
			Renew:      renew,
			Telemetry:  tel,
			DisableShm: noShm,
		}),
		Telemetry: tel,
	})
	if err != nil {
		log.Fatalf("hfleet: %v", err)
	}
	infos, err := parseBoxes(boxSpecs)
	if err != nil {
		log.Fatalf("hfleet: -boxes: %v", err)
	}
	for _, info := range infos {
		if err := sup.Enroll(info); err != nil {
			log.Fatalf("hfleet: enroll %s: %v", info.Name, err)
		}
		fmt.Printf("hfleet: enrolled box %s (backend %s, slots %d, labels %v)\n",
			info.Name, info.Backend, info.Slots, info.Labels)
	}
	srv, err := fleet.NewServer(sup, control, tel)
	if err != nil {
		log.Fatalf("hfleet: %v", err)
	}
	fmt.Printf("hfleet: control protocol at %s (metrics at %s/metrics)\n", srv.URL(), srv.URL())

	if deployFile != "" {
		text, err := readDescriptor(deployFile)
		if err != nil {
			log.Fatalf("hfleet: -deploy: %v", err)
		}
		d, err := fleet.ParseDescriptor(text)
		if err != nil {
			log.Fatalf("hfleet: -deploy: %v", err)
		}
		ids, err := sup.Deploy(d)
		if err != nil {
			log.Fatalf("hfleet: deploy %s: %v", d.Name, err)
		}
		n := waitN
		if n <= 0 {
			n = len(ids)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		if err := sup.WaitServing(ctx, d.Name, n); err != nil {
			log.Fatalf("hfleet: waiting for %s: %v", d.Name, err)
		}
		cancel()
		fmt.Printf("hfleet: deployment %s serving %d units: %s\n", d.Name, n, strings.Join(ids, " "))
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("hfleet: shutting down (graceful stop of all units)")
	_ = srv.Close()
	_ = sup.Close()
}

// parseBoxes parses "name:backend[:k=v...]" specs. Unknown k=v pairs
// become labels the descriptors can constrain on.
func parseBoxes(specs string) ([]fleet.BoxInfo, error) {
	var out []fleet.BoxInfo
	for _, spec := range strings.Split(specs, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		parts := strings.Split(spec, ":")
		info := fleet.BoxInfo{Name: parts[0], Backend: "local"}
		if len(parts) > 1 && parts[1] != "" {
			info.Backend = parts[1]
		}
		var cost time.Duration
		slots := 0
		for _, opt := range parts[2:] {
			k, v, ok := strings.Cut(opt, "=")
			if !ok {
				return nil, fmt.Errorf("box %s: option %q wants k=v", info.Name, opt)
			}
			switch k {
			case "slots":
				n, err := strconv.Atoi(v)
				if err != nil {
					return nil, fmt.Errorf("box %s: slots %q: %v", info.Name, v, err)
				}
				slots = n
			case "cost":
				d, err := time.ParseDuration(v)
				if err != nil {
					return nil, fmt.Errorf("box %s: cost %q: %v", info.Name, v, err)
				}
				cost = d
			default:
				if info.Labels == nil {
					info.Labels = map[string]string{}
				}
				info.Labels[k] = v
			}
		}
		var backend runnerbox.Backend
		switch info.Backend {
		case "local":
			backend = runnerbox.NewLocalBackend()
		case "rsh":
			backend = runnerbox.NewRshBackend(cost)
		case "grid":
			backend = runnerbox.NewGridBackend(cost, slots)
		default:
			return nil, fmt.Errorf("box %s: unknown backend %q", info.Name, info.Backend)
		}
		info.Slots = slots
		info.Box = runnerbox.New(backend)
		out = append(out, info)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no boxes specified")
	}
	return out, nil
}

func readDescriptor(path string) (string, error) {
	if path == "-" {
		b, err := io.ReadAll(io.LimitReader(os.Stdin, 1<<20))
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

type clientArgs struct {
	deploy  string
	wait    int
	status  bool
	attach  string
	since   int64
	kill    string
	stop    string
	stopDep string
	drain   string
	upgrade string
	tail    bool
}

func runClient(endpoint string, a clientArgs) {
	cl := fleet.NewClient(endpoint)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	switch {
	case a.upgrade != "":
		if a.deploy == "" {
			log.Fatal("hfleet: -upgrade needs -deploy with the new descriptor")
		}
		text, err := readDescriptor(a.deploy)
		if err != nil {
			log.Fatalf("hfleet: %v", err)
		}
		if err := cl.Upgrade(ctx, a.upgrade, text); err != nil {
			log.Fatalf("hfleet: %v", err)
		}
		fmt.Printf("hfleet: rolled %s\n", a.upgrade)
	case a.deploy != "":
		text, err := readDescriptor(a.deploy)
		if err != nil {
			log.Fatalf("hfleet: %v", err)
		}
		dep, units, err := cl.Deploy(ctx, text, orAll(a.wait))
		if err != nil {
			log.Fatalf("hfleet: %v", err)
		}
		fmt.Printf("hfleet: deployed %s: %s\n", dep, strings.Join(units, " "))
	case a.status:
		st, err := cl.State(ctx)
		if err != nil {
			log.Fatalf("hfleet: %v", err)
		}
		printState(st)
	case a.attach != "":
		ust, evs, err := cl.Attach(ctx, a.attach, a.since)
		if err != nil {
			log.Fatalf("hfleet: %v", err)
		}
		fmt.Printf("%s  %s  box=%s gen=%d restarts=%d\n",
			ust.ID, ust.State, ust.Box, ust.Generation, ust.Restarts)
		for _, k := range sortedKeys(ust.Endpoints) {
			fmt.Printf("  %s = %s\n", k, ust.Endpoints[k])
		}
		for _, ev := range evs {
			printEvent(ev)
		}
	case a.kill != "":
		if err := cl.Kill(ctx, a.kill); err != nil {
			log.Fatalf("hfleet: %v", err)
		}
		fmt.Printf("hfleet: killed %s (the daemon will restart it)\n", a.kill)
	case a.stop != "":
		if err := cl.StopUnit(ctx, a.stop); err != nil {
			log.Fatalf("hfleet: %v", err)
		}
		fmt.Printf("hfleet: stopped %s\n", a.stop)
	case a.stopDep != "":
		if err := cl.StopDeployment(ctx, a.stopDep); err != nil {
			log.Fatalf("hfleet: %v", err)
		}
		fmt.Printf("hfleet: stopped deployment %s\n", a.stopDep)
	case a.drain != "":
		if err := cl.Drain(ctx, a.drain); err != nil {
			log.Fatalf("hfleet: %v", err)
		}
		fmt.Printf("hfleet: drained %s\n", a.drain)
	case a.tail:
		since := a.since
		for {
			evs, _, err := cl.Log(ctx, since)
			if err != nil {
				log.Fatalf("hfleet: %v", err)
			}
			for _, ev := range evs {
				printEvent(ev)
				since = ev.Seq
			}
			time.Sleep(500 * time.Millisecond)
		}
	default:
		log.Fatal("hfleet: client mode needs one of -deploy, -status, -attach, -kill, -stop, -stop-deployment, -drain, -upgrade, -tail")
	}
}

func orAll(n int) int {
	if n <= 0 {
		return 0
	}
	return n
}

func printState(st fleet.FleetState) {
	fmt.Printf("daemon %s (log seq %d)\n", st.Daemon, st.LogSeq)
	for _, b := range st.Boxes {
		drain := ""
		if b.Draining {
			drain = " DRAINING"
		}
		fmt.Printf("box %-12s backend=%-5s slots=%d labels=%v units=%v%s\n",
			b.Name, b.Backend, b.Slots, b.Labels, b.Units, drain)
	}
	for _, d := range st.Deployments {
		fmt.Printf("deployment %s version=%q replicas=%d components=%v\n",
			d.Name, d.Version, d.Replicas, d.Components)
		for _, u := range d.Units {
			fmt.Printf("  %-12s %-10s box=%-12s gen=%d restarts=%d %s\n",
				u.ID, u.State, u.Box, u.Generation, u.Restarts, u.LastErr)
		}
	}
}

func printEvent(ev fleet.Event) {
	fmt.Printf("%6d  %s  %-8s %s/%s box=%s %s %s\n",
		ev.Seq, ev.Time.Format("15:04:05.000"), ev.Kind,
		ev.Deployment, ev.Unit, ev.Box, ev.Detail, ev.Err)
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
