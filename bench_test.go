// Benchmark suite: one testing.B family per experiment table in
// DESIGN.md (E1–E10). `go test -bench=. -benchmem` regenerates the raw
// measurements behind EXPERIMENTS.md; `cmd/hbench` prints the same data
// as formatted tables.
package harness

import (
	"context"
	"fmt"
	"testing"
	"time"

	"harness2/internal/bench"
	"harness2/internal/container"
	"harness2/internal/core"
	"harness2/internal/dvm"
	"harness2/internal/events"
	"harness2/internal/invoke"
	"harness2/internal/jspaces"
	"harness2/internal/kernel"
	"harness2/internal/mpi"
	"harness2/internal/namesvc"
	"harness2/internal/pvm"
	"harness2/internal/registry"
	"harness2/internal/resilience"
	"harness2/internal/resilience/chaos"
	"harness2/internal/simnet"
	"harness2/internal/soap"
	"harness2/internal/telemetry"
	"harness2/internal/wire"
	"harness2/internal/wsdl"
	"harness2/internal/xdr"
)

// --- E1: discovery amortization -------------------------------------------

func e1Host(b *testing.B) *core.Framework {
	b.Helper()
	fw := core.NewFramework(nil)
	node, err := fw.AddNode("bench", core.NodeOptions{})
	if err != nil {
		b.Fatal(err)
	}
	core.RegisterBuiltins(node.Container())
	if _, _, err := fw.DeployAndPublish("bench", "WSTime", "clock"); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(fw.Close)
	return fw
}

func BenchmarkE1_DiscoverAndBind(b *testing.B) {
	fw := e1Host(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		defs, err := fw.Discover("WSTime")
		if err != nil || len(defs) == 0 {
			b.Fatal(err)
		}
		p, err := fw.DialRemote(defs[0])
		if err != nil {
			b.Fatal(err)
		}
		_ = p.Close()
	}
}

func BenchmarkE1_WarmInvoke(b *testing.B) {
	fw := e1Host(b)
	defs, _ := fw.Discover("WSTime")
	p, err := fw.DialRemote(defs[0])
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Invoke(ctx, "getTime", nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E2: array encodings ---------------------------------------------------

func benchEncode(b *testing.B, enc func(data []float64) int) {
	data := bench.RandDoubles(10000, 1)
	b.SetBytes(int64(8 * len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n := enc(data); n == 0 {
			b.Fatal("empty encoding")
		}
	}
}

func BenchmarkE2_EncodeXDR(b *testing.B) {
	e := xdr.NewEncoder(90000)
	benchEncode(b, func(data []float64) int {
		e.Reset()
		if err := xdr.EncodeValue(e, data); err != nil {
			b.Fatal(err)
		}
		return e.Len()
	})
}

func soapEncodeBench(b *testing.B, arrays soap.ArrayEncoding) {
	codec := soap.Codec{Arrays: arrays}
	benchEncode(b, func(data []float64) int {
		buf, err := codec.EncodeCall(&soap.Call{Method: "m",
			Params: []soap.Param{{Name: "a", Value: data}}})
		if err != nil {
			b.Fatal(err)
		}
		return len(buf)
	})
}

func BenchmarkE2_EncodeSOAPBase64(b *testing.B)      { soapEncodeBench(b, soap.EncodeBase64) }
func BenchmarkE2_EncodeSOAPHex(b *testing.B)         { soapEncodeBench(b, soap.EncodeHex) }
func BenchmarkE2_EncodeSOAPElementwise(b *testing.B) { soapEncodeBench(b, soap.EncodeElementwise) }

func BenchmarkE2_DecodeXDR(b *testing.B) {
	data := bench.RandDoubles(10000, 1)
	e := xdr.NewEncoder(90000)
	if err := xdr.EncodeValue(e, data); err != nil {
		b.Fatal(err)
	}
	buf := e.Bytes()
	b.SetBytes(int64(8 * len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := xdr.DecodeValue(xdr.NewDecoder(buf)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE2_DecodeSOAPBase64(b *testing.B) {
	data := bench.RandDoubles(10000, 1)
	codec := soap.Codec{}
	buf, err := codec.EncodeCall(&soap.Call{Method: "m",
		Params: []soap.Param{{Name: "a", Value: data}}})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(8 * len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codec.DecodeCall(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E3: binding latency ---------------------------------------------------

func e3Port(b *testing.B, kind wsdl.BindingKind) invoke.Port {
	b.Helper()
	fw := core.NewFramework(nil)
	node, err := fw.AddNode("bench", core.NodeOptions{})
	if err != nil {
		b.Fatal(err)
	}
	core.RegisterBuiltins(node.Container())
	if _, _, err := fw.DeployAndPublish("bench", "MatMul", "mm"); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(fw.Close)
	switch kind {
	case wsdl.BindJavaObject:
		return &invoke.LocalPort{Container: node.Container(), Instance: "mm"}
	case wsdl.BindXDR:
		p := invoke.NewXDRPort(node.XDRAddr(), "mm", false)
		b.Cleanup(func() { _ = p.Close() })
		return p
	default:
		return &invoke.SOAPPort{URL: node.SOAPBase() + "/mm"}
	}
}

func benchMatMulVia(b *testing.B, kind wsdl.BindingKind) {
	const n = 64
	p := e3Port(b, kind)
	a := bench.RandDoubles(n*n, 1)
	bb := bench.RandDoubles(n*n, 2)
	args := wire.Args("mata", a, "matb", bb, "n", int32(n))
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Invoke(ctx, "getResult", args); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE3_MatMul64_Local(b *testing.B) { benchMatMulVia(b, wsdl.BindJavaObject) }
func BenchmarkE3_MatMul64_XDR(b *testing.B)   { benchMatMulVia(b, wsdl.BindXDR) }
func BenchmarkE3_MatMul64_SOAP(b *testing.B)  { benchMatMulVia(b, wsdl.BindSOAP) }

// --- E4: deployment --------------------------------------------------------

func BenchmarkE4_DeployLightweight(b *testing.B) {
	c := container.New(container.Config{Name: "bench"})
	core.RegisterBuiltins(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Deploy("WSTime", fmt.Sprintf("w%d", i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE4_DeployAndFirstRequest(b *testing.B) {
	c := container.New(container.Config{Name: "bench"})
	core.RegisterBuiltins(c)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := fmt.Sprintf("w%d", i)
		if _, _, err := c.Deploy("WSTime", id); err != nil {
			b.Fatal(err)
		}
		if _, err := c.Invoke(ctx, id, "getTime", nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E5: coherency ---------------------------------------------------------

func coherencyDomain(b *testing.B, mk func(*simnet.Network) dvm.Coherency, n int) dvm.Coherency {
	b.Helper()
	net := simnet.New(simnet.LAN)
	coh := mk(net)
	for i := 0; i < n; i++ {
		if _, err := coh.AddNode(fmt.Sprintf("n%d", i)); err != nil {
			b.Fatal(err)
		}
	}
	// Seed one service per node so queries return work.
	for i := 0; i < n; i++ {
		node := fmt.Sprintf("n%d", i)
		if _, err := coh.Apply(node, dvm.Event{Kind: dvm.ServiceAdd, Node: node,
			Entry: dvm.ServiceEntry{Node: node, Instance: "s", Class: "Echo", Service: "Echo"}}); err != nil {
			b.Fatal(err)
		}
	}
	return coh
}

func benchCoherencyUpdate(b *testing.B, mk func(*simnet.Network) dvm.Coherency) {
	coh := coherencyDomain(b, mk, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := dvm.Event{Kind: dvm.ServiceAdd, Node: "n0",
			Entry: dvm.ServiceEntry{Node: "n0", Instance: fmt.Sprintf("i%d", i), Class: "Echo", Service: "Echo"}}
		if _, err := coh.Apply("n0", ev); err != nil {
			b.Fatal(err)
		}
	}
}

func benchCoherencyQuery(b *testing.B, mk func(*simnet.Network) dvm.Coherency) {
	coh := coherencyDomain(b, mk, 16)
	q := dvm.Query{Service: "Echo"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := coh.Query("n1", q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE5_FullSyncUpdate(b *testing.B) {
	benchCoherencyUpdate(b, func(n *simnet.Network) dvm.Coherency { return dvm.NewFullSync(n) })
}
func BenchmarkE5_FullSyncQuery(b *testing.B) {
	benchCoherencyQuery(b, func(n *simnet.Network) dvm.Coherency { return dvm.NewFullSync(n) })
}
func BenchmarkE5_DecentralizedUpdate(b *testing.B) {
	benchCoherencyUpdate(b, func(n *simnet.Network) dvm.Coherency { return dvm.NewDecentralized(n) })
}
func BenchmarkE5_DecentralizedQuery(b *testing.B) {
	benchCoherencyQuery(b, func(n *simnet.Network) dvm.Coherency { return dvm.NewDecentralized(n) })
}
func BenchmarkE5_HybridUpdate(b *testing.B) {
	benchCoherencyUpdate(b, func(n *simnet.Network) dvm.Coherency { return dvm.NewHybrid(n, 4) })
}
func BenchmarkE5_HybridQuery(b *testing.B) {
	benchCoherencyQuery(b, func(n *simnet.Network) dvm.Coherency { return dvm.NewHybrid(n, 4) })
}

// --- E6: lookup architectures ----------------------------------------------

func BenchmarkE6_CentralizedLookupRTT(b *testing.B) {
	net := simnet.New(simnet.LAN)
	net.AddNode("registry")
	net.AddNode("client")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.RTT("client", "registry", 128, 1500); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE6_DecentralizedLookup32(b *testing.B) {
	coh := coherencyDomain(b, func(n *simnet.Network) dvm.Coherency { return dvm.NewDecentralized(n) }, 32)
	q := dvm.Query{Service: "Echo"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := coh.Query("n0", q); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E7: PVM emulation -----------------------------------------------------

func benchPVMPingPong(b *testing.B, payloadDoubles int) {
	router := pvm.NewRouter(nil)
	daemons := make([]*pvm.Daemon, 2)
	for i := range daemons {
		name := fmt.Sprintf("bh%d-%d", i, payloadDoubles)
		k := kernel.New(name, container.Config{})
		k.RegisterPlugin(events.PluginClass, events.Factory())
		k.RegisterPlugin(namesvc.PluginClass, namesvc.Factory())
		k.RegisterPlugin(pvm.PluginClass, pvm.Factory(name, router),
			events.PluginClass, namesvc.PluginClass)
		if err := k.Load(pvm.PluginClass); err != nil {
			b.Fatal(err)
		}
		comp, _ := k.Plugin(pvm.PluginClass)
		daemons[i] = comp.(*pvm.Daemon)
	}
	payload := bench.RandDoubles(payloadDoubles, 3)
	daemons[0].RegisterTaskFunc("echo", func(ctx context.Context, self *pvm.Task, args []string) error {
		for {
			m, err := self.Recv(pvm.AnySrc, pvm.AnyTag)
			if err != nil {
				return nil
			}
			if m.Tag == 0 {
				return nil
			}
			if err := self.Send(m.Src, m.Tag, m.Body); err != nil {
				return err
			}
		}
	})
	echo, err := daemons[0].Spawn("echo", nil, 1)
	if err != nil {
		b.Fatal(err)
	}
	done := make(chan error, 1)
	daemons[1].RegisterTaskFunc("driver", func(ctx context.Context, self *pvm.Task, args []string) error {
		body := []wire.Arg{pvm.PkDoubleArray("d", payload)}
		for i := 0; i < b.N; i++ {
			if err := self.Send(echo[0], 1, body); err != nil {
				done <- err
				return err
			}
			if _, err := self.Recv(echo[0], 1); err != nil {
				done <- err
				return err
			}
		}
		done <- self.Send(echo[0], 0, nil)
		return nil
	})
	b.SetBytes(int64(16 * payloadDoubles))
	b.ResetTimer()
	if _, err := daemons[1].Spawn("driver", nil, 1); err != nil {
		b.Fatal(err)
	}
	if err := <-done; err != nil {
		b.Fatal(err)
	}
}

func BenchmarkE7_PVMPingPongEmpty(b *testing.B) { benchPVMPingPong(b, 0) }
func BenchmarkE7_PVMPingPong32KiB(b *testing.B) { benchPVMPingPong(b, 4096) }

// --- E8: registry find -----------------------------------------------------

func e8Registry(b *testing.B, size int) *registry.Registry {
	b.Helper()
	reg := registry.New()
	for i := 0; i < size; i++ {
		name := fmt.Sprintf("Svc%d", i)
		defs, err := wsdl.Generate(wsdl.ServiceSpec{
			Name: name,
			Operations: []wsdl.OpSpec{{Name: "run",
				Input:  []wsdl.ParamSpec{{Name: "x", Type: wire.KindFloat64Array}},
				Output: []wsdl.ParamSpec{{Name: "y", Type: wire.KindFloat64Array}}}},
		}, wsdl.EndpointSet{SOAPAddress: "http://h/" + name})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := reg.Publish(registry.Entry{Name: name, WSDL: defs.String()}); err != nil {
			b.Fatal(err)
		}
	}
	return reg
}

func BenchmarkE8_FindByName1000(b *testing.B) {
	reg := e8Registry(b, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := reg.FindByName("Svc500"); len(got) != 1 {
			b.Fatal("miss")
		}
	}
}

func BenchmarkE8_FindByQuery1000(b *testing.B) {
	reg := e8Registry(b, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := reg.FindByQuery("//service[@name='Svc500Service']")
		if err != nil || len(got) != 1 {
			b.Fatalf("miss: %v", err)
		}
	}
}

// --- E9: locality ----------------------------------------------------------

func benchLinSolveVia(b *testing.B, kind wsdl.BindingKind) {
	const n = 96
	fw := core.NewFramework(nil)
	node, err := fw.AddNode("bench", core.NodeOptions{})
	if err != nil {
		b.Fatal(err)
	}
	core.RegisterBuiltins(node.Container())
	if _, _, err := fw.DeployAndPublish("bench", "LinSolve", "lapack"); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(fw.Close)
	var p invoke.Port
	switch kind {
	case wsdl.BindJavaObject:
		p = &invoke.LocalPort{Container: node.Container(), Instance: "lapack"}
	case wsdl.BindXDR:
		xp := invoke.NewXDRPort(node.XDRAddr(), "lapack", false)
		b.Cleanup(func() { _ = xp.Close() })
		p = xp
	default:
		p = &invoke.SOAPPort{URL: node.SOAPBase() + "/lapack"}
	}
	a := bench.RandMatrix(n, 1)
	rhs := bench.RandDoubles(n, 2)
	args := wire.Args("a", a, "b", rhs, "n", int32(n))
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Invoke(ctx, "solve", args); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE9_LinSolve96_Local(b *testing.B) { benchLinSolveVia(b, wsdl.BindJavaObject) }
func BenchmarkE9_LinSolve96_XDR(b *testing.B)   { benchLinSolveVia(b, wsdl.BindXDR) }
func BenchmarkE9_LinSolve96_SOAP(b *testing.B)  { benchLinSolveVia(b, wsdl.BindSOAP) }

// --- Plugin environments (MPI / JavaSpaces) ---------------------------------

func BenchmarkMPI_AllReduce8(b *testing.B) {
	router := pvm.NewRouter(nil)
	daemons := make([]*pvm.Daemon, 2)
	for i := range daemons {
		name := fmt.Sprintf("mb%d", i)
		k := kernel.New(name, container.Config{})
		k.RegisterPlugin(events.PluginClass, events.Factory())
		k.RegisterPlugin(namesvc.PluginClass, namesvc.Factory())
		k.RegisterPlugin(pvm.PluginClass, pvm.Factory(name, router),
			events.PluginClass, namesvc.PluginClass)
		if err := k.Load(pvm.PluginClass); err != nil {
			b.Fatal(err)
		}
		comp, _ := k.Plugin(pvm.PluginClass)
		daemons[i] = comp.(*pvm.Daemon)
	}
	world, err := mpi.NewWorld(router, daemons)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	err = world.Run(8, func(ctx context.Context, c *mpi.Comm) error {
		for i := 0; i < b.N; i++ {
			if _, err := c.AllReduce(mpi.OpSum, float64(c.Rank())); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkJSpaces_WriteTake(b *testing.B) {
	s := jspaces.New()
	entry := wire.NewStruct("Task").Set("name", "bench").Set("seq", int32(1))
	tmpl := wire.NewStruct("Task")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Write(entry, 0); err != nil {
			b.Fatal(err)
		}
		if _, ok := s.TakeIfExists(tmpl); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkE4_RemoteDeployViaManager(b *testing.B) {
	// The manager component makes instantiation a remote SOAP operation:
	// this measures the full automated-deployment round trip the paper's
	// design enables (contrast with the in-process E4 numbers).
	node, err := core.NewNode("mgr-bench", core.NodeOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = node.Close() })
	core.RegisterBuiltins(node.Container())
	node.Container().RegisterFactory(container.ManagerClass, container.ManagerFactory())
	if _, _, err := node.Container().Deploy(container.ManagerClass, "manager"); err != nil {
		b.Fatal(err)
	}
	p := &invoke.SOAPPort{URL: node.SOAPBase() + "/manager"}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Invoke(ctx, "deploy",
			wire.Args("class", "WSTime", "id", fmt.Sprintf("w%d", i))); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E12: telemetry overhead ----------------------------------------------

// BenchmarkE12_Disabled proves the observability off-switch is free: with
// telemetry.Disabled(), every instrument is a nil handle and each hot-path
// call is a single nil-receiver branch — a few nanoseconds, zero
// allocations. This is the number that justifies leaving instrumentation
// compiled into every layer.
func BenchmarkE12_Disabled(b *testing.B) {
	reg := telemetry.Disabled()
	c := reg.Counter("bench_e12_counter")
	h := reg.Histogram("bench_e12_hist")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		h.ObserveSince(h.Start())
	}
}

// BenchmarkE12_Enabled is the paired measurement with live instruments:
// an atomic counter increment plus a full histogram timer (two clock
// reads and a bucketed observe).
func BenchmarkE12_Enabled(b *testing.B) {
	reg := telemetry.New()
	c := reg.Counter("bench_e12_counter")
	h := reg.Histogram("bench_e12_hist")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		h.ObserveSince(h.Start())
	}
}

// BenchmarkE12_InvokeDisabled / Enabled measure the end-to-end cost of the
// instrumented local dispatch path, the worst-case stack for overhead.
func BenchmarkE12_InvokeDisabled(b *testing.B) { benchE12Invoke(b, telemetry.Disabled()) }
func BenchmarkE12_InvokeEnabled(b *testing.B)  { benchE12Invoke(b, telemetry.New()) }

func benchE12Invoke(b *testing.B, reg *telemetry.Registry) {
	b.Helper()
	c := container.New(container.Config{Name: "e12bench", Telemetry: reg})
	core.RegisterBuiltins(c)
	inst, _, err := c.Deploy("WSTime", "t1")
	if err != nil {
		b.Fatal(err)
	}
	p := &invoke.LocalPort{Container: c, Instance: inst.ID, Telemetry: reg}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Invoke(ctx, "getTime", nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E13: resilience plane overhead ----------------------------------------

// e13BenchPort is a minimal in-memory Port: the measurements below isolate
// the resilience plumbing (nil-policy branch, enabled policy loop, chaos
// hook) from any transport cost.
type e13BenchPort struct{ out []wire.Arg }

func (p *e13BenchPort) Invoke(ctx context.Context, op string, args []wire.Arg) ([]wire.Arg, error) {
	return p.out, nil
}
func (p *e13BenchPort) Kind() wsdl.BindingKind { return wsdl.BindXDR }
func (p *e13BenchPort) Endpoint() string       { return "bench" }
func (p *e13BenchPort) Close() error           { return nil }

func benchE13Invoke(b *testing.B, port invoke.Port) {
	b.Helper()
	ctx := context.Background()
	args := wire.Args("by", int64(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := port.Invoke(ctx, "getResult", args); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE13_PortBare is the baseline: the raw in-memory port.
func BenchmarkE13_PortBare(b *testing.B) {
	benchE13Invoke(b, &e13BenchPort{out: wire.Args("ok", int64(1))})
}

// BenchmarkE13_PortNilPolicy is the acceptance gate for the disabled
// path: a ResilientPort without a policy must add one branch — a few
// nanoseconds, zero allocations — over the bare port.
func BenchmarkE13_PortNilPolicy(b *testing.B) {
	p, err := invoke.NewResilientPort(nil, &e13BenchPort{out: wire.Args("ok", int64(1))})
	if err != nil {
		b.Fatal(err)
	}
	benchE13Invoke(b, p)
}

// BenchmarkE13_PortPolicyEnabled measures the full policy loop on the
// success path (budget context, breaker gate, one attempt, bookkeeping)
// with no faults injected.
func BenchmarkE13_PortPolicyEnabled(b *testing.B) {
	pol, err := resilience.New(
		resilience.WithMaxAttempts(3),
		resilience.WithBreaker(5, time.Second),
		resilience.WithTelemetry(telemetry.Disabled()),
	)
	if err != nil {
		b.Fatal(err)
	}
	p, err := invoke.NewResilientPort(pol, &e13BenchPort{out: wire.Args("ok", int64(1))})
	if err != nil {
		b.Fatal(err)
	}
	benchE13Invoke(b, p)
}

// BenchmarkE13_ChaosNilInjector is the other disabled hot path: the nil
// *chaos.Injector hook compiled into every transport.
func BenchmarkE13_ChaosNilInjector(b *testing.B) {
	var inj *chaos.Injector
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := inj.Apply(ctx, "xdr", "getResult", "bench"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE13_ChaosEvalMiss prices an armed injector whose rule matches
// the site but never draws a fault (prob 0): the per-call cost of keeping
// chaos enabled in a steady-state run.
func BenchmarkE13_ChaosEvalMiss(b *testing.B) {
	inj, err := chaos.New(1, chaos.Rule{Binding: "xdr", Kind: chaos.FaultError, Prob: 0})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := inj.Apply(ctx, "xdr", "getResult", "bench"); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E14: SOAP fast path and discovery cache -------------------------------

// benchE14Decode prices one packed-base64 envelope decode at n doubles.
func benchE14Decode(b *testing.B, n int, disableFast bool) {
	data := bench.RandDoubles(n, 14)
	codec := soap.Codec{Arrays: soap.EncodeBase64, DisableFastPath: disableFast}
	buf, err := codec.EncodeCall(&soap.Call{Method: "put",
		Params: []soap.Param{{Name: "vals", Value: data}}})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(8 * n))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codec.DecodeCall(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE14_DecodeFast100k(b *testing.B) { benchE14Decode(b, 100_000, false) }
func BenchmarkE14_DecodeDOM100k(b *testing.B)  { benchE14Decode(b, 100_000, true) }
func BenchmarkE14_DecodeFast1M(b *testing.B)   { benchE14Decode(b, 1_000_000, false) }
func BenchmarkE14_DecodeDOM1M(b *testing.B)    { benchE14Decode(b, 1_000_000, true) }

// BenchmarkE14_EncodePooled prices the append-based encode path with
// pooled buffers: the steady state should be allocation-free.
func BenchmarkE14_EncodePooled(b *testing.B) {
	data := bench.RandDoubles(10000, 14)
	codec := soap.Codec{Arrays: soap.EncodeBase64}
	call := &soap.Call{Method: "put", Params: []soap.Param{{Name: "vals", Value: data}}}
	b.SetBytes(int64(8 * len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := soap.AcquireBuffer()
		out, err := codec.AppendCall(*buf, call)
		if err != nil {
			b.Fatal(err)
		}
		*buf = out[:0]
		soap.ReleaseBuffer(buf)
	}
}

// BenchmarkE14_CacheHit measures a warm discovery-cache probe; _CacheDisabled
// the pass-through branch a ttl=0 cache adds over its source.
func BenchmarkE14_CacheHit(b *testing.B) {
	reg := registry.New()
	key, err := reg.Publish(registry.Entry{Name: "svc", WSDL: "<definitions/>"})
	if err != nil {
		b.Fatal(err)
	}
	c := registry.NewCache(reg, time.Hour)
	c.Get(key)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get(key); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkE14_CacheDisabled(b *testing.B) {
	reg := registry.New()
	key, err := reg.Publish(registry.Entry{Name: "svc", WSDL: "<definitions/>"})
	if err != nil {
		b.Fatal(err)
	}
	c := registry.NewCache(reg, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get(key); !ok {
			b.Fatal("miss")
		}
	}
}
