// Package harness is the public API of the HARNESS II metacomputing
// framework reproduction — "Standards Based Heterogeneous Metacomputing:
// The Design of HARNESS II" (Migliardi, Kurzyniec, Sunderam; IPPS 2002).
//
// The framework combines plugin-based distributed virtual machines with
// Web-Services standards: components are described in WSDL, published in
// a UDDI-style registry, and invoked through pluggable bindings — the
// standard SOAP/HTTP binding, plus the paper's two HPC extensions: the
// JavaObject binding (direct access to a specific stateful instance in a
// co-located container) and the XDR binding (numeric arrays over direct
// sockets).
//
// # Quickstart
//
//	fw := harness.NewFramework(nil)
//	defer fw.Close()
//	node, _ := fw.AddNode("n1", harness.NodeOptions{})
//	harness.RegisterBuiltins(node.Container())
//	fw.DeployAndPublish("n1", "MatMul", "mm")
//	defs, _ := fw.Discover("MatMul")
//	port, _ := fw.Dial(defs[0])   // selects the cheapest usable binding
//	out, _ := port.Invoke(ctx, "getResult", harness.Args(
//	    "mata", a, "matb", b, "n", int32(n)))
//
// The architectural layers (paper Figure 6) are available directly:
// runner boxes (resource abstraction), component containers (local name
// space + lifecycle + exposure control), and distributed component
// containers (DVMs with pluggable state-coherency strategies). The PVM
// emulation plugin (Figure 2) lives in the pvm subsystem, loadable into
// per-node kernels.
package harness

import (
	"harness2/internal/container"
	"harness2/internal/core"
	"harness2/internal/dvm"
	"harness2/internal/events"
	"harness2/internal/invoke"
	"harness2/internal/jspaces"
	"harness2/internal/kernel"
	"harness2/internal/mpi"
	"harness2/internal/namesvc"
	"harness2/internal/pvm"
	"harness2/internal/registry"
	"harness2/internal/runnerbox"
	"harness2/internal/simnet"
	"harness2/internal/soap"
	"harness2/internal/wire"
	"harness2/internal/wsdl"
)

// Framework assembly (see internal/core).
type (
	// Framework groups nodes around a lookup service and drives the
	// publish → discover → bind → invoke loop.
	Framework = core.Framework
	// Node is a running host: a component container with live SOAP and
	// XDR endpoints.
	Node = core.Node
	// NodeOptions configure a node's endpoints and deployment policy.
	NodeOptions = core.NodeOptions
)

// NewFramework creates a framework around lookup (nil = fresh in-process
// registry).
func NewFramework(lookup Lookup) *Framework { return core.NewFramework(lookup) }

// RegisterBuiltins installs the built-in example components (WSTime,
// MatMul, LinSolve) on a container.
func RegisterBuiltins(c *Container) { core.RegisterBuiltins(c) }

// Component containers (see internal/container).
type (
	// Container hosts stateful component instances.
	Container = container.Container
	// ContainerConfig parameterises a container.
	ContainerConfig = container.Config
	// Component is a deployable service implementation.
	Component = container.Component
	// Factory creates component instances for a class.
	Factory = container.Factory
	// FuncComponent adapts per-operation functions into a Component.
	FuncComponent = container.FuncComponent
	// OpFunc implements one operation of a FuncComponent.
	OpFunc = container.OpFunc
	// Instance is one deployed, stateful component.
	Instance = container.Instance
	// DeployPolicy models the cost structure of a deployment technology.
	DeployPolicy = container.DeployPolicy
)

// NewContainer creates a standalone component container.
func NewContainer(cfg ContainerConfig) *Container { return container.New(cfg) }

// Component mobility (paper §6).
type (
	// Stateful components can externalise and restore state, enabling
	// migration between containers.
	Stateful = container.Stateful
	// StateField is one named piece of externalised component state.
	StateField = container.Field
)

// Migrate moves a stateful instance between containers, preserving its ID
// and state (stop-and-copy; the source restarts on failure).
func Migrate(src *Container, id string, dst *Container) error {
	return container.Migrate(src, id, dst)
}

// FuncFactory wraps a FuncComponent builder into a Factory.
func FuncFactory(build func() *FuncComponent) Factory { return container.FuncFactory(build) }

// Deployment policies contrasted by experiment E4.
var (
	// Lightweight is the HARNESS II automated-instantiation policy.
	Lightweight = container.Lightweight
	// Heavyweight models the era application-server deployment flow.
	Heavyweight = container.Heavyweight
)

// Service description (see internal/wsdl).
type (
	// Definitions is a complete WSDL document.
	Definitions = wsdl.Definitions
	// ServiceSpec describes a service implementation for WSDL generation.
	ServiceSpec = wsdl.ServiceSpec
	// OpSpec describes one operation of a ServiceSpec.
	OpSpec = wsdl.OpSpec
	// ParamSpec describes one named, typed parameter.
	ParamSpec = wsdl.ParamSpec
	// EndpointSet carries the concrete addresses to advertise per binding.
	EndpointSet = wsdl.EndpointSet
	// BindingKind identifies a concrete access mechanism.
	BindingKind = wsdl.BindingKind
)

// Binding kinds.
const (
	BindSOAP       = wsdl.BindSOAP
	BindHTTP       = wsdl.BindHTTP
	BindXDR        = wsdl.BindXDR
	BindJavaObject = wsdl.BindJavaObject
)

// GenerateWSDL produces a complete WSDL document for spec — the
// servicegen/wsdlgen tooling equivalent.
func GenerateWSDL(spec ServiceSpec, eps EndpointSet) (*Definitions, error) {
	return wsdl.Generate(spec, eps)
}

// ParseWSDL parses a WSDL document from XML text.
func ParseWSDL(s string) (*Definitions, error) { return wsdl.ParseString(s) }

// Lookup / registry (see internal/registry).
type (
	// Lookup is the discovery interface shared by local and remote
	// registries.
	Lookup = registry.Lookup
	// Registry is the in-process UDDI-style lookup service.
	Registry = registry.Registry
	// RegistryEntry is one published service description.
	RegistryEntry = registry.Entry
	// RegistryServer exposes a Registry as a SOAP web service.
	RegistryServer = registry.Server
	// RemoteRegistry is a SOAP client view of a registry server.
	RemoteRegistry = registry.Remote
)

// NewRegistry creates an empty in-process registry.
func NewRegistry() *Registry { return registry.New() }

// NewRegistryServer wraps a registry in a SOAP dispatcher (http.Handler).
func NewRegistryServer(r *Registry) *RegistryServer { return registry.NewServer(r) }

// NewRemoteRegistry returns a client for the registry at endpoint.
func NewRemoteRegistry(endpoint string) *RemoteRegistry { return registry.NewRemote(endpoint) }

// DiscoverViaWSIL performs registry-free discovery: it fetches a node's
// WS-Inspection document and every WSDL description it references. Every
// framework node serves one at <base>/inspection.wsil.
func DiscoverViaWSIL(url string) ([]*Definitions, error) { return registry.DiscoverViaWSIL(url) }

// Invocation (see internal/invoke).
type (
	// Port is a bound, invocable view of a service (the dynamic stub).
	Port = invoke.Port
	// DialOptions parameterise binding selection.
	DialOptions = invoke.Options
)

// Dial selects and opens the cheapest usable port for a service.
func Dial(defs *Definitions, opts DialOptions) (Port, error) { return invoke.Dial(defs, opts) }

// OpenAll returns one port per advertised binding, cheapest first.
func OpenAll(defs *Definitions, opts DialOptions) []Port { return invoke.OpenAll(defs, opts) }

// Wire values (see internal/wire).
type (
	// Arg is a named invocation argument.
	Arg = wire.Arg
	// Kind enumerates wire-level value types.
	Kind = wire.Kind
)

// Wire kinds for ParamSpec declarations.
const (
	KindBool         = wire.KindBool
	KindInt32        = wire.KindInt32
	KindInt64        = wire.KindInt64
	KindFloat32      = wire.KindFloat32
	KindFloat64      = wire.KindFloat64
	KindString       = wire.KindString
	KindBytes        = wire.KindBytes
	KindBoolArray    = wire.KindBoolArray
	KindInt32Array   = wire.KindInt32Array
	KindInt64Array   = wire.KindInt64Array
	KindFloat32Array = wire.KindFloat32Array
	KindFloat64Array = wire.KindFloat64Array
	KindStringArray  = wire.KindStringArray
	KindStruct       = wire.KindStruct
)

// Args builds an argument list from alternating name/value pairs.
func Args(pairs ...any) []Arg { return wire.Args(pairs...) }

// GetArg returns the value of the named argument.
func GetArg(args []Arg, name string) (any, bool) { return wire.GetArg(args, name) }

// SOAP codec control (see internal/soap).
type (
	// SOAPCodec encodes/decodes envelopes with a fixed array encoding.
	SOAPCodec = soap.Codec
	// ArrayEncoding selects how numeric arrays travel inside envelopes.
	ArrayEncoding = soap.ArrayEncoding
)

// Array encodings for the SOAP binding (experiment E2 compares them).
const (
	EncodeBase64      = soap.EncodeBase64
	EncodeElementwise = soap.EncodeElementwise
	EncodeHex         = soap.EncodeHex
)

// Distributed virtual machines (see internal/dvm).
type (
	// DVM is a distributed component container with a unified name space.
	DVM = dvm.DVM
	// Coherency is the pluggable global-state strategy interface.
	Coherency = dvm.Coherency
	// DVMQuery selects service-table rows.
	DVMQuery = dvm.Query
	// ServiceEntry is one row of the DVM-wide service table.
	ServiceEntry = dvm.ServiceEntry
)

// NewDVM creates a DVM with the given name and coherency strategy.
func NewDVM(name string, coh Coherency) *DVM { return dvm.New(name, coh) }

// FailureDetector is the heartbeat monitor used to evict dead members.
type FailureDetector = dvm.Detector

// NewFailureDetector returns a detector over the DVM's coherency fabric.
func NewFailureDetector(d *DVM, retries int) *FailureDetector { return dvm.NewDetector(d, retries) }

// Coherency strategies of Section 6.
func NewFullSync(net *SimNetwork) Coherency      { return dvm.NewFullSync(net) }
func NewDecentralized(net *SimNetwork) Coherency { return dvm.NewDecentralized(net) }
func NewHybrid(net *SimNetwork, k int) Coherency { return dvm.NewHybrid(net, k) }

// Simulated fabric (see internal/simnet).
type (
	// SimNetwork is the deterministic virtual-time network fabric.
	SimNetwork = simnet.Network
	// LinkConfig models one link class (latency + bandwidth).
	LinkConfig = simnet.LinkConfig
)

// Link classes roughly matching the paper's era.
var (
	// LAN is a switched-Ethernet cluster link.
	LAN = simnet.LAN
	// WAN is a wide-area internet path.
	WAN = simnet.WAN
)

// NewSimNetwork creates a fabric whose links default to def.
func NewSimNetwork(def LinkConfig) *SimNetwork { return simnet.New(def) }

// Numeric kernels of the built-in components.
var (
	// MatMul multiplies two n×n row-major matrices (Figure 8 service).
	MatMul = core.MatMul
	// LinSolve solves Ax=b by LU decomposition (the LAPACK stand-in).
	LinSolve = core.LinSolve
)

// SOAPHeader is a SOAP 1.1 header entry (mustUnderstand supported).
type SOAPHeader = soap.Header

// Plugin backplane (see internal/kernel) and the environment-emulation
// plugins the paper names: PVM, MPI, and JavaSpaces.
type (
	// Kernel is a per-node plugin backplane (Figure 1).
	Kernel = kernel.Kernel
	// EventService is the event-management plugin (Figure 2).
	EventService = events.Service
	// NameService is the table-lookup plugin (Figure 2).
	NameService = namesvc.Service
	// PVMRouter is the inter-kernel transport domain for hpvmd daemons.
	PVMRouter = pvm.Router
	// PVMDaemon is the hpvmd plugin instance on one kernel.
	PVMDaemon = pvm.Daemon
	// PVMTask is a running PVM task handle.
	PVMTask = pvm.Task
	// MPIWorld is an MPI job factory over hpvmd daemons.
	MPIWorld = mpi.World
	// MPIComm is the per-rank communicator.
	MPIComm = mpi.Comm
	// TupleSpace is the JavaSpaces-style coordination space.
	TupleSpace = jspaces.Space
	// RunnerBox is the resource abstraction layer service.
	RunnerBox = runnerbox.Box
)

// NewKernel creates a kernel named name over a fresh container.
func NewKernel(name string, cfg ContainerConfig) *Kernel { return kernel.New(name, cfg) }

// NewPVMRouter creates a PVM transport domain; net may be nil (no traffic
// accounting).
func NewPVMRouter(net *SimNetwork) *PVMRouter { return pvm.NewRouter(net) }

// NewPVMKernel assembles the Figure 1/2 stack on one kernel: events and
// namesvc plugins plus an hpvmd registered against router, all loaded.
// The daemon is returned ready for RegisterTaskFunc/Spawn.
func NewPVMKernel(name string, router *PVMRouter) (*Kernel, *PVMDaemon, error) {
	k := kernel.New(name, ContainerConfig{})
	k.RegisterPlugin(events.PluginClass, events.Factory())
	k.RegisterPlugin(namesvc.PluginClass, namesvc.Factory())
	k.RegisterPlugin(pvm.PluginClass, pvm.Factory(name, router),
		events.PluginClass, namesvc.PluginClass)
	if err := k.Load(pvm.PluginClass); err != nil {
		return nil, nil, err
	}
	comp, _ := k.Plugin(pvm.PluginClass)
	return k, comp.(*pvm.Daemon), nil
}

// NewMPIWorld creates an MPI job factory over the given daemons.
func NewMPIWorld(router *PVMRouter, daemons []*PVMDaemon) (*MPIWorld, error) {
	return mpi.NewWorld(router, daemons)
}

// NewTupleSpace creates an empty JavaSpaces-style space.
func NewTupleSpace() *TupleSpace { return jspaces.New() }

// NewRunnerBox enrolls a local resource behind the runner-box service.
func NewRunnerBox() *RunnerBox { return runnerbox.New(runnerbox.NewLocalBackend()) }

// ManagerFactory returns the container remote-management component
// factory; deploy it (conventionally as container.ManagerClass) to make a
// container remotely administerable.
func ManagerFactory() Factory { return container.ManagerFactory() }

// BridgeContainerEvents publishes a container's lifecycle (deploy,
// undeploy, start, stop, expose, unexpose) through an event service.
func BridgeContainerEvents(s *EventService, c *Container) { events.BridgeContainer(s, c) }
