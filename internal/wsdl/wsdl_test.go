package wsdl

import (
	"strings"
	"testing"

	"harness2/internal/wire"
	"harness2/internal/xmlq"
)

func matmulDefs(t *testing.T) *Definitions {
	t.Helper()
	d, err := Generate(MatMulSpec(), EndpointSet{
		SOAPAddress:  "http://host:8080/services/MatMul",
		XDRAddress:   "host:9010",
		LocalAddress: "local:node1/MatMul-0",
		Class:        "MatMul",
		Instance:     "MatMul-0",
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestGenerateMatMul(t *testing.T) {
	d := matmulDefs(t)
	if d.Name != "MatMul" {
		t.Fatalf("name = %q", d.Name)
	}
	if len(d.Messages) != 2 {
		t.Fatalf("messages = %d", len(d.Messages))
	}
	req := d.Message("getResultRequest")
	if req == nil || len(req.Parts) != 2 || req.Parts[0].Type != wire.KindFloat64Array {
		t.Fatalf("request message wrong: %+v", req)
	}
	pt, op := d.Operation("getResult")
	if pt == nil || op == nil || op.Output != "getResultResponse" {
		t.Fatal("operation not resolvable")
	}
	if len(d.Bindings) != 3 || len(d.Services[0].Ports) != 3 {
		t.Fatalf("bindings=%d ports=%d", len(d.Bindings), len(d.Services[0].Ports))
	}
	jb := d.Binding("MatMulJavaBinding")
	if jb == nil || jb.Kind != BindJavaObject || jb.Instance != "MatMul-0" {
		t.Fatalf("java binding = %+v", jb)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateWSTime(t *testing.T) {
	// Fig. 7: WSTime with SOAP and Java bindings, no XDR (string output).
	d, err := Generate(WSTimeSpec(), EndpointSet{
		SOAPAddress:  "http://host:8080/services/WSTime",
		LocalAddress: "local:node1/WSTime",
		Class:        "WSTime",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Bindings) != 2 {
		t.Fatalf("bindings = %d", len(d.Bindings))
	}
	xml := d.String()
	for _, want := range []string{"getTimeRequest", "getTimeResponse", "soap:binding", "java:binding", "WSTimeService"} {
		if !strings.Contains(xml, want) {
			t.Errorf("generated WSDL missing %q:\n%s", want, xml)
		}
	}
}

func TestGenerateRejectsXDRWithStrings(t *testing.T) {
	// The XDR binding is numeric-only; WSTime returns a string.
	_, err := Generate(WSTimeSpec(), EndpointSet{XDRAddress: "host:9"})
	if err == nil {
		t.Fatal("Generate should reject XDR endpoint for string-typed service")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(ServiceSpec{}, EndpointSet{SOAPAddress: "x"}); err == nil {
		t.Error("unnamed spec should fail")
	}
	if _, err := Generate(ServiceSpec{Name: "S"}, EndpointSet{SOAPAddress: "x"}); err == nil {
		t.Error("no operations should fail")
	}
	if _, err := Generate(MatMulSpec(), EndpointSet{}); err == nil {
		t.Error("no endpoints should fail")
	}
	spec := ServiceSpec{Name: "S", Operations: []OpSpec{{Name: ""}}}
	if _, err := Generate(spec, EndpointSet{SOAPAddress: "x"}); err == nil {
		t.Error("unnamed operation should fail")
	}
}

func TestXMLRoundTrip(t *testing.T) {
	d := matmulDefs(t)
	xml := d.String()
	got, err := ParseString(xml)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, xml)
	}
	if got.Name != d.Name || got.TargetNamespace != d.TargetNamespace {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Messages) != len(d.Messages) ||
		len(got.PortTypes) != len(d.PortTypes) ||
		len(got.Bindings) != len(d.Bindings) ||
		len(got.Services) != len(d.Services) {
		t.Fatalf("section counts differ")
	}
	for i, b := range d.Bindings {
		g := got.Bindings[i]
		if g.Name != b.Name || g.Kind != b.Kind || g.Type != b.Type ||
			g.Class != b.Class || g.Instance != b.Instance {
			t.Errorf("binding %d: got %+v want %+v", i, g, b)
		}
	}
	for i, p := range d.Services[0].Ports {
		g := got.Services[0].Ports[i]
		if g != p {
			t.Errorf("port %d: got %+v want %+v", i, g, p)
		}
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFigure7Structure(t *testing.T) {
	// The generated WSTime document must expose the structural elements of
	// the paper's Figure 7: message/portType/operation/binding/service
	// with both a SOAP and a Java binding on the same port type.
	d, err := Generate(WSTimeSpec(), EndpointSet{
		SOAPAddress:  "http://host/WSTime",
		LocalAddress: "local:c/WSTime",
	})
	if err != nil {
		t.Fatal(err)
	}
	root := d.Node()
	queries := map[string]int{
		"/definitions/message":                        2,
		"/definitions/portType/operation":             1,
		"/definitions/binding/soap:binding":           1,
		"/definitions/binding/java:binding":           1,
		"/definitions/service/port":                   2,
		"/definitions/service/port/address":           2,
		"//operation[@name='getTime']":                1,
		"//binding[@type='WSTimePortType']":           2,
		"//port[@binding='WSTimeSOAPBinding']":        1,
		"/definitions/service[@name='WSTimeService']": 1,
	}
	for q, want := range queries {
		nodes, err := xmlq.SelectString(root, q)
		if err != nil {
			t.Fatalf("query %q: %v", q, err)
		}
		if len(nodes) != want {
			t.Errorf("query %q: got %d want %d\n%s", q, len(nodes), want, root)
		}
	}
}

func TestValidateCatchesBrokenRefs(t *testing.T) {
	base := func() *Definitions { return matmulDefs(t) }

	d := base()
	d.PortTypes[0].Operations[0].Input = "nonexistent"
	if err := d.Validate(); err == nil {
		t.Error("unknown input message should fail validation")
	}

	d = base()
	d.Bindings[0].Type = "nope"
	if err := d.Validate(); err == nil {
		t.Error("unknown binding type should fail validation")
	}

	d = base()
	d.Services[0].Ports[0].Binding = "nope"
	if err := d.Validate(); err == nil {
		t.Error("unknown port binding should fail validation")
	}

	d = base()
	d.Services[0].Ports[0].Address = ""
	if err := d.Validate(); err == nil {
		t.Error("empty address should fail validation")
	}

	d = base()
	d.Messages = append(d.Messages, Message{Name: "getResultRequest"})
	if err := d.Validate(); err == nil {
		t.Error("duplicate message should fail validation")
	}

	d = base()
	// Make an XDR-bound message non-numeric.
	d.Messages[0].Parts[0].Type = wire.KindString
	if err := d.Validate(); err == nil {
		t.Error("non-numeric part behind XDR binding should fail validation")
	}
}

func TestPortsByKind(t *testing.T) {
	d := matmulDefs(t)
	for _, k := range []BindingKind{BindSOAP, BindXDR, BindJavaObject} {
		refs := d.PortsByKind(k)
		if len(refs) != 1 {
			t.Fatalf("kind %v: %d refs", k, len(refs))
		}
		if refs[0].Binding.Kind != k {
			t.Fatalf("kind %v: wrong binding", k)
		}
	}
	if refs := d.PortsByKind(BindHTTP); len(refs) != 0 {
		t.Fatalf("no HTTP ports expected, got %d", len(refs))
	}
}

func TestBindingKindString(t *testing.T) {
	if BindSOAP.String() != "soap" || BindXDR.String() != "xdr" ||
		BindJavaObject.String() != "java" || BindHTTP.String() != "http" ||
		BindingKind(99).String() != "unknown" {
		t.Fatal("BindingKind.String broken")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`<notdefs/>`,
		`<definitions name="X"><message name="m"><part name="p" type="xsd:bogus"/></message></definitions>`,
		`<definitions name="X"><binding name="b" type="t"/></definitions>`,
		`<definitions name="X" xmlns:weird="urn:w"><binding name="b" type="t"><weird:binding/></binding></definitions>`,
	}
	for _, s := range bad {
		if _, err := ParseString(s); err == nil {
			t.Errorf("ParseString should fail for: %s", s)
		}
	}
}

func TestLookupsReturnNilOnMiss(t *testing.T) {
	d := matmulDefs(t)
	if d.Message("x") != nil || d.PortType("x") != nil || d.Binding("x") != nil || d.Service("x") != nil {
		t.Fatal("lookups should return nil on miss")
	}
	if pt, op := d.Operation("x"); pt != nil || op != nil {
		t.Fatal("Operation should return nils on miss")
	}
}

// TestCapabilityRoundTrip proves declared binding capabilities (S33: the
// XDR `compress` advertisement) survive generate → render → parse.
func TestCapabilityRoundTrip(t *testing.T) {
	d, err := Generate(MatMulSpec(), EndpointSet{
		XDRAddress:  "host:9010",
		XDRCompress: "flate",
	})
	if err != nil {
		t.Fatal(err)
	}
	xb := d.Binding("MatMulXDRBinding")
	if xb == nil {
		t.Fatal("no XDR binding")
	}
	if v, ok := xb.Capability("compress"); !ok || v != "flate" {
		t.Fatalf("compress capability = %q, %v", v, ok)
	}
	text := d.String()
	if !strings.Contains(text, `xdr:capability name="compress" value="flate"`) {
		t.Fatalf("rendered document lacks capability element:\n%s", text)
	}
	rt, err := ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	xb2 := rt.Binding("MatMulXDRBinding")
	if xb2 == nil {
		t.Fatal("no XDR binding after round trip")
	}
	if v, ok := xb2.Capability("compress"); !ok || v != "flate" {
		t.Fatalf("round-tripped capability = %q, %v", v, ok)
	}
	if _, ok := xb2.Capability("nope"); ok {
		t.Fatal("phantom capability")
	}
	if err := rt.Validate(); err != nil {
		t.Fatal(err)
	}
}
