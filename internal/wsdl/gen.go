package wsdl

import (
	"fmt"

	"harness2/internal/wire"
)

// ParamSpec describes one named, typed parameter of an operation.
type ParamSpec struct {
	Name string
	Type wire.Kind
}

// OpSpec describes one operation of a service implementation.
type OpSpec struct {
	Name   string
	Input  []ParamSpec
	Output []ParamSpec
}

// ServiceSpec is the Go-side description of a service implementation,
// playing the role of the Java class that IBM's wsdlgen/servicegen tools
// introspect in the paper's examples.
type ServiceSpec struct {
	Name       string
	Operations []OpSpec
}

// EndpointSet carries the concrete addresses to advertise for each binding
// kind; empty addresses suppress the corresponding binding, mirroring the
// provider's run-time choice of exposure.
type EndpointSet struct {
	SOAPAddress string // e.g. http://host:8080/services/MatMul
	// HTTPAddress exposes the HTTP GET (urlEncoded) binding,
	// e.g. http://host:8080/rest/MatMul. Only services whose parameters
	// are all text-encodable (no structs) may advertise it.
	HTTPAddress string
	XDRAddress  string // e.g. host:9010
	// XDRCompress names the wire-compression codec the XDR endpoint's
	// server accepts (v3 negotiation); empty suppresses the `compress`
	// capability and clients stay raw.
	XDRCompress string
	// ShmAddress locates the shared-memory handshake socket for same-host
	// clients: shm:<hostname>:<socket path>. The hostname lets a client on
	// a different machine reject the port without touching the filesystem.
	ShmAddress string
	// LocalAddress locates the JavaObject port: local:<container>/<instance>.
	LocalAddress string
	// Class names the implementing component type for the JavaObject
	// binding; Instance pins a specific stateful instance.
	Class    string
	Instance string
}

// Generate produces a complete WSDL document for spec: request/response
// message pairs per operation, one port type, and one binding+port per
// non-empty endpoint. This reproduces the paper's generation flow
// ("Executing the servicegen tool ... generates the WSDL description").
func Generate(spec ServiceSpec, eps EndpointSet) (*Definitions, error) {
	if spec.Name == "" {
		return nil, fmt.Errorf("wsdl: service spec must be named")
	}
	if len(spec.Operations) == 0 {
		return nil, fmt.Errorf("wsdl: service %q has no operations", spec.Name)
	}
	d := &Definitions{
		Name:            spec.Name,
		TargetNamespace: "urn:harness2:" + spec.Name,
	}
	pt := PortType{Name: spec.Name + "PortType"}
	for _, op := range spec.Operations {
		if op.Name == "" {
			return nil, fmt.Errorf("wsdl: service %q has unnamed operation", spec.Name)
		}
		in := Message{Name: op.Name + "Request"}
		for _, p := range op.Input {
			in.Parts = append(in.Parts, Part{Name: p.Name, Type: p.Type})
		}
		out := Message{Name: op.Name + "Response"}
		for _, p := range op.Output {
			out.Parts = append(out.Parts, Part{Name: p.Name, Type: p.Type})
		}
		d.Messages = append(d.Messages, in, out)
		pt.Operations = append(pt.Operations, Operation{
			Name:   op.Name,
			Input:  in.Name,
			Output: out.Name,
		})
	}
	d.PortTypes = append(d.PortTypes, pt)

	svc := Service{Name: spec.Name + "Service"}
	if eps.SOAPAddress != "" {
		b := Binding{
			Name:      spec.Name + "SOAPBinding",
			Type:      pt.Name,
			Kind:      BindSOAP,
			Style:     "rpc",
			Transport: "http://schemas.xmlsoap.org/soap/http",
		}
		d.Bindings = append(d.Bindings, b)
		svc.Ports = append(svc.Ports, Port{
			Name:    spec.Name + "SOAPPort",
			Binding: b.Name,
			Address: eps.SOAPAddress,
		})
	}
	if eps.HTTPAddress != "" {
		if err := checkURLEncodable(spec); err != nil {
			return nil, err
		}
		b := Binding{Name: spec.Name + "HTTPBinding", Type: pt.Name, Kind: BindHTTP}
		d.Bindings = append(d.Bindings, b)
		svc.Ports = append(svc.Ports, Port{
			Name:    spec.Name + "HTTPPort",
			Binding: b.Name,
			Address: eps.HTTPAddress,
		})
	}
	if eps.XDRAddress != "" {
		if err := checkNumericOnly(spec); err != nil {
			return nil, err
		}
		b := Binding{Name: spec.Name + "XDRBinding", Type: pt.Name, Kind: BindXDR}
		if eps.XDRCompress != "" {
			b.Capabilities = append(b.Capabilities, Capability{Name: "compress", Value: eps.XDRCompress})
		}
		d.Bindings = append(d.Bindings, b)
		svc.Ports = append(svc.Ports, Port{
			Name:    spec.Name + "XDRPort",
			Binding: b.Name,
			Address: eps.XDRAddress,
		})
	}
	if eps.ShmAddress != "" {
		if err := checkNumericOnly(spec); err != nil {
			return nil, err
		}
		b := Binding{Name: spec.Name + "ShmBinding", Type: pt.Name, Kind: BindShm}
		d.Bindings = append(d.Bindings, b)
		svc.Ports = append(svc.Ports, Port{
			Name:    spec.Name + "ShmPort",
			Binding: b.Name,
			Address: eps.ShmAddress,
		})
	}
	if eps.LocalAddress != "" {
		class := eps.Class
		if class == "" {
			class = spec.Name
		}
		b := Binding{
			Name:     spec.Name + "JavaBinding",
			Type:     pt.Name,
			Kind:     BindJavaObject,
			Class:    class,
			Instance: eps.Instance,
		}
		d.Bindings = append(d.Bindings, b)
		svc.Ports = append(svc.Ports, Port{
			Name:    spec.Name + "JavaPort",
			Binding: b.Name,
			Address: eps.LocalAddress,
		})
	}
	if len(svc.Ports) == 0 {
		return nil, fmt.Errorf("wsdl: service %q has no endpoints", spec.Name)
	}
	d.Services = append(d.Services, svc)
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

func checkURLEncodable(spec ServiceSpec) error {
	for _, op := range spec.Operations {
		for _, p := range append(append([]ParamSpec{}, op.Input...), op.Output...) {
			if p.Type == wire.KindStruct {
				return fmt.Errorf("wsdl: operation %q parameter %q is a struct; cannot expose an HTTP GET endpoint",
					op.Name, p.Name)
			}
		}
	}
	return nil
}

func checkNumericOnly(spec ServiceSpec) error {
	for _, op := range spec.Operations {
		for _, p := range append(append([]ParamSpec{}, op.Input...), op.Output...) {
			if !p.Type.Numeric() {
				return fmt.Errorf("wsdl: operation %q parameter %q (%v) is not numeric; cannot expose an XDR endpoint",
					op.Name, p.Name, p.Type)
			}
		}
	}
	return nil
}

// WSTimeSpec is the paper's Figure 7 example: a trivial Time service with
// a single no-argument getTime operation returning a string.
func WSTimeSpec() ServiceSpec {
	return ServiceSpec{
		Name: "WSTime",
		Operations: []OpSpec{{
			Name:   "getTime",
			Output: []ParamSpec{{Name: "time", Type: wire.KindString}},
		}},
	}
}

// MatMulSpec is the paper's Figure 8 example: getResult(mata, matb)
// returning an array of doubles.
func MatMulSpec() ServiceSpec {
	return ServiceSpec{
		Name: "MatMul",
		Operations: []OpSpec{{
			Name: "getResult",
			Input: []ParamSpec{
				{Name: "mata", Type: wire.KindFloat64Array},
				{Name: "matb", Type: wire.KindFloat64Array},
			},
			Output: []ParamSpec{{Name: "result", Type: wire.KindFloat64Array}},
		}},
	}
}
