// Package wsdl models the Web Services Description Language 1.1 subset
// used by HARNESS II: abstract messages, port types, and operations, plus
// concrete bindings and service ports.
//
// Following the paper, four binding kinds are supported:
//
//   - SOAP/HTTP — the W3C-standardised binding, usable by any SOAP client
//     (including the "lightweight clients (e.g. handheld devices)" case);
//   - HTTP GET — the second standardised binding, carried for completeness;
//   - JavaObject — the HARNESS II extension binding that addresses a
//     specific, pre-existing, stateful component instance in the local
//     container ("the binding not only defines the object type but also a
//     specific instance");
//   - XDR — the HARNESS II extension binding that delivers numerical data
//     on direct socket-level connections in XDR encoding;
//   - Shm — a further extension binding for co-located processes: the
//     same XDR-encoded records carried over a shared-memory ring pair
//     instead of a socket, usable only when client and server share a
//     host (see internal/shmring).
//
// The package also implements the paper's `wsdlgen`/`servicegen` tooling
// equivalent: Generate produces a complete WSDL definition from a Go
// service descriptor (see Generate), and Parse/Node round-trip definitions
// through XML so they can be published in the registry.
package wsdl

import (
	"fmt"
	"strings"

	"harness2/internal/wire"
	"harness2/internal/xmlq"
)

// BindingKind identifies the concrete access mechanism of a binding.
type BindingKind int

// Binding kinds, in decreasing order of expected invocation cost — the
// invocation framework prefers later entries when co-located.
const (
	BindSOAP       BindingKind = iota // SOAP over HTTP
	BindHTTP                          // HTTP GET (urlEncoded)
	BindXDR                           // XDR over direct socket
	BindJavaObject                    // in-process instance access
	BindShm                           // XDR records over a same-host shared-memory ring
)

// String returns the binding kind's WSDL extension element prefix.
func (k BindingKind) String() string {
	switch k {
	case BindSOAP:
		return "soap"
	case BindHTTP:
		return "http"
	case BindXDR:
		return "xdr"
	case BindJavaObject:
		return "java"
	case BindShm:
		return "shm"
	}
	return "unknown"
}

// Part is one named, typed piece of a message.
type Part struct {
	Name string
	Type wire.Kind
}

// Message is a named collection of parts.
type Message struct {
	Name  string
	Parts []Part
}

// Operation is an exchange of messages between client and server.
type Operation struct {
	Name   string
	Input  string // request message name
	Output string // response message name; empty for one-way
}

// PortType groups operations, per the WSDL abstract-interface model.
type PortType struct {
	Name       string
	Operations []Operation
}

// Binding associates a port type with a concrete protocol.
type Binding struct {
	Name string
	Type string // port type name
	Kind BindingKind
	// Style and Transport apply to SOAP bindings.
	Style     string
	Transport string
	// Class and Instance apply to JavaObject bindings: Class names the
	// component type; Instance, when non-empty, pins a specific stateful
	// instance in the container, which is the HARNESS II extension over
	// IBM's WSIF Java binding.
	Class    string
	Instance string
	// Capabilities are declared, negotiable properties of the endpoint
	// (the first step toward a declared-capability registry): named,
	// optionally-valued, rendered as <prefix:capability> children of the
	// binding extension element. The XDR binding advertises
	// {Name: "compress", Value: "<codec>"} when its server accepts v3
	// wire compression; clients that understand a capability opt in at
	// dial time, and ones that do not simply ignore it.
	Capabilities []Capability
}

// Capability is one declared binding capability.
type Capability struct {
	Name  string
	Value string
}

// Capability looks up a declared capability by name.
func (b *Binding) Capability(name string) (string, bool) {
	for _, c := range b.Capabilities {
		if c.Name == name {
			return c.Value, true
		}
	}
	return "", false
}

// Port exposes a binding at a network (or local) address.
type Port struct {
	Name    string
	Binding string // binding name
	// Address is the endpoint: an http:// URL for SOAP/HTTP bindings, a
	// host:port for XDR bindings, or a container-local locator
	// (local:<container>/<instance>) for JavaObject bindings.
	Address string
}

// Service is a named set of ports.
type Service struct {
	Name  string
	Ports []Port
}

// Definitions is a complete WSDL document.
type Definitions struct {
	Name            string
	TargetNamespace string
	Messages        []Message
	PortTypes       []PortType
	Bindings        []Binding
	Services        []Service
}

// Message returns the message with the given name, or nil.
func (d *Definitions) Message(name string) *Message {
	for i := range d.Messages {
		if d.Messages[i].Name == name {
			return &d.Messages[i]
		}
	}
	return nil
}

// PortType returns the port type with the given name, or nil.
func (d *Definitions) PortType(name string) *PortType {
	for i := range d.PortTypes {
		if d.PortTypes[i].Name == name {
			return &d.PortTypes[i]
		}
	}
	return nil
}

// Binding returns the binding with the given name, or nil.
func (d *Definitions) Binding(name string) *Binding {
	for i := range d.Bindings {
		if d.Bindings[i].Name == name {
			return &d.Bindings[i]
		}
	}
	return nil
}

// Service returns the service with the given name, or nil.
func (d *Definitions) Service(name string) *Service {
	for i := range d.Services {
		if d.Services[i].Name == name {
			return &d.Services[i]
		}
	}
	return nil
}

// Operation resolves an operation by name across all port types.
func (d *Definitions) Operation(name string) (*PortType, *Operation) {
	for i := range d.PortTypes {
		pt := &d.PortTypes[i]
		for j := range pt.Operations {
			if pt.Operations[j].Name == name {
				return pt, &pt.Operations[j]
			}
		}
	}
	return nil, nil
}

// PortsByKind returns every (service, port, binding) triple whose binding
// has the given kind, in document order.
func (d *Definitions) PortsByKind(kind BindingKind) []PortRef {
	var out []PortRef
	for i := range d.Services {
		svc := &d.Services[i]
		for j := range svc.Ports {
			p := &svc.Ports[j]
			b := d.Binding(p.Binding)
			if b != nil && b.Kind == kind {
				out = append(out, PortRef{Service: svc, Port: p, Binding: b})
			}
		}
	}
	return out
}

// PortRef bundles a resolved port with its service and binding.
type PortRef struct {
	Service *Service
	Port    *Port
	Binding *Binding
}

// Validate checks referential integrity: every operation references
// defined messages, every binding a defined port type, every port a
// defined binding; XDR-bound port types must carry only numeric parts
// (the binding "is designed to be limited to the transfer of numerical
// data").
func (d *Definitions) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("wsdl: definitions must be named")
	}
	seenMsg := map[string]bool{}
	for _, m := range d.Messages {
		if m.Name == "" {
			return fmt.Errorf("wsdl: unnamed message")
		}
		if seenMsg[m.Name] {
			return fmt.Errorf("wsdl: duplicate message %q", m.Name)
		}
		seenMsg[m.Name] = true
		for _, p := range m.Parts {
			if p.Name == "" {
				return fmt.Errorf("wsdl: message %q has unnamed part", m.Name)
			}
			if p.Type == wire.KindInvalid {
				return fmt.Errorf("wsdl: message %q part %q has invalid type", m.Name, p.Name)
			}
		}
	}
	for _, pt := range d.PortTypes {
		for _, op := range pt.Operations {
			if op.Input != "" && d.Message(op.Input) == nil {
				return fmt.Errorf("wsdl: operation %q references unknown input message %q", op.Name, op.Input)
			}
			if op.Output != "" && d.Message(op.Output) == nil {
				return fmt.Errorf("wsdl: operation %q references unknown output message %q", op.Name, op.Output)
			}
		}
	}
	for _, b := range d.Bindings {
		pt := d.PortType(b.Type)
		if pt == nil {
			return fmt.Errorf("wsdl: binding %q references unknown port type %q", b.Name, b.Type)
		}
		if b.Kind == BindXDR || b.Kind == BindShm {
			// The shm binding carries the same XDR-encoded records, so it
			// inherits the XDR binding's numeric-only restriction.
			for _, op := range pt.Operations {
				for _, msgName := range []string{op.Input, op.Output} {
					if msgName == "" {
						continue
					}
					for _, part := range d.Message(msgName).Parts {
						if !part.Type.Numeric() {
							return fmt.Errorf("wsdl: %v binding %q cannot carry non-numeric part %q (%v) of message %q",
								b.Kind, b.Name, part.Name, part.Type, msgName)
						}
					}
				}
			}
		}
	}
	for _, s := range d.Services {
		for _, p := range s.Ports {
			if d.Binding(p.Binding) == nil {
				return fmt.Errorf("wsdl: port %q references unknown binding %q", p.Name, p.Binding)
			}
			if p.Address == "" {
				return fmt.Errorf("wsdl: port %q has no address", p.Name)
			}
		}
	}
	return nil
}

// Namespace URIs used in generated documents.
const (
	NSWSDL = "http://schemas.xmlsoap.org/wsdl/"
	NSSOAP = "http://schemas.xmlsoap.org/wsdl/soap/"
	NSHTTP = "http://schemas.xmlsoap.org/wsdl/http/"
	NSJava = "urn:harness2:wsdl:java"
	NSXDR  = "urn:harness2:wsdl:xdr"
	NSShm  = "urn:harness2:wsdl:shm"
	NSXSD  = "http://www.w3.org/2001/XMLSchema"
)

// Node renders the definitions as an xmlq document following the layout of
// the paper's Figures 7 and 8.
func (d *Definitions) Node() *xmlq.Node {
	root := xmlq.NewNode("definitions")
	root.SetAttr("name", d.Name)
	if d.TargetNamespace != "" {
		root.SetAttr("targetNamespace", d.TargetNamespace)
	}
	root.Attrs = append(root.Attrs,
		xmlq.Attr{Space: "", Local: "xmlns", Value: NSWSDL},
		xmlq.Attr{Space: "xmlns", Local: "soap", Value: NSSOAP},
		xmlq.Attr{Space: "xmlns", Local: "http", Value: NSHTTP},
		xmlq.Attr{Space: "xmlns", Local: "java", Value: NSJava},
		xmlq.Attr{Space: "xmlns", Local: "xdr", Value: NSXDR},
		xmlq.Attr{Space: "xmlns", Local: "shm", Value: NSShm},
		xmlq.Attr{Space: "xmlns", Local: "xsd", Value: NSXSD},
	)
	for _, m := range d.Messages {
		mn := root.AddNew("message")
		mn.SetAttr("name", m.Name)
		for _, p := range m.Parts {
			pn := mn.AddNew("part")
			pn.SetAttr("name", p.Name)
			pn.SetAttr("type", "xsd:"+p.Type.String())
		}
	}
	for _, pt := range d.PortTypes {
		ptn := root.AddNew("portType")
		ptn.SetAttr("name", pt.Name)
		for _, op := range pt.Operations {
			opn := ptn.AddNew("operation")
			opn.SetAttr("name", op.Name)
			if op.Input != "" {
				opn.AddNew("input").SetAttr("message", op.Input)
			}
			if op.Output != "" {
				opn.AddNew("output").SetAttr("message", op.Output)
			}
		}
	}
	for _, b := range d.Bindings {
		bn := root.AddNew("binding")
		bn.SetAttr("name", b.Name)
		bn.SetAttr("type", b.Type)
		var ext *xmlq.Node
		switch b.Kind {
		case BindSOAP:
			ext = bn.AddNew("soap:binding")
			style := b.Style
			if style == "" {
				style = "rpc"
			}
			transport := b.Transport
			if transport == "" {
				transport = "http://schemas.xmlsoap.org/soap/http"
			}
			ext.SetAttr("style", style)
			ext.SetAttr("transport", transport)
		case BindHTTP:
			ext = bn.AddNew("http:binding")
			ext.SetAttr("verb", "GET")
		case BindJavaObject:
			ext = bn.AddNew("java:binding")
			ext.SetAttr("class", b.Class)
			if b.Instance != "" {
				ext.SetAttr("instance", b.Instance)
			}
		case BindXDR:
			ext = bn.AddNew("xdr:binding")
			ext.SetAttr("transport", "socket")
		case BindShm:
			ext = bn.AddNew("shm:binding")
			ext.SetAttr("transport", "shared-memory")
		}
		if ext != nil {
			for _, c := range b.Capabilities {
				cn := ext.AddNew(ext.Prefix + ":capability")
				cn.SetAttr("name", c.Name)
				if c.Value != "" {
					cn.SetAttr("value", c.Value)
				}
			}
		}
	}
	for _, s := range d.Services {
		sn := root.AddNew("service")
		sn.SetAttr("name", s.Name)
		for _, p := range s.Ports {
			pn := sn.AddNew("port")
			pn.SetAttr("name", p.Name)
			pn.SetAttr("binding", p.Binding)
			pn.AddNew("address").SetAttr("location", p.Address)
		}
	}
	return root
}

// String renders the definitions as XML text.
func (d *Definitions) String() string { return d.Node().String() }

// Parse reconstructs Definitions from an xmlq document produced by Node
// (or any structurally-compatible WSDL subset document).
func Parse(root *xmlq.Node) (*Definitions, error) {
	if root.Local != "definitions" {
		return nil, fmt.Errorf("wsdl: root element is %q, want definitions", root.Local)
	}
	d := &Definitions{
		Name:            root.AttrOr("name", ""),
		TargetNamespace: root.AttrOr("targetNamespace", ""),
	}
	for _, mn := range root.ChildrenNamed("message") {
		m := Message{Name: mn.AttrOr("name", "")}
		for _, pn := range mn.ChildrenNamed("part") {
			typeName := strings.TrimPrefix(pn.AttrOr("type", ""), "xsd:")
			k := wire.KindByName(typeName)
			if k == wire.KindInvalid {
				return nil, fmt.Errorf("wsdl: message %q part %q has unknown type %q",
					m.Name, pn.AttrOr("name", ""), typeName)
			}
			m.Parts = append(m.Parts, Part{Name: pn.AttrOr("name", ""), Type: k})
		}
		d.Messages = append(d.Messages, m)
	}
	for _, ptn := range root.ChildrenNamed("portType") {
		pt := PortType{Name: ptn.AttrOr("name", "")}
		for _, opn := range ptn.ChildrenNamed("operation") {
			op := Operation{Name: opn.AttrOr("name", "")}
			if in := opn.Child("input"); in != nil {
				op.Input = in.AttrOr("message", "")
			}
			if out := opn.Child("output"); out != nil {
				op.Output = out.AttrOr("message", "")
			}
			pt.Operations = append(pt.Operations, op)
		}
		d.PortTypes = append(d.PortTypes, pt)
	}
	for _, bn := range root.ChildrenNamed("binding") {
		b := Binding{Name: bn.AttrOr("name", ""), Type: bn.AttrOr("type", "")}
		ext := bn.Child("binding")
		if ext == nil {
			return nil, fmt.Errorf("wsdl: binding %q has no extension element", b.Name)
		}
		switch ext.Prefix {
		case "soap":
			b.Kind = BindSOAP
			b.Style = ext.AttrOr("style", "rpc")
			b.Transport = ext.AttrOr("transport", "")
		case "http":
			b.Kind = BindHTTP
		case "java":
			b.Kind = BindJavaObject
			b.Class = ext.AttrOr("class", "")
			b.Instance = ext.AttrOr("instance", "")
		case "xdr":
			b.Kind = BindXDR
		case "shm":
			b.Kind = BindShm
		default:
			return nil, fmt.Errorf("wsdl: binding %q has unknown extension prefix %q", b.Name, ext.Prefix)
		}
		for _, cn := range ext.ChildrenNamed("capability") {
			b.Capabilities = append(b.Capabilities, Capability{
				Name:  cn.AttrOr("name", ""),
				Value: cn.AttrOr("value", ""),
			})
		}
		d.Bindings = append(d.Bindings, b)
	}
	for _, sn := range root.ChildrenNamed("service") {
		s := Service{Name: sn.AttrOr("name", "")}
		for _, pn := range sn.ChildrenNamed("port") {
			p := Port{Name: pn.AttrOr("name", ""), Binding: pn.AttrOr("binding", "")}
			if addr := pn.Child("address"); addr != nil {
				p.Address = addr.AttrOr("location", "")
			}
			s.Ports = append(s.Ports, p)
		}
		d.Services = append(d.Services, s)
	}
	return d, nil
}

// ParseString parses a WSDL document from XML text.
func ParseString(s string) (*Definitions, error) {
	root, err := xmlq.ParseString(s)
	if err != nil {
		return nil, err
	}
	return Parse(root)
}
