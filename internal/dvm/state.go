// Package dvm implements the top HARNESS II abstraction layer of
// Figure 6: the distributed component container, i.e. the Distributed
// Virtual Machine. It supplies "a unified name space, status query,
// lookup service and a management point for a set of component
// containers", introducing the notion of distributed global state.
//
// Per the paper, "the Harness II framework defines only the DVM API and
// does not mandate any particular solution to maintain global state
// coherency": the Coherency interface is that API, and the package ships
// the three concrete strategies the paper discusses — full synchrony
// (replicated state, synchronous event distribution), full
// decentralisation (no propagation, spanning queries), and a hybrid
// (synchronous neighbourhoods, distributed far queries). All three expose
// the same functional interface, so applications run unchanged on any of
// them; their costs differ, which experiment E5 measures over simnet.
package dvm

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// EventKind enumerates global-state change events.
type EventKind int

// State events: node membership and service-table changes.
const (
	NodeJoin EventKind = iota
	NodeLeave
	ServiceAdd
	ServiceRemove
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case NodeJoin:
		return "node-join"
	case NodeLeave:
		return "node-leave"
	case ServiceAdd:
		return "service-add"
	case ServiceRemove:
		return "service-remove"
	}
	return "unknown"
}

// ServiceEntry is one row of the DVM-wide service table.
type ServiceEntry struct {
	Node     string // hosting container/kernel name
	Instance string // instance ID within the node
	Class    string // component class
	Service  string // service name (from the WSDL spec)
	WSDL     string // full description document
}

// Key returns the entry's unique identity within the DVM.
func (e ServiceEntry) Key() string { return e.Node + "/" + e.Instance }

// ByteSize approximates the entry's wire footprint for traffic accounting.
func (e ServiceEntry) ByteSize() int {
	return len(e.Node) + len(e.Instance) + len(e.Class) + len(e.Service) + len(e.WSDL) + 16
}

// Event is one state-change notification.
type Event struct {
	Kind  EventKind
	Node  string // subject node for membership events
	Entry ServiceEntry
}

// ByteSize approximates the event's wire footprint.
func (ev Event) ByteSize() int { return 8 + len(ev.Node) + ev.Entry.ByteSize() }

// Query selects service-table rows. Zero-valued fields match anything.
type Query struct {
	Service  string
	Class    string
	Node     string
	Instance string
}

// ByteSize approximates the query's wire footprint.
func (q Query) ByteSize() int {
	return 16 + len(q.Service) + len(q.Class) + len(q.Node) + len(q.Instance)
}

// Match reports whether e satisfies q.
func (q Query) Match(e ServiceEntry) bool {
	if q.Service != "" && q.Service != e.Service {
		return false
	}
	if q.Class != "" && q.Class != e.Class {
		return false
	}
	if q.Node != "" && q.Node != e.Node {
		return false
	}
	if q.Instance != "" && q.Instance != e.Instance {
		return false
	}
	return true
}

// String renders the query for diagnostics.
func (q Query) String() string {
	var parts []string
	if q.Service != "" {
		parts = append(parts, "service="+q.Service)
	}
	if q.Class != "" {
		parts = append(parts, "class="+q.Class)
	}
	if q.Node != "" {
		parts = append(parts, "node="+q.Node)
	}
	if q.Instance != "" {
		parts = append(parts, "instance="+q.Instance)
	}
	if len(parts) == 0 {
		return "query{*}"
	}
	return "query{" + strings.Join(parts, ",") + "}"
}

// store is one node's view of (a subset of) the global service table.
type store struct {
	mu      sync.RWMutex
	entries map[string]ServiceEntry
	nodes   map[string]bool
}

func newStore() *store {
	return &store{entries: make(map[string]ServiceEntry), nodes: make(map[string]bool)}
}

// apply folds one event into the store.
func (s *store) apply(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch ev.Kind {
	case NodeJoin:
		s.nodes[ev.Node] = true
	case NodeLeave:
		delete(s.nodes, ev.Node)
		for k, e := range s.entries {
			if e.Node == ev.Node {
				delete(s.entries, k)
			}
		}
	case ServiceAdd:
		s.entries[ev.Entry.Key()] = ev.Entry
	case ServiceRemove:
		delete(s.entries, ev.Entry.Key())
	}
}

// query returns matching entries sorted by key.
func (s *store) query(q Query) []ServiceEntry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []ServiceEntry
	for _, e := range s.entries {
		if q.Match(e) {
			out = append(out, e)
		}
	}
	sortEntries(out)
	return out
}

func (s *store) nodeNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.nodes))
	for n := range s.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func (s *store) len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.entries)
}

func sortEntries(entries []ServiceEntry) {
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key() < entries[j].Key() })
}

// mergeEntries deduplicates and sorts entry sets gathered from many nodes.
func mergeEntries(sets ...[]ServiceEntry) []ServiceEntry {
	seen := map[string]bool{}
	var out []ServiceEntry
	for _, set := range sets {
		for _, e := range set {
			if !seen[e.Key()] {
				seen[e.Key()] = true
				out = append(out, e)
			}
		}
	}
	sortEntries(out)
	return out
}

// ErrUnknownMember is returned when an operation names a node outside the
// DVM.
var ErrUnknownMember = fmt.Errorf("dvm: unknown member node")
