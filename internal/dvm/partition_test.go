package dvm

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"harness2/internal/container"
	"harness2/internal/resilience"
	"harness2/internal/simnet"
	"harness2/internal/telemetry"
)

func testDVMPolicy(t *testing.T, reg *telemetry.Registry) *resilience.Policy {
	t.Helper()
	p, err := resilience.New(
		resilience.WithMaxAttempts(5),
		resilience.WithBackoff(time.Microsecond, 10*time.Microsecond),
		resilience.WithTelemetry(reg),
	)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestPartitionEvictAndRejoin is the DVM robustness regression across all
// three coherency strategies: a partitioned member is evicted from the
// unified name space, and on heal it rejoins cleanly — no duplicate
// membership, the membership gauge returns to its pre-partition value,
// and its redeployed services are visible again from other nodes.
func TestPartitionEvictAndRejoin(t *testing.T) {
	for _, mk := range []func(*simnet.Network) Coherency{
		func(n *simnet.Network) Coherency { return NewFullSync(n) },
		func(n *simnet.Network) Coherency { return NewDecentralized(n) },
		func(n *simnet.Network) Coherency { return NewHybrid(n, 2) },
	} {
		net := simnet.New(simnet.LAN)
		coh := mk(net)
		name := coh.Name()
		reg := telemetry.New()
		d := New("part", coh)
		d.SetTelemetry(reg)
		d.SetResilience(testDVMPolicy(t, reg))

		nodes := make([]*container.Container, 4)
		for i := range nodes {
			nodes[i] = newNode(fmt.Sprintf("n%d", i))
			if err := d.AddNode(nodes[i]); err != nil {
				t.Fatalf("[%s] add n%d: %v", name, i, err)
			}
		}
		if _, err := d.Deploy("n1", "Echo", "survivor"); err != nil {
			t.Fatalf("[%s] %v", name, err)
		}
		if _, err := d.Deploy("n3", "Echo", "victim"); err != nil {
			t.Fatalf("[%s] %v", name, err)
		}
		fixed := []string{"dvm", "part", "strategy", name}
		gauge := reg.Gauge("harness_dvm_members", fixed...)
		preMembers := gauge.Value()
		if preMembers != 4 {
			t.Fatalf("[%s] pre-partition gauge = %d", name, preMembers)
		}

		// Partition n3 from every other member; the monitor's sweep must
		// evict it and purge its services everywhere.
		for i := 0; i < 3; i++ {
			net.Partition(fmt.Sprintf("n%d", i), "n3", true)
		}
		evicted, err := d.EvictFailed("n0", NewDetector(d, 3))
		if err != nil {
			t.Fatalf("[%s] evict: %v", name, err)
		}
		if len(evicted) != 1 || evicted[0] != "n3" {
			t.Fatalf("[%s] evicted = %v", name, evicted)
		}
		if got := d.Nodes(); len(got) != 3 {
			t.Fatalf("[%s] members after evict = %v", name, got)
		}
		if gauge.Value() != 3 {
			t.Fatalf("[%s] gauge after evict = %d", name, gauge.Value())
		}
		if ev := reg.Counter("harness_dvm_evictions_total", fixed...).Value(); ev != 1 {
			t.Fatalf("[%s] evictions counter = %d", name, ev)
		}
		entries, err := d.Lookup("n0", Query{Service: "Echo"})
		if err != nil {
			t.Fatalf("[%s] lookup: %v", name, err)
		}
		if len(entries) != 1 || entries[0].Node != "n1" {
			t.Fatalf("[%s] post-evict entries = %v", name, entries)
		}

		// Heal and rejoin: the evicted node re-enrolls under its old name.
		for i := 0; i < 3; i++ {
			net.Partition(fmt.Sprintf("n%d", i), "n3", false)
		}
		if err := d.AddNode(nodes[3]); err != nil {
			t.Fatalf("[%s] rejoin: %v", name, err)
		}
		got := d.Nodes()
		if len(got) != 4 {
			t.Fatalf("[%s] members after rejoin = %v", name, got)
		}
		seen := map[string]bool{}
		for _, n := range got {
			if seen[n] {
				t.Fatalf("[%s] duplicate member %q after rejoin", name, n)
			}
			seen[n] = true
		}
		if gauge.Value() != preMembers {
			t.Fatalf("[%s] gauge after rejoin = %d, want %d", name, gauge.Value(), preMembers)
		}
		// A second enrolment under the same name must still be refused.
		if err := d.AddNode(nodes[3]); err == nil {
			t.Fatalf("[%s] duplicate enrolment accepted", name)
		}
		if gauge.Value() != preMembers {
			t.Fatalf("[%s] gauge after refused enrolment = %d", name, gauge.Value())
		}
		// The rejoined node's services re-enter the unified name space.
		if _, err := d.Deploy("n3", "Echo", "reborn"); err != nil {
			t.Fatalf("[%s] redeploy: %v", name, err)
		}
		entries, err = d.Lookup("n0", Query{Service: "Echo"})
		if err != nil {
			t.Fatalf("[%s] lookup after rejoin: %v", name, err)
		}
		hosts := map[string]bool{}
		for _, e := range entries {
			hosts[e.Node] = true
		}
		if len(entries) != 2 || !hosts["n1"] || !hosts["n3"] {
			t.Fatalf("[%s] post-rejoin entries = %v", name, entries)
		}
	}
}

// TestCoherencyBroadcastRetriesDroppedMessage: with a resilience policy
// attached, a dropped distribution message is re-sent instead of failing
// the whole deploy. The seeded drop sequence (p=0.62, seed 1) drops the
// first send and passes the second, so the outcome is deterministic.
func TestCoherencyBroadcastRetriesDroppedMessage(t *testing.T) {
	setup := func() (*DVM, *simnet.Network) {
		net := simnet.New(simnet.LAN)
		d := New("retry", NewFullSync(net))
		d.SetTelemetry(telemetry.Disabled())
		for i := 0; i < 2; i++ {
			if err := d.AddNode(newNode(fmt.Sprintf("n%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		return d, net
	}

	// Without a policy the dropped broadcast fails the deploy.
	d, net := setup()
	net.SetDrop(0.62, 1)
	if _, err := d.Deploy("n0", "Echo", "e1"); err == nil {
		t.Fatal("deploy should fail when the broadcast message drops")
	} else if !errors.Is(err, simnet.ErrDropped) {
		t.Fatalf("err = %v", err)
	}

	// With a policy the re-sent message lands and the deploy succeeds.
	d, net = setup()
	reg := telemetry.New()
	d.SetResilience(testDVMPolicy(t, reg))
	net.SetDrop(0.62, 1)
	if _, err := d.Deploy("n0", "Echo", "e1"); err != nil {
		t.Fatalf("deploy with policy: %v", err)
	}
	entries, err := d.Lookup("n1", Query{Service: "Echo"})
	if err != nil || len(entries) != 1 {
		t.Fatalf("replica lookup = %v, %v", entries, err)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(),
		`harness_resilience_retries_total{op="coherency.distribute"} 1`) {
		t.Fatalf("retry not recorded:\n%s", b.String())
	}
}

// TestCoherencyPartitionFailsFast: a severed link is not a transient
// fault — the policy must not burn its retry budget on it.
func TestCoherencyPartitionFailsFast(t *testing.T) {
	net := simnet.New(simnet.LAN)
	d := New("fastfail", NewFullSync(net))
	d.SetTelemetry(telemetry.Disabled())
	reg := telemetry.New()
	d.SetResilience(testDVMPolicy(t, reg))
	for i := 0; i < 2; i++ {
		if err := d.AddNode(newNode(fmt.Sprintf("n%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	net.Partition("n0", "n1", true)
	if _, err := d.Deploy("n0", "Echo", "e1"); err == nil {
		t.Fatal("deploy across a partition should fail")
	} else if !errors.Is(err, simnet.ErrPartitioned) {
		t.Fatalf("err = %v", err)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "harness_resilience_retries_total") {
		t.Fatalf("partition was retried:\n%s", b.String())
	}
}
