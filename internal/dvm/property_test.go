package dvm

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"harness2/internal/simnet"
)

// TestPropertyStrategiesEquivalent drives an identical random operation
// sequence against all three coherency strategies and checks that every
// node of every strategy answers every query identically. This is the
// paper's core interchangeability promise: "they always expose the same
// functional interface ... so that applications can be deployed and run
// on any Harness II DVM regardless of the underlying state management
// solution adapted."
func TestPropertyStrategiesEquivalent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		strategies := []Coherency{
			NewFullSync(simnet.New(simnet.LAN)),
			NewDecentralized(simnet.New(simnet.LAN)),
			NewHybrid(simnet.New(simnet.LAN), 1+r.Intn(4)),
		}
		nodes := make([]string, n)
		for i := range nodes {
			nodes[i] = fmt.Sprintf("n%d", i)
			for _, coh := range strategies {
				if _, err := coh.AddNode(nodes[i]); err != nil {
					t.Logf("add: %v", err)
					return false
				}
			}
		}
		// live tracks entries we believe exist, for removal picks.
		type slot struct{ node, instance string }
		var live []slot
		services := []string{"A", "B", "C"}
		const ops = 60
		for op := 0; op < ops; op++ {
			switch {
			case len(live) == 0 || r.Float64() < 0.6: // add
				node := nodes[r.Intn(n)]
				inst := fmt.Sprintf("i%d", op)
				svc := services[r.Intn(len(services))]
				ev := Event{Kind: ServiceAdd, Node: node, Entry: ServiceEntry{
					Node: node, Instance: inst, Class: svc, Service: svc}}
				for _, coh := range strategies {
					if _, err := coh.Apply(node, ev); err != nil {
						t.Logf("apply: %v", err)
						return false
					}
				}
				live = append(live, slot{node, inst})
			default: // remove
				i := r.Intn(len(live))
				s := live[i]
				live = append(live[:i], live[i+1:]...)
				ev := Event{Kind: ServiceRemove, Node: s.node,
					Entry: ServiceEntry{Node: s.node, Instance: s.instance}}
				for _, coh := range strategies {
					if _, err := coh.Apply(s.node, ev); err != nil {
						t.Logf("apply rm: %v", err)
						return false
					}
				}
			}
			// Every few ops, compare a random query from a random node
			// across strategies against the full-sync reference.
			if op%5 == 0 {
				from := nodes[r.Intn(n)]
				q := Query{Service: services[r.Intn(len(services))]}
				ref, _, err := strategies[0].Query(from, q)
				if err != nil {
					t.Logf("ref query: %v", err)
					return false
				}
				for _, coh := range strategies[1:] {
					got, _, err := coh.Query(from, q)
					if err != nil {
						t.Logf("query: %v", err)
						return false
					}
					if !sameEntries(ref, got) {
						t.Logf("seed %d op %d: %s answered %v, full-sync %v",
							seed, op, coh.Name(), got, ref)
						return false
					}
				}
			}
		}
		// Final exhaustive check: every node, every service, plus the
		// match-all query.
		queries := []Query{{}, {Service: "A"}, {Service: "B"}, {Service: "C"}}
		for _, from := range nodes {
			for _, q := range queries {
				ref, _, err := strategies[0].Query(from, q)
				if err != nil {
					return false
				}
				for _, coh := range strategies[1:] {
					got, _, err := coh.Query(from, q)
					if err != nil || !sameEntries(ref, got) {
						t.Logf("final: %s from %s %s: %v vs %v", coh.Name(), from, q, got, ref)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func sameEntries(a, b []ServiceEntry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Key() != b[i].Key() || a[i].Service != b[i].Service {
			return false
		}
	}
	return true
}

// TestPropertyMembershipChurn mixes joins and leaves into the sequence:
// after any prefix of operations, all strategies agree on the surviving
// service set as seen from a surviving node.
func TestPropertyMembershipChurn(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		strategies := []Coherency{
			NewFullSync(simnet.New(simnet.LAN)),
			NewDecentralized(simnet.New(simnet.LAN)),
			NewHybrid(simnet.New(simnet.LAN), 2),
		}
		// A stable anchor node never leaves, so queries always have a
		// home perspective.
		for _, coh := range strategies {
			if _, err := coh.AddNode("anchor"); err != nil {
				return false
			}
		}
		members := map[string]bool{}
		next := 0
		for op := 0; op < 40; op++ {
			switch r.Intn(3) {
			case 0: // join a new node and give it a service
				name := fmt.Sprintf("m%d", next)
				next++
				for _, coh := range strategies {
					if _, err := coh.AddNode(name); err != nil {
						return false
					}
					ev := Event{Kind: ServiceAdd, Node: name, Entry: ServiceEntry{
						Node: name, Instance: "svc", Class: "X", Service: "X"}}
					if _, err := coh.Apply(name, ev); err != nil {
						return false
					}
				}
				members[name] = true
			case 1: // a member leaves (its services must vanish)
				for name := range members {
					for _, coh := range strategies {
						if _, err := coh.RemoveNode(name); err != nil {
							return false
						}
					}
					delete(members, name)
					break
				}
			default: // verify
				ref, _, err := strategies[0].Query("anchor", Query{Service: "X"})
				if err != nil {
					return false
				}
				if len(ref) != len(members) {
					t.Logf("seed %d: full-sync sees %d, members %d", seed, len(ref), len(members))
					return false
				}
				for _, coh := range strategies[1:] {
					got, _, err := coh.Query("anchor", Query{Service: "X"})
					if err != nil || !sameEntries(ref, got) {
						t.Logf("seed %d: %s disagrees", seed, coh.Name())
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
