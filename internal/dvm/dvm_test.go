package dvm

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"harness2/internal/container"
	"harness2/internal/simnet"
	"harness2/internal/wire"
	"harness2/internal/wsdl"
)

func echoFactory() container.Factory {
	return container.FuncFactory(func() *container.FuncComponent {
		return &container.FuncComponent{
			Spec: wsdl.ServiceSpec{Name: "Echo", Operations: []wsdl.OpSpec{
				{Name: "echo", Input: []wsdl.ParamSpec{{Name: "x", Type: wire.KindFloat64}},
					Output: []wsdl.ParamSpec{{Name: "x", Type: wire.KindFloat64}}},
			}},
			Handlers: map[string]container.OpFunc{
				"echo": func(ctx context.Context, args []wire.Arg) ([]wire.Arg, error) {
					return args, nil
				},
			},
		}
	})
}

func newNode(name string) *container.Container {
	c := container.New(container.Config{Name: name})
	c.RegisterFactory("Echo", echoFactory())
	return c
}

func allStrategies(net *simnet.Network) []Coherency {
	return []Coherency{NewFullSync(net), NewDecentralized(net), NewHybrid(net, 2)}
}

func TestEventKindString(t *testing.T) {
	want := map[EventKind]string{NodeJoin: "node-join", NodeLeave: "node-leave",
		ServiceAdd: "service-add", ServiceRemove: "service-remove", EventKind(9): "unknown"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}

func TestQueryMatchAndString(t *testing.T) {
	e := ServiceEntry{Node: "n1", Instance: "i1", Class: "Echo", Service: "Echo"}
	cases := []struct {
		q    Query
		want bool
	}{
		{Query{}, true},
		{Query{Service: "Echo"}, true},
		{Query{Service: "Other"}, false},
		{Query{Class: "Echo", Node: "n1"}, true},
		{Query{Instance: "i2"}, false},
		{Query{Node: "n2"}, false},
	}
	for _, c := range cases {
		if got := c.q.Match(e); got != c.want {
			t.Errorf("%s.Match = %v", c.q, got)
		}
	}
	if (Query{}).String() != "query{*}" {
		t.Error("empty query string")
	}
	if s := (Query{Service: "S", Node: "n"}).String(); s != "query{service=S,node=n}" {
		t.Errorf("query string = %q", s)
	}
}

// TestStrategiesAgree is the core consistency property: all coherency
// strategies must expose identical query semantics, differing only in
// cost.
func TestStrategiesAgree(t *testing.T) {
	net := simnet.New(simnet.LAN)
	for _, coh := range allStrategies(net) {
		t.Run(coh.Name(), func(t *testing.T) {
			d := New("dvm1", coh)
			nodes := []*container.Container{}
			for i := 0; i < 5; i++ {
				c := newNode(fmt.Sprintf("n%d", i))
				nodes = append(nodes, c)
				if err := d.AddNode(c); err != nil {
					t.Fatal(err)
				}
			}
			// Deploy two Echo instances per node.
			for i := range nodes {
				for j := 0; j < 2; j++ {
					if _, err := d.Deploy(fmt.Sprintf("n%d", i), "Echo", fmt.Sprintf("e%d-%d", i, j)); err != nil {
						t.Fatal(err)
					}
				}
			}
			// Every node sees all ten services.
			for i := 0; i < 5; i++ {
				entries, err := d.Lookup(fmt.Sprintf("n%d", i), Query{Service: "Echo"})
				if err != nil {
					t.Fatal(err)
				}
				if len(entries) != 10 {
					t.Fatalf("node n%d sees %d entries, want 10", i, len(entries))
				}
			}
			// Scoped queries.
			entries, _ := d.Lookup("n0", Query{Node: "n3"})
			if len(entries) != 2 {
				t.Fatalf("node-scoped lookup = %d", len(entries))
			}
			entries, _ = d.Lookup("n4", Query{Instance: "e2-1"})
			if len(entries) != 1 || entries[0].Node != "n2" {
				t.Fatalf("instance lookup = %v", entries)
			}
			// Undeploy propagates.
			if err := d.Undeploy("n2", "e2-1"); err != nil {
				t.Fatal(err)
			}
			entries, _ = d.Lookup("n0", Query{Service: "Echo"})
			if len(entries) != 9 {
				t.Fatalf("after undeploy: %d", len(entries))
			}
			// Node removal purges its services from every view.
			if err := d.RemoveNode("n3"); err != nil {
				t.Fatal(err)
			}
			entries, _ = d.Lookup("n0", Query{Service: "Echo"})
			if len(entries) != 7 {
				t.Fatalf("after node leave: %d", len(entries))
			}
			if got := len(d.Nodes()); got != 4 {
				t.Fatalf("nodes = %d", got)
			}
		})
	}
}

func TestCostShape(t *testing.T) {
	// The paper's trade-off: full sync pays on updates and nothing on
	// queries; decentralized pays on queries and nothing on updates.
	mkDVM := func(coh Coherency, n int) *DVM {
		d := New("d", coh)
		for i := 0; i < n; i++ {
			if err := d.AddNode(newNode(fmt.Sprintf("n%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		return d
	}

	netFS := simnet.New(simnet.LAN)
	dFS := mkDVM(NewFullSync(netFS), 8)
	netFS.ResetStats()
	if _, err := dFS.Deploy("n0", "Echo", "e"); err != nil {
		t.Fatal(err)
	}
	updMsgs := netFS.Stats().Messages
	if updMsgs != 14 { // 7 peers × (event + ack)
		t.Fatalf("full-sync update messages = %d, want 14", updMsgs)
	}
	netFS.ResetStats()
	if _, err := dFS.Lookup("n5", Query{Service: "Echo"}); err != nil {
		t.Fatal(err)
	}
	if m := netFS.Stats().Messages; m != 0 {
		t.Fatalf("full-sync query messages = %d, want 0", m)
	}

	netDC := simnet.New(simnet.LAN)
	dDC := mkDVM(NewDecentralized(netDC), 8)
	netDC.ResetStats()
	if _, err := dDC.Deploy("n0", "Echo", "e"); err != nil {
		t.Fatal(err)
	}
	if m := netDC.Stats().Messages; m != 0 {
		t.Fatalf("decentralized update messages = %d, want 0", m)
	}
	netDC.ResetStats()
	if _, err := dDC.Lookup("n5", Query{Service: "Echo"}); err != nil {
		t.Fatal(err)
	}
	if m := netDC.Stats().Messages; m != 14 { // 7 peers × (query + response)
		t.Fatalf("decentralized query messages = %d, want 14", m)
	}

	// Hybrid k=4 with 8 nodes: update touches 3 hood peers; query touches
	// 1 other-hood representative.
	netHY := simnet.New(simnet.LAN)
	dHY := mkDVM(NewHybrid(netHY, 4), 8)
	netHY.ResetStats()
	if _, err := dHY.Deploy("n0", "Echo", "e"); err != nil {
		t.Fatal(err)
	}
	if m := netHY.Stats().Messages; m != 6 {
		t.Fatalf("hybrid update messages = %d, want 6", m)
	}
	netHY.ResetStats()
	if _, err := dHY.Lookup("n0", Query{Service: "Echo"}); err != nil {
		t.Fatal(err)
	}
	if m := netHY.Stats().Messages; m != 2 {
		t.Fatalf("hybrid query messages = %d, want 2", m)
	}
}

func TestInvokeThroughUnifiedNamespace(t *testing.T) {
	net := simnet.New(simnet.LAN)
	d := New("d", NewFullSync(net))
	a, b := newNode("a"), newNode("b")
	if err := d.AddNode(a); err != nil {
		t.Fatal(err)
	}
	if err := d.AddNode(b); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Deploy("b", "Echo", "e1"); err != nil {
		t.Fatal(err)
	}
	// Invoke from node a; the service lives on b.
	out, err := d.Invoke(context.Background(), "a", Query{Service: "Echo"}, "echo", wire.Args("x", 4.5))
	if err != nil {
		t.Fatal(err)
	}
	x, _ := wire.GetArg(out, "x")
	if x.(float64) != 4.5 {
		t.Fatalf("x = %v", x)
	}
	// Port-based access.
	p, err := d.Port("a", Query{Service: "Echo"})
	if err != nil {
		t.Fatal(err)
	}
	out, err = p.Invoke(context.Background(), "echo", wire.Args("x", 1.25))
	if err != nil {
		t.Fatal(err)
	}
	if x, _ := wire.GetArg(out, "x"); x.(float64) != 1.25 {
		t.Fatalf("x = %v", x)
	}
	// Misses.
	if _, err := d.Invoke(context.Background(), "a", Query{Service: "Nope"}, "echo", nil); err == nil {
		t.Fatal("miss should error")
	}
	if _, err := d.Port("a", Query{Service: "Nope"}); err == nil {
		t.Fatal("port miss should error")
	}
}

func TestMembershipErrors(t *testing.T) {
	net := simnet.New(simnet.LAN)
	for _, coh := range allStrategies(net) {
		d := New("d", coh)
		n := newNode("x-" + coh.Name())
		if err := d.AddNode(n); err != nil {
			t.Fatal(err)
		}
		if err := d.AddNode(n); err == nil {
			t.Errorf("[%s] duplicate add should fail", coh.Name())
		}
		if err := d.RemoveNode("ghost"); !errors.Is(err, ErrUnknownMember) {
			t.Errorf("[%s] err = %v", coh.Name(), err)
		}
		if _, err := d.Deploy("ghost", "Echo", ""); !errors.Is(err, ErrUnknownMember) {
			t.Errorf("[%s] err = %v", coh.Name(), err)
		}
		if err := d.Undeploy("ghost", "i"); !errors.Is(err, ErrUnknownMember) {
			t.Errorf("[%s] err = %v", coh.Name(), err)
		}
		if _, err := d.Lookup("ghost", Query{}); err == nil {
			t.Errorf("[%s] lookup from ghost should fail", coh.Name())
		}
		if _, _, err := coh.Query("ghost", Query{}); err == nil {
			t.Errorf("[%s] raw query from ghost should fail", coh.Name())
		}
		if _, err := coh.Apply("ghost", Event{}); err == nil {
			t.Errorf("[%s] raw apply from ghost should fail", coh.Name())
		}
	}
}

func TestDeployRollbackOnCoherencyFailure(t *testing.T) {
	// When full-sync distribution fails (partition), the deployment must
	// roll back so the service table and reality agree.
	net := simnet.New(simnet.LAN)
	d := New("d", NewFullSync(net))
	a, b := newNode("a"), newNode("b")
	_ = d.AddNode(a)
	_ = d.AddNode(b)
	net.Partition("a", "b", true)
	if _, err := d.Deploy("a", "Echo", "e1"); err == nil {
		t.Fatal("deploy across a partition should fail under full sync")
	}
	if _, ok := a.Instance("e1"); ok {
		t.Fatal("failed deploy left the instance behind")
	}
}

func TestDecentralizedToleratesPartition(t *testing.T) {
	// Decentralized queries are best-effort: a partitioned node's services
	// are invisible but the query succeeds.
	net := simnet.New(simnet.LAN)
	d := New("d", NewDecentralized(net))
	a, b, c := newNode("a"), newNode("b"), newNode("c")
	_ = d.AddNode(a)
	_ = d.AddNode(b)
	_ = d.AddNode(c)
	if _, err := d.Deploy("b", "Echo", "eb"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Deploy("c", "Echo", "ec"); err != nil {
		t.Fatal(err)
	}
	net.Partition("a", "b", true)
	entries, err := d.Lookup("a", Query{Service: "Echo"})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Node != "c" {
		t.Fatalf("entries = %v", entries)
	}
	net.Partition("a", "b", false)
	entries, _ = d.Lookup("a", Query{Service: "Echo"})
	if len(entries) != 2 {
		t.Fatalf("after heal: %v", entries)
	}
}

func TestHybridNeighbourhoodAssignment(t *testing.T) {
	net := simnet.New(simnet.LAN)
	h := NewHybrid(net, 3)
	for i := 0; i < 7; i++ {
		if _, err := h.AddNode(fmt.Sprintf("n%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if len(h.hoods) != 3 {
		t.Fatalf("hoods = %d, want 3 (3+3+1)", len(h.hoods))
	}
	// Removing a node frees a slot that the next join reuses.
	if _, err := h.RemoveNode("n1"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.AddNode("n7"); err != nil {
		t.Fatal(err)
	}
	if h.hood["n7"] != 0 {
		t.Fatalf("n7 hood = %d, want 0 (reused slot)", h.hood["n7"])
	}
}

func TestHybridKFloor(t *testing.T) {
	h := NewHybrid(simnet.New(simnet.LAN), 0)
	if h.K != 1 {
		t.Fatalf("K = %d", h.K)
	}
	if h.Name() != "hybrid-k1" {
		t.Fatalf("name = %q", h.Name())
	}
}

func TestStatus(t *testing.T) {
	net := simnet.New(simnet.LAN)
	d := New("d", NewFullSync(net))
	a, b := newNode("a"), newNode("b")
	_ = d.AddNode(a)
	_ = d.AddNode(b)
	_, _ = d.Deploy("a", "Echo", "")
	_, _ = d.Deploy("a", "Echo", "")
	_, _ = d.Deploy("b", "Echo", "")
	st := d.Status()
	if len(st) != 2 || st[0].Node != "a" || st[0].Instances != 2 || st[1].Instances != 1 {
		t.Fatalf("status = %+v", st)
	}
	if len(st[0].Classes) != 1 || st[0].Classes[0] != "Echo" {
		t.Fatalf("classes = %v", st[0].Classes)
	}
}

func TestVirtualTimeAccumulates(t *testing.T) {
	net := simnet.New(simnet.WAN)
	d := New("d", NewFullSync(net))
	_ = d.AddNode(newNode("a"))
	_ = d.AddNode(newNode("b"))
	before := d.VirtualTime()
	if _, err := d.Deploy("a", "Echo", ""); err != nil {
		t.Fatal(err)
	}
	if d.VirtualTime() <= before {
		t.Fatal("deploy over WAN should accumulate virtual time")
	}
}

func TestFullSyncLatencyScalesWithFabric(t *testing.T) {
	run := func(link simnet.LinkConfig) time.Duration {
		net := simnet.New(link)
		coh := NewFullSync(net)
		_, _ = coh.AddNode("a")
		_, _ = coh.AddNode("b")
		lat, err := coh.Apply("a", Event{Kind: ServiceAdd, Entry: ServiceEntry{Node: "a", Instance: "i"}})
		if err != nil {
			panic(err)
		}
		return lat
	}
	if run(simnet.WAN) <= run(simnet.LAN) {
		t.Fatal("WAN distribution should cost more than LAN")
	}
}
