package dvm

import (
	"fmt"
	"testing"

	"harness2/internal/container"
	"harness2/internal/simnet"
)

func failureDVM(t *testing.T, mk func(*simnet.Network) Coherency, n int) (*DVM, *simnet.Network) {
	t.Helper()
	net := simnet.New(simnet.LAN)
	d := New("fd", mk(net))
	for i := 0; i < n; i++ {
		c := container.New(container.Config{Name: fmt.Sprintf("n%d", i)})
		c.RegisterFactory("Echo", echoFactory())
		if err := d.AddNode(c); err != nil {
			t.Fatal(err)
		}
	}
	return d, net
}

func TestDetectorAllAlive(t *testing.T) {
	d, _ := failureDVM(t, func(n *simnet.Network) Coherency { return NewFullSync(n) }, 4)
	det := NewDetector(d, 3)
	suspects, cost := det.Sweep("n0")
	if len(suspects) != 0 {
		t.Fatalf("suspects = %v", suspects)
	}
	if cost <= 0 {
		t.Fatal("probing should cost modelled time")
	}
}

func TestDetectorFindsPartitionedNode(t *testing.T) {
	for _, mk := range []func(*simnet.Network) Coherency{
		func(n *simnet.Network) Coherency { return NewFullSync(n) },
		func(n *simnet.Network) Coherency { return NewDecentralized(n) },
		func(n *simnet.Network) Coherency { return NewHybrid(n, 2) },
	} {
		d, net := failureDVM(t, mk, 5)
		name := d.Coherency().Name()
		if _, err := d.Deploy("n3", "Echo", "victim"); err != nil {
			t.Fatalf("[%s] %v", name, err)
		}
		if _, err := d.Deploy("n1", "Echo", "survivor"); err != nil {
			t.Fatalf("[%s] %v", name, err)
		}
		// n3 dies: partition it from everyone.
		for i := 0; i < 5; i++ {
			if i != 3 {
				net.Partition(fmt.Sprintf("n%d", i), "n3", true)
			}
		}
		det := NewDetector(d, 3)
		evicted, err := d.EvictFailed("n0", det)
		if err != nil {
			t.Fatalf("[%s] evict: %v", name, err)
		}
		if len(evicted) != 1 || evicted[0] != "n3" {
			t.Fatalf("[%s] evicted = %v", name, evicted)
		}
		if got := len(d.Nodes()); got != 4 {
			t.Fatalf("[%s] members = %d", name, got)
		}
		// The dead node's services are gone from the unified namespace;
		// the survivor's remain.
		entries, err := d.Lookup("n0", Query{Service: "Echo"})
		if err != nil {
			t.Fatalf("[%s] lookup: %v", name, err)
		}
		if len(entries) != 1 || entries[0].Node != "n1" {
			t.Fatalf("[%s] entries = %v", name, entries)
		}
	}
}

func TestDetectorRetriesSurviveTransientLoss(t *testing.T) {
	d, net := failureDVM(t, func(n *simnet.Network) Coherency { return NewFullSync(n) }, 3)
	// 40% loss: with 5 retries the chance all probes to a node drop is
	// ~1%; the seeded sequence below keeps every member alive.
	net.SetDrop(0.4, 11)
	det := NewDetector(d, 5)
	suspects, _ := det.Sweep("n0")
	if len(suspects) != 0 {
		t.Fatalf("suspects under transient loss = %v", suspects)
	}
	// Total loss: everyone is suspect.
	net.SetDrop(1.0, 1)
	suspects, _ = det.Sweep("n0")
	if len(suspects) != 2 {
		t.Fatalf("suspects under total loss = %v", suspects)
	}
}

func TestDetectorDefaults(t *testing.T) {
	d, _ := failureDVM(t, func(n *simnet.Network) Coherency { return NewFullSync(n) }, 2)
	det := NewDetector(d, 0)
	if det.Retries != 3 {
		t.Fatalf("default retries = %d", det.Retries)
	}
	alive, _ := det.Probe("n0", "n1")
	if !alive {
		t.Fatal("healthy node reported dead")
	}
}

func TestEvictErrors(t *testing.T) {
	net := simnet.New(simnet.LAN)
	for _, coh := range []Coherency{NewFullSync(net), NewDecentralized(net), NewHybrid(net, 2)} {
		ev := coh.(Evicter)
		if _, err := ev.Evict("ghost", "alsoghost"); err == nil {
			t.Errorf("[%s] evict of unknown nodes should fail", coh.Name())
		}
	}
	fs := NewFullSync(net)
	if _, err := fs.AddNode("ea"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Evict("ea", "ghost"); err == nil {
		t.Fatal("evicting unknown dead node should fail")
	}
	if _, err := fs.Evict("ghost", "ea"); err == nil {
		t.Fatal("evicting by unknown monitor should fail")
	}
}

func TestHybridEvictPurgesDeadHoodReplicas(t *testing.T) {
	net := simnet.New(simnet.LAN)
	h := NewHybrid(net, 2) // hoods: {h0,h1}, {h2,h3}
	for i := 0; i < 4; i++ {
		if _, err := h.AddNode(fmt.Sprintf("h%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	// h2 publishes; its replica lives at h3 (same hood).
	if _, err := h.Apply("h2", Event{Kind: ServiceAdd, Node: "h2",
		Entry: ServiceEntry{Node: "h2", Instance: "s", Service: "S"}}); err != nil {
		t.Fatal(err)
	}
	// h0 (other hood) evicts h2.
	if _, err := h.Evict("h0", "h2"); err != nil {
		t.Fatal(err)
	}
	// Queries from any survivor must no longer see h2's service.
	for _, from := range []string{"h0", "h1", "h3"} {
		entries, _, err := h.Query(from, Query{Service: "S"})
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 0 {
			t.Fatalf("from %s: stale entries %v", from, entries)
		}
	}
}
