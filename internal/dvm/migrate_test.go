package dvm

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"harness2/internal/container"
	"harness2/internal/simnet"
	"harness2/internal/wire"
	"harness2/internal/wsdl"
)

func migratableFactory() container.Factory {
	return container.FuncFactory(func() *container.FuncComponent {
		var mu sync.Mutex
		var n int64
		f := &container.FuncComponent{
			Spec: wsdl.ServiceSpec{Name: "MCounter", Operations: []wsdl.OpSpec{
				{Name: "inc", Input: []wsdl.ParamSpec{{Name: "by", Type: wire.KindInt64}},
					Output: []wsdl.ParamSpec{{Name: "total", Type: wire.KindInt64}}},
			}},
		}
		f.Handlers = map[string]container.OpFunc{
			"inc": func(ctx context.Context, args []wire.Arg) ([]wire.Arg, error) {
				by, _ := wire.GetArg(args, "by")
				mu.Lock()
				defer mu.Unlock()
				n += by.(int64)
				return wire.Args("total", n), nil
			},
		}
		f.OnSnapshot = func() ([]container.Field, error) {
			mu.Lock()
			defer mu.Unlock()
			return []container.Field{{Name: "n", Value: n}}, nil
		}
		f.OnRestore = func(state []container.Field) error {
			mu.Lock()
			defer mu.Unlock()
			for _, s := range state {
				if s.Name == "n" {
					n = s.Value.(int64)
					return nil
				}
			}
			return fmt.Errorf("missing n")
		}
		return f
	})
}

func TestDVMMigrateUpdatesNamespace(t *testing.T) {
	net := simnet.New(simnet.LAN)
	for _, coh := range allStrategies(net) {
		t.Run(coh.Name(), func(t *testing.T) {
			d := New("d", coh)
			suffix := coh.Name()
			a := container.New(container.Config{Name: "a-" + suffix})
			b := container.New(container.Config{Name: "b-" + suffix})
			a.RegisterFactory("MCounter", migratableFactory())
			b.RegisterFactory("MCounter", migratableFactory())
			if err := d.AddNode(a); err != nil {
				t.Fatal(err)
			}
			if err := d.AddNode(b); err != nil {
				t.Fatal(err)
			}
			if _, err := d.Deploy(a.Name(), "MCounter", "job"); err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()
			if _, err := d.Invoke(ctx, a.Name(), Query{Service: "MCounter"}, "inc", wire.Args("by", int64(7))); err != nil {
				t.Fatal(err)
			}
			if err := d.Migrate(a.Name(), "job", b.Name()); err != nil {
				t.Fatal(err)
			}
			// The unified namespace now locates the service on b, from
			// every node's perspective.
			for _, from := range []string{a.Name(), b.Name()} {
				entries, err := d.Lookup(from, Query{Service: "MCounter"})
				if err != nil {
					t.Fatal(err)
				}
				if len(entries) != 1 || entries[0].Node != b.Name() {
					t.Fatalf("from %s: entries = %v", from, entries)
				}
			}
			// State travelled with the component.
			out, err := d.Invoke(ctx, a.Name(), Query{Service: "MCounter"}, "inc", wire.Args("by", int64(0)))
			if err != nil {
				t.Fatal(err)
			}
			total, _ := wire.GetArg(out, "total")
			if total.(int64) != 7 {
				t.Fatalf("total = %v", total)
			}
		})
	}
}

func TestDVMMigrateErrors(t *testing.T) {
	net := simnet.New(simnet.LAN)
	d := New("d", NewFullSync(net))
	a := container.New(container.Config{Name: "ma"})
	a.RegisterFactory("MCounter", migratableFactory())
	if err := d.AddNode(a); err != nil {
		t.Fatal(err)
	}
	if err := d.Migrate("ghost", "x", "ma"); err == nil {
		t.Fatal("unknown source should fail")
	}
	if err := d.Migrate("ma", "x", "ghost"); err == nil {
		t.Fatal("unknown destination should fail")
	}
	b := container.New(container.Config{Name: "mb"})
	b.RegisterFactory("MCounter", migratableFactory())
	if err := d.AddNode(b); err != nil {
		t.Fatal(err)
	}
	if err := d.Migrate("ma", "nope", "mb"); err == nil {
		t.Fatal("unknown instance should fail")
	}
}
