package dvm

import (
	"time"

	"harness2/internal/simnet"
)

// Failure detection. Harness "focuses primarily on improving robustness";
// a DVM must notice dead or unreachable members and withdraw their
// services from the unified name space. Detector implements a simple
// heartbeat monitor over the fabric: a member probes its peers, retries
// transient losses, and reports the peers that never answered. Eviction
// is then an ordinary NodeLeave through the coherency strategy, so every
// replica purges the dead node's service-table rows.
type Detector struct {
	dvm *DVM
	// Retries is how many consecutive failed probes mark a suspect
	// (defaults to 3 when zero or negative).
	Retries int
	// HeartbeatBytes is the modelled probe size (default 32).
	HeartbeatBytes int
}

// NewDetector returns a detector over the DVM's coherency fabric.
func NewDetector(d *DVM, retries int) *Detector {
	if retries <= 0 {
		retries = 3
	}
	return &Detector{dvm: d, Retries: retries, HeartbeatBytes: 32}
}

// fabric gives detectors access to the coherency strategy's network. The
// three shipped strategies all expose it.
type fabric interface {
	Fabric() *simnet.Network
}

// Probe heartbeats target from monitor, retrying transient losses, and
// reports whether the target ever answered plus the modelled probing cost.
func (det *Detector) Probe(monitor, target string) (alive bool, cost time.Duration) {
	net := det.network()
	if net == nil {
		return true, 0
	}
	hb := det.HeartbeatBytes
	if hb <= 0 {
		hb = 32
	}
	for attempt := 0; attempt < det.Retries; attempt++ {
		d, err := net.RTT(monitor, target, hb, hb)
		cost += d
		if err == nil {
			return true, cost
		}
	}
	return false, cost
}

// Sweep probes every member (other than monitor) and returns the
// suspects: members that answered none of their heartbeats. The cost is
// the summed modelled probe latency.
func (det *Detector) Sweep(monitor string) (suspects []string, cost time.Duration) {
	for _, member := range det.dvm.Nodes() {
		if member == monitor {
			continue
		}
		alive, c := det.Probe(monitor, member)
		cost += c
		if !alive {
			suspects = append(suspects, member)
		}
	}
	return suspects, cost
}

func (det *Detector) network() *simnet.Network {
	if f, ok := det.dvm.Coherency().(fabric); ok {
		return f.Fabric()
	}
	return nil
}

// Evicter is implemented by coherency strategies that support having a
// surviving member announce another member's death. This differs from
// RemoveNode, whose leave event originates at the departing node itself —
// impossible when that node is dead or unreachable.
type Evicter interface {
	Evict(byNode, deadNode string) (time.Duration, error)
}

// EvictFailed sweeps from monitor and removes every suspect from the DVM,
// returning the evicted node names. Note the inherent limitation of
// single-observer detection: a node partitioned only from the monitor is
// evicted even though other members may still reach it — the paper's
// full-synchrony scheme accepts this in exchange for simplicity.
func (d *DVM) EvictFailed(monitor string, det *Detector) ([]string, error) {
	suspects, cost := det.Sweep(monitor)
	d.chargeOp("probe", cost)
	for _, s := range suspects {
		d.mu.Lock()
		delete(d.members, s)
		d.mu.Unlock()
		d.met.evictions.Inc()
		d.memberCount()
		if ev, ok := d.coh.(Evicter); ok {
			t, err := ev.Evict(monitor, s)
			d.chargeOp("evict", t)
			if err != nil {
				return suspects, err
			}
			continue
		}
		if t, err := d.coh.RemoveNode(s); err != nil {
			return suspects, err
		} else {
			d.chargeOp("evict", t)
		}
	}
	return suspects, nil
}
