package dvm

import (
	"context"
	"fmt"
	"sync"
	"time"

	"harness2/internal/container"
	"harness2/internal/invoke"
	"harness2/internal/resilience"
	"harness2/internal/simnet"
	"harness2/internal/telemetry"
	"harness2/internal/wire"
)

// DVM is a Distributed Virtual Machine: a named aggregate of component
// containers with a unified name space. The functional behaviour (deploy,
// lookup, invoke) is real — containers host live components — while
// global-state maintenance is delegated to the chosen Coherency strategy,
// whose traffic is charged to the strategy's simnet fabric.
type DVM struct {
	name string
	coh  Coherency
	tel  *telemetry.Registry
	fab  *simnet.Network // the strategy's fabric, when it exposes one

	// met is the coherency instrument set (telemetry S27): per-op message
	// and byte counts sampled as fabric Stats() deltas, per-op modelled
	// latency, the membership gauge, and the eviction counter. Every
	// handle is nil-safe.
	met struct {
		ops       *telemetry.CounterVec
		msgs      *telemetry.CounterVec
		bytes     *telemetry.CounterVec
		virtNs    *telemetry.HistogramVec
		members   *telemetry.Gauge
		evictions *telemetry.Counter
	}
	lastStats simnet.Stats // guarded by mu; last sampled fabric counters

	mu      sync.RWMutex
	members map[string]*container.Container
	// virtual accumulates the modelled coherency latency of every
	// operation performed through this DVM.
	virtual time.Duration
}

// New creates a DVM with the given symbolic name (unique in the Harness
// name space, per the paper) and coherency strategy.
func New(name string, coh Coherency) *DVM {
	d := &DVM{name: name, coh: coh, members: make(map[string]*container.Container)}
	if f, ok := coh.(fabric); ok {
		d.fab = f.Fabric()
	}
	d.initMetrics()
	return d
}

// SetTelemetry selects the DVM's metrics registry; call it before any
// traffic flows. Nil falls back to the process default,
// telemetry.Disabled() switches instrumentation off.
func (d *DVM) SetTelemetry(r *telemetry.Registry) {
	d.tel = r
	d.initMetrics()
}

// resilient is implemented by coherency strategies whose distribution
// sends can be governed by a resilience policy (the three shipped
// strategies all qualify via cohNet).
type resilient interface {
	SetResilience(*resilience.Policy)
}

// SetResilience attaches a retry policy to the coherency strategy's
// distribution sends: dropped fabric messages are re-sent with backoff
// instead of failing the whole broadcast, and the retries surface in the
// policy's own telemetry. Call before traffic flows; nil detaches. The
// call is a no-op for strategies that do not expose the hook.
func (d *DVM) SetResilience(p *resilience.Policy) {
	if r, ok := d.coh.(resilient); ok {
		r.SetResilience(p)
	}
}

func (d *DVM) initMetrics() {
	tel := telemetry.Or(d.tel)
	tel.Help("harness_dvm_coherency_ops_total", "coherency operations by dvm, strategy and op")
	tel.Help("harness_dvm_coherency_messages_total", "fabric messages attributed to coherency ops")
	tel.Help("harness_dvm_coherency_bytes_total", "fabric bytes attributed to coherency ops")
	tel.Help("harness_dvm_coherency_latency_ns", "modelled coherency latency by op")
	tel.Help("harness_dvm_members", "enrolled member nodes by dvm")
	tel.Help("harness_dvm_evictions_total", "members evicted by failure detection")
	strategy := d.coh.Name()
	fixed := []string{"dvm", d.name, "strategy", strategy}
	d.met.ops = tel.CounterVec("harness_dvm_coherency_ops_total", "op", fixed...)
	d.met.msgs = tel.CounterVec("harness_dvm_coherency_messages_total", "op", fixed...)
	d.met.bytes = tel.CounterVec("harness_dvm_coherency_bytes_total", "op", fixed...)
	d.met.virtNs = tel.HistogramVec("harness_dvm_coherency_latency_ns", "op", fixed...)
	d.met.members = tel.Gauge("harness_dvm_members", fixed...)
	d.met.evictions = tel.Counter("harness_dvm_evictions_total", fixed...)
}

// Name returns the DVM's symbolic name.
func (d *DVM) Name() string { return d.name }

// Coherency returns the active DVM-enabling strategy.
func (d *DVM) Coherency() Coherency { return d.coh }

// VirtualTime returns the accumulated modelled coherency latency.
func (d *DVM) VirtualTime() time.Duration {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.virtual
}

// chargeOp accrues the modelled coherency latency of one operation and
// attributes the fabric traffic it generated (sampled as a Stats() delta
// since the previous operation) to the op's metric series. Sampling
// deltas at the DVM keeps the three coherency strategies free of
// instrumentation code. Negative deltas — a concurrent ResetStats — are
// clamped to zero.
func (d *DVM) chargeOp(op string, t time.Duration) {
	var dm int
	var db int64
	d.mu.Lock()
	d.virtual += t
	if d.fab != nil {
		st := d.fab.Stats()
		dm = st.Messages - d.lastStats.Messages
		db = st.Bytes - d.lastStats.Bytes
		d.lastStats = st
		if dm < 0 {
			dm = 0
		}
		if db < 0 {
			db = 0
		}
	}
	d.mu.Unlock()
	d.met.ops.With(op).Inc()
	d.met.msgs.With(op).Add(uint64(dm))
	d.met.bytes.With(op).Add(uint64(db))
	d.met.virtNs.With(op).ObserveDuration(t)
}

// memberCount refreshes the membership gauge.
func (d *DVM) memberCount() {
	d.mu.RLock()
	n := len(d.members)
	d.mu.RUnlock()
	d.met.members.Set(int64(n))
}

// AddNode enrolls a container as a DVM member.
func (d *DVM) AddNode(c *container.Container) error {
	name := c.Name()
	d.mu.Lock()
	if _, ok := d.members[name]; ok {
		d.mu.Unlock()
		return fmt.Errorf("dvm: node %q already enrolled", name)
	}
	d.members[name] = c
	d.mu.Unlock()
	t, err := d.coh.AddNode(name)
	d.chargeOp("node-add", t)
	if err != nil {
		d.mu.Lock()
		delete(d.members, name)
		d.mu.Unlock()
	}
	d.memberCount()
	return err
}

// RemoveNode withdraws a node; its services leave the unified name space.
func (d *DVM) RemoveNode(name string) error {
	d.mu.Lock()
	_, ok := d.members[name]
	delete(d.members, name)
	d.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownMember, name)
	}
	t, err := d.coh.RemoveNode(name)
	d.chargeOp("node-remove", t)
	d.memberCount()
	return err
}

// Node returns a member container.
func (d *DVM) Node(name string) (*container.Container, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	c, ok := d.members[name]
	return c, ok
}

// Nodes lists member node names.
func (d *DVM) Nodes() []string { return d.coh.Members() }

// Deploy instantiates class on the named node and records the service in
// the DVM-wide table through the coherency strategy.
func (d *DVM) Deploy(node, class, id string) (*container.Instance, error) {
	c, ok := d.Node(node)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownMember, node)
	}
	inst, _, err := c.Deploy(class, id)
	if err != nil {
		return nil, err
	}
	entry := ServiceEntry{
		Node:     node,
		Instance: inst.ID,
		Class:    inst.Class,
		Service:  inst.Spec().Name,
	}
	if defs, werr := c.WSDLFor(inst.ID); werr == nil {
		entry.WSDL = defs.String()
	}
	t, err := d.coh.Apply(node, Event{Kind: ServiceAdd, Node: node, Entry: entry})
	d.chargeOp("service-add", t)
	if err != nil {
		// Roll the deployment back so the table and reality agree.
		_ = c.Undeploy(inst.ID)
		return nil, err
	}
	return inst, nil
}

// Undeploy removes an instance and its table row.
func (d *DVM) Undeploy(node, id string) error {
	c, ok := d.Node(node)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownMember, node)
	}
	if err := c.Undeploy(id); err != nil {
		return err
	}
	t, err := d.coh.Apply(node, Event{
		Kind: ServiceRemove, Node: node,
		Entry: ServiceEntry{Node: node, Instance: id},
	})
	d.chargeOp("service-remove", t)
	return err
}

// Lookup answers q from the perspective of node, per the coherency
// strategy's consistency/traffic trade-off.
func (d *DVM) Lookup(node string, q Query) ([]ServiceEntry, error) {
	entries, t, err := d.coh.Query(node, q)
	d.chargeOp("query", t)
	return entries, err
}

// Invoke resolves an instance through the unified name space and invokes
// it: lookup from the caller's node, then direct dispatch to the hosting
// container (the post-discovery direct loop of Figure 4).
func (d *DVM) Invoke(ctx context.Context, fromNode string, q Query, op string, args []wire.Arg) ([]wire.Arg, error) {
	entries, err := d.Lookup(fromNode, q)
	if err != nil {
		return nil, err
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("dvm: %s matched no services", q)
	}
	e := entries[0]
	c, ok := d.Node(e.Node)
	if !ok {
		return nil, fmt.Errorf("%w: %q (stale table entry)", ErrUnknownMember, e.Node)
	}
	return c.Invoke(ctx, e.Instance, op, args)
}

// Port opens an invocation port to the first match of q, preferring local
// bindings when the caller's container is the host.
func (d *DVM) Port(fromNode string, q Query) (invoke.Port, error) {
	entries, err := d.Lookup(fromNode, q)
	if err != nil {
		return nil, err
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("dvm: %s matched no services", q)
	}
	e := entries[0]
	host, ok := d.Node(e.Node)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownMember, e.Node)
	}
	return &invoke.LocalPort{Container: host, Instance: e.Instance, Telemetry: d.tel}, nil
}

// Migrate moves a stateful instance between member nodes, updating the
// unified name space: the Section 6 mobility scenario ("upload his
// application component to a container residing on that node"). The
// service-table row moves atomically from the source node's entry to the
// destination's.
func (d *DVM) Migrate(fromNode, id, toNode string) error {
	src, ok := d.Node(fromNode)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownMember, fromNode)
	}
	dst, ok := d.Node(toNode)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownMember, toNode)
	}
	inst, ok := src.Instance(id)
	if !ok {
		return fmt.Errorf("dvm: no instance %q on %s", id, fromNode)
	}
	class, service := inst.Class, inst.Spec().Name
	if err := container.Migrate(src, id, dst); err != nil {
		return err
	}
	t, err := d.coh.Apply(fromNode, Event{Kind: ServiceRemove, Node: fromNode,
		Entry: ServiceEntry{Node: fromNode, Instance: id}})
	d.chargeOp("migrate", t)
	if err != nil {
		return err
	}
	entry := ServiceEntry{Node: toNode, Instance: id, Class: class, Service: service}
	if defs, werr := dst.WSDLFor(id); werr == nil {
		entry.WSDL = defs.String()
	}
	t, err = d.coh.Apply(toNode, Event{Kind: ServiceAdd, Node: toNode, Entry: entry})
	d.chargeOp("migrate", t)
	return err
}

// NodeStatus summarises one member's load.
type NodeStatus struct {
	Node      string
	Instances int
	Classes   []string
}

// Status reports per-node instance counts — the DVM status-query service.
func (d *DVM) Status() []NodeStatus {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var out []NodeStatus
	for name, c := range d.members {
		st := NodeStatus{Node: name}
		seen := map[string]bool{}
		for _, in := range c.Instances() {
			st.Instances++
			if !seen[in.Class] {
				seen[in.Class] = true
				st.Classes = append(st.Classes, in.Class)
			}
		}
		sortStrings(st.Classes)
		out = append(out, st)
	}
	sortByNode(out)
	return out
}

func sortByNode(s []NodeStatus) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].Node < s[j-1].Node; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
