package dvm

import (
	"context"
	"fmt"
	"sync"
	"time"

	"harness2/internal/container"
	"harness2/internal/invoke"
	"harness2/internal/wire"
)

// DVM is a Distributed Virtual Machine: a named aggregate of component
// containers with a unified name space. The functional behaviour (deploy,
// lookup, invoke) is real — containers host live components — while
// global-state maintenance is delegated to the chosen Coherency strategy,
// whose traffic is charged to the strategy's simnet fabric.
type DVM struct {
	name string
	coh  Coherency

	mu      sync.RWMutex
	members map[string]*container.Container
	// virtual accumulates the modelled coherency latency of every
	// operation performed through this DVM.
	virtual time.Duration
}

// New creates a DVM with the given symbolic name (unique in the Harness
// name space, per the paper) and coherency strategy.
func New(name string, coh Coherency) *DVM {
	return &DVM{name: name, coh: coh, members: make(map[string]*container.Container)}
}

// Name returns the DVM's symbolic name.
func (d *DVM) Name() string { return d.name }

// Coherency returns the active DVM-enabling strategy.
func (d *DVM) Coherency() Coherency { return d.coh }

// VirtualTime returns the accumulated modelled coherency latency.
func (d *DVM) VirtualTime() time.Duration {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.virtual
}

func (d *DVM) charge(t time.Duration) {
	d.mu.Lock()
	d.virtual += t
	d.mu.Unlock()
}

// AddNode enrolls a container as a DVM member.
func (d *DVM) AddNode(c *container.Container) error {
	name := c.Name()
	d.mu.Lock()
	if _, ok := d.members[name]; ok {
		d.mu.Unlock()
		return fmt.Errorf("dvm: node %q already enrolled", name)
	}
	d.members[name] = c
	d.mu.Unlock()
	t, err := d.coh.AddNode(name)
	d.charge(t)
	if err != nil {
		d.mu.Lock()
		delete(d.members, name)
		d.mu.Unlock()
	}
	return err
}

// RemoveNode withdraws a node; its services leave the unified name space.
func (d *DVM) RemoveNode(name string) error {
	d.mu.Lock()
	_, ok := d.members[name]
	delete(d.members, name)
	d.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownMember, name)
	}
	t, err := d.coh.RemoveNode(name)
	d.charge(t)
	return err
}

// Node returns a member container.
func (d *DVM) Node(name string) (*container.Container, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	c, ok := d.members[name]
	return c, ok
}

// Nodes lists member node names.
func (d *DVM) Nodes() []string { return d.coh.Members() }

// Deploy instantiates class on the named node and records the service in
// the DVM-wide table through the coherency strategy.
func (d *DVM) Deploy(node, class, id string) (*container.Instance, error) {
	c, ok := d.Node(node)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownMember, node)
	}
	inst, _, err := c.Deploy(class, id)
	if err != nil {
		return nil, err
	}
	entry := ServiceEntry{
		Node:     node,
		Instance: inst.ID,
		Class:    inst.Class,
		Service:  inst.Spec().Name,
	}
	if defs, werr := c.WSDLFor(inst.ID); werr == nil {
		entry.WSDL = defs.String()
	}
	t, err := d.coh.Apply(node, Event{Kind: ServiceAdd, Node: node, Entry: entry})
	d.charge(t)
	if err != nil {
		// Roll the deployment back so the table and reality agree.
		_ = c.Undeploy(inst.ID)
		return nil, err
	}
	return inst, nil
}

// Undeploy removes an instance and its table row.
func (d *DVM) Undeploy(node, id string) error {
	c, ok := d.Node(node)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownMember, node)
	}
	if err := c.Undeploy(id); err != nil {
		return err
	}
	t, err := d.coh.Apply(node, Event{
		Kind: ServiceRemove, Node: node,
		Entry: ServiceEntry{Node: node, Instance: id},
	})
	d.charge(t)
	return err
}

// Lookup answers q from the perspective of node, per the coherency
// strategy's consistency/traffic trade-off.
func (d *DVM) Lookup(node string, q Query) ([]ServiceEntry, error) {
	entries, t, err := d.coh.Query(node, q)
	d.charge(t)
	return entries, err
}

// Invoke resolves an instance through the unified name space and invokes
// it: lookup from the caller's node, then direct dispatch to the hosting
// container (the post-discovery direct loop of Figure 4).
func (d *DVM) Invoke(ctx context.Context, fromNode string, q Query, op string, args []wire.Arg) ([]wire.Arg, error) {
	entries, err := d.Lookup(fromNode, q)
	if err != nil {
		return nil, err
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("dvm: %s matched no services", q)
	}
	e := entries[0]
	c, ok := d.Node(e.Node)
	if !ok {
		return nil, fmt.Errorf("%w: %q (stale table entry)", ErrUnknownMember, e.Node)
	}
	return c.Invoke(ctx, e.Instance, op, args)
}

// Port opens an invocation port to the first match of q, preferring local
// bindings when the caller's container is the host.
func (d *DVM) Port(fromNode string, q Query) (invoke.Port, error) {
	entries, err := d.Lookup(fromNode, q)
	if err != nil {
		return nil, err
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("dvm: %s matched no services", q)
	}
	e := entries[0]
	host, ok := d.Node(e.Node)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownMember, e.Node)
	}
	return &invoke.LocalPort{Container: host, Instance: e.Instance}, nil
}

// Migrate moves a stateful instance between member nodes, updating the
// unified name space: the Section 6 mobility scenario ("upload his
// application component to a container residing on that node"). The
// service-table row moves atomically from the source node's entry to the
// destination's.
func (d *DVM) Migrate(fromNode, id, toNode string) error {
	src, ok := d.Node(fromNode)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownMember, fromNode)
	}
	dst, ok := d.Node(toNode)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownMember, toNode)
	}
	inst, ok := src.Instance(id)
	if !ok {
		return fmt.Errorf("dvm: no instance %q on %s", id, fromNode)
	}
	class, service := inst.Class, inst.Spec().Name
	if err := container.Migrate(src, id, dst); err != nil {
		return err
	}
	t, err := d.coh.Apply(fromNode, Event{Kind: ServiceRemove, Node: fromNode,
		Entry: ServiceEntry{Node: fromNode, Instance: id}})
	d.charge(t)
	if err != nil {
		return err
	}
	entry := ServiceEntry{Node: toNode, Instance: id, Class: class, Service: service}
	if defs, werr := dst.WSDLFor(id); werr == nil {
		entry.WSDL = defs.String()
	}
	t, err = d.coh.Apply(toNode, Event{Kind: ServiceAdd, Node: toNode, Entry: entry})
	d.charge(t)
	return err
}

// NodeStatus summarises one member's load.
type NodeStatus struct {
	Node      string
	Instances int
	Classes   []string
}

// Status reports per-node instance counts — the DVM status-query service.
func (d *DVM) Status() []NodeStatus {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var out []NodeStatus
	for name, c := range d.members {
		st := NodeStatus{Node: name}
		seen := map[string]bool{}
		for _, in := range c.Instances() {
			st.Instances++
			if !seen[in.Class] {
				seen[in.Class] = true
				st.Classes = append(st.Classes, in.Class)
			}
		}
		sortStrings(st.Classes)
		out = append(out, st)
	}
	sortByNode(out)
	return out
}

func sortByNode(s []NodeStatus) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].Node < s[j-1].Node; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
