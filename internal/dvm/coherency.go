package dvm

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"harness2/internal/resilience"
	"harness2/internal/simnet"
)

// Coherency is the DVM-enabling component interface: how the global state
// is kept consistent across member nodes. Implementations must deliver
// identical Query semantics; they differ only in where state lives and
// what traffic each operation costs. Returned durations are modelled
// (virtual) latencies charged against the simnet fabric.
type Coherency interface {
	// Name labels the strategy in experiment output.
	Name() string
	// AddNode admits a node to the coherency domain.
	AddNode(node string) (time.Duration, error)
	// RemoveNode withdraws a node and purges its services everywhere.
	RemoveNode(node string) (time.Duration, error)
	// Apply records a state-change event originating at node.
	Apply(node string, ev Event) (time.Duration, error)
	// Query answers q from the perspective of node.
	Query(node string, q Query) ([]ServiceEntry, time.Duration, error)
	// Members lists the admitted nodes.
	Members() []string
}

// ---------------------------------------------------------------------------
// Full synchrony: "the entire state information is replicated across all
// participating nodes. All system events are synchronously distributed to
// maintain coherency." Updates broadcast; queries are free local reads.

// cohNet bundles a strategy's fabric with an optional resilience policy.
// Every distribution send goes through rtt: with a policy attached, a
// dropped fabric message is retried with backoff before the coherency
// operation gives up — event application is idempotent (set/delete table
// rows), so re-delivery is safe. Partitions are NOT retried: simnet's
// ErrPartitioned does not classify transient, so a severed link fails
// fast and is left to failure detection. The nil-policy path is one
// branch, per the repo's nil-safety idiom.
type cohNet struct {
	net    *simnet.Network
	policy *resilience.Policy
}

// Fabric exposes the strategy's network for failure detection.
func (cn *cohNet) Fabric() *simnet.Network { return cn.net }

// SetResilience attaches (nil detaches) the retry policy for
// distribution sends; call it before traffic flows.
func (cn *cohNet) SetResilience(p *resilience.Policy) { cn.policy = p }

// rtt charges one request/response exchange, retried under the policy.
// The returned duration sums the modelled cost of every attempt: retries
// are not free, they are accounted as extra coherency latency.
func (cn *cohNet) rtt(op, from, to string, reqBytes, respBytes int) (time.Duration, error) {
	if cn.policy == nil {
		return cn.net.RTT(from, to, reqBytes, respBytes)
	}
	var total time.Duration
	_, err := cn.policy.Do(context.Background(), from+"->"+to, op, true,
		func(ctx context.Context) (any, error) {
			d, rerr := cn.net.RTT(from, to, reqBytes, respBytes)
			total += d
			return nil, rerr
		})
	return total, err
}

// FullSync implements the replicated-state strategy.
type FullSync struct {
	cohNet

	mu     sync.RWMutex
	stores map[string]*store
}

var _ Coherency = (*FullSync)(nil)

// NewFullSync creates the strategy over the given fabric.
func NewFullSync(net *simnet.Network) *FullSync {
	return &FullSync{cohNet: cohNet{net: net}, stores: make(map[string]*store)}
}

// Name implements Coherency.
func (f *FullSync) Name() string { return "full-sync" }

// AddNode implements Coherency: the join event itself is synchronously
// distributed to existing members.
func (f *FullSync) AddNode(node string) (time.Duration, error) {
	f.mu.Lock()
	if _, ok := f.stores[node]; ok {
		f.mu.Unlock()
		return 0, fmt.Errorf("dvm: node %q already a member", node)
	}
	f.stores[node] = newStore()
	f.mu.Unlock()
	f.net.AddNode(node)
	return f.Apply(node, Event{Kind: NodeJoin, Node: node})
}

// RemoveNode implements Coherency.
func (f *FullSync) RemoveNode(node string) (time.Duration, error) {
	f.mu.Lock()
	if _, ok := f.stores[node]; !ok {
		f.mu.Unlock()
		return 0, fmt.Errorf("%w: %q", ErrUnknownMember, node)
	}
	f.mu.Unlock()
	d, err := f.Apply(node, Event{Kind: NodeLeave, Node: node})
	f.mu.Lock()
	delete(f.stores, node)
	f.mu.Unlock()
	return d, err
}

// Apply implements Coherency: update locally, then synchronously
// broadcast to every other member (parallel; cost is a full round trip to
// the slowest member, since synchrony requires acknowledgement).
func (f *FullSync) Apply(node string, ev Event) (time.Duration, error) {
	f.mu.RLock()
	local, ok := f.stores[node]
	others := make(map[string]*store, len(f.stores))
	for n, st := range f.stores {
		if n != node {
			others[n] = st
		}
	}
	f.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownMember, node)
	}
	local.apply(ev)
	var worst time.Duration
	size := ev.ByteSize()
	for n, st := range others {
		rtt, err := f.rtt("coherency.distribute", node, n, size, ackBytes)
		if err != nil {
			return worst, fmt.Errorf("dvm: full-sync distribution to %s: %w", n, err)
		}
		st.apply(ev)
		if rtt > worst {
			worst = rtt
		}
	}
	return worst, nil
}

// Query implements Coherency: a pure local replica read.
func (f *FullSync) Query(node string, q Query) ([]ServiceEntry, time.Duration, error) {
	f.mu.RLock()
	st, ok := f.stores[node]
	f.mu.RUnlock()
	if !ok {
		return nil, 0, fmt.Errorf("%w: %q", ErrUnknownMember, node)
	}
	return st.query(q), 0, nil
}

// Members implements Coherency.
func (f *FullSync) Members() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]string, 0, len(f.stores))
	for n := range f.stores {
		out = append(out, n)
	}
	sortStrings(out)
	return out
}

// ---------------------------------------------------------------------------
// Fully decentralized: "state change events are not propagated to other
// nodes. Instead, every request for state information triggers a
// distributed query spanning across the DVM."

// Decentralized implements the query-on-demand strategy.
type Decentralized struct {
	cohNet

	mu     sync.RWMutex
	stores map[string]*store
}

var _ Coherency = (*Decentralized)(nil)

// NewDecentralized creates the strategy over the given fabric.
func NewDecentralized(net *simnet.Network) *Decentralized {
	return &Decentralized{cohNet: cohNet{net: net}, stores: make(map[string]*store)}
}

// Name implements Coherency.
func (d *Decentralized) Name() string { return "decentralized" }

// AddNode implements Coherency: membership changes cost nothing — nodes
// learn of each other through the coherency domain's shared membership.
func (d *Decentralized) AddNode(node string) (time.Duration, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.stores[node]; ok {
		return 0, fmt.Errorf("dvm: node %q already a member", node)
	}
	d.stores[node] = newStore()
	d.net.AddNode(node)
	return 0, nil
}

// RemoveNode implements Coherency.
func (d *Decentralized) RemoveNode(node string) (time.Duration, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.stores[node]; !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownMember, node)
	}
	delete(d.stores, node)
	return 0, nil
}

// Apply implements Coherency: the event stays local; zero traffic.
func (d *Decentralized) Apply(node string, ev Event) (time.Duration, error) {
	d.mu.RLock()
	st, ok := d.stores[node]
	d.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownMember, node)
	}
	st.apply(ev)
	return 0, nil
}

// Query implements Coherency: fan the query out to every member in
// parallel and merge; cost is the slowest round trip (responses carry the
// matched entries).
func (d *Decentralized) Query(node string, q Query) ([]ServiceEntry, time.Duration, error) {
	d.mu.RLock()
	local, ok := d.stores[node]
	others := make(map[string]*store, len(d.stores))
	for n, st := range d.stores {
		if n != node {
			others[n] = st
		}
	}
	d.mu.RUnlock()
	if !ok {
		return nil, 0, fmt.Errorf("%w: %q", ErrUnknownMember, node)
	}
	sets := [][]ServiceEntry{local.query(q)}
	var worst time.Duration
	for n, st := range others {
		res := st.query(q)
		respBytes := ackBytes
		for _, e := range res {
			respBytes += e.ByteSize()
		}
		rtt, err := d.rtt("coherency.query", node, n, q.ByteSize(), respBytes)
		if err != nil {
			// Unreachable nodes simply contribute nothing, mirroring a
			// best-effort spanning query over a faulty fabric.
			continue
		}
		sets = append(sets, res)
		if rtt > worst {
			worst = rtt
		}
	}
	return mergeEntries(sets...), worst, nil
}

// Members implements Coherency.
func (d *Decentralized) Members() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.stores))
	for n := range d.stores {
		out = append(out, n)
	}
	sortStrings(out)
	return out
}

// ---------------------------------------------------------------------------
// Hybrid: "mesh-structured applications may benefit from a scheme that
// provides full synchrony across small neighborhoods but facilitates
// distributed queries for farther hosts."

// Hybrid implements neighbourhood synchrony with inter-neighbourhood
// spanning queries. Nodes join neighbourhoods of at most K in join order.
type Hybrid struct {
	cohNet
	K int

	mu     sync.RWMutex
	stores map[string]*store
	// hood maps node -> neighbourhood index; hoods lists members per
	// neighbourhood in join order.
	hood  map[string]int
	hoods [][]string
}

var _ Coherency = (*Hybrid)(nil)

// NewHybrid creates the strategy with neighbourhoods of size k (≥1).
func NewHybrid(net *simnet.Network, k int) *Hybrid {
	if k < 1 {
		k = 1
	}
	return &Hybrid{cohNet: cohNet{net: net}, K: k,
		stores: make(map[string]*store), hood: make(map[string]int)}
}

// Name implements Coherency.
func (h *Hybrid) Name() string { return fmt.Sprintf("hybrid-k%d", h.K) }

// AddNode implements Coherency.
func (h *Hybrid) AddNode(node string) (time.Duration, error) {
	h.mu.Lock()
	if _, ok := h.stores[node]; ok {
		h.mu.Unlock()
		return 0, fmt.Errorf("dvm: node %q already a member", node)
	}
	h.stores[node] = newStore()
	idx := -1
	for i := range h.hoods {
		if len(h.hoods[i]) < h.K {
			idx = i
			break
		}
	}
	if idx < 0 {
		h.hoods = append(h.hoods, nil)
		idx = len(h.hoods) - 1
	}
	h.hoods[idx] = append(h.hoods[idx], node)
	h.hood[node] = idx
	h.mu.Unlock()
	h.net.AddNode(node)
	return h.Apply(node, Event{Kind: NodeJoin, Node: node})
}

// RemoveNode implements Coherency.
func (h *Hybrid) RemoveNode(node string) (time.Duration, error) {
	h.mu.RLock()
	_, ok := h.stores[node]
	h.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownMember, node)
	}
	d, err := h.Apply(node, Event{Kind: NodeLeave, Node: node})
	h.mu.Lock()
	idx := h.hood[node]
	members := h.hoods[idx]
	for i, n := range members {
		if n == node {
			h.hoods[idx] = append(members[:i], members[i+1:]...)
			break
		}
	}
	delete(h.hood, node)
	delete(h.stores, node)
	h.mu.Unlock()
	return d, err
}

// Apply implements Coherency: synchronous distribution within the
// originating node's neighbourhood only.
func (h *Hybrid) Apply(node string, ev Event) (time.Duration, error) {
	h.mu.RLock()
	local, ok := h.stores[node]
	var peers []string
	if ok {
		for _, n := range h.hoods[h.hood[node]] {
			if n != node {
				peers = append(peers, n)
			}
		}
	}
	peerStores := make(map[string]*store, len(peers))
	for _, n := range peers {
		peerStores[n] = h.stores[n]
	}
	h.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownMember, node)
	}
	local.apply(ev)
	var worst time.Duration
	for n, st := range peerStores {
		rtt, err := h.rtt("coherency.distribute", node, n, ev.ByteSize(), ackBytes)
		if err != nil {
			return worst, fmt.Errorf("dvm: hybrid distribution to %s: %w", n, err)
		}
		st.apply(ev)
		if rtt > worst {
			worst = rtt
		}
	}
	return worst, nil
}

// Query implements Coherency: the local neighbourhood replica answers for
// free; one representative of every other neighbourhood is queried in
// parallel.
func (h *Hybrid) Query(node string, q Query) ([]ServiceEntry, time.Duration, error) {
	h.mu.RLock()
	local, ok := h.stores[node]
	if !ok {
		h.mu.RUnlock()
		return nil, 0, fmt.Errorf("%w: %q", ErrUnknownMember, node)
	}
	myHood := h.hood[node]
	type rep struct {
		name string
		st   *store
	}
	var reps []rep
	for i, members := range h.hoods {
		if i == myHood || len(members) == 0 {
			continue
		}
		reps = append(reps, rep{members[0], h.stores[members[0]]})
	}
	h.mu.RUnlock()

	sets := [][]ServiceEntry{local.query(q)}
	var worst time.Duration
	for _, r := range reps {
		res := r.st.query(q)
		respBytes := ackBytes
		for _, e := range res {
			respBytes += e.ByteSize()
		}
		rtt, err := h.rtt("coherency.query", node, r.name, q.ByteSize(), respBytes)
		if err != nil {
			continue
		}
		sets = append(sets, res)
		if rtt > worst {
			worst = rtt
		}
	}
	return mergeEntries(sets...), worst, nil
}

// Members implements Coherency.
func (h *Hybrid) Members() []string {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]string, 0, len(h.stores))
	for n := range h.stores {
		out = append(out, n)
	}
	sortStrings(out)
	return out
}

// ackBytes is the modelled size of acknowledgements and query headers.
const ackBytes = 64

func sortStrings(s []string) { sort.Strings(s) }

// ---------------------------------------------------------------------------
// Eviction: a surviving member announces a dead member's departure. The
// announcement travels the same paths the strategy uses for ordinary
// events, except that the dead node is excluded from distribution.

// Evict implements Evicter for the replicated-state strategy: byNode
// broadcasts the NodeLeave to every surviving member.
func (f *FullSync) Evict(byNode, deadNode string) (time.Duration, error) {
	f.mu.Lock()
	if _, ok := f.stores[deadNode]; !ok {
		f.mu.Unlock()
		return 0, fmt.Errorf("%w: %q", ErrUnknownMember, deadNode)
	}
	by, ok := f.stores[byNode]
	if !ok {
		f.mu.Unlock()
		return 0, fmt.Errorf("%w: %q", ErrUnknownMember, byNode)
	}
	delete(f.stores, deadNode)
	others := make(map[string]*store, len(f.stores))
	for n, st := range f.stores {
		if n != byNode {
			others[n] = st
		}
	}
	f.mu.Unlock()

	ev := Event{Kind: NodeLeave, Node: deadNode}
	by.apply(ev)
	var worst time.Duration
	for n, st := range others {
		rtt, err := f.rtt("coherency.evict", byNode, n, ev.ByteSize(), ackBytes)
		if err != nil {
			return worst, fmt.Errorf("dvm: eviction broadcast to %s: %w", n, err)
		}
		st.apply(ev)
		if rtt > worst {
			worst = rtt
		}
	}
	return worst, nil
}

// Evict implements Evicter for the decentralized strategy: dropping the
// dead node's store removes its services from every future spanning
// query; no traffic is needed.
func (d *Decentralized) Evict(byNode, deadNode string) (time.Duration, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.stores[byNode]; !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownMember, byNode)
	}
	if _, ok := d.stores[deadNode]; !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownMember, deadNode)
	}
	delete(d.stores, deadNode)
	return 0, nil
}

// Evict implements Evicter for the hybrid strategy: the dead node's
// neighbourhood peers hold replicas of its rows, so byNode notifies each
// of them (and applies locally when it shares the neighbourhood).
func (h *Hybrid) Evict(byNode, deadNode string) (time.Duration, error) {
	h.mu.Lock()
	if _, ok := h.stores[byNode]; !ok {
		h.mu.Unlock()
		return 0, fmt.Errorf("%w: %q", ErrUnknownMember, byNode)
	}
	deadHood, ok := h.hood[deadNode]
	if !ok {
		h.mu.Unlock()
		return 0, fmt.Errorf("%w: %q", ErrUnknownMember, deadNode)
	}
	peers := make(map[string]*store)
	for _, n := range h.hoods[deadHood] {
		if n != deadNode {
			peers[n] = h.stores[n]
		}
	}
	members := h.hoods[deadHood]
	for i, n := range members {
		if n == deadNode {
			h.hoods[deadHood] = append(members[:i], members[i+1:]...)
			break
		}
	}
	delete(h.hood, deadNode)
	delete(h.stores, deadNode)
	h.mu.Unlock()

	ev := Event{Kind: NodeLeave, Node: deadNode}
	var worst time.Duration
	for n, st := range peers {
		if n == byNode {
			st.apply(ev)
			continue
		}
		rtt, err := h.rtt("coherency.evict", byNode, n, ev.ByteSize(), ackBytes)
		if err != nil {
			return worst, fmt.Errorf("dvm: eviction notice to %s: %w", n, err)
		}
		st.apply(ev)
		if rtt > worst {
			worst = rtt
		}
	}
	return worst, nil
}
