package shmring

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
)

func TestRecordRoundTrip(t *testing.T) {
	creator, peer, err := NewPair(1<<12, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer creator.Close()
	for i := 0; i < 100; i++ {
		payload := bytes.Repeat([]byte{byte(i)}, i*13%300)
		if err := peer.A.WriteRecord(uint64(i), payload); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		id, got, err := creator.A.ReadRecord(nil)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if id != uint64(i) || !bytes.Equal(got, payload) {
			t.Fatalf("record %d: id=%d len=%d", i, id, len(got))
		}
	}
}

// TestWrapAround forces records across the ring boundary at every
// offset a small ring can produce.
func TestWrapAround(t *testing.T) {
	creator, peer, err := NewPair(1<<8, 1) // 256-byte ring
	if err != nil {
		t.Fatal(err)
	}
	defer creator.Close()
	payload := make([]byte, 100)
	for i := range payload {
		payload[i] = byte(i)
	}
	var buf []byte
	for i := 0; i < 64; i++ {
		if err := peer.A.WriteRecord(uint64(i), payload); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		var id uint64
		id, buf, err = creator.A.ReadRecord(buf)
		if err != nil || id != uint64(i) || !bytes.Equal(buf, payload) {
			t.Fatalf("iteration %d: id=%d err=%v", i, id, err)
		}
	}
}

// TestBlockingProducerConsumer runs a full-duplex echo across both
// rings with the producer outrunning the tiny ring (exercising the
// space wait) — the shape `go test -race` needs to vet the counter
// protocol.
func TestBlockingProducerConsumer(t *testing.T) {
	creator, peer, err := NewPair(1<<10, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer creator.Close()
	const n = 2000
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // server: echo A → B
		defer wg.Done()
		var buf []byte
		for {
			id, payload, err := creator.A.ReadRecord(buf)
			if err != nil {
				return
			}
			buf = payload
			if err := creator.B.WriteRecord(id, payload); err != nil {
				return
			}
		}
	}()
	errc := make(chan error, 1)
	go func() { // client: write A, verify echoes from B
		defer wg.Done()
		var buf []byte
		for i := 0; i < n; i++ {
			want := bytes.Repeat([]byte{byte(i)}, i%200)
			if err := peer.A.WriteRecord(uint64(i), want); err != nil {
				errc <- err
				return
			}
			id, got, err := peer.B.ReadRecord(buf)
			if err != nil {
				errc <- err
				return
			}
			buf = got
			if id != uint64(i) || !bytes.Equal(got, want) {
				errc <- fmt.Errorf("echo %d: id=%d len=%d", i, id, len(got))
				return
			}
		}
		errc <- nil
		creator.Close() // unblocks the echo goroutine
	}()
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

func TestCloseUnblocksAndDrains(t *testing.T) {
	creator, peer, err := NewPair(1<<10, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer creator.Close()
	// A record buffered before the PEER closes must drain on this side.
	if err := peer.A.WriteRecord(9, []byte("pending")); err != nil {
		t.Fatal(err)
	}
	peer.Close()
	id, got, err := creator.A.ReadRecord(nil)
	if err != nil || id != 9 || string(got) != "pending" {
		t.Fatalf("drain: id=%d err=%v", id, err)
	}
	if _, _, err := creator.A.ReadRecord(nil); err != io.EOF {
		t.Fatalf("after drain: %v", err)
	}
	// The closing side itself is cut off immediately — its mapping may
	// already be gone.
	if err := peer.A.WriteRecord(1, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("write after own close: %v", err)
	}
	if !creator.Closed() || !peer.Closed() {
		t.Fatal("Closed() not observed on both sides")
	}
}

// TestRecordLargerThanRing is the regression for oversized records: a
// record wider than the ring must stream through in chunks rather than
// fail with ErrTooLarge (which used to make same-host calls with
// >ring-capacity payloads permanently fail, since Dial auto-prefers
// shm). The reader drains concurrently, freeing space for the writer.
func TestRecordLargerThanRing(t *testing.T) {
	creator, peer, err := NewPair(1<<8, 1) // 256-byte ring
	if err != nil {
		t.Fatal(err)
	}
	defer creator.Close()
	payload := make([]byte, 1<<14) // 64x the ring capacity
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	go func() {
		if err := peer.A.WriteRecord(77, payload); err != nil {
			t.Errorf("streamed write: %v", err)
		}
		// A small record behind the streamed one must still round-trip.
		if err := peer.A.WriteRecord(78, []byte("after")); err != nil {
			t.Errorf("write after stream: %v", err)
		}
	}()
	id, got, err := creator.A.ReadRecord(nil)
	if err != nil || id != 77 || !bytes.Equal(got, payload) {
		t.Fatalf("streamed read: id=%d len=%d err=%v", id, len(got), err)
	}
	id, got, err = creator.A.ReadRecord(got)
	if err != nil || id != 78 || string(got) != "after" {
		t.Fatalf("read after stream: id=%d err=%v", id, err)
	}
}

// TestOversizedRecordRejected: only payloads beyond MaxRecordBytes are
// refused (the slice is never touched, so the allocation stays lazy).
func TestOversizedRecordRejected(t *testing.T) {
	creator, _, err := NewPair(1<<8, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer creator.Close()
	if err := creator.B.WriteRecord(1, make([]byte, MaxRecordBytes+1)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("got %v", err)
	}
}

// TestCloseMidStreamReportsTruncation: a segment closed while a record
// is mid-stream must surface an error on the reader, not hang or
// deliver a short record.
func TestCloseMidStreamReportsTruncation(t *testing.T) {
	creator, peer, err := NewPair(1<<8, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer creator.Close()
	writerDone := make(chan error, 1)
	go func() {
		writerDone <- peer.A.WriteRecord(5, make([]byte, 1<<13))
	}()
	// Wait until the header is surely published, then close with the
	// writer still blocked on space.
	if err := creator.A.waitData(recordHeader); err != nil {
		t.Fatal(err)
	}
	peer.Close()
	if err := <-writerDone; !errors.Is(err, ErrClosed) {
		t.Fatalf("mid-stream writer: %v", err)
	}
	if _, _, err := creator.A.ReadRecord(nil); err == nil {
		t.Fatal("truncated stream delivered without error")
	}
}

func TestSegmentValidation(t *testing.T) {
	if _, err := initSegment(alignedBuf(SegmentSize(96)), 96, 1); err == nil {
		t.Fatal("non-power-of-two ring size accepted")
	}
	mem := alignedBuf(SegmentSize(1 << 8))
	if _, err := initSegment(mem, 1<<8, 42); err != nil {
		t.Fatal(err)
	}
	if _, err := attachSegment(mem, 42); err != nil {
		t.Fatalf("matching generation rejected: %v", err)
	}
	if _, err := attachSegment(mem, 41); !errors.Is(err, ErrWrongGeneration) {
		t.Fatalf("stale generation accepted: %v", err)
	}
	mem[0] ^= 0xFF
	if _, err := attachSegment(mem, 42); !errors.Is(err, ErrBadSegment) {
		t.Fatalf("bad magic accepted: %v", err)
	}
}

func TestMmapSegment(t *testing.T) {
	if !Supported() {
		t.Skip("no mmap on this platform")
	}
	server, err := Create(t.TempDir(), 1<<12, 99)
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	client, err := Open(server.Path(), 99)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if err := client.A.WriteRecord(5, []byte("cross-mapping")); err != nil {
		t.Fatal(err)
	}
	id, got, err := server.A.ReadRecord(nil)
	if err != nil || id != 5 || string(got) != "cross-mapping" {
		t.Fatalf("id=%d payload=%q err=%v", id, got, err)
	}

	if _, err := Open(server.Path(), 100); !errors.Is(err, ErrWrongGeneration) {
		t.Fatalf("wrong generation accepted: %v", err)
	}
}

// FuzzShmRingRecord round-trips arbitrary payloads — split into
// variable-size chunks by the fuzzer's second input — through a small
// ring, checking exact reassembly and that no input corrupts the
// counter protocol.
func FuzzShmRingRecord(f *testing.F) {
	f.Add([]byte("hello shm"), uint8(3))
	f.Add([]byte{}, uint8(0))
	f.Add(bytes.Repeat([]byte{0xAB}, 500), uint8(97))

	f.Fuzz(func(t *testing.T, data []byte, step uint8) {
		creator, peer, err := NewPair(1<<8, 1)
		if err != nil {
			t.Fatal(err)
		}
		defer creator.Close()
		chunk := int(step)%100 + 1
		done := make(chan struct{})
		go func() {
			defer close(done)
			for off := 0; off < len(data); off += chunk {
				end := min(off+chunk, len(data))
				if err := peer.A.WriteRecord(uint64(off), data[off:end]); err != nil {
					return
				}
			}
			_ = peer.A.WriteRecord(^uint64(0), nil) // terminator
		}()
		var rebuilt []byte
		var buf []byte
		for {
			id, payload, err := creator.A.ReadRecord(buf)
			if err != nil {
				t.Fatalf("read: %v", err)
			}
			buf = payload
			if id == ^uint64(0) {
				break
			}
			if int(id) != len(rebuilt) {
				t.Fatalf("record out of order: id=%d want %d", id, len(rebuilt))
			}
			rebuilt = append(rebuilt, payload...)
		}
		<-done
		if !bytes.Equal(rebuilt, data) {
			t.Fatalf("reassembled %d bytes, want %d", len(rebuilt), len(data))
		}
	})
}
