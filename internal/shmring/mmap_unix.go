//go:build unix

package shmring

import (
	"fmt"
	"os"
	"syscall"
)

// Supported reports whether mmap-backed segments work on this platform.
func Supported() bool { return true }

// SegmentDir returns the directory for segment backing files: /dev/shm
// when present (memory-backed tmpfs on Linux), else the OS temp dir.
func SegmentDir() string {
	if fi, err := os.Stat("/dev/shm"); err == nil && fi.IsDir() {
		return "/dev/shm"
	}
	return os.TempDir()
}

func mapFile(f *os.File, size int) ([]byte, func(), error) {
	mem, err := syscall.Mmap(int(f.Fd()), 0, size,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("shmring: mmap: %w", err)
	}
	return mem, func() { _ = syscall.Munmap(mem) }, nil
}

// Create makes a new mmap-backed segment in dir (SegmentDir() when
// empty). The server creates one segment per accepted connection,
// stamps it with its incarnation generation, and sends the path to the
// client over the handshake socket. The backing file is unlinked on
// Close; a crashed server leaves it for tmpfs to reclaim at unmount or
// for the next incarnation's stale sweep.
func Create(dir string, ringBytes int, generation uint64) (*Segment, error) {
	if dir == "" {
		dir = SegmentDir()
	}
	f, err := os.CreateTemp(dir, "h2shm-*")
	if err != nil {
		return nil, fmt.Errorf("shmring: create segment: %w", err)
	}
	size := SegmentSize(ringBytes)
	if err := f.Truncate(int64(size)); err != nil {
		f.Close()
		os.Remove(f.Name())
		return nil, fmt.Errorf("shmring: size segment: %w", err)
	}
	mem, unmap, err := mapFile(f, size)
	if err != nil {
		f.Close()
		os.Remove(f.Name())
		return nil, err
	}
	s, err := initSegment(mem, ringBytes, generation)
	if err != nil {
		unmap()
		f.Close()
		os.Remove(f.Name())
		return nil, err
	}
	s.path = f.Name()
	path := f.Name()
	s.cleanup = func() {
		unmap()
		f.Close()
		os.Remove(path)
	}
	return s, nil
}

// Open attaches to a segment created by a server on this host. A
// non-zero wantGeneration must match the stamp in the segment header;
// a mismatch means the path belongs to a different server incarnation
// (ErrWrongGeneration), which callers surface to the binder so the
// stale mapping is dropped.
func Open(path string, wantGeneration uint64) (*Segment, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("shmring: open segment: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("shmring: stat segment: %w", err)
	}
	mem, unmap, err := mapFile(f, int(fi.Size()))
	if err != nil {
		f.Close()
		return nil, err
	}
	s, err := attachSegment(mem, wantGeneration)
	if err != nil {
		unmap()
		f.Close()
		return nil, err
	}
	s.path = path
	s.cleanup = func() {
		unmap()
		f.Close()
	}
	return s, nil
}
