// Package shmring implements the shared-memory transport under the shm
// invoke binding (DESIGN.md S30): a pair of single-producer
// single-consumer byte rings laid out in one memory segment, carrying
// id-tagged records between a client and a server on the same host.
//
// The segment is plain memory with a fixed layout — no pointers, no Go
// runtime state — so the same code runs over an mmap'd /dev/shm file
// (production, see mmap_unix.go) and over a heap-backed buffer (unit,
// race, and fuzz tests). Each ring has a head (consumer) and tail
// (producer) monotonic byte counter on its own cache line, advanced with
// release stores and observed with acquire loads; a blocked side spins
// briefly, then parks — a futex wait on the counter it is watching on
// Linux (see wait_linux.go), short sleeps elsewhere. Wakers syscall only
// when the shared waiter counter says someone is parked, so a hot ring
// runs entirely in user space and an idle one costs nothing.
//
// Layout (all counters 8-byte aligned, little-endian host order):
//
//	[0:8)    magic
//	[8:16)   generation — chosen by the creating server; clients that
//	         reattach after a server restart see a different value and
//	         must rebind (invoke.Binder invalidation)
//	[16:24)  ring capacity in bytes (power of two)
//	[24:28)  closed flag (either side sets; both sides observe)
//	[28:64)  reserved
//	[64:...) ring A header+data (client→server), then ring B (server→client)
//
// Each ring header holds head@+0 with the space-waiter count@+8 (writers
// parked until head advances) and tail@+64 with the data-waiter
// count@+72 (readers parked until tail advances).
//
// Records are framed as [u32 payload length][u64 request id][payload].
// A ring is strictly SPSC: one goroutine writes, one reads. The two
// rings of a segment give one full-duplex connection.
package shmring

import (
	"errors"
	"fmt"
	"io"
	"math/bits"
	"runtime"
	"sync/atomic"
	"time"
	"unsafe"
)

// Magic identifies a shmring segment ("H2SHMR01").
const Magic uint64 = 0x4832_5348_4d52_3031

const (
	segHeaderSize  = 64
	ringHeaderSize = 128 // head and tail on separate cache lines
	recordHeader   = 12  // u32 length + u64 id

	// DefaultRingBytes sizes each direction's ring. 1MiB publishes a
	// 64Ki-element float64 argument (plus record header and request
	// envelope) in a single store and keeps the whole segment (~2MiB)
	// cheap to create per connection; larger records are not limited by
	// it — they stream through the ring in chunks (see WriteRecord).
	DefaultRingBytes = 1 << 20

	// MaxRecordBytes bounds a single record's payload. Records larger
	// than the ring stream through it in chunks, so the bound is not a
	// capacity limit; it exists to catch corrupt length words before
	// they turn into giant allocations on the read side.
	MaxRecordBytes = 1 << 27

	spinCount    = 256
	parkDelay    = 20 * time.Microsecond
	maxParkDelay = time.Millisecond
)

var (
	// ErrClosed reports an operation on a ring whose segment has been
	// closed by either side.
	ErrClosed = errors.New("shmring: closed")
	// ErrTooLarge reports a record whose payload exceeds MaxRecordBytes.
	ErrTooLarge = errors.New("shmring: record exceeds MaxRecordBytes")
	// ErrBadSegment reports a segment whose header fails validation.
	ErrBadSegment = errors.New("shmring: bad segment")
	// ErrWrongGeneration reports an attach against a segment created by
	// a different server incarnation than the client negotiated with.
	ErrWrongGeneration = errors.New("shmring: generation mismatch")
)

// SegmentSize returns the total byte size of a segment whose rings each
// hold ringBytes of data.
func SegmentSize(ringBytes int) int {
	return segHeaderSize + 2*(ringHeaderSize+ringBytes)
}

// segLife is the Go-local (per-attachment, NOT shared-memory) lifecycle
// of a segment: once this side calls Close, no further ring operation
// may touch the mapping, and the unmap waits until in-flight operations
// drain. The shared closed flag handles cross-process shutdown; this
// handles the local use-after-munmap hazard.
type segLife struct {
	closing atomic.Bool
	ops     atomic.Int64
}

// enter registers an in-flight ring operation; false means this side
// already closed and the mapping may be gone.
func (l *segLife) enter() bool {
	l.ops.Add(1)
	if l.closing.Load() {
		l.ops.Add(-1)
		return false
	}
	return true
}

func (l *segLife) exit() { l.ops.Add(-1) }

// Ring is one direction of a segment: an SPSC circular byte buffer with
// monotonic head/tail counters living in the shared region.
type Ring struct {
	head         *atomic.Uint64 // bytes consumed; advanced by the reader
	tail         *atomic.Uint64 // bytes produced; advanced by the writer
	spaceWaiters *atomic.Uint32 // writers parked until head advances
	dataWaiters  *atomic.Uint32 // readers parked until tail advances
	closed       *atomic.Uint32 // segment-wide flag, shared by both rings
	data         []byte
	mask         uint64
	life         *segLife // local attachment lifecycle, shared by both rings
}

// Segment is an attached shmring region. A holds client→server records,
// B server→client. The creator reads A and writes B; the attacher does
// the opposite.
type Segment struct {
	A, B *Ring

	mem        []byte
	generation uint64
	path       string
	cleanup    func()
	life       segLife
}

func u64at(mem []byte, off int) *atomic.Uint64 {
	return (*atomic.Uint64)(unsafe.Pointer(&mem[off]))
}

func u32at(mem []byte, off int) *atomic.Uint32 {
	return (*atomic.Uint32)(unsafe.Pointer(&mem[off]))
}

// alignedBuf returns a heap buffer of n bytes with 8-byte alignment
// guaranteed by allocating word storage underneath.
func alignedBuf(n int) []byte {
	words := make([]uint64, (n+7)/8)
	return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(words))), n)
}

func ringAt(mem []byte, off, ringBytes int, closed *atomic.Uint32) *Ring {
	return &Ring{
		head:         u64at(mem, off),
		spaceWaiters: u32at(mem, off+8),
		tail:         u64at(mem, off+64),
		dataWaiters:  u32at(mem, off+72),
		closed:       closed,
		data:         mem[off+ringHeaderSize : off+ringHeaderSize+ringBytes],
		mask:         uint64(ringBytes - 1),
	}
}

func segmentOver(mem []byte, ringBytes int) *Segment {
	closed := u32at(mem, 24)
	offA := segHeaderSize
	offB := segHeaderSize + ringHeaderSize + ringBytes
	s := &Segment{
		A:   ringAt(mem, offA, ringBytes, closed),
		B:   ringAt(mem, offB, ringBytes, closed),
		mem: mem,
	}
	s.A.life = &s.life
	s.B.life = &s.life
	return s
}

// initSegment stamps a fresh header over mem and returns the segment.
func initSegment(mem []byte, ringBytes int, generation uint64) (*Segment, error) {
	if ringBytes <= 0 || bits.OnesCount(uint(ringBytes)) != 1 {
		return nil, fmt.Errorf("%w: ring size %d not a power of two", ErrBadSegment, ringBytes)
	}
	if len(mem) < SegmentSize(ringBytes) {
		return nil, fmt.Errorf("%w: %d bytes < segment size %d", ErrBadSegment, len(mem), SegmentSize(ringBytes))
	}
	clear(mem[:SegmentSize(ringBytes)])
	u64at(mem, 8).Store(generation)
	u64at(mem, 16).Store(uint64(ringBytes))
	s := segmentOver(mem, ringBytes)
	s.generation = generation
	// Publish the magic last: an attacher that observes it sees a fully
	// initialised header.
	u64at(mem, 0).Store(Magic)
	return s, nil
}

// attachSegment validates the header of an existing region and returns
// the segment. wantGeneration 0 skips the generation check.
func attachSegment(mem []byte, wantGeneration uint64) (*Segment, error) {
	if len(mem) < segHeaderSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrBadSegment, len(mem))
	}
	if u64at(mem, 0).Load() != Magic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadSegment)
	}
	ringBytes := int(u64at(mem, 16).Load())
	if ringBytes <= 0 || bits.OnesCount(uint(ringBytes)) != 1 ||
		len(mem) < SegmentSize(ringBytes) {
		return nil, fmt.Errorf("%w: ring size %d for %d-byte region", ErrBadSegment, ringBytes, len(mem))
	}
	gen := u64at(mem, 8).Load()
	if wantGeneration != 0 && gen != wantGeneration {
		return nil, fmt.Errorf("%w: have %d want %d", ErrWrongGeneration, gen, wantGeneration)
	}
	s := segmentOver(mem, ringBytes)
	s.generation = gen
	return s, nil
}

// NewPair creates a heap-backed segment and returns both attachments —
// the creator's view and the peer's — sharing one region. It exists for
// tests and in-process benchmarking; production segments come from
// Create/Open over /dev/shm.
func NewPair(ringBytes int, generation uint64) (creator, peer *Segment, err error) {
	mem := alignedBuf(SegmentSize(ringBytes))
	creator, err = initSegment(mem, ringBytes, generation)
	if err != nil {
		return nil, nil, err
	}
	peer, err = attachSegment(mem, generation)
	if err != nil {
		return nil, nil, err
	}
	return creator, peer, nil
}

// Generation returns the creating server's incarnation stamp.
func (s *Segment) Generation() uint64 { return s.generation }

// Path returns the backing file path, or "" for heap-backed segments.
func (s *Segment) Path() string { return s.path }

// Closed reports whether either side has closed the segment.
func (s *Segment) Closed() bool {
	if !s.life.enter() {
		return true
	}
	defer s.life.exit()
	return s.A.closed.Load() != 0
}

// Close marks the segment closed — observed by the peer within one park
// interval — waits for this side's in-flight ring operations to drain,
// then releases the mapping. Idempotent and safe to call concurrently
// with ring operations: a blocked reader or writer wakes on the shared
// flag and exits before the unmap happens.
func (s *Segment) Close() error {
	if s.life.closing.Swap(true) {
		return nil
	}
	s.A.closed.Store(1)
	// Kick every parked waiter — ours and the peer's — off its futex;
	// each re-checks the flag and exits. Parked peers on platforms
	// without wakeups notice within one timeout interval instead.
	for _, r := range [...]*Ring{s.A, s.B} {
		osWake(r.head)
		osWake(r.tail)
	}
	for s.life.ops.Load() > 0 {
		time.Sleep(parkDelay)
	}
	if s.cleanup != nil {
		s.cleanup()
		s.cleanup = nil
	}
	return nil
}

// free reports the writable byte count.
func (r *Ring) free() uint64 {
	return uint64(len(r.data)) - (r.tail.Load() - r.head.Load())
}

// copyIn writes p into the circular buffer starting at absolute
// position pos, splitting at the wrap point.
func (r *Ring) copyIn(pos uint64, p []byte) {
	off := pos & r.mask
	n := copy(r.data[off:], p)
	if n < len(p) {
		copy(r.data, p[n:])
	}
}

// copyOut reads len(p) bytes from absolute position pos into p.
func (r *Ring) copyOut(pos uint64, p []byte) {
	off := pos & r.mask
	n := copy(p, r.data[off:])
	if n < len(p) {
		copy(p[n:], r.data)
	}
}

// waitSpace blocks (spin then park) until at least need free bytes are
// available, or the segment closes. need must not exceed the ring
// capacity.
func (r *Ring) waitSpace(need uint64) error {
	delay := parkDelay
	for i := 0; r.free() < need; i++ {
		if r.closed.Load() != 0 {
			return ErrClosed
		}
		if i < spinCount {
			runtime.Gosched()
			continue
		}
		// Park on head: register so the consumer knows to wake us, re-check
		// the condition (the register/re-check order pairs with the
		// consumer's store/check — neither side can miss the other), then
		// block until head moves. The escalating timeout bounds any race
		// the protocol doesn't cover and doubles as the idle backoff on
		// platforms without real wakeups.
		r.spaceWaiters.Add(1)
		if seen := r.head.Load(); r.free() < need && r.closed.Load() == 0 {
			osWait(r.head, seen, delay)
			if delay < maxParkDelay {
				delay *= 2
			}
		}
		r.spaceWaiters.Add(^uint32(0))
	}
	if r.closed.Load() != 0 {
		return ErrClosed
	}
	return nil
}

// waitData blocks until at least need buffered bytes are available.
// After the segment closes, whatever the producer already published
// drains first; a cleanly empty ring then reports io.EOF and a partial
// tail shorter than need reports io.ErrUnexpectedEOF (the peer died
// mid-record).
func (r *Ring) waitData(need uint64) error {
	delay := parkDelay
	for i := 0; r.tail.Load()-r.head.Load() < need; i++ {
		if r.closed.Load() != 0 {
			// Data is re-checked after the flag: producers never publish
			// after setting it, so this is the final word.
			avail := r.tail.Load() - r.head.Load()
			if avail >= need {
				break
			}
			if avail > 0 {
				return io.ErrUnexpectedEOF
			}
			return io.EOF
		}
		if i < spinCount {
			runtime.Gosched()
			continue
		}
		// Park on tail; mirrors the waitSpace parking protocol.
		r.dataWaiters.Add(1)
		if seen := r.tail.Load(); r.tail.Load()-r.head.Load() < need && r.closed.Load() == 0 {
			osWait(r.tail, seen, delay)
			if delay < maxParkDelay {
				delay *= 2
			}
		}
		r.dataWaiters.Add(^uint32(0))
	}
	return nil
}

// publish release-stores tail, making the bytes before it visible to
// the consumer's acquire load, and wakes a parked reader. Only a parked
// reader costs a syscall; a hot one never registers.
func (r *Ring) publish(tail uint64) {
	r.tail.Store(tail)
	if r.dataWaiters.Load() != 0 {
		osWake(r.tail)
	}
}

// consume advances head past read bytes and wakes a writer parked on a
// full ring; the mirror of publish.
func (r *Ring) consume(head uint64) {
	r.head.Store(head)
	if r.spaceWaiters.Load() != 0 {
		osWake(r.head)
	}
}

// WriteRecord appends one [length|id|payload] record, blocking (spin
// then park) while the consumer frees space. A record that fits the
// ring is published atomically — a single tail store after all bytes
// are in place; a larger record streams through in chunks, the
// consumer draining concurrently. It returns ErrClosed once the
// segment is closed and ErrTooLarge beyond MaxRecordBytes.
func (r *Ring) WriteRecord(id uint64, payload []byte) error {
	if len(payload) > MaxRecordBytes {
		return ErrTooLarge
	}
	if !r.life.enter() {
		return ErrClosed
	}
	defer r.life.exit()
	var hdr [recordHeader]byte
	*(*uint32)(unsafe.Pointer(&hdr[0])) = uint32(len(payload))
	*(*uint64)(unsafe.Pointer(&hdr[4])) = id
	need := uint64(recordHeader + len(payload))
	if need <= uint64(len(r.data)) {
		if err := r.waitSpace(need); err != nil {
			return err
		}
		tail := r.tail.Load()
		r.copyIn(tail, hdr[:])
		r.copyIn(tail+recordHeader, payload)
		r.publish(tail + need)
		return nil
	}
	// Streaming path: the record exceeds the ring capacity, so each
	// chunk is published as soon as it is in place and the reader
	// consumes concurrently, freeing space for the next. An error can
	// only be the segment closing, which stops the reader at the same
	// point — a partially streamed record is never delivered.
	tail := r.tail.Load()
	for _, part := range [2][]byte{hdr[:], payload} {
		for len(part) > 0 {
			if err := r.waitSpace(1); err != nil {
				return err
			}
			n := min(uint64(len(part)), r.free())
			r.copyIn(tail, part[:n])
			tail += n
			r.publish(tail)
			part = part[n:]
		}
	}
	return nil
}

// ReadRecord removes the next record, blocking until one arrives. The
// payload is appended into buf (reusing its capacity) and returned;
// callers pass the previous return value back in for an allocation-free
// steady state. Records wider than the ring are drained in chunks as
// the producer streams them. After the peer closes the segment,
// buffered records drain first, then ReadRecord returns io.EOF (or
// io.ErrUnexpectedEOF mid-record); after this side's own Close it
// returns ErrClosed immediately.
func (r *Ring) ReadRecord(buf []byte) (id uint64, payload []byte, err error) {
	if !r.life.enter() {
		return 0, nil, ErrClosed
	}
	defer r.life.exit()
	if err := r.waitData(recordHeader); err != nil {
		return 0, nil, err
	}
	head := r.head.Load()
	var hdr [recordHeader]byte
	r.copyOut(head, hdr[:])
	n := int(*(*uint32)(unsafe.Pointer(&hdr[0])))
	id = *(*uint64)(unsafe.Pointer(&hdr[4]))
	if n > MaxRecordBytes {
		// A corrupt length word means the peer scribbled outside the
		// protocol; poison the segment rather than read garbage.
		r.closed.Store(1)
		osWake(r.head)
		osWake(r.tail)
		return 0, nil, fmt.Errorf("%w: corrupt record length %d", ErrBadSegment, n)
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	payload = buf[:n]
	if avail := r.tail.Load() - head; uint64(recordHeader+n) <= avail {
		// The whole record is published: one copy, one head advance.
		r.copyOut(head+recordHeader, payload)
		r.consume(head + uint64(recordHeader+n))
		return id, payload, nil
	}
	// The producer is streaming a record wider than what is buffered;
	// drain it in chunks, each consume freeing space for the next
	// publish (essential once the record exceeds the ring capacity).
	r.consume(head + recordHeader)
	for copied := 0; copied < n; {
		if err := r.waitData(1); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF // peer died mid-record
			}
			return 0, nil, err
		}
		head = r.head.Load()
		chunk := min(uint64(n-copied), r.tail.Load()-head)
		r.copyOut(head, payload[copied:copied+int(chunk)])
		copied += int(chunk)
		r.consume(head + chunk)
	}
	return id, payload, nil
}
