//go:build linux

package shmring

import (
	"sync/atomic"
	"syscall"
	"time"
	"unsafe"
)

// Blocked-side parking via futex on the ring counters themselves. The
// counters live in the shared mapping, so FUTEX_WAIT/FUTEX_WAKE must use
// the shared (non-PRIVATE) forms: the waiter and the waker may be
// different processes mapping the same /dev/shm page.
//
// The protocol cannot lose a wakeup for long: wakers only syscall when
// the waiter counter is non-zero (so the streaming fast path never
// enters the kernel), waiters re-check the condition after registering,
// and every wait carries a timeout, so even a wake that races ahead of
// its wait costs at most one timeout interval.

const (
	futexWaitOp = 0 // FUTEX_WAIT, shared form
	futexWakeOp = 1 // FUTEX_WAKE, shared form
)

var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// waitWord returns the address of the low-order 32 bits of a counter —
// the bits that change on every advance, and the word futex operates on.
func waitWord(w *atomic.Uint64) *uint32 {
	p := unsafe.Pointer(w)
	if !hostLittleEndian {
		p = unsafe.Add(p, 4)
	}
	return (*uint32)(p)
}

// osWait blocks until the low word of w changes from the low word of
// seen, a wake arrives, or d elapses. Spurious returns are fine; callers
// loop on the real condition.
func osWait(w *atomic.Uint64, seen uint64, d time.Duration) {
	ts := syscall.NsecToTimespec(int64(d))
	_, _, _ = syscall.Syscall6(syscall.SYS_FUTEX,
		uintptr(unsafe.Pointer(waitWord(w))), futexWaitOp,
		uintptr(uint32(seen)), uintptr(unsafe.Pointer(&ts)), 0, 0)
}

// osWake wakes every waiter parked on w's low word.
func osWake(w *atomic.Uint64) {
	_, _, _ = syscall.Syscall6(syscall.SYS_FUTEX,
		uintptr(unsafe.Pointer(waitWord(w))), futexWakeOp,
		uintptr(^uint32(0)>>1), 0, 0, 0)
}
