//go:build !linux

package shmring

import (
	"sync/atomic"
	"time"
)

// Portable parking: short sleeps with the caller's escalating interval.
// Wakes are implicit — a sleeping waiter re-checks the condition when
// its interval expires — so osWake has nothing to do.

func osWait(w *atomic.Uint64, seen uint64, d time.Duration) {
	time.Sleep(d)
}

func osWake(w *atomic.Uint64) {}
