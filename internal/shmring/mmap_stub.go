//go:build !unix

package shmring

import (
	"errors"
	"os"
)

// ErrUnsupported reports that mmap-backed segments are unavailable on
// this platform; the shm binding is skipped and callers fall back to
// the XDR socket binding.
var ErrUnsupported = errors.New("shmring: mmap segments unsupported on this platform")

// Supported reports whether mmap-backed segments work on this platform.
func Supported() bool { return false }

// SegmentDir returns the directory that would hold segment files.
func SegmentDir() string { return os.TempDir() }

// Create is unavailable; heap-backed NewPair still works for tests.
func Create(dir string, ringBytes int, generation uint64) (*Segment, error) {
	return nil, ErrUnsupported
}

// Open is unavailable on this platform.
func Open(path string, wantGeneration uint64) (*Segment, error) {
	return nil, ErrUnsupported
}
