package bench

import (
	"math/rand"
	"time"
)

// RandDoubles returns a deterministic pseudo-random []float64 workload.
func RandDoubles(n int, seed int64) []float64 {
	r := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = r.NormFloat64()
	}
	return out
}

// CompressibleDoubles returns a float64 workload with heavy small-integer
// repetition — the shape of real mesh/matrix data that wire compression
// (S33) is for. Flate shrinks it severalfold; RandDoubles is its
// incompressible counterpart.
func CompressibleDoubles(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i % 16)
	}
	return out
}

// RandMatrix returns an n×n row-major matrix with a dominant diagonal
// (well-conditioned, so LinSolve workloads never hit singularity).
func RandMatrix(n int, seed int64) []float64 {
	r := rand.New(rand.NewSource(seed))
	out := make([]float64, n*n)
	for i := range out {
		out[i] = r.NormFloat64()
	}
	for i := 0; i < n; i++ {
		out[i*n+i] += float64(n) + 1
	}
	return out
}

// timeIt measures the mean wall time of reps invocations of fn.
func timeIt(reps int, fn func()) time.Duration {
	if reps < 1 {
		reps = 1
	}
	start := time.Now()
	for i := 0; i < reps; i++ {
		fn()
	}
	return time.Since(start) / time.Duration(reps)
}
