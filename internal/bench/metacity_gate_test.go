package bench

import (
	"os"
	"testing"
	"time"

	"harness2/internal/registry"
)

// TestE15Gate is the CI regression gate over the metacity hot paths,
// run when E15_GATE=1 (CI exports it). Two assertions protect the
// ISSUE's scalability claims: the steady-state read paths — a cache-hit
// FindByName and a registry Get — must stay at 0 allocs/op (any
// allocation on these paths reintroduces the GC pressure the
// copy-on-write store removed), and a deterministic virtual-time sim
// slice must hold its availability and tail-latency envelope under
// chaos and churn.
func TestE15Gate(t *testing.T) {
	if os.Getenv("E15_GATE") == "" {
		t.Skip("set E15_GATE=1 to run the metacity gate")
	}

	// Allocation gate on the hot read paths.
	reg := registry.New()
	xml, err := e17WSDL()
	if err != nil {
		t.Fatal(err)
	}
	key, err := reg.Publish(registry.Entry{
		Name: "Hot", Key: "Hot::k", WSDL: xml,
	})
	if err != nil {
		t.Fatal(err)
	}
	cache := registry.NewCache(reg, time.Hour)
	if got := cache.FindByName("Hot"); len(got) != 1 {
		t.Fatalf("warmup resolve returned %d entries, want 1", len(got))
	}
	if a := testing.AllocsPerRun(2000, func() {
		if got := cache.FindByName("Hot"); len(got) != 1 {
			t.Fatal("cache hit lost the entry")
		}
	}); a != 0 {
		t.Errorf("cache-hit FindByName: %.1f allocs/op, want 0", a)
	}
	if a := testing.AllocsPerRun(2000, func() {
		if _, ok := reg.Get(key); !ok {
			t.Fatal("registry Get lost the entry")
		}
	}); a != 0 {
		t.Errorf("registry Get: %.1f allocs/op, want 0", a)
	}

	// Macro-envelope gate: the deterministic sim slice must keep serving
	// under chaos faults and node churn. Bounds carry slack over the
	// measured values (avail ~0.96, p99 ~17ms at this size) so only a
	// real regression — a stampede, a retry storm, a coherency stall —
	// trips them.
	res, err := E15SimRun(e15SmokeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if avail := res.Availability(); avail < 0.90 {
		t.Errorf("sim availability %.3f under chaos+churn, want >= 0.90", avail)
	}
	if res.P99 > 100*time.Millisecond {
		t.Errorf("sim p99 %v, want <= 100ms", res.P99)
	}
}
