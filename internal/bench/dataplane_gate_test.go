package bench

import (
	"context"
	"os"
	"testing"
	"time"

	"harness2/internal/invoke"
	"harness2/internal/wire"
	"harness2/internal/xdr"
)

// TestE16Gate is the CI regression gate over the S30 data plane. Like
// TestE14Gate it only runs when E16_GATE=1 (CI exports it), and the
// floors sit far below the locally measured margins: zero-copy encode
// speedup ≥1.3x against a 2–3.4x measurement, zero encode allocations
// against a measured zero, and shm small-call speedup ≥1.3x against a
// ~6x best-of-three measurement.
func TestE16Gate(t *testing.T) {
	if os.Getenv("E16_GATE") == "" {
		t.Skip("set E16_GATE=1 to run the timing gate")
	}

	// Gate 1: the zero-copy float64 array codec must beat the portable
	// loop by the floor factor on an 8Ki-element payload.
	const n = 8192
	data := RandDoubles(n, 16)
	e := xdr.NewEncoder(8*n + 16)
	encode := func(on bool) time.Duration {
		prev := xdr.SetZeroCopy(on)
		defer xdr.SetZeroCopy(prev)
		e.Reset()
		e.Float64Array(data) // warm
		return timeIt(200, func() {
			e.Reset()
			e.Float64Array(data)
		})
	}
	fastPer, portPer := encode(true), encode(false)
	if speedup := float64(portPer) / float64(fastPer); speedup < 1.3 {
		t.Errorf("zero-copy encode speedup %.2fx below the 1.3x gate (fast %v, portable %v)",
			speedup, fastPer, portPer)
	}

	// Gate 2: a steady-state zero-copy encode into a warm encoder must
	// not allocate.
	e.Reset()
	allocs := testing.AllocsPerRun(100, func() {
		e.Reset()
		e.Float64Array(data)
	})
	if allocs != 0 {
		t.Errorf("zero-copy encode allocates %.1f objects/op; gate is 0", allocs)
	}

	// Gate 3: the shm binding must beat the XDR socket on same-host
	// small-call latency. Best of three trials per path keeps the ratio
	// stable under scheduler noise.
	h, err := newHost()
	if err != nil {
		t.Fatal(err)
	}
	defer h.close()
	h.node.Container().RegisterFactory("ArraySink", arraySinkFactory())
	if _, err := h.publish("ArraySink", "sink"); err != nil {
		t.Fatal(err)
	}
	if h.node.ShmAddr() == "" {
		t.Skip("shm binding unsupported on this platform")
	}
	shmPort, err := invoke.NewShmPort(h.node.ShmAddr(), "sink")
	if err != nil {
		t.Fatal(err)
	}
	defer shmPort.Close()
	xdrPort := invoke.NewXDRPort(h.node.XDRAddr(), "sink", false)
	defer xdrPort.Close()
	ctx := context.Background()
	args := wire.Args("data", []float64{1})
	measure := func(p invoke.Port) time.Duration {
		best := time.Duration(0)
		for trial := 0; trial < 3; trial++ {
			per := timeIt(300, func() {
				if _, err := p.Invoke(ctx, "checksum", args); err != nil {
					t.Fatal(err)
				}
			})
			if best == 0 || per < best {
				best = per
			}
		}
		return best
	}
	measure(shmPort) // warm both connections before timing
	measure(xdrPort)
	shmPer := measure(shmPort)
	xdrPer := measure(xdrPort)
	if speedup := float64(xdrPer) / float64(shmPer); speedup < 1.3 {
		t.Errorf("shm small-call speedup %.2fx below the 1.3x gate (shm %v, xdr %v)",
			speedup, shmPer, xdrPer)
	}
}
