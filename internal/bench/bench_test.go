package bench

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

func parseCell(t *testing.T, cell string) float64 {
	t.Helper()
	cell = strings.TrimSuffix(cell, "x")
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", cell, err)
	}
	return v
}

func parseDur(t *testing.T, cell string) time.Duration {
	t.Helper()
	d, err := time.ParseDuration(strings.Replace(cell, "µs", "us", 1))
	if err != nil {
		t.Fatalf("cell %q not a duration: %v", cell, err)
	}
	return d
}

func TestTableFormatting(t *testing.T) {
	tb := &Table{ID: "T", Title: "demo", Note: "n", Columns: []string{"a", "bb"}}
	tb.AddRow("1", "2")
	s := tb.String()
	for _, want := range []string{"== T: demo ==", "a ", "bb", "1 ", "--"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
}

func TestFormatHelpers(t *testing.T) {
	if FmtDur(500*time.Nanosecond) != "500ns" {
		t.Error(FmtDur(500 * time.Nanosecond))
	}
	if FmtDur(1500*time.Nanosecond) != "1.50µs" {
		t.Error(FmtDur(1500 * time.Nanosecond))
	}
	if FmtDur(2*time.Millisecond) != "2.00ms" {
		t.Error(FmtDur(2 * time.Millisecond))
	}
	if FmtDur(3*time.Second) != "3.00s" {
		t.Error(FmtDur(3 * time.Second))
	}
	if FmtBytes(512) != "512B" || FmtBytes(2048) != "2.0KiB" || FmtBytes(3<<20) != "3.0MiB" {
		t.Error("FmtBytes broken")
	}
	if FmtRatio(2.5) != "2.50x" || FmtInt(7) != "7" || FmtFloat(1.234) != "1.23" {
		t.Error("format helpers broken")
	}
	if FmtRate(2e6) != "2.0MB/s" {
		t.Error(FmtRate(2e6))
	}
}

func TestWorkloadsDeterministic(t *testing.T) {
	a := RandDoubles(100, 1)
	b := RandDoubles(100, 1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("RandDoubles not deterministic")
		}
	}
	m := RandMatrix(8, 2)
	if len(m) != 64 {
		t.Fatalf("matrix len = %d", len(m))
	}
	// Diagonal dominance.
	if m[0] < 8 {
		t.Fatalf("m[0,0] = %v, want boosted diagonal", m[0])
	}
}

func TestE2ShapeMatchesPaperClaim(t *testing.T) {
	tb := E2Encoding([]int{1000})
	// Rows: xdr, soap-base64, soap-hex, soap-elementwise. The claim:
	// every SOAP text encoding expands more than XDR binary.
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	exp := map[string]float64{}
	for _, row := range tb.Rows {
		exp[row[1]] = parseCell(t, row[3])
	}
	if !(exp["xdr"] < exp["soap-base64"] && exp["soap-base64"] < exp["soap-hex"]) {
		t.Fatalf("expansion order wrong: %v", exp)
	}
	if exp["soap-elementwise"] <= exp["soap-base64"] {
		t.Fatalf("elementwise should expand most among common cases: %v", exp)
	}
	if exp["xdr"] > 1.05 {
		t.Fatalf("xdr expansion = %v, want ~1.0", exp["xdr"])
	}
}

func TestE5ShapeMatchesPaperClaim(t *testing.T) {
	tb := E5Coherency([]int{16}, []Mix{{"90%upd", 0.9}, {"10%upd", 0.1}}, 300)
	// Index rows by (mix, strategy) -> msgs/op.
	msgs := map[string]float64{}
	for _, row := range tb.Rows {
		msgs[row[1]+"/"+row[2]] = parseCell(t, row[3])
	}
	// Update-heavy: decentralized must beat full-sync on traffic.
	if !(msgs["90%upd/decentralized"] < msgs["90%upd/full-sync"]) {
		t.Fatalf("update-heavy: %v", msgs)
	}
	// Query-heavy: full-sync must beat decentralized.
	if !(msgs["10%upd/full-sync"] < msgs["10%upd/decentralized"]) {
		t.Fatalf("query-heavy: %v", msgs)
	}
	// Hybrid sits between the extremes in both regimes.
	for _, mix := range []string{"90%upd", "10%upd"} {
		h := msgs[mix+"/hybrid-k4"]
		lo, hi := msgs[mix+"/full-sync"], msgs[mix+"/decentralized"]
		if lo > hi {
			lo, hi = hi, lo
		}
		if h < lo-0.01 || h > hi+0.01 {
			t.Fatalf("%s: hybrid %v outside [%v,%v]", mix, h, lo, hi)
		}
	}
}

func TestE6ShapeMatchesPaperClaim(t *testing.T) {
	tb := E6Lookup([]int{32})
	reg := map[string]float64{}
	disc := map[string]float64{}
	for _, row := range tb.Rows {
		reg[row[1]] = parseCell(t, row[2])
		disc[row[1]] = parseCell(t, row[4])
	}
	// Decentralized: free registration, expensive discovery.
	if reg["decentralized"] != 0 {
		t.Fatalf("decentralized reg msgs = %v", reg["decentralized"])
	}
	if disc["decentralized"] <= disc["centralized"] {
		t.Fatalf("decentralized discovery should be the most expensive: %v", disc)
	}
	// Centralized: constant small cost regardless of size.
	if reg["centralized"] != 2 || disc["centralized"] != 2 {
		t.Fatalf("centralized costs: %v %v", reg, disc)
	}
}

func TestE8ShapeIndexedBeatsScan(t *testing.T) {
	tb, err := E8Registry([]int{200})
	if err != nil {
		t.Fatal(err)
	}
	var byName, byQuery time.Duration
	for _, row := range tb.Rows {
		switch row[1] {
		case "byName (indexed)":
			byName = parseDur(t, row[2])
		case "byQuery (scan)":
			byQuery = parseDur(t, row[2])
		}
	}
	if byName == 0 || byQuery == 0 {
		t.Fatalf("missing rows:\n%s", tb)
	}
	if byName*10 > byQuery {
		t.Fatalf("indexed (%v) should be far cheaper than scan (%v)", byName, byQuery)
	}
}

func TestE4ShapeLightweightWins(t *testing.T) {
	tb, err := E4Deployment()
	if err != nil {
		t.Fatal(err)
	}
	costs := map[string]time.Duration{}
	for _, row := range tb.Rows {
		costs[row[0]] = parseDur(t, row[1])
	}
	if costs["harness2-lightweight"] >= costs["appserver-heavyweight"] {
		t.Fatalf("costs = %v", costs)
	}
}

func TestRunDispatch(t *testing.T) {
	if _, err := Run("E99", Params{}); err == nil {
		t.Fatal("unknown experiment should fail")
	}
	if got := IDs(); len(got) != 21 || got[0] != "E1" {
		t.Fatalf("IDs = %v", got)
	}
	// E2 through the dispatcher with the quick params (fastest pure-CPU
	// experiment; the network ones run in the E2E test below).
	tb, err := Run("E2", Params{})
	if err != nil || tb.ID != "E2" {
		t.Fatalf("Run(E2) = %v, %v", tb, err)
	}
}

func TestE5bShapeKInterpolates(t *testing.T) {
	tb := E5bHybridK(16, []int{1, 16}, 300)
	msgs := map[string]float64{}
	for _, row := range tb.Rows {
		msgs[row[0]] = parseCell(t, row[3])
	}
	// k=1: no replication, all cost on queries; k=N: all cost on updates.
	// Under a 50/50 mix the totals differ, but k=1 must cost nothing on
	// updates — compare against a separate decentralized run instead:
	// here we just require both sweeps produced sane positive traffic and
	// that they differ (the poles behave differently).
	if msgs["1"] == msgs["16"] {
		t.Fatalf("k=1 and k=N should differ: %v", msgs)
	}
	for k, v := range msgs {
		if v < 0 {
			t.Fatalf("k=%s msgs/op = %v", k, v)
		}
	}
}

func TestE13ShapePoliciesRestoreAvailability(t *testing.T) {
	// One 20% fault-rate sweep: unprotected availability must crater while
	// every policy configuration rides through the same fault schedule.
	tb, err := E13FaultSweep([]float64{0.2}, 150)
	if err != nil {
		t.Fatal(err)
	}
	success := map[string]float64{}
	p99 := map[string]time.Duration{}
	for _, row := range tb.Rows {
		success[row[1]] = parseCell(t, strings.TrimSuffix(row[2], "%"))
		p99[row[1]] = parseDur(t, row[3])
	}
	if s := success["none"]; s > 90 {
		t.Fatalf("no-policy success = %.1f%%, want <= 90%%\n%s", s, tb)
	}
	for _, pol := range []string{"retry", "retry+breaker", "retry+breaker+hedge"} {
		if s := success[pol]; s < 99 {
			t.Fatalf("%s success = %.1f%%, want >= 99%%\n%s", pol, s, tb)
		}
	}
	// Hedging must beat the 10ms latency-fault tail that retry alone eats.
	if !raceEnabled && p99["retry+breaker+hedge"] >= p99["retry"] {
		t.Fatalf("hedged p99 %v should undercut retry-only p99 %v\n%s",
			p99["retry+breaker+hedge"], p99["retry"], tb)
	}
}

func TestE13bShapeDisabledPathFree(t *testing.T) {
	tb, err := E13bDisabledOverhead(50_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// The delegation-overhead row: zero extra allocations is a hard
	// contract (timing is asserted loosely; CI machines vary).
	if got := tb.Rows[2][2]; got != "0" {
		t.Fatalf("delegation allocs/op = %q, want 0\n%s", got, tb)
	}
}

func TestNetworkExperimentsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("network experiments are slow")
	}
	// Small bespoke parameter sets keep this under a few seconds while
	// exercising every moving part end to end.
	if tb, err := E1Amortization([]int{1, 20}); err != nil || len(tb.Rows) != 2 {
		t.Fatalf("E1: %v %v", tb, err)
	}
	// 6 rows with the shm rung, 5 on platforms without it.
	if tb, err := E3Bindings([]int{8}); err != nil || (len(tb.Rows) != 5 && len(tb.Rows) != 6) {
		t.Fatalf("E3: %v %v", tb, err)
	}
	if tb, err := E7PVM([]int{0, 1024}, 200); err != nil || len(tb.Rows) != 4 {
		t.Fatalf("E7: %v %v", tb, err)
	}
	if tb, err := E9Locality(64, 3); err != nil || len(tb.Rows) != 3 {
		t.Fatalf("E9: %v %v", tb, err)
	}
	if tb, err := E10Discovery([]int{2}); err != nil || len(tb.Rows) != 2 {
		t.Fatalf("E10: %v %v", tb, err)
	}
	// E11 with tiny sizes: 2 payloads x 3 transports x 2 client counts.
	if tb, err := E11Concurrency([]int{1, 4}, 20, 256, 4); err != nil || len(tb.Rows) != 12 {
		t.Fatalf("E11: %v %v", tb, err)
	}
}

func TestE11ShapeMuxScales(t *testing.T) {
	if testing.Short() {
		t.Skip("network experiment is slow")
	}
	if raceEnabled {
		t.Skip("timing-shape assertion; the race detector skews scheduling")
	}
	// Enough calls for the scaling signal to beat loopback noise.
	tb, err := E11Concurrency([]int{1, 16}, 150, 256, 150)
	if err != nil {
		t.Fatal(err)
	}
	// Index speedup by (transport, clients) for the small payload, where
	// per-call latency (not wire bandwidth) dominates.
	speedup := map[string]float64{}
	for _, row := range tb.Rows {
		if strings.HasPrefix(row[0], "small") {
			speedup[row[1]+"/"+row[2]] = parseCell(t, row[7])
		}
	}
	// The multiplexed transport must convert 16 concurrent callers into
	// real aggregate throughput; the serial port cannot (one call in
	// flight per connection, so scaling hovers near 1x).
	if s := speedup["mux/16"]; s < 2 {
		t.Fatalf("mux speedup at 16 clients = %.2fx, want >= 2x\n%s", s, tb)
	}
	if s := speedup["serial/16"]; s > speedup["mux/16"] {
		t.Fatalf("serial (%v) should not out-scale mux (%v)\n%s",
			s, speedup["mux/16"], tb)
	}
}
