package bench

import (
	"os"
	"testing"
	"time"

	"harness2/internal/registry"
	"harness2/internal/soap"
)

// TestE14Gate is the CI regression gate over the S29 fast path. Timing
// assertions are inherently machine-sensitive, so it only runs when
// E14_GATE=1 (CI exports it) and the floors are far below the locally
// measured margins: decode speedup ≥2x against a ≥5x measurement, and
// ≤300ns of disabled-cache overhead against a measured ~0ns.
func TestE14Gate(t *testing.T) {
	if os.Getenv("E14_GATE") == "" {
		t.Skip("set E14_GATE=1 to run the timing gate")
	}

	// Gate 1: streaming decode must beat the DOM ablation by the floor
	// factor on a packed 1e5-double envelope.
	const n = 100_000
	payload := RandDoubles(n, 14)
	call := &soap.Call{Method: "put", Params: []soap.Param{{Name: "vals", Value: payload}}}
	fast := soap.Codec{Arrays: soap.EncodeBase64}
	dom := soap.Codec{Arrays: soap.EncodeBase64, DisableFastPath: true}
	env, err := fast.EncodeCall(call)
	if err != nil {
		t.Fatal(err)
	}
	decode := func(c soap.Codec) {
		if _, err := c.DecodeCall(env); err != nil {
			t.Fatal(err)
		}
	}
	decode(fast) // warm both paths before timing
	decode(dom)
	domPer := timeIt(10, func() { decode(dom) })
	fastPer := timeIt(40, func() { decode(fast) })
	if speedup := float64(domPer) / float64(fastPer); speedup < 2.0 {
		t.Errorf("fast decode speedup %.2fx below the 2x gate (fast %v, dom %v)",
			speedup, fastPer, domPer)
	}

	// Gate 2: a disabled (ttl=0) cache may only add a branch over calling
	// the source directly.
	reg := registry.New()
	key, err := reg.Publish(registry.Entry{Name: "svc", WSDL: "<definitions/>"})
	if err != nil {
		t.Fatal(err)
	}
	off := registry.NewCache(reg, 0)
	const reps = 200_000
	directPer := timeIt(reps, func() { reg.Get(key) })
	offPer := timeIt(reps, func() { off.Get(key) })
	if delta := offPer - directPer; delta > 300*time.Nanosecond {
		t.Errorf("disabled cache adds %v per Get (direct %v, disabled %v); gate is 300ns",
			delta, directPer, offPer)
	}
}
