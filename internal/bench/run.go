package bench

import (
	"fmt"
	"sort"
)

// Params sizes an experiment run. Quick keeps everything laptop-fast;
// Full widens the sweeps for report-quality output.
type Params struct {
	Full bool
	// Short shrinks every sweep to a CI smoke size: seconds, not minutes.
	// It wins over Full.
	Short bool
}

func (p Params) encodingSizes() []int {
	if p.Full {
		return []int{100, 1000, 10000, 100000, 1000000}
	}
	return []int{100, 10000, 250000}
}

func (p Params) matmulSizes() []int {
	if p.Full {
		return []int{8, 32, 128, 384}
	}
	return []int{8, 64, 192}
}

func (p Params) callCounts() []int {
	if p.Full {
		return []int{1, 10, 100, 1000}
	}
	return []int{1, 10, 100}
}

func (p Params) nodeCounts() []int {
	if p.Full {
		return []int{2, 4, 8, 16, 32, 64}
	}
	return []int{4, 16, 64}
}

func (p Params) coherencyOps() int {
	if p.Full {
		return 2000
	}
	return 400
}

func (p Params) hybridKs() []int {
	if p.Full {
		return []int{1, 2, 4, 8, 16, 32}
	}
	return []int{1, 4, 16, 32}
}

func (p Params) pvmPayloads() []int {
	if p.Full {
		return []int{0, 128, 4096, 131072}
	}
	return []int{0, 4096, 131072}
}

func (p Params) pvmRounds() int {
	if p.Full {
		return 5000
	}
	return 1000
}

func (p Params) registrySizes() []int {
	if p.Full {
		return []int{10, 100, 1000, 5000}
	}
	return []int{10, 100, 1000}
}

func (p Params) discoveryCounts() []int {
	if p.Full {
		return []int{1, 8, 32}
	}
	return []int{1, 8}
}

func (p Params) localityN() int {
	if p.Full {
		return 300
	}
	return 150
}

func (p Params) localityJobs() int {
	if p.Full {
		return 20
	}
	return 8
}

func (p Params) xdrClients() []int {
	if p.Full {
		return []int{1, 4, 16, 64}
	}
	return []int{1, 4, 16}
}

func (p Params) xdrSmallCalls() int {
	if p.Full {
		return 400
	}
	return 150
}

// xdrArrayLen is the float64 element count of the E11 large payload:
// 1 MiB on the wire for Full runs, 64 KiB for quick runs.
func (p Params) xdrArrayLen() int {
	if p.Full {
		return 1 << 17
	}
	return 1 << 13
}

func (p Params) xdrArrayCalls() int {
	if p.Full {
		return 16
	}
	return 6
}

func (p Params) telemetryReps() int {
	if p.Full {
		return 2_000_000
	}
	return 200_000
}

func (p Params) telemetryInvokeReps() int {
	if p.Full {
		return 200_000
	}
	return 20_000
}

// resilienceRates is the E13 fault-rate sweep.
func (p Params) resilienceRates() []float64 {
	if p.Short {
		return []float64{0, 0.1, 0.3}
	}
	return []float64{0, 0.1, 0.2, 0.3}
}

// resilienceCalls is the per-cell call count of the E13 sweep. The cap
// is modest because un-hedged latency faults cost real wall time.
func (p Params) resilienceCalls() int {
	if p.Short {
		return 80
	}
	if p.Full {
		return 1000
	}
	return 400
}

// resilienceOverheadReps sizes the E13b disabled-path measurement.
func (p Params) resilienceOverheadReps() int {
	if p.Short {
		return 20_000
	}
	if p.Full {
		return 2_000_000
	}
	return 200_000
}

// fastpathSizes sizes the E14 decode sweep (doubles per envelope).
func (p Params) fastpathSizes() []int {
	if p.Short {
		return []int{1000, 10000}
	}
	if p.Full {
		return []int{100, 1000, 10000, 100000, 1000000}
	}
	return []int{1000, 100000, 1000000}
}

// e16ArrayCalls is the per-trial call count of the E16 invoke stage.
// Larger than E11's array counts: the shm segment needs enough calls
// to wrap the ring and fault in every page before the steady state
// the best-of-three trials are after.
func (p Params) e16ArrayCalls() int {
	if p.Full {
		return 200
	}
	return 80
}

// zerocopySizes sizes the E16 codec sweep (doubles per array).
func (p Params) zerocopySizes() []int {
	if p.Short {
		return []int{512, 8192}
	}
	if p.Full {
		return []int{64, 512, 8192, 131072, 1 << 20}
	}
	return []int{512, 8192, 131072}
}

// e18Ns is the replica-count sweep of the E18 time-to-serving curve.
func (p Params) e18Ns() []int {
	if p.Short {
		return []int{2, 8}
	}
	return []int{2, 8, 32}
}

// e18Kills is the number of recovery samples E18 takes.
func (p Params) e18Kills() int {
	if p.Short {
		return 3
	}
	if p.Full {
		return 10
	}
	return 5
}

// e19ArrayLen is the doubles count of the E19 transfer payload: 64 KiB
// on the wire, large enough that WAN serialisation dominates latency.
func (p Params) e19ArrayLen() int { return 8192 }

// e19WanCalls is the per-trial call count on the paced LAN/WAN links —
// modest because each WAN call costs real wall time by design.
func (p Params) e19WanCalls() int {
	if p.Short {
		return 2
	}
	if p.Full {
		return 8
	}
	return 4
}

// e19LoopCalls sizes the loopback v2-vs-v3-raw ablation.
func (p Params) e19LoopCalls() int {
	if p.Short {
		return 40
	}
	if p.Full {
		return 400
	}
	return 150
}

// Run executes one experiment by ID (E1–E19).
func Run(id string, p Params) (*Table, error) {
	switch id {
	case "E1":
		return E1Amortization(p.callCounts())
	case "E2":
		return E2Encoding(p.encodingSizes()), nil
	case "E3":
		return E3Bindings(p.matmulSizes())
	case "E4":
		return E4Deployment()
	case "E5":
		return E5Coherency(p.nodeCounts(), DefaultMixes(), p.coherencyOps()), nil
	case "E5b":
		return E5bHybridK(32, p.hybridKs(), p.coherencyOps()), nil
	case "E6":
		return E6Lookup(p.nodeCounts()), nil
	case "E7":
		return E7PVM(p.pvmPayloads(), p.pvmRounds())
	case "E8":
		return E8Registry(p.registrySizes())
	case "E9":
		return E9Locality(p.localityN(), p.localityJobs())
	case "E10":
		return E10Discovery(p.discoveryCounts())
	case "E11":
		return E11Concurrency(p.xdrClients(), p.xdrSmallCalls(),
			p.xdrArrayLen(), p.xdrArrayCalls())
	case "E12":
		return E12TelemetryOverhead(p.telemetryReps(), p.telemetryInvokeReps())
	case "E13":
		return E13FaultSweep(p.resilienceRates(), p.resilienceCalls())
	case "E13b":
		return E13bDisabledOverhead(p.resilienceOverheadReps())
	case "E14":
		return E14FastPath(p.fastpathSizes())
	case "E15":
		return E15Metacity(p.e15SimClients(), p.e15SimOps(), p.e15Services(),
			p.e15RealClients(), p.e15RealCalls())
	case "E16":
		return E16DataPlane(p.zerocopySizes(), p.xdrSmallCalls(),
			p.xdrArrayLen(), p.e16ArrayCalls())
	case "E17":
		return E17Cluster(p.e17Entries(), p.e17Reads())
	case "E18":
		return E18Fleet(p.e18Ns(), p.e18Kills())
	case "E19":
		return E19WANPlane(p.e19ArrayLen(), p.e19WanCalls(), p.e19LoopCalls())
	}
	return nil, fmt.Errorf("bench: unknown experiment %q", id)
}

// IDs returns every experiment ID in order.
func IDs() []string {
	ids := []string{"E1", "E10", "E11", "E12", "E13", "E13b", "E14", "E15", "E16", "E17", "E18", "E19", "E2", "E3", "E4", "E5", "E5b", "E6", "E7", "E8", "E9"}
	sort.Strings(ids)
	return ids
}
