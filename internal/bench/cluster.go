package bench

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"time"

	"harness2/internal/registry"
	"harness2/internal/registry/cluster"
	"harness2/internal/soap"
	"harness2/internal/telemetry"
	"harness2/internal/wsdl"
)

// E17 — registry cluster (S31): sharded lookup plane vs single node.
//
// The experiment fills one registry and a 3-peer R=2 cluster with the
// same entry population, measures read-path percentiles on both, then
// drives churn (kill one peer, join a fourth) and measures detection,
// rebalance cost, and availability — the paper's registry front door at
// "grid" scale instead of one mutex-guarded process.

// e17Entries sizes the entry population.
func (p Params) e17Entries() int {
	if p.Short {
		return 2_000
	}
	if p.Full {
		return 100_000
	}
	return 20_000
}

// e17Reads is the per-metric sampled read count.
func (p Params) e17Reads() int {
	if p.Short {
		return 500
	}
	if p.Full {
		return 5_000
	}
	return 2_000
}

// e17WSDL builds the one WSDL document shared by every generated entry:
// the publish path validates each document, and at 10⁵ entries distinct
// documents would make fill time dominate the experiment.
func e17WSDL() (string, error) {
	defs, err := wsdl.Generate(wsdl.ServiceSpec{
		Name: "ClusterSvc",
		Operations: []wsdl.OpSpec{{
			Name:   "run",
			Input:  []wsdl.ParamSpec{{Name: "x", Type: wireKindDoubleArray}},
			Output: []wsdl.ParamSpec{{Name: "y", Type: wireKindDoubleArray}},
		}},
	}, wsdl.EndpointSet{
		SOAPAddress: "http://host:8080/services/cluster",
		XDRAddress:  "host:9010",
	})
	if err != nil {
		return "", err
	}
	return defs.String(), nil
}

func e17Name(i int) string { return fmt.Sprintf("Svc%d", i) }

// percentiles returns (p50, p99) of the sample set.
func percentiles(ds []time.Duration) (p50, p99 time.Duration) {
	if len(ds) == 0 {
		return 0, 0
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[len(ds)*50/100], ds[len(ds)*99/100]
}

// sample measures fn once per selected index, spreading reads across the
// population with a fixed stride. A forced collection first keeps the
// fill phase's garbage from landing as GC pauses inside the percentiles.
func sample(n, population int, fn func(i int)) []time.Duration {
	runtime.GC()
	ds := make([]time.Duration, 0, n)
	stride := population / n
	if stride == 0 {
		stride = 1
	}
	for i := 0; i < n; i++ {
		idx := (i * stride) % population
		start := time.Now()
		fn(idx)
		ds = append(ds, time.Since(start))
	}
	return ds
}

// e17Cluster builds an in-process simnet cluster.
func e17Cluster(peers, replicas int) (*cluster.MemNet, []*cluster.Node) {
	net := cluster.NewMemNet()
	var seed []cluster.PeerState
	for i := 1; i <= peers; i++ {
		seed = append(seed, cluster.PeerState{
			ID:   fmt.Sprintf("n%d", i),
			Addr: fmt.Sprintf("addr%d", i),
		})
	}
	nodes := make([]*cluster.Node, peers)
	for i := range nodes {
		nodes[i] = cluster.NewNode(cluster.Config{
			ID:        seed[i].ID,
			Addr:      seed[i].Addr,
			Seed:      seed,
			Replicas:  replicas,
			DeadAfter: time.Millisecond, // churn phases drive time via Step
			Caller:    net,
			Telemetry: telemetry.Disabled(),
		})
		net.Register(seed[i].Addr, nodes[i].HandlePeer)
	}
	return net, nodes
}

// E17Result carries the machine-readable outcome for the perf gate:
// the routed cluster find p99 is compared against the single-node
// owner-shard read at transport parity — the same name-index read
// through one peer RPC with no ring routing (SingleFindP99) — and
// churn must lose zero finds.
type E17Result struct {
	SingleGetP99    time.Duration
	SingleFindP99   time.Duration
	ClusterFindP99  time.Duration
	KillFailedFinds int
	JoinFailedFinds int
	KillMoved       uint64
	JoinMoved       uint64
	KillRebalance   time.Duration
	JoinRebalance   time.Duration
}

// E17ClusterBench runs the experiment and returns both the table and the
// gate result.
func E17ClusterBench(entries, reads int) (*Table, *E17Result, error) {
	t := &Table{
		ID:    "E17",
		Title: "Registry cluster: sharded lookup plane vs single node (simnet)",
		Note: fmt.Sprintf("%d entries, %d sampled reads; 3-peer R=2 consistent-hash ring over in-memory transport",
			entries, reads),
		Columns: []string{"topology", "op", "p50", "p99", "note"},
	}
	res := &E17Result{}
	xml, err := e17WSDL()
	if err != nil {
		return nil, nil, err
	}

	// --- single node baseline -----------------------------------------
	reg := registry.New()
	keys := make([]string, entries)
	for i := 0; i < entries; i++ {
		k, err := reg.Publish(registry.Entry{Name: e17Name(i), Key: e17Name(i) + "::k", WSDL: xml})
		if err != nil {
			return nil, nil, err
		}
		keys[i] = k
	}
	ds := sample(reads, entries, func(i int) { reg.Get(keys[i]) })
	p50, p99 := percentiles(ds)
	res.SingleGetP99 = p99
	t.AddRow("single", "get", FmtDur(p50), FmtDur(p99), "owner-shard baseline")
	ds = sample(reads, entries, func(i int) { reg.FindByName(e17Name(i)) })
	p50, p99 = percentiles(ds)
	t.AddRow("single", "findByName", FmtDur(p50), FmtDur(p99), "indexed, in-process")

	// --- 3-peer cluster ------------------------------------------------
	net, nodes := e17Cluster(3, 2)

	// Transport-parity baseline: the same single-node store read through
	// one peer RPC (marshal, dispatch, unmarshal) with no ring routing —
	// what "the single-node owner-shard read" costs a remote client, and
	// the denominator of the perf gate. The solo node shares the filled
	// single-node store.
	solo := cluster.NewNode(cluster.Config{
		ID: "solo", Addr: "solo",
		Replicas:  1,
		DeadAfter: time.Millisecond,
		Caller:    net,
		Store:     reg,
		Telemetry: telemetry.Disabled(),
	})
	net.Register("solo", solo.HandlePeer)
	ds = sample(reads, entries, func(i int) {
		out, err := net.Call(context.Background(), "solo", cluster.OpFindName,
			[]soap.Param{{Name: "arg", Value: e17Name(i)}})
		if err != nil {
			panic(err)
		}
		if _, err := registry.UnmarshalEntries(out); err != nil {
			panic(err)
		}
	})
	p50, p99 = percentiles(ds)
	res.SingleFindP99 = p99
	t.AddRow("single", "findByName (via RPC)", FmtDur(p50), FmtDur(p99), "owner-shard read, one hop")
	for i := 0; i < entries; i++ {
		if _, err := nodes[i%3].Publish(registry.Entry{
			Name: e17Name(i), Key: e17Name(i) + "::k", WSDL: xml,
		}); err != nil {
			return nil, nil, err
		}
	}
	// Owner-shard read: each read from a node that owns the key.
	owner := func(i int) *cluster.Node {
		for _, n := range nodes {
			if n.IsLocalOwner(keys[i]) {
				return n
			}
		}
		return nodes[0]
	}
	nonOwner := func(i int) *cluster.Node {
		for _, n := range nodes {
			if !n.IsLocalOwner(keys[i]) {
				return n
			}
		}
		return nodes[0]
	}
	ds = sample(reads, entries, func(i int) { owner(i).Get(keys[i]) })
	p50, p99 = percentiles(ds)
	t.AddRow("3-peer R=2", "get (owner shard)", FmtDur(p50), FmtDur(p99), "read-your-writes")
	ds = sample(reads, entries, func(i int) { nonOwner(i).Get(keys[i]) })
	p50, p99 = percentiles(ds)
	t.AddRow("3-peer R=2", "get (remote shard)", FmtDur(p50), FmtDur(p99), "one peer hop")
	ds = sample(reads, entries, func(i int) { nonOwner(i).FindByName(e17Name(i)) })
	p50, p99 = percentiles(ds)
	res.ClusterFindP99 = p99
	t.AddRow("3-peer R=2", "findByName (routed)", FmtDur(p50), FmtDur(p99),
		FmtRatio(ratio(p99, res.SingleFindP99))+" vs owner-shard RPC read")

	// Scatter-gather structural query: touches every shard; priced at a
	// handful of repetitions because each one scans the whole population.
	qReps := 5
	ds = sample(qReps, entries, func(i int) {
		nodes[i%3].FindByQuery("//binding/soap:binding")
	})
	p50, p99 = percentiles(ds)
	t.AddRow("3-peer R=2", "findByQuery (scatter)", FmtDur(p50), FmtDur(p99),
		fmt.Sprintf("full scan, %d reps", qReps))

	// --- E1 re-grown at cluster scale ----------------------------------
	// The Figure 3 amortization claim with the lookup plane sharded: a
	// real service is deployed and published into the 10⁵-entry cluster,
	// discovery routes through a non-owner peer, and — as in E1 — the
	// cluster drops out of the loop after binding, so per-call cost
	// converges to the bare invocation regardless of registry topology.
	var off *cluster.Node
	for _, nd := range nodes {
		if !nd.IsLocalOwner("WSTime") {
			off = nd
			break
		}
	}
	h, err := newHostWith(off)
	if err != nil {
		return nil, nil, err
	}
	defer h.close()
	if _, err := h.publish("WSTime", "clock"); err != nil {
		return nil, nil, err
	}
	ctx := context.Background()
	for _, calls := range []int{1, 100, 1000} {
		start := time.Now()
		defsList, err := h.fw.Discover("WSTime")
		if err != nil || len(defsList) == 0 {
			return nil, nil, fmt.Errorf("bench: cluster discover failed: %v", err)
		}
		port, err := h.fw.DialRemote(defsList[0])
		if err != nil {
			return nil, nil, err
		}
		setup := time.Since(start)
		per := timeIt(calls, func() {
			if _, err := port.Invoke(ctx, "getTime", nil); err != nil {
				panic(err)
			}
		})
		port.Close()
		totalPerCall := (setup + per*time.Duration(calls)) / time.Duration(calls)
		t.AddRow("3-peer R=2", fmt.Sprintf("E1: discover + %d calls", calls),
			FmtDur(per), "-",
			fmt.Sprintf("setup %s, total %s/call", FmtDur(setup), FmtDur(totalPerCall)))
	}

	// --- churn: kill one peer ------------------------------------------
	victim := nodes[2]
	net.Kill(victim.Addr())
	survivors := nodes[:2]
	movedBefore := survivors[0].Stats().Moved + survivors[1].Stats().Moved
	start := time.Now()
	for rounds := 0; rounds < 16; rounds++ {
		for _, n := range survivors {
			n.Step(context.Background())
		}
		if survivors[0].Ring().Len() == 2 && survivors[1].Ring().Len() == 2 {
			break
		}
		// Let the suspicion age past DeadAfter before the next round.
		time.Sleep(2 * time.Millisecond)
	}
	res.KillRebalance = time.Since(start)
	res.KillMoved = survivors[0].Stats().Moved + survivors[1].Stats().Moved - movedBefore
	for i := 0; i < entries; i++ {
		if _, ok, err := survivors[i%2].GetErr(keys[i]); !ok || err != nil {
			res.KillFailedFinds++
		}
	}
	t.AddRow("3-peer churn", "kill 1 peer", FmtDur(res.KillRebalance), "-",
		fmt.Sprintf("%d entries re-replicated, %d failed finds", res.KillMoved, res.KillFailedFinds))

	// --- churn: join a peer --------------------------------------------
	joiner := cluster.NewNode(cluster.Config{
		ID: "n4", Addr: "addr4",
		Seed: []cluster.PeerState{
			{ID: survivors[0].ID(), Addr: survivors[0].Addr()},
			{ID: survivors[1].ID(), Addr: survivors[1].Addr()},
		},
		Replicas:  2,
		DeadAfter: time.Millisecond,
		Caller:    net,
		Telemetry: telemetry.Disabled(),
	})
	net.Register("addr4", joiner.HandlePeer)
	all := []*cluster.Node{survivors[0], survivors[1], joiner}
	movedBefore = all[0].Stats().Moved + all[1].Stats().Moved + all[2].Stats().Moved
	start = time.Now()
	for rounds := 0; rounds < 16; rounds++ {
		for _, n := range all {
			n.Step(context.Background())
		}
		if all[0].Ring().Len() == 3 && all[1].Ring().Len() == 3 && all[2].Ring().Len() == 3 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	res.JoinRebalance = time.Since(start)
	res.JoinMoved = all[0].Stats().Moved + all[1].Stats().Moved + all[2].Stats().Moved - movedBefore
	for i := 0; i < entries; i++ {
		if _, ok, err := all[i%3].GetErr(keys[i]); !ok || err != nil {
			res.JoinFailedFinds++
		}
	}
	t.AddRow("3-peer churn", "join 1 peer", FmtDur(res.JoinRebalance), "-",
		fmt.Sprintf("%d entries handed off, %d failed finds", res.JoinMoved, res.JoinFailedFinds))
	return t, res, nil
}

func ratio(a, b time.Duration) float64 {
	if b <= 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// E17Cluster is the Run entry point.
func E17Cluster(entries, reads int) (*Table, error) {
	t, _, err := E17ClusterBench(entries, reads)
	return t, err
}
