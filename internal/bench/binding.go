package bench

import (
	"context"
	"fmt"
	"time"

	"harness2/internal/container"
	"harness2/internal/core"
	"harness2/internal/invoke"
	"harness2/internal/registry"
	"harness2/internal/wire"
	"harness2/internal/wsdl"
)

// host stands up one framework node with the built-in components deployed
// and published, for the binding experiments.
type host struct {
	fw   *core.Framework
	node *core.Node
}

func newHost() (*host, error) { return newHostWith(nil) }

// newHostWith builds the host on a caller-supplied lookup plane (nil: a
// fresh in-process registry) — E17 re-runs the E1 amortization loop with
// a registry-cluster node here.
func newHostWith(lookup registry.Lookup) (*host, error) {
	fw := core.NewFramework(lookup)
	node, err := fw.AddNode("bench-node", core.NodeOptions{})
	if err != nil {
		return nil, err
	}
	core.RegisterBuiltins(node.Container())
	return &host{fw: fw, node: node}, nil
}

func (h *host) close() { h.fw.Close() }

func (h *host) publish(class, id string) (*wsdl.Definitions, error) {
	if _, _, err := h.fw.DeployAndPublish(h.node.Name(), class, id); err != nil {
		return nil, err
	}
	defsList, err := h.fw.Discover(class)
	if err != nil {
		return nil, err
	}
	if len(defsList) == 0 {
		return nil, fmt.Errorf("bench: %s not discoverable", class)
	}
	return defsList[len(defsList)-1], nil
}

// E3Bindings measures end-to-end MatMul invocation latency per binding,
// reproducing the localization claim of §5 and Figure 5: in-process
// JavaObject access beats XDR sockets beats SOAP/HTTP, with the gap
// narrowing as computation grows to dominate transport.
func E3Bindings(sizes []int) (*Table, error) {
	t := &Table{
		ID:    "E3",
		Title: "MatMul invocation latency by binding (loopback network)",
		Note:  "paper §5 localization issue / Figure 5; compute row is the bare kernel",
		Columns: []string{"n", "binding", "per-call", "vs compute",
			"transport overhead"},
	}
	h, err := newHost()
	if err != nil {
		return nil, err
	}
	defer h.close()
	defs, err := h.publish("MatMul", "mm")
	if err != nil {
		return nil, err
	}
	ctx := context.Background()

	for _, n := range sizes {
		a := RandDoubles(n*n, int64(n))
		b := RandDoubles(n*n, int64(n)+1)
		args := wire.Args("mata", a, "matb", b, "n", int32(n))
		reps := matmulReps(n)

		compute := timeIt(reps, func() {
			if _, err := core.MatMul(a, b, n); err != nil {
				panic(err)
			}
		})
		t.AddRow(FmtInt(n), "compute-only", FmtDur(compute), FmtRatio(1), "-")

		type variant struct {
			name string
			port invoke.Port
		}
		variants := []variant{
			{"local (JavaObject)", &invoke.LocalPort{Container: h.node.Container(), Instance: "mm"}},
		}
		if addr := h.node.ShmAddr(); addr != "" {
			if sp, err := invoke.NewShmPort(addr, "mm"); err == nil {
				variants = append(variants, variant{"shm (same host)", sp})
			}
		}
		variants = append(variants,
			variant{"xdr (reused conn)", invoke.NewXDRPort(h.node.XDRAddr(), "mm", false)},
			variant{"xdr (dial/call)", invoke.NewXDRPort(h.node.XDRAddr(), "mm", true)},
		)
		if soapRefs := defs.PortsByKind(wsdl.BindSOAP); len(soapRefs) == 1 {
			variants = append(variants, variant{"soap/http (base64)",
				&invoke.SOAPPort{URL: soapRefs[0].Port.Address}})
		}
		for _, v := range variants {
			port := v.port
			call := func() {
				if _, err := port.Invoke(ctx, "getResult", args); err != nil {
					panic(fmt.Sprintf("%s: %v", v.name, err))
				}
			}
			// Warm the connection (and, for shm, fault in the segment
			// pages) so the steady-state rows measure transport, not
			// setup; the dial/call variant re-dials inside the loop and
			// keeps measuring exactly that.
			call()
			call()
			per := timeIt(reps, call)
			overhead := per - compute
			if overhead < 0 {
				overhead = 0
			}
			t.AddRow(FmtInt(n), v.name, FmtDur(per),
				FmtRatio(float64(per)/float64(compute)), FmtDur(overhead))
			_ = port.Close()
		}
	}
	return t, nil
}

func matmulReps(n int) int {
	switch {
	case n <= 16:
		return 200
	case n <= 64:
		return 50
	case n <= 256:
		return 10
	default:
		return 3
	}
}

// E1Amortization reproduces the Figure 3/4 loop-structure claim: the
// lookup service drops out after discovery, so per-call cost converges to
// the bare invocation cost as calls amortize the one-time discover+bind.
func E1Amortization(callCounts []int) (*Table, error) {
	t := &Table{
		ID:      "E1",
		Title:   "Discovery amortization: per-call cost vs calls per discovery",
		Note:    "paper §4/Figure 3: after discovery the lookup service is out of the loop",
		Columns: []string{"calls", "discover+bind", "mean per-call", "total/call"},
	}
	h, err := newHost()
	if err != nil {
		return nil, err
	}
	defer h.close()
	if _, err := h.publish("WSTime", "clock"); err != nil {
		return nil, err
	}
	ctx := context.Background()
	for _, calls := range callCounts {
		start := time.Now()
		defsList, err := h.fw.Discover("WSTime")
		if err != nil || len(defsList) == 0 {
			return nil, fmt.Errorf("bench: discover failed: %v", err)
		}
		// Force the network (SOAP) binding: a handheld-style client.
		port, err := h.fw.DialRemote(defsList[0])
		if err != nil {
			return nil, err
		}
		setup := time.Since(start)
		per := timeIt(calls, func() {
			if _, err := port.Invoke(ctx, "getTime", nil); err != nil {
				panic(err)
			}
		})
		_ = port.Close()
		totalPerCall := (setup + per*time.Duration(calls)) / time.Duration(calls)
		t.AddRow(FmtInt(calls), FmtDur(setup), FmtDur(per), FmtDur(totalPerCall))
	}
	return t, nil
}

// E4Deployment contrasts the deployment cost models of §5: the era
// application-server flow vs the HARNESS II lightweight container, plus
// the real measured instantiation cost of the latter.
func E4Deployment() (*Table, error) {
	t := &Table{
		ID:    "E4",
		Title: "Component deployment cost: heavyweight app-server vs lightweight container",
		Note:  "modelled columns use the DeployPolicy cost model; measured column is wall time",
		Columns: []string{"policy", "modelled deploy", "measured instantiate",
			"time-to-first-request", "deploys/sec (measured)"},
	}
	for _, policy := range []container.DeployPolicy{container.Heavyweight, container.Lightweight} {
		c := container.New(container.Config{Name: "deploy-bench", Policy: policy})
		core.RegisterBuiltins(c)
		// Measured instantiation (mechanical cost only; Sleep is false).
		const reps = 200
		start := time.Now()
		for i := 0; i < reps; i++ {
			if _, _, err := c.Deploy("WSTime", fmt.Sprintf("w%d", i)); err != nil {
				return nil, err
			}
		}
		measured := time.Since(start) / reps
		// Time to first request: deploy + one local invocation.
		inst, modelled, err := c.Deploy("WSTime", "first")
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		if _, err := c.Invoke(context.Background(), inst.ID, "getTime", nil); err != nil {
			return nil, err
		}
		firstReq := modelled + time.Since(t0)
		rate := 1.0 / measured.Seconds()
		t.AddRow(policy.Name, FmtDur(policy.Cost()), FmtDur(measured),
			FmtDur(firstReq), FmtFloat(rate))
	}
	return t, nil
}

// E9Locality reproduces the §6 LAPACK scenario: the same LinSolve jobs
// run against three placements of the application logic relative to the
// library component.
func E9Locality(n, jobs int) (*Table, error) {
	t := &Table{
		ID:      "E9",
		Title:   fmt.Sprintf("LAPACK locality scenario: %d LinSolve(%d×%d) jobs by placement", jobs, n, n),
		Note:    "paper §6: move the application next to the library, then into its container",
		Columns: []string{"placement", "binding", "total", "per job"},
	}
	h, err := newHost()
	if err != nil {
		return nil, err
	}
	defer h.close()
	defs, err := h.publish("LinSolve", "lapack")
	if err != nil {
		return nil, err
	}
	a := RandMatrix(n, 42)
	b := RandDoubles(n, 43)
	args := wire.Args("a", a, "b", b, "n", int32(n))
	ctx := context.Background()

	type placement struct {
		label, binding string
		port           invoke.Port
	}
	var placements []placement
	if refs := defs.PortsByKind(wsdl.BindSOAP); len(refs) == 1 {
		placements = append(placements, placement{"remote host", "soap/http",
			&invoke.SOAPPort{URL: refs[0].Port.Address}})
	}
	placements = append(placements,
		placement{"same host", "xdr socket", invoke.NewXDRPort(h.node.XDRAddr(), "lapack", false)},
		placement{"same container", "local (JavaObject)",
			&invoke.LocalPort{Container: h.node.Container(), Instance: "lapack"}},
	)
	for _, p := range placements {
		start := time.Now()
		for j := 0; j < jobs; j++ {
			if _, err := p.port.Invoke(ctx, "solve", args); err != nil {
				return nil, fmt.Errorf("bench: %s: %w", p.label, err)
			}
		}
		total := time.Since(start)
		_ = p.port.Close()
		t.AddRow(p.label, p.binding, FmtDur(total), FmtDur(total/time.Duration(jobs)))
	}
	return t, nil
}
