package bench

import (
	"context"
	"os"
	"testing"
	"time"

	"harness2/internal/container"
	"harness2/internal/invoke"
	"harness2/internal/simnet"
	"harness2/internal/wire"
)

// TestE19Gate is the CI regression gate over the S33 WAN data plane. It
// only runs when E19_GATE=1 (CI exports it); the floors sit far below
// the locally measured margins: adaptive compression ≥2x over raw for a
// compressible 64 KiB array on the modelled WAN against a ~2.6x
// measurement, and the v3 raw loopback path within 25% of v2 framing
// against a measured ~1x.
func TestE19Gate(t *testing.T) {
	if os.Getenv("E19_GATE") == "" {
		t.Skip("set E19_GATE=1 to run the timing gate")
	}

	c := container.New(container.Config{Name: "e19gate"})
	c.RegisterFactory("ArraySink", arraySinkFactory())
	xs, err := invoke.NewXDRServer(c, "127.0.0.1:0",
		invoke.WithXDRCompression(invoke.CompressPolicy{Mode: invoke.CompressAdaptive}))
	if err != nil {
		t.Fatal(err)
	}
	defer xs.Close()
	if _, _, err := c.Deploy("ArraySink", "sink"); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	measure := func(addr string, pol invoke.CompressPolicy, data []float64, calls int) time.Duration {
		p := invoke.NewXDRPort(addr, "sink", false)
		defer p.Close()
		p.SetCompression(pol)
		args := wire.Args("data", data)
		call := func() {
			if _, err := p.Invoke(ctx, "checksum", args); err != nil {
				t.Fatal(err)
			}
		}
		call() // warm: negotiate, fault in pools
		best := time.Duration(0)
		for trial := 0; trial < 3; trial++ {
			if per := timeIt(calls, call); best == 0 || per < best {
				best = per
			}
		}
		return best
	}

	// Gate 1: adaptive ≥2x raw on the modelled WAN for compressible
	// 64 KiB arrays. The proxy bills post-compression bytes, so this is
	// the bandwidth win, not a CPU artifact.
	data := CompressibleDoubles(8192)
	wanRun := func(pol invoke.CompressPolicy) time.Duration {
		proxy, err := simnet.NewLinkProxy(xs.Addr(), simnet.WAN)
		if err != nil {
			t.Fatal(err)
		}
		defer proxy.Close()
		return measure(proxy.Addr(), pol, data, 2)
	}
	rawPer := wanRun(invoke.CompressPolicy{Mode: invoke.CompressOff})
	adaptPer := wanRun(invoke.CompressPolicy{Mode: invoke.CompressAdaptive})
	if speedup := float64(rawPer) / float64(adaptPer); speedup < 2 {
		t.Errorf("adaptive WAN speedup %.2fx below the 2x gate (raw %v, adaptive %v)",
			speedup, rawPer, adaptPer)
	}

	// Gate 2: the v3 raw path must stay within noise of v2 framing on
	// loopback — negotiation and the flags byte are free where
	// compression cannot win. 25% headroom absorbs scheduler noise.
	rnd := RandDoubles(8192, 29)
	loop := func(setup func(p *invoke.XDRPort)) time.Duration {
		p := invoke.NewXDRPort(xs.Addr(), "sink", false)
		defer p.Close()
		setup(p)
		args := wire.Args("data", rnd)
		call := func() {
			if _, err := p.Invoke(ctx, "checksum", args); err != nil {
				t.Fatal(err)
			}
		}
		call()
		best := time.Duration(0)
		for trial := 0; trial < 3; trial++ {
			if per := timeIt(120, call); best == 0 || per < best {
				best = per
			}
		}
		return best
	}
	v2Per := loop(func(p *invoke.XDRPort) { p.SetWireProtocol(2) })
	v3Per := loop(func(p *invoke.XDRPort) {
		p.SetCompression(invoke.CompressPolicy{Mode: invoke.CompressOff})
	})
	if ratio := float64(v3Per) / float64(v2Per); ratio > 1.25 {
		t.Errorf("v3 raw loopback is %.2fx of v2 framing; gate is 1.25x (v2 %v, v3 %v)",
			ratio, v2Per, v3Per)
	}
}
