package bench

import (
	"fmt"
	"net/http/httptest"
	"strings"

	"harness2/internal/core"
	"harness2/internal/registry"
)

// E10Discovery measures the two concrete discovery paths over real HTTP:
// a central SOAP registry (publish once, find by name) versus per-node
// WS-Inspection documents (fetch inspection + referenced WSDL). The
// centralized path answers one small query; the WSIL path costs one fetch
// per referenced document but needs no registry infrastructure — the
// trade the paper's §5 lookup spectrum describes, here with wall-clock
// numbers instead of fabric models (compare E6).
func E10Discovery(serviceCounts []int) (*Table, error) {
	t := &Table{
		ID:      "E10",
		Title:   "Discovery paths over real HTTP: central registry vs WSIL inspection",
		Note:    "registry find returns one match; WSIL walk fetches every referenced WSDL",
		Columns: []string{"services/node", "path", "per discovery", "docs fetched"},
	}
	for _, count := range serviceCounts {
		// One node hosting `count` services.
		fw := core.NewFramework(nil)
		node, err := fw.AddNode("disc-node", core.NodeOptions{})
		if err != nil {
			return nil, err
		}
		core.RegisterBuiltins(node.Container())
		reg := registry.New()
		regSrv := httptest.NewServer(registry.NewServer(reg))
		remote := registry.NewRemote(regSrv.URL)
		for i := 0; i < count; i++ {
			inst, _, err := node.Container().Deploy("WSTime", fmt.Sprintf("svc%d", i))
			if err != nil {
				return nil, err
			}
			if _, err := node.Container().Expose(inst.ID, remote); err != nil {
				return nil, err
			}
		}
		target := "WSTime"

		reps := 50
		regPer := timeIt(reps, func() {
			if got := remote.FindByName(target); len(got) != count {
				panic(fmt.Sprintf("registry find = %d", len(got)))
			}
		})
		t.AddRow(FmtInt(count), "registry (SOAP find)", FmtDur(regPer), FmtInt(1))

		base := strings.TrimSuffix(node.SOAPBase(), "/services")
		wsilPer := timeIt(reps/5+1, func() {
			defs, err := registry.DiscoverViaWSIL(base + "/inspection.wsil")
			if err != nil || len(defs) != count {
				panic(fmt.Sprintf("wsil = %d, %v", len(defs), err))
			}
		})
		t.AddRow(FmtInt(count), "wsil (inspect+fetch)", FmtDur(wsilPer), FmtInt(count+1))

		regSrv.Close()
		fw.Close()
	}
	return t, nil
}
