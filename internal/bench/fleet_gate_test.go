package bench

import (
	"context"
	"os"
	"testing"
	"time"

	"harness2/internal/fleet"
	"harness2/internal/registry"
	"harness2/internal/runnerbox"
	"harness2/internal/telemetry"
)

// TestE18Gate is the CI regression gate over the S32 fleet control
// plane, run when E18_GATE=1 (CI exports it). Availability is absolute —
// zero failed finds while recoveries are in flight, every trial — while
// the recovery-latency ceiling takes the best of three trials (the
// scheduler-noise hedge the E16/E17 gates use): the slowest kill→serving
// recovery must stay within the configured restart-backoff bound plus
// the modelled spawn cost, with a 250ms scheduling allowance.
func TestE18Gate(t *testing.T) {
	if os.Getenv("E18_GATE") == "" {
		t.Skip("set E18_GATE=1 to run the fleet gate")
	}
	const slack = 250 * time.Millisecond
	var best time.Duration
	for trial := 0; trial < 3; trial++ {
		_, res, err := E18FleetBench([]int{2, 8, 32}, 10)
		if err != nil {
			t.Fatal(err)
		}
		if res.FailedFinds != 0 {
			t.Fatalf("trial %d: %d finds failed during recovery; lease recovery must keep every find answering", trial, res.FailedFinds)
		}
		for n, el := range res.TimeToServing {
			if el > 10*time.Second {
				t.Fatalf("trial %d: time-to-%d-serving = %v", trial, n, el)
			}
		}
		if best == 0 || res.RecoveryMax < best {
			best = res.RecoveryMax
		}
		if best <= res.RecoveryBound+slack {
			break
		}
	}
	_, res, err := E18FleetBench([]int{2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if best > res.RecoveryBound+slack {
		t.Errorf("slowest recovery %v exceeds bound %v (+%v slack)", best, res.RecoveryBound, slack)
	}
}

// TestE18RecoverySmoke is the always-on deterministic-slice check: small
// sweep, few kills, zero failed finds, recoveries within the bound plus
// a generous allowance.
func TestE18RecoverySmoke(t *testing.T) {
	_, res, err := E18FleetBench([]int{2, 8}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedFinds != 0 {
		t.Errorf("%d finds failed during recovery, want 0", res.FailedFinds)
	}
	if res.RecoveryMax > res.RecoveryBound+time.Second {
		t.Errorf("recovery max %v way over bound %v", res.RecoveryMax, res.RecoveryBound)
	}
}

// TestE18FleetSmoke is the always-on real-process slice the Makefile's
// fleet-smoke target runs: a daemon supervising full HARNESS II nodes
// (live SOAP/XDR listeners) on two boxes, driven entirely over the HTTP
// control protocol. Killing one node mid-traffic must trigger automatic
// restart, re-enrollment, and lease recovery — the registry keeps
// answering finds for the dead node's services until the restarted node
// republishes over the dangling entries — all without operator action.
func TestE18FleetSmoke(t *testing.T) {
	reg := registry.New()
	tel := telemetry.New()
	sup, err := fleet.New(fleet.Config{
		Launcher: fleet.NewNodeLauncher(fleet.NodeLauncherConfig{
			Registry:  reg,
			Telemetry: telemetry.Disabled(),
		}),
		Telemetry: tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()
	for _, name := range []string{"left", "right"} {
		if err := sup.Enroll(fleet.BoxInfo{
			Name: name,
			Box:  runnerbox.New(runnerbox.NewLocalBackend()),
		}); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := fleet.NewServer(sup, "", tel)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := fleet.NewClient(srv.Addr())
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Deploy two full nodes and block until both serve.
	_, units, err := cl.Deploy(ctx,
		"deploy smoke\nreplicas 2\ncomponent MatMul,FleetCounter\nlease 30s\nrestart backoff=10ms max=200ms limit=8\n", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 2 {
		t.Fatalf("units = %v", units)
	}
	st, _, err := cl.Attach(ctx, units[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Endpoints["soap"] == "" || st.Endpoints["xdr"] == "" {
		t.Fatalf("unit %s advertises no live endpoints: %v", units[0], st.Endpoints)
	}
	if reg.Len() != 4 {
		t.Fatalf("registry = %d entries, want 4 (2 units x 2 components)", reg.Len())
	}

	// Find-traffic runs throughout the kill: the victim's registrations
	// must answer continuously (dangling lease, then republished).
	victim := units[0]
	victimKey := victim + "::matmul"
	stopTraffic := make(chan struct{})
	misses := make(chan int, 1)
	go func() {
		n := 0
		for {
			select {
			case <-stopTraffic:
				misses <- n
				return
			default:
				if _, ok := reg.Get(victimKey); !ok {
					n++
				}
				if len(reg.FindByName("MatMul")) == 0 {
					n++
				}
				time.Sleep(500 * time.Microsecond)
			}
		}
	}()

	if err := cl.Kill(ctx, victim); err != nil {
		t.Fatal(err)
	}
	// The daemon must restart, re-enroll, and recover the lease within
	// the policy bound (200ms) plus real-node spawn time; 10s is the
	// hard deadline for CI boxes under load.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, _, err := cl.Attach(ctx, victim, 0)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == "serving" && st.Restarts >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("unit %s never recovered: %+v", victim, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stopTraffic)
	if n := <-misses; n != 0 {
		t.Errorf("%d failed finds while the node was down; the dangling lease must keep answering", n)
	}
	if reg.Len() != 4 {
		t.Errorf("registry = %d entries after recovery, want 4 (replaced, not duplicated)", reg.Len())
	}

	// The restarted node advertises fresh endpoints over attach.
	st2, evs, err := cl.Attach(ctx, victim, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Endpoints["soap"] == "" || st2.Endpoints["soap"] == st.Endpoints["soap"] {
		t.Errorf("restarted node endpoints not refreshed: %v", st2.Endpoints)
	}
	var crashed, restarted bool
	for _, ev := range evs {
		crashed = crashed || ev.Kind == fleet.EvCrash
		restarted = restarted || ev.Kind == fleet.EvRestart
	}
	if !crashed || !restarted {
		t.Errorf("event log incomplete: crash=%v restart=%v", crashed, restarted)
	}

	// Graceful teardown releases every lease.
	if err := cl.StopDeployment(ctx, "smoke"); err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 0 {
		t.Errorf("registry = %d entries after stop, want 0", reg.Len())
	}
}
