package bench

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"harness2/internal/invoke"
	"harness2/internal/resilience"
	"harness2/internal/resilience/chaos"
	"harness2/internal/telemetry"
	"harness2/internal/wire"
	"harness2/internal/wsdl"
)

// E13FaultSweep measures availability and tail latency under injected
// faults (S28): a two-rung failover ladder (flaky XDR primary, healthy
// SOAP secondary) is driven through a deterministic chaos schedule at
// swept fault rates, once per policy configuration. The design claims
// under test:
//
//   - with no policy, availability degrades roughly linearly with the
//     fault rate (every primary fault is a failed call);
//   - retries alone recover unsent/idempotent faults at the cost of
//     extra tries and a latency tail (backoff + re-execution);
//   - adding a breaker sheds the flaky rung after its threshold, cutting
//     wasted tries;
//   - adding hedging races the secondary after a short delay, restoring
//     the p99 that latency faults on the primary would otherwise set.
//
// The injected mix at rate f on the primary: error faults (unsent) with
// probability f, partial writes (transient, maybe-executed) at f/2, and
// 10 ms latency spikes at f. The latency spike is sized an order of
// magnitude above the hedge delay so the race outcome reflects the
// policy, not OS timer granularity. The schedule is a pure function of
// the seed, so every (rate, policy) cell replays the identical fault
// sequence.
func E13FaultSweep(rates []float64, calls int) (*Table, error) {
	t := &Table{
		ID:    "E13",
		Title: "Resilience under injected faults: availability and p99 per policy",
		Note: fmt.Sprintf("%d idempotent calls/cell, 2-rung ladder (flaky xdr > healthy soap), seeded chaos on the primary",
			calls),
		Columns: []string{"fault rate", "policy", "success", "p99", "tries/call"},
	}

	type config struct {
		name string
		mk   func() (*resilience.Policy, error)
	}
	base := func(extra ...resilience.Option) (*resilience.Policy, error) {
		opts := []resilience.Option{
			resilience.WithMaxAttempts(4),
			resilience.WithBackoff(50*time.Microsecond, 500*time.Microsecond),
			resilience.WithTelemetry(telemetry.Disabled()),
		}
		return resilience.New(append(opts, extra...)...)
	}
	configs := []config{
		{"none", func() (*resilience.Policy, error) { return nil, nil }},
		{"retry", func() (*resilience.Policy, error) { return base() }},
		{"retry+breaker", func() (*resilience.Policy, error) {
			return base(resilience.WithBreaker(5, 20*time.Millisecond))
		}},
		{"retry+breaker+hedge", func() (*resilience.Policy, error) {
			return base(
				resilience.WithBreaker(5, 20*time.Millisecond),
				resilience.WithHedging(time.Millisecond, 2))
		}},
	}

	for _, rate := range rates {
		for _, cfg := range configs {
			policy, err := cfg.mk()
			if err != nil {
				return nil, err
			}
			ok, p99, tries, err := e13Cell(rate, calls, policy)
			if err != nil {
				return nil, err
			}
			t.AddRow(fmt.Sprintf("%.0f%%", rate*100), cfg.name,
				fmt.Sprintf("%.1f%%", 100*float64(ok)/float64(calls)),
				FmtDur(p99),
				fmt.Sprintf("%.2f", float64(tries)/float64(calls)))
		}
	}
	return t, nil
}

// e13Cell replays the seeded fault schedule against a fresh ladder under
// one policy and returns successes, the p99 call latency and the total
// number of port invocations (tries) the policy spent.
func e13Cell(rate float64, calls int, policy *resilience.Policy) (ok int, p99 time.Duration, tries int64, err error) {
	var rules []chaos.Rule
	if rate > 0 {
		rules = []chaos.Rule{
			{Binding: "bench", Endpoint: "flaky", Kind: chaos.FaultError, Prob: rate},
			{Binding: "bench", Endpoint: "flaky", Kind: chaos.FaultPartialWrite, Prob: rate / 2},
			{Binding: "bench", Endpoint: "flaky", Kind: chaos.FaultLatency, Prob: rate, Latency: 10 * time.Millisecond},
		}
	}
	inj, err := chaos.New(13, rules...) // fixed seed: identical schedule per cell
	if err != nil {
		return 0, 0, 0, err
	}
	primary := &e13Port{kind: wsdl.BindXDR, ep: "flaky", inj: inj}
	secondary := &e13Port{kind: wsdl.BindSOAP, ep: "healthy", inj: inj}
	port, err := invoke.NewResilientPort(policy, primary, secondary)
	if err != nil {
		return 0, 0, 0, err
	}
	defer port.Close()

	ctx := context.Background()
	durations := make([]time.Duration, 0, calls)
	for i := 0; i < calls; i++ {
		start := time.Now()
		// getResult is idempotent by name, so retries, failover and
		// hedging are all in play.
		_, callErr := port.Invoke(ctx, "getResult", wire.Args("i", int64(i)))
		durations = append(durations, time.Since(start))
		if callErr == nil {
			ok++
		}
	}
	sort.Slice(durations, func(a, b int) bool { return durations[a] < durations[b] })
	p99 = durations[len(durations)*99/100]
	tries = atomic.LoadInt64(&primary.calls) + atomic.LoadInt64(&secondary.calls)
	return ok, p99, tries, nil
}

// E13bDisabledOverhead is the nil-policy acceptance gate: a ResilientPort
// with no policy must cost one branch over the bare port — single-digit
// nanoseconds and zero allocations — so the resilience plane can stay
// compiled into every remote path.
func E13bDisabledOverhead(reps int) (*Table, error) {
	t := &Table{
		ID:      "E13b",
		Title:   "Resilience disabled path: bare port vs nil-policy ResilientPort",
		Note:    "the nil-policy delegation must cost <10ns and 0 allocs over the bare port",
		Columns: []string{"path", "ns/op", "allocs/op"},
	}
	bare := &e13Port{kind: wsdl.BindXDR, ep: "bare"}
	wrapped, err := invoke.NewResilientPort(nil, &e13Port{kind: wsdl.BindXDR, ep: "wrapped"})
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	args := wire.Args("i", int64(0))

	bareNs, bareAllocs := measureOverhead(reps, func() {
		if _, err := bare.Invoke(ctx, "getResult", args); err != nil {
			panic(err)
		}
	})
	wrapNs, wrapAllocs := measureOverhead(reps, func() {
		if _, err := wrapped.Invoke(ctx, "getResult", args); err != nil {
			panic(err)
		}
	})
	t.AddRow("bare port", fmtNs(bareNs), fmtAllocs(bareAllocs))
	t.AddRow("nil-policy ResilientPort", fmtNs(wrapNs), fmtAllocs(wrapAllocs))
	t.AddRow("delegation overhead", fmtNs(wrapNs-bareNs), fmtAllocs(wrapAllocs-bareAllocs))
	return t, nil
}

// e13Port is an in-memory Port whose only behaviour is the chaos hook:
// it isolates the policy machinery from transport cost so the sweep
// measures policies, not sockets.
type e13Port struct {
	kind  wsdl.BindingKind
	ep    string
	inj   *chaos.Injector
	calls int64
}

var _ invoke.Port = (*e13Port)(nil)

func (p *e13Port) Invoke(ctx context.Context, op string, args []wire.Arg) ([]wire.Arg, error) {
	atomic.AddInt64(&p.calls, 1)
	if err := p.inj.Apply(ctx, "bench", op, p.ep); err != nil {
		return nil, err
	}
	return wire.Args("from", p.ep), nil
}

func (p *e13Port) Kind() wsdl.BindingKind { return p.kind }
func (p *e13Port) Endpoint() string       { return p.ep }
func (p *e13Port) Close() error           { return nil }
