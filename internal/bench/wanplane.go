package bench

import (
	"context"
	"fmt"
	"time"

	"harness2/internal/container"
	"harness2/internal/invoke"
	"harness2/internal/simnet"
	"harness2/internal/wire"
)

// E19WANPlane measures the negotiated v3 data plane with adaptive
// per-frame compression (DESIGN.md S33) on links where bandwidth, not
// CPU, is the bottleneck. Stage "wan": the same ArraySink checksum call
// through simnet LinkProxies modelling LAN and WAN pipes, with
// compressible and incompressible 64 KiB arrays under each client
// compression policy — the proxy bills post-compression bytes, so the
// wire/call column is exactly what a real bandwidth cap would meter.
// Stage "loopback": the v3 raw path against the v2 framing it replaced,
// proving negotiation and the flags byte cost nothing measurable where
// compression cannot win.
func E19WANPlane(arrayLen, wanCalls, loopCalls int) (*Table, error) {
	t := &Table{
		ID:    "E19",
		Title: "WAN data plane: v3 negotiated frames with adaptive compression",
		Note: fmt.Sprintf("ArraySink checksum, %s request arrays, best of three trials; wire/call is post-compression bytes through the link proxy (both directions); speedup vs the off policy on the same link and payload",
			FmtBytes(int64(8*arrayLen))),
		Columns: []string{"stage", "link", "payload", "policy", "per-op", "wire/call", "speedup"},
	}

	c := container.New(container.Config{Name: "e19"})
	c.RegisterFactory("ArraySink", arraySinkFactory())
	// The server accepts and answers with flate; clients choose per row.
	xs, err := invoke.NewXDRServer(c, "127.0.0.1:0",
		invoke.WithXDRCompression(invoke.CompressPolicy{Mode: invoke.CompressAdaptive}))
	if err != nil {
		return nil, err
	}
	defer xs.Close()
	if _, _, err := c.Deploy("ArraySink", "sink"); err != nil {
		return nil, err
	}
	ctx := context.Background()

	payloads := []struct {
		name string
		data []float64
	}{
		{"compressible", CompressibleDoubles(arrayLen)},
		{"random", RandDoubles(arrayLen, 19)},
	}
	policies := []struct {
		name string
		pol  invoke.CompressPolicy
	}{
		{"off", invoke.CompressPolicy{Mode: invoke.CompressOff}},
		{"on", invoke.CompressPolicy{Mode: invoke.CompressOn}},
		{"adaptive", invoke.CompressPolicy{Mode: invoke.CompressAdaptive}},
	}

	measure := func(addr string, pol invoke.CompressPolicy, data []float64, calls int) (time.Duration, error) {
		p := invoke.NewXDRPort(addr, "sink", false)
		defer p.Close()
		p.SetCompression(pol)
		args := wire.Args("data", data)
		call := func() {
			if _, err := p.Invoke(ctx, "checksum", args); err != nil {
				panic(err)
			}
		}
		call() // warm: negotiate, fault in pools
		best := time.Duration(0)
		for trial := 0; trial < 3; trial++ {
			if per := timeIt(calls, call); best == 0 || per < best {
				best = per
			}
		}
		return best, nil
	}

	// Stage 1 — wan: paced links. Each (link, payload, policy) cell gets
	// a fresh proxy so the per-connection byte counters isolate the cell.
	links := []struct {
		name string
		cfg  simnet.LinkConfig
	}{
		{"lan", simnet.LAN},
		{"wan", simnet.WAN},
	}
	for _, link := range links {
		for _, pl := range payloads {
			var rawPer time.Duration
			for _, pc := range policies {
				proxy, err := simnet.NewLinkProxy(xs.Addr(), link.cfg)
				if err != nil {
					return nil, err
				}
				per, err := measure(proxy.Addr(), pc.pol, pl.data, wanCalls)
				if err != nil {
					proxy.Close()
					return nil, err
				}
				toB, toC := proxy.Bytes()
				proxy.Close()
				totalCalls := int64(wanCalls)*3 + 1 // three trials + warm
				wirePerCall := (toB + toC) / totalCalls
				if pc.name == "off" {
					rawPer = per
				}
				t.AddRow("wan", link.name, pl.name, pc.name, FmtDur(per),
					FmtBytes(wirePerCall), FmtRatio(float64(rawPer)/float64(per)))
			}
		}
	}

	// Stage 2 — loopback ablation: raw v3 vs the v2 wire it replaced, on
	// the incompressible payload (the worst case for v3: the flags byte
	// and negotiation buy nothing). Ratios near 1x are the pass.
	data := RandDoubles(arrayLen, 23)
	v2 := invoke.NewXDRPort(xs.Addr(), "sink", false)
	v2.SetWireProtocol(2)
	v3 := invoke.NewXDRPort(xs.Addr(), "sink", false)
	v3.SetCompression(invoke.CompressPolicy{Mode: invoke.CompressOff})
	loopMeasure := func(p *invoke.XDRPort) time.Duration {
		defer p.Close()
		args := wire.Args("data", data)
		call := func() {
			if _, err := p.Invoke(ctx, "checksum", args); err != nil {
				panic(err)
			}
		}
		call()
		best := time.Duration(0)
		for trial := 0; trial < 3; trial++ {
			if per := timeIt(loopCalls, call); best == 0 || per < best {
				best = per
			}
		}
		return best
	}
	v2Per := loopMeasure(v2)
	v3Per := loopMeasure(v3)
	t.AddRow("loopback", "direct", "random", "v2 frames", FmtDur(v2Per), "-", FmtRatio(1))
	t.AddRow("loopback", "direct", "random", "v3 raw", FmtDur(v3Per), "-",
		FmtRatio(float64(v2Per)/float64(v3Per)))
	return t, nil
}
