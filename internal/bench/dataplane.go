package bench

import (
	"context"
	"fmt"
	"time"

	"harness2/internal/invoke"
	"harness2/internal/wire"
	"harness2/internal/xdr"
)

// E16DataPlane quantifies the hardware-limit data plane (DESIGN.md S30):
// the zero-copy XDR array codec against its portable per-element
// ablation (stage "codec"), and the shared-memory binding against the
// XDR socket on the loopback path it replaces (stage "invoke"). The
// codec stage reports raw-payload throughput; the invoke stage reports
// end-to-end per-call latency with the speedup over XDR.
func E16DataPlane(sizes []int, smallCalls, arrayLen, arrayCalls int) (*Table, error) {
	t := &Table{
		ID:    "E16",
		Title: "Hardware-limit data plane: zero-copy XDR codec and shm binding",
		Note:  "codec rows: float64 array codec vs portable ablation; invoke rows: ArraySink checksum per call, same host, best of three trials",
		Columns: []string{"stage", "n", "path", "per-op", "throughput",
			"speedup"},
	}

	// Stage 1 — codec: the same encoder/decoder with the fast paths
	// toggled. On hosts without the fast paths both rows measure the
	// portable loop and the speedup column reads 1x. Best of three
	// trials per row keeps the ratios stable under scheduler noise.
	best3 := func(reps int, fn func()) time.Duration {
		best := time.Duration(0)
		for trial := 0; trial < 3; trial++ {
			if per := timeIt(reps, fn); best == 0 || per < best {
				best = per
			}
		}
		return best
	}
	for _, n := range sizes {
		data := RandDoubles(n, int64(n))
		reps := repsFor(n) * 4
		e := xdr.NewEncoder(8*n + 16)
		encode := func(on bool) time.Duration {
			prev := xdr.SetZeroCopy(on)
			defer xdr.SetZeroCopy(prev)
			return best3(reps, func() {
				e.Reset()
				e.Float64Array(data)
			})
		}
		encFast, encPort := encode(true), encode(false)
		buf := e.Bytes()
		dst := make([]float64, 0, n)
		decode := func(on bool) time.Duration {
			prev := xdr.SetZeroCopy(on)
			defer xdr.SetZeroCopy(prev)
			return best3(reps, func() {
				var err error
				dst, err = xdr.NewDecoder(buf).Float64ArrayInto(dst[:0])
				if err != nil {
					panic(err)
				}
			})
		}
		decFast, decPort := decode(true), decode(false)

		raw := float64(8 * n)
		row := func(dir string, fast, portable time.Duration) {
			t.AddRow("codec "+dir, FmtInt(n), "zero-copy", FmtDur(fast),
				FmtRate(raw/fast.Seconds()), FmtRatio(float64(portable)/float64(fast)))
			t.AddRow("codec "+dir, FmtInt(n), "portable", FmtDur(portable),
				FmtRate(raw/portable.Seconds()), FmtRatio(1))
		}
		row("encode", encFast, encPort)
		row("decode", decFast, decPort)
	}

	// Stage 2 — invoke: the same ArraySink instance through the shm
	// rings and through the multiplexed XDR socket over loopback.
	h, err := newHost()
	if err != nil {
		return nil, err
	}
	defer h.close()
	h.node.Container().RegisterFactory("ArraySink", arraySinkFactory())
	if _, err := h.publish("ArraySink", "sink"); err != nil {
		return nil, err
	}
	if h.node.ShmAddr() == "" {
		t.AddRow("invoke", "-", "shm", "unsupported on this platform", "-", "-")
		return t, nil
	}
	ctx := context.Background()

	type load struct {
		label string
		args  []wire.Arg
		reps  int
	}
	loads := []load{
		{"small call", wire.Args("data", []float64{1}), smallCalls},
		{fmt.Sprintf("%s array", FmtBytes(int64(8*arrayLen))),
			wire.Args("data", RandDoubles(arrayLen, 7)), arrayCalls},
	}
	for _, l := range loads {
		shmPort, err := invoke.NewShmPort(h.node.ShmAddr(), "sink")
		if err != nil {
			return nil, err
		}
		xdrPort := invoke.NewXDRPort(h.node.XDRAddr(), "sink", false)
		// Best of three trials per path: latency floors are stable under
		// scheduler noise where single-trial means are not.
		measure := func(p invoke.Port) time.Duration {
			best := time.Duration(0)
			for trial := 0; trial < 3; trial++ {
				per := timeIt(l.reps, func() {
					if _, err := p.Invoke(ctx, "checksum", l.args); err != nil {
						panic(err)
					}
				})
				if best == 0 || per < best {
					best = per
				}
			}
			return best
		}
		measure(shmPort) // warm both connections before timing
		measure(xdrPort)
		shmPer := measure(shmPort)
		xdrPer := measure(xdrPort)
		_ = shmPort.Close()
		_ = xdrPort.Close()
		t.AddRow("invoke", l.label, "shm rings", FmtDur(shmPer), "-",
			FmtRatio(float64(xdrPer)/float64(shmPer)))
		t.AddRow("invoke", l.label, "xdr loopback", FmtDur(xdrPer), "-", FmtRatio(1))
	}
	return t, nil
}
