package bench

import (
	"container/heap"
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"harness2/internal/dvm"
	"harness2/internal/invoke"
	"harness2/internal/registry"
	"harness2/internal/resilience/chaos"
	"harness2/internal/simnet"
	"harness2/internal/wire"
)

// E15 — the "metacity" macro-load harness (S34): every experiment before
// it is a microbenchmark; this one drives the whole stack — registry,
// discovery caches, DVM coherency, invocation — under a metacity's worth
// of concurrent clients and reports where it saturates.
//
// Two modes share one table:
//
//   - simnet virtual time: 10⁵–10⁶ simulated clients over the
//     deterministic fabric. Real registry.Registry and registry.Cache
//     instances run on an injected virtual clock; service popularity is
//     Zipf-distributed (the hot-key cache stress); service nodes die and
//     revive, coherency members churn, and a seeded chaos injector adds
//     latency tails and connect failures. Closed-loop clients think
//     between operations; a quarter of the population is open-loop and
//     fires on a fixed schedule regardless of completion. The entire run
//     is a pure function of its config — two same-seed runs produce
//     byte-identical results (TestE15SimnetDeterminism).
//   - real sockets: thousands of goroutine clients resolve Zipf-hot names
//     through one shared discovery cache (the lock-free hit path under
//     real contention) and invoke over multiplexed XDR against two live
//     hosts; one host is killed mid-run and its clients fail over.
//
// Per-operation latency is modelled (sim) or measured (real);
// availability is the fraction of operations that completed.

// e15SimClients sizes the simulated client population.
func (p Params) e15SimClients() int {
	if p.Short {
		return 10_000
	}
	if p.Full {
		return 1_000_000
	}
	return 100_000
}

// e15SimOps is the per-client closed-loop operation count.
func (p Params) e15SimOps() int {
	if p.Short {
		return 2
	}
	return 4
}

// e15Services sizes the published service population (the Zipf rank space).
func (p Params) e15Services() int {
	if p.Short {
		return 512
	}
	if p.Full {
		return 8192
	}
	return 2048
}

// e15RealClients is the real-socket goroutine client count.
func (p Params) e15RealClients() int {
	if p.Short {
		return 256
	}
	if p.Full {
		return 4096
	}
	return 2048
}

// e15RealCalls is the per-client call count in real-socket mode.
func (p Params) e15RealCalls() int {
	if p.Short {
		return 4
	}
	if p.Full {
		return 16
	}
	return 8
}

// E15SimConfig parameterizes one deterministic virtual-time run.
type E15SimConfig struct {
	Seed         int64
	Clients      int
	OpsPerClient int
	Services     int
	Hnodes       int           // client-facing hosts (coherency members)
	ServiceNodes int           // invocation targets behind the hnodes
	Strategy     string        // full-sync | decentralized | hybrid-k4
	Policy       string        // none | retry1 | retry3
	Chaos        bool          // seeded latency tails + connect faults
	CacheTTL     time.Duration // per-hnode discovery cache TTL (virtual)
}

func (c E15SimConfig) withDefaults() E15SimConfig {
	if c.Hnodes <= 0 {
		c.Hnodes = 16
	}
	if c.ServiceNodes <= 0 {
		c.ServiceNodes = 8
	}
	if c.Services <= 0 {
		c.Services = 1024
	}
	if c.CacheTTL <= 0 {
		c.CacheTTL = 250 * time.Millisecond
	}
	if c.Strategy == "" {
		c.Strategy = "hybrid-k4"
	}
	if c.Policy == "" {
		c.Policy = "retry1"
	}
	return c
}

// E15SimResult is one run's outcome. Every field is a deterministic
// function of the config, including the percentiles: the determinism
// test compares whole values.
type E15SimResult struct {
	Strategy, Policy string

	Ops, Invokes, Discoveries, DVMOps uint64
	Succeeded, Failed, Retried        uint64
	CacheHits, CacheMisses            uint64

	FabricMessages int
	FabricBytes    int64
	FabricDrops    int

	VirtualElapsed time.Duration
	P50, P99       time.Duration
}

// Availability is the completed-operation fraction.
func (r E15SimResult) Availability() float64 {
	if r.Ops == 0 {
		return 1
	}
	return float64(r.Succeeded) / float64(r.Ops)
}

// Throughput is operations per second of virtual time.
func (r E15SimResult) Throughput() float64 {
	if r.VirtualElapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.VirtualElapsed.Seconds()
}

// --- virtual-time machinery -------------------------------------------------

// e15Epoch anchors the virtual clock; any fixed instant works.
var e15Epoch = time.Unix(1_000_000_000, 0)

const e15RegNode = "reg0"

// e15DVMInstances bounds the per-node instance space DVM updates cycle
// through, keeping the coherency store at live-table size (hnodes × 16
// entries) however long the run is.
const e15DVMInstances = 16

func e15HnName(i int) string  { return fmt.Sprintf("hn%d", i) }
func e15SnName(i int) string  { return fmt.Sprintf("sn%d", i) }
func e15SvcName(i int) string { return fmt.Sprintf("Svc%d", i) }

// Control-event kinds (heap entries with client < 0).
const (
	e15EvKillSn   = -1
	e15EvReviveSn = -2
	e15EvKillHn   = -3
	e15EvReviveHn = -4
)

type e15Event struct {
	at     time.Duration
	client int // >= 0: client op; < 0: control event kind
	arg    int // node index for control events
}

// e15Heap is a deterministic min-heap: ties break on (client, arg) so pop
// order never depends on insertion order.
type e15Heap []e15Event

func (h e15Heap) Len() int { return len(h) }
func (h e15Heap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].client != h[j].client {
		return h[i].client < h[j].client
	}
	return h[i].arg < h[j].arg
}
func (h e15Heap) Swap(i, j int)   { h[i], h[j] = h[j], h[i] }
func (h *e15Heap) Push(x any)     { *h = append(*h, x.(e15Event)) }
func (h *e15Heap) Pop() any       { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h *e15Heap) add(e e15Event) { heap.Push(h, e) }
func (h *e15Heap) next() e15Event { return heap.Pop(h).(e15Event) }

// e15Lookup charges each registry read to the fabric before answering
// from the co-located store — what a Remote lookup costs an hnode. It
// implements CheckedLookup so the cache can tell a fabric outage (never
// cached) from an authoritative miss (negative-cached).
type e15Lookup struct {
	net  *simnet.Network
	reg  *registry.Registry
	from string

	cost    time.Duration // modelled cost of the current op; reset per op
	fetches uint64        // upstream round trips (cache misses)
}

func (l *e15Lookup) charge(req, resp int) error {
	l.fetches++
	d, err := l.net.RTT(l.from, e15RegNode, req, resp)
	l.cost += d
	return err
}

func (l *e15Lookup) GetErr(key string) (registry.Entry, bool, error) {
	if err := l.charge(128, 1500); err != nil {
		return registry.Entry{}, false, fmt.Errorf("%w: %v", registry.ErrUnavailable, err)
	}
	e, ok := l.reg.Get(key)
	return e, ok, nil
}

func (l *e15Lookup) FindByNameErr(name string) ([]registry.Entry, error) {
	if err := l.charge(128, 1500); err != nil {
		return nil, fmt.Errorf("%w: %v", registry.ErrUnavailable, err)
	}
	return l.reg.FindByName(name), nil
}

func (l *e15Lookup) Get(key string) (registry.Entry, bool) {
	e, ok, _ := l.GetErr(key)
	return e, ok
}

func (l *e15Lookup) FindByName(name string) []registry.Entry {
	es, _ := l.FindByNameErr(name)
	return es
}

func (l *e15Lookup) FindByQuery(query string) ([]registry.Entry, error) {
	if err := l.charge(256, 4096); err != nil {
		return nil, fmt.Errorf("%w: %v", registry.ErrUnavailable, err)
	}
	return l.reg.FindByQuery(query)
}

func (l *e15Lookup) Publish(e registry.Entry) (string, error) {
	if err := l.charge(1500, 64); err != nil {
		return "", fmt.Errorf("%w: %v", registry.ErrUnavailable, err)
	}
	return l.reg.Publish(e)
}

func (l *e15Lookup) Remove(key string) error {
	if err := l.charge(128, 64); err != nil {
		return fmt.Errorf("%w: %v", registry.ErrUnavailable, err)
	}
	return l.reg.Remove(key)
}

var (
	_ registry.Lookup        = (*e15Lookup)(nil)
	_ registry.CheckedLookup = (*e15Lookup)(nil)
)

// e15Sim is the single-goroutine virtual-time world.
type e15Sim struct {
	cfg   E15SimConfig
	net   *simnet.Network
	coh   dvm.Coherency
	reg   *registry.Registry
	looks []*e15Lookup
	cache []*registry.Cache
	rng   *rand.Rand
	zipf  *Zipf

	vnow     time.Duration
	events   e15Heap
	attempts int

	snDown []bool
	svcKey []string // published key per service rank ("" while dead)
	seq    int      // DVM update sequence

	lats []time.Duration
	res  E15SimResult
}

// E15SimRun executes one deterministic virtual-time metacity run.
func E15SimRun(cfg E15SimConfig) (E15SimResult, error) {
	cfg = cfg.withDefaults()
	s := &e15Sim{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	s.zipf = NewZipf(cfg.Seed+1, 1.1, cfg.Services)
	switch cfg.Policy {
	case "none":
		s.attempts = 1
	case "retry1":
		s.attempts = 2
	case "retry3":
		s.attempts = 4
	default:
		return E15SimResult{}, fmt.Errorf("bench: unknown E15 policy %q", cfg.Policy)
	}
	s.res.Strategy = cfg.Strategy
	s.res.Policy = cfg.Policy

	s.net = simnet.New(simnet.LAN)
	switch cfg.Strategy {
	case "full-sync":
		s.coh = dvm.NewFullSync(s.net)
	case "decentralized":
		s.coh = dvm.NewDecentralized(s.net)
	case "hybrid-k4":
		s.coh = dvm.NewHybrid(s.net, 4)
	default:
		return E15SimResult{}, fmt.Errorf("bench: unknown E15 strategy %q", cfg.Strategy)
	}
	if cfg.Chaos {
		// Fault placement is what keeps the run deterministic: error
		// faults fire only on single-send sites (service nodes, the
		// registry), where attempt order is the heap's pop order; the
		// coherency fabric between hnodes gets latency tails only, so a
		// broadcast's cost stays an order-independent max.
		inj, err := chaos.New(cfg.Seed,
			chaos.Rule{Binding: "simnet", Endpoint: "sn*", Kind: chaos.FaultError, Prob: 0.004},
			chaos.Rule{Binding: "simnet", Endpoint: e15RegNode, Kind: chaos.FaultError, Prob: 0.002},
			chaos.Rule{Binding: "simnet", Kind: chaos.FaultLatency, Prob: 0.01, Latency: 5 * time.Millisecond},
		)
		if err != nil {
			return E15SimResult{}, err
		}
		s.net.SetChaos(inj)
	}

	// Virtual clock shared by the registry and every cache.
	vclock := func() time.Time { return e15Epoch.Add(s.vnow) }

	// Topology: the registry shard, the client-facing hnodes (coherency
	// members), and the invocation-target service nodes.
	s.net.AddNode(e15RegNode)
	for i := 0; i < cfg.Hnodes; i++ {
		if _, err := s.coh.AddNode(e15HnName(i)); err != nil {
			return E15SimResult{}, err
		}
	}
	for i := 0; i < cfg.ServiceNodes; i++ {
		s.net.AddNode(e15SnName(i))
	}
	s.snDown = make([]bool, cfg.ServiceNodes)

	// Seed each hnode's DVM replica so queries have answers.
	for i := 0; i < cfg.Hnodes; i++ {
		hn := e15HnName(i)
		if _, err := s.coh.Apply(hn, dvm.Event{Kind: dvm.ServiceAdd, Node: hn,
			Entry: seedEntry(hn, 0)}); err != nil {
			return E15SimResult{}, err
		}
	}

	// The registry plane: one shard process, Zipf-rank-named services
	// homed round-robin on the service nodes.
	s.reg = registry.NewWithClock(vclock)
	xml, err := e17WSDL()
	if err != nil {
		return E15SimResult{}, err
	}
	s.svcKey = make([]string, cfg.Services)
	for i := 0; i < cfg.Services; i++ {
		key, err := s.reg.Publish(registry.Entry{
			Name:     e15SvcName(i),
			Key:      e15SvcName(i) + "::k",
			Business: e15SnName(i % cfg.ServiceNodes),
			WSDL:     xml,
		})
		if err != nil {
			return E15SimResult{}, err
		}
		s.svcKey[i] = key
	}

	// One discovery cache per hnode over its fabric-charged lookup.
	s.looks = make([]*e15Lookup, cfg.Hnodes)
	s.cache = make([]*registry.Cache, cfg.Hnodes)
	for i := range s.looks {
		s.looks[i] = &e15Lookup{net: s.net, reg: s.reg, from: e15HnName(i)}
		s.cache[i] = registry.NewCacheWithClock(s.looks[i], cfg.CacheTTL, vclock)
	}

	s.net.ResetStats()
	s.lats = make([]time.Duration, 0, cfg.Clients*cfg.OpsPerClient)

	// Client starts stagger uniformly over the first second; churn begins
	// once the population is fully ramped.
	opsLeft := make([]int32, cfg.Clients)
	s.events = make(e15Heap, 0, cfg.Clients+8)
	for c := 0; c < cfg.Clients; c++ {
		opsLeft[c] = int32(cfg.OpsPerClient)
		start := time.Second * time.Duration(c) / time.Duration(cfg.Clients)
		s.events = append(s.events, e15Event{at: start, client: c})
	}
	heap.Init(&s.events)
	s.events.add(e15Event{at: 900 * time.Millisecond, client: e15EvKillSn, arg: 0})
	s.events.add(e15Event{at: 1100 * time.Millisecond, client: e15EvKillHn, arg: 0})

	remaining := cfg.Clients * cfg.OpsPerClient
	const (
		snKillEvery = 1200 * time.Millisecond
		snDownFor   = 400 * time.Millisecond
		hnKillEvery = 1500 * time.Millisecond
		hnDownFor   = 500 * time.Millisecond
	)
	for remaining > 0 {
		ev := s.events.next()
		if ev.at > s.vnow {
			s.vnow = ev.at
		}
		switch {
		case ev.client >= 0:
			c := ev.client
			lat := s.clientOp(c)
			opsLeft[c]--
			remaining--
			if opsLeft[c] > 0 {
				var next time.Duration
				if c%4 == 0 {
					// Open loop: fixed arrival schedule, backlog be damned.
					next = ev.at + 50*time.Millisecond
				} else {
					// Closed loop: completion + think time.
					think := 20*time.Millisecond + time.Duration(s.rng.Int63n(int64(10*time.Millisecond)))
					next = s.vnow + lat + think
				}
				s.events.add(e15Event{at: next, client: c})
			}
		case ev.client == e15EvKillSn:
			i := ev.arg % cfg.ServiceNodes
			if !s.snDown[i] {
				s.snDown[i] = true
				s.net.RemoveNode(e15SnName(i))
				// The node's hottest service dies with it: resolutions go
				// authoritative-miss and land in the negative cache.
				if s.svcKey[i] != "" {
					_ = s.reg.Remove(s.svcKey[i])
					s.svcKey[i] = ""
				}
				s.events.add(e15Event{at: ev.at + snDownFor, client: e15EvReviveSn, arg: i})
			}
			s.events.add(e15Event{at: ev.at + snKillEvery, client: e15EvKillSn, arg: (ev.arg + 1) % cfg.ServiceNodes})
		case ev.client == e15EvReviveSn:
			i := ev.arg
			s.snDown[i] = false
			s.net.AddNode(e15SnName(i))
			if key, err := s.reg.Publish(registry.Entry{
				Name:     e15SvcName(i),
				Key:      e15SvcName(i) + "::k",
				Business: e15SnName(i % cfg.ServiceNodes),
				WSDL:     xml,
			}); err == nil {
				s.svcKey[i] = key
			}
		case ev.client == e15EvKillHn:
			// Coherency-membership churn: the member leaves cleanly (the
			// fabric between hnodes is healthy, so the leave broadcast is
			// deterministic) and rejoins after a downtime.
			i := ev.arg % cfg.Hnodes
			if _, err := s.coh.RemoveNode(e15HnName(i)); err == nil {
				s.events.add(e15Event{at: ev.at + hnDownFor, client: e15EvReviveHn, arg: i})
			}
			s.events.add(e15Event{at: ev.at + hnKillEvery, client: e15EvKillHn, arg: (ev.arg + 1) % cfg.Hnodes})
		case ev.client == e15EvReviveHn:
			if _, err := s.coh.AddNode(e15HnName(ev.arg)); err == nil {
				hn := e15HnName(ev.arg)
				_, _ = s.coh.Apply(hn, dvm.Event{Kind: dvm.ServiceAdd, Node: hn, Entry: seedEntry(hn, 0)})
			}
		}
	}

	st := s.net.Stats()
	s.res.FabricMessages = st.Messages
	s.res.FabricBytes = st.Bytes
	s.res.FabricDrops = st.Drops
	s.res.VirtualElapsed = s.vnow
	s.res.P50, s.res.P99 = percentiles(s.lats)
	return s.res, nil
}

// clientOp runs one operation for client c and returns its modelled
// latency (also recorded).
func (s *e15Sim) clientOp(c int) time.Duration {
	hn := c % s.cfg.Hnodes
	var lat time.Duration
	var ok bool
	switch draw := s.rng.Float64(); {
	case draw < 0.70:
		s.res.Invokes++
		name := e15SvcName(s.zipf.Next())
		lat, ok = s.withRetries(func() (time.Duration, error) { return s.invoke(hn, name) })
	case draw < 0.90:
		s.res.Discoveries++
		name := e15SvcName(s.zipf.Next())
		lat, ok = s.withRetries(func() (time.Duration, error) {
			d, _, err := s.resolve(hn, name)
			return d, err
		})
	default:
		s.res.DVMOps++
		update := s.rng.Float64() < 0.3
		lat, ok = s.withRetries(func() (time.Duration, error) {
			node := e15HnName(hn)
			if update {
				// Updates cycle a bounded per-node instance space:
				// ServiceAdd overwrites by entry key, so the coherency
				// store models a live service table of fixed size rather
				// than an append-only log — without the bound, every
				// query sorts an ever-growing store and the sim turns
				// O(ops²).
				s.seq = (s.seq + 1) % e15DVMInstances
				return s.coh.Apply(node, dvm.Event{Kind: dvm.ServiceAdd, Node: node,
					Entry: seedEntry(node, s.seq)})
			}
			_, d, err := s.coh.Query(node, dvm.Query{Service: "Echo"})
			return d, err
		})
	}
	s.res.Ops++
	if ok {
		s.res.Succeeded++
	} else {
		s.res.Failed++
	}
	s.lats = append(s.lats, lat)
	return lat
}

// resolve runs one discovery through hnode hn's cache, counting hits and
// charging cache misses to the fabric.
func (s *e15Sim) resolve(hn int, name string) (time.Duration, []registry.Entry, error) {
	lk := s.looks[hn]
	lk.cost = 0
	before := lk.fetches
	entries, err := s.cache[hn].FindByNameErr(name)
	if lk.fetches == before {
		s.res.CacheHits++
	} else {
		s.res.CacheMisses++
	}
	return lk.cost, entries, err
}

// invoke resolves name and charges one invocation round trip to the
// entry's home node.
func (s *e15Sim) invoke(hn int, name string) (time.Duration, error) {
	d, entries, err := s.resolve(hn, name)
	if err != nil {
		return d, err
	}
	if len(entries) == 0 {
		return d, fmt.Errorf("bench: e15 service %s unregistered", name)
	}
	rtt, err := s.net.RTT(e15HnName(hn), entries[0].Business, 256, 256)
	return d + rtt, err
}

// withRetries applies the run's resilience policy to one operation:
// every attempt's modelled cost counts, plus an exponential backoff per
// retry. It reports the total latency and whether the op succeeded.
func (s *e15Sim) withRetries(op func() (time.Duration, error)) (time.Duration, bool) {
	var total time.Duration
	for a := 0; a < s.attempts; a++ {
		d, err := op()
		total += d
		if err == nil {
			return total, true
		}
		if a+1 < s.attempts {
			s.res.Retried++
			total += time.Millisecond << a
		}
	}
	return total, false
}

// --- real-socket mode --------------------------------------------------------

// e15RealResult is the measured outcome of the socket mode.
type e15RealResult struct {
	Clients, Calls    int
	Succeeded, Failed uint64
	Wall              time.Duration
	P50, P99          time.Duration
}

// e15Real drives clients goroutine clients, each resolving Zipf-hot names
// through one shared discovery cache and invoking over multiplexed XDR
// against two live hosts; host B dies at 40% progress and its clients
// fail over to host A.
func e15Real(clients, callsPerClient, services int) (*e15RealResult, error) {
	reg := registry.New()
	xml, err := e17WSDL()
	if err != nil {
		return nil, err
	}
	for i := 0; i < services; i++ {
		if _, err := reg.Publish(registry.Entry{
			Name: e15SvcName(i), Key: e15SvcName(i) + "::k", WSDL: xml,
		}); err != nil {
			return nil, err
		}
	}
	cache := registry.NewCache(reg, time.Minute)

	hostA, err := newHostWith(reg)
	if err != nil {
		return nil, err
	}
	defer hostA.close()
	hostB, err := newHostWith(reg)
	if err != nil {
		return nil, err
	}
	// hostB dies mid-run; the Once makes the kill and the cleanup path
	// agree on closing it exactly once.
	var killOnce sync.Once
	closeB := func() { killOnce.Do(func() { hostB.close() }) }
	defer closeB()
	for _, h := range []*host{hostA, hostB} {
		h.node.Container().RegisterFactory("ArraySink", arraySinkFactory())
	}
	if _, err := hostA.publish("ArraySink", "sinkA"); err != nil {
		return nil, err
	}
	if _, err := hostB.publish("ArraySink", "sinkB"); err != nil {
		return nil, err
	}
	portA := invoke.NewXDRPortMode(hostA.node.XDRAddr(), "sinkA", invoke.XDRModeMux)
	defer portA.Close()
	portB := invoke.NewXDRPortMode(hostB.node.XDRAddr(), "sinkB", invoke.XDRModeMux)
	defer portB.Close()
	ctx := context.Background()
	args := wire.Args("data", []float64{1})
	// Warm both connections outside the timer.
	if _, err := portA.Invoke(ctx, "checksum", args); err != nil {
		return nil, err
	}
	if _, err := portB.Invoke(ctx, "checksum", args); err != nil {
		return nil, err
	}

	total := clients * callsPerClient
	killAt := uint64(total * 2 / 5)
	var done, succeeded, failed atomic.Uint64
	latCh := make(chan []time.Duration, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			zipf := NewZipf(int64(c)+100, 1.1, services)
			port := portA
			if c%2 == 1 {
				port = portB
			}
			lats := make([]time.Duration, 0, callsPerClient)
			for i := 0; i < callsPerClient; i++ {
				t0 := time.Now()
				cache.FindByName(e15SvcName(zipf.Next()))
				_, err := port.Invoke(ctx, "checksum", args)
				if err != nil {
					failed.Add(1)
					// Fail over to the survivor for the rest of the run.
					port = portA
				} else {
					succeeded.Add(1)
					lats = append(lats, time.Since(t0))
				}
				if done.Add(1) == killAt {
					closeB()
				}
			}
			latCh <- lats
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	close(latCh)
	var all []time.Duration
	for ls := range latCh {
		all = append(all, ls...)
	}
	p50, p99 := percentiles(all)
	return &e15RealResult{
		Clients: clients, Calls: total,
		Succeeded: succeeded.Load(), Failed: failed.Load(),
		Wall: wall, P50: p50, P99: p99,
	}, nil
}

// --- table entry point -------------------------------------------------------

// E15Metacity runs the macro-load matrix: the three coherency strategies
// under the default retry policy, the resilience-policy sweep under the
// hybrid strategy, and the real-socket mode.
func E15Metacity(simClients, simOps, services, realClients, realCalls int) (*Table, error) {
	t := &Table{
		ID:    "E15",
		Title: "Metacity macro-load: full stack under 10⁵–10⁶ clients (ROADMAP item 2)",
		Note: fmt.Sprintf("sim: %d virtual-time clients x %d ops, Zipf(1.1) over %d services, churn + chaos; real: %d goroutine clients over mux XDR with mid-run host kill",
			simClients, simOps, services, realClients),
		Columns: []string{"mode", "strategy", "policy", "clients", "ops",
			"ops/sec", "p50", "p99", "avail"},
	}
	base := E15SimConfig{
		Seed: 42, Clients: simClients, OpsPerClient: simOps,
		Services: services, Chaos: true,
	}
	addSim := func(res E15SimResult) {
		t.AddRow("simnet-vt", res.Strategy, res.Policy,
			FmtInt(int(base.Clients)), FmtInt(int(res.Ops)),
			FmtFloat(res.Throughput()), FmtDur(res.P50), FmtDur(res.P99),
			fmt.Sprintf("%.2f%%", 100*res.Availability()))
	}
	for _, strat := range []string{"full-sync", "decentralized", "hybrid-k4"} {
		cfg := base
		cfg.Strategy = strat
		cfg.Policy = "retry1"
		res, err := E15SimRun(cfg)
		if err != nil {
			return nil, err
		}
		addSim(res)
	}
	for _, pol := range []string{"none", "retry3"} {
		cfg := base
		cfg.Strategy = "hybrid-k4"
		cfg.Policy = pol
		res, err := E15SimRun(cfg)
		if err != nil {
			return nil, err
		}
		addSim(res)
	}

	rr, err := e15Real(realClients, realCalls, services)
	if err != nil {
		return nil, err
	}
	avail := 100 * float64(rr.Succeeded) / float64(rr.Calls)
	t.AddRow("real-socket", "xdr-mux", "failover",
		FmtInt(rr.Clients), FmtInt(rr.Calls),
		FmtFloat(float64(rr.Calls)/rr.Wall.Seconds()),
		FmtDur(rr.P50), FmtDur(rr.P99),
		fmt.Sprintf("%.2f%%", avail))
	return t, nil
}
