//go:build race

package bench

// raceEnabled reports whether the race detector is compiled in; the
// timing-shape tests skip themselves under its ~10x slowdown.
const raceEnabled = true
