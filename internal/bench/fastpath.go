package bench

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"time"

	"harness2/internal/registry"
	"harness2/internal/soap"
)

// allocsPer reports the mean heap allocations per invocation of fn.
func allocsPer(reps int, fn func()) float64 {
	if reps < 1 {
		reps = 1
	}
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	for i := 0; i < reps; i++ {
		fn()
	}
	runtime.ReadMemStats(&m1)
	return float64(m1.Mallocs-m0.Mallocs) / float64(reps)
}

// E14FastPath measures the SOAP data-plane fast path and the discovery
// cache (DESIGN.md S29):
//
//   - streaming envelope decode vs the DOM ablation (Codec.DisableFastPath)
//     over packed double arrays, the dominant kernel payload;
//   - pooled append-based encode: wall time and allocations per envelope;
//   - keep-alive vs per-call connections for small SOAP RPCs over loopback;
//   - client-side discovery: remote FindByName vs a cache hit, plus the
//     pass-through overhead of a disabled cache against a local source.
func E14FastPath(sizes []int) (*Table, error) {
	t := &Table{
		ID:    "E14",
		Title: "SOAP fast path: streaming codec, pooled buffers, keep-alive, discovery cache",
		Note: "decode variants share one packed-base64 envelope; 'dom' is the " +
			"DisableFastPath ablation; discovery rows run against a loopback registry",
		Columns: []string{"stage", "variant", "per op", "vs baseline"},
	}
	fast := soap.Codec{Arrays: soap.EncodeBase64}
	dom := soap.Codec{Arrays: soap.EncodeBase64, DisableFastPath: true}

	// --- decode: streaming scan vs DOM, per payload size ---
	for _, n := range sizes {
		payload := RandDoubles(n, 14)
		call := &soap.Call{Method: "put", Params: []soap.Param{{Name: "vals", Value: payload}}}
		env, err := fast.EncodeCall(call)
		if err != nil {
			return nil, err
		}
		reps := repsFor(n)
		domPer := timeIt(reps, func() {
			if _, err := dom.DecodeCall(env); err != nil {
				panic(err)
			}
		})
		fastPer := timeIt(reps*4, func() {
			if _, err := fast.DecodeCall(env); err != nil {
				panic(err)
			}
		})
		label := fmt.Sprintf("decode %d doubles", n)
		t.AddRow(label, "dom", FmtDur(domPer), FmtRatio(1))
		t.AddRow(label, "fast", FmtDur(fastPer),
			FmtRatio(float64(domPer)/float64(fastPer)))
	}

	// --- encode: pooled append path, time and allocations ---
	{
		n := sizes[len(sizes)/2]
		payload := RandDoubles(n, 15)
		call := &soap.Call{Method: "put", Params: []soap.Param{{Name: "vals", Value: payload}}}
		reps := repsFor(n) * 4
		encode := func() {
			buf := soap.AcquireBuffer()
			out, err := fast.AppendCall(*buf, call)
			if err != nil {
				panic(err)
			}
			*buf = out[:0]
			soap.ReleaseBuffer(buf)
		}
		encode() // warm the pool before counting
		per := timeIt(reps, encode)
		allocs := allocsPer(reps, encode)
		label := fmt.Sprintf("encode %d doubles", n)
		t.AddRow(label, "pooled append", FmtDur(per),
			fmt.Sprintf("%.1f allocs/op", allocs))
	}

	// --- transport: keep-alive pool vs fresh connection per call ---
	{
		srv := soap.NewServer()
		srv.Handle("echo", func(call *soap.Call) ([]soap.Param, error) {
			return call.Params, nil
		})
		hs := httptest.NewServer(srv)
		defer hs.Close()
		call := &soap.Call{Method: "echo", Params: []soap.Param{{Name: "x", Value: int64(7)}}}

		perCallTransport := soap.Transport.Clone()
		perCallTransport.DisableKeepAlives = true
		cold := soap.Client{HTTP: &http.Client{Transport: perCallTransport, Timeout: 30 * time.Second}}
		warm := soap.Client{} // SharedHTTP: tuned keep-alive pool

		reps := 300
		coldPer := timeIt(reps, func() {
			if _, err := cold.CallRemote(hs.URL, call); err != nil {
				panic(err)
			}
		})
		warmPer := timeIt(reps, func() {
			if _, err := warm.CallRemote(hs.URL, call); err != nil {
				panic(err)
			}
		})
		t.AddRow("small RPC loopback", "new conn per call", FmtDur(coldPer), FmtRatio(1))
		t.AddRow("small RPC loopback", "keep-alive pool", FmtDur(warmPer),
			FmtRatio(float64(coldPer)/float64(warmPer)))
	}

	// --- discovery: remote find vs cache hit; disabled-cache overhead ---
	{
		reg := registry.New()
		if _, err := reg.Publish(registry.Entry{Name: "WSTime", WSDL: timeWSDL()}); err != nil {
			return nil, err
		}
		regSrv := httptest.NewServer(registry.NewServer(reg))
		defer regSrv.Close()
		remote := registry.NewRemote(regSrv.URL)

		reps := 200
		remotePer := timeIt(reps, func() {
			if got := remote.FindByName("WSTime"); len(got) != 1 {
				panic("find miss")
			}
		})
		cache := registry.NewCache(remote, time.Hour)
		cache.FindByName("WSTime") // fill
		hitPer := timeIt(reps*1000, func() {
			if got := cache.FindByName("WSTime"); len(got) != 1 {
				panic("cache miss")
			}
		})
		t.AddRow("discover by name", "remote SOAP find", FmtDur(remotePer), FmtRatio(1))
		t.AddRow("discover by name", "cache hit", FmtDur(hitPer),
			FmtRatio(float64(remotePer)/float64(hitPer)))

		// Pass-through overhead of a disabled cache, against the local
		// registry so the delta is not drowned by network time.
		directReps := 300_000
		directPer := timeIt(directReps, func() { reg.Get("svc-1") })
		off := registry.NewCache(reg, 0)
		offPer := timeIt(directReps, func() { off.Get("svc-1") })
		t.AddRow("local get", "direct", FmtDur(directPer), FmtRatio(1))
		t.AddRow("local get", "disabled cache", FmtDur(offPer),
			fmt.Sprintf("+%dns", max64(0, offPer.Nanoseconds()-directPer.Nanoseconds())))
	}
	return t, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// timeWSDL produces a small valid WSDL document for discovery rows.
func timeWSDL() string {
	return `<definitions name="WSTime" targetNamespace="urn:harness:WSTime"
  xmlns="http://schemas.xmlsoap.org/wsdl/"
  xmlns:soap="http://schemas.xmlsoap.org/wsdl/soap/">
  <portType name="WSTimePortType">
    <operation name="getTime">
      <input message="getTimeRequest"/>
      <output message="getTimeResponse"/>
    </operation>
  </portType>
  <binding name="WSTimeSOAP" type="WSTimePortType">
    <soap:binding transport="http://schemas.xmlsoap.org/soap/http"/>
    <operation name="getTime"/>
  </binding>
  <service name="WSTime">
    <port name="WSTimeSOAPPort" binding="WSTimeSOAP">
      <soap:address location="http://127.0.0.1:1/services/t1"/>
    </port>
  </service>
</definitions>`
}
