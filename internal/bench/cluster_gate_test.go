package bench

import (
	"os"
	"testing"
)

// TestE17Gate is the CI regression gate over the S31 registry cluster,
// run at the ISSUE's 10⁵-entry scale when E17_GATE=1 (CI exports it).
// Availability is absolute — churn must lose zero finds in every trial —
// while the latency ratio takes the best of three trials, the same
// scheduler-noise hedge as the E16 gate: the routed cluster find p99
// must stay within 2x the single-node owner-shard read of the same
// name index.
func TestE17Gate(t *testing.T) {
	if os.Getenv("E17_GATE") == "" {
		t.Skip("set E17_GATE=1 to run the cluster gate")
	}
	const entries, reads = 100_000, 5_000
	best := 0.0
	for trial := 0; trial < 3; trial++ {
		_, res, err := E17ClusterBench(entries, reads)
		if err != nil {
			t.Fatal(err)
		}
		if res.KillFailedFinds != 0 || res.JoinFailedFinds != 0 {
			t.Fatalf("trial %d: churn lost finds: kill=%d join=%d",
				trial, res.KillFailedFinds, res.JoinFailedFinds)
		}
		if res.KillMoved == 0 || res.JoinMoved == 0 {
			t.Fatalf("trial %d: rebalance moved nothing (kill=%d join=%d); churn did not exercise handoff",
				trial, res.KillMoved, res.JoinMoved)
		}
		r := ratio(res.ClusterFindP99, res.SingleFindP99)
		if best == 0 || r < best {
			best = r
		}
		if best <= 2.0 {
			break // gate met; skip the remaining trials
		}
	}
	if best > 2.0 {
		t.Errorf("cluster find p99 is %.2fx the single-node owner-shard read; gate is 2x", best)
	}
}

// TestE17ChurnSmoke is the always-on churn check: a 3-peer R=2 cluster
// must survive killing one peer — and absorbing a joiner — with zero
// failed finds, at a population small enough for every `go test` run.
func TestE17ChurnSmoke(t *testing.T) {
	_, res, err := E17ClusterBench(2_000, 200)
	if err != nil {
		t.Fatal(err)
	}
	if res.KillFailedFinds != 0 {
		t.Errorf("%d finds failed after killing one of three peers", res.KillFailedFinds)
	}
	if res.JoinFailedFinds != 0 {
		t.Errorf("%d finds failed after a peer joined", res.JoinFailedFinds)
	}
	if res.KillMoved == 0 || res.JoinMoved == 0 {
		t.Errorf("churn moved no entries (kill=%d join=%d)", res.KillMoved, res.JoinMoved)
	}
}
