package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"harness2/internal/container"
	"harness2/internal/invoke"
	"harness2/internal/wire"
	"harness2/internal/wsdl"
)

// arraySinkFactory builds the E11 workload component: "checksum" folds a
// float64 array into one double. The O(n) fold is far cheaper than moving
// the array across the socket, so the experiment measures transport, not
// compute.
func arraySinkFactory() container.Factory {
	return container.FuncFactory(func() *container.FuncComponent {
		return &container.FuncComponent{
			Spec: wsdl.ServiceSpec{Name: "ArraySink", Operations: []wsdl.OpSpec{{
				Name:   "checksum",
				Input:  []wsdl.ParamSpec{{Name: "data", Type: wire.KindFloat64Array}},
				Output: []wsdl.ParamSpec{{Name: "sum", Type: wire.KindFloat64}},
			}}},
			Handlers: map[string]container.OpFunc{
				"checksum": func(ctx context.Context, args []wire.Arg) ([]wire.Arg, error) {
					v, ok := wire.GetArg(args, "data")
					if !ok {
						return nil, fmt.Errorf("checksum: missing data")
					}
					data, ok := v.([]float64)
					if !ok {
						return nil, fmt.Errorf("checksum: data is %T", v)
					}
					var sum float64
					for _, x := range data {
						sum += x
					}
					return wire.Args("sum", sum), nil
				},
			},
		}
	})
}

// e11Transports lists the XDR client strategies under comparison.
func e11Transports() []invoke.XDRMode {
	return []invoke.XDRMode{
		invoke.XDRModeSerial,
		invoke.XDRModeDialPerCall,
		invoke.XDRModeMux,
	}
}

// E11Concurrency measures aggregate XDR invocation throughput as client
// concurrency grows, for each transport strategy: the legacy pooled
// serial connection (one call in flight), dial-per-call (a connection per
// invocation), and the v2 multiplexed connection (many calls pipelined
// over one stream, demultiplexed by request ID).
//
// The claim under test: the serial port is flat — adding callers cannot
// add throughput because the single connection admits one outstanding
// call — while the multiplexed port scales aggregate calls/sec with the
// number of concurrent callers until the server's worker pool or the
// loopback saturates.
func E11Concurrency(clients []int, smallCalls, arrayLen, arrayCalls int) (*Table, error) {
	t := &Table{
		ID:    "E11",
		Title: "XDR aggregate throughput vs client concurrency by transport",
		Note:  "shared port, N goroutines; speedup is vs the same transport at N=1",
		Columns: []string{"payload", "transport", "clients", "calls",
			"wall", "per-call", "calls/sec", "speedup"},
	}
	h, err := newHost()
	if err != nil {
		return nil, err
	}
	defer h.close()
	h.node.Container().RegisterFactory("ArraySink", arraySinkFactory())
	if _, err := h.publish("ArraySink", "sink"); err != nil {
		return nil, err
	}
	addr := h.node.XDRAddr()
	ctx := context.Background()

	type payload struct {
		label string
		args  []wire.Arg
		calls int // per client
	}
	payloads := []payload{
		{"small (1 double)", wire.Args("data", []float64{1}), smallCalls},
		{fmt.Sprintf("array (%s)", FmtBytes(int64(8*arrayLen))),
			wire.Args("data", RandDoubles(arrayLen, 11)), arrayCalls},
	}

	for _, pl := range payloads {
		for _, mode := range e11Transports() {
			var base float64 // calls/sec at clients=1 for this transport
			for _, n := range clients {
				port := invoke.NewXDRPortMode(addr, "sink", mode)
				// Warm the connection (and any pools) outside the timer.
				if _, err := port.Invoke(ctx, "checksum", pl.args); err != nil {
					_ = port.Close()
					return nil, fmt.Errorf("bench: E11 %s warmup: %w", mode, err)
				}
				total := n * pl.calls
				var wg sync.WaitGroup
				var firstErr error
				var errOnce sync.Once
				start := time.Now()
				for c := 0; c < n; c++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for i := 0; i < pl.calls; i++ {
							if _, err := port.Invoke(ctx, "checksum", pl.args); err != nil {
								errOnce.Do(func() { firstErr = err })
								return
							}
						}
					}()
				}
				wg.Wait()
				wall := time.Since(start)
				_ = port.Close()
				if firstErr != nil {
					return nil, fmt.Errorf("bench: E11 %s/%d: %w", mode, n, firstErr)
				}
				rate := float64(total) / wall.Seconds()
				if base == 0 {
					base = rate
				}
				t.AddRow(pl.label, mode.String(), FmtInt(n), FmtInt(total),
					FmtDur(wall), FmtDur(wall/time.Duration(total)),
					FmtFloat(rate), FmtRatio(rate/base))
			}
		}
	}
	return t, nil
}
