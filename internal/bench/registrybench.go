package bench

import (
	"fmt"

	"harness2/internal/registry"
	"harness2/internal/wire"
	"harness2/internal/wsdl"
)

// wireKindDoubleArray shortens the workload generator below.
const wireKindDoubleArray = wire.KindFloat64Array

// E8Registry measures the registry's two find paths against store size:
// the indexed name lookup and the structural XML query scan — the E8
// ablation of DESIGN.md (indexed vs scan).
func E8Registry(sizes []int) (*Table, error) {
	t := &Table{
		ID:      "E8",
		Title:   "Registry find cost vs published services",
		Note:    "indexed FindByName vs structural FindByQuery over cached WSDL documents",
		Columns: []string{"entries", "find path", "per find", "results"},
	}
	for _, size := range sizes {
		reg := registry.New()
		if err := fillRegistry(reg, size); err != nil {
			return nil, err
		}
		target := fmt.Sprintf("Svc%d", size/2)

		reps := 2000
		if size > 1000 {
			reps = 200
		}
		var found int
		byName := timeIt(reps, func() {
			found = len(reg.FindByName(target))
		})
		t.AddRow(FmtInt(size), "byName (indexed)", FmtDur(byName), FmtInt(found))

		queryReps := reps / 10
		if queryReps < 10 {
			queryReps = 10
		}
		q := fmt.Sprintf("//service[@name='%sService']", target)
		byQuery := timeIt(queryReps, func() {
			res, err := reg.FindByQuery(q)
			if err != nil {
				panic(err)
			}
			found = len(res)
		})
		t.AddRow(FmtInt(size), "byQuery (scan)", FmtDur(byQuery), FmtInt(found))

		// A binding-kind query touches every document too but matches many.
		byKind := timeIt(queryReps, func() {
			res, err := reg.FindByQuery("//binding/soap:binding")
			if err != nil {
				panic(err)
			}
			found = len(res)
		})
		t.AddRow(FmtInt(size), "byQuery (kind)", FmtDur(byKind), FmtInt(found))
	}
	return t, nil
}

func fillRegistry(reg *registry.Registry, size int) error {
	for i := 0; i < size; i++ {
		name := fmt.Sprintf("Svc%d", i)
		spec := wsdl.ServiceSpec{
			Name: name,
			Operations: []wsdl.OpSpec{{
				Name:   "run",
				Input:  []wsdl.ParamSpec{{Name: "x", Type: wireKindDoubleArray}},
				Output: []wsdl.ParamSpec{{Name: "y", Type: wireKindDoubleArray}},
			}},
		}
		defs, err := wsdl.Generate(spec, wsdl.EndpointSet{
			SOAPAddress: fmt.Sprintf("http://host:8080/services/%s", name),
			XDRAddress:  "host:9010",
		})
		if err != nil {
			return err
		}
		if _, err := reg.Publish(registry.Entry{
			Name:    name,
			WSDL:    defs.String(),
			TModels: registry.TModelsFor(defs),
		}); err != nil {
			return err
		}
	}
	return nil
}
