// Package bench implements the HARNESS II experiment harness: one
// generator per experiment in DESIGN.md's index (E1–E10), each regenerating
// a figure-scenario or quantified design claim of the paper as a printed
// table. The cmd/hbench binary drives them; the repository-root benchmark
// suite wraps the same workloads in testing.B form.
package bench

import (
	"fmt"
	"io"
	"strings"
	"time"
	"unicode/utf8"
)

// Table is one experiment's result: labelled rows of formatted cells.
type Table struct {
	ID      string
	Title   string
	Note    string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table in aligned plain text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "   %s\n", t.Note)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = utf8.RuneCountInString(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if w := utf8.RuneCountInString(cell); i < len(widths) && w > widths[i] {
				widths[i] = w
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

// String renders the table to text.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

func pad(s string, w int) string {
	n := utf8.RuneCountInString(s)
	if n >= w {
		return s
	}
	return s + strings.Repeat(" ", w-n)
}

// Cell formatting helpers shared by the experiments.

// FmtDur renders a duration with three significant figures.
func FmtDur(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.2fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// FmtBytes renders a byte count in binary units.
func FmtBytes(n int64) string {
	switch {
	case n < 1<<10:
		return fmt.Sprintf("%dB", n)
	case n < 1<<20:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	}
}

// FmtRatio renders a dimensionless factor.
func FmtRatio(r float64) string { return fmt.Sprintf("%.2fx", r) }

// FmtRate renders a throughput in MB/s.
func FmtRate(bytesPerSec float64) string {
	return fmt.Sprintf("%.1fMB/s", bytesPerSec/1e6)
}

// FmtInt renders an integer cell.
func FmtInt(n int) string { return fmt.Sprintf("%d", n) }

// FmtFloat renders a float with two decimals.
func FmtFloat(f float64) string { return fmt.Sprintf("%.2f", f) }
