package bench

import (
	"fmt"
	"math/rand"
	"time"

	"harness2/internal/dvm"
	"harness2/internal/simnet"
)

// Mix is an update:query workload ratio.
type Mix struct {
	Label       string
	UpdateShare float64 // fraction of operations that are state changes
}

// DefaultMixes covers the regimes the paper argues about: update-heavy
// (volatile components), balanced, and query-heavy (stable long-running
// DVMs).
func DefaultMixes() []Mix {
	return []Mix{
		{"90%upd", 0.9},
		{"50%upd", 0.5},
		{"10%upd", 0.1},
	}
}

// E5Coherency sweeps DVM size and workload mix over the three coherency
// strategies of §6, reporting traffic and modelled latency per operation.
// The expected shape: full synchrony wins when queries dominate,
// decentralisation wins when updates dominate and the DVM is large,
// hybrid sits between — exactly the trade-off the paper describes.
func E5Coherency(nodeCounts []int, mixes []Mix, opsPerRun int) *Table {
	t := &Table{
		ID:    "E5",
		Title: "DVM state coherency: traffic and latency per operation (LAN fabric)",
		Note:  "paper §6: full synchrony vs decentralisation vs hybrid neighbourhoods",
		Columns: []string{"nodes", "mix", "strategy", "msgs/op", "KB/op",
			"mean latency/op"},
	}
	for _, n := range nodeCounts {
		for _, mix := range mixes {
			for _, mk := range []func(*simnet.Network) dvm.Coherency{
				func(net *simnet.Network) dvm.Coherency { return dvm.NewFullSync(net) },
				func(net *simnet.Network) dvm.Coherency { return dvm.NewDecentralized(net) },
				func(net *simnet.Network) dvm.Coherency { return dvm.NewHybrid(net, 4) },
			} {
				net := simnet.New(simnet.LAN)
				coh := mk(net)
				msgs, bytes, lat := runCoherencyWorkload(coh, net, n, mix.UpdateShare, opsPerRun)
				t.AddRow(FmtInt(n), mix.Label, coh.Name(),
					FmtFloat(float64(msgs)/float64(opsPerRun)),
					FmtFloat(float64(bytes)/float64(opsPerRun)/1024),
					FmtDur(lat/time.Duration(opsPerRun)))
			}
		}
	}
	return t
}

// runCoherencyWorkload drives ops operations (updateShare of them state
// changes) against a fresh coherency domain of n nodes and returns the
// fabric traffic and summed modelled latency.
func runCoherencyWorkload(coh dvm.Coherency, net *simnet.Network, n int, updateShare float64, ops int) (int, int64, time.Duration) {
	nodes := make([]string, n)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("n%d", i)
		if _, err := coh.AddNode(nodes[i]); err != nil {
			panic(err)
		}
	}
	// Seed some services so queries have answers.
	for i := range nodes {
		_, _ = coh.Apply(nodes[i], dvm.Event{Kind: dvm.ServiceAdd, Node: nodes[i],
			Entry: seedEntry(nodes[i], 0)})
	}
	net.ResetStats()
	r := rand.New(rand.NewSource(7))
	var lat time.Duration
	seq := 1
	for op := 0; op < ops; op++ {
		node := nodes[r.Intn(n)]
		if r.Float64() < updateShare {
			d, err := coh.Apply(node, dvm.Event{Kind: dvm.ServiceAdd, Node: node,
				Entry: seedEntry(node, seq)})
			if err != nil {
				panic(err)
			}
			seq++
			lat += d
		} else {
			_, d, err := coh.Query(node, dvm.Query{Service: "Echo"})
			if err != nil {
				panic(err)
			}
			lat += d
		}
	}
	st := net.Stats()
	return st.Messages, st.Bytes, lat
}

func seedEntry(node string, seq int) dvm.ServiceEntry {
	return dvm.ServiceEntry{
		Node:     node,
		Instance: fmt.Sprintf("svc-%d", seq),
		Class:    "Echo",
		Service:  "Echo",
		// A realistic WSDL document is ~1.5 KiB; model that footprint.
		WSDL: string(make([]byte, 1500)),
	}
}

// E6Lookup compares the discovery-architecture spectrum of §5: a
// centralized registry, a fully decentralized scheme ("registration ...
// fully localized ... discovery ... active lookup that can be expensive"),
// and the intermediate neighbourhood scheme.
func E6Lookup(nodeCounts []int) *Table {
	t := &Table{
		ID:    "E6",
		Title: "Lookup architectures: registration vs discovery cost (LAN fabric)",
		Note:  "paper §5 discovery spectrum; per-operation messages and modelled latency",
		Columns: []string{"nodes", "architecture", "reg msgs", "reg latency",
			"disc msgs", "disc latency"},
	}
	const entryBytes = 1500
	for _, n := range nodeCounts {
		// Centralized: a star around a registry node; both phases are one
		// round trip.
		{
			net := simnet.New(simnet.LAN)
			net.AddNode("registry")
			for i := 0; i < n; i++ {
				net.AddNode(fmt.Sprintf("n%d", i))
			}
			regLat, _ := net.RTT("n0", "registry", entryBytes, 64)
			regStats := net.Stats()
			net.ResetStats()
			discLat, _ := net.RTT("n1", "registry", 128, entryBytes)
			discStats := net.Stats()
			t.AddRow(FmtInt(n), "centralized", FmtInt(regStats.Messages), FmtDur(regLat),
				FmtInt(discStats.Messages), FmtDur(discLat))
		}
		// Sharded: the S31 registry cluster — a 3-peer consistent-hash
		// ring with R=2 replication. Registration costs the round trip to
		// the owning shard plus one replication round trip to its ring
		// successor; discovery routes to the owner shard in one round trip
		// (only structural queries scatter). Same per-op asymptotics as
		// centralized, but no single point of failure and a third of the
		// per-shard load.
		{
			net := simnet.New(simnet.LAN)
			for i := 0; i < 3; i++ {
				net.AddNode(fmt.Sprintf("shard%d", i))
			}
			for i := 0; i < n; i++ {
				net.AddNode(fmt.Sprintf("n%d", i))
			}
			regLat, _ := net.RTT("n0", "shard0", entryBytes, 64)
			replLat, _ := net.RTT("shard0", "shard1", entryBytes, 64)
			regLat += replLat
			regStats := net.Stats()
			net.ResetStats()
			discLat, _ := net.RTT("n1", "shard2", 128, entryBytes)
			discStats := net.Stats()
			t.AddRow(FmtInt(n), "sharded (3-peer R=2)", FmtInt(regStats.Messages), FmtDur(regLat),
				FmtInt(discStats.Messages), FmtDur(discLat))
		}
		// Decentralized and hybrid reuse the DVM coherency machinery with
		// a one-service workload: registration is Apply, discovery Query.
		for _, mk := range []func(*simnet.Network) dvm.Coherency{
			func(net *simnet.Network) dvm.Coherency { return dvm.NewDecentralized(net) },
			func(net *simnet.Network) dvm.Coherency { return dvm.NewHybrid(net, 4) },
		} {
			net := simnet.New(simnet.LAN)
			coh := mk(net)
			for i := 0; i < n; i++ {
				_, _ = coh.AddNode(fmt.Sprintf("n%d", i))
			}
			net.ResetStats()
			regLat, err := coh.Apply("n0", dvm.Event{Kind: dvm.ServiceAdd, Node: "n0",
				Entry: seedEntry("n0", 1)})
			if err != nil {
				panic(err)
			}
			regStats := net.Stats()
			net.ResetStats()
			_, discLat, err := coh.Query(fmt.Sprintf("n%d", n-1), dvm.Query{Service: "Echo"})
			if err != nil {
				panic(err)
			}
			discStats := net.Stats()
			t.AddRow(FmtInt(n), coh.Name(), FmtInt(regStats.Messages), FmtDur(regLat),
				FmtInt(discStats.Messages), FmtDur(discLat))
		}
	}
	return t
}

// E5bHybridK is the DESIGN.md ablation of the hybrid strategy's
// neighbourhood size: k=1 degenerates to full decentralisation (every
// node its own neighbourhood), k=N to full synchrony; the sweep shows the
// update/query cost trade moving between those poles.
func E5bHybridK(n int, ks []int, opsPerRun int) *Table {
	t := &Table{
		ID:    "E5b",
		Title: fmt.Sprintf("Hybrid coherency ablation: neighbourhood size k (%d nodes, 50%% updates)", n),
		Note:  "k=1 ≈ decentralized, k=N ≈ full synchrony",
		Columns: []string{"k", "strategy", "msgs/op", "KB/op",
			"mean latency/op"},
	}
	for _, k := range ks {
		net := simnet.New(simnet.LAN)
		coh := dvm.NewHybrid(net, k)
		msgs, bytes, lat := runCoherencyWorkload(coh, net, n, 0.5, opsPerRun)
		t.AddRow(FmtInt(k), coh.Name(),
			FmtFloat(float64(msgs)/float64(opsPerRun)),
			FmtFloat(float64(bytes)/float64(opsPerRun)/1024),
			FmtDur(lat/time.Duration(opsPerRun)))
	}
	return t
}
