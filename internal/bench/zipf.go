package bench

import (
	"fmt"
	"math/rand"
)

// Zipf draws service ranks with the skew real discovery traffic shows: a
// handful of names take most of the lookups (P(rank k) ∝ 1/(1+k)^s).
// E15's client population draws names from it, which is exactly what
// pushes the registry.Cache singleflight and the lock-free hit path —
// everyone resolves the same few hot names forever.
//
// The generator is deterministic under a fixed seed (it owns a private
// rand.Rand), so the virtual-time E15 runs replay identically.
type Zipf struct {
	z *rand.Zipf
	n int
}

// NewZipf returns a generator over ranks [0, n) with exponent s (> 1;
// ~1.1 matches measured service-popularity skew). It panics on invalid
// parameters: the harness constructs it from compile-time constants.
func NewZipf(seed int64, s float64, n int) *Zipf {
	if n < 1 {
		n = 1
	}
	z := rand.NewZipf(rand.New(rand.NewSource(seed)), s, 1, uint64(n-1))
	if z == nil {
		panic(fmt.Sprintf("bench: invalid Zipf exponent %v", s))
	}
	return &Zipf{z: z, n: n}
}

// Next draws one rank; rank 0 is the most popular.
func (z *Zipf) Next() int { return int(z.z.Uint64()) }

// N reports the rank-space size.
func (z *Zipf) N() int { return z.n }
