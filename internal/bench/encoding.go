package bench

import (
	"fmt"
	"time"

	"harness2/internal/soap"
	"harness2/internal/xdr"
)

// E2Encoding quantifies the paper's data-encoding claim: XML text
// encodings of numeric arrays cost far more than XDR binary, both in
// bytes on the wire and in encode/decode CPU time. One row per
// (array size, encoding).
func E2Encoding(sizes []int) *Table {
	t := &Table{
		ID:    "E2",
		Title: "Array-of-double encoding cost: XDR binary vs SOAP text encodings",
		Note:  "paper §5 data encoding issue; raw payload is 8 bytes/double",
		Columns: []string{"doubles", "encoding", "wire bytes", "expansion",
			"encode", "decode", "throughput"},
	}
	for _, n := range sizes {
		data := RandDoubles(n, int64(n))
		raw := int64(8 * n)
		for _, enc := range []string{"xdr", "soap-base64", "soap-hex", "soap-elementwise"} {
			wire, encT, decT := measureEncoding(enc, data)
			total := encT + decT
			rate := 0.0
			if total > 0 {
				rate = float64(raw) / total.Seconds()
			}
			t.AddRow(FmtInt(n), enc, FmtBytes(wire),
				FmtRatio(float64(wire)/float64(raw)),
				FmtDur(encT), FmtDur(decT), FmtRate(rate))
		}
	}
	return t
}

// measureEncoding returns (wire bytes, mean encode time, mean decode time)
// for one encoding of data.
func measureEncoding(enc string, data []float64) (int64, time.Duration, time.Duration) {
	reps := repsFor(len(data))
	if enc == "xdr" {
		e := xdr.NewEncoder(8*len(data) + 16)
		encT := timeIt(reps, func() {
			e.Reset()
			if err := xdr.EncodeValue(e, data); err != nil {
				panic(err)
			}
		})
		buf := e.Bytes()
		decT := timeIt(reps, func() {
			if _, err := xdr.DecodeValue(xdr.NewDecoder(buf)); err != nil {
				panic(err)
			}
		})
		return int64(len(buf)), encT, decT
	}
	codec := soap.Codec{}
	switch enc {
	case "soap-base64":
		codec.Arrays = soap.EncodeBase64
	case "soap-hex":
		codec.Arrays = soap.EncodeHex
	case "soap-elementwise":
		codec.Arrays = soap.EncodeElementwise
	default:
		panic(fmt.Sprintf("bench: unknown encoding %q", enc))
	}
	call := &soap.Call{Method: "getResult", Params: []soap.Param{{Name: "mata", Value: data}}}
	var buf []byte
	encT := timeIt(reps, func() {
		var err error
		buf, err = codec.EncodeCall(call)
		if err != nil {
			panic(err)
		}
	})
	decT := timeIt(reps, func() {
		if _, err := codec.DecodeCall(buf); err != nil {
			panic(err)
		}
	})
	return int64(len(buf)), encT, decT
}

func repsFor(n int) int {
	switch {
	case n <= 1000:
		return 50
	case n <= 100000:
		return 10
	default:
		return 3
	}
}
