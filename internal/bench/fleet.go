package bench

import (
	"context"
	"fmt"
	"time"

	"harness2/internal/fleet"
	"harness2/internal/registry"
	"harness2/internal/runnerbox"
	"harness2/internal/telemetry"
)

// E18 — fleet control plane: automated deployment and crash recovery
// (S32). Two curves on a deterministic slice (listener-free sim units, a
// fixed spawn cost standing in for component fetch + container start):
//
//   - time-to-N-nodes-serving: one target descriptor asking for N
//     replicas, measured from Deploy to the Nth unit serving (spawns run
//     concurrently across boxes, so the curve should stay nearly flat);
//   - recovery-after-kill: a supervised unit is killed abruptly,
//     measured from the kill to the restarted unit serving again. The
//     killed unit's leased registration dangles until the restart
//     republishes over it, so a find polled throughout recovery must
//     never fail — the zero-failed-finds column is the availability
//     claim, the restart-backoff bound the latency claim.

// e18SpawnDelay is the modelled instantiation cost of one sim unit.
const e18SpawnDelay = 2 * time.Millisecond

// e18Restart is the recovery policy under test; RecoveryBound derives
// from it.
var e18Restart = fleet.RestartPolicy{Backoff: 5 * time.Millisecond, Max: 40 * time.Millisecond, Limit: 8}

// E18Result carries the machine-readable outcome for the gate.
type E18Result struct {
	// TimeToServing maps replica count N to the Deploy→N-serving time.
	TimeToServing map[int]time.Duration
	// RecoveryP50/RecoveryMax summarise the kill→serving-again samples.
	RecoveryP50 time.Duration
	RecoveryMax time.Duration
	// FailedFinds counts registry misses observed while recoveries were
	// in flight; the lease-recovery design requires zero.
	FailedFinds int
	// RecoveryBound is the acceptance ceiling for one recovery: the
	// worst-case restart backoff plus the modelled spawn cost.
	RecoveryBound time.Duration
	// Kills is the number of recovery samples taken.
	Kills int
}

func e18Boxes(sup *fleet.Supervisor, n int) error {
	for i := 0; i < n; i++ {
		if err := sup.Enroll(fleet.BoxInfo{
			Name: fmt.Sprintf("box-%d", i),
			Box:  runnerbox.New(runnerbox.NewLocalBackend()),
		}); err != nil {
			return err
		}
	}
	return nil
}

func e18Descriptor(replicas int) fleet.Descriptor {
	return fleet.Descriptor{
		Name:       "e18",
		Replicas:   replicas,
		Components: []string{fleet.CounterClass},
		Lease:      30 * time.Second, // long: recovery must replace, not expire
		Restart:    e18Restart,
	}
}

// E18FleetBench runs the experiment and returns both the table and the
// gate result.
func E18FleetBench(ns []int, kills int) (*Table, *E18Result, error) {
	t := &Table{
		ID:    "E18",
		Title: "Fleet deployment daemon: time-to-N-serving and crash recovery (deterministic slice)",
		Note: fmt.Sprintf("sim units with %s spawn cost over 4 local boxes; restart policy backoff=%s max=%s",
			e18SpawnDelay, e18Restart.Backoff, e18Restart.Max),
		Columns: []string{"phase", "metric", "value", "note"},
	}
	res := &E18Result{
		TimeToServing: make(map[int]time.Duration),
		RecoveryBound: e18Restart.Bound() + e18SpawnDelay,
		Kills:         kills,
	}

	// --- time-to-N-serving curve ---------------------------------------
	for _, n := range ns {
		reg := registry.New()
		sup, err := fleet.New(fleet.Config{
			Launcher: fleet.NewSimLauncher(&fleet.SimLauncherConfig{
				Registry: reg, SpawnDelay: e18SpawnDelay,
			}),
			Telemetry: telemetry.Disabled(),
			Seed:      7,
		})
		if err != nil {
			return nil, nil, err
		}
		if err := e18Boxes(sup, 4); err != nil {
			return nil, nil, err
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		start := time.Now()
		if _, err := sup.Deploy(e18Descriptor(n)); err != nil {
			cancel()
			return nil, nil, err
		}
		if err := sup.WaitServing(ctx, "e18", n); err != nil {
			cancel()
			return nil, nil, err
		}
		el := time.Since(start)
		cancel()
		res.TimeToServing[n] = el
		t.AddRow("deploy", fmt.Sprintf("time-to-%d-serving", n), FmtDur(el),
			fmt.Sprintf("%d leased registrations live", reg.Len()))
		if err := sup.Close(); err != nil {
			return nil, nil, err
		}
	}

	// --- recovery-after-kill -------------------------------------------
	reg := registry.New()
	sup, err := fleet.New(fleet.Config{
		Launcher: fleet.NewSimLauncher(&fleet.SimLauncherConfig{
			Registry: reg, SpawnDelay: e18SpawnDelay,
		}),
		Telemetry: telemetry.Disabled(),
		Seed:      7,
	})
	if err != nil {
		return nil, nil, err
	}
	defer sup.Close()
	if err := e18Boxes(sup, 2); err != nil {
		return nil, nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	ids, err := sup.Deploy(e18Descriptor(4))
	if err != nil {
		return nil, nil, err
	}
	if err := sup.WaitServing(ctx, "e18", 4); err != nil {
		return nil, nil, err
	}
	entries := reg.Len()

	samples := make([]time.Duration, 0, kills)
	for k := 0; k < kills; k++ {
		victim := ids[k%len(ids)]
		key := victim + "::" + "fleetcounter"
		before, _, err := sup.Attach(victim, 0)
		if err != nil {
			return nil, nil, err
		}
		start := time.Now()
		if err := sup.Kill(victim); err != nil {
			return nil, nil, err
		}
		// Poll the find path throughout the outage: the dangling lease
		// must keep answering until the restart replaces it.
		deadline := time.Now().Add(10 * time.Second)
		for {
			if _, ok := reg.Get(key); !ok {
				res.FailedFinds++
			}
			st, _, err := sup.Attach(victim, 0)
			if err != nil {
				return nil, nil, err
			}
			if st.State == "serving" && st.Restarts > before.Restarts {
				break
			}
			if time.Now().After(deadline) {
				return nil, nil, fmt.Errorf("bench: unit %s never recovered from kill %d", victim, k)
			}
			time.Sleep(200 * time.Microsecond)
		}
		samples = append(samples, time.Since(start))
	}
	res.RecoveryP50, res.RecoveryMax = percentiles(samples)
	if n := reg.Len(); n != entries {
		return nil, nil, fmt.Errorf("bench: registry grew from %d to %d entries across recoveries (duplicated leases)", entries, n)
	}
	t.AddRow("recover", "kill-to-serving p50", FmtDur(res.RecoveryP50),
		fmt.Sprintf("%d kills across 4 units", kills))
	t.AddRow("recover", "kill-to-serving max", FmtDur(res.RecoveryMax),
		fmt.Sprintf("bound %s (restart backoff + spawn)", FmtDur(res.RecoveryBound)))
	t.AddRow("recover", "failed finds during recovery", fmt.Sprintf("%d", res.FailedFinds),
		"dangling lease answers until the restart republishes")
	t.AddRow("recover", "leased entries after recoveries", fmt.Sprintf("%d", reg.Len()),
		"replaced in place, never duplicated")
	return t, res, nil
}

// E18Fleet adapts the bench to the Run switch.
func E18Fleet(ns []int, kills int) (*Table, error) {
	t, _, err := E18FleetBench(ns, kills)
	return t, err
}
