package bench

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"harness2/internal/container"
	"harness2/internal/invoke"
	"harness2/internal/telemetry"
	"harness2/internal/wire"
	"harness2/internal/wsdl"
)

// E12TelemetryOverhead measures the cost of the observability plane
// (telemetry S27) on its hot paths, enabled versus disabled. The design
// contract under test: instrumentation defaults on, so its per-event cost
// must be tens of nanoseconds; the Disabled() off-switch must reduce
// every instrument to a nil-receiver branch — a few nanoseconds and zero
// allocations — so latency-critical deployments pay nothing.
//
// Rows cover the primitive instruments (counter increment, histogram
// timer, vec child lookup, child-span gate) and one end-to-end local
// invocation through a fully instrumented container + port stack.
func E12TelemetryOverhead(reps, invokeReps int) (*Table, error) {
	t := &Table{
		ID:    "E12",
		Title: "Telemetry overhead: instruments enabled vs telemetry.Disabled()",
		Note:  "disabled path is a nil-receiver branch; allocs/op must be 0 both ways on primitives",
		Columns: []string{"instrument", "enabled ns/op", "allocs/op",
			"disabled ns/op", "allocs/op", "overhead"},
	}

	on := telemetry.New()
	off := telemetry.Disabled()

	type workload struct {
		name string
		reps int
		mk   func(r *telemetry.Registry) func()
	}
	workloads := []workload{
		{"counter.Inc", reps, func(r *telemetry.Registry) func() {
			c := r.Counter("e12_counter")
			return func() { c.Inc() }
		}},
		{"gauge.Set", reps, func(r *telemetry.Registry) func() {
			g := r.Gauge("e12_gauge")
			return func() { g.Set(42) }
		}},
		{"histogram.Observe", reps, func(r *telemetry.Registry) func() {
			h := r.Histogram("e12_hist")
			return func() { h.Observe(1024) }
		}},
		{"histogram.Start+ObserveSince", reps, func(r *telemetry.Registry) func() {
			h := r.Histogram("e12_hist_timer")
			return func() { h.ObserveSince(h.Start()) }
		}},
		{"counterVec.With(op).Inc", reps, func(r *telemetry.Registry) func() {
			v := r.CounterVec("e12_vec", "op")
			return func() { v.With("deploy").Inc() }
		}},
		{"xdr compress record (ctr+hist)", reps, func(r *telemetry.Registry) func() {
			// The S33 per-frame accounting path: one counter add plus
			// one ratio observation, exactly what compressedOut charges.
			out := r.Counter("e12_comp_out_bytes", "role", "client")
			ratio := r.Histogram("e12_comp_ratio", "role", "client")
			return func() { out.Add(9930); ratio.Observe(15) }
		}},
		{"childSpan gate (untraced)", reps, func(r *telemetry.Registry) func() {
			ctx := context.Background()
			return func() { _, _ = r.ChildSpan(ctx, "e12") }
		}},
		{"local invoke end-to-end", invokeReps, func(r *telemetry.Registry) func() {
			p, err := e12Port(r)
			if err != nil {
				panic(err)
			}
			ctx := context.Background()
			args := wire.Args("by", int64(1))
			return func() {
				if _, err := p.Invoke(ctx, "inc", args); err != nil {
					panic(err)
				}
			}
		}},
	}

	for _, w := range workloads {
		enNs, enAllocs := measureOverhead(w.reps, w.mk(on))
		disNs, disAllocs := measureOverhead(w.reps, w.mk(off))
		t.AddRow(w.name,
			fmtNs(enNs), fmtAllocs(enAllocs),
			fmtNs(disNs), fmtAllocs(disAllocs),
			fmtNs(enNs-disNs))
	}
	return t, nil
}

// e12Port builds a one-instance container charged to r and returns a
// local port through it. The component is a trivial accumulator so the
// measurement isolates dispatch + instrumentation, not compute.
func e12Port(r *telemetry.Registry) (invoke.Port, error) {
	c := container.New(container.Config{Name: "e12", Telemetry: r})
	c.RegisterFactory("Accum", e12AccumFactory())
	inst, _, err := c.Deploy("Accum", "a1")
	if err != nil {
		return nil, err
	}
	return &invoke.LocalPort{Container: c, Instance: inst.ID, Telemetry: r}, nil
}

func e12AccumFactory() container.Factory {
	return container.FuncFactory(func() *container.FuncComponent {
		var total int64
		return &container.FuncComponent{
			Spec: wsdl.ServiceSpec{Name: "Accum", Operations: []wsdl.OpSpec{{
				Name:   "inc",
				Input:  []wsdl.ParamSpec{{Name: "by", Type: wire.KindInt64}},
				Output: []wsdl.ParamSpec{{Name: "total", Type: wire.KindInt64}},
			}}},
			Handlers: map[string]container.OpFunc{
				"inc": func(ctx context.Context, args []wire.Arg) ([]wire.Arg, error) {
					if v, ok := wire.GetArg(args, "by"); ok {
						if by, ok := v.(int64); ok {
							total += by
						}
					}
					return wire.Args("total", total), nil
				},
			},
		}
	})
}

// measureOverhead returns the mean wall time and mean heap allocations of
// reps invocations of fn, with a warm-up pass so lazy initialisation (vec
// children, histograms) is excluded from the measurement.
func measureOverhead(reps int, fn func()) (time.Duration, float64) {
	if reps < 1 {
		reps = 1
	}
	for i := 0; i < 100; i++ {
		fn()
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < reps; i++ {
		fn()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	allocs := float64(after.Mallocs-before.Mallocs) / float64(reps)
	return elapsed / time.Duration(reps), allocs
}

func fmtNs(d time.Duration) string {
	return fmt.Sprintf("%.1fns", float64(d.Nanoseconds()))
}

func fmtAllocs(a float64) string {
	if a < 0.005 {
		return "0"
	}
	return fmt.Sprintf("%.2f", a)
}
