package bench

import (
	"math"
	"reflect"
	"testing"
	"time"
)

// TestZipfDeterministic: same seed, same draw sequence.
func TestZipfDeterministic(t *testing.T) {
	a := NewZipf(7, 1.1, 1000)
	b := NewZipf(7, 1.1, 1000)
	for i := 0; i < 2000; i++ {
		if x, y := a.Next(), b.Next(); x != y {
			t.Fatalf("draw %d: %d != %d", i, x, y)
		}
	}
	c := NewZipf(8, 1.1, 1000)
	diff := false
	a2 := NewZipf(7, 1.1, 1000)
	for i := 0; i < 2000; i++ {
		if a2.Next() != c.Next() {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical sequences")
	}
}

// TestZipfStatistics fits the rank-frequency slope on a log-log scale:
// for P(k) ∝ (1+k)^-s the least-squares slope of log(freq) against
// log(1+k) must sit near -s.
func TestZipfStatistics(t *testing.T) {
	const (
		s       = 1.1
		n       = 1000
		samples = 200_000
		ranks   = 50 // head ranks with solid counts
	)
	z := NewZipf(11, s, n)
	freq := make([]int, n)
	for i := 0; i < samples; i++ {
		r := z.Next()
		if r < 0 || r >= n {
			t.Fatalf("rank %d out of [0,%d)", r, n)
		}
		freq[r]++
	}
	// The head must dominate: rank 0 far above rank 49.
	if freq[0] < 10*freq[ranks-1] {
		t.Fatalf("no popularity skew: freq[0]=%d freq[%d]=%d", freq[0], ranks-1, freq[ranks-1])
	}
	var sx, sy, sxx, sxy float64
	m := 0
	for k := 0; k < ranks; k++ {
		if freq[k] == 0 {
			continue
		}
		x := math.Log(float64(1 + k))
		y := math.Log(float64(freq[k]))
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		m++
	}
	slope := (float64(m)*sxy - sx*sy) / (float64(m)*sxx - sx*sx)
	if math.Abs(slope-(-s)) > 0.2 {
		t.Fatalf("rank-frequency slope = %.3f, want %.1f ± 0.2", slope, -s)
	}
}

func e15SmokeConfig() E15SimConfig {
	return E15SimConfig{
		Seed:         7,
		Clients:      3000,
		OpsPerClient: 3,
		Services:     256,
		Hnodes:       8,
		ServiceNodes: 4,
		Strategy:     "hybrid-k4",
		Policy:       "retry1",
		Chaos:        true,
	}
}

// TestE15SimnetDeterminism: two same-seed virtual-time runs produce
// identical results — op counts, fabric traffic, and percentiles.
func TestE15SimnetDeterminism(t *testing.T) {
	cfg := e15SmokeConfig()
	r1, err := E15SimRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := E15SimRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("same-seed runs diverged:\n%+v\n%+v", r1, r2)
	}
	cfg.Seed = 8
	r3, err := E15SimRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(r1, r3) {
		t.Fatal("different seeds produced identical runs")
	}
}

// TestE15Smoke is the always-on (race-enabled) slice of both modes at a
// small client count.
func TestE15Smoke(t *testing.T) {
	// Virtual-time mode: every strategy at smoke size.
	for _, strat := range []string{"full-sync", "decentralized", "hybrid-k4"} {
		cfg := e15SmokeConfig()
		cfg.Clients = 1500
		cfg.OpsPerClient = 2
		cfg.Strategy = strat
		res, err := E15SimRun(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := res.Ops, uint64(cfg.Clients*cfg.OpsPerClient); got != want {
			t.Fatalf("%s: ops = %d, want %d", strat, got, want)
		}
		if res.Availability() < 0.5 {
			t.Fatalf("%s: availability %.2f implausibly low", strat, res.Availability())
		}
		if res.CacheHits == 0 || res.CacheMisses == 0 {
			t.Fatalf("%s: cache never exercised: hits=%d misses=%d",
				strat, res.CacheHits, res.CacheMisses)
		}
		if res.P99 <= 0 || res.VirtualElapsed <= 0 {
			t.Fatalf("%s: degenerate timing: %+v", strat, res)
		}
	}

	// Real-socket mode: a small goroutine crowd with the mid-run kill.
	rr, err := e15Real(48, 3, 64)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Succeeded == 0 {
		t.Fatal("no successful real-socket calls")
	}
	if rr.Succeeded+rr.Failed != uint64(rr.Calls) {
		t.Fatalf("call accounting broken: %d + %d != %d", rr.Succeeded, rr.Failed, rr.Calls)
	}
	if rr.P99 <= 0 || rr.P99 > time.Minute {
		t.Fatalf("implausible real-socket p99 %v", rr.P99)
	}
}

// TestE15NegativeCacheChurn: after a service node dies and its hottest
// service is unpublished, resolutions miss but do not stampede the
// registry — the negative cache absorbs the hot-miss storm (the
// regression the separate negative TTL exists for).
func TestE15NegativeCacheChurn(t *testing.T) {
	cfg := e15SmokeConfig()
	cfg.Chaos = false // isolate churn effects
	res, err := E15SimRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Churn unpublishes hot services, so some invokes must fail...
	if res.Failed == 0 {
		t.Fatalf("churn produced no failures: %+v", res)
	}
	// ...but the hit rate stays high: the hot-miss storm is soaked up by
	// negative caching instead of turning every resolution into an
	// upstream fetch.
	hitRate := float64(res.CacheHits) / float64(res.CacheHits+res.CacheMisses)
	if hitRate < 0.6 {
		t.Fatalf("cache hit rate %.2f under churn, want >= 0.6 (negative cache broken?)", hitRate)
	}
}
