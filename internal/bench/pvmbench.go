package bench

import (
	"context"
	"fmt"
	"time"

	"harness2/internal/container"
	"harness2/internal/events"
	"harness2/internal/kernel"
	"harness2/internal/namesvc"
	"harness2/internal/pvm"
	"harness2/internal/wire"
)

// E7PVM measures the PVM-emulation overhead of Figure 2: ping-pong
// round trips between tasks on two hpvmd daemons versus a raw Go channel
// baseline, across payload sizes.
func E7PVM(payloadDoubles []int, rounds int) (*Table, error) {
	t := &Table{
		ID:    "E7",
		Title: "PVM emulation (hpvmd) ping-pong vs raw channel baseline",
		Note:  "Figure 2: the framework path runs router + mailbox + plugin layers",
		Columns: []string{"payload", "path", "per round trip", "bandwidth",
			"overhead"},
	}
	router := pvm.NewRouter(nil)
	daemons := make([]*pvm.Daemon, 2)
	for i := range daemons {
		name := fmt.Sprintf("bhost%d", i)
		k := kernel.New(name, container.Config{})
		k.RegisterPlugin(events.PluginClass, events.Factory())
		k.RegisterPlugin(namesvc.PluginClass, namesvc.Factory())
		k.RegisterPlugin(pvm.PluginClass, pvm.Factory(name, router),
			events.PluginClass, namesvc.PluginClass)
		if err := k.Load(pvm.PluginClass); err != nil {
			return nil, err
		}
		comp, _ := k.Plugin(pvm.PluginClass)
		daemons[i] = comp.(*pvm.Daemon)
	}

	for _, n := range payloadDoubles {
		payload := RandDoubles(n, int64(n))
		bytes := 8 * n

		// Framework path: echo server task on daemon 0, driver on daemon 1.
		perRT, err := pvmPingPong(daemons, payload, rounds)
		if err != nil {
			return nil, err
		}
		// Baseline: the same payload over raw Go channels.
		base := channelPingPong(payload, rounds)

		bw := func(d time.Duration) float64 {
			if d <= 0 {
				return 0
			}
			return float64(2*bytes) / d.Seconds()
		}
		t.AddRow(FmtBytes(int64(bytes)), "hpvmd", FmtDur(perRT), FmtRate(bw(perRT)),
			FmtRatio(float64(perRT)/float64(base)))
		t.AddRow(FmtBytes(int64(bytes)), "raw channel", FmtDur(base), FmtRate(bw(base)), FmtRatio(1))
	}
	return t, nil
}

func pvmPingPong(daemons []*pvm.Daemon, payload []float64, rounds int) (time.Duration, error) {
	const tag = 5
	daemons[0].RegisterTaskFunc("echo", func(ctx context.Context, self *pvm.Task, args []string) error {
		for {
			m, err := self.Recv(pvm.AnySrc, pvm.AnyTag)
			if err != nil {
				return nil // cancelled at teardown
			}
			if m.Tag == 0 {
				return nil // shutdown
			}
			if err := self.Send(m.Src, m.Tag, m.Body); err != nil {
				return err
			}
		}
	})
	echoTids, err := daemons[0].Spawn("echo", nil, 1)
	if err != nil {
		return 0, err
	}
	result := make(chan time.Duration, 1)
	errs := make(chan error, 1)
	daemons[1].RegisterTaskFunc("driver", func(ctx context.Context, self *pvm.Task, args []string) error {
		body := []wire.Arg{pvm.PkDoubleArray("data", payload)}
		// Warm-up round.
		if err := self.Send(echoTids[0], tag, body); err != nil {
			return err
		}
		if _, err := self.Recv(echoTids[0], tag); err != nil {
			return err
		}
		start := time.Now()
		for i := 0; i < rounds; i++ {
			if err := self.Send(echoTids[0], tag, body); err != nil {
				return err
			}
			if _, err := self.Recv(echoTids[0], tag); err != nil {
				return err
			}
		}
		result <- time.Since(start) / time.Duration(rounds)
		return self.Send(echoTids[0], 0, nil)
	})
	if _, err := daemons[1].Spawn("driver", nil, 1); err != nil {
		return 0, err
	}
	select {
	case d := <-result:
		return d, nil
	case err := <-errs:
		return 0, err
	case <-time.After(60 * time.Second):
		return 0, fmt.Errorf("bench: pvm ping-pong timed out")
	}
}

func channelPingPong(payload []float64, rounds int) time.Duration {
	type msg struct {
		data []float64
	}
	req := make(chan msg, 1)
	resp := make(chan msg, 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for m := range req {
			resp <- m
		}
	}()
	start := time.Now()
	for i := 0; i < rounds; i++ {
		req <- msg{payload}
		<-resp
	}
	elapsed := time.Since(start) / time.Duration(rounds)
	close(req)
	<-done
	return elapsed
}
