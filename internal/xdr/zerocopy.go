package xdr

// Zero-copy numeric array codec (XDR v3 data plane, DESIGN.md S30).
//
// XDR's wire format is big-endian; on the little-endian hosts that run
// virtually every deployment, the portable array codecs pay one
// binary.BigEndian call — and its slice-header arithmetic and bounds
// check — per element. The fast paths here reinterpret the typed array's
// backing store as machine words with unsafe.Slice and byte-swap whole
// words (bits.ReverseBytes compiles to a single BSWAP/REV), touching each
// element exactly once with no intermediate buffer and no per-element
// bounds checks. The decode-into variants additionally skip the output
// allocation by writing straight into caller-supplied (typically pooled)
// storage.
//
// The portable loops remain the source of truth: hosts without
// little-endian unaligned word access (see zerocopy_portable.go) always
// take them, SetZeroCopy(false) is the run-time ablation switch, and the
// FuzzXDRZeroCopyDifferential target holds the two implementations
// byte-equivalent, exactly as internal/soap's fast decoder is held to its
// DOM fallback.

import (
	"math/bits"
	"sync/atomic"
	"unsafe"
)

// zeroCopyOff disables the fast paths at run time (ablation E16). The
// flag is inverted so the zero value means "enabled".
var zeroCopyOff atomic.Bool

// SetZeroCopy switches the zero-copy fast paths on or off at run time
// and reports the previous setting. Disabling them forces every array
// codec through the portable element loops — the E16 ablation, and an
// escape hatch should an architecture misreport its unaligned-access
// tolerance. On hosts where the fast paths are unavailable the switch is
// recorded but has no effect.
func SetZeroCopy(on bool) bool {
	prev := !zeroCopyOff.Load()
	zeroCopyOff.Store(!on)
	return prev
}

// ZeroCopyEnabled reports whether the zero-copy array fast paths are
// active: the host must be capable (little-endian, unaligned-tolerant)
// and the run-time switch must not have disabled them.
func ZeroCopyEnabled() bool {
	return hostZeroCopyCapable && !zeroCopyOff.Load()
}

// Reinterpretation helpers. Each views a typed numeric slice as its
// bit-pattern words without copying; the derived slice aliases (and keeps
// alive) the original backing array. Callers guard the empty case.

func f64words(a []float64) []uint64 {
	return unsafe.Slice((*uint64)(unsafe.Pointer(unsafe.SliceData(a))), len(a))
}

func f32words(a []float32) []uint32 {
	return unsafe.Slice((*uint32)(unsafe.Pointer(unsafe.SliceData(a))), len(a))
}

func i64words(a []int64) []uint64 {
	return unsafe.Slice((*uint64)(unsafe.Pointer(unsafe.SliceData(a))), len(a))
}

func i32words(a []int32) []uint32 {
	return unsafe.Slice((*uint32)(unsafe.Pointer(unsafe.SliceData(a))), len(a))
}

// swapPut64 stores each src word into dst in big-endian byte order.
// len(dst) must be at least 8*len(src). dst is reinterpreted as a word
// slice — an unaligned store on most frame offsets, which the build tag
// guarantees the host tolerates — so the loop is a bare load/BSWAP/store
// per element with the bounds checks hoisted out.
func swapPut64(dst []byte, src []uint64) {
	if len(src) == 0 {
		return
	}
	_ = dst[8*len(src)-1]
	d := unsafe.Slice((*uint64)(unsafe.Pointer(unsafe.SliceData(dst))), len(src))
	for i, v := range src {
		d[i] = bits.ReverseBytes64(v)
	}
}

// swapPut32 is the 4-byte-element twin of swapPut64.
func swapPut32(dst []byte, src []uint32) {
	if len(src) == 0 {
		return
	}
	_ = dst[4*len(src)-1]
	d := unsafe.Slice((*uint32)(unsafe.Pointer(unsafe.SliceData(dst))), len(src))
	for i, v := range src {
		d[i] = bits.ReverseBytes32(v)
	}
}

// swapGet64 loads big-endian words from src into dst. len(src) must be
// at least 8*len(dst); the unaligned loads are build-tag guaranteed.
func swapGet64(dst []uint64, src []byte) {
	if len(dst) == 0 {
		return
	}
	_ = src[8*len(dst)-1]
	s := unsafe.Slice((*uint64)(unsafe.Pointer(unsafe.SliceData(src))), len(dst))
	for i, v := range s {
		dst[i] = bits.ReverseBytes64(v)
	}
}

// swapGet32 is the 4-byte-element twin of swapGet64.
func swapGet32(dst []uint32, src []byte) {
	if len(dst) == 0 {
		return
	}
	_ = src[4*len(dst)-1]
	s := unsafe.Slice((*uint32)(unsafe.Pointer(unsafe.SliceData(src))), len(dst))
	for i, v := range s {
		dst[i] = bits.ReverseBytes32(v)
	}
}
