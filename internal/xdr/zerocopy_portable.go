//go:build !amd64 && !arm64

package xdr

// hostZeroCopyCapable is false on architectures that are big-endian or
// fault on unaligned word access; every array codec call takes the
// portable element loop instead. The differential fuzz target holds the
// two paths byte-equivalent, so the choice is invisible on the wire.
const hostZeroCopyCapable = false
