package xdr

// raw.go exposes the bulk numeric-array codec loops (the block fast
// paths behind the XDR array encoders) without the XDR length prefix,
// so other wire formats — notably the SOAP packed-array encoding, which
// carries the same big-endian element bytes in BASE64 text — reuse one
// set of tuned pack/unpack loops instead of growing their own. On
// capable hosts the loops take the same zero-copy word-swap kernels as
// the Encoder/Decoder array paths (zerocopy.go).

import (
	"encoding/binary"
	"fmt"
	"math"
	"slices"

	"harness2/internal/wire"
)

// RawSize returns the packed byte length of a supported numeric array
// value, or -1 when v is not a packable array.
func RawSize(v any) int {
	switch a := v.(type) {
	case []bool:
		return len(a)
	case []int32:
		return 4 * len(a)
	case []int64:
		return 8 * len(a)
	case []float32:
		return 4 * len(a)
	case []float64:
		return 8 * len(a)
	}
	return -1
}

// AppendRaw appends the big-endian raw element bytes of a numeric array
// (no length prefix, no padding) to dst and returns the extended slice.
// Unsupported values append nothing. Like the length-prefixed encoders,
// it grows dst once and block-converts.
func AppendRaw(dst []byte, v any) []byte {
	size := RawSize(v)
	if size <= 0 {
		return dst
	}
	off := len(dst)
	dst = slices.Grow(dst, size)[:off+size]
	out := dst[off:]
	zc := ZeroCopyEnabled()
	switch a := v.(type) {
	case []bool:
		for i := range out {
			out[i] = 0
		}
		for i, x := range a {
			if x {
				out[i] = 1
			}
		}
	case []int32:
		if zc {
			swapPut32(out, i32words(a))
			break
		}
		for i, x := range a {
			binary.BigEndian.PutUint32(out[4*i:], uint32(x))
		}
	case []int64:
		if zc {
			swapPut64(out, i64words(a))
			break
		}
		for i, x := range a {
			binary.BigEndian.PutUint64(out[8*i:], uint64(x))
		}
	case []float32:
		if zc {
			swapPut32(out, f32words(a))
			break
		}
		for i, x := range a {
			binary.BigEndian.PutUint32(out[4*i:], math.Float32bits(x))
		}
	case []float64:
		if zc {
			swapPut64(out, f64words(a))
			break
		}
		for i, x := range a {
			binary.BigEndian.PutUint64(out[8*i:], math.Float64bits(x))
		}
	}
	return dst
}

// UnpackRaw decodes n big-endian elements of the given array kind from
// raw (which must be exactly the packed size) into a freshly allocated
// typed slice — the inverse of AppendRaw. The declared count passes the
// same CheckLen guard as every length prefix in the package.
func UnpackRaw(kind wire.Kind, raw []byte, n int) (any, error) {
	if err := CheckLen(n); err != nil {
		return nil, fmt.Errorf("xdr: raw array of %d elements: %w", n, err)
	}
	zc := ZeroCopyEnabled()
	switch kind {
	case wire.KindBoolArray:
		if len(raw) != n {
			return nil, fmt.Errorf("xdr: bool array length mismatch")
		}
		out := make([]bool, n)
		for i, b := range raw {
			out[i] = b != 0
		}
		return out, nil
	case wire.KindInt32Array:
		if len(raw) != 4*n {
			return nil, fmt.Errorf("xdr: int array length mismatch")
		}
		out := make([]int32, n)
		if zc {
			swapGet32(i32words(out), raw)
			return out, nil
		}
		for i := range out {
			out[i] = int32(binary.BigEndian.Uint32(raw[4*i:]))
		}
		return out, nil
	case wire.KindInt64Array:
		if len(raw) != 8*n {
			return nil, fmt.Errorf("xdr: long array length mismatch")
		}
		out := make([]int64, n)
		if zc {
			swapGet64(i64words(out), raw)
			return out, nil
		}
		for i := range out {
			out[i] = int64(binary.BigEndian.Uint64(raw[8*i:]))
		}
		return out, nil
	case wire.KindFloat32Array:
		if len(raw) != 4*n {
			return nil, fmt.Errorf("xdr: float array length mismatch")
		}
		out := make([]float32, n)
		if zc {
			swapGet32(f32words(out), raw)
			return out, nil
		}
		for i := range out {
			out[i] = math.Float32frombits(binary.BigEndian.Uint32(raw[4*i:]))
		}
		return out, nil
	case wire.KindFloat64Array:
		if len(raw) != 8*n {
			return nil, fmt.Errorf("xdr: double array length mismatch")
		}
		out := make([]float64, n)
		if zc {
			swapGet64(f64words(out), raw)
			return out, nil
		}
		for i := range out {
			out[i] = math.Float64frombits(binary.BigEndian.Uint64(raw[8*i:]))
		}
		return out, nil
	}
	return nil, fmt.Errorf("xdr: cannot unpack kind %v", kind)
}
