package xdr

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"harness2/internal/wire"
)

func TestPrimitiveRoundTrip(t *testing.T) {
	e := NewEncoder(64)
	e.Uint32(0xDEADBEEF)
	e.Int32(-5)
	e.Uint64(0x1122334455667788)
	e.Int64(-9e15)
	e.Bool(true)
	e.Bool(false)
	e.Float32(3.5)
	e.Float64(-2.25)
	e.String("hello")
	e.Opaque([]byte{1, 2, 3})

	d := NewDecoder(e.Bytes())
	if v, _ := d.Uint32(); v != 0xDEADBEEF {
		t.Fatalf("uint32 = %x", v)
	}
	if v, _ := d.Int32(); v != -5 {
		t.Fatalf("int32 = %d", v)
	}
	if v, _ := d.Uint64(); v != 0x1122334455667788 {
		t.Fatalf("uint64 = %x", v)
	}
	if v, _ := d.Int64(); v != -9e15 {
		t.Fatalf("int64 = %d", v)
	}
	if v, _ := d.Bool(); !v {
		t.Fatal("bool true")
	}
	if v, _ := d.Bool(); v {
		t.Fatal("bool false")
	}
	if v, _ := d.Float32(); v != 3.5 {
		t.Fatalf("float32 = %v", v)
	}
	if v, _ := d.Float64(); v != -2.25 {
		t.Fatalf("float64 = %v", v)
	}
	if v, _ := d.String(); v != "hello" {
		t.Fatalf("string = %q", v)
	}
	if v, _ := d.Opaque(); !bytes.Equal(v, []byte{1, 2, 3}) {
		t.Fatalf("opaque = %v", v)
	}
	if d.Remaining() != 0 {
		t.Fatalf("remaining = %d", d.Remaining())
	}
}

func TestPadding(t *testing.T) {
	// RFC 1832: strings/opaque pad to 4-byte alignment with zero bytes.
	for n := 0; n <= 9; n++ {
		e := NewEncoder(32)
		e.String(string(make([]byte, n)))
		want := 4 + (n+3)&^3
		if e.Len() != want {
			t.Errorf("len(enc(string[%d])) = %d, want %d", n, e.Len(), want)
		}
		if e.Len()%4 != 0 {
			t.Errorf("encoding of %d-byte string not 4-aligned", n)
		}
	}
}

func TestKnownEncoding(t *testing.T) {
	// Verify byte-level layout against hand-computed RFC examples.
	e := NewEncoder(16)
	e.Int32(259) // 0x00000103
	if !bytes.Equal(e.Bytes(), []byte{0, 0, 1, 3}) {
		t.Fatalf("int32 layout = %v", e.Bytes())
	}
	e.Reset()
	e.String("ab") // len=2, 'a','b', 2 pad
	if !bytes.Equal(e.Bytes(), []byte{0, 0, 0, 2, 'a', 'b', 0, 0}) {
		t.Fatalf("string layout = %v", e.Bytes())
	}
	e.Reset()
	e.Float64(1.0) // IEEE double 0x3FF0000000000000
	if !bytes.Equal(e.Bytes(), []byte{0x3F, 0xF0, 0, 0, 0, 0, 0, 0}) {
		t.Fatalf("float64 layout = %v", e.Bytes())
	}
}

func TestArraysRoundTrip(t *testing.T) {
	e := NewEncoder(256)
	i32 := []int32{1, -2, 1 << 30}
	i64 := []int64{9e17, -9e17}
	f32 := []float32{1.5, float32(math.NaN())}
	f64 := []float64{math.Pi, math.Inf(1), math.Inf(-1)}
	bs := []bool{true, false, true}
	ss := []string{"", "x", "longer string value"}
	e.Int32Array(i32)
	e.Int64Array(i64)
	e.Float32Array(f32)
	e.Float64Array(f64)
	e.BoolArray(bs)
	e.StringArray(ss)

	d := NewDecoder(e.Bytes())
	gi32, err := d.Int32Array()
	if err != nil || !wire.Equal(gi32, i32) {
		t.Fatalf("int32 array: %v %v", gi32, err)
	}
	gi64, err := d.Int64Array()
	if err != nil || !wire.Equal(gi64, i64) {
		t.Fatalf("int64 array: %v %v", gi64, err)
	}
	gf32, err := d.Float32Array()
	if err != nil || !wire.Equal(gf32, f32) {
		t.Fatalf("float32 array: %v %v", gf32, err)
	}
	gf64, err := d.Float64Array()
	if err != nil || !wire.Equal(gf64, f64) {
		t.Fatalf("float64 array: %v %v", gf64, err)
	}
	gbs, err := d.BoolArray()
	if err != nil || !wire.Equal(gbs, bs) {
		t.Fatalf("bool array: %v %v", gbs, err)
	}
	gss, err := d.StringArray()
	if err != nil || !wire.Equal(gss, ss) {
		t.Fatalf("string array: %v %v", gss, err)
	}
}

func TestDecodeErrors(t *testing.T) {
	d := NewDecoder([]byte{0, 0})
	if _, err := d.Uint32(); err != ErrShortBuffer {
		t.Fatalf("want short buffer, got %v", err)
	}
	d = NewDecoder([]byte{0, 0, 0, 2}) // bool value 2
	if _, err := d.Bool(); err != ErrBadBool {
		t.Fatalf("want bad bool, got %v", err)
	}
	d = NewDecoder([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // absurd length
	if _, err := d.Opaque(); err != ErrTooLarge {
		t.Fatalf("want too large, got %v", err)
	}
	d = NewDecoder([]byte{0, 0, 0, 8, 1, 2}) // declared 8, only 2 present
	if _, err := d.Opaque(); err != ErrShortBuffer {
		t.Fatalf("want short buffer, got %v", err)
	}
	d = NewDecoder([]byte{0, 0, 0, 4, 0, 0}) // float64 array, truncated
	if _, err := d.Float64Array(); err != ErrShortBuffer {
		t.Fatalf("want short buffer, got %v", err)
	}
}

func TestEncodeValueRejectsNonNumeric(t *testing.T) {
	e := NewEncoder(16)
	for _, v := range []any{"string", []string{"a"}, wire.NewStruct("T"), int(1)} {
		if err := EncodeValue(e, v); err == nil {
			t.Errorf("EncodeValue(%T) should fail: XDR binding is numeric-only", v)
		}
	}
}

func TestValueRoundTrip(t *testing.T) {
	vals := []any{
		true, int32(-7), int64(1 << 60), float32(0.5), float64(math.E),
		[]byte{9, 8, 7}, []bool{true}, []int32{1, 2}, []int64{3},
		[]float32{1, 2, 3}, []float64{math.Pi},
	}
	e := NewEncoder(512)
	if err := EncodeValues(e, vals); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeValues(NewDecoder(e.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(vals) {
		t.Fatalf("count %d != %d", len(got), len(vals))
	}
	for i := range vals {
		if !wire.Equal(got[i], vals[i]) {
			t.Errorf("value %d: got %v want %v", i, got[i], vals[i])
		}
	}
}

func TestDecodeValueBadTag(t *testing.T) {
	e := NewEncoder(8)
	e.Uint32(uint32(wire.KindString)) // string tag is not XDR-decodable
	e.String("x")
	if _, err := DecodeValue(NewDecoder(e.Bytes())); err == nil {
		t.Fatal("want error for non-numeric tag")
	}
	e.Reset()
	e.Uint32(999)
	if _, err := DecodeValue(NewDecoder(e.Bytes())); err == nil {
		t.Fatal("want error for unknown tag")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{{}, {1}, {1, 2, 3, 4, 5}, make([]byte, 4096)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range payloads {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("frame mismatch: %d vs %d bytes", len(got), len(p))
		}
	}
}

func TestReadFrameErrors(t *testing.T) {
	if _, err := ReadFrame(bytes.NewReader([]byte{0, 0})); err == nil {
		t.Fatal("truncated header should fail")
	}
	if _, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 9, 1})); err == nil {
		t.Fatal("truncated payload should fail")
	}
	if _, err := ReadFrame(bytes.NewReader([]byte{0xFF, 0xFF, 0xFF, 0xFF})); err != ErrTooLarge {
		t.Fatal("absurd frame length should fail")
	}
}

func TestPropertyScalarRoundTrip(t *testing.T) {
	f := func(i32 int32, i64 int64, f32 float32, f64 float64, b bool, s string, raw []byte) bool {
		e := NewEncoder(64)
		e.Int32(i32)
		e.Int64(i64)
		e.Float32(f32)
		e.Float64(f64)
		e.Bool(b)
		e.String(s)
		e.Opaque(raw)
		d := NewDecoder(e.Bytes())
		gi32, _ := d.Int32()
		gi64, _ := d.Int64()
		gf32, _ := d.Float32()
		gf64, _ := d.Float64()
		gb, _ := d.Bool()
		gs, _ := d.String()
		graw, err := d.Opaque()
		if err != nil {
			return false
		}
		return gi32 == i32 && gi64 == i64 &&
			math.Float32bits(gf32) == math.Float32bits(f32) &&
			math.Float64bits(gf64) == math.Float64bits(f64) &&
			gb == b && gs == s && bytes.Equal(graw, raw) && d.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyFloat64ArrayRoundTrip(t *testing.T) {
	f := func(a []float64) bool {
		e := NewEncoder(8 * len(a))
		e.Float64Array(a)
		if e.Len() != 4+8*len(a) {
			return false // exact size: 4-byte count + 8 bytes per element
		}
		got, err := NewDecoder(e.Bytes()).Float64Array()
		return err == nil && wire.Equal(got, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyValuesNeverPanicOnRandomBytes(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		b := make([]byte, r.Intn(64))
		r.Read(b)
		d := NewDecoder(b)
		// Must terminate with a value or an error, never panic.
		for {
			if _, err := DecodeValue(d); err != nil {
				break
			}
			if d.Remaining() == 0 {
				break
			}
		}
	}
}

func TestDecoderDoesNotAliasInput(t *testing.T) {
	e := NewEncoder(16)
	e.Opaque([]byte{1, 2, 3, 4})
	buf := append([]byte(nil), e.Bytes()...)
	d := NewDecoder(buf)
	got, err := d.Opaque()
	if err != nil {
		t.Fatal(err)
	}
	buf[4] = 0xEE // mutate source after decode
	if got[0] != 1 {
		t.Fatal("decoded opaque must not alias the input buffer")
	}
}
