package xdr

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzXDRV3Differential proves the v3 compressed path is an identity over
// the v2 path for every payload: whatever bytes WriteFrameID/ReadFrameID
// carry, routing the same payload through CompressFrameV3 (forced-on, no
// size floor) → ReadFrameV3 → DecompressFrameV3 — or the raw v3 frame
// when the compressor declines on ratio — must yield byte-identical
// payload and the same request ID.
func FuzzXDRV3Differential(f *testing.F) {
	f.Add(uint64(1), []byte{})
	f.Add(uint64(7), []byte("payload"))
	f.Add(uint64(1<<40), bytes.Repeat([]byte{0xAB, 0xCD}, 4096))
	f.Add(uint64(0), compressible(2048))
	f.Add(uint64(3), incompressible(2048, 9))

	comp := NewCompressor(Flate, false, 1)
	f.Fuzz(func(t *testing.T, id uint64, payload []byte) {
		if len(payload) > MaxLen {
			t.Skip()
		}
		// Reference: the v2 path.
		var v2 bytes.Buffer
		if err := WriteFrameID(&v2, id, payload); err != nil {
			t.Fatalf("v2 encode: %v", err)
		}
		refID, refPayload, err := ReadFrameID(&v2)
		if err != nil {
			t.Fatalf("v2 decode: %v", err)
		}

		// Subject: the v3 path, compressed when the codec saves enough,
		// raw otherwise — exactly the sender's runtime decision.
		frame, enc := comp.CompressFrameV3(id, payload)
		if enc == nil {
			e := GetEncoder()
			e.ReserveFrameHeaderV3()
			copy(e.grow(len(payload)), payload)
			if frame, err = e.FrameBytesV3(id, 0); err != nil {
				t.Fatalf("v3 raw seal: %v", err)
			}
			enc = e
		}
		gotID, flags, wire, err := ReadFrameV3(bytes.NewReader(frame))
		if err != nil {
			t.Fatalf("v3 decode: %v", err)
		}
		got, err := DecompressFrameV3(flags, wire)
		if err != nil {
			t.Fatalf("v3 decompress (flags %d): %v", flags, err)
		}

		if gotID != refID {
			t.Fatalf("id diverged: v3 %d, v2 %d", gotID, refID)
		}
		if !bytes.Equal(got, refPayload) {
			t.Fatalf("payload diverged: v3 %d bytes, v2 %d bytes (flags %d)",
				len(got), len(refPayload), flags)
		}
		if flags != 0 {
			PutFrameBuf(got)
		}
		PutFrameBuf(wire)
		PutFrameBuf(refPayload)
		PutEncoder(enc)
	})
}

// FuzzReadFrameV3 feeds arbitrary byte streams through the v3 header and
// flags decoder, then through payload decompression. Invariants:
//
//   - never panics, never accepts a payload above MaxLen;
//   - an accepted frame obeys its declared wire length exactly;
//   - decompression of a frame whose flags name a codec either fails
//     cleanly or yields exactly the declared uncompressed length.
func FuzzReadFrameV3(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	var seed bytes.Buffer
	{
		frame, enc := NewCompressor(Flate, false, 1).CompressFrameV3(5, compressible(1024))
		if enc != nil {
			seed.Write(frame)
			PutEncoder(enc)
		}
	}
	f.Add(seed.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		id, flags, payload, err := ReadFrameV3(bytes.NewReader(data))
		if err != nil {
			if payload != nil {
				t.Fatalf("payload returned alongside error %v", err)
			}
			return
		}
		_ = id
		if len(payload) > MaxLen {
			t.Fatalf("accepted payload of %d bytes > MaxLen", len(payload))
		}
		declared := binary.BigEndian.Uint32(data[0:4])
		if int(declared) != len(payload) {
			t.Fatalf("declared %d bytes, decoded %d", declared, len(payload))
		}
		out, err := DecompressFrameV3(flags, payload)
		if err == nil && flags != 0 {
			want := binary.BigEndian.Uint32(payload[0:4])
			if uint32(len(out)) != want {
				t.Fatalf("decompressed %d bytes, declared %d", len(out), want)
			}
			PutFrameBuf(out)
		}
		PutFrameBuf(payload)
	})
}
