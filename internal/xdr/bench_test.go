package xdr

import (
	"fmt"
	"testing"
)

// The codec benchmarks document the bulk big-endian fast paths: numeric
// arrays are block-converted into a pre-grown buffer on encode and
// decoded by sub-slicing one bounds-checked region, instead of
// element-at-a-time append/read loops.

func BenchmarkEncodeFloat64Array(b *testing.B) {
	for _, n := range []int{1000, 100000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			data := make([]float64, n)
			for i := range data {
				data[i] = float64(i)
			}
			e := NewEncoder(8*n + 16)
			b.SetBytes(int64(8 * n))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Reset()
				e.Float64Array(data)
			}
		})
	}
}

func BenchmarkDecodeFloat64Array(b *testing.B) {
	for _, n := range []int{1000, 100000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			data := make([]float64, n)
			for i := range data {
				data[i] = float64(i)
			}
			e := NewEncoder(8*n + 16)
			e.Float64Array(data)
			buf := e.Bytes()
			b.SetBytes(int64(8 * n))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d := NewDecoder(buf)
				if _, err := d.Float64Array(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkEncodeInt32Array(b *testing.B) {
	n := 10000
	data := make([]int32, n)
	for i := range data {
		data[i] = int32(i)
	}
	e := NewEncoder(4*n + 16)
	b.SetBytes(int64(4 * n))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Reset()
		e.Int32Array(data)
	}
}

func BenchmarkEncodeFloat32Array(b *testing.B) {
	n := 10000
	data := make([]float32, n)
	for i := range data {
		data[i] = float32(i)
	}
	e := NewEncoder(4*n + 16)
	b.SetBytes(int64(4 * n))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Reset()
		e.Float32Array(data)
	}
}
