//go:build amd64 || arm64

package xdr

// hostZeroCopyCapable marks architectures where the zero-copy numeric
// codec is sound: little-endian byte order (so XDR's big-endian wire
// format is one byte swap away from the in-memory representation) and
// hardware-tolerated unaligned word access (frame payloads sit at
// arbitrary 4-byte offsets, so the word loops read and write uint64s at
// addresses that are not 8-byte aligned).
const hostZeroCopyCapable = true
