package xdr

import (
	"encoding/binary"
	"io"
	"sync"
)

// Wire protocol versions of the XDR socket binding.
//
// v1 (legacy): a connection is a sequence of records, each
//
//	[4-byte big-endian payload length][payload]
//
// with strict request/response alternation — one call in flight per
// connection.
//
// v2 (multiplexed): the client opens the stream with the MagicV2 word,
// after which every frame (in both directions) carries a request ID:
//
//	[4-byte big-endian payload length][8-byte big-endian request id][payload]
//
// Responses echo the request ID of the call they answer and may arrive in
// any order, so many calls can be pipelined over one connection.
//
// v3 (compressed): same request-id framing as v2 plus one flags byte per
// frame carrying the compression codec ID of the payload:
//
//	[4-byte big-endian payload length][8-byte big-endian request id][1-byte flags][payload]
//
// The length word counts the payload as it appears on the wire (after
// compression). Flags 0 means a raw payload; a nonzero low nibble names
// the Codec that compressed it, in which case the payload is
//
//	[4-byte big-endian uncompressed length][codec bytes]
//
// so the receiver can size the destination buffer exactly. The codec is
// negotiated once at dial time: the client opens with MagicV3 followed by
// a 4-byte offered-codec word (bit i set = codec ID i supported; bit 0,
// raw, is always set), the server answers with a 4-byte chosen-codec word
// (the codec ID it will accept and use, 0 = raw only) before its first
// response frame. Whether a given frame is actually compressed remains a
// per-frame sender decision — small or incompressible frames ship raw
// with flags 0.
//
// Version negotiation costs nothing on the wire: MaxLen < MagicV2 <
// MagicV3, so the first word of a connection is unambiguous — a legal v1
// frame length can never collide with either magic, and a server can keep
// serving v1 and v2 clients on the same port.

// MagicV2 is the v2 stream preamble ("HXD2"). It deliberately exceeds
// MaxLen so no v1 frame-length word can be mistaken for it.
const MagicV2 uint32 = 0x48584432

// MagicV3 is the v3 stream preamble ("HXD3"): v2 framing plus a per-frame
// flags byte and dial-time codec negotiation. MaxLen < MagicV2 < MagicV3.
const MagicV3 uint32 = 0x48584433

// MaxArgs bounds the declared argument/result count of one XDR-binding
// call, on both the encode and decode sides. Like MaxLen it guards
// against hostile or corrupt count prefixes.
const MaxArgs = 1 << 16

// maxPooledBuf caps the capacity of buffers retained by the frame and
// encoder pools; anything larger is left to the garbage collector so one
// huge call cannot pin memory forever.
const maxPooledBuf = 32 << 20

// frameBufPool recycles frame payload buffers across reads.
var frameBufPool = sync.Pool{}

// GetFrameBuf returns a length-n byte slice, reusing pooled capacity when
// possible. Pair with PutFrameBuf once the frame is fully decoded.
func GetFrameBuf(n int) []byte {
	if v := frameBufPool.Get(); v != nil {
		b := *(v.(*[]byte))
		if cap(b) >= n {
			return b[:n]
		}
	}
	return make([]byte, n)
}

// PutFrameBuf returns a buffer obtained from GetFrameBuf (or ReadFrameID /
// ReadFramePooled) to the pool. The caller must not touch b afterwards:
// decoded values never alias the frame (the decoder copies), so releasing
// after decode is safe.
func PutFrameBuf(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledBuf {
		return
	}
	b = b[:cap(b)]
	frameBufPool.Put(&b)
}

// encoderPool recycles Encoders across encode calls.
var encoderPool = sync.Pool{
	New: func() any { return NewEncoder(256) },
}

// GetEncoder returns a reset Encoder from the pool.
func GetEncoder() *Encoder {
	e := encoderPool.Get().(*Encoder)
	e.Reset()
	return e
}

// PutEncoder returns an Encoder to the pool. The bytes previously
// returned by e.Bytes() must no longer be referenced.
func PutEncoder(e *Encoder) {
	if cap(e.buf) > maxPooledBuf {
		return
	}
	encoderPool.Put(e)
}

// WriteMagicV2 writes the v2 stream preamble. Clients send it once,
// immediately after connecting, before the first v2 frame.
func WriteMagicV2(w io.Writer) error {
	var word [4]byte
	binary.BigEndian.PutUint32(word[:], MagicV2)
	_, err := w.Write(word[:])
	return err
}

// WriteFrameID writes one v2 frame: length word, request ID, payload.
// Callers that care about syscall count should hand in a *bufio.Writer
// and flush once per frame — header and payload then coalesce into a
// single write on the socket.
func WriteFrameID(w io.Writer, id uint64, payload []byte) error {
	if len(payload) > MaxLen {
		return ErrTooLarge
	}
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint64(hdr[4:12], id)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// WriteMagicV3 writes the v3 stream preamble followed by the offered-codec
// word. Clients send both once, immediately after connecting, before the
// first v3 frame; the server's 4-byte chosen-codec answer precedes its
// first response frame.
func WriteMagicV3(w io.Writer, offer uint32) error {
	var words [8]byte
	binary.BigEndian.PutUint32(words[0:4], MagicV3)
	binary.BigEndian.PutUint32(words[4:8], offer|1) // raw is always on offer
	_, err := w.Write(words[:])
	return err
}

// frameHeaderLen is the size of a v2 frame header: 4-byte length word
// plus 8-byte request ID.
const frameHeaderLen = 12

// frameHeaderLenV3 adds the v3 flags byte.
const frameHeaderLenV3 = 13

// FrameHeaderLenV3 is the v3 frame header size, exported for wire-level
// byte accounting.
const FrameHeaderLenV3 = frameHeaderLenV3

// ReserveFrameHeader appends space for a v2 frame header to a fresh
// encoder. Encode the payload after it, then seal the frame with
// FrameBytes — header and payload then live in one contiguous buffer
// that reaches the socket in a single Write, with no per-frame header
// allocation (a stack [12]byte escapes when passed through io.Writer).
func (e *Encoder) ReserveFrameHeader() {
	_ = e.grow(frameHeaderLen)
}

// FrameBytes patches the reserved header with the payload length and
// request ID and returns the complete wire frame. The encoder must have
// been primed with ReserveFrameHeader before the payload was encoded.
func (e *Encoder) FrameBytes(id uint64) ([]byte, error) {
	n := len(e.buf) - frameHeaderLen
	if n < 0 {
		return nil, ErrShortBuffer // header was never reserved
	}
	if n > MaxLen {
		return nil, ErrTooLarge
	}
	binary.BigEndian.PutUint32(e.buf[0:4], uint32(n))
	binary.BigEndian.PutUint64(e.buf[4:12], id)
	return e.buf, nil
}

// ReserveFrameHeaderV3 appends space for a v3 frame header (v2 header
// plus the flags byte) to a fresh encoder; seal with FrameBytesV3.
func (e *Encoder) ReserveFrameHeaderV3() {
	_ = e.grow(frameHeaderLenV3)
}

// FramePayloadV3 returns the logical payload encoded after a
// ReserveFrameHeaderV3 — what a Compressor consumes when deciding whether
// the frame ships raw or compressed.
func (e *Encoder) FramePayloadV3() []byte {
	if len(e.buf) < frameHeaderLenV3 {
		return nil
	}
	return e.buf[frameHeaderLenV3:]
}

// FrameBytesV3 patches the reserved v3 header with the payload length,
// request ID, and flags byte and returns the complete wire frame. The
// encoder must have been primed with ReserveFrameHeaderV3 before the
// payload was encoded.
func (e *Encoder) FrameBytesV3(id uint64, flags byte) ([]byte, error) {
	n := len(e.buf) - frameHeaderLenV3
	if n < 0 {
		return nil, ErrShortBuffer // header was never reserved
	}
	if n > MaxLen {
		return nil, ErrTooLarge
	}
	binary.BigEndian.PutUint32(e.buf[0:4], uint32(n))
	binary.BigEndian.PutUint64(e.buf[4:12], id)
	e.buf[12] = flags
	return e.buf, nil
}

// ReadFrameV3 reads one v3 frame: request ID, flags byte, and the wire
// payload (still compressed when flags name a codec — see
// DecompressFrameV3). The payload comes from the frame pool; release it
// with PutFrameBuf when fully decoded.
func ReadFrameV3(r io.Reader) (id uint64, flags byte, payload []byte, err error) {
	var hdr [frameHeaderLenV3]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	if n > MaxLen {
		return 0, 0, nil, ErrTooLarge
	}
	id = binary.BigEndian.Uint64(hdr[4:12])
	flags = hdr[12]
	payload = GetFrameBuf(int(n))
	if _, err := io.ReadFull(r, payload); err != nil {
		PutFrameBuf(payload)
		return 0, 0, nil, err
	}
	return id, flags, payload, nil
}

// ReadFrameID reads one v2 frame. The returned payload comes from the
// frame pool; release it with PutFrameBuf when fully decoded.
func ReadFrameID(r io.Reader) (id uint64, payload []byte, err error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	if n > MaxLen {
		return 0, nil, ErrTooLarge
	}
	id = binary.BigEndian.Uint64(hdr[4:12])
	payload = GetFrameBuf(int(n))
	if _, err := io.ReadFull(r, payload); err != nil {
		PutFrameBuf(payload)
		return 0, nil, err
	}
	return id, payload, nil
}

// ReadFramePooled reads one v1 record like ReadFrame but into a pooled
// buffer; release with PutFrameBuf when fully decoded.
func ReadFramePooled(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	return readBody(r, binary.BigEndian.Uint32(hdr[:]))
}

// ReadFramePooledAfterLen finishes a v1 record read whose length word has
// already been consumed — the server's version-sniffing path, where the
// first word of a connection turned out to be a v1 length rather than
// MagicV2.
func ReadFramePooledAfterLen(r io.Reader, n uint32) ([]byte, error) {
	return readBody(r, n)
}

func readBody(r io.Reader, n uint32) ([]byte, error) {
	if n > MaxLen {
		return nil, ErrTooLarge
	}
	payload := GetFrameBuf(int(n))
	if _, err := io.ReadFull(r, payload); err != nil {
		PutFrameBuf(payload)
		return nil, err
	}
	return payload, nil
}
