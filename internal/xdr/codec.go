package xdr

// Per-frame compression for the v3 wire protocol (DESIGN.md S33).
//
// A Codec is a table entry, not a fork: the flags byte of every v3 frame
// names the codec that compressed its payload (0 = raw), the dial-time
// offer/answer words carry codec IDs as a bitmask, and both sides resolve
// IDs through the same registry. Compression is a sender-side, per-frame
// decision made by a Compressor: frames below a size floor or that prove
// incompressible ship raw with flags 0, so the no-compression path costs
// nothing beyond one branch and the receiver never needs to know the
// sender's policy.

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"io"
	"sync"
)

// ErrBadCodec reports a v3 frame whose flags byte names a codec this
// process does not implement — a protocol error, since the receiver only
// ever advertises codecs it has registered.
var ErrBadCodec = errors.New("xdr: unknown compression codec")

// ErrCodecData reports a compressed payload that does not decompress to
// exactly its declared uncompressed length.
var ErrCodecData = errors.New("xdr: corrupt compressed payload")

// Codec compresses and decompresses v3 frame payloads. Implementations
// must be safe for concurrent use; the flate codec pools its stream state.
type Codec interface {
	// ID is the codec's wire identity: the v3 flags byte of frames it
	// compressed, and its bit position in the offer/answer words. Must be
	// in [1, 15]; 0 is the raw (identity) pseudo-codec.
	ID() uint8
	// Name is the codec's capability name as advertised in WSDL.
	Name() string
	// AppendCompress appends the compressed form of src to e.
	AppendCompress(e *Encoder, src []byte) error
	// DecompressInto decompresses src into dst, which has exactly the
	// declared uncompressed length; any mismatch is an error.
	DecompressInto(dst, src []byte) error
}

// maxCodecID bounds registered codec IDs to the low nibble of the flags
// byte; the high nibble is reserved.
const maxCodecID = 15

var (
	codecMu  sync.RWMutex
	codecTab [maxCodecID + 1]Codec
)

// RegisterCodec adds a codec to the registry. ID 0 and duplicate IDs
// panic: the table is wire protocol, not configuration.
func RegisterCodec(c Codec) {
	id := c.ID()
	if id == 0 || id > maxCodecID {
		panic("xdr: codec ID out of range")
	}
	codecMu.Lock()
	defer codecMu.Unlock()
	if codecTab[id] != nil {
		panic("xdr: duplicate codec ID")
	}
	codecTab[id] = c
}

// CodecByID resolves a flags byte / negotiated codec ID; nil when unknown
// or 0 (raw).
func CodecByID(id uint8) Codec {
	if id == 0 || id > maxCodecID {
		return nil
	}
	codecMu.RLock()
	defer codecMu.RUnlock()
	return codecTab[id]
}

// CodecByName resolves a WSDL capability name; nil when unknown.
func CodecByName(name string) Codec {
	codecMu.RLock()
	defer codecMu.RUnlock()
	for _, c := range codecTab {
		if c != nil && c.Name() == name {
			return c
		}
	}
	return nil
}

// OfferWord builds the dial-time offered-codec bitmask for a set of
// codecs. Bit 0 (raw) is always set.
func OfferWord(cs ...Codec) uint32 {
	w := uint32(1)
	for _, c := range cs {
		if c != nil {
			w |= 1 << c.ID()
		}
	}
	return w
}

// ChooseCodec picks the server's answer from a client's offer word,
// masked by the codecs the server accepts: the highest registered codec
// ID present in both. Nil means raw only (answer word 0).
func ChooseCodec(offer, accept uint32) Codec {
	for id := maxCodecID; id >= 1; id-- {
		if offer&accept&(1<<uint(id)) != 0 {
			if c := CodecByID(uint8(id)); c != nil {
				return c
			}
		}
	}
	return nil
}

// CodecFlate is the wire ID of the stdlib DEFLATE codec.
const CodecFlate uint8 = 1

// Flate is the built-in DEFLATE codec (compress/flate, BestSpeed), always
// registered.
var Flate Codec = flateCodec{}

func init() { RegisterCodec(Flate) }

type flateCodec struct{}

func (flateCodec) ID() uint8    { return CodecFlate }
func (flateCodec) Name() string { return "flate" }

// flateWriters pools *flate.Writer stream state (the dominant cost of a
// fresh writer is its ~64 KiB of window/huffman tables).
var flateWriters = sync.Pool{
	New: func() any {
		w, _ := flate.NewWriter(io.Discard, flate.BestSpeed)
		return w
	},
}

// flateReaders pools decompressor state together with the bytes.Reader
// that feeds it, so a decode allocates nothing in steady state.
type flateReader struct {
	br bytes.Reader
	fr io.ReadCloser
}

var flateReaders = sync.Pool{
	New: func() any {
		r := &flateReader{}
		r.fr = flate.NewReader(&r.br)
		return r
	},
}

// encSink adapts an Encoder into the io.Writer a flate.Writer needs.
type encSink struct{ e *Encoder }

func (s encSink) Write(p []byte) (int, error) {
	copy(s.e.grow(len(p)), p)
	return len(p), nil
}

func (flateCodec) AppendCompress(e *Encoder, src []byte) error {
	fw := flateWriters.Get().(*flate.Writer)
	fw.Reset(encSink{e})
	if _, err := fw.Write(src); err != nil {
		flateWriters.Put(fw)
		return err
	}
	err := fw.Close()
	flateWriters.Put(fw)
	return err
}

func (flateCodec) DecompressInto(dst, src []byte) error {
	r := flateReaders.Get().(*flateReader)
	defer flateReaders.Put(r)
	r.br.Reset(src)
	if err := r.fr.(flate.Resetter).Reset(&r.br, nil); err != nil {
		return err
	}
	if _, err := io.ReadFull(r.fr, dst); err != nil {
		return ErrCodecData
	}
	// The stream must end exactly at the declared length: trailing bytes
	// mean the sender lied about the uncompressed size.
	var one [1]byte
	if n, _ := r.fr.Read(one[:]); n != 0 {
		return ErrCodecData
	}
	return nil
}

// Adaptive-compression policy constants.
const (
	// CompressMinLen is the default size floor: frames smaller than this
	// ship raw without consulting the codec — compression overhead
	// (headers plus CPU) exceeds any plausible saving.
	CompressMinLen = 512
	// adaptiveStreak is how many consecutive incompressible frames put an
	// adaptive compressor into probing mode.
	adaptiveStreak = 4
	// adaptiveProbeEvery is how often a probing compressor re-attempts
	// compression; the frames in between ship raw at branch cost.
	adaptiveProbeEvery = 16
)

// Compressor applies one negotiated codec to outbound v3 frames with a
// per-frame ship-raw/ship-compressed decision. In adaptive mode a run of
// incompressible frames backs the compressor off to sampling, so random
// payloads pay flate CPU on at most 1-in-16 frames; a frame that does
// compress snaps it back to trying every frame. Safe for concurrent use
// (the v2/v3 server compresses responses from many workers).
type Compressor struct {
	codec    Codec
	adaptive bool
	minLen   int

	mu     sync.Mutex
	streak int // consecutive incompressible attempts
	skip   int // raw frames remaining before the next probe
}

// NewCompressor returns a compressor for one negotiated codec. adaptive
// enables the incompressibility backoff; minLen ≤ 0 selects
// CompressMinLen.
func NewCompressor(c Codec, adaptive bool, minLen int) *Compressor {
	if c == nil {
		return nil
	}
	if minLen <= 0 {
		minLen = CompressMinLen
	}
	return &Compressor{codec: c, adaptive: adaptive, minLen: minLen}
}

// Codec returns the compressor's negotiated codec.
func (c *Compressor) Codec() Codec {
	if c == nil {
		return nil
	}
	return c.codec
}

// CompressFrameV3 builds a complete compressed v3 frame for the given
// request ID and logical payload, returning the wire bytes and the pooled
// encoder that owns them (release with PutEncoder after writing). It
// returns (nil, nil) when the frame should ship raw instead: compressor
// off, payload under the size floor, adaptive backoff skipping this
// frame, or compression not saving at least 1/8 of the payload.
func (c *Compressor) CompressFrameV3(id uint64, payload []byte) ([]byte, *Encoder) {
	if c == nil || len(payload) < c.minLen || len(payload) > MaxLen {
		return nil, nil
	}
	if !c.tryNow() {
		return nil, nil
	}
	e := GetEncoder()
	e.ReserveFrameHeaderV3()
	e.Uint32(uint32(len(payload)))
	if err := c.codec.AppendCompress(e, payload); err != nil {
		PutEncoder(e)
		c.record(false)
		return nil, nil
	}
	wire := e.Len() - frameHeaderLenV3
	if wire > MaxLen || wire >= len(payload)-len(payload)/8 {
		PutEncoder(e)
		c.record(false)
		return nil, nil
	}
	frame, err := e.FrameBytesV3(id, c.codec.ID())
	if err != nil {
		PutEncoder(e)
		return nil, nil
	}
	c.record(true)
	return frame, e
}

func (c *Compressor) tryNow() bool {
	if !c.adaptive {
		return true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.skip > 0 {
		c.skip--
		return false
	}
	return true
}

func (c *Compressor) record(compressed bool) {
	if !c.adaptive {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if compressed {
		c.streak = 0
		return
	}
	c.streak++
	if c.streak >= adaptiveStreak {
		c.skip = adaptiveProbeEvery - 1
	}
}

// DecompressFrameV3 resolves a v3 frame payload according to its flags
// byte. Flags 0 returns the payload unchanged; otherwise it returns the
// decompressed payload in a fresh pooled buffer (the caller still owns
// the input buffer and should release both).
func DecompressFrameV3(flags byte, payload []byte) ([]byte, error) {
	if flags == 0 {
		return payload, nil
	}
	c := CodecByID(flags)
	if c == nil {
		return nil, ErrBadCodec
	}
	if len(payload) < 4 {
		return nil, ErrShortBuffer
	}
	n := binary.BigEndian.Uint32(payload[:4])
	if n > MaxLen {
		return nil, ErrTooLarge
	}
	dst := GetFrameBuf(int(n))
	if err := c.DecompressInto(dst, payload[4:]); err != nil {
		PutFrameBuf(dst)
		return nil, err
	}
	return dst, nil
}
