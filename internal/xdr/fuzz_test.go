package xdr

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
)

// FuzzReadFrameID feeds arbitrary byte streams through the v2 framed
// header decoder. Invariants under fuzzing:
//
//   - never panics, never allocates more than MaxLen for a payload;
//   - any frame it accepts obeys the declared length exactly;
//   - a frame produced by WriteFrameID round-trips to the same id and
//     payload (self-consistency of the codec pair).
func FuzzReadFrameID(f *testing.F) {
	// Seed corpus: empty, truncated header, zero-length frame, small
	// frame, oversized length word, and the magic preamble itself.
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	var small bytes.Buffer
	if err := WriteFrameID(&small, 7, []byte("payload")); err != nil {
		f.Fatal(err)
	}
	f.Add(small.Bytes())
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0, 0, 0, 0, 0})
	magic := make([]byte, 4)
	binary.BigEndian.PutUint32(magic, MagicV2)
	f.Add(magic)

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		id, payload, err := ReadFrameID(r)
		if err != nil {
			if payload != nil {
				t.Fatalf("payload %d bytes returned alongside error %v", len(payload), err)
			}
			return
		}
		// Accepted frame: the declared length must match what was read
		// and stay under the guard.
		if len(payload) > MaxLen {
			t.Fatalf("accepted payload of %d bytes > MaxLen", len(payload))
		}
		declared := binary.BigEndian.Uint32(data[0:4])
		if int(declared) != len(payload) {
			t.Fatalf("declared %d bytes, decoded %d", declared, len(payload))
		}
		if !bytes.Equal(payload, data[12:12+len(payload)]) {
			t.Fatal("payload does not match wire bytes")
		}

		// Round-trip: re-encode and decode again; id and payload must
		// survive.
		var buf bytes.Buffer
		if err := WriteFrameID(&buf, id, payload); err != nil {
			t.Fatalf("re-encode of accepted frame failed: %v", err)
		}
		id2, payload2, err := ReadFrameID(&buf)
		if err != nil {
			t.Fatalf("round-trip decode failed: %v", err)
		}
		if id2 != id || !bytes.Equal(payload2, payload) {
			t.Fatalf("round-trip mismatch: id %d→%d", id, id2)
		}
		PutFrameBuf(payload2)
		PutFrameBuf(payload)
	})
}

// FuzzDecoderArrays drives the bulk-array decode fast paths with random
// input: no input may panic or read out of bounds.
func FuzzDecoderArrays(f *testing.F) {
	e := NewEncoder(64)
	e.Float64Array([]float64{1.5, -2.25, 3})
	e.Int32Array([]int32{1, 2, 3, 4})
	f.Add(e.Bytes())
	f.Add([]byte{0, 0, 0, 5})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, dec := range []func(*Decoder) (any, error){
			func(d *Decoder) (any, error) { return d.Float64Array() },
			func(d *Decoder) (any, error) { return d.Float32Array() },
			func(d *Decoder) (any, error) { return d.Int64Array() },
			func(d *Decoder) (any, error) { return d.Int32Array() },
			func(d *Decoder) (any, error) { return d.BoolArray() },
			func(d *Decoder) (any, error) { return d.String() },
		} {
			d := NewDecoder(data)
			_, _ = dec(d)
		}
	})
}

// TestReadFrameIDTruncated exercises every truncation point of a valid
// frame deterministically (the fuzz seeds only cover a handful).
func TestReadFrameIDTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrameID(&buf, 42, []byte("abcdefgh")); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for i := 0; i < len(full); i++ {
		_, _, err := ReadFrameID(bytes.NewReader(full[:i]))
		if err == nil {
			t.Fatalf("truncation at %d/%d accepted", i, len(full))
		}
		if err != io.EOF && err != io.ErrUnexpectedEOF && err != ErrTooLarge {
			t.Fatalf("truncation at %d: unexpected error %v", i, err)
		}
	}
	id, payload, err := ReadFrameID(bytes.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	if id != 42 || string(payload) != "abcdefgh" {
		t.Fatalf("id=%d payload=%q", id, payload)
	}
}
