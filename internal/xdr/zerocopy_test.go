package xdr

import (
	"bytes"
	"math"
	"testing"

	"harness2/internal/wire"
)

// withZeroCopy runs fn with the zero-copy fast paths forced to the given
// setting and restores the previous setting afterwards.
func withZeroCopy(t *testing.T, on bool, fn func()) {
	t.Helper()
	prev := SetZeroCopy(on)
	defer SetZeroCopy(prev)
	fn()
}

// TestZeroCopyMatchesPortableEncode holds the fast and portable array
// encoders byte-equivalent on a deterministic sweep of sizes, including
// the special values (NaN payloads, infinities, signed zero) where a
// bit-level divergence would be invisible to a value comparison.
func TestZeroCopyMatchesPortableEncode(t *testing.T) {
	if !hostZeroCopyCapable {
		t.Skip("host has no zero-copy fast path")
	}
	specials := []float64{0, math.Copysign(0, -1), math.Inf(1), math.Inf(-1),
		math.NaN(), math.Float64frombits(0x7ff8_dead_beef_0001), math.MaxFloat64, math.SmallestNonzeroFloat64}
	for _, n := range []int{0, 1, 2, 3, 7, 8, 9, 63, 64, 65, 1024} {
		f64 := make([]float64, n)
		f32 := make([]float32, n)
		i64 := make([]int64, n)
		i32 := make([]int32, n)
		for i := range f64 {
			f64[i] = specials[i%len(specials)] * float64(i+1)
			f32[i] = float32(f64[i])
			i64[i] = int64(i*0x0123_4567_89ab) - int64(n)
			i32[i] = int32(i*0x1234_567) - int32(n)
		}
		var fast, portable []byte
		encode := func() []byte {
			e := NewEncoder(64)
			e.Float64Array(f64)
			e.Float32Array(f32)
			e.Int64Array(i64)
			e.Int32Array(i32)
			raw := AppendRaw(nil, f64)
			raw = AppendRaw(raw, f32)
			raw = AppendRaw(raw, i64)
			raw = AppendRaw(raw, i32)
			return append(e.Bytes(), raw...)
		}
		withZeroCopy(t, true, func() { fast = encode() })
		withZeroCopy(t, false, func() { portable = encode() })
		if !bytes.Equal(fast, portable) {
			t.Fatalf("n=%d: fast and portable encodings differ", n)
		}
	}
}

// TestZeroCopyMatchesPortableDecode drives the same wire bytes through
// both decode implementations and requires bit-identical results.
func TestZeroCopyMatchesPortableDecode(t *testing.T) {
	if !hostZeroCopyCapable {
		t.Skip("host has no zero-copy fast path")
	}
	e := NewEncoder(64)
	f64 := []float64{1.5, math.NaN(), math.Inf(-1), -0.0, 1e300}
	i32 := []int32{-1, 0, 1, math.MaxInt32, math.MinInt32}
	e.Float64Array(f64)
	e.Int32Array(i32)
	data := e.Bytes()

	decode := func() ([]float64, []int32) {
		d := NewDecoder(data)
		a, err := d.Float64Array()
		if err != nil {
			t.Fatal(err)
		}
		b, err := d.Int32Array()
		if err != nil {
			t.Fatal(err)
		}
		return a, b
	}
	var fa []float64
	var fb []int32
	var pa []float64
	var pb []int32
	withZeroCopy(t, true, func() { fa, fb = decode() })
	withZeroCopy(t, false, func() { pa, pb = decode() })
	if !wire.Equal(fa, pa) || !wire.Equal(fb, pb) {
		t.Fatal("fast and portable decodes differ")
	}
	for i := range fa {
		if math.Float64bits(fa[i]) != math.Float64bits(pa[i]) {
			t.Fatalf("element %d: bit patterns differ", i)
		}
	}
}

// TestDecodeIntoReusesCapacity checks the decode-into contract: a
// destination with enough capacity is reused in place (no allocation),
// an undersized one is replaced.
func TestDecodeIntoReusesCapacity(t *testing.T) {
	e := NewEncoder(64)
	want := []float64{1, 2, 3, 4}
	e.Float64Array(want)
	data := e.Bytes()

	dst := make([]float64, 0, 16)
	d := NewDecoder(data)
	got, err := d.Float64ArrayInto(dst)
	if err != nil {
		t.Fatal(err)
	}
	if !wire.Equal(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
	if &got[0] != &dst[:1][0] {
		t.Fatal("decode-into did not reuse caller capacity")
	}

	// Undersized destination: must grow, still correct.
	d = NewDecoder(data)
	got, err = d.Float64ArrayInto(make([]float64, 0, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !wire.Equal(got, want) {
		t.Fatalf("grown decode got %v want %v", got, want)
	}

	// Steady state after the first call is allocation-free.
	allocs := testing.AllocsPerRun(100, func() {
		d := NewDecoder(data)
		if _, err := d.Float64ArrayInto(got); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("decode-into allocated %.1f times per run", allocs)
	}
}

// TestEncodeArraysZeroAlloc pins the zero-copy claim the E16 gate
// measures: array encoding into a pre-grown encoder performs no
// allocations.
func TestEncodeArraysZeroAlloc(t *testing.T) {
	a := make([]float64, 512)
	for i := range a {
		a[i] = float64(i) * 1.000001
	}
	e := NewEncoder(8 * len(a) * 2)
	allocs := testing.AllocsPerRun(100, func() {
		e.Reset()
		e.Float64Array(a)
	})
	if allocs != 0 {
		t.Fatalf("encode allocated %.1f times per run", allocs)
	}
}

// TestCheckLen pins the unified length guard shared by the length-prefix
// decoder, the value encoder, and the raw unpacker (satellite of S30:
// previously xdr.go and raw.go each had their own partial check).
func TestCheckLen(t *testing.T) {
	for _, n := range []int{0, 1, MaxLen} {
		if err := CheckLen(n); err != nil {
			t.Fatalf("CheckLen(%d) = %v", n, err)
		}
	}
	for _, n := range []int{-1, MaxLen + 1, math.MaxInt} {
		if err := CheckLen(n); err == nil {
			t.Fatalf("CheckLen(%d) accepted", n)
		}
	}

	// Decode side: a declared length just over the guard is rejected
	// before any allocation happens.
	e := NewEncoder(8)
	e.Uint32(uint32(MaxLen + 1))
	d := NewDecoder(e.Bytes())
	if _, err := d.Float64Array(); err == nil {
		t.Fatal("oversized declared length accepted by decoder")
	}

	// Raw side: UnpackRaw shares the same guard.
	if _, err := UnpackRaw(wire.KindFloat64Array, nil, MaxLen+1); err == nil {
		t.Fatal("oversized count accepted by UnpackRaw")
	}
	if _, err := UnpackRaw(wire.KindFloat64Array, nil, -1); err == nil {
		t.Fatal("negative count accepted by UnpackRaw")
	}
}

// TestRawRoundTripBothPaths round-trips AppendRaw/UnpackRaw under both
// implementations.
func TestRawRoundTripBothPaths(t *testing.T) {
	values := []any{
		[]bool{true, false, true},
		[]int32{-5, 0, 5, math.MinInt32},
		[]int64{-5e12, 0, 5e12},
		[]float32{1.5, float32(math.Inf(1)), -0},
		[]float64{math.NaN(), 2.5, -1e300},
	}
	for _, on := range []bool{true, false} {
		withZeroCopy(t, on, func() {
			for _, v := range values {
				raw := AppendRaw(nil, v)
				k := wire.KindOf(v)
				got, err := UnpackRaw(k, raw, reflectLen(v))
				if err != nil {
					t.Fatalf("zc=%v kind=%v: %v", on, k, err)
				}
				if !wire.Equal(got, v) {
					t.Fatalf("zc=%v kind=%v: got %v want %v", on, k, got, v)
				}
			}
		})
	}
}

func reflectLen(v any) int {
	switch a := v.(type) {
	case []bool:
		return len(a)
	case []int32:
		return len(a)
	case []int64:
		return len(a)
	case []float32:
		return len(a)
	case []float64:
		return len(a)
	}
	return 0
}
