package xdr

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"harness2/internal/wire"
)

// FuzzXDRZeroCopyDifferential holds the zero-copy word-swap codec and
// the portable per-element loops byte-equivalent on arbitrary inputs —
// the same differential harness that guards internal/soap's fast
// decoder. The fuzzer interprets the input bytes as raw element storage
// for each array type in turn, encodes through both implementations,
// requires identical wire bytes, then decodes through both and requires
// bit-identical values (NaN payloads included).
func FuzzXDRZeroCopyDifferential(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	seed := make([]byte, 8*9)
	for i, v := range []float64{0, math.Copysign(0, -1), 1.5, -2.25,
		math.Inf(1), math.Inf(-1), math.NaN(), math.MaxFloat64, math.SmallestNonzeroFloat64} {
		binary.LittleEndian.PutUint64(seed[8*i:], math.Float64bits(v))
	}
	f.Add(seed)
	f.Add(bytes.Repeat([]byte{0xFF}, 4*33))

	f.Fuzz(func(t *testing.T, data []byte) {
		if !hostZeroCopyCapable {
			t.Skip("host has no zero-copy fast path")
		}
		f64 := make([]float64, len(data)/8)
		i64 := make([]int64, len(data)/8)
		f32 := make([]float32, len(data)/4)
		i32 := make([]int32, len(data)/4)
		for i := range f64 {
			w := binary.LittleEndian.Uint64(data[8*i:])
			f64[i] = math.Float64frombits(w)
			i64[i] = int64(w)
		}
		for i := range f32 {
			w := binary.LittleEndian.Uint32(data[4*i:])
			f32[i] = math.Float32frombits(w)
			i32[i] = int32(w)
		}

		encode := func() []byte {
			e := NewEncoder(64)
			e.Float64Array(f64)
			e.Int64Array(i64)
			e.Float32Array(f32)
			e.Int32Array(i32)
			raw := AppendRaw(nil, f64)
			raw = AppendRaw(raw, i32)
			return append(e.Bytes(), raw...)
		}
		prev := SetZeroCopy(true)
		fast := encode()
		SetZeroCopy(false)
		portable := encode()
		SetZeroCopy(prev)
		if !bytes.Equal(fast, portable) {
			t.Fatalf("encode divergence on %d input bytes", len(data))
		}

		// Decode side: run the shared wire bytes through both paths.
		wireLen := 4 + 8*len(f64) + 4 + 8*len(i64) + 4 + 4*len(f32) + 4 + 4*len(i32)
		decode := func() []any {
			d := NewDecoder(fast[:wireLen])
			a, err := d.Float64Array()
			if err != nil {
				t.Fatal(err)
			}
			b, err := d.Int64Array()
			if err != nil {
				t.Fatal(err)
			}
			c, err := d.Float32Array()
			if err != nil {
				t.Fatal(err)
			}
			e, err := d.Int32Array()
			if err != nil {
				t.Fatal(err)
			}
			return []any{a, b, c, e}
		}
		prev = SetZeroCopy(true)
		fd := decode()
		SetZeroCopy(false)
		pd := decode()
		SetZeroCopy(prev)
		for i := range fd {
			if !wire.Equal(fd[i], pd[i]) {
				t.Fatalf("decode divergence in field %d", i)
			}
		}
		// wire.Equal treats all NaNs alike; pin exact bit patterns too.
		ffast, fport := fd[0].([]float64), pd[0].([]float64)
		for i := range ffast {
			if math.Float64bits(ffast[i]) != math.Float64bits(fport[i]) {
				t.Fatalf("float64[%d] bit patterns differ", i)
			}
		}
		if len(f64) > 0 {
			if got := fd[0].([]float64); math.Float64bits(got[0]) != math.Float64bits(f64[0]) {
				t.Fatalf("round-trip lost first element bit pattern")
			}
		}
	})
}
