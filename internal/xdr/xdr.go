// Package xdr implements the External Data Representation standard
// (RFC 1832 / RFC 4506) subset needed by the HARNESS II XDR binding:
// 32/64-bit integers, IEEE single and double floats, booleans, strings,
// variable-length opaque data, and variable-length arrays of those.
//
// The paper's XDR binding "is designed to be limited to the transfer of
// numerical data. As such, the only type of complex data available is the
// array" — this package enforces exactly that boundary when used through
// EncodeValue/DecodeValue, while the lower-level Encoder/Decoder expose
// the primitive XDR grammar.
//
// All quantities are big-endian and padded to 4-byte alignment, per the
// standard.
package xdr

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"slices"

	"harness2/internal/wire"
)

// Errors returned by the decoder.
var (
	ErrShortBuffer = errors.New("xdr: short buffer")
	ErrBadBool     = errors.New("xdr: boolean not 0 or 1")
	ErrTooLarge    = errors.New("xdr: declared length exceeds limit")
)

// MaxLen bounds any single declared string/opaque/array length to guard
// against hostile or corrupt length prefixes (256 Mi elements).
const MaxLen = 1 << 28

// CheckLen is the one guard every declared element count passes through,
// on both sides of the wire: the decoder's length prefixes, EncodeValue's
// outgoing array/opaque/string lengths, and the raw.go bulk helpers all
// funnel here, so the overflow rules cannot drift apart again. It rejects
// negative counts and anything above MaxLen — which also proves the count
// fits a uint32, making the uint32(n) length-word conversions lossless.
func CheckLen(n int) error {
	if n < 0 || n > MaxLen {
		return ErrTooLarge
	}
	return nil
}

// Encoder appends XDR-encoded primitives to an internal buffer.
// The zero value is ready to use.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder with the given initial capacity.
func NewEncoder(capacity int) *Encoder {
	return &Encoder{buf: make([]byte, 0, capacity)}
}

// Bytes returns the encoded buffer. The slice is owned by the encoder
// until Reset is called.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of encoded bytes.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset truncates the buffer for reuse, retaining capacity.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Uint32 encodes a 32-bit unsigned integer.
func (e *Encoder) Uint32(v uint32) {
	e.buf = binary.BigEndian.AppendUint32(e.buf, v)
}

// Int32 encodes a 32-bit signed integer.
func (e *Encoder) Int32(v int32) { e.Uint32(uint32(v)) }

// Uint64 encodes an unsigned hyper integer.
func (e *Encoder) Uint64(v uint64) {
	e.buf = binary.BigEndian.AppendUint64(e.buf, v)
}

// Int64 encodes a hyper integer.
func (e *Encoder) Int64(v int64) { e.Uint64(uint64(v)) }

// Bool encodes a boolean as an int32 0 or 1.
func (e *Encoder) Bool(v bool) {
	if v {
		e.Uint32(1)
	} else {
		e.Uint32(0)
	}
}

// Float32 encodes an IEEE 754 single-precision float.
func (e *Encoder) Float32(v float32) { e.Uint32(math.Float32bits(v)) }

// Float64 encodes an IEEE 754 double-precision float.
func (e *Encoder) Float64(v float64) { e.Uint64(math.Float64bits(v)) }

// Opaque encodes variable-length opaque data: a length word followed by
// the bytes, zero-padded to a 4-byte boundary.
func (e *Encoder) Opaque(b []byte) {
	e.Uint32(uint32(len(b)))
	e.buf = append(e.buf, b...)
	e.pad(len(b))
}

// String encodes a string as variable-length opaque data.
func (e *Encoder) String(s string) {
	e.Uint32(uint32(len(s)))
	e.buf = append(e.buf, s...)
	e.pad(len(s))
}

func (e *Encoder) pad(n int) {
	for n%4 != 0 {
		e.buf = append(e.buf, 0)
		n++
	}
}

// grow widens the buffer by n bytes in one step and returns the
// sub-slice to fill — the block fast path shared by the numeric array
// encoders, replacing per-element append (and its repeated capacity
// checks) with a single capacity check and a tight fill loop.
func (e *Encoder) grow(n int) []byte {
	off := len(e.buf)
	e.buf = slices.Grow(e.buf, n)[:off+n]
	return e.buf[off : off+n : off+n]
}

// Int32Array encodes a variable-length array of int32 with a single
// buffer grow and block big-endian conversion (zero-copy word swap on
// capable hosts).
func (e *Encoder) Int32Array(a []int32) {
	e.Uint32(uint32(len(a)))
	dst := e.grow(4 * len(a))
	if ZeroCopyEnabled() {
		swapPut32(dst, i32words(a))
		return
	}
	for i, v := range a {
		binary.BigEndian.PutUint32(dst[4*i:], uint32(v))
	}
}

// Int64Array encodes a variable-length array of hyper with a single
// buffer grow and block big-endian conversion (zero-copy word swap on
// capable hosts).
func (e *Encoder) Int64Array(a []int64) {
	e.Uint32(uint32(len(a)))
	dst := e.grow(8 * len(a))
	if ZeroCopyEnabled() {
		swapPut64(dst, i64words(a))
		return
	}
	for i, v := range a {
		binary.BigEndian.PutUint64(dst[8*i:], uint64(v))
	}
}

// Float32Array encodes a variable-length array of single floats with a
// single buffer grow and block big-endian conversion (zero-copy word swap
// on capable hosts).
func (e *Encoder) Float32Array(a []float32) {
	e.Uint32(uint32(len(a)))
	dst := e.grow(4 * len(a))
	if ZeroCopyEnabled() {
		swapPut32(dst, f32words(a))
		return
	}
	for i, v := range a {
		binary.BigEndian.PutUint32(dst[4*i:], math.Float32bits(v))
	}
}

// Float64Array encodes a variable-length array of double floats. This is
// the hot path of the XDR binding; it widens the buffer once then fills —
// on capable hosts by reinterpreting the array's backing store and
// byte-swapping whole words (zerocopy.go), with the element loop kept as
// the portable fallback.
func (e *Encoder) Float64Array(a []float64) {
	e.Uint32(uint32(len(a)))
	dst := e.grow(8 * len(a))
	if ZeroCopyEnabled() {
		swapPut64(dst, f64words(a))
		return
	}
	for i, v := range a {
		binary.BigEndian.PutUint64(dst[8*i:], math.Float64bits(v))
	}
}

// BoolArray encodes a variable-length array of booleans.
func (e *Encoder) BoolArray(a []bool) {
	e.Uint32(uint32(len(a)))
	dst := e.grow(4 * len(a))
	for i, v := range a {
		var w uint32
		if v {
			w = 1
		}
		binary.BigEndian.PutUint32(dst[4*i:], w)
	}
}

// StringArray encodes a variable-length array of strings.
func (e *Encoder) StringArray(a []string) {
	e.Uint32(uint32(len(a)))
	for _, v := range a {
		e.String(v)
	}
}

// Decoder consumes XDR primitives from a byte slice.
type Decoder struct {
	buf []byte
	off int
}

// NewDecoder returns a decoder over buf. The decoder does not copy buf.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Uint32 decodes a 32-bit unsigned integer.
func (d *Decoder) Uint32() (uint32, error) {
	if d.Remaining() < 4 {
		return 0, ErrShortBuffer
	}
	v := binary.BigEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v, nil
}

// Int32 decodes a 32-bit signed integer.
func (d *Decoder) Int32() (int32, error) {
	v, err := d.Uint32()
	return int32(v), err
}

// Uint64 decodes an unsigned hyper integer.
func (d *Decoder) Uint64() (uint64, error) {
	if d.Remaining() < 8 {
		return 0, ErrShortBuffer
	}
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v, nil
}

// Int64 decodes a hyper integer.
func (d *Decoder) Int64() (int64, error) {
	v, err := d.Uint64()
	return int64(v), err
}

// Bool decodes a boolean, rejecting any value other than 0 or 1.
func (d *Decoder) Bool() (bool, error) {
	v, err := d.Uint32()
	if err != nil {
		return false, err
	}
	switch v {
	case 0:
		return false, nil
	case 1:
		return true, nil
	}
	return false, ErrBadBool
}

// Float32 decodes a single-precision float.
func (d *Decoder) Float32() (float32, error) {
	v, err := d.Uint32()
	return math.Float32frombits(v), err
}

// Float64 decodes a double-precision float.
func (d *Decoder) Float64() (float64, error) {
	v, err := d.Uint64()
	return math.Float64frombits(v), err
}

func (d *Decoder) declaredLen() (int, error) {
	n, err := d.Uint32()
	if err != nil {
		return 0, err
	}
	if err := CheckLen(int(n)); err != nil {
		return 0, err
	}
	return int(n), nil
}

// Opaque decodes variable-length opaque data into a fresh slice.
func (d *Decoder) Opaque() ([]byte, error) {
	n, err := d.declaredLen()
	if err != nil {
		return nil, err
	}
	padded := (n + 3) &^ 3
	if d.Remaining() < padded {
		return nil, ErrShortBuffer
	}
	out := make([]byte, n)
	copy(out, d.buf[d.off:d.off+n])
	d.off += padded
	return out, nil
}

// String decodes a variable-length string.
func (d *Decoder) String() (string, error) {
	b, err := d.Opaque()
	return string(b), err
}

// array carves the next elemSize*n bytes out of the frame in one bounds
// check, so the per-element conversion loops below run against a single
// sub-slice — the block decode path mirroring Encoder.grow.
func (d *Decoder) array(n, elemSize int) ([]byte, error) {
	if d.Remaining() < elemSize*n {
		return nil, ErrShortBuffer
	}
	src := d.buf[d.off : d.off+elemSize*n : d.off+elemSize*n]
	d.off += elemSize * n
	return src, nil
}

// Int32Array decodes a variable-length array of int32.
func (d *Decoder) Int32Array() ([]int32, error) { return d.Int32ArrayInto(nil) }

// Int32ArrayInto decodes an int32 array into dst, reusing its capacity
// when it suffices and allocating only otherwise; it returns dst resliced
// to the decoded length. The decode-into variants let steady-state
// callers (pooled buffers, preallocated workspaces) take arrays off the
// wire with zero allocations.
func (d *Decoder) Int32ArrayInto(dst []int32) ([]int32, error) {
	n, err := d.declaredLen()
	if err != nil {
		return nil, err
	}
	src, err := d.array(n, 4)
	if err != nil {
		return nil, err
	}
	if cap(dst) < n {
		dst = make([]int32, n)
	}
	dst = dst[:n]
	if ZeroCopyEnabled() {
		swapGet32(i32words(dst), src)
		return dst, nil
	}
	for i := range dst {
		dst[i] = int32(binary.BigEndian.Uint32(src[4*i:]))
	}
	return dst, nil
}

// Int64Array decodes a variable-length array of hyper.
func (d *Decoder) Int64Array() ([]int64, error) { return d.Int64ArrayInto(nil) }

// Int64ArrayInto is the decode-into variant of Int64Array; see
// Int32ArrayInto for the contract.
func (d *Decoder) Int64ArrayInto(dst []int64) ([]int64, error) {
	n, err := d.declaredLen()
	if err != nil {
		return nil, err
	}
	src, err := d.array(n, 8)
	if err != nil {
		return nil, err
	}
	if cap(dst) < n {
		dst = make([]int64, n)
	}
	dst = dst[:n]
	if ZeroCopyEnabled() {
		swapGet64(i64words(dst), src)
		return dst, nil
	}
	for i := range dst {
		dst[i] = int64(binary.BigEndian.Uint64(src[8*i:]))
	}
	return dst, nil
}

// Float32Array decodes a variable-length array of single floats.
func (d *Decoder) Float32Array() ([]float32, error) { return d.Float32ArrayInto(nil) }

// Float32ArrayInto is the decode-into variant of Float32Array; see
// Int32ArrayInto for the contract.
func (d *Decoder) Float32ArrayInto(dst []float32) ([]float32, error) {
	n, err := d.declaredLen()
	if err != nil {
		return nil, err
	}
	src, err := d.array(n, 4)
	if err != nil {
		return nil, err
	}
	if cap(dst) < n {
		dst = make([]float32, n)
	}
	dst = dst[:n]
	if ZeroCopyEnabled() {
		swapGet32(f32words(dst), src)
		return dst, nil
	}
	for i := range dst {
		dst[i] = math.Float32frombits(binary.BigEndian.Uint32(src[4*i:]))
	}
	return dst, nil
}

// Float64Array decodes a variable-length array of double floats.
func (d *Decoder) Float64Array() ([]float64, error) { return d.Float64ArrayInto(nil) }

// Float64ArrayInto is the decode-into variant of Float64Array — the hot
// path of the XDR binding taken with a pooled destination; see
// Int32ArrayInto for the contract.
func (d *Decoder) Float64ArrayInto(dst []float64) ([]float64, error) {
	n, err := d.declaredLen()
	if err != nil {
		return nil, err
	}
	src, err := d.array(n, 8)
	if err != nil {
		return nil, err
	}
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	if ZeroCopyEnabled() {
		swapGet64(f64words(dst), src)
		return dst, nil
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.BigEndian.Uint64(src[8*i:]))
	}
	return dst, nil
}

// BoolArray decodes a variable-length array of booleans.
func (d *Decoder) BoolArray() ([]bool, error) {
	n, err := d.declaredLen()
	if err != nil {
		return nil, err
	}
	out := make([]bool, n)
	for i := range out {
		v, err := d.Bool()
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// StringArray decodes a variable-length array of strings.
func (d *Decoder) StringArray() ([]string, error) {
	n, err := d.declaredLen()
	if err != nil {
		return nil, err
	}
	out := make([]string, n)
	for i := range out {
		v, err := d.String()
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// EncodeValue appends a tagged wire value. A one-word kind discriminant
// precedes the payload so DecodeValue can reconstruct the dynamic type.
// Only kinds admitted by the XDR binding (wire.Kind.Numeric, i.e. numeric
// scalars, numeric arrays, booleans and opaque bytes) are accepted.
// elemCount returns the element count of a variable-length wire value,
// or 0 for scalars — the encode-side input to CheckLen.
func elemCount(v any) int {
	switch x := v.(type) {
	case []byte:
		return len(x)
	case []bool:
		return len(x)
	case []int32:
		return len(x)
	case []int64:
		return len(x)
	case []float32:
		return len(x)
	case []float64:
		return len(x)
	}
	return 0
}

func EncodeValue(e *Encoder, v any) error {
	k := wire.KindOf(v)
	if !k.Numeric() {
		return fmt.Errorf("xdr: kind %v not supported by the XDR binding (numeric data and arrays only)", k)
	}
	// The encoder must refuse what the decoder would: an array beyond
	// MaxLen would be rejected by every peer (and beyond 2^32 its length
	// word would silently truncate), so the one shared guard runs here
	// before any bytes are produced.
	if err := CheckLen(elemCount(v)); err != nil {
		return fmt.Errorf("xdr: %v of %d elements: %w", k, elemCount(v), err)
	}
	e.Uint32(uint32(k))
	switch x := v.(type) {
	case bool:
		e.Bool(x)
	case int32:
		e.Int32(x)
	case int64:
		e.Int64(x)
	case float32:
		e.Float32(x)
	case float64:
		e.Float64(x)
	case []byte:
		e.Opaque(x)
	case []bool:
		e.BoolArray(x)
	case []int32:
		e.Int32Array(x)
	case []int64:
		e.Int64Array(x)
	case []float32:
		e.Float32Array(x)
	case []float64:
		e.Float64Array(x)
	default:
		return fmt.Errorf("xdr: unreachable kind %v", k)
	}
	return nil
}

// DecodeValue reads one tagged wire value written by EncodeValue.
func DecodeValue(d *Decoder) (any, error) {
	kw, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	k := wire.Kind(kw)
	switch k {
	case wire.KindBool:
		return d.Bool()
	case wire.KindInt32:
		return d.Int32()
	case wire.KindInt64:
		return d.Int64()
	case wire.KindFloat32:
		return d.Float32()
	case wire.KindFloat64:
		return d.Float64()
	case wire.KindBytes:
		return d.Opaque()
	case wire.KindBoolArray:
		return d.BoolArray()
	case wire.KindInt32Array:
		return d.Int32Array()
	case wire.KindInt64Array:
		return d.Int64Array()
	case wire.KindFloat32Array:
		return d.Float32Array()
	case wire.KindFloat64Array:
		return d.Float64Array()
	}
	return nil, fmt.Errorf("xdr: invalid value tag %d", kw)
}

// EncodeValues encodes a sequence of tagged values prefixed by a count.
func EncodeValues(e *Encoder, vs []any) error {
	e.Uint32(uint32(len(vs)))
	for _, v := range vs {
		if err := EncodeValue(e, v); err != nil {
			return err
		}
	}
	return nil
}

// DecodeValues decodes a counted sequence of tagged values.
func DecodeValues(d *Decoder) ([]any, error) {
	n, err := d.declaredLen()
	if err != nil {
		return nil, err
	}
	out := make([]any, n)
	for i := range out {
		if out[i], err = DecodeValue(d); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// WriteFrame writes a length-prefixed XDR record to w: a 4-byte big-endian
// payload length followed by the payload. This is the record framing used
// by the XDR socket binding.
func WriteFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed record from r.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxLen {
		return nil, ErrTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}
