package xdr

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
)

// compressible returns n bytes of low-entropy data flate shrinks well.
func compressible(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i % 16)
	}
	return b
}

// incompressible returns n bytes of seeded random data.
func incompressible(n int, seed int64) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

func TestFlateRoundTrip(t *testing.T) {
	for _, src := range [][]byte{
		{},
		[]byte("hello"),
		compressible(64 << 10),
		incompressible(4096, 1),
	} {
		e := NewEncoder(0)
		if err := Flate.AppendCompress(e, src); err != nil {
			t.Fatalf("compress %d bytes: %v", len(src), err)
		}
		dst := make([]byte, len(src))
		if err := Flate.DecompressInto(dst, e.Bytes()); err != nil {
			t.Fatalf("decompress %d bytes: %v", len(src), err)
		}
		if !bytes.Equal(dst, src) {
			t.Fatalf("round trip mismatch at %d bytes", len(src))
		}
	}
}

func TestDecompressIntoLengthMismatch(t *testing.T) {
	src := compressible(1024)
	e := NewEncoder(0)
	if err := Flate.AppendCompress(e, src); err != nil {
		t.Fatal(err)
	}
	// Declared length shorter than the stream: trailing bytes.
	if err := Flate.DecompressInto(make([]byte, 512), e.Bytes()); err != ErrCodecData {
		t.Fatalf("short dst: got %v, want ErrCodecData", err)
	}
	// Declared length longer than the stream: truncated.
	if err := Flate.DecompressInto(make([]byte, 2048), e.Bytes()); err != ErrCodecData {
		t.Fatalf("long dst: got %v, want ErrCodecData", err)
	}
}

func TestOfferChoose(t *testing.T) {
	if w := OfferWord(); w != 1 {
		t.Fatalf("empty offer = %#x, want 1 (raw bit)", w)
	}
	w := OfferWord(Flate)
	if w != 1|1<<CodecFlate {
		t.Fatalf("flate offer = %#x", w)
	}
	if c := ChooseCodec(w, ^uint32(0)); c != Flate {
		t.Fatalf("choose = %v, want flate", c)
	}
	if c := ChooseCodec(w, 1); c != nil {
		t.Fatalf("raw-only accept chose %v", c)
	}
	if c := ChooseCodec(1, ^uint32(0)); c != nil {
		t.Fatalf("raw-only offer chose %v", c)
	}
	// Unregistered IDs in the offer are ignored.
	if c := ChooseCodec(1<<9|1, ^uint32(0)); c != nil {
		t.Fatalf("unregistered offer bit chose %v", c)
	}
	if CodecByName("flate") != Flate || CodecByName("nope") != nil {
		t.Fatal("CodecByName lookup wrong")
	}
	if CodecByID(CodecFlate) != Flate || CodecByID(0) != nil || CodecByID(200) != nil {
		t.Fatal("CodecByID lookup wrong")
	}
}

func TestCompressFrameV3(t *testing.T) {
	c := NewCompressor(Flate, false, 0)

	// Compressible payload over the floor: ships compressed.
	src := compressible(32 << 10)
	frame, enc := c.CompressFrameV3(42, src)
	if enc == nil {
		t.Fatal("compressible frame shipped raw")
	}
	if len(frame) >= len(src) {
		t.Fatalf("compressed frame %d bytes >= payload %d", len(frame), len(src))
	}
	id, flags, wire, err := ReadFrameV3(bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	if id != 42 || flags != CodecFlate {
		t.Fatalf("id=%d flags=%d", id, flags)
	}
	out, err := DecompressFrameV3(flags, wire)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, src) {
		t.Fatal("decompressed payload differs from source")
	}
	PutFrameBuf(wire)
	PutFrameBuf(out)
	PutEncoder(enc)

	// Under the floor: raw.
	if f, e := c.CompressFrameV3(1, []byte("tiny")); f != nil || e != nil {
		t.Fatal("under-floor frame was compressed")
	}
	// Incompressible: ratio check ships raw.
	if f, e := c.CompressFrameV3(1, incompressible(8192, 7)); f != nil || e != nil {
		t.Fatal("incompressible frame was compressed")
	}
	// Nil compressor: raw.
	if f, e := (*Compressor)(nil).CompressFrameV3(1, src); f != nil || e != nil {
		t.Fatal("nil compressor compressed")
	}
}

func TestCompressorAdaptiveBackoff(t *testing.T) {
	c := NewCompressor(Flate, true, 0)
	noise := incompressible(8192, 3)

	// A streak of incompressible frames flips the compressor into
	// probing mode.
	for i := 0; i < adaptiveStreak; i++ {
		if f, e := c.CompressFrameV3(uint64(i), noise); f != nil || e != nil {
			t.Fatal("noise compressed")
		}
	}
	c.mu.Lock()
	skip := c.skip
	c.mu.Unlock()
	if skip != adaptiveProbeEvery-1 {
		t.Fatalf("skip=%d after streak, want %d", skip, adaptiveProbeEvery-1)
	}

	// The next skip frames must not touch the codec at all — even a
	// perfectly compressible payload ships raw while backed off.
	good := compressible(8192)
	for i := 0; i < adaptiveProbeEvery-1; i++ {
		if f, e := c.CompressFrameV3(0, good); f != nil || e != nil {
			t.Fatalf("frame %d compressed during backoff", i)
		}
	}
	// The probe frame compresses and snaps the compressor back on.
	f, e := c.CompressFrameV3(0, good)
	if e == nil {
		t.Fatal("probe frame did not compress")
	}
	_ = f
	PutEncoder(e)
	if f2, e2 := c.CompressFrameV3(0, good); e2 == nil {
		t.Fatal("post-probe frame did not compress")
	} else {
		_ = f2
		PutEncoder(e2)
	}
}

func TestReadFrameV3RoundTrip(t *testing.T) {
	e := GetEncoder()
	e.ReserveFrameHeaderV3()
	e.Float64Array([]float64{1, 2, 3})
	frame, err := e.FrameBytesV3(9, 0)
	if err != nil {
		t.Fatal(err)
	}
	id, flags, payload, err := ReadFrameV3(bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	if id != 9 || flags != 0 {
		t.Fatalf("id=%d flags=%d", id, flags)
	}
	if !bytes.Equal(payload, frame[13:]) {
		t.Fatal("payload mismatch")
	}
	PutFrameBuf(payload)
	PutEncoder(e)
}

func TestDecompressFrameV3Errors(t *testing.T) {
	if _, err := DecompressFrameV3(200, []byte{0, 0, 0, 0}); err != ErrBadCodec {
		t.Fatalf("unknown codec: %v", err)
	}
	if _, err := DecompressFrameV3(CodecFlate, []byte{0, 0}); err != ErrShortBuffer {
		t.Fatalf("short payload: %v", err)
	}
	huge := make([]byte, 8)
	binary.BigEndian.PutUint32(huge, uint32(MaxLen)+1)
	if _, err := DecompressFrameV3(CodecFlate, huge); err != ErrTooLarge {
		t.Fatalf("oversized declared length: %v", err)
	}
	if _, err := DecompressFrameV3(CodecFlate, []byte{0, 0, 0, 4, 0xde, 0xad}); err == nil {
		t.Fatal("corrupt stream decoded")
	}
}

// TestV3RawPathAllocs is the frame-level half of the E19 zero-extra-alloc
// guarantee: building and sealing a raw v3 frame from pooled parts, with
// the compressor declining (nil, under-floor, and adaptive-backoff arms),
// allocates nothing.
func TestV3RawPathAllocs(t *testing.T) {
	var comp *Compressor // negotiation answered raw: no compressor at all
	payload := compressible(4 << 10)
	allocs := testing.AllocsPerRun(200, func() {
		e := GetEncoder()
		e.ReserveFrameHeaderV3()
		e.Float64Array([]float64{1, 2, 3, 4})
		if f, ce := comp.CompressFrameV3(1, payload); ce != nil {
			_ = f
			PutEncoder(ce)
		}
		if _, err := e.FrameBytesV3(1, 0); err != nil {
			t.Fatal(err)
		}
		PutEncoder(e)
	})
	if allocs != 0 {
		t.Fatalf("raw v3 frame path allocates %.1f/op, want 0", allocs)
	}

	// Adaptive compressor backed off: still zero allocs per skipped frame.
	c := NewCompressor(Flate, true, 0)
	c.mu.Lock()
	c.skip = 1 << 30
	c.mu.Unlock()
	allocs = testing.AllocsPerRun(200, func() {
		if f, ce := c.CompressFrameV3(1, payload); ce != nil {
			_ = f
			PutEncoder(ce)
		}
	})
	if allocs != 0 {
		t.Fatalf("backed-off adaptive path allocates %.1f/op, want 0", allocs)
	}
}
