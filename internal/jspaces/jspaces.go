// Package jspaces implements the Harness JavaSpaces emulation plugin —
// the third environment emulation the paper names ("currently PVM, MPI,
// and JavaSpaces plugins are available"): a tuple space with Write, Read
// and Take over structured entries, template matching with wildcard
// fields, leases, and blocking reads with timeouts.
//
// Entries are wire.Struct values, so the space's operations travel over
// the SOAP binding unchanged — a space deployed in a container is usable
// by remote, standards-based clients as well as by co-located plugins.
package jspaces

import (
	"context"
	"fmt"
	"sync"
	"time"

	"harness2/internal/container"
	"harness2/internal/wire"
	"harness2/internal/wsdl"
)

// PluginClass is the kernel class name of the plugin.
const PluginClass = "harness.jspaces"

// LeaseForever marks an entry that never expires.
const LeaseForever time.Duration = 0

// Space is a tuple space.
type Space struct {
	// now is injectable for deterministic lease tests.
	now func() time.Time

	mu      sync.Mutex
	seq     int64
	entries map[int64]*entry
	waiters []*waiter
}

type entry struct {
	id      int64
	value   *wire.Struct
	expires time.Time // zero = never
}

type waiter struct {
	template *wire.Struct
	take     bool
	ch       chan *wire.Struct
	// done marks a waiter already satisfied or cancelled.
	done bool
}

// New creates an empty space.
func New() *Space { return NewWithClock(time.Now) }

// NewWithClock creates a space with an injectable clock.
func NewWithClock(now func() time.Time) *Space {
	return &Space{now: now, entries: make(map[int64]*entry)}
}

// Factory returns the kernel plugin factory.
func Factory() container.Factory {
	return func() (container.Component, error) { return NewComponent(New()), nil }
}

// Matches reports whether e satisfies the template: same struct name
// (empty template name is a wildcard) and every template field equal in
// e. Fields absent from the template are wildcards — the JavaSpaces
// null-field rule mapped onto the wire model.
func Matches(template, e *wire.Struct) bool {
	if template == nil {
		return true
	}
	if template.Name != "" && template.Name != e.Name {
		return false
	}
	for _, f := range template.Fields {
		v, ok := e.Get(f.Name)
		if !ok || !wire.Equal(v, f.Value) {
			return false
		}
	}
	return true
}

// Write stores a copy-safe reference to value with the given lease and
// returns the entry ID. Lease 0 (LeaseForever) never expires.
func (s *Space) Write(value *wire.Struct, lease time.Duration) (int64, error) {
	if value == nil {
		return 0, fmt.Errorf("jspaces: cannot write a nil entry")
	}
	if err := wire.Check(value); err != nil {
		return 0, fmt.Errorf("jspaces: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.collectLocked()
	// Offer to blocked waiters first; a taker consumes the entry outright.
	for _, w := range s.waiters {
		if w.done || !Matches(w.template, value) {
			continue
		}
		w.done = true
		w.ch <- value
		if w.take {
			s.pruneWaitersLocked()
			return 0, nil // consumed before it ever hit storage
		}
	}
	s.pruneWaitersLocked()
	s.seq++
	e := &entry{id: s.seq, value: value}
	if lease > 0 {
		e.expires = s.now().Add(lease)
	}
	s.entries[e.id] = e
	return e.id, nil
}

// ReadIfExists returns a matching entry without blocking or removing it.
func (s *Space) ReadIfExists(template *wire.Struct) (*wire.Struct, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.collectLocked()
	if e := s.findLocked(template); e != nil {
		return e.value, true
	}
	return nil, false
}

// TakeIfExists removes and returns a matching entry without blocking.
func (s *Space) TakeIfExists(template *wire.Struct) (*wire.Struct, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.collectLocked()
	if e := s.findLocked(template); e != nil {
		delete(s.entries, e.id)
		return e.value, true
	}
	return nil, false
}

// Read blocks until an entry matches the template (or the timeout or ctx
// expires) and returns it without removing it.
func (s *Space) Read(ctx context.Context, template *wire.Struct, timeout time.Duration) (*wire.Struct, error) {
	return s.wait(ctx, template, timeout, false)
}

// Take blocks like Read but removes the matched entry.
func (s *Space) Take(ctx context.Context, template *wire.Struct, timeout time.Duration) (*wire.Struct, error) {
	return s.wait(ctx, template, timeout, true)
}

// ErrTimeout is returned when a blocking Read/Take expires.
var ErrTimeout = fmt.Errorf("jspaces: operation timed out")

func (s *Space) wait(ctx context.Context, template *wire.Struct, timeout time.Duration, take bool) (*wire.Struct, error) {
	s.mu.Lock()
	s.collectLocked()
	if e := s.findLocked(template); e != nil {
		if take {
			delete(s.entries, e.id)
		}
		s.mu.Unlock()
		return e.value, nil
	}
	w := &waiter{template: template, take: take, ch: make(chan *wire.Struct, 1)}
	s.waiters = append(s.waiters, w)
	s.mu.Unlock()

	var timer <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timer = t.C
	}
	select {
	case v := <-w.ch:
		return v, nil
	case <-timer:
	case <-ctx.Done():
	}
	// Cancelled: mark done under the lock, then drain a possible race
	// where Write satisfied us concurrently.
	s.mu.Lock()
	already := w.done
	w.done = true
	s.pruneWaitersLocked()
	s.mu.Unlock()
	if already {
		// Write had already delivered; honour it.
		v := <-w.ch
		return v, nil
	}
	if ctx.Err() != nil {
		return nil, ctx.Err()
	}
	return nil, ErrTimeout
}

func (s *Space) findLocked(template *wire.Struct) *entry {
	// Oldest first, for FIFO-ish fairness.
	var best *entry
	for _, e := range s.entries {
		if Matches(template, e.value) && (best == nil || e.id < best.id) {
			best = e
		}
	}
	return best
}

// collectLocked drops expired entries.
func (s *Space) collectLocked() {
	now := s.now()
	for id, e := range s.entries {
		if !e.expires.IsZero() && now.After(e.expires) {
			delete(s.entries, id)
		}
	}
}

func (s *Space) pruneWaitersLocked() {
	live := s.waiters[:0]
	for _, w := range s.waiters {
		if !w.done {
			live = append(live, w)
		}
	}
	s.waiters = live
}

// Count returns the number of live (unexpired) entries matching template.
func (s *Space) Count(template *wire.Struct) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.collectLocked()
	n := 0
	for _, e := range s.entries {
		if Matches(template, e.value) {
			n++
		}
	}
	return n
}

// Component adapts a Space to the container component model so the tuple
// space is reachable through the SOAP binding (structs travel in
// envelopes).
type Component struct {
	space *Space
}

var _ container.Component = (*Component)(nil)

// NewComponent wraps a space.
func NewComponent(s *Space) *Component { return &Component{space: s} }

// Space exposes the wrapped space for co-located (local-binding) use.
func (c *Component) Space() *Space { return c.space }

// Describe implements container.Component.
func (c *Component) Describe() wsdl.ServiceSpec {
	entryIn := []wsdl.ParamSpec{{Name: "entry", Type: wire.KindStruct}}
	tmplIn := []wsdl.ParamSpec{
		{Name: "template", Type: wire.KindStruct},
		{Name: "timeoutMs", Type: wire.KindInt64},
	}
	found := []wsdl.ParamSpec{
		{Name: "entry", Type: wire.KindStruct},
		{Name: "found", Type: wire.KindBool},
	}
	return wsdl.ServiceSpec{
		Name: "TupleSpace",
		Operations: []wsdl.OpSpec{
			{Name: "write", Input: append(entryIn, wsdl.ParamSpec{Name: "leaseMs", Type: wire.KindInt64}),
				Output: []wsdl.ParamSpec{{Name: "id", Type: wire.KindInt64}}},
			{Name: "read", Input: tmplIn, Output: found},
			{Name: "take", Input: tmplIn, Output: found},
			{Name: "count", Input: []wsdl.ParamSpec{{Name: "template", Type: wire.KindStruct}},
				Output: []wsdl.ParamSpec{{Name: "n", Type: wire.KindInt32}}},
		},
	}
}

// Invoke implements container.Component.
func (c *Component) Invoke(ctx context.Context, op string, args []wire.Arg) ([]wire.Arg, error) {
	switch op {
	case "write":
		ev, _ := wire.GetArg(args, "entry")
		entry, ok := ev.(*wire.Struct)
		if !ok {
			return nil, fmt.Errorf("jspaces: write requires a struct entry")
		}
		var lease time.Duration
		if lv, ok := wire.GetArg(args, "leaseMs"); ok {
			if ms, ok := lv.(int64); ok {
				lease = time.Duration(ms) * time.Millisecond
			}
		}
		id, err := c.space.Write(entry, lease)
		if err != nil {
			return nil, err
		}
		return wire.Args("id", id), nil
	case "read", "take":
		var template *wire.Struct
		if tv, ok := wire.GetArg(args, "template"); ok {
			template, _ = tv.(*wire.Struct)
		}
		var timeout time.Duration
		if tv, ok := wire.GetArg(args, "timeoutMs"); ok {
			if ms, ok := tv.(int64); ok {
				timeout = time.Duration(ms) * time.Millisecond
			}
		}
		var got *wire.Struct
		var err error
		if timeout <= 0 {
			var found bool
			if op == "take" {
				got, found = c.space.TakeIfExists(template)
			} else {
				got, found = c.space.ReadIfExists(template)
			}
			if !found {
				return wire.Args("entry", wire.NewStruct(""), "found", false), nil
			}
			return wire.Args("entry", got, "found", true), nil
		}
		if op == "take" {
			got, err = c.space.Take(ctx, template, timeout)
		} else {
			got, err = c.space.Read(ctx, template, timeout)
		}
		if err == ErrTimeout {
			return wire.Args("entry", wire.NewStruct(""), "found", false), nil
		}
		if err != nil {
			return nil, err
		}
		return wire.Args("entry", got, "found", true), nil
	case "count":
		var template *wire.Struct
		if tv, ok := wire.GetArg(args, "template"); ok {
			template, _ = tv.(*wire.Struct)
		}
		return wire.Args("n", int32(c.space.Count(template))), nil
	}
	return nil, fmt.Errorf("jspaces: no such operation %q", op)
}
