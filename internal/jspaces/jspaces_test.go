package jspaces

import (
	"context"
	"sync"
	"testing"
	"time"

	"harness2/internal/container"
	"harness2/internal/core"
	"harness2/internal/invoke"
	"harness2/internal/kernel"
	"harness2/internal/wire"
)

func task(name string, args ...any) *wire.Struct {
	s := wire.NewStruct("Task").Set("name", name)
	for i := 0; i+1 < len(args); i += 2 {
		s.Set(args[i].(string), args[i+1])
	}
	return s
}

func TestMatches(t *testing.T) {
	e := task("render", "frame", int32(7), "prio", int32(1))
	cases := []struct {
		tmpl *wire.Struct
		want bool
	}{
		{nil, true},
		{wire.NewStruct(""), true},
		{wire.NewStruct("Task"), true},
		{wire.NewStruct("Job"), false},
		{wire.NewStruct("Task").Set("name", "render"), true},
		{wire.NewStruct("Task").Set("name", "encode"), false},
		{wire.NewStruct("Task").Set("prio", int32(1)), true},
		{wire.NewStruct("Task").Set("prio", int32(2)), false},
		{wire.NewStruct("Task").Set("missing", "x"), false},
		{wire.NewStruct("").Set("frame", int32(7)), true},
	}
	for i, c := range cases {
		if got := Matches(c.tmpl, e); got != c.want {
			t.Errorf("case %d: Matches = %v", i, got)
		}
	}
}

func TestWriteReadTake(t *testing.T) {
	s := New()
	id, err := s.Write(task("render", "frame", int32(1)), LeaseForever)
	if err != nil || id == 0 {
		t.Fatalf("write: %v %v", id, err)
	}
	if _, err := s.Write(nil, 0); err == nil {
		t.Fatal("nil write should fail")
	}
	bad := wire.NewStruct("T").Set("x", int(5)) // non-wire field
	if _, err := s.Write(bad, 0); err == nil {
		t.Fatal("non-wire entry should fail")
	}

	got, found := s.ReadIfExists(wire.NewStruct("Task"))
	if !found {
		t.Fatal("read miss")
	}
	name, _ := got.Get("name")
	if name.(string) != "render" {
		t.Fatalf("name = %v", name)
	}
	// Read does not remove.
	if s.Count(nil) != 1 {
		t.Fatalf("count = %d", s.Count(nil))
	}
	if _, found := s.TakeIfExists(wire.NewStruct("Task")); !found {
		t.Fatal("take miss")
	}
	if s.Count(nil) != 0 {
		t.Fatalf("count after take = %d", s.Count(nil))
	}
	if _, found := s.TakeIfExists(nil); found {
		t.Fatal("take from empty space should miss")
	}
}

func TestFIFOMatching(t *testing.T) {
	s := New()
	for i := int32(0); i < 3; i++ {
		if _, err := s.Write(task("job", "seq", i), 0); err != nil {
			t.Fatal(err)
		}
	}
	for want := int32(0); want < 3; want++ {
		got, found := s.TakeIfExists(wire.NewStruct("Task"))
		if !found {
			t.Fatal("miss")
		}
		seq, _ := got.Get("seq")
		if seq.(int32) != want {
			t.Fatalf("seq = %v, want %v (oldest first)", seq, want)
		}
	}
}

func TestBlockingTake(t *testing.T) {
	s := New()
	got := make(chan *wire.Struct, 1)
	go func() {
		v, err := s.Take(context.Background(), wire.NewStruct("Task"), 5*time.Second)
		if err != nil {
			t.Error(err)
			close(got)
			return
		}
		got <- v
	}()
	time.Sleep(10 * time.Millisecond) // let the taker block
	if _, err := s.Write(task("late"), 0); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-got:
		if v == nil {
			t.Fatal("taker failed")
		}
		name, _ := v.Get("name")
		if name.(string) != "late" {
			t.Fatalf("name = %v", name)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("taker never woke")
	}
	// The taker consumed the entry before storage.
	if s.Count(nil) != 0 {
		t.Fatalf("count = %d", s.Count(nil))
	}
}

func TestBlockingReadDoesNotConsume(t *testing.T) {
	s := New()
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := s.Read(context.Background(), nil, 5*time.Second); err != nil {
			t.Error(err)
		}
	}()
	time.Sleep(10 * time.Millisecond)
	if _, err := s.Write(task("x"), 0); err != nil {
		t.Fatal(err)
	}
	<-done
	if s.Count(nil) != 1 {
		t.Fatalf("read consumed the entry: count = %d", s.Count(nil))
	}
}

func TestTimeoutAndCancel(t *testing.T) {
	s := New()
	start := time.Now()
	if _, err := s.Take(context.Background(), nil, 20*time.Millisecond); err != ErrTimeout {
		t.Fatalf("err = %v", err)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("returned before timeout")
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if _, err := s.Take(ctx, nil, time.Minute); err != context.Canceled {
		t.Fatalf("err = %v", err)
	}
	// Cancelled waiters are pruned: a later write stores normally.
	if _, err := s.Write(task("after"), 0); err != nil {
		t.Fatal(err)
	}
	if s.Count(nil) != 1 {
		t.Fatal("entry lost to a dead waiter")
	}
}

func TestLeaseExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	s := NewWithClock(func() time.Time { return now })
	if _, err := s.Write(task("short"), 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Write(task("forever"), LeaseForever); err != nil {
		t.Fatal(err)
	}
	if s.Count(nil) != 2 {
		t.Fatalf("count = %d", s.Count(nil))
	}
	now = now.Add(time.Second)
	if s.Count(nil) != 1 {
		t.Fatalf("count after expiry = %d", s.Count(nil))
	}
	got, found := s.ReadIfExists(nil)
	if !found {
		t.Fatal("forever entry missing")
	}
	if name, _ := got.Get("name"); name.(string) != "forever" {
		t.Fatalf("survivor = %v", name)
	}
}

func TestConcurrentProducersConsumers(t *testing.T) {
	s := New()
	const items = 200
	var wg sync.WaitGroup
	consumed := make(chan int32, items)
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				v, err := s.Take(context.Background(), wire.NewStruct("Task"), 50*time.Millisecond)
				if err != nil {
					return // drained
				}
				seq, _ := v.Get("seq")
				consumed <- seq.(int32)
			}
		}()
	}
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < items/4; i++ {
				if _, err := s.Write(task("job", "seq", int32(p*items/4+i)), 0); err != nil {
					t.Error(err)
				}
			}
		}(p)
	}
	wg.Wait()
	close(consumed)
	seen := map[int32]bool{}
	for seq := range consumed {
		if seen[seq] {
			t.Fatalf("entry %d consumed twice", seq)
		}
		seen[seq] = true
	}
	if len(seen) != items {
		t.Fatalf("consumed %d of %d", len(seen), items)
	}
	if s.Count(nil) != 0 {
		t.Fatalf("space not drained: %d", s.Count(nil))
	}
}

func TestComponentSurface(t *testing.T) {
	k := kernel.New("js-node", container.Config{})
	k.RegisterPlugin(PluginClass, Factory())
	if err := k.Load(PluginClass); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	out, err := k.Call(ctx, PluginClass, "write",
		wire.Args("entry", task("remote", "frame", int32(9)), "leaseMs", int64(0)))
	if err != nil {
		t.Fatal(err)
	}
	if id, _ := wire.GetArg(out, "id"); id.(int64) == 0 {
		t.Fatal("no id")
	}
	out, err = k.Call(ctx, PluginClass, "read",
		wire.Args("template", wire.NewStruct("Task"), "timeoutMs", int64(0)))
	if err != nil {
		t.Fatal(err)
	}
	if found, _ := wire.GetArg(out, "found"); !found.(bool) {
		t.Fatal("read miss")
	}
	ev, _ := wire.GetArg(out, "entry")
	if name, _ := ev.(*wire.Struct).Get("name"); name.(string) != "remote" {
		t.Fatalf("entry = %v", ev)
	}
	out, err = k.Call(ctx, PluginClass, "count", wire.Args("template", wire.NewStruct("Task")))
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := wire.GetArg(out, "n"); n.(int32) != 1 {
		t.Fatalf("count = %v", n)
	}
	out, err = k.Call(ctx, PluginClass, "take",
		wire.Args("template", wire.NewStruct("Task"), "timeoutMs", int64(50)))
	if err != nil {
		t.Fatal(err)
	}
	if found, _ := wire.GetArg(out, "found"); !found.(bool) {
		t.Fatal("take miss")
	}
	// Timed-out take reports found=false rather than a fault.
	out, err = k.Call(ctx, PluginClass, "take",
		wire.Args("template", wire.NewStruct("Task"), "timeoutMs", int64(20)))
	if err != nil {
		t.Fatal(err)
	}
	if found, _ := wire.GetArg(out, "found"); found.(bool) {
		t.Fatal("take should have timed out")
	}
	if _, err := k.Call(ctx, PluginClass, "write", wire.Args("entry", "notastruct")); err == nil {
		t.Fatal("write of non-struct should fail")
	}
	if _, err := k.Call(ctx, PluginClass, "bogus", nil); err == nil {
		t.Fatal("unknown op should fail")
	}
}

func TestComponentOverSOAPBinding(t *testing.T) {
	// The tuple space's structured entries travel inside SOAP envelopes:
	// a remote client writes and takes through the HTTP server.
	node, err := core.NewNode("js-soap", core.NodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	node.Container().RegisterFactory(PluginClass, Factory())
	if _, _, err := node.Container().Deploy(PluginClass, "space"); err != nil {
		t.Fatal(err)
	}
	p := &invoke.SOAPPort{URL: node.SOAPBase() + "/space"}
	ctx := context.Background()
	out, err := p.Invoke(ctx, "write",
		wire.Args("entry", task("viaSOAP", "frame", int32(3)), "leaseMs", int64(0)))
	if err != nil {
		t.Fatal(err)
	}
	if id, _ := wire.GetArg(out, "id"); id.(int64) != 1 {
		t.Fatalf("id = %v", id)
	}
	out, err = p.Invoke(ctx, "take",
		wire.Args("template", wire.NewStruct("Task").Set("name", "viaSOAP"), "timeoutMs", int64(0)))
	if err != nil {
		t.Fatal(err)
	}
	if found, _ := wire.GetArg(out, "found"); !found.(bool) {
		t.Fatal("take over SOAP missed")
	}
	ev, _ := wire.GetArg(out, "entry")
	frame, _ := ev.(*wire.Struct).Get("frame")
	if frame.(int32) != 3 {
		t.Fatalf("frame = %v (struct did not survive the envelope)", frame)
	}
}
