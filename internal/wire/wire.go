// Package wire defines the closed set of value types that may cross a
// HARNESS II service boundary, together with type introspection helpers
// shared by every encoder in the framework (SOAP/XML, XDR binary, and the
// in-process JavaObject binding).
//
// The paper constrains the XDR binding to numeric data whose only complex
// type is the array; the SOAP binding additionally carries strings and
// structured records. Keeping the type system closed lets each encoder be
// total over it: any value accepted by Check can be marshalled by every
// binding that supports its kind.
package wire

import (
	"fmt"
	"math"
	"sort"
)

// Kind enumerates the wire-level type of a value.
type Kind int

// The closed set of wire kinds. Array kinds are flat, homogeneous slices.
const (
	KindInvalid Kind = iota
	KindBool
	KindInt32
	KindInt64
	KindFloat32
	KindFloat64
	KindString
	KindBytes        // opaque byte payload
	KindBoolArray    // []bool
	KindInt32Array   // []int32
	KindInt64Array   // []int64
	KindFloat32Array // []float32
	KindFloat64Array // []float64
	KindStringArray  // []string
	KindStruct       // *Struct: named, ordered fields
)

var kindNames = map[Kind]string{
	KindInvalid:      "invalid",
	KindBool:         "boolean",
	KindInt32:        "int",
	KindInt64:        "long",
	KindFloat32:      "float",
	KindFloat64:      "double",
	KindString:       "string",
	KindBytes:        "base64Binary",
	KindBoolArray:    "ArrayOfBoolean",
	KindInt32Array:   "ArrayOfInt",
	KindInt64Array:   "ArrayOfLong",
	KindFloat32Array: "ArrayOfFloat",
	KindFloat64Array: "ArrayOfDouble",
	KindStringArray:  "ArrayOfString",
	KindStruct:       "struct",
}

// String returns the XSD-flavoured name of the kind, matching the type
// names the paper's WSDL listings use (xsd:string, xsd:double, ...).
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Numeric reports whether the kind is a scalar or array numeric type,
// i.e. whether the XDR binding may carry it.
func (k Kind) Numeric() bool {
	switch k {
	case KindInt32, KindInt64, KindFloat32, KindFloat64,
		KindInt32Array, KindInt64Array, KindFloat32Array, KindFloat64Array,
		KindBool, KindBoolArray, KindBytes:
		return true
	}
	return false
}

// IsArray reports whether the kind is one of the homogeneous array kinds.
func (k Kind) IsArray() bool {
	switch k {
	case KindBoolArray, KindInt32Array, KindInt64Array,
		KindFloat32Array, KindFloat64Array, KindStringArray:
		return true
	}
	return false
}

// Elem returns the element kind of an array kind, or KindInvalid.
func (k Kind) Elem() Kind {
	switch k {
	case KindBoolArray:
		return KindBool
	case KindInt32Array:
		return KindInt32
	case KindInt64Array:
		return KindInt64
	case KindFloat32Array:
		return KindFloat32
	case KindFloat64Array:
		return KindFloat64
	case KindStringArray:
		return KindString
	}
	return KindInvalid
}

// KindByName resolves an XSD-flavoured type name (as produced by
// Kind.String) back to its Kind. Unknown names yield KindInvalid.
func KindByName(name string) Kind {
	for k, n := range kindNames {
		if n == name {
			return k
		}
	}
	return KindInvalid
}

// Struct is a named record with ordered fields, the wire representation of
// structured SOAP payloads. Field order is significant for encoding.
type Struct struct {
	Name   string
	Fields []Field
}

// Field is a single named member of a Struct.
type Field struct {
	Name  string
	Value any
}

// NewStruct returns an empty struct with the given type name.
func NewStruct(name string) *Struct { return &Struct{Name: name} }

// Set appends or replaces the field named name.
func (s *Struct) Set(name string, v any) *Struct {
	for i := range s.Fields {
		if s.Fields[i].Name == name {
			s.Fields[i].Value = v
			return s
		}
	}
	s.Fields = append(s.Fields, Field{Name: name, Value: v})
	return s
}

// Get returns the value of the field named name.
func (s *Struct) Get(name string) (any, bool) {
	for i := range s.Fields {
		if s.Fields[i].Name == name {
			return s.Fields[i].Value, true
		}
	}
	return nil, false
}

// FieldNames returns the field names in declaration order.
func (s *Struct) FieldNames() []string {
	out := make([]string, len(s.Fields))
	for i, f := range s.Fields {
		out[i] = f.Name
	}
	return out
}

// KindOf classifies a Go value into its wire kind. Unsupported dynamic
// types map to KindInvalid.
func KindOf(v any) Kind {
	switch v.(type) {
	case bool:
		return KindBool
	case int32:
		return KindInt32
	case int64:
		return KindInt64
	case float32:
		return KindFloat32
	case float64:
		return KindFloat64
	case string:
		return KindString
	case []byte:
		return KindBytes
	case []bool:
		return KindBoolArray
	case []int32:
		return KindInt32Array
	case []int64:
		return KindInt64Array
	case []float32:
		return KindFloat32Array
	case []float64:
		return KindFloat64Array
	case []string:
		return KindStringArray
	case *Struct:
		return KindStruct
	}
	return KindInvalid
}

// Check verifies that v (including every field of a nested Struct) lies
// inside the closed wire type set. It returns a descriptive error naming
// the offending path otherwise.
func Check(v any) error { return check(v, "value") }

func check(v any, path string) error {
	k := KindOf(v)
	switch k {
	case KindInvalid:
		return fmt.Errorf("wire: %s: unsupported type %T", path, v)
	case KindStruct:
		s := v.(*Struct)
		if s == nil {
			return fmt.Errorf("wire: %s: nil struct", path)
		}
		seen := map[string]bool{}
		for _, f := range s.Fields {
			if f.Name == "" {
				return fmt.Errorf("wire: %s: struct %q has unnamed field", path, s.Name)
			}
			if seen[f.Name] {
				return fmt.Errorf("wire: %s: struct %q has duplicate field %q", path, s.Name, f.Name)
			}
			seen[f.Name] = true
			if err := check(f.Value, path+"."+f.Name); err != nil {
				return err
			}
		}
	}
	return nil
}

// ByteSize returns the intrinsic payload size of v in bytes: the size of
// the raw data before any encoding overhead. Used by the experiment
// harness to compute encoding expansion factors.
func ByteSize(v any) int {
	switch x := v.(type) {
	case bool:
		return 1
	case int32, float32:
		return 4
	case int64, float64:
		return 8
	case string:
		return len(x)
	case []byte:
		return len(x)
	case []bool:
		return len(x)
	case []int32:
		return 4 * len(x)
	case []int64:
		return 8 * len(x)
	case []float32:
		return 4 * len(x)
	case []float64:
		return 8 * len(x)
	case []string:
		n := 0
		for _, s := range x {
			n += len(s)
		}
		return n
	case *Struct:
		n := 0
		for _, f := range x.Fields {
			n += ByteSize(f.Value)
		}
		return n
	}
	return 0
}

// Equal reports deep equality of two wire values, with NaN considered
// equal to NaN so that round-trip tests can use it on arbitrary floats.
func Equal(a, b any) bool {
	ka, kb := KindOf(a), KindOf(b)
	if ka != kb {
		return false
	}
	switch ka {
	case KindBool:
		return a.(bool) == b.(bool)
	case KindInt32:
		return a.(int32) == b.(int32)
	case KindInt64:
		return a.(int64) == b.(int64)
	case KindFloat32:
		return f32eq(a.(float32), b.(float32))
	case KindFloat64:
		return f64eq(a.(float64), b.(float64))
	case KindString:
		return a.(string) == b.(string)
	case KindBytes:
		x, y := a.([]byte), b.([]byte)
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	case KindBoolArray:
		x, y := a.([]bool), b.([]bool)
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	case KindInt32Array:
		x, y := a.([]int32), b.([]int32)
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	case KindInt64Array:
		x, y := a.([]int64), b.([]int64)
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	case KindFloat32Array:
		x, y := a.([]float32), b.([]float32)
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if !f32eq(x[i], y[i]) {
				return false
			}
		}
		return true
	case KindFloat64Array:
		x, y := a.([]float64), b.([]float64)
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if !f64eq(x[i], y[i]) {
				return false
			}
		}
		return true
	case KindStringArray:
		x, y := a.([]string), b.([]string)
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	case KindStruct:
		x, y := a.(*Struct), b.(*Struct)
		if x.Name != y.Name || len(x.Fields) != len(y.Fields) {
			return false
		}
		for i := range x.Fields {
			if x.Fields[i].Name != y.Fields[i].Name {
				return false
			}
			if !Equal(x.Fields[i].Value, y.Fields[i].Value) {
				return false
			}
		}
		return true
	}
	return false
}

func f32eq(a, b float32) bool {
	if math.IsNaN(float64(a)) && math.IsNaN(float64(b)) {
		return true
	}
	return a == b
}

func f64eq(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return a == b
}

// Kinds returns every valid kind in a stable order, for exhaustive tests.
func Kinds() []Kind {
	out := make([]Kind, 0, len(kindNames)-1)
	for k := range kindNames {
		if k != KindInvalid {
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Zero returns the zero value of the given kind, or nil for KindInvalid.
func Zero(k Kind) any {
	switch k {
	case KindBool:
		return false
	case KindInt32:
		return int32(0)
	case KindInt64:
		return int64(0)
	case KindFloat32:
		return float32(0)
	case KindFloat64:
		return float64(0)
	case KindString:
		return ""
	case KindBytes:
		return []byte{}
	case KindBoolArray:
		return []bool{}
	case KindInt32Array:
		return []int32{}
	case KindInt64Array:
		return []int64{}
	case KindFloat32Array:
		return []float32{}
	case KindFloat64Array:
		return []float64{}
	case KindStringArray:
		return []string{}
	case KindStruct:
		return NewStruct("")
	}
	return nil
}
