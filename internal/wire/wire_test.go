package wire

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKindOf(t *testing.T) {
	cases := []struct {
		v    any
		want Kind
	}{
		{true, KindBool},
		{int32(7), KindInt32},
		{int64(7), KindInt64},
		{float32(1.5), KindFloat32},
		{float64(1.5), KindFloat64},
		{"hi", KindString},
		{[]byte{1, 2}, KindBytes},
		{[]bool{true}, KindBoolArray},
		{[]int32{1}, KindInt32Array},
		{[]int64{1}, KindInt64Array},
		{[]float32{1}, KindFloat32Array},
		{[]float64{1}, KindFloat64Array},
		{[]string{"a"}, KindStringArray},
		{NewStruct("T"), KindStruct},
		{int(3), KindInvalid},
		{uint32(3), KindInvalid},
		{nil, KindInvalid},
		{map[string]int{}, KindInvalid},
	}
	for _, c := range cases {
		if got := KindOf(c.v); got != c.want {
			t.Errorf("KindOf(%T) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestKindNamesRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		if got := KindByName(k.String()); got != k {
			t.Errorf("KindByName(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if KindByName("nonsense") != KindInvalid {
		t.Error("KindByName(nonsense) should be invalid")
	}
}

func TestKindNumeric(t *testing.T) {
	numeric := []Kind{KindInt32, KindInt64, KindFloat32, KindFloat64,
		KindInt32Array, KindInt64Array, KindFloat32Array, KindFloat64Array,
		KindBool, KindBoolArray, KindBytes}
	non := []Kind{KindString, KindStringArray, KindStruct, KindInvalid}
	for _, k := range numeric {
		if !k.Numeric() {
			t.Errorf("%v should be numeric", k)
		}
	}
	for _, k := range non {
		if k.Numeric() {
			t.Errorf("%v should not be numeric", k)
		}
	}
}

func TestKindElem(t *testing.T) {
	cases := map[Kind]Kind{
		KindBoolArray:    KindBool,
		KindInt32Array:   KindInt32,
		KindInt64Array:   KindInt64,
		KindFloat32Array: KindFloat32,
		KindFloat64Array: KindFloat64,
		KindStringArray:  KindString,
		KindInt32:        KindInvalid,
		KindStruct:       KindInvalid,
	}
	for k, want := range cases {
		if got := k.Elem(); got != want {
			t.Errorf("%v.Elem() = %v, want %v", k, got, want)
		}
		if want != KindInvalid && !k.IsArray() {
			t.Errorf("%v should be an array kind", k)
		}
	}
}

func TestStructSetGet(t *testing.T) {
	s := NewStruct("Point")
	s.Set("x", float64(1)).Set("y", float64(2))
	if v, ok := s.Get("x"); !ok || v.(float64) != 1 {
		t.Fatalf("Get(x) = %v,%v", v, ok)
	}
	s.Set("x", float64(9))
	if v, _ := s.Get("x"); v.(float64) != 9 {
		t.Fatal("Set should replace existing field")
	}
	if len(s.Fields) != 2 {
		t.Fatalf("want 2 fields, got %d", len(s.Fields))
	}
	if _, ok := s.Get("z"); ok {
		t.Fatal("Get(z) should miss")
	}
	names := s.FieldNames()
	if len(names) != 2 || names[0] != "x" || names[1] != "y" {
		t.Fatalf("FieldNames = %v", names)
	}
}

func TestCheck(t *testing.T) {
	ok := []any{
		true, int32(1), int64(1), float32(1), float64(1), "s", []byte{1},
		[]float64{1, 2}, []string{"a"},
		NewStruct("T").Set("a", int32(1)).Set("b", []float64{1}),
		NewStruct("Outer").Set("inner", NewStruct("Inner").Set("x", "y")),
	}
	for _, v := range ok {
		if err := Check(v); err != nil {
			t.Errorf("Check(%T) = %v, want nil", v, err)
		}
	}
	bad := []any{
		int(1), uint(1), nil, []int{1},
		NewStruct("T").Set("a", int(1)),                             // bad nested type
		&Struct{Name: "T", Fields: []Field{{Name: "", Value: "v"}}}, // unnamed field
		NewStruct("T").Set("inner", NewStruct("I").Set("deep", uint8(1))),
	}
	for _, v := range bad {
		if err := Check(v); err == nil {
			t.Errorf("Check(%T %v) = nil, want error", v, v)
		}
	}
	dup := &Struct{Name: "D", Fields: []Field{{Name: "a", Value: "1"}, {Name: "a", Value: "2"}}}
	if err := Check(dup); err == nil {
		t.Error("Check should reject duplicate field names")
	}
}

func TestByteSize(t *testing.T) {
	cases := []struct {
		v    any
		want int
	}{
		{true, 1},
		{int32(1), 4},
		{int64(1), 8},
		{float32(1), 4},
		{float64(1), 8},
		{"abcd", 4},
		{[]byte{1, 2, 3}, 3},
		{[]float64{1, 2, 3}, 24},
		{[]int32{1, 2}, 8},
		{[]string{"ab", "c"}, 3},
		{NewStruct("T").Set("a", float64(0)).Set("b", "xy"), 10},
		{int(1), 0},
	}
	for _, c := range cases {
		if got := ByteSize(c.v); got != c.want {
			t.Errorf("ByteSize(%T %v) = %d, want %d", c.v, c.v, got, c.want)
		}
	}
}

func TestEqual(t *testing.T) {
	if !Equal([]float64{1, math.NaN()}, []float64{1, math.NaN()}) {
		t.Error("NaN arrays should compare equal")
	}
	if !Equal(float32(float32(math.NaN())), float32(float32(math.NaN()))) {
		t.Error("NaN float32 should compare equal")
	}
	if Equal(int32(1), int64(1)) {
		t.Error("different kinds must not be equal")
	}
	if Equal([]int32{1}, []int32{1, 2}) {
		t.Error("different lengths must not be equal")
	}
	a := NewStruct("T").Set("x", "1")
	b := NewStruct("T").Set("x", "1")
	c := NewStruct("T").Set("x", "2")
	d := NewStruct("U").Set("x", "1")
	if !Equal(a, b) || Equal(a, c) || Equal(a, d) {
		t.Error("struct equality broken")
	}
	if !Equal([]string{"a", "b"}, []string{"a", "b"}) || Equal([]string{"a"}, []string{"b"}) {
		t.Error("string array equality broken")
	}
	if !Equal([]byte{1, 2}, []byte{1, 2}) || Equal([]byte{1}, []byte{2}) {
		t.Error("bytes equality broken")
	}
}

func TestZeroCoversAllKinds(t *testing.T) {
	for _, k := range Kinds() {
		z := Zero(k)
		if z == nil {
			t.Fatalf("Zero(%v) = nil", k)
		}
		if got := KindOf(z); got != k {
			t.Errorf("KindOf(Zero(%v)) = %v", k, got)
		}
		if err := Check(z); err != nil {
			t.Errorf("Check(Zero(%v)) = %v", k, err)
		}
	}
	if Zero(KindInvalid) != nil {
		t.Error("Zero(KindInvalid) should be nil")
	}
}

// RandomValue generates an arbitrary valid wire value; exported to other
// packages' tests via this package's test helpers being duplicated there.
func randomValue(r *rand.Rand, depth int) any {
	kinds := Kinds()
	k := kinds[r.Intn(len(kinds))]
	if k == KindStruct && depth <= 0 {
		k = KindFloat64
	}
	switch k {
	case KindBool:
		return r.Intn(2) == 0
	case KindInt32:
		return int32(r.Uint32())
	case KindInt64:
		return int64(r.Uint64())
	case KindFloat32:
		return float32(r.NormFloat64())
	case KindFloat64:
		return r.NormFloat64()
	case KindString:
		return randString(r)
	case KindBytes:
		b := make([]byte, r.Intn(64))
		r.Read(b)
		return b
	case KindBoolArray:
		a := make([]bool, r.Intn(16))
		for i := range a {
			a[i] = r.Intn(2) == 0
		}
		return a
	case KindInt32Array:
		a := make([]int32, r.Intn(16))
		for i := range a {
			a[i] = int32(r.Uint32())
		}
		return a
	case KindInt64Array:
		a := make([]int64, r.Intn(16))
		for i := range a {
			a[i] = int64(r.Uint64())
		}
		return a
	case KindFloat32Array:
		a := make([]float32, r.Intn(16))
		for i := range a {
			a[i] = float32(r.NormFloat64())
		}
		return a
	case KindFloat64Array:
		a := make([]float64, r.Intn(16))
		for i := range a {
			a[i] = r.NormFloat64()
		}
		return a
	case KindStringArray:
		a := make([]string, r.Intn(8))
		for i := range a {
			a[i] = randString(r)
		}
		return a
	case KindStruct:
		s := NewStruct("S")
		n := r.Intn(5)
		for i := 0; i < n; i++ {
			s.Set(string(rune('a'+i)), randomValue(r, depth-1))
		}
		return s
	}
	return float64(0)
}

func randString(r *rand.Rand) string {
	letters := []rune("abcdefghijklmnop \t<>&\"'éλ")
	n := r.Intn(24)
	out := make([]rune, n)
	for i := range out {
		out[i] = letters[r.Intn(len(letters))]
	}
	return string(out)
}

func TestPropertyRandomValuesPassCheckAndSelfEqual(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := randomValue(r, 2)
		return Check(v) == nil && Equal(v, v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyByteSizeNonNegative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := randomValue(r, 2)
		return ByteSize(v) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
