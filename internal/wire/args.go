package wire

// Arg is a named invocation argument — the transport-neutral form shared
// by every binding. SOAP parameters and XDR call values both convert to
// and from []Arg at the binding boundary.
type Arg struct {
	Name  string
	Value any
}

// Args builds an argument list from alternating name/value pairs; it
// panics on odd argument counts or non-string names, which are programmer
// errors at call sites.
func Args(pairs ...any) []Arg {
	if len(pairs)%2 != 0 {
		panic("wire.Args: odd number of arguments")
	}
	out := make([]Arg, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		name, ok := pairs[i].(string)
		if !ok {
			panic("wire.Args: name must be a string")
		}
		out = append(out, Arg{Name: name, Value: pairs[i+1]})
	}
	return out
}

// GetArg returns the value of the named argument.
func GetArg(args []Arg, name string) (any, bool) {
	for _, a := range args {
		if a.Name == name {
			return a.Value, true
		}
	}
	return nil, false
}

// CheckArgs validates every argument value against the wire type system.
func CheckArgs(args []Arg) error {
	for _, a := range args {
		if err := Check(a.Value); err != nil {
			return err
		}
	}
	return nil
}
