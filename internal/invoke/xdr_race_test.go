package invoke

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"harness2/internal/container"
	"harness2/internal/wire"
	"harness2/internal/wsdl"
	"harness2/internal/xdr"
)

// gateImpl is a component whose "wait" op blocks until the test closes
// gate — a deterministic stand-in for a slow invocation — and whose
// "ping" op returns immediately.
func gateImpl(gate chan struct{}) container.Factory {
	return container.FuncFactory(func() *container.FuncComponent {
		return &container.FuncComponent{
			Spec: wsdl.ServiceSpec{Name: "Gate", Operations: []wsdl.OpSpec{
				{Name: "wait", Output: []wsdl.ParamSpec{{Name: "ok", Type: wire.KindInt32}}},
				{Name: "ping", Output: []wsdl.ParamSpec{{Name: "ok", Type: wire.KindInt32}}},
			}},
			Handlers: map[string]container.OpFunc{
				"wait": func(ctx context.Context, args []wire.Arg) ([]wire.Arg, error) {
					select {
					case <-gate:
					case <-ctx.Done():
					}
					return wire.Args("ok", int32(1)), nil
				},
				"ping": func(ctx context.Context, args []wire.Arg) ([]wire.Arg, error) {
					return wire.Args("ok", int32(1)), nil
				},
			},
		}
	})
}

// TestXDRMuxConcurrentMixedPayloads hammers one shared multiplexed port
// from many goroutines with small and large array payloads interleaved,
// verifying every response routes back to the call that issued it.
// (Run with -race: this is the demux correctness test.)
func TestXDRMuxConcurrentMixedPayloads(t *testing.T) {
	h := newHost(t)
	_, defs := h.deploy(t, "MatMul", "m1")
	ref := defs.PortsByKind(wsdl.BindXDR)
	p := NewXDRPort(ref[0].Port.Address, "m1", false)
	defer p.Close()
	if p.Mode() != XDRModeMux {
		t.Fatalf("default mode = %v, want mux", p.Mode())
	}
	ctx := context.Background()
	sizes := []int{1, 3, 1024, 20000}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				n := sizes[(g+j)%len(sizes)]
				a := make([]float64, n)
				b := make([]float64, n)
				for i := range a {
					a[i] = float64(g + 1)
					b[i] = float64(j + 1)
				}
				out, err := p.Invoke(ctx, "getResult", wire.Args("mata", a, "matb", b))
				if err != nil {
					t.Errorf("g%d j%d: %v", g, j, err)
					return
				}
				res, _ := wire.GetArg(out, "result")
				got := res.([]float64)
				if len(got) != n || got[0] != float64((g+1)*(j+1)) {
					t.Errorf("g%d j%d: response routed to wrong caller: len=%d first=%v",
						g, j, len(got), got[0])
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestXDRMuxNoHeadOfLineBlocking proves the tentpole property: while one
// call is parked inside a slow server-side invocation, other calls on
// the very same connection complete. Deterministic — the slow call blocks
// on a gate the test controls, not on a timer.
func TestXDRMuxNoHeadOfLineBlocking(t *testing.T) {
	gate := make(chan struct{})
	c := container.New(container.Config{Name: "gate"})
	c.RegisterFactory("Gate", gateImpl(gate))
	if _, _, err := c.Deploy("Gate", "g1"); err != nil {
		t.Fatal(err)
	}
	srv, err := NewXDRServer(c, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	p := NewXDRPort(srv.Addr(), "g1", false)
	defer p.Close()

	slowDone := make(chan error, 1)
	go func() {
		_, err := p.Invoke(context.Background(), "wait", nil)
		slowDone <- err
	}()
	// The slow call is in flight (worker parked on the gate). Fast calls
	// on the same shared connection must not queue behind it.
	for i := 0; i < 20; i++ {
		if _, err := p.Invoke(context.Background(), "ping", nil); err != nil {
			t.Fatalf("ping %d blocked behind slow call: %v", i, err)
		}
	}
	select {
	case err := <-slowDone:
		t.Fatalf("slow call finished before the gate opened: %v", err)
	default:
	}
	close(gate)
	if err := <-slowDone; err != nil {
		t.Fatalf("slow call: %v", err)
	}
}

// TestXDRMuxPerCallCancellation cancels one in-flight call and shows the
// shared connection — and every other call on it — survives.
func TestXDRMuxPerCallCancellation(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	c := container.New(container.Config{Name: "gate"})
	c.RegisterFactory("Gate", gateImpl(gate))
	if _, _, err := c.Deploy("Gate", "g1"); err != nil {
		t.Fatal(err)
	}
	srv, err := NewXDRServer(c, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	p := NewXDRPort(srv.Addr(), "g1", false)
	defer p.Close()

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := p.Invoke(ctx, "wait", nil)
		errc <- err
	}()
	// Let the slow call get onto the wire, then cancel just that call.
	if _, err := p.Invoke(context.Background(), "ping", nil); err != nil {
		t.Fatal(err)
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled call returned %v, want context.Canceled", err)
	}
	// The connection must remain fully usable after the abandonment.
	for i := 0; i < 5; i++ {
		if _, err := p.Invoke(context.Background(), "ping", nil); err != nil {
			t.Fatalf("call after cancellation: %v", err)
		}
	}
}

// TestXDRMuxServerCloseMidStream closes the server while calls are in
// flight from many goroutines: every call must return (error or value),
// nothing may hang or panic, and -race must stay quiet.
func TestXDRMuxServerCloseMidStream(t *testing.T) {
	h := newHost(t)
	_, defs := h.deploy(t, "Counter", "c1")
	ref := defs.PortsByKind(wsdl.BindXDR)
	p := NewXDRPort(ref[0].Port.Address, "c1", false)
	defer p.Close()
	ctx := context.Background()
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for j := 0; j < 50; j++ {
				_, _ = p.Invoke(ctx, "inc", wire.Args("by", int64(1))) // errors expected mid-close
			}
		}()
	}
	close(start)
	time.Sleep(2 * time.Millisecond)
	_ = h.xdr.Close()
	wg.Wait() // the test is that this returns
}

// TestXDRDeadlineNotSticky is the regression test for the stale-deadline
// bug: a pooled connection used once under a ctx deadline must not apply
// that (now expired) deadline to a later call that has none. The
// stronger assertion — the same connection is reused, not silently
// replaced — rules out a retry masking the bug.
func TestXDRDeadlineNotSticky(t *testing.T) {
	for _, mode := range []XDRMode{XDRModeSerial, XDRModeMux} {
		t.Run(mode.String(), func(t *testing.T) {
			h := newHost(t)
			_, defs := h.deploy(t, "Counter", "c1")
			ref := defs.PortsByKind(wsdl.BindXDR)
			p := NewXDRPortMode(ref[0].Port.Address, "c1", mode)
			defer p.Close()

			ctx, cancel := context.WithDeadline(context.Background(),
				time.Now().Add(200*time.Millisecond))
			if _, err := p.Invoke(ctx, "inc", wire.Args("by", int64(1))); err != nil {
				t.Fatal(err)
			}
			cancel()
			p.mu.Lock()
			connBefore, mcBefore := p.conn, p.mc
			p.mu.Unlock()
			time.Sleep(250 * time.Millisecond) // the old deadline is now in the past
			if _, err := p.Invoke(context.Background(), "inc", wire.Args("by", int64(1))); err != nil {
				t.Fatalf("call after expired-deadline call failed (stale deadline leaked): %v", err)
			}
			p.mu.Lock()
			connAfter, mcAfter := p.conn, p.mc
			p.mu.Unlock()
			if connBefore != connAfter || mcBefore != mcAfter {
				t.Fatal("connection was replaced between calls: a retry masked the stale deadline")
			}
		})
	}
}

// fakeXDRServer accepts connections, answers the first reqsToServe
// requests properly, then hangs up right after *reading* (i.e. having
// "executed") the next request without answering it. It counts every
// request frame it ever receives, across connections — the probe for
// silent client-side re-sends.
type fakeXDRServer struct {
	ln       net.Listener
	requests atomic.Int64
	serve    int64 // answer this many requests, then close-after-read
	wg       sync.WaitGroup
}

func newFakeXDRServer(t *testing.T, serve int64) *fakeXDRServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	f := &fakeXDRServer{ln: ln, serve: serve}
	f.wg.Add(1)
	go f.acceptLoop()
	t.Cleanup(func() { _ = ln.Close(); f.wg.Wait() })
	return f
}

func (f *fakeXDRServer) acceptLoop() {
	defer f.wg.Done()
	for {
		conn, err := f.ln.Accept()
		if err != nil {
			return
		}
		f.wg.Add(1)
		go f.serveConn(conn)
	}
}

func (f *fakeXDRServer) serveConn(conn net.Conn) {
	defer f.wg.Done()
	defer conn.Close()
	var first [4]byte
	if _, err := io.ReadFull(conn, first[:]); err != nil {
		return
	}
	word := binary.BigEndian.Uint32(first[:])
	if word > xdr.MaxLen && word != xdr.MagicV2 {
		// A pre-v3 peer: MagicV3 (or any unknown preamble) parses as an
		// over-limit v1 frame length and the connection drops — the
		// client must fall back to v2 silently.
		return
	}
	v2 := word == xdr.MagicV2
	readReq := func() (uint64, bool) {
		if v2 {
			id, frame, err := xdr.ReadFrameID(conn)
			if err != nil {
				return 0, false
			}
			xdr.PutFrameBuf(frame)
			return id, true
		}
		var hdr []byte
		if f.requests.Load() == 0 {
			hdr = first[:] // the sniffed word was this frame's length
		} else {
			hdr = make([]byte, 4)
			if _, err := io.ReadFull(conn, hdr); err != nil {
				return 0, false
			}
		}
		n := binary.BigEndian.Uint32(hdr)
		body := make([]byte, n)
		if _, err := io.ReadFull(conn, body); err != nil {
			return 0, false
		}
		return 0, true
	}
	for {
		id, ok := readReq()
		if !ok {
			return
		}
		got := f.requests.Add(1)
		if got > f.serve {
			return // hang up after reading: the ambiguous-outcome case
		}
		e := xdr.GetEncoder()
		_ = encodeResponse(e, wire.Args("total", int64(got)))
		var err error
		if v2 {
			err = xdr.WriteFrameID(conn, id, e.Bytes())
		} else {
			err = xdr.WriteFrame(conn, e.Bytes())
		}
		xdr.PutEncoder(e)
		if err != nil {
			return
		}
	}
}

// TestXDRNoSilentResendAfterDelivery is the regression test for the
// over-eager retry: when the server has already *received* the request
// (and may have executed it) and the connection then dies, the client
// must surface the error rather than transparently re-send — re-sending
// would invoke a non-idempotent operation twice. The fake server counts
// request frames across all connections to catch a re-send.
func TestXDRNoSilentResendAfterDelivery(t *testing.T) {
	for _, mode := range []XDRMode{XDRModeMux, XDRModeSerial} {
		t.Run(mode.String(), func(t *testing.T) {
			f := newFakeXDRServer(t, 1) // answer call 1; swallow call 2
			p := NewXDRPortMode(f.ln.Addr().String(), "c1", mode)
			defer p.Close()
			ctx := context.Background()
			if _, err := p.Invoke(ctx, "inc", wire.Args("by", int64(1))); err != nil {
				t.Fatal(err)
			}
			_, err := p.Invoke(ctx, "inc", wire.Args("by", int64(1)))
			if err == nil {
				t.Fatal("call whose request was delivered but never answered must error")
			}
			// Give any (buggy) background re-send a moment to land.
			time.Sleep(50 * time.Millisecond)
			if got := f.requests.Load(); got != 2 {
				t.Fatalf("server saw %d requests, want 2 — the client silently re-sent", got)
			}
		})
	}
}

// TestXDRMuxManyConcurrentCallers is a throughput smoke test for the
// pigeonhole property the E11 bench quantifies: 64 callers over one
// connection all make progress and account exactly.
func TestXDRMuxManyConcurrentCallers(t *testing.T) {
	h := newHost(t)
	_, defs := h.deploy(t, "Counter", "c1")
	ref := defs.PortsByKind(wsdl.BindXDR)
	p := NewXDRPort(ref[0].Port.Address, "c1", false)
	defer p.Close()
	ctx := context.Background()
	const goroutines, calls = 64, 10
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < calls; j++ {
				if _, err := p.Invoke(ctx, "inc", wire.Args("by", int64(1))); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	out, err := h.c.Invoke(ctx, "c1", "inc", wire.Args("by", int64(0)))
	if err != nil {
		t.Fatal(err)
	}
	total, _ := wire.GetArg(out, "total")
	if total.(int64) != goroutines*calls {
		t.Fatalf("total = %v, want %d", total, goroutines*calls)
	}
}

// TestXDRServerWorkerPoolBounded verifies the WithXDRWorkers bound: with
// a pool of 2 and 2 calls parked on the gate, a third call queues (the
// pool is saturated) instead of executing, then runs once a slot frees.
func TestXDRServerWorkerPoolBounded(t *testing.T) {
	gate := make(chan struct{})
	c := container.New(container.Config{Name: "gate"})
	c.RegisterFactory("Gate", gateImpl(gate))
	if _, _, err := c.Deploy("Gate", "g1"); err != nil {
		t.Fatal(err)
	}
	srv, err := NewXDRServer(c, "127.0.0.1:0", WithXDRWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	p := NewXDRPort(srv.Addr(), "g1", false)
	defer p.Close()

	var parked sync.WaitGroup
	results := make(chan error, 2)
	for i := 0; i < 2; i++ {
		parked.Add(1)
		go func() {
			parked.Done()
			_, err := p.Invoke(context.Background(), "wait", nil)
			results <- err
		}()
	}
	parked.Wait()
	// Both workers will park on the gate; a bounded third call must time
	// out client-side because no worker slot frees up.
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	deadlineErr := fmt.Errorf("sentinel")
	if _, err := p.Invoke(ctx, "ping", nil); err == nil {
		// Scheduling may have let ping in before both waits landed; that
		// is acceptable only if a wait had not yet taken a slot. Verify
		// saturation deterministically by trying again.
		ctx2, cancel2 := context.WithTimeout(context.Background(), 300*time.Millisecond)
		defer cancel2()
		if _, err2 := p.Invoke(ctx2, "ping", nil); err2 == nil {
			deadlineErr = nil
		}
	}
	close(gate)
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Fatalf("gated call: %v", err)
		}
	}
	if deadlineErr == nil {
		t.Log("worker pool admitted ping before saturation; bound not observed this run")
	}
	// After the gate opens, the pool drains and the port works again.
	if _, err := p.Invoke(context.Background(), "ping", nil); err != nil {
		t.Fatalf("call after pool drain: %v", err)
	}
}
