package invoke

import (
	"bytes"
	"context"
	"io"
	"net"
	"sync"
	"testing"

	"harness2/internal/container"
	"harness2/internal/telemetry"
	"harness2/internal/wire"
)

// TestFrameWriterByteStream checks that the mix of coalesced, flushed,
// and vectored writes produces exactly the bytes written, in order, over
// a real TCP connection (net.Buffers only vectors on real sockets).
func TestFrameWriterByteStream(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type recv struct {
		data []byte
		err  error
	}
	got := make(chan recv, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			got <- recv{err: err}
			return
		}
		data, err := io.ReadAll(c)
		got <- recv{data: data, err: err}
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}

	fw := newFrameWriter(conn, newXDRWireMetrics(telemetry.Disabled(), "test"))
	var want bytes.Buffer
	writeOne := func(p []byte) {
		t.Helper()
		if _, err := fw.Write(p); err != nil {
			t.Fatal(err)
		}
		want.Write(p)
	}
	pattern := func(n int, seed byte) []byte {
		p := make([]byte, n)
		for i := range p {
			p[i] = seed + byte(i)
		}
		return p
	}
	writeOne(pattern(100, 1))             // coalesces
	writeOne(pattern(largeFrameMin, 2))   // vectored with the 100 bytes
	writeOne(pattern(200, 3))             // coalesces
	writeOne(pattern(xdrBufSize-10, 4))   // vectored with the 200 bytes
	writeOne(pattern(largeFrameMin-1, 5)) // one under the threshold: coalesces
	writeOne(pattern(largeFrameMin-1, 6)) // second sub-threshold frame
	writeOne(pattern(4*largeFrameMin, 7)) // vectored with both
	if fw.cw.n != want.Len() {
		// Everything so far either flushed or vectored (the two
		// sub-threshold frames left with the vectored write).
		t.Fatalf("counted %d bytes on the wire, want %d", fw.cw.n, want.Len())
	}
	writeOne(pattern(10, 8)) // stays buffered until Flush
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := fw.Flush(); err != nil { // empty flush is a no-op
		t.Fatal(err)
	}
	_ = conn.Close()

	r := <-got
	if r.err != nil {
		t.Fatal(r.err)
	}
	if !bytes.Equal(r.data, want.Bytes()) {
		t.Fatalf("stream mismatch: got %d bytes, want %d", len(r.data), want.Len())
	}
	if fw.cw.n != want.Len() {
		t.Fatalf("counted %d bytes, want %d", fw.cw.n, want.Len())
	}
}

// TestXDRMuxLargeFrames drives payloads far beyond largeFrameMin through
// the multiplexed binding in both directions — the end-to-end check on
// the vectored write path (client request and server response), with
// concurrent small frames interleaving on the same connection.
func TestXDRMuxLargeFrames(t *testing.T) {
	c := container.New(container.Config{Name: "vectored"})
	c.RegisterFactory("MatMul", matmulImpl())
	c.RegisterFactory("Counter", counterImpl())
	for _, id := range []string{"m1", "c1"} {
		class := "MatMul"
		if id == "c1" {
			class = "Counter"
		}
		if _, _, err := c.Deploy(class, id); err != nil {
			t.Fatal(err)
		}
	}
	xs, err := NewXDRServer(c, "127.0.0.1:0", WithXDRTelemetry(telemetry.Disabled()))
	if err != nil {
		t.Fatal(err)
	}
	defer xs.Close()

	pm := NewXDRPort(xs.Addr(), "m1", false)
	pm.SetTelemetry(telemetry.Disabled())
	defer pm.Close()
	pc := NewXDRPort(xs.Addr(), "c1", false)
	pc.SetTelemetry(telemetry.Disabled())
	defer pc.Close()

	const n = 64 << 10 // 512 KiB of float64 per matrix: vectored both ways
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = float64(i%1000) + 0.5
		b[i] = 2
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // small frames race the large ones on the same stream
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if _, err := pc.Invoke(context.Background(), "inc", wire.Args("by", int64(1))); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 4; i++ {
		out, err := pm.Invoke(context.Background(), "getResult", wire.Args("mata", a, "matb", b))
		if err != nil {
			t.Fatal(err)
		}
		v, _ := wire.GetArg(out, "result")
		res := v.([]float64)
		if len(res) != n || res[1] != a[1]*2 || res[n-1] != a[n-1]*2 {
			t.Fatalf("round %d: bad result (len=%d)", i, len(res))
		}
	}
	wg.Wait()
}
