package invoke

import (
	"context"
	"fmt"
	"strings"

	"harness2/internal/resilience"
	"harness2/internal/wire"
	"harness2/internal/wsdl"
)

// ResilientPort runs every invocation through a resilience.Policy across a
// ladder of equivalent ports, cheapest-first: the invocation framework's
// local > XDR > SOAP > HTTP selection order (Figure 5) doubles as the
// failover order, so a call that cannot reach the co-located instance
// falls back to the sockets binding, then to SOAP — with retries, circuit
// breakers and (for idempotent operations) hedging applied per the policy.
//
// A nil Policy delegates straight to the first port: the disabled path is
// one branch, per the repo's nil-safety idiom.
type ResilientPort struct {
	// Ports is the failover ladder, cheapest-first. Must be non-empty.
	Ports []Port
	// Policy governs retries/breakers/hedging; nil disables all of it.
	Policy *resilience.Policy
	// Idempotent classifies operations for the retry/hedging decision;
	// nil falls back to IdempotentByName.
	Idempotent func(op string) bool
}

var _ Port = (*ResilientPort)(nil)

// NewResilientPort wraps ports in a policy-driven failover ladder.
func NewResilientPort(policy *resilience.Policy, ports ...Port) (*ResilientPort, error) {
	if len(ports) == 0 {
		return nil, fmt.Errorf("invoke: resilient port needs at least one port")
	}
	return &ResilientPort{Ports: ports, Policy: policy}, nil
}

// IdempotentByName is the default operation classifier: read-style
// operation names (get*, list*, find*, describe*, lookup*, read*, query*,
// ping, classes, status) are idempotent; everything else is assumed to
// mutate state and is retried only when the failure proves the request
// never reached a server.
func IdempotentByName(op string) bool {
	switch op {
	case "ping", "classes", "status":
		return true
	}
	for _, prefix := range []string{"get", "list", "find", "describe", "lookup", "read", "query"} {
		if strings.HasPrefix(op, prefix) {
			return true
		}
	}
	return false
}

// idempotent applies the configured classifier.
func (p *ResilientPort) idempotent(op string) bool {
	if p.Idempotent != nil {
		return p.Idempotent(op)
	}
	return IdempotentByName(op)
}

// targetID names a port's endpoint for per-endpoint breaker state.
func targetID(pt Port) string {
	return pt.Kind().String() + ":" + pt.Endpoint()
}

// Invoke implements Port: one policy execution across the ladder.
func (p *ResilientPort) Invoke(ctx context.Context, op string, args []wire.Arg) ([]wire.Arg, error) {
	if p.Policy == nil {
		return p.Ports[0].Invoke(ctx, op, args) // disabled fast path
	}
	targets := make([]resilience.Target, len(p.Ports))
	for i, pt := range p.Ports {
		pt := pt
		targets[i] = resilience.Target{
			ID: targetID(pt),
			Do: func(ctx context.Context) (any, error) {
				return pt.Invoke(ctx, op, args)
			},
		}
	}
	out, err := p.Policy.Execute(ctx, op, p.idempotent(op), targets...)
	if err != nil {
		return nil, err
	}
	res, _ := out.([]wire.Arg)
	return res, nil
}

// Kind implements Port, reporting the primary (cheapest) binding.
func (p *ResilientPort) Kind() wsdl.BindingKind { return p.Ports[0].Kind() }

// Endpoint implements Port, reporting the primary endpoint.
func (p *ResilientPort) Endpoint() string { return p.Ports[0].Endpoint() }

// Close implements Port: every rung of the ladder is released.
func (p *ResilientPort) Close() error {
	var first error
	for _, pt := range p.Ports {
		if err := pt.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// DialResilient opens every usable port for defs (cheapest first) and
// wraps them in a ResilientPort governed by opts.Policy. With no policy
// configured it behaves exactly like Dial; with a single usable port the
// policy still applies retries and breakers to it.
func DialResilient(defs *wsdl.Definitions, opts Options) (Port, error) {
	ports := OpenAll(defs, opts)
	if len(ports) == 0 {
		// Fall back to Dial for its error reporting.
		return Dial(defs, opts)
	}
	if opts.Policy == nil && len(ports) == 1 {
		return ports[0], nil
	}
	return NewResilientPort(opts.Policy, ports...)
}
