package invoke

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"harness2/internal/container"
	"harness2/internal/telemetry"
	"harness2/internal/wire"
)

// TestXDRNegotiationMatrix is the S33 compatibility regression: every
// pairwise combination of wire generations — a v1 serial client, a v2 mux
// client, and v3 clients with compression off and on — against servers
// capped at v2 and v3 servers with compression off, on, and adaptive. A
// stale peer on either side must degrade silently to the common protocol;
// no pairing may corrupt payloads. This is the E3 invoke check run across
// the full negotiation space.
func TestXDRNegotiationMatrix(t *testing.T) {
	type serverCase struct {
		name string
		opts []XDRServerOption
	}
	type clientCase struct {
		name string
		dial func(addr string) *XDRPort
	}

	servers := []serverCase{
		{"maxproto2", []XDRServerOption{WithXDRMaxProto(2)}},
		{"v3-off", []XDRServerOption{WithXDRCompression(CompressPolicy{Mode: CompressOff})}},
		{"v3-on", []XDRServerOption{WithXDRCompression(CompressPolicy{Mode: CompressOn})}},
		{"v3-adaptive", []XDRServerOption{WithXDRCompression(CompressPolicy{Mode: CompressAdaptive})}},
	}
	clients := []clientCase{
		{"serial-v1", func(addr string) *XDRPort {
			return NewXDRPortMode(addr, "m1", XDRModeSerial)
		}},
		{"mux-v2", func(addr string) *XDRPort {
			p := NewXDRPort(addr, "m1", false)
			p.SetWireProtocol(2)
			return p
		}},
		{"v3-off", func(addr string) *XDRPort {
			p := NewXDRPort(addr, "m1", false)
			p.SetCompression(CompressPolicy{Mode: CompressOff})
			return p
		}},
		{"v3-on", func(addr string) *XDRPort {
			p := NewXDRPort(addr, "m1", false)
			p.SetCompression(CompressPolicy{Mode: CompressAdaptive})
			return p
		}},
	}

	// Compressible payload comfortably above the compression floor, so
	// v3-on pairings actually exercise the flate path.
	mata := make([]float64, 4096)
	matb := make([]float64, 4096)
	for i := range mata {
		mata[i] = float64(i % 16)
		matb[i] = 2
	}

	for _, sc := range servers {
		sc := sc
		t.Run("server="+sc.name, func(t *testing.T) {
			c := container.New(container.Config{Name: "node1"})
			c.RegisterFactory("MatMul", matmulImpl())
			xs, err := NewXDRServer(c, "127.0.0.1:0", sc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { _ = xs.Close() })
			if _, _, err := c.Deploy("MatMul", "m1"); err != nil {
				t.Fatal(err)
			}
			for _, cc := range clients {
				cc := cc
				t.Run("client="+cc.name, func(t *testing.T) {
					p := cc.dial(xs.Addr())
					defer p.Close()
					ctx := context.Background()
					// Several calls per pairing: the first negotiates,
					// the rest reuse the connection.
					for call := 0; call < 3; call++ {
						out, err := p.Invoke(ctx, "getResult",
							wire.Args("mata", mata, "matb", matb))
						if err != nil {
							t.Fatalf("call %d: %v", call, err)
						}
						rv, ok := wire.GetArg(out, "result")
						if !ok {
							t.Fatalf("call %d: no result", call)
						}
						res := rv.([]float64)
						if len(res) != len(mata) {
							t.Fatalf("call %d: len = %d", call, len(res))
						}
						for i := range res {
							if res[i] != mata[i]*matb[i] {
								t.Fatalf("call %d: result[%d] = %v, want %v",
									call, i, res[i], mata[i]*matb[i])
							}
						}
					}
				})
			}
		})
	}
}

// TestXDRNegotiationConcurrent drives the v3-on/v3-adaptive pairing from
// many goroutines at once — the arrangement the race detector cares
// about: concurrent compressors, one shared muxConn, negotiation racing
// the first batch of requests.
func TestXDRNegotiationConcurrent(t *testing.T) {
	c := container.New(container.Config{Name: "node1"})
	c.RegisterFactory("MatMul", matmulImpl())
	xs, err := NewXDRServer(c, "127.0.0.1:0",
		WithXDRCompression(CompressPolicy{Mode: CompressAdaptive}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = xs.Close() })
	if _, _, err := c.Deploy("MatMul", "m1"); err != nil {
		t.Fatal(err)
	}
	p := NewXDRPort(xs.Addr(), "m1", false)
	p.SetCompression(CompressPolicy{Mode: CompressAdaptive})
	defer p.Close()

	mata := make([]float64, 2048)
	for i := range mata {
		mata[i] = float64(i % 8)
	}
	errc := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			ctx := context.Background()
			for call := 0; call < 10; call++ {
				out, err := p.Invoke(ctx, "getResult",
					wire.Args("mata", mata, "matb", mata))
				if err != nil {
					errc <- fmt.Errorf("call %d: %w", call, err)
					return
				}
				rv, _ := wire.GetArg(out, "result")
				if res := rv.([]float64); res[9] != mata[9]*mata[9] {
					errc <- fmt.Errorf("call %d: bad payload", call)
					return
				}
			}
			errc <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}

// TestCompressionMetricsExposed checks the S33 observability contract:
// compressed traffic shows up in the compress byte counters, the ratio
// histogram, and the per-codec connection gauge on both roles — and the
// gauge returns to zero when the connection closes.
func TestCompressionMetricsExposed(t *testing.T) {
	reg := telemetry.New()
	c := container.New(container.Config{Name: "node1"})
	c.RegisterFactory("MatMul", matmulImpl())
	xs, err := NewXDRServer(c, "127.0.0.1:0",
		WithXDRTelemetry(reg),
		WithXDRCompression(CompressPolicy{Mode: CompressAdaptive}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = xs.Close() })
	if _, _, err := c.Deploy("MatMul", "m1"); err != nil {
		t.Fatal(err)
	}
	p := NewXDRPort(xs.Addr(), "m1", false)
	p.SetTelemetry(reg)
	p.SetCompression(CompressPolicy{Mode: CompressAdaptive})

	mata := make([]float64, 4096)
	for i := range mata {
		mata[i] = float64(i % 16)
	}
	// Several calls: the first request ships raw (the client's compressor
	// arms only once the server's answer word arrives); later requests
	// compress.
	for call := 0; call < 3; call++ {
		if _, err := p.Invoke(context.Background(), "getResult",
			wire.Args("mata", mata, "matb", mata)); err != nil {
			t.Fatal(err)
		}
	}

	for _, role := range []string{"client", "server"} {
		if v := reg.Counter("harness_xdr_compress_out_bytes_total", "role", role).Value(); v == 0 {
			t.Errorf("compress_out{role=%s} = 0", role)
		}
		if v := reg.Counter("harness_xdr_compress_in_bytes_total", "role", role).Value(); v == 0 {
			t.Errorf("compress_in{role=%s} = 0", role)
		}
		if n := reg.Histogram("harness_xdr_compress_ratio_pct", "role", role).Count(); n == 0 {
			t.Errorf("compress_ratio{role=%s} count = 0", role)
		}
		if g := reg.GaugeVec("harness_xdr_codec_connections", "codec", "role", role).With("flate").Value(); g != 1 {
			t.Errorf("codec_connections{codec=flate,role=%s} = %d, want 1", role, g)
		}
	}

	// The exposition surface (/metrics) must carry the family.
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"harness_xdr_compress_out_bytes_total",
		"harness_xdr_codec_connections",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("/metrics exposition missing %s", want)
		}
	}

	_ = p.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		cg := reg.GaugeVec("harness_xdr_codec_connections", "codec", "role", "client").With("flate").Value()
		sg := reg.GaugeVec("harness_xdr_codec_connections", "codec", "role", "server").With("flate").Value()
		if cg == 0 && sg == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("codec gauges after close: client=%d server=%d, want 0", cg, sg)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
