package invoke

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"harness2/internal/container"
	"harness2/internal/registry"
	"harness2/internal/shmring"
	"harness2/internal/telemetry"
	"harness2/internal/wire"
	"harness2/internal/wsdl"
)

// shmHost stands up a container advertising both the shm and XDR
// bindings, so tests can assert the preference order as well as the shm
// data path itself.
type shmHost struct {
	c   *container.Container
	shm *ShmServer
	xdr *XDRServer
}

func newShmHost(t *testing.T, sockPath string) *shmHost {
	t.Helper()
	if !shmring.Supported() {
		t.Skip("shm binding unsupported on this platform")
	}
	c := container.New(container.Config{Name: "shmhost"})
	c.RegisterFactory("MatMul", matmulImpl())
	c.RegisterFactory("Counter", counterImpl())
	ss, err := NewShmServer(c, sockPath, WithShmTelemetry(telemetry.Disabled()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ss.Close() })
	xs, err := NewXDRServer(c, "127.0.0.1:0", WithXDRTelemetry(telemetry.Disabled()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = xs.Close() })

	host := container.New(container.Config{
		Name:    "shmhost",
		XDRAddr: xs.Addr(),
		ShmAddr: ss.Addr(),
	})
	host.RegisterFactory("MatMul", matmulImpl())
	host.RegisterFactory("Counter", counterImpl())
	ss.Retarget(host)
	xs.Retarget(host)
	return &shmHost{c: host, shm: ss, xdr: xs}
}

func (h *shmHost) deploy(t *testing.T, class, id string) *wsdl.Definitions {
	t.Helper()
	inst, _, err := h.c.Deploy(class, id)
	if err != nil {
		t.Fatal(err)
	}
	defs, err := h.c.WSDLFor(inst.ID)
	if err != nil {
		t.Fatal(err)
	}
	return defs
}

// TestDialPrefersShmOverXDR: with both network bindings advertised and
// no co-located container, Dial must land on the shared-memory rung and
// calls must round-trip through the rings.
func TestDialPrefersShmOverXDR(t *testing.T) {
	h := newShmHost(t, "")
	defs := h.deploy(t, "MatMul", "m1")
	p, err := Dial(defs, Options{Telemetry: telemetry.Disabled()})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Kind() != wsdl.BindShm {
		t.Fatalf("kind = %v, want shm", p.Kind())
	}
	out, err := p.Invoke(context.Background(), "getResult",
		wire.Args("mata", []float64{1, 2, 3}, "matb", []float64{4, 5, 6}))
	if err != nil {
		t.Fatal(err)
	}
	v, _ := wire.GetArg(out, "result")
	if got := v.([]float64); len(got) != 3 || got[0] != 4 || got[2] != 18 {
		t.Fatalf("result = %v", got)
	}
}

// TestShmLargeArgsExceedRingCapacity: same-host calls whose XDR record
// exceeds the ring capacity (1MiB by default — e.g. E3's full-ladder
// 384x384 MatMul at ~2.3MB of args) must stream through the rings in
// chunks, not fail with shmring.ErrTooLarge. Both directions stream
// here: the request carries two 2MiB arrays and the response one.
func TestShmLargeArgsExceedRingCapacity(t *testing.T) {
	h := newShmHost(t, "")
	defs := h.deploy(t, "MatMul", "m1")
	p, err := Dial(defs, Options{Telemetry: telemetry.Disabled()})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Kind() != wsdl.BindShm {
		t.Fatalf("kind = %v, want shm", p.Kind())
	}
	const n = 1 << 18 // 256Ki float64s = 2MiB per array
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i], b[i] = float64(i), 2
	}
	out, err := p.Invoke(context.Background(), "getResult",
		wire.Args("mata", a, "matb", b))
	if err != nil {
		t.Fatal(err)
	}
	v, _ := wire.GetArg(out, "result")
	got := v.([]float64)
	if len(got) != n || got[1] != 2 || got[n-1] != float64(n-1)*2 {
		t.Fatalf("result: len=%d", len(got))
	}
	// The connection must still be healthy for ordinary calls behind the
	// streamed one.
	if _, err := p.Invoke(context.Background(), "getResult",
		wire.Args("mata", []float64{1}, "matb", []float64{3})); err != nil {
		t.Fatalf("small call after streamed call: %v", err)
	}
}

// TestShmStaleDemuxCannotFailFreshCalls: pending-call maps are scoped
// per segment, so a demux goroutine from a replaced (closed) segment
// firing late can only fail calls that were in flight on its own
// segment — never fresh calls registered after the re-handshake.
func TestShmStaleDemuxCannotFailFreshCalls(t *testing.T) {
	h := newShmHost(t, "")
	defs := h.deploy(t, "Counter", "c1")
	p, err := Dial(defs, Options{Telemetry: telemetry.Disabled()})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.Invoke(context.Background(), "inc", wire.Args("by", int64(1))); err != nil {
		t.Fatal(err)
	}
	sp := p.(*ShmPort)
	sp.mu.Lock()
	old := sp.cur
	sp.mu.Unlock()
	// Kill the first segment; the next invoke re-handshakes onto a new
	// one (same server incarnation, so no generation error).
	_ = old.seg.Close()
	if _, err := p.Invoke(context.Background(), "inc", wire.Args("by", int64(1))); err != nil {
		t.Fatalf("invoke after segment loss: %v", err)
	}
	sp.mu.Lock()
	cur := sp.cur
	sp.mu.Unlock()
	if cur == old {
		t.Fatal("expected a fresh connection after segment loss")
	}
	// A call pending on the new connection must survive the old
	// connection's (possibly delayed) demux failure path.
	ch := make(chan shmReply, 1)
	if err := cur.register(99999, ch); err != nil {
		t.Fatal(err)
	}
	old.fail(errors.New("stale demux firing late"))
	select {
	case r := <-ch:
		t.Fatalf("fresh call failed by stale demux: %v", r.err)
	default:
	}
	cur.drop(99999)
}

// TestShmFaultsPropagate: a server-side fault must come back as an error
// on the caller, not poison the connection for later calls.
func TestShmFaultsPropagate(t *testing.T) {
	h := newShmHost(t, "")
	defs := h.deploy(t, "Counter", "c1")
	p, err := Dial(defs, Options{Telemetry: telemetry.Disabled()})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Kind() != wsdl.BindShm {
		t.Fatalf("kind = %v, want shm", p.Kind())
	}
	if _, err := p.Invoke(context.Background(), "nosuch", nil); err == nil {
		t.Fatal("unknown op should fault")
	}
	out, err := p.Invoke(context.Background(), "inc", wire.Args("by", int64(2)))
	if err != nil {
		t.Fatalf("call after fault: %v", err)
	}
	v, _ := wire.GetArg(out, "total")
	if v.(int64) != 2 {
		t.Fatalf("total = %v", v)
	}
}

// TestShmConcurrentInvokes drives one port from many goroutines — the
// multiplexing demux and the SPSC write serialization under load.
func TestShmConcurrentInvokes(t *testing.T) {
	h := newShmHost(t, "")
	defs := h.deploy(t, "Counter", "c1")
	p, err := Dial(defs, Options{Telemetry: telemetry.Disabled()})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	const gs, per = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < gs; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := p.Invoke(context.Background(), "inc", wire.Args("by", int64(1))); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	out, err := p.Invoke(context.Background(), "inc", wire.Args("by", int64(0)))
	if err != nil {
		t.Fatal(err)
	}
	v, _ := wire.GetArg(out, "total")
	if v.(int64) != gs*per {
		t.Fatalf("total = %v, want %d", v, gs*per)
	}
}

// TestShmStaleGenerationInvalidatesBinding is the satellite-2 regression:
// a server restart behind the same socket path mints a new generation;
// the cached Binder port must fail exactly once with
// ErrStaleShmGeneration, and the next call must rebind and succeed.
func TestShmStaleGenerationInvalidatesBinding(t *testing.T) {
	h := newShmHost(t, "")
	h.deploy(t, "Counter", "c1")
	reg := registry.New()
	if _, err := h.c.Expose("c1", reg); err != nil {
		t.Fatal(err)
	}
	b := &Binder{Lookup: reg, Opts: Options{Telemetry: telemetry.Disabled()}, TTL: time.Hour}
	defer b.Close()

	inc := func() (int64, error) {
		out, err := b.Invoke(context.Background(), "Counter", "inc", wire.Args("by", int64(1)))
		if err != nil {
			return 0, err
		}
		v, _ := wire.GetArg(out, "total")
		return v.(int64), nil
	}
	if total, err := inc(); err != nil || total != 1 {
		t.Fatalf("first call: total=%d err=%v", total, err)
	}
	p, err := b.Port("Counter")
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind() != wsdl.BindShm {
		t.Fatalf("bound kind = %v, want shm", p.Kind())
	}
	oldGen := h.shm.Generation()

	// Restart the shm endpoint behind the same socket path: a new
	// incarnation with a new generation stamp. The advertised WSDL in the
	// registry is unchanged, so only the generation pin can detect this.
	sockPath := h.shm.SockPath()
	if err := h.shm.Close(); err != nil {
		t.Fatal(err)
	}
	ss2, err := NewShmServer(h.c, sockPath, WithShmTelemetry(telemetry.Disabled()))
	if err != nil {
		t.Fatal(err)
	}
	defer ss2.Close()
	if ss2.Generation() == oldGen {
		t.Fatal("restarted server reused the generation stamp")
	}

	// The cached binding re-handshakes, sees the new generation, and must
	// refuse it rather than silently rebind.
	if _, err := inc(); !errors.Is(err, ErrStaleShmGeneration) {
		t.Fatalf("call across restart: %v, want ErrStaleShmGeneration", err)
	}
	// That error invalidated the binding: this call rediscovers, dials the
	// new incarnation, and succeeds. (The counter restarts at 1: the old
	// instance state lives in the container, which we kept — only the
	// endpoint restarted — so the count continues.)
	if total, err := inc(); err != nil || total != 2 {
		t.Fatalf("call after rebind: total=%d err=%v", total, err)
	}
	p2, err := b.Port("Counter")
	if err != nil {
		t.Fatal(err)
	}
	if sp, ok := p2.(*ShmPort); !ok || sp.Generation() != ss2.Generation() {
		t.Fatalf("rebound port not pinned to the new incarnation (ok=%v)", ok)
	}
}

// TestShmInvokeRaceWithClose runs invokes concurrently with a server
// shutdown and then a port shutdown. The invariant is memory safety (no
// use-after-munmap — run under -race) and that every call returns.
func TestShmInvokeRaceWithClose(t *testing.T) {
	h := newShmHost(t, "")
	defs := h.deploy(t, "Counter", "c1")
	p, err := Dial(defs, Options{Telemetry: telemetry.Disabled()})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				// Errors are expected once the server dies.
				_, _ = p.Invoke(context.Background(), "inc", wire.Args("by", int64(1)))
			}
		}()
	}
	time.Sleep(2 * time.Millisecond)
	_ = h.shm.Close() // mid-flight
	_ = p.Close()     // racing the failed callers
	wg.Wait()
	if _, err := p.Invoke(context.Background(), "inc", wire.Args("by", int64(1))); err == nil {
		t.Fatal("invoke on closed port should fail")
	}
}

// TestShmNoLeakOnServerChurn mirrors TestXDRMuxNoLeakOnServerChurn for
// the shm binding: every exit path (server death with calls in flight,
// handshake against a dead socket, port close) must unwind the demux and
// watcher goroutines on both sides and unmap the segments.
func TestShmNoLeakOnServerChurn(t *testing.T) {
	if !shmring.Supported() {
		t.Skip("shm binding unsupported on this platform")
	}
	c := container.New(container.Config{Name: "shmleak"})
	c.RegisterFactory("Counter", counterImpl())
	if _, _, err := c.Deploy("Counter", "c1"); err != nil {
		t.Fatal(err)
	}

	round := func(killMidFlight bool) {
		ss, err := NewShmServer(c, "", WithShmTelemetry(telemetry.Disabled()))
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewShmPort(ss.Addr(), "c1")
		if err != nil {
			t.Fatal(err)
		}
		p.SetTelemetry(telemetry.Disabled())
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 10; i++ {
					_, _ = p.Invoke(context.Background(), "inc", wire.Args("by", int64(1)))
				}
			}()
		}
		if killMidFlight {
			_ = ss.Close()
		}
		wg.Wait()
		if !killMidFlight {
			_ = ss.Close()
		}
		// Handshake against the dead (unlinked) socket: the dial-failure
		// path must not strand anything either.
		_, _ = p.Invoke(context.Background(), "inc", wire.Args("by", int64(1)))
		_ = p.Close()
	}

	round(false) // warm lazy singletons before taking the baseline
	baseline := goroutineCount()

	for i := 0; i < 4; i++ {
		round(i%2 == 0)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		now := goroutineCount()
		if now <= baseline+2 { // scheduler jitter tolerance
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: baseline=%d now=%d\n%s", baseline, now, buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestShmCancelledCallersDoNotLeakPendingEntries: a caller that abandons
// an in-flight shm call via context cancellation must remove its entry
// from the demux map; the late response is dropped and its buffer reused.
func TestShmCancelledCallersDoNotLeakPendingEntries(t *testing.T) {
	started := make(chan struct{}, 64)
	release := make(chan struct{})
	if !shmring.Supported() {
		t.Skip("shm binding unsupported on this platform")
	}
	c := container.New(container.Config{Name: "shmleak2"})
	c.RegisterFactory("Blocker", blockerImpl(started, release))
	if _, _, err := c.Deploy("Blocker", "b1"); err != nil {
		t.Fatal(err)
	}
	ss, err := NewShmServer(c, "", WithShmTelemetry(telemetry.Disabled()))
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	p, err := NewShmPort(ss.Addr(), "b1")
	if err != nil {
		t.Fatal(err)
	}
	p.SetTelemetry(telemetry.Disabled())
	defer p.Close()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
			defer cancel()
			if _, err := p.Invoke(ctx, "block", nil); err == nil {
				t.Error("blocked call should time out")
			}
		}()
	}
	wg.Wait()
	close(release) // drain the server-side handlers

	p.mu.Lock()
	sc := p.cur
	p.mu.Unlock()
	if sc == nil {
		t.Fatal("no live shm connection after invokes")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := sc.pending()
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d abandoned calls still pending", n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
