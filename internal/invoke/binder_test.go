package invoke

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"harness2/internal/registry"
	"harness2/internal/wire"
)

// countingSrc wraps a Lookup and counts FindByName round trips.
type countingSrc struct {
	registry.Lookup
	finds int32
}

func (c *countingSrc) FindByName(name string) []registry.Entry {
	atomic.AddInt32(&c.finds, 1)
	return c.Lookup.FindByName(name)
}

func binderHost(t *testing.T, lease time.Duration) (*testHost, *countingSrc) {
	t.Helper()
	h := newHost(t)
	inst, _ := h.deploy(t, "MatMul", "mm1")
	reg := registry.New()
	if lease > 0 {
		doc, err := h.c.WSDLDocument(inst.ID)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := reg.PublishLeased(registry.Entry{Name: "MatMul", WSDL: doc}, lease); err != nil {
			t.Fatal(err)
		}
	} else if _, err := h.c.Expose(inst.ID, reg); err != nil {
		t.Fatal(err)
	}
	return h, &countingSrc{Lookup: reg}
}

func binderCall(t *testing.T, b *Binder, service string) {
	t.Helper()
	out, err := b.Invoke(context.Background(), service, "getResult", wire.Args(
		"mata", []float64{1, 2, 3}, "matb", []float64{4, 5, 6}))
	if err != nil {
		t.Fatal(err)
	}
	v, _ := wire.GetArg(out, "result")
	if got := v.([]float64); len(got) != 3 || got[0] != 4 {
		t.Fatalf("unexpected result %v", got)
	}
}

func TestBinderMemoizesDiscovery(t *testing.T) {
	_, src := binderHost(t, 0)
	b := &Binder{Lookup: src, TTL: time.Hour}
	defer b.Close()
	for i := 0; i < 5; i++ {
		binderCall(t, b, "MatMul")
	}
	if n := atomic.LoadInt32(&src.finds); n != 1 {
		t.Fatalf("warm calls must not rediscover: %d FindByName calls", n)
	}
}

func TestBinderInvalidatesOnInvokeFault(t *testing.T) {
	_, src := binderHost(t, 0)
	b := &Binder{Lookup: src, TTL: time.Hour}
	defer b.Close()
	binderCall(t, b, "MatMul")
	if _, err := b.Invoke(context.Background(), "MatMul", "noSuchOp", nil); err == nil {
		t.Fatal("expected fault from unknown op")
	}
	binderCall(t, b, "MatMul")
	if n := atomic.LoadInt32(&src.finds); n != 2 {
		t.Fatalf("a faulted call must force rediscovery: %d FindByName calls", n)
	}
}

func TestBinderTTLExpiryRebinds(t *testing.T) {
	_, src := binderHost(t, 0)
	now := time.Unix(0, 0)
	b := &Binder{Lookup: src, TTL: time.Minute, Clock: func() time.Time { return now }}
	defer b.Close()
	binderCall(t, b, "MatMul")
	now = now.Add(30 * time.Second)
	binderCall(t, b, "MatMul")
	if n := atomic.LoadInt32(&src.finds); n != 1 {
		t.Fatalf("within TTL: %d FindByName calls", n)
	}
	now = now.Add(31 * time.Second)
	binderCall(t, b, "MatMul")
	if n := atomic.LoadInt32(&src.finds); n != 2 {
		t.Fatalf("past TTL: %d FindByName calls, want 2", n)
	}
}

func TestBinderLeaseClampsTTL(t *testing.T) {
	_, src := binderHost(t, 250*time.Millisecond)
	b := &Binder{Lookup: src, TTL: time.Hour}
	defer b.Close()
	binderCall(t, b, "MatMul")
	// Once the lease has lapsed, the binding must not outlive it even
	// though the nominal TTL is an hour. The re-discovery then fails
	// because the registration itself expired.
	time.Sleep(300 * time.Millisecond)
	_, err := b.Invoke(context.Background(), "MatMul", "getResult", nil)
	if err == nil {
		t.Fatal("expected rebind failure after lease expiry")
	}
	if n := atomic.LoadInt32(&src.finds); n < 2 {
		t.Fatalf("lease expiry must force rediscovery: %d FindByName calls", n)
	}
}

func TestBinderNoCachingWhenTTLZero(t *testing.T) {
	_, src := binderHost(t, 0)
	b := &Binder{Lookup: src}
	for i := 0; i < 3; i++ {
		binderCall(t, b, "MatMul")
	}
	if n := atomic.LoadInt32(&src.finds); n != 3 {
		t.Fatalf("TTL=0 must rediscover every call: %d FindByName calls", n)
	}
}
