package invoke

import (
	"io"
	"time"

	"harness2/internal/telemetry"
)

// This file holds the invocation framework's instrument sets (telemetry
// S27). Every port kind and server handler records the same per-binding
// family trio — call count, error count, latency histogram, keyed by
// operation — plus the XDR binding's wire-level extras: bytes on the
// wire in each direction, the multiplexed in-flight depth, and the
// flusher's batch size. All handles are nil-safe, so a port configured
// with telemetry.Disabled() pays one branch per operation and nothing
// else (proven by E12 / BenchmarkE12_Disabled).

// bindingMetrics is the per-binding instrument set: calls, errors and
// latency per operation, with the binding name as a fixed label.
type bindingMetrics struct {
	calls *telemetry.CounterVec
	errs  *telemetry.CounterVec
	lat   *telemetry.HistogramVec
}

// newBindingMetrics resolves the invoke family trio on r for one binding.
// A disabled registry yields nil vecs, which hand out nil children.
func newBindingMetrics(r *telemetry.Registry, binding string) bindingMetrics {
	r.Help("harness_invoke_calls_total", "invocations by binding and operation")
	r.Help("harness_invoke_errors_total", "failed invocations by binding and operation")
	r.Help("harness_invoke_latency_ns", "invocation latency by binding and operation")
	return bindingMetrics{
		calls: r.CounterVec("harness_invoke_calls_total", "op", "binding", binding),
		errs:  r.CounterVec("harness_invoke_errors_total", "op", "binding", binding),
		lat:   r.HistogramVec("harness_invoke_latency_ns", "op", "binding", binding),
	}
}

// begin opens one timed call: it resolves the op's latency histogram and
// starts its timer. On the disabled path the histogram is nil and Start
// skips the clock call entirely.
func (m *bindingMetrics) begin(op string) (*telemetry.Histogram, time.Time) {
	h := m.lat.With(op)
	return h, h.Start()
}

// done closes one timed call begun with begin.
func (m *bindingMetrics) done(op string, h *telemetry.Histogram, start time.Time, err error) {
	h.ObserveSince(start)
	m.calls.With(op).Inc()
	if err != nil {
		m.errs.With(op).Inc()
	}
}

// xdrWireMetrics is the XDR binding's wire-level instrument set, shared
// by the client port and the server with a distinguishing role label.
type xdrWireMetrics struct {
	tx, rx     *telemetry.Counter   // bytes that reached / left the socket
	inflight   *telemetry.Gauge     // v2: registered, unanswered requests
	flushBatch *telemetry.Histogram // v2: bytes committed per flush syscall

	// v3 compression plane (S33): wire bytes that traveled compressed in
	// each direction, the per-frame compressed/original size ratio, and a
	// per-codec gauge of live connections that negotiated it. All nil-safe:
	// a raw v3 stream touches none of them.
	compOut   *telemetry.Counter   // compressed payload bytes sent
	compIn    *telemetry.Counter   // compressed payload bytes received
	compRatio *telemetry.Histogram // per-frame compressed size as % of original
	codecs    *telemetry.GaugeVec  // live connections by negotiated codec
}

func newXDRWireMetrics(r *telemetry.Registry, role string) xdrWireMetrics {
	r.Help("harness_xdr_tx_bytes_total", "bytes written to XDR sockets by role")
	r.Help("harness_xdr_rx_bytes_total", "bytes read from XDR sockets by role")
	r.Help("harness_xdr_mux_inflight", "v2 requests awaiting a response by role")
	r.Help("harness_xdr_mux_flush_batch_bytes", "bytes per v2 flush syscall by role")
	r.Help("harness_xdr_compress_out_bytes_total", "compressed v3 payload bytes sent by role")
	r.Help("harness_xdr_compress_in_bytes_total", "compressed v3 payload bytes received by role")
	r.Help("harness_xdr_compress_ratio_pct", "per-frame compressed size as percent of original by role")
	r.Help("harness_xdr_codec_connections", "live XDR connections by negotiated codec and role")
	return xdrWireMetrics{
		tx:         r.Counter("harness_xdr_tx_bytes_total", "role", role),
		rx:         r.Counter("harness_xdr_rx_bytes_total", "role", role),
		inflight:   r.Gauge("harness_xdr_mux_inflight", "role", role),
		flushBatch: r.Histogram("harness_xdr_mux_flush_batch_bytes", "role", role),
		compOut:    r.Counter("harness_xdr_compress_out_bytes_total", "role", role),
		compIn:     r.Counter("harness_xdr_compress_in_bytes_total", "role", role),
		compRatio:  r.Histogram("harness_xdr_compress_ratio_pct", "role", role),
		codecs:     r.GaugeVec("harness_xdr_codec_connections", "codec", "role", role),
	}
}

// compressedOut records one outbound frame that shipped compressed: wire
// is the on-wire payload size, orig the uncompressed size.
func (wm *xdrWireMetrics) compressedOut(wire, orig int) {
	wm.compOut.Add(uint64(wire))
	if orig > 0 {
		wm.compRatio.Observe(uint64(wire * 100 / orig))
	}
}

// compressedIn records one inbound frame that arrived compressed.
func (wm *xdrWireMetrics) compressedIn(wire int) {
	wm.compIn.Add(uint64(wire))
}

// countingReader mirrors countingWriter on the receive side: it feeds the
// rx byte counter without a per-connection mutex (the counter is atomic,
// and a nil counter is a branch).
type countingReader struct {
	r  io.Reader
	rx *telemetry.Counter
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	if n > 0 {
		cr.rx.Add(uint64(n))
	}
	return n, err
}
