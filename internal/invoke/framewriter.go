package invoke

import (
	"net"

	"harness2/internal/telemetry"
)

// largeFrameMin is the frame size at which the v2 write path stops
// copying through the coalescing buffer and hands the frame to the
// kernel directly, vectored together with whatever smaller frames are
// already buffered.
const largeFrameMin = 8 << 10

// frameWriter is the v2 write side: small frames coalesce in a buffer
// that a flusher commits in one write syscall (see muxConn.flushLoop),
// while frames of largeFrameMin bytes or more skip the copy and leave
// immediately as a single writev of [buffered frames, large frame] via
// net.Buffers. bufio.Writer would instead memcpy the large frame's
// prefix into its buffer and split the rest across extra write calls —
// for bulk numeric payloads the copy is the dominant cost the zero-copy
// encoder just removed, so the writer must not reintroduce it.
//
// Byte accounting is preserved for the retry logic: every byte that
// reaches the socket — buffered, direct, or vectored — is counted by the
// shared countingWriter, so "nothing of this request hit the wire"
// remains decidable (see countingWriter). frameWriter is not safe for
// concurrent use; callers hold the connection's write mutex.
type frameWriter struct {
	conn net.Conn
	cw   *countingWriter
	fb   *telemetry.Histogram // bytes committed per flush/writev
	buf  []byte
}

func newFrameWriter(conn net.Conn, wm xdrWireMetrics) *frameWriter {
	return &frameWriter{
		conn: conn,
		cw:   &countingWriter{w: conn, tx: wm.tx},
		fb:   wm.flushBatch,
		buf:  make([]byte, 0, xdrBufSize),
	}
}

// Buffered returns the bytes awaiting a Flush.
func (fw *frameWriter) Buffered() int { return len(fw.buf) }

// Write queues one frame (callers pass whole frames, never fragments).
// Small frames are copied into the coalescing buffer — flushing first if
// they would not fit — and wait for the flusher; large frames go out
// vectored right away, since batching exists to amortize syscalls over
// small frames and a large frame amortizes its own.
func (fw *frameWriter) Write(p []byte) (int, error) {
	if len(p) >= largeFrameMin {
		if err := fw.writeVectored(p); err != nil {
			return 0, err
		}
		return len(p), nil
	}
	if len(fw.buf)+len(p) > cap(fw.buf) {
		if err := fw.Flush(); err != nil {
			return 0, err
		}
	}
	fw.buf = append(fw.buf, p...)
	return len(p), nil
}

// writeVectored commits the pending buffered frames and one large frame
// in a single writev, with no copy of p.
func (fw *frameWriter) writeVectored(p []byte) error {
	if len(fw.buf) == 0 {
		_, err := fw.cw.Write(p)
		if err == nil {
			fw.fb.Observe(uint64(len(p)))
		}
		return err
	}
	total := len(fw.buf) + len(p)
	bufs := net.Buffers{fw.buf, p}
	n, err := bufs.WriteTo(fw.conn)
	fw.buf = fw.buf[:0]
	fw.cw.n += int(n)
	if n > 0 {
		fw.cw.tx.Add(uint64(n))
	}
	if err == nil {
		fw.fb.Observe(uint64(total))
	}
	return err
}

// Flush commits the buffered frames in one write. On error the remainder
// is dropped rather than retained: a partial frame has desynced the
// stream, and every caller responds by closing the connection.
func (fw *frameWriter) Flush() error {
	if len(fw.buf) == 0 {
		return nil
	}
	n := len(fw.buf)
	_, err := fw.cw.Write(fw.buf)
	fw.buf = fw.buf[:0]
	if err == nil {
		fw.fb.Observe(uint64(n))
	}
	return err
}
