package invoke

// Wire-compression policy for the XDR v3 binding (DESIGN.md S33). The
// codec itself is negotiated once at dial time (see internal/xdr frame
// docs); the policy decides what each side offers/accepts and how
// aggressively its own outbound frames are compressed. Modes:
//
//   - auto: follow the deployment — a server advertises and accepts its
//     codec and compresses responses adaptively; a client enables
//     adaptive compression iff the peer's WSDL advertises the `compress`
//     capability (direct ports without a WSDL stay raw).
//   - off: offer/accept raw only; never compress. Inbound compressed
//     frames are still decoded — the receive side is protocol, not
//     policy.
//   - on: compress every frame over the size floor that actually shrinks.
//   - adaptive: like on, plus incompressibility backoff — a run of
//     frames the codec cannot shrink drops the attempt rate to sampling.

import (
	"fmt"
	"strings"

	"harness2/internal/wsdl"
	"harness2/internal/xdr"
)

// CompressMode selects how an endpoint treats v3 wire compression.
type CompressMode int

const (
	// CompressAuto defers to the deployment default (see package comment).
	CompressAuto CompressMode = iota
	// CompressOff disables outbound compression and offers raw only.
	CompressOff
	// CompressOn compresses every eligible outbound frame.
	CompressOn
	// CompressAdaptive compresses with incompressibility backoff.
	CompressAdaptive
)

func (m CompressMode) String() string {
	switch m {
	case CompressAuto:
		return "auto"
	case CompressOff:
		return "off"
	case CompressOn:
		return "on"
	case CompressAdaptive:
		return "adaptive"
	}
	return fmt.Sprintf("CompressMode(%d)", int(m))
}

// CompressPolicy is one endpoint's v3 compression stance. The zero value
// is CompressAuto with the default codec (flate).
type CompressPolicy struct {
	Mode  CompressMode
	Codec string // codec capability name; empty = "flate"
}

// ParseCompressPolicy parses the -compress flag grammar:
// "auto" | "off" | "on" | "adaptive", optionally ":<codec>".
func ParseCompressPolicy(s string) (CompressPolicy, error) {
	mode, codec, _ := strings.Cut(strings.TrimSpace(s), ":")
	var p CompressPolicy
	switch mode {
	case "", "auto":
		p.Mode = CompressAuto
	case "off":
		p.Mode = CompressOff
	case "on":
		p.Mode = CompressOn
	case "adaptive":
		p.Mode = CompressAdaptive
	default:
		return p, fmt.Errorf("invoke: unknown compress mode %q", mode)
	}
	if codec != "" {
		if xdr.CodecByName(codec) == nil {
			return p, fmt.Errorf("invoke: unknown compress codec %q", codec)
		}
		p.Codec = codec
	}
	return p, nil
}

// codec resolves the policy's codec object (default flate).
func (p CompressPolicy) codec() xdr.Codec {
	if p.Codec == "" {
		return xdr.Flate
	}
	return xdr.CodecByName(p.Codec)
}

// CodecName reports the codec the policy would use — what a server
// advertises in WSDL when the policy enables compression.
func (p CompressPolicy) CodecName() string {
	if c := p.codec(); c != nil {
		return c.Name()
	}
	return ""
}

// Advertised reports the codec name a server with this policy should
// publish as the `compress` capability in generated WSDL — empty when the
// policy disables compression (auto counts as on at a server).
func (p CompressPolicy) Advertised() string {
	if !p.enabled(true) {
		return ""
	}
	return p.CodecName()
}

// enabled reports whether the policy compresses outbound frames at all,
// with autoOn supplying the meaning of CompressAuto at this endpoint.
func (p CompressPolicy) enabled(autoOn bool) bool {
	switch p.Mode {
	case CompressOff:
		return false
	case CompressAuto:
		return autoOn
	}
	return true
}

// adaptive reports whether outbound compression backs off on
// incompressible traffic (auto behaves adaptively wherever it is on).
func (p CompressPolicy) adaptive() bool { return p.Mode != CompressOn }

// offerWord builds the client's dial-time offered-codec word.
func (p CompressPolicy) offerWord(autoOn bool) uint32 {
	if !p.enabled(autoOn) {
		return xdr.OfferWord() // raw only
	}
	return xdr.OfferWord(p.codec())
}

// acceptWord builds the server's accepted-codec mask for ChooseCodec.
func (p CompressPolicy) acceptWord(autoOn bool) uint32 {
	return p.offerWord(autoOn) // same shape: raw plus the policy codec
}

// resolveCompress turns a client's stance plus the peer's declared
// `compress` capability into the concrete policy for one XDR port. Auto
// follows the advertisement: a known advertised codec yields adaptive
// compression with that codec, anything else stays off. Explicit modes
// pass through untouched — the operator outranks the WSDL.
func resolveCompress(p CompressPolicy, b *wsdl.Binding) CompressPolicy {
	if p.Mode != CompressAuto {
		return p
	}
	if b != nil {
		if name, ok := b.Capability("compress"); ok && xdr.CodecByName(name) != nil {
			return CompressPolicy{Mode: CompressAdaptive, Codec: name}
		}
	}
	return CompressPolicy{Mode: CompressOff}
}
