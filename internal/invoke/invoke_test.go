package invoke

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"harness2/internal/container"
	"harness2/internal/wire"
	"harness2/internal/wsdl"
)

// testHost stands up a container with MatMul and Counter instances served
// over SOAP/HTTP and XDR, returning the container and its live WSDL.
type testHost struct {
	c    *container.Container
	http *httptest.Server
	xdr  *XDRServer
}

func matmulImpl() container.Factory {
	return container.FuncFactory(func() *container.FuncComponent {
		return &container.FuncComponent{
			Spec: wsdl.MatMulSpec(),
			Handlers: map[string]container.OpFunc{
				"getResult": func(ctx context.Context, args []wire.Arg) ([]wire.Arg, error) {
					av, _ := wire.GetArg(args, "mata")
					bv, _ := wire.GetArg(args, "matb")
					a := av.([]float64)
					b := bv.([]float64)
					out := make([]float64, len(a))
					for i := range a {
						if i < len(b) {
							out[i] = a[i] * b[i]
						}
					}
					return wire.Args("result", out), nil
				},
			},
		}
	})
}

func counterImpl() container.Factory {
	return container.FuncFactory(func() *container.FuncComponent {
		var mu sync.Mutex
		var n int64
		return &container.FuncComponent{
			Spec: wsdl.ServiceSpec{Name: "Counter", Operations: []wsdl.OpSpec{
				{Name: "inc", Input: []wsdl.ParamSpec{{Name: "by", Type: wire.KindInt64}},
					Output: []wsdl.ParamSpec{{Name: "total", Type: wire.KindInt64}}},
			}},
			Handlers: map[string]container.OpFunc{
				"inc": func(ctx context.Context, args []wire.Arg) ([]wire.Arg, error) {
					by, _ := wire.GetArg(args, "by")
					mu.Lock()
					defer mu.Unlock()
					n += by.(int64)
					return wire.Args("total", n), nil
				},
			},
		}
	})
}

func newHost(t *testing.T) *testHost {
	t.Helper()
	// Bootstrap: start servers first to learn addresses, then rebuild the
	// container config with real endpoints.
	c := container.New(container.Config{Name: "node1"})
	c.RegisterFactory("MatMul", matmulImpl())
	c.RegisterFactory("Counter", counterImpl())

	hs := httptest.NewServer(&SOAPHandler{Container: c})
	t.Cleanup(hs.Close)
	xs, err := NewXDRServer(c, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = xs.Close() })

	// Rebuild with advertised endpoints; same instances map not needed —
	// recreate the container wrapper with endpoints and re-register.
	host := container.New(container.Config{
		Name:     "node1",
		SOAPBase: hs.URL + "/services",
		HTTPBase: hs.URL + "/rest",
		XDRAddr:  xs.Addr(),
	})
	host.RegisterFactory("MatMul", matmulImpl())
	host.RegisterFactory("Counter", counterImpl())
	// Point the servers at the endpoint-aware container.
	mux := http.NewServeMux()
	mux.Handle("/services/", &SOAPHandler{Container: host})
	mux.Handle("/rest/", http.StripPrefix("/rest/", &HTTPGetHandler{Container: host}))
	hs.Config.Handler = mux
	xs.Retarget(host)
	return &testHost{c: host, http: hs, xdr: xs}
}

func (h *testHost) deploy(t *testing.T, class, id string) (*container.Instance, *wsdl.Definitions) {
	t.Helper()
	inst, _, err := h.c.Deploy(class, id)
	if err != nil {
		t.Fatal(err)
	}
	defs, err := h.c.WSDLFor(inst.ID)
	if err != nil {
		t.Fatal(err)
	}
	return inst, defs
}

func TestDialPrefersLocal(t *testing.T) {
	h := newHost(t)
	_, defs := h.deploy(t, "MatMul", "m1")
	p, err := Dial(defs, Options{LocalContainers: []*container.Container{h.c}})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Kind() != wsdl.BindJavaObject {
		t.Fatalf("kind = %v, want JavaObject", p.Kind())
	}
	out, err := p.Invoke(context.Background(), "getResult",
		wire.Args("mata", []float64{1, 2, 3}, "matb", []float64{4, 5, 6}))
	if err != nil {
		t.Fatal(err)
	}
	res, _ := wire.GetArg(out, "result")
	if !wire.Equal(res, []float64{4, 10, 18}) {
		t.Fatalf("result = %v", res)
	}
}

func TestDialFallsBackToXDRWhenNotColocated(t *testing.T) {
	h := newHost(t)
	_, defs := h.deploy(t, "MatMul", "m1")
	p, err := Dial(defs, Options{}) // no local containers
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Kind() != wsdl.BindXDR {
		t.Fatalf("kind = %v, want XDR", p.Kind())
	}
	out, err := p.Invoke(context.Background(), "getResult",
		wire.Args("mata", []float64{2}, "matb", []float64{8}))
	if err != nil {
		t.Fatal(err)
	}
	res, _ := wire.GetArg(out, "result")
	if !wire.Equal(res, []float64{16}) {
		t.Fatalf("result = %v", res)
	}
}

func TestDialSOAPWhenXDRForbidden(t *testing.T) {
	h := newHost(t)
	_, defs := h.deploy(t, "MatMul", "m1")
	p, err := Dial(defs, Options{Forbid: []wsdl.BindingKind{wsdl.BindXDR, wsdl.BindJavaObject}})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Kind() != wsdl.BindSOAP {
		t.Fatalf("kind = %v, want SOAP", p.Kind())
	}
	out, err := p.Invoke(context.Background(), "getResult",
		wire.Args("mata", []float64{3}, "matb", []float64{3}))
	if err != nil {
		t.Fatal(err)
	}
	res, _ := wire.GetArg(out, "result")
	if !wire.Equal(res, []float64{9}) {
		t.Fatalf("result = %v", res)
	}
}

func TestOpenAllReturnsAllBindings(t *testing.T) {
	h := newHost(t)
	_, defs := h.deploy(t, "MatMul", "m1")
	ports := OpenAll(defs, Options{LocalContainers: []*container.Container{h.c}})
	if len(ports) != 4 {
		t.Fatalf("ports = %d", len(ports))
	}
	kinds := map[wsdl.BindingKind]bool{}
	ctx := context.Background()
	for _, p := range ports {
		kinds[p.Kind()] = true
		out, err := p.Invoke(ctx, "getResult", wire.Args("mata", []float64{1}, "matb", []float64{7}))
		if err != nil {
			t.Fatalf("[%v] %v", p.Kind(), err)
		}
		res, _ := wire.GetArg(out, "result")
		if !wire.Equal(res, []float64{7}) {
			t.Fatalf("[%v] result = %v", p.Kind(), res)
		}
		_ = p.Close()
	}
	if !kinds[wsdl.BindJavaObject] || !kinds[wsdl.BindXDR] || !kinds[wsdl.BindSOAP] || !kinds[wsdl.BindHTTP] {
		t.Fatalf("kinds = %v", kinds)
	}
}

func TestStatefulInstanceViaAllBindings(t *testing.T) {
	// One stateful Counter instance must accumulate across bindings:
	// the XDR and SOAP paths address the same pinned instance the
	// JavaObject binding does.
	h := newHost(t)
	_, defs := h.deploy(t, "Counter", "c1")
	ports := OpenAll(defs, Options{LocalContainers: []*container.Container{h.c}})
	if len(ports) != 4 {
		t.Fatalf("ports = %d (WSDL: %s)", len(ports), defs)
	}
	ctx := context.Background()
	var last int64
	for _, p := range ports {
		out, err := p.Invoke(ctx, "inc", wire.Args("by", int64(1)))
		if err != nil {
			t.Fatalf("[%v] %v", p.Kind(), err)
		}
		total, _ := wire.GetArg(out, "total")
		last = total.(int64)
		_ = p.Close()
	}
	if last != 4 {
		t.Fatalf("total after 4 bindings = %d, want 4", last)
	}
}

func TestXDRConnectionReuse(t *testing.T) {
	h := newHost(t)
	_, defs := h.deploy(t, "Counter", "c1")
	ref := defs.PortsByKind(wsdl.BindXDR)
	if len(ref) != 1 {
		t.Fatalf("xdr ports = %d", len(ref))
	}
	p := NewXDRPort(ref[0].Port.Address, "c1", false)
	defer p.Close()
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		if _, err := p.Invoke(ctx, "inc", wire.Args("by", int64(1))); err != nil {
			t.Fatal(err)
		}
	}
	out, err := p.Invoke(ctx, "inc", wire.Args("by", int64(0)))
	if err != nil {
		t.Fatal(err)
	}
	total, _ := wire.GetArg(out, "total")
	if total.(int64) != 10 {
		t.Fatalf("total = %v", total)
	}
}

func TestXDRDialPerCall(t *testing.T) {
	h := newHost(t)
	_, defs := h.deploy(t, "Counter", "c1")
	ref := defs.PortsByKind(wsdl.BindXDR)
	p := NewXDRPort(ref[0].Port.Address, "c1", true)
	defer p.Close()
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := p.Invoke(ctx, "inc", wire.Args("by", int64(2))); err != nil {
			t.Fatal(err)
		}
	}
}

func TestXDRReconnectAfterServerRestart(t *testing.T) {
	// After the server drops a pooled connection, the port must recover
	// on a fresh connection without ever double-invoking: either the dead
	// connection is detected before sending (transparent), or the call
	// surfaces an error and the *next* call succeeds. The counter proves
	// exactly one server-side increment per successful call.
	for _, mode := range []XDRMode{XDRModeMux, XDRModeSerial} {
		t.Run(mode.String(), func(t *testing.T) {
			h := newHost(t)
			_, defs := h.deploy(t, "Counter", mode.String())
			ref := defs.PortsByKind(wsdl.BindXDR)
			p := NewXDRPortMode(ref[0].Port.Address, mode.String(), mode)
			defer p.Close()
			ctx := context.Background()
			if _, err := p.Invoke(ctx, "inc", wire.Args("by", int64(1))); err != nil {
				t.Fatal(err)
			}
			// Kill the pooled connection server-side.
			h.xdr.mu.Lock()
			for conn := range h.xdr.conns {
				_ = conn.Close()
			}
			h.xdr.mu.Unlock()
			var successes int64 = 1 // the call before the kill
			var lastTotal int64
			for attempt := 0; attempt < 10; attempt++ {
				out, err := p.Invoke(ctx, "inc", wire.Args("by", int64(1)))
				if err != nil {
					continue // ambiguous-outcome error is acceptable once
				}
				successes++
				total, _ := wire.GetArg(out, "total")
				lastTotal = total.(int64)
				break
			}
			if lastTotal == 0 {
				t.Fatal("port never recovered after peer close")
			}
			if lastTotal != successes {
				t.Fatalf("total = %d after %d successful calls (silent retry double-invoked?)",
					lastTotal, successes)
			}
		})
	}
}

func TestXDRRejectsNonNumericArgs(t *testing.T) {
	h := newHost(t)
	_, defs := h.deploy(t, "Counter", "c1")
	ref := defs.PortsByKind(wsdl.BindXDR)
	p := NewXDRPort(ref[0].Port.Address, "c1", false)
	defer p.Close()
	_, err := p.Invoke(context.Background(), "inc", wire.Args("by", "a string"))
	if err == nil {
		t.Fatal("XDR port must reject non-numeric arguments")
	}
}

func TestXDRFaults(t *testing.T) {
	h := newHost(t)
	h.deploy(t, "Counter", "c1")
	_, defs := h.deploy(t, "Counter", "c2")
	ref := defs.PortsByKind(wsdl.BindXDR)
	ctx := context.Background()

	ghost := NewXDRPort(ref[0].Port.Address, "ghost", false)
	defer ghost.Close()
	if _, err := ghost.Invoke(ctx, "inc", wire.Args("by", int64(1))); err == nil ||
		!strings.Contains(err.Error(), "no such instance") {
		t.Fatalf("err = %v", err)
	}
	p := NewXDRPort(ref[0].Port.Address, "c2", false)
	defer p.Close()
	if _, err := p.Invoke(ctx, "nosuchop", nil); err == nil {
		t.Fatal("unknown op should fault")
	}
	// Faults must not poison the connection.
	if _, err := p.Invoke(ctx, "inc", wire.Args("by", int64(1))); err != nil {
		t.Fatalf("call after fault: %v", err)
	}
}

func TestSOAPHandlerErrors(t *testing.T) {
	h := newHost(t)
	h.deploy(t, "Counter", "c1")
	// Unknown instance via SOAP.
	p := &SOAPPort{URL: h.http.URL + "/services/ghost"}
	if _, err := p.Invoke(context.Background(), "inc", wire.Args("by", int64(1))); err == nil {
		t.Fatal("unknown instance should fault")
	}
	// Bad path (no instance).
	p2 := &SOAPPort{URL: h.http.URL + "/"}
	if _, err := p2.Invoke(context.Background(), "inc", nil); err == nil {
		t.Fatal("missing instance segment should fault")
	}
}

func TestParseLocalAddress(t *testing.T) {
	c, i, err := ParseLocalAddress("local:node1/m1")
	if err != nil || c != "node1" || i != "m1" {
		t.Fatalf("got %q %q %v", c, i, err)
	}
	// The instance keeps everything after the first separator.
	c, i, err = ParseLocalAddress("local:n/a/b")
	if err != nil || c != "n" || i != "a/b" {
		t.Fatalf("got %q %q %v", c, i, err)
	}
	for _, bad := range []string{
		"http://x",            // wrong scheme
		"",                    // empty
		"local",               // scheme without colon
		"Local:node1/m1",      // scheme is case-sensitive
		" local:node1/m1",     // leading whitespace is not trimmed
		"local:",              // nothing after scheme
		"local:onlycontainer", // no separator
		"local:/inst",         // empty container
		"local:c/",            // empty instance
		"local:/",             // both empty
	} {
		if _, _, err := ParseLocalAddress(bad); err == nil {
			t.Errorf("ParseLocalAddress(%q) should fail", bad)
		}
	}
}

func TestDialNoUsablePort(t *testing.T) {
	h := newHost(t)
	_, defs := h.deploy(t, "MatMul", "m1")
	_, err := Dial(defs, Options{Forbid: []wsdl.BindingKind{wsdl.BindSOAP, wsdl.BindXDR, wsdl.BindJavaObject, wsdl.BindHTTP}})
	if err == nil {
		t.Fatal("Dial with everything forbidden should fail")
	}
}

func TestCallOperation(t *testing.T) {
	h := newHost(t)
	_, defs := h.deploy(t, "Counter", "c1")
	p, err := Dial(defs, Options{LocalContainers: []*container.Container{h.c}})
	if err != nil {
		t.Fatal(err)
	}
	v, err := CallOperation(context.Background(), p, "inc", wire.Args("by", int64(4)), "total")
	if err != nil || v.(int64) != 4 {
		t.Fatalf("v=%v err=%v", v, err)
	}
	if _, err := CallOperation(context.Background(), p, "inc", wire.Args("by", int64(1)), "missing"); err == nil {
		t.Fatal("missing result name should error")
	}
}

func TestConcurrentXDRClients(t *testing.T) {
	h := newHost(t)
	_, defs := h.deploy(t, "Counter", "c1")
	ref := defs.PortsByKind(wsdl.BindXDR)
	var wg sync.WaitGroup
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := NewXDRPort(ref[0].Port.Address, "c1", false)
			defer p.Close()
			for j := 0; j < 25; j++ {
				if _, err := p.Invoke(ctx, "inc", wire.Args("by", int64(1))); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	inst, _ := h.c.Instance("c1")
	out, err := h.c.Invoke(ctx, "c1", "inc", wire.Args("by", int64(0)))
	if err != nil {
		t.Fatal(err)
	}
	total, _ := wire.GetArg(out, "total")
	if total.(int64) != 200 {
		t.Fatalf("total = %v (invocations=%d)", total, inst.Invocations())
	}
}
