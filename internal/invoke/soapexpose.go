package invoke

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"harness2/internal/container"
	"harness2/internal/resilience"
	"harness2/internal/soap"
	"harness2/internal/telemetry"
	"harness2/internal/wire"
)

// SOAPHandler exposes every instance of c over the SOAP/HTTP binding.
// The final URL path segment selects the instance, matching the
// SOAPBase/<instance> endpoints the container advertises in WSDL.
type SOAPHandler struct {
	Container *container.Container
	Codec     soap.Codec
	// Understood lists header entry names the handler processes; any
	// other mustUnderstand header is refused with a MustUnderstand fault.
	Understood []string
	// Telemetry selects the metrics registry; nil falls back to the
	// process default, telemetry.Disabled() switches instrumentation off.
	Telemetry *telemetry.Registry
	// Limiter, when non-nil, applies admission control: shed requests are
	// refused with a Server fault carrying the Overloaded token, which
	// clients classify as retryable-elsewhere across the wire.
	Limiter *resilience.Limiter

	minit sync.Once
	m     bindingMetrics
}

func (h *SOAPHandler) metrics() *bindingMetrics {
	h.minit.Do(func() { h.m = newBindingMetrics(telemetry.Or(h.Telemetry), "soap-server") })
	return &h.m
}

// isTraceHeader recognises the h2:Trace header entry in the forms XML
// decoding may surface it: the prefixed wire name, the bare local name
// (when the decoder resolves the namespace prefix away), or any other
// prefix bound to the same local name.
func isTraceHeader(name string) bool {
	return name == telemetry.TraceHeaderName ||
		name == "Trace" || strings.HasSuffix(name, ":Trace")
}

// traceContext lifts an incoming h2:Trace header into ctx, so the span
// opened for the server-side invocation continues the caller's trace.
func traceContext(ctx context.Context, headers []soap.Header) context.Context {
	for _, hd := range headers {
		if !isTraceHeader(hd.Name) {
			continue
		}
		if v, ok := hd.Value.(string); ok {
			if sc, ok := telemetry.ParseTraceHeader(v); ok {
				return telemetry.ContextWith(ctx, sc)
			}
		}
	}
	return ctx
}

// ServeHTTP implements http.Handler.
func (h *SOAPHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "soap endpoint requires POST", http.StatusMethodNotAllowed)
		return
	}
	path := strings.TrimSuffix(r.URL.Path, "/")
	i := strings.LastIndexByte(path, '/')
	instance := path[i+1:]
	if instance == "" {
		h.fault(w, &soap.Fault{Code: "Client", String: "no instance in request path"})
		return
	}
	bodyBuf := soap.AcquireBuffer()
	defer soap.ReleaseBuffer(bodyBuf)
	body, err := soap.AppendReadAll(*bodyBuf, r.Body, r.ContentLength)
	*bodyBuf = body[:0]
	if err != nil {
		h.fault(w, &soap.Fault{Code: "Client", String: "unreadable request body"})
		return
	}
	call, err := h.Codec.DecodeCall(body)
	if err != nil {
		h.fault(w, &soap.Fault{Code: "Client", String: err.Error()})
		return
	}
	for _, hd := range call.Headers {
		if hd.MustUnderstand && !h.understands(hd.Name) {
			h.fault(w, &soap.Fault{Code: "MustUnderstand",
				String: fmt.Sprintf("header %q not understood", hd.Name)})
			return
		}
	}
	args := make([]wire.Arg, len(call.Params))
	for j, p := range call.Params {
		args[j] = wire.Arg{Name: p.Name, Value: p.Value}
	}
	release, err := h.Limiter.Acquire(r.Context())
	if err != nil {
		h.fault(w, &soap.Fault{Code: "Server", String: err.Error()})
		return
	}
	m := h.metrics()
	hist, start := m.begin(call.Method)
	ctx := traceContext(r.Context(), call.Headers)
	ctx, sp := telemetry.Or(h.Telemetry).ChildSpan(ctx, "soap.server")
	out, err := h.Container.Invoke(ctx, instance, call.Method, args)
	release()
	sp.SetError(err)
	sp.End()
	m.done(call.Method, hist, start, err)
	if err != nil {
		h.fault(w, &soap.Fault{Code: "Server", String: err.Error()})
		return
	}
	params := make([]soap.Param, len(out))
	for j, a := range out {
		params[j] = soap.Param{Name: a.Name, Value: a.Value}
	}
	respBuf := soap.AcquireBuffer()
	defer soap.ReleaseBuffer(respBuf)
	resp, err := h.Codec.AppendResponse(*respBuf, call.Method, params)
	if err != nil {
		h.fault(w, &soap.Fault{Code: "Server", String: err.Error()})
		return
	}
	*respBuf = resp[:0]
	w.Header().Set("Content-Type", "text/xml; charset=utf-8")
	w.Header().Set("Content-Length", strconv.Itoa(len(resp)))
	_, _ = w.Write(resp)
}

func (h *SOAPHandler) understands(name string) bool {
	if isTraceHeader(name) {
		return true // the telemetry plane always processes trace headers
	}
	for _, u := range h.Understood {
		if u == name {
			return true
		}
	}
	return false
}

func (h *SOAPHandler) fault(w http.ResponseWriter, f *soap.Fault) {
	buf := soap.AcquireBuffer()
	defer soap.ReleaseBuffer(buf)
	data := h.Codec.AppendFault(*buf, f)
	*buf = data[:0]
	w.Header().Set("Content-Type", "text/xml; charset=utf-8")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.WriteHeader(http.StatusInternalServerError)
	_, _ = w.Write(data)
}

// CallOperation is a convenience wrapper invoking one named operation on a
// port and extracting a single named result.
func CallOperation(ctx context.Context, p Port, op string, args []wire.Arg, result string) (any, error) {
	out, err := p.Invoke(ctx, op, args)
	if err != nil {
		return nil, err
	}
	v, ok := wire.GetArg(out, result)
	if !ok {
		return nil, fmt.Errorf("invoke: result %q missing from %s response", result, op)
	}
	return v, nil
}
