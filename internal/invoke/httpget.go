package invoke

import (
	"bytes"
	"context"
	"encoding/base64"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"

	"harness2/internal/container"
	"harness2/internal/resilience"
	"harness2/internal/resilience/chaos"
	"harness2/internal/soap"
	"harness2/internal/telemetry"
	"harness2/internal/wire"
	"harness2/internal/wsdl"
	"harness2/internal/xmlq"
)

// The HTTP GET binding: the second W3C-standardised WSDL binding. Calls
// are GET requests of the form
//
//	GET <base>/<instance>/<operation>?param=value&arrayparam=v1&arrayparam=v2
//
// with scalar parameters URL-encoded as text, array parameters repeated,
// and opaque bytes BASE64-encoded. Responses are a minimal XML document:
//
//	<response op="getTime">
//	  <out name="time" type="string">Mon, 15 Apr 2002 ...</out>
//	  <out name="vals" type="ArrayOfDouble"><item>1</item><item>2</item></out>
//	</response>
//
// The server coerces incoming text to the operation's declared input
// kinds (from the instance's service spec); the client recovers output
// kinds from the type attributes. Struct-typed parameters are not
// representable, which is why WSDL generation refuses HTTP endpoints for
// struct-bearing services.

// HTTPGetHandler serves the HTTP GET binding for a container's instances.
type HTTPGetHandler struct {
	Container *container.Container
	// Telemetry selects the metrics registry; nil falls back to the
	// process default, telemetry.Disabled() switches instrumentation off.
	Telemetry *telemetry.Registry
	// Limiter, when non-nil, applies admission control: shed requests are
	// answered 503 with the Overloaded token so clients classify them as
	// retryable-elsewhere.
	Limiter *resilience.Limiter

	minit sync.Once
	m     bindingMetrics
}

func (h *HTTPGetHandler) metrics() *bindingMetrics {
	h.minit.Do(func() { h.m = newBindingMetrics(telemetry.Or(h.Telemetry), "http-server") })
	return &h.m
}

// ServeHTTP implements http.Handler.
func (h *HTTPGetHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "http binding requires GET", http.StatusMethodNotAllowed)
		return
	}
	parts := strings.Split(strings.Trim(r.URL.Path, "/"), "/")
	if len(parts) < 2 {
		http.Error(w, "path must be <instance>/<operation>", http.StatusBadRequest)
		return
	}
	instance, op := parts[len(parts)-2], parts[len(parts)-1]
	inst, ok := h.Container.Instance(instance)
	if !ok {
		http.Error(w, fmt.Sprintf("no instance %q", instance), http.StatusNotFound)
		return
	}
	opSpec := findOp(inst.Spec(), op)
	if opSpec == nil {
		http.Error(w, fmt.Sprintf("no operation %q", op), http.StatusNotFound)
		return
	}
	args, err := argsFromQuery(opSpec.Input, r.URL.Query())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	release, err := h.Limiter.Acquire(r.Context())
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	m := h.metrics()
	hist, start := m.begin(op)
	out, err := h.Container.Invoke(r.Context(), instance, op, args)
	release()
	m.done(op, hist, start, err)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	buf := soap.AcquireBuffer()
	defer soap.ReleaseBuffer(buf)
	doc, err := appendResponseDoc(*buf, op, out)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	*buf = doc[:0]
	w.Header().Set("Content-Type", "text/xml; charset=utf-8")
	w.Header().Set("Content-Length", strconv.Itoa(len(doc)))
	_, _ = w.Write(doc)
}

func findOp(spec wsdl.ServiceSpec, op string) *wsdl.OpSpec {
	for i := range spec.Operations {
		if spec.Operations[i].Name == op {
			return &spec.Operations[i]
		}
	}
	return nil
}

// argsFromQuery coerces URL query values to the declared input kinds.
// Parameters absent from the query are omitted (operations treat them as
// unset), matching HTML-form semantics.
func argsFromQuery(params []wsdl.ParamSpec, q url.Values) ([]wire.Arg, error) {
	var out []wire.Arg
	for _, p := range params {
		vals, ok := q[p.Name]
		if !ok {
			continue
		}
		v, err := coerce(p.Type, vals)
		if err != nil {
			return nil, fmt.Errorf("invoke: parameter %q: %w", p.Name, err)
		}
		out = append(out, wire.Arg{Name: p.Name, Value: v})
	}
	return out, nil
}

func coerce(k wire.Kind, vals []string) (any, error) {
	if k.IsArray() {
		return coerceArray(k, vals)
	}
	if len(vals) != 1 {
		return nil, fmt.Errorf("scalar given %d values", len(vals))
	}
	return parseScalar(k, vals[0])
}

func coerceArray(k wire.Kind, vals []string) (any, error) {
	elem := k.Elem()
	switch k {
	case wire.KindBoolArray:
		out := make([]bool, len(vals))
		for i, s := range vals {
			v, err := parseScalar(elem, s)
			if err != nil {
				return nil, err
			}
			out[i] = v.(bool)
		}
		return out, nil
	case wire.KindInt32Array:
		out := make([]int32, len(vals))
		for i, s := range vals {
			v, err := parseScalar(elem, s)
			if err != nil {
				return nil, err
			}
			out[i] = v.(int32)
		}
		return out, nil
	case wire.KindInt64Array:
		out := make([]int64, len(vals))
		for i, s := range vals {
			v, err := parseScalar(elem, s)
			if err != nil {
				return nil, err
			}
			out[i] = v.(int64)
		}
		return out, nil
	case wire.KindFloat32Array:
		out := make([]float32, len(vals))
		for i, s := range vals {
			v, err := parseScalar(elem, s)
			if err != nil {
				return nil, err
			}
			out[i] = v.(float32)
		}
		return out, nil
	case wire.KindFloat64Array:
		out := make([]float64, len(vals))
		for i, s := range vals {
			v, err := parseScalar(elem, s)
			if err != nil {
				return nil, err
			}
			out[i] = v.(float64)
		}
		return out, nil
	case wire.KindStringArray:
		return append([]string(nil), vals...), nil
	}
	return nil, fmt.Errorf("unsupported array kind %v", k)
}

func parseScalar(k wire.Kind, s string) (any, error) {
	switch k {
	case wire.KindBool:
		return strconv.ParseBool(s)
	case wire.KindInt32:
		v, err := strconv.ParseInt(s, 10, 32)
		return int32(v), err
	case wire.KindInt64:
		return strconv.ParseInt(s, 10, 64)
	case wire.KindFloat32:
		v, err := strconv.ParseFloat(s, 32)
		return float32(v), err
	case wire.KindFloat64:
		return strconv.ParseFloat(s, 64)
	case wire.KindString:
		return s, nil
	case wire.KindBytes:
		return base64.StdEncoding.DecodeString(s)
	}
	return nil, fmt.Errorf("unsupported scalar kind %v", k)
}

// appendResponseDoc renders output args as the binding's XML response,
// appending into dst. The output is byte-identical to the historical
// xmlq.Node renderer (two-space indentation, self-closed empty elements,
// %q-quoted attributes) but allocation-free for scalar payloads: values
// are formatted with strconv.Append* and opaque bytes BASE64-encoded in
// place with AppendEncode instead of EncodeToString.
func appendResponseDoc(dst []byte, op string, out []wire.Arg) ([]byte, error) {
	dst = append(dst, "<response"...)
	dst = appendDocAttr(dst, "op", op)
	if len(out) == 0 {
		return append(dst, "/>\n"...), nil
	}
	dst = append(dst, ">\n"...)
	for _, a := range out {
		k := wire.KindOf(a.Value)
		if k == wire.KindInvalid || k == wire.KindStruct {
			return nil, fmt.Errorf("invoke: http binding cannot encode %q (%T)", a.Name, a.Value)
		}
		dst = append(dst, "  <out"...)
		dst = appendDocAttr(dst, "name", a.Name)
		dst = appendDocAttr(dst, "type", k.String())
		if k.IsArray() {
			dst = appendDocItems(dst, a.Value)
			continue
		}
		mark := len(dst)
		dst = append(dst, '>')
		dst = appendDocScalar(dst, a.Value)
		if len(dst) == mark+1 {
			// Empty text renders as a self-closed element, as the DOM did.
			dst = append(dst[:mark], "/>\n"...)
		} else {
			dst = append(dst, "</out>\n"...)
		}
	}
	return append(dst, "</response>\n"...), nil
}

// docAttrEsc mirrors xmlq's attribute escaping (&, <, and the quote).
var docAttrEsc = strings.NewReplacer("&", "&amp;", "<", "&lt;", `"`, "&quot;")

func appendDocAttr(dst []byte, name, val string) []byte {
	dst = append(dst, ' ')
	dst = append(dst, name...)
	dst = append(dst, '=')
	if strings.ContainsAny(val, `&<"`) {
		val = docAttrEsc.Replace(val)
	}
	return strconv.AppendQuote(dst, val)
}

func appendDocEscaped(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '&':
			dst = append(dst, "&amp;"...)
		case '<':
			dst = append(dst, "&lt;"...)
		case '>':
			dst = append(dst, "&gt;"...)
		default:
			dst = append(dst, c)
		}
	}
	return dst
}

func appendDocScalar(dst []byte, v any) []byte {
	switch x := v.(type) {
	case bool:
		return strconv.AppendBool(dst, x)
	case int32:
		return strconv.AppendInt(dst, int64(x), 10)
	case int64:
		return strconv.AppendInt(dst, x, 10)
	case float32:
		return strconv.AppendFloat(dst, float64(x), 'g', -1, 32)
	case float64:
		return strconv.AppendFloat(dst, x, 'g', -1, 64)
	case string:
		return appendDocEscaped(dst, x)
	case []byte:
		return base64.StdEncoding.AppendEncode(dst, x)
	}
	return fmt.Appendf(dst, "%v", v)
}

func appendDocItems(dst []byte, v any) []byte {
	n := 0
	switch a := v.(type) {
	case []bool:
		n = len(a)
	case []int32:
		n = len(a)
	case []int64:
		n = len(a)
	case []float32:
		n = len(a)
	case []float64:
		n = len(a)
	case []string:
		n = len(a)
	}
	if n == 0 {
		return append(dst, "/>\n"...)
	}
	dst = append(dst, ">\n"...)
	appendItem := func(dst []byte, f func([]byte) []byte) []byte {
		mark := len(dst)
		dst = append(dst, "    <item>"...)
		body := len(dst)
		dst = f(dst)
		if len(dst) == body {
			dst = append(dst[:mark], "    <item/>\n"...)
		} else {
			dst = append(dst, "</item>\n"...)
		}
		return dst
	}
	switch a := v.(type) {
	case []bool:
		for _, x := range a {
			dst = appendItem(dst, func(d []byte) []byte { return strconv.AppendBool(d, x) })
		}
	case []int32:
		for _, x := range a {
			dst = appendItem(dst, func(d []byte) []byte { return strconv.AppendInt(d, int64(x), 10) })
		}
	case []int64:
		for _, x := range a {
			dst = appendItem(dst, func(d []byte) []byte { return strconv.AppendInt(d, x, 10) })
		}
	case []float32:
		for _, x := range a {
			dst = appendItem(dst, func(d []byte) []byte { return strconv.AppendFloat(d, float64(x), 'g', -1, 32) })
		}
	case []float64:
		for _, x := range a {
			dst = appendItem(dst, func(d []byte) []byte { return strconv.AppendFloat(d, x, 'g', -1, 64) })
		}
	case []string:
		for _, x := range a {
			dst = appendItem(dst, func(d []byte) []byte { return appendDocEscaped(d, x) })
		}
	}
	return append(dst, "  </out>\n"...)
}

func scalarText(v any) string {
	switch x := v.(type) {
	case bool:
		return strconv.FormatBool(x)
	case int32:
		return strconv.FormatInt(int64(x), 10)
	case int64:
		return strconv.FormatInt(x, 10)
	case float32:
		return strconv.FormatFloat(float64(x), 'g', -1, 32)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case string:
		return x
	case []byte:
		return base64.StdEncoding.EncodeToString(x)
	}
	return fmt.Sprintf("%v", v)
}

func textItems(v any) []string {
	switch a := v.(type) {
	case []bool:
		out := make([]string, len(a))
		for i, x := range a {
			out[i] = strconv.FormatBool(x)
		}
		return out
	case []int32:
		out := make([]string, len(a))
		for i, x := range a {
			out[i] = strconv.FormatInt(int64(x), 10)
		}
		return out
	case []int64:
		out := make([]string, len(a))
		for i, x := range a {
			out[i] = strconv.FormatInt(x, 10)
		}
		return out
	case []float32:
		out := make([]string, len(a))
		for i, x := range a {
			out[i] = strconv.FormatFloat(float64(x), 'g', -1, 32)
		}
		return out
	case []float64:
		out := make([]string, len(a))
		for i, x := range a {
			out[i] = strconv.FormatFloat(x, 'g', -1, 64)
		}
		return out
	case []string:
		return a
	}
	return nil
}

// HTTPPort is the client side of the HTTP GET binding.
type HTTPPort struct {
	// URL is the instance endpoint (…/rest/<instance>); the operation
	// name is appended per call.
	URL string
	// HTTP is the underlying client; nil uses a 30 s-timeout default.
	HTTP *http.Client
	// Telemetry selects the metrics registry; nil falls back to the
	// process default, telemetry.Disabled() switches instrumentation off.
	Telemetry *telemetry.Registry
	// Chaos, when non-nil, injects deterministic faults before the wire
	// call (experiment E13). The nil injector costs one branch.
	Chaos *chaos.Injector

	minit sync.Once
	m     bindingMetrics
}

var _ Port = (*HTTPPort)(nil)

// defaultHTTPGet shares soap.Transport's keep-alive pool so GET-binding
// and SOAP traffic to the same kernel reuse one set of connections.
var defaultHTTPGet = soap.SharedHTTP

func (p *HTTPPort) metrics() *bindingMetrics {
	p.minit.Do(func() { p.m = newBindingMetrics(telemetry.Or(p.Telemetry), "http") })
	return &p.m
}

// Invoke implements Port.
func (p *HTTPPort) Invoke(ctx context.Context, op string, args []wire.Arg) ([]wire.Arg, error) {
	if err := p.Chaos.Apply(ctx, "http", op, p.URL); err != nil {
		return nil, err
	}
	m := p.metrics()
	h, start := m.begin(op)
	ctx, sp := telemetry.Or(p.Telemetry).ChildSpan(ctx, "invoke.http")
	out, err := p.invoke(ctx, op, args)
	sp.SetError(err)
	sp.End()
	m.done(op, h, start, err)
	return out, err
}

func (p *HTTPPort) invoke(ctx context.Context, op string, args []wire.Arg) ([]wire.Arg, error) {
	q := url.Values{}
	for _, a := range args {
		k := wire.KindOf(a.Value)
		switch {
		case k == wire.KindInvalid || k == wire.KindStruct:
			return nil, fmt.Errorf("invoke: http binding cannot carry %q (%T)", a.Name, a.Value)
		case k.IsArray():
			for _, item := range textItems(a.Value) {
				q.Add(a.Name, item)
			}
		default:
			q.Set(a.Name, scalarText(a.Value))
		}
	}
	u := strings.TrimSuffix(p.URL, "/") + "/" + op
	if enc := q.Encode(); enc != "" {
		u += "?" + enc
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, fmt.Errorf("invoke: %w", err)
	}
	httpc := p.HTTP
	if httpc == nil {
		httpc = defaultHTTPGet
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("invoke: http get %s: %w", u, err)
	}
	defer resp.Body.Close()
	bodyBuf := soap.AcquireBuffer()
	defer soap.ReleaseBuffer(bodyBuf)
	body, err := soap.AppendReadAll(*bodyBuf, resp.Body, resp.ContentLength)
	*bodyBuf = body[:0]
	if err != nil {
		return nil, fmt.Errorf("invoke: read response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("invoke: http binding %s: %s: %s",
			op, resp.Status, strings.TrimSpace(string(body)))
	}
	// Parsed args never alias body, so the deferred release is safe.
	return parseResponseDoc(body)
}

// errDocComplex reports a response outside the streaming parser's subset;
// the caller retries on the DOM path, which is authoritative for both
// unusual-but-valid documents and error reporting.
var errDocComplex = errors.New("invoke: response outside fast-parse subset")

// parseResponseDoc decodes the binding's XML response, preferring the
// allocation-light streaming parser and falling back to the DOM for
// anything surprising (comments, foreign children, rich entities, or any
// malformed document, so errors keep their historical text).
func parseResponseDoc(body []byte) ([]wire.Arg, error) {
	out, err := fastParseResponseDoc(body)
	if !errors.Is(err, errDocComplex) {
		return out, err
	}
	return domParseResponseDoc(body)
}

func domParseResponseDoc(body []byte) ([]wire.Arg, error) {
	root, err := xmlq.Parse(bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("invoke: http binding response: %w", err)
	}
	if root.Local != "response" {
		return nil, fmt.Errorf("invoke: http binding response root is %q", root.Local)
	}
	var out []wire.Arg
	for _, n := range root.ChildrenNamed("out") {
		k := wire.KindByName(n.AttrOr("type", ""))
		if k == wire.KindInvalid {
			return nil, fmt.Errorf("invoke: http binding output %q has unknown type %q",
				n.AttrOr("name", ""), n.AttrOr("type", ""))
		}
		var v any
		if k.IsArray() {
			items := n.ChildrenNamed("item")
			texts := make([]string, len(items))
			for i, it := range items {
				texts[i] = it.Text
			}
			v, err = coerceArray(k, texts)
		} else {
			v, err = parseScalar(k, n.Text)
		}
		if err != nil {
			return nil, fmt.Errorf("invoke: http binding output %q: %w", n.AttrOr("name", ""), err)
		}
		out = append(out, wire.Arg{Name: n.AttrOr("name", ""), Value: v})
	}
	return out, nil
}

// Kind implements Port.
func (p *HTTPPort) Kind() wsdl.BindingKind { return wsdl.BindHTTP }

// Endpoint implements Port.
func (p *HTTPPort) Endpoint() string { return p.URL }

// Close implements Port.
func (p *HTTPPort) Close() error { return nil }

// docParser is the pooled state behind fastParseResponseDoc: a streaming
// scanner plus a text-accumulation scratch buffer.
type docParser struct {
	sc   xmlq.Scanner
	text []byte
}

var docParsers = sync.Pool{New: func() any { return new(docParser) }}

// fastParseResponseDoc is the streaming counterpart of
// domParseResponseDoc. It handles exactly the documents the server's
// appendResponseDoc emits (plus whitespace/PI noise) and reports
// errDocComplex for everything else, including malformed input — the DOM
// retry then reproduces the historical behaviour and error text, so the
// two paths can never disagree on a decoded result.
func fastParseResponseDoc(body []byte) ([]wire.Arg, error) {
	d := docParsers.Get().(*docParser)
	out, err := d.parse(body)
	d.sc.Reset(nil)
	if cap(d.text) > 1<<16 {
		d.text = nil
	}
	clear(d.text[:cap(d.text)])
	d.text = d.text[:0]
	docParsers.Put(d)
	return out, err
}

func (d *docParser) parse(body []byte) ([]wire.Arg, error) {
	d.sc.Reset(body)
	root, err := d.nextContent(false)
	if err != nil {
		return nil, err
	}
	if root.Kind != xmlq.TokStart || string(root.Name) != "response" {
		return nil, errDocComplex
	}
	var out []wire.Arg
	if !root.SelfClose {
		for {
			t, err := d.sc.Next()
			if err != nil {
				return nil, errDocComplex
			}
			if t.Kind == xmlq.TokText {
				// The DOM ignores free text at this level, but would
				// validate any entities in it; fall back when they appear.
				if xmlq.HasAmp(t.Text) {
					return nil, errDocComplex
				}
				continue
			}
			if t.Kind == xmlq.TokEnd {
				if string(t.Name) != "response" {
					return nil, errDocComplex
				}
				break
			}
			if t.Kind != xmlq.TokStart || string(t.Name) != "out" {
				return nil, errDocComplex
			}
			arg, err := d.outElem(t)
			if err != nil {
				return nil, err
			}
			out = append(out, arg)
		}
	}
	// Only whitespace (and skipped PIs) may trail the document.
	if _, err := d.nextContent(true); err != nil {
		return nil, err
	}
	return out, nil
}

// nextContent skips whitespace-only text. With wantEOF it insists the
// stream is exhausted; otherwise it returns the first structural token.
func (d *docParser) nextContent(wantEOF bool) (xmlq.RawToken, error) {
	for {
		t, err := d.sc.Next()
		if err != nil {
			return t, errDocComplex
		}
		switch t.Kind {
		case xmlq.TokText:
			if xmlq.HasAmp(t.Text) || len(xmlq.TrimSpaceBytes(t.Text)) != 0 {
				return t, errDocComplex
			}
		case xmlq.TokEOF:
			if wantEOF {
				return t, nil
			}
			return t, errDocComplex
		default:
			if wantEOF {
				return t, errDocComplex
			}
			return t, nil
		}
	}
}

// outElem decodes one <out> element from its start tag through its end tag.
func (d *docParser) outElem(open xmlq.RawToken) (wire.Arg, error) {
	var nameAttr, typAttr []byte
	haveName, haveType := false, false
	for _, a := range open.Attrs {
		switch string(xmlq.LocalName(a.Name)) {
		case "name":
			if !haveName {
				nameAttr, haveName = a.Value, true
			}
		case "type":
			if !haveType {
				typAttr, haveType = a.Value, true
			}
		}
	}
	// Entity-bearing attribute values are legal but rare; let the DOM
	// handle their unescaping.
	if xmlq.HasAmp(nameAttr) || xmlq.HasAmp(typAttr) {
		return wire.Arg{}, errDocComplex
	}
	k := wire.KindByName(string(typAttr))
	if k == wire.KindInvalid {
		return wire.Arg{}, errDocComplex // DOM reports the unknown type
	}
	var v any
	var err error
	switch {
	case open.SelfClose && k.IsArray():
		v, err = coerceArray(k, nil)
	case open.SelfClose:
		v, err = parseScalar(k, "")
	case k.IsArray():
		v, err = d.itemValues(k)
	default:
		var txt []byte
		txt, err = d.leafText("out")
		if err == nil {
			v, err = parseScalar(k, string(txt))
		}
	}
	if err != nil {
		// Either a surprise in the markup or a value parse error; the DOM
		// pass reproduces the historical wrapped error for the latter.
		return wire.Arg{}, errDocComplex
	}
	return wire.Arg{Name: string(nameAttr), Value: v}, nil
}

// leafText accumulates the per-run-trimmed text of a leaf element and
// consumes its end tag, mirroring the DOM's text semantics (each raw run
// is unescaped then trimmed, runs concatenate). Child elements, non-ASCII
// expansions, and bad entities defer to the DOM.
func (d *docParser) leafText(want string) ([]byte, error) {
	d.text = d.text[:0]
	for {
		t, err := d.sc.Next()
		if err != nil {
			return nil, errDocComplex
		}
		switch t.Kind {
		case xmlq.TokText:
			start := len(d.text)
			if xmlq.HasAmp(t.Text) {
				d.text, err = xmlq.AppendUnescaped(d.text, t.Text)
				if err != nil {
					return nil, errDocComplex
				}
				for _, c := range d.text[start:] {
					if c >= 0x80 {
						// Unicode-aware trimming could diverge; punt.
						return nil, errDocComplex
					}
				}
			} else {
				d.text = append(d.text, t.Text...)
			}
			trimmed := xmlq.TrimSpaceBytes(d.text[start:])
			n := copy(d.text[start:], trimmed)
			d.text = d.text[:start+n]
		case xmlq.TokEnd:
			if string(t.Name) != want {
				return nil, errDocComplex
			}
			return d.text, nil
		default:
			return nil, errDocComplex
		}
	}
}

// itemValues decodes the <item> children of an array-typed <out> into the
// same typed slice coerceArray would build.
func (d *docParser) itemValues(k wire.Kind) (any, error) {
	elem := k.Elem()
	var (
		bools   []bool
		ints    []int32
		longs   []int64
		floats  []float32
		doubles []float64
		strs    []string
	)
	switch k {
	case wire.KindBoolArray:
		bools = make([]bool, 0)
	case wire.KindInt32Array:
		ints = make([]int32, 0)
	case wire.KindInt64Array:
		longs = make([]int64, 0)
	case wire.KindFloat32Array:
		floats = make([]float32, 0)
	case wire.KindFloat64Array:
		doubles = make([]float64, 0)
	case wire.KindStringArray:
		// coerceArray leaves an item-less string array nil; match it.
	default:
		return nil, errDocComplex
	}
	for {
		t, err := d.sc.Next()
		if err != nil {
			return nil, errDocComplex
		}
		switch t.Kind {
		case xmlq.TokText:
			if xmlq.HasAmp(t.Text) {
				return nil, errDocComplex
			}
		case xmlq.TokStart:
			if string(t.Name) != "item" {
				return nil, errDocComplex
			}
			var txt []byte
			if !t.SelfClose {
				if txt, err = d.leafText("item"); err != nil {
					return nil, err
				}
			}
			v, err := parseScalar(elem, string(txt))
			if err != nil {
				return nil, errDocComplex // DOM reports the parse error
			}
			switch x := v.(type) {
			case bool:
				bools = append(bools, x)
			case int32:
				ints = append(ints, x)
			case int64:
				longs = append(longs, x)
			case float32:
				floats = append(floats, x)
			case float64:
				doubles = append(doubles, x)
			case string:
				strs = append(strs, x)
			}
		case xmlq.TokEnd:
			if string(t.Name) != "out" {
				return nil, errDocComplex
			}
			switch k {
			case wire.KindBoolArray:
				return bools, nil
			case wire.KindInt32Array:
				return ints, nil
			case wire.KindInt64Array:
				return longs, nil
			case wire.KindFloat32Array:
				return floats, nil
			case wire.KindFloat64Array:
				return doubles, nil
			}
			return strs, nil
		default:
			return nil, errDocComplex
		}
	}
}
