package invoke

import (
	"context"
	"encoding/base64"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"harness2/internal/container"
	"harness2/internal/resilience"
	"harness2/internal/resilience/chaos"
	"harness2/internal/telemetry"
	"harness2/internal/wire"
	"harness2/internal/wsdl"
	"harness2/internal/xmlq"
)

// The HTTP GET binding: the second W3C-standardised WSDL binding. Calls
// are GET requests of the form
//
//	GET <base>/<instance>/<operation>?param=value&arrayparam=v1&arrayparam=v2
//
// with scalar parameters URL-encoded as text, array parameters repeated,
// and opaque bytes BASE64-encoded. Responses are a minimal XML document:
//
//	<response op="getTime">
//	  <out name="time" type="string">Mon, 15 Apr 2002 ...</out>
//	  <out name="vals" type="ArrayOfDouble"><item>1</item><item>2</item></out>
//	</response>
//
// The server coerces incoming text to the operation's declared input
// kinds (from the instance's service spec); the client recovers output
// kinds from the type attributes. Struct-typed parameters are not
// representable, which is why WSDL generation refuses HTTP endpoints for
// struct-bearing services.

// HTTPGetHandler serves the HTTP GET binding for a container's instances.
type HTTPGetHandler struct {
	Container *container.Container
	// Telemetry selects the metrics registry; nil falls back to the
	// process default, telemetry.Disabled() switches instrumentation off.
	Telemetry *telemetry.Registry
	// Limiter, when non-nil, applies admission control: shed requests are
	// answered 503 with the Overloaded token so clients classify them as
	// retryable-elsewhere.
	Limiter *resilience.Limiter

	minit sync.Once
	m     bindingMetrics
}

func (h *HTTPGetHandler) metrics() *bindingMetrics {
	h.minit.Do(func() { h.m = newBindingMetrics(telemetry.Or(h.Telemetry), "http-server") })
	return &h.m
}

// ServeHTTP implements http.Handler.
func (h *HTTPGetHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "http binding requires GET", http.StatusMethodNotAllowed)
		return
	}
	parts := strings.Split(strings.Trim(r.URL.Path, "/"), "/")
	if len(parts) < 2 {
		http.Error(w, "path must be <instance>/<operation>", http.StatusBadRequest)
		return
	}
	instance, op := parts[len(parts)-2], parts[len(parts)-1]
	inst, ok := h.Container.Instance(instance)
	if !ok {
		http.Error(w, fmt.Sprintf("no instance %q", instance), http.StatusNotFound)
		return
	}
	opSpec := findOp(inst.Spec(), op)
	if opSpec == nil {
		http.Error(w, fmt.Sprintf("no operation %q", op), http.StatusNotFound)
		return
	}
	args, err := argsFromQuery(opSpec.Input, r.URL.Query())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	release, err := h.Limiter.Acquire(r.Context())
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	m := h.metrics()
	hist, start := m.begin(op)
	out, err := h.Container.Invoke(r.Context(), instance, op, args)
	release()
	m.done(op, hist, start, err)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	doc, err := responseDoc(op, out)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/xml; charset=utf-8")
	_, _ = io.WriteString(w, doc)
}

func findOp(spec wsdl.ServiceSpec, op string) *wsdl.OpSpec {
	for i := range spec.Operations {
		if spec.Operations[i].Name == op {
			return &spec.Operations[i]
		}
	}
	return nil
}

// argsFromQuery coerces URL query values to the declared input kinds.
// Parameters absent from the query are omitted (operations treat them as
// unset), matching HTML-form semantics.
func argsFromQuery(params []wsdl.ParamSpec, q url.Values) ([]wire.Arg, error) {
	var out []wire.Arg
	for _, p := range params {
		vals, ok := q[p.Name]
		if !ok {
			continue
		}
		v, err := coerce(p.Type, vals)
		if err != nil {
			return nil, fmt.Errorf("invoke: parameter %q: %w", p.Name, err)
		}
		out = append(out, wire.Arg{Name: p.Name, Value: v})
	}
	return out, nil
}

func coerce(k wire.Kind, vals []string) (any, error) {
	if k.IsArray() {
		return coerceArray(k, vals)
	}
	if len(vals) != 1 {
		return nil, fmt.Errorf("scalar given %d values", len(vals))
	}
	return parseScalar(k, vals[0])
}

func coerceArray(k wire.Kind, vals []string) (any, error) {
	elem := k.Elem()
	switch k {
	case wire.KindBoolArray:
		out := make([]bool, len(vals))
		for i, s := range vals {
			v, err := parseScalar(elem, s)
			if err != nil {
				return nil, err
			}
			out[i] = v.(bool)
		}
		return out, nil
	case wire.KindInt32Array:
		out := make([]int32, len(vals))
		for i, s := range vals {
			v, err := parseScalar(elem, s)
			if err != nil {
				return nil, err
			}
			out[i] = v.(int32)
		}
		return out, nil
	case wire.KindInt64Array:
		out := make([]int64, len(vals))
		for i, s := range vals {
			v, err := parseScalar(elem, s)
			if err != nil {
				return nil, err
			}
			out[i] = v.(int64)
		}
		return out, nil
	case wire.KindFloat32Array:
		out := make([]float32, len(vals))
		for i, s := range vals {
			v, err := parseScalar(elem, s)
			if err != nil {
				return nil, err
			}
			out[i] = v.(float32)
		}
		return out, nil
	case wire.KindFloat64Array:
		out := make([]float64, len(vals))
		for i, s := range vals {
			v, err := parseScalar(elem, s)
			if err != nil {
				return nil, err
			}
			out[i] = v.(float64)
		}
		return out, nil
	case wire.KindStringArray:
		return append([]string(nil), vals...), nil
	}
	return nil, fmt.Errorf("unsupported array kind %v", k)
}

func parseScalar(k wire.Kind, s string) (any, error) {
	switch k {
	case wire.KindBool:
		return strconv.ParseBool(s)
	case wire.KindInt32:
		v, err := strconv.ParseInt(s, 10, 32)
		return int32(v), err
	case wire.KindInt64:
		return strconv.ParseInt(s, 10, 64)
	case wire.KindFloat32:
		v, err := strconv.ParseFloat(s, 32)
		return float32(v), err
	case wire.KindFloat64:
		return strconv.ParseFloat(s, 64)
	case wire.KindString:
		return s, nil
	case wire.KindBytes:
		return base64.StdEncoding.DecodeString(s)
	}
	return nil, fmt.Errorf("unsupported scalar kind %v", k)
}

// responseDoc renders output args as the binding's XML response.
func responseDoc(op string, out []wire.Arg) (string, error) {
	root := xmlq.NewNode("response")
	root.SetAttr("op", op)
	for _, a := range out {
		k := wire.KindOf(a.Value)
		if k == wire.KindInvalid || k == wire.KindStruct {
			return "", fmt.Errorf("invoke: http binding cannot encode %q (%T)", a.Name, a.Value)
		}
		n := root.AddNew("out")
		n.SetAttr("name", a.Name)
		n.SetAttr("type", k.String())
		if k.IsArray() {
			for _, item := range textItems(a.Value) {
				n.AddNew("item").SetText(item)
			}
		} else {
			n.SetText(scalarText(a.Value))
		}
	}
	return root.String(), nil
}

func scalarText(v any) string {
	switch x := v.(type) {
	case bool:
		return strconv.FormatBool(x)
	case int32:
		return strconv.FormatInt(int64(x), 10)
	case int64:
		return strconv.FormatInt(x, 10)
	case float32:
		return strconv.FormatFloat(float64(x), 'g', -1, 32)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case string:
		return x
	case []byte:
		return base64.StdEncoding.EncodeToString(x)
	}
	return fmt.Sprintf("%v", v)
}

func textItems(v any) []string {
	switch a := v.(type) {
	case []bool:
		out := make([]string, len(a))
		for i, x := range a {
			out[i] = strconv.FormatBool(x)
		}
		return out
	case []int32:
		out := make([]string, len(a))
		for i, x := range a {
			out[i] = strconv.FormatInt(int64(x), 10)
		}
		return out
	case []int64:
		out := make([]string, len(a))
		for i, x := range a {
			out[i] = strconv.FormatInt(x, 10)
		}
		return out
	case []float32:
		out := make([]string, len(a))
		for i, x := range a {
			out[i] = strconv.FormatFloat(float64(x), 'g', -1, 32)
		}
		return out
	case []float64:
		out := make([]string, len(a))
		for i, x := range a {
			out[i] = strconv.FormatFloat(x, 'g', -1, 64)
		}
		return out
	case []string:
		return a
	}
	return nil
}

// HTTPPort is the client side of the HTTP GET binding.
type HTTPPort struct {
	// URL is the instance endpoint (…/rest/<instance>); the operation
	// name is appended per call.
	URL string
	// HTTP is the underlying client; nil uses a 30 s-timeout default.
	HTTP *http.Client
	// Telemetry selects the metrics registry; nil falls back to the
	// process default, telemetry.Disabled() switches instrumentation off.
	Telemetry *telemetry.Registry
	// Chaos, when non-nil, injects deterministic faults before the wire
	// call (experiment E13). The nil injector costs one branch.
	Chaos *chaos.Injector

	minit sync.Once
	m     bindingMetrics
}

var _ Port = (*HTTPPort)(nil)

var defaultHTTPGet = &http.Client{Timeout: 30 * time.Second}

func (p *HTTPPort) metrics() *bindingMetrics {
	p.minit.Do(func() { p.m = newBindingMetrics(telemetry.Or(p.Telemetry), "http") })
	return &p.m
}

// Invoke implements Port.
func (p *HTTPPort) Invoke(ctx context.Context, op string, args []wire.Arg) ([]wire.Arg, error) {
	if err := p.Chaos.Apply(ctx, "http", op, p.URL); err != nil {
		return nil, err
	}
	m := p.metrics()
	h, start := m.begin(op)
	ctx, sp := telemetry.Or(p.Telemetry).ChildSpan(ctx, "invoke.http")
	out, err := p.invoke(ctx, op, args)
	sp.SetError(err)
	sp.End()
	m.done(op, h, start, err)
	return out, err
}

func (p *HTTPPort) invoke(ctx context.Context, op string, args []wire.Arg) ([]wire.Arg, error) {
	q := url.Values{}
	for _, a := range args {
		k := wire.KindOf(a.Value)
		switch {
		case k == wire.KindInvalid || k == wire.KindStruct:
			return nil, fmt.Errorf("invoke: http binding cannot carry %q (%T)", a.Name, a.Value)
		case k.IsArray():
			for _, item := range textItems(a.Value) {
				q.Add(a.Name, item)
			}
		default:
			q.Set(a.Name, scalarText(a.Value))
		}
	}
	u := strings.TrimSuffix(p.URL, "/") + "/" + op
	if enc := q.Encode(); enc != "" {
		u += "?" + enc
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, fmt.Errorf("invoke: %w", err)
	}
	httpc := p.HTTP
	if httpc == nil {
		httpc = defaultHTTPGet
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("invoke: http get %s: %w", u, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("invoke: read response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("invoke: http binding %s: %s: %s",
			op, resp.Status, strings.TrimSpace(string(body)))
	}
	return parseResponseDoc(body)
}

func parseResponseDoc(body []byte) ([]wire.Arg, error) {
	root, err := xmlq.ParseString(string(body))
	if err != nil {
		return nil, fmt.Errorf("invoke: http binding response: %w", err)
	}
	if root.Local != "response" {
		return nil, fmt.Errorf("invoke: http binding response root is %q", root.Local)
	}
	var out []wire.Arg
	for _, n := range root.ChildrenNamed("out") {
		k := wire.KindByName(n.AttrOr("type", ""))
		if k == wire.KindInvalid {
			return nil, fmt.Errorf("invoke: http binding output %q has unknown type %q",
				n.AttrOr("name", ""), n.AttrOr("type", ""))
		}
		var v any
		if k.IsArray() {
			items := n.ChildrenNamed("item")
			texts := make([]string, len(items))
			for i, it := range items {
				texts[i] = it.Text
			}
			v, err = coerceArray(k, texts)
		} else {
			v, err = parseScalar(k, n.Text)
		}
		if err != nil {
			return nil, fmt.Errorf("invoke: http binding output %q: %w", n.AttrOr("name", ""), err)
		}
		out = append(out, wire.Arg{Name: n.AttrOr("name", ""), Value: v})
	}
	return out, nil
}

// Kind implements Port.
func (p *HTTPPort) Kind() wsdl.BindingKind { return wsdl.BindHTTP }

// Endpoint implements Port.
func (p *HTTPPort) Endpoint() string { return p.URL }

// Close implements Port.
func (p *HTTPPort) Close() error { return nil }
