// Package invoke is the HARNESS II invocation framework — the equivalent
// of IBM's Web Services Invocation Framework (WSIF) the paper builds on.
// It provides dynamically constructed "ports" (stubs) for each binding
// kind, plus Dial, which selects the cheapest usable binding for a WSDL
// description: in-process JavaObject access when the target instance is
// co-located, the XDR socket binding for numeric services, and SOAP/HTTP
// otherwise. "It is possible for a client both to select the type of
// protocol it wants to use to access a service (e.g. SOAP) or to let the
// framework dynamically generate the required stub."
package invoke

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"harness2/internal/container"
	"harness2/internal/resilience"
	"harness2/internal/resilience/chaos"
	"harness2/internal/soap"
	"harness2/internal/telemetry"
	"harness2/internal/wire"
	"harness2/internal/wsdl"
)

// Port is a bound, invocable view of a service — the dynamic stub.
type Port interface {
	// Invoke executes one operation.
	Invoke(ctx context.Context, op string, args []wire.Arg) ([]wire.Arg, error)
	// Kind reports the binding kind behind the port.
	Kind() wsdl.BindingKind
	// Endpoint reports the address the port is bound to.
	Endpoint() string
	// Close releases any connection state.
	Close() error
}

// LocalPort invokes a co-located instance directly: the JavaObject
// binding's "local, non mediated" access path. No encoding, no copy.
type LocalPort struct {
	Container *container.Container
	Instance  string
	// Telemetry selects the metrics registry; nil falls back to the
	// process default, telemetry.Disabled() switches instrumentation off.
	Telemetry *telemetry.Registry
	// Chaos, when non-nil, injects deterministic faults before dispatch
	// (experiment E13). The nil injector costs one branch.
	Chaos *chaos.Injector

	minit sync.Once
	m     bindingMetrics
}

var _ Port = (*LocalPort)(nil)

func (p *LocalPort) metrics() *bindingMetrics {
	p.minit.Do(func() { p.m = newBindingMetrics(telemetry.Or(p.Telemetry), "local") })
	return &p.m
}

// Invoke implements Port. It honours an already-cancelled context before
// dispatching: the local path has no I/O to fail on, so without this
// check a cancelled caller would still execute the operation — unlike
// every network binding, which surfaces ctx errors from the transport.
func (p *LocalPort) Invoke(ctx context.Context, op string, args []wire.Arg) ([]wire.Arg, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := p.Chaos.Apply(ctx, "local", op, p.Instance); err != nil {
		return nil, err
	}
	m := p.metrics()
	h, start := m.begin(op)
	ctx, sp := telemetry.Or(p.Telemetry).ChildSpan(ctx, "invoke.local")
	out, err := p.Container.Invoke(ctx, p.Instance, op, args)
	sp.SetError(err)
	sp.End()
	m.done(op, h, start, err)
	return out, err
}

// Kind implements Port.
func (p *LocalPort) Kind() wsdl.BindingKind { return wsdl.BindJavaObject }

// Endpoint implements Port.
func (p *LocalPort) Endpoint() string { return p.Container.LocalAddress(p.Instance) }

// Close implements Port; local ports hold no resources.
func (p *LocalPort) Close() error { return nil }

// SOAPPort invokes a remote SOAP/HTTP endpoint.
type SOAPPort struct {
	URL    string
	Client soap.Client
	// Headers are attached to every outgoing call (context propagation).
	Headers []soap.Header
	// Telemetry selects the metrics registry; nil falls back to the
	// process default, telemetry.Disabled() switches instrumentation off.
	Telemetry *telemetry.Registry
	// Chaos, when non-nil, injects deterministic faults before the wire
	// call (experiment E13). The nil injector costs one branch.
	Chaos *chaos.Injector

	minit sync.Once
	m     bindingMetrics
}

var _ Port = (*SOAPPort)(nil)

func (p *SOAPPort) metrics() *bindingMetrics {
	p.minit.Do(func() { p.m = newBindingMetrics(telemetry.Or(p.Telemetry), "soap") })
	return &p.m
}

// Invoke implements Port. When the caller's context carries a trace, the
// hop is recorded as a child span and the trace identity crosses the wire
// in an h2:Trace header entry, so the server's span becomes this span's
// child — Figure 6's layered call path reconstructed end to end.
func (p *SOAPPort) Invoke(ctx context.Context, op string, args []wire.Arg) ([]wire.Arg, error) {
	if err := p.Chaos.Apply(ctx, "soap", op, p.URL); err != nil {
		return nil, err
	}
	m := p.metrics()
	h, start := m.begin(op)
	_, sp := telemetry.Or(p.Telemetry).ChildSpan(ctx, "invoke.soap")
	headers := p.Headers
	if sc := sp.Context(); sc.Valid() {
		headers = append(append(make([]soap.Header, 0, len(p.Headers)+1), p.Headers...),
			soap.Header{Name: telemetry.TraceHeaderName, Value: sc.String()})
	}
	params := make([]soap.Param, len(args))
	for i, a := range args {
		params[i] = soap.Param{Name: a.Name, Value: a.Value}
	}
	out, err := p.Client.CallRemote(p.URL, &soap.Call{Method: op, Params: params, Headers: headers})
	sp.SetError(err)
	sp.End()
	m.done(op, h, start, err)
	if err != nil {
		return nil, err
	}
	res := make([]wire.Arg, len(out))
	for i, o := range out {
		res[i] = wire.Arg{Name: o.Name, Value: o.Value}
	}
	return res, nil
}

// Kind implements Port.
func (p *SOAPPort) Kind() wsdl.BindingKind { return wsdl.BindSOAP }

// Endpoint implements Port.
func (p *SOAPPort) Endpoint() string { return p.URL }

// Close implements Port.
func (p *SOAPPort) Close() error { return nil }

// Options parameterises Dial.
type Options struct {
	// LocalContainers are containers reachable in this address space,
	// keyed by their names when resolving local:<container>/<instance>
	// addresses.
	LocalContainers []*container.Container
	// Codec configures SOAP array encoding for SOAP ports.
	Codec soap.Codec
	// DialPerCall disables XDR connection reuse (ablation E3b).
	DialPerCall bool
	// Forbid excludes binding kinds from selection.
	Forbid []wsdl.BindingKind
	// Telemetry selects the metrics registry for opened ports; nil falls
	// back to the process default, telemetry.Disabled() switches
	// instrumentation off.
	Telemetry *telemetry.Registry
	// Chaos, when non-nil, is attached to every opened port so its rules
	// can inject deterministic faults at each client transport (E13).
	Chaos *chaos.Injector
	// Policy, when non-nil, is applied by DialResilient: the opened ports
	// become the failover ladder of a ResilientPort. Plain Dial ignores it.
	Policy *resilience.Policy
	// Compress is the XDR wire-compression stance (S33). CompressAuto
	// enables adaptive compression iff the binding advertises a `compress`
	// capability whose codec this process implements; explicit modes
	// override the advertisement.
	Compress CompressPolicy
}

func (o Options) forbidden(k wsdl.BindingKind) bool {
	for _, f := range o.Forbid {
		if f == k {
			return true
		}
	}
	return false
}

func (o Options) localContainer(name string) *container.Container {
	for _, c := range o.LocalContainers {
		if c.Name() == name {
			return c
		}
	}
	return nil
}

// preference orders binding kinds cheapest-first for selection: local
// in-process access, then the same-host shared-memory ring, then the
// XDR socket, then the XML transports.
var preference = []wsdl.BindingKind{
	wsdl.BindJavaObject, wsdl.BindShm, wsdl.BindXDR, wsdl.BindSOAP, wsdl.BindHTTP,
}

// Dial selects and opens the cheapest usable port for the service
// described by defs. JavaObject ports are usable only when the advertised
// container is present in opts.LocalContainers and actually hosts the
// pinned instance — otherwise selection falls through to network bindings,
// reproducing Figure 5's local-versus-remote dichotomy.
func Dial(defs *wsdl.Definitions, opts Options) (Port, error) {
	var firstErr error
	for _, kind := range preference {
		if opts.forbidden(kind) {
			continue
		}
		for _, ref := range defs.PortsByKind(kind) {
			p, err := openPort(ref, opts)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			if p != nil {
				return p, nil
			}
		}
	}
	if firstErr != nil {
		return nil, fmt.Errorf("invoke: no usable port for %s: %w", defs.Name, firstErr)
	}
	return nil, fmt.Errorf("invoke: no usable port for %s", defs.Name)
}

// OpenAll returns one port per advertised binding the options allow,
// cheapest first — used by experiments that compare bindings side by side.
func OpenAll(defs *wsdl.Definitions, opts Options) []Port {
	var out []Port
	for _, kind := range preference {
		if opts.forbidden(kind) {
			continue
		}
		for _, ref := range defs.PortsByKind(kind) {
			if p, err := openPort(ref, opts); err == nil && p != nil {
				out = append(out, p)
			}
		}
	}
	return out
}

func openPort(ref wsdl.PortRef, opts Options) (Port, error) {
	switch ref.Binding.Kind {
	case wsdl.BindJavaObject:
		cname, inst, err := ParseLocalAddress(ref.Port.Address)
		if err != nil {
			return nil, err
		}
		c := opts.localContainer(cname)
		if c == nil {
			return nil, nil // not co-located; not an error, just unusable
		}
		if _, ok := c.Instance(inst); !ok {
			return nil, nil
		}
		return &LocalPort{Container: c, Instance: inst, Telemetry: opts.Telemetry, Chaos: opts.Chaos}, nil
	case wsdl.BindShm:
		host, _, err := ParseShmAddress(ref.Port.Address)
		if err != nil {
			return nil, err
		}
		if !sameHost(host) {
			return nil, nil // different machine; not an error, just unusable
		}
		p, err := NewShmPort(ref.Port.Address, instanceFromDefs(ref))
		if err != nil {
			return nil, err
		}
		p.SetTelemetry(opts.Telemetry)
		p.SetChaos(opts.Chaos)
		// Negotiate at dial time: if the handshake fails (server gone,
		// platform without mmap), the binding is unusable and selection
		// falls through to XDR.
		if err := p.Connect(context.Background()); err != nil {
			_ = p.Close()
			return nil, nil
		}
		return p, nil
	case wsdl.BindXDR:
		inst := instanceFromDefs(ref)
		p := NewXDRPort(ref.Port.Address, inst, opts.DialPerCall)
		p.SetTelemetry(opts.Telemetry)
		p.SetChaos(opts.Chaos)
		p.SetCompression(resolveCompress(opts.Compress, ref.Binding))
		return p, nil
	case wsdl.BindSOAP:
		return &SOAPPort{URL: ref.Port.Address, Client: soap.Client{Codec: opts.Codec}, Telemetry: opts.Telemetry, Chaos: opts.Chaos}, nil
	case wsdl.BindHTTP:
		return &HTTPPort{URL: ref.Port.Address, Telemetry: opts.Telemetry, Chaos: opts.Chaos}, nil
	}
	return nil, fmt.Errorf("invoke: unknown binding kind %v", ref.Binding.Kind)
}

// instanceFromDefs derives the target instance for an XDR port: the XDR
// frame carries an instance selector the way "the scheme mimics the
// behavior of the RMI daemon to select the actual target component". The
// SOAP endpoint path convention (…/services/<instance>) and the JavaObject
// binding's pinned instance provide the selector; fall back to the last
// path segment of any SOAP port, then the service name.
func instanceFromDefs(ref wsdl.PortRef) string {
	for _, p := range ref.Service.Ports {
		if strings.HasPrefix(p.Address, "local:") {
			if _, inst, err := ParseLocalAddress(p.Address); err == nil {
				return inst
			}
		}
	}
	for _, p := range ref.Service.Ports {
		if strings.HasPrefix(p.Address, "http://") || strings.HasPrefix(p.Address, "https://") {
			if i := strings.LastIndexByte(p.Address, '/'); i >= 0 && i < len(p.Address)-1 {
				return p.Address[i+1:]
			}
		}
	}
	return strings.TrimSuffix(ref.Service.Name, "Service")
}

// ParseLocalAddress splits a JavaObject locator local:<container>/<instance>.
func ParseLocalAddress(addr string) (containerName, instance string, err error) {
	rest, ok := strings.CutPrefix(addr, "local:")
	if !ok {
		return "", "", fmt.Errorf("invoke: %q is not a local address", addr)
	}
	i := strings.IndexByte(rest, '/')
	if i <= 0 || i == len(rest)-1 {
		return "", "", fmt.Errorf("invoke: malformed local address %q", addr)
	}
	return rest[:i], rest[i+1:], nil
}
