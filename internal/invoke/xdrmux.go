package invoke

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"harness2/internal/resilience"
	"harness2/internal/wire"
	"harness2/internal/xdr"
)

// errXDRConnClosed marks a multiplexed connection that died before this
// call wrote anything — retrying on a fresh connection is transparent.
var errXDRConnClosed = errors.New("invoke: xdr connection closed")

// muxResult is one demultiplexed response. frame comes from the xdr
// frame pool; the receiver releases it after decoding.
type muxResult struct {
	frame []byte
	err   error
}

// clientCompress is a port's resolved outbound-compression stance,
// captured at dial time.
type clientCompress struct {
	enabled  bool // construct a compressor if the server answers a codec
	adaptive bool
}

// muxConn is one multiplexed (wire protocol v2 or v3) client connection:
// a single TCP stream shared by any number of concurrent calls. Writers
// serialize frame-at-a-time on wmu; a dedicated readLoop goroutine
// demultiplexes responses to per-call channels by request ID.
type muxConn struct {
	conn net.Conn
	cw   *countingWriter
	fw   *frameWriter
	wm   xdrWireMetrics // nil-safe handles; zero value is fully inert

	// v3 negotiation state. The dial preamble (MagicV3 + offer word)
	// pipelines with the first request frames; answered flips when the
	// server's chosen-codec word arrives, and only then may outbound
	// frames compress — the compressor pointer stays nil on raw streams,
	// so the raw path costs one atomic load.
	proto     int           // 2 or 3
	offer     uint32        // codec word sent with MagicV3
	cc        clientCompress
	answered  atomic.Bool
	comp      atomic.Pointer[xdr.Compressor]
	codecName atomic.Pointer[string] // negotiated codec, for the gauge

	wmu         sync.Mutex    // serializes request frames (and the write deadline)
	deadlineSet bool          // guarded by wmu: a write deadline is armed
	flushKick   chan struct{} // cap 1: wakes flushLoop after a frame is buffered
	done        chan struct{} // closed by shutdown; stops flushLoop

	reused atomic.Bool // at least one call completed on this connection

	mu      sync.Mutex
	err     error // set once the connection is broken
	nextID  uint64
	pending map[uint64]chan muxResult
}

// dialMux opens a multiplexed connection: TCP connect plus the version
// preamble (MagicV2, or MagicV3 with the offered-codec word), which is
// buffered so it coalesces with the first request frame into a single
// write syscall.
func dialMux(ctx context.Context, addr string, wm xdrWireMetrics, proto int, offer uint32, cc clientCompress) (*muxConn, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("invoke: xdr dial %s: %w", addr, err)
	}
	fw := newFrameWriter(conn, wm)
	mc := &muxConn{
		conn:      conn,
		cw:        fw.cw,
		fw:        fw,
		wm:        wm,
		proto:     proto,
		offer:     offer | 1,
		cc:        cc,
		pending:   make(map[uint64]chan muxResult),
		flushKick: make(chan struct{}, 1),
		done:      make(chan struct{}),
	}
	if proto >= 3 {
		err = xdr.WriteMagicV3(mc.fw, offer)
	} else {
		err = xdr.WriteMagicV2(mc.fw)
	}
	if err != nil {
		_ = conn.Close()
		return nil, err
	}
	go mc.readLoop()
	go mc.flushLoop()
	return mc, nil
}

// v3Refused reports whether this connection died before the server ever
// acknowledged the v3 preamble — the signature of a pre-v3 peer, which
// reads MagicV3 as an over-limit v1 frame length and closes. A genuine v3
// server answers (and flushes) its codec word before touching any request
// frame, so an unanswered death also proves the server did not respond to
// anything sent on this connection.
func (mc *muxConn) v3Refused() bool {
	return mc.proto >= 3 && !mc.answered.Load()
}

// kickFlush schedules a flush of buffered request frames. The kick
// channel has capacity one, so a burst of callers collapses into a
// single wakeup.
func (mc *muxConn) kickFlush() {
	select {
	case mc.flushKick <- struct{}{}:
	default:
	}
}

// flushLoop commits buffered request frames to the socket. Flushing in a
// dedicated goroutine — rather than inline in each writeRequest — is what
// makes request batching work: after a wakeup the loop yields once, so
// every caller that is already runnable gets to append its frame to the
// shared buffer first, and the whole burst leaves in one write syscall.
// The write syscall is the dominant per-call cost on a fast network, so
// this is where the multiplexed transport's aggregate throughput comes
// from. A lone caller still flushes with sub-microsecond extra latency
// (one scheduler yield with an empty run queue).
func (mc *muxConn) flushLoop() {
	for {
		select {
		case <-mc.done:
			return
		case <-mc.flushKick:
		}
		runtime.Gosched() // let runnable callers append their frames
		select {
		case <-mc.flushKick: // collapse kicks that arrived while yielding
		default:
		}
		mc.wmu.Lock()
		var err error
		if mc.fw.Buffered() > 0 {
			err = mc.fw.Flush()
		}
		mc.wmu.Unlock()
		if err != nil {
			mc.shutdown(err)
			return
		}
	}
}

// readLoop demultiplexes response frames to their waiting calls until
// the connection dies, then fails every call still pending. On a v3
// stream it first consumes the server's chosen-codec answer word, arming
// outbound compression when a codec was negotiated; compressed response
// payloads are restored here, before demux, so callers only ever see
// logical frames.
func (mc *muxConn) readLoop() {
	br := bufio.NewReaderSize(&countingReader{r: mc.conn, rx: mc.wm.rx}, xdrBufSize)
	if mc.proto >= 3 {
		var word [4]byte
		if _, err := io.ReadFull(br, word[:]); err != nil {
			mc.shutdown(err)
			return
		}
		chosen := binary.BigEndian.Uint32(word[:])
		if chosen != 0 {
			c := xdr.CodecByID(uint8(chosen))
			if chosen > 255 || c == nil || mc.offer&(1<<chosen) == 0 {
				mc.shutdown(fmt.Errorf("invoke: xdr v3 peer chose unoffered codec %d", chosen))
				return
			}
			name := c.Name()
			mc.codecName.Store(&name)
			mc.wm.codecs.With(name).Inc()
			if mc.cc.enabled {
				mc.comp.Store(xdr.NewCompressor(c, mc.cc.adaptive, 0))
			}
		}
		mc.answered.Store(true)
	}
	for {
		var (
			id    uint64
			flags byte
			frame []byte
			err   error
		)
		if mc.proto >= 3 {
			id, flags, frame, err = xdr.ReadFrameV3(br)
			if err == nil && flags != 0 {
				mc.wm.compressedIn(len(frame))
				dec, derr := xdr.DecompressFrameV3(flags, frame)
				xdr.PutFrameBuf(frame)
				frame, err = dec, derr
			}
		} else {
			id, frame, err = xdr.ReadFrameID(br)
		}
		if err != nil {
			mc.shutdown(err)
			return
		}
		mc.mu.Lock()
		ch, ok := mc.pending[id]
		delete(mc.pending, id)
		mc.mu.Unlock()
		if ok {
			mc.wm.inflight.Dec()
			ch <- muxResult{frame: frame} // buffered: never blocks
		} else {
			// The caller abandoned the call (ctx cancellation). The
			// connection stays healthy; only the late frame is dropped.
			xdr.PutFrameBuf(frame)
		}
	}
}

// shutdown marks the connection broken, fails all pending calls, and
// closes the socket. Idempotent.
func (mc *muxConn) shutdown(err error) {
	mc.mu.Lock()
	if mc.err == nil {
		mc.err = err
		close(mc.done)
		if name := mc.codecName.Load(); name != nil {
			mc.wm.codecs.With(*name).Dec()
		}
		if n := len(mc.pending); n > 0 {
			mc.wm.inflight.Add(-int64(n))
		}
		for id, ch := range mc.pending {
			delete(mc.pending, id)
			ch <- muxResult{err: err}
		}
	}
	mc.mu.Unlock()
	_ = mc.conn.Close()
}

// muxChPool recycles per-call response channels. A channel may be
// returned to the pool only after its single send has been received —
// i.e. on the receive paths of invokeMux, never on the abandon
// (deregister) path, where a late send could still race in.
var muxChPool = sync.Pool{
	New: func() any { return make(chan muxResult, 1) },
}

// register allocates a request ID and its response channel.
func (mc *muxConn) register() (uint64, chan muxResult, error) {
	ch := muxChPool.Get().(chan muxResult)
	mc.mu.Lock()
	defer mc.mu.Unlock()
	if mc.err != nil {
		muxChPool.Put(ch)
		return 0, nil, errXDRConnClosed
	}
	mc.nextID++
	mc.pending[mc.nextID] = ch
	mc.wm.inflight.Inc()
	return mc.nextID, ch, nil
}

// deregister abandons a pending call (ctx cancellation). If the response
// raced in first it is drained and released, keeping the pool tight.
func (mc *muxConn) deregister(id uint64, ch chan muxResult) {
	mc.mu.Lock()
	if _, present := mc.pending[id]; present {
		delete(mc.pending, id)
		mc.wm.inflight.Dec()
	}
	mc.mu.Unlock()
	select {
	case res := <-ch:
		xdr.PutFrameBuf(res.frame)
	default:
	}
}

func (mc *muxConn) markReused() {
	if !mc.reused.Load() {
		mc.reused.Store(true)
	}
}

func (mc *muxConn) wasReused() bool { return mc.reused.Load() }

// writeRequest seals the request encoder into a frame for id, buffers
// it, and schedules a flush. It reports whether any byte of the frame
// reached the socket (a large frame leaves immediately as a vectored
// write; see frameWriter), which gates the caller's retry decision.
// Flush errors for fully-buffered frames surface through the per-call
// response channel when flushLoop shuts the connection down.
//
// On a v3 stream with a negotiated codec, the payload may be compressed
// here — outside wmu, so flate CPU never serializes other writers. The
// raw path (no compressor, frame under the floor, adaptive backoff, or
// incompressible payload) seals the caller's encoder in place exactly
// like v2, with zero extra allocations.
func (mc *muxConn) writeRequest(ctx context.Context, id uint64, e *xdr.Encoder) (wroteAny bool, err error) {
	var frame []byte
	var ce *xdr.Encoder // pooled holder of a compressed frame, if any
	if mc.proto >= 3 {
		if comp := mc.comp.Load(); comp != nil {
			payload := e.FramePayloadV3()
			if frame, ce = comp.CompressFrameV3(id, payload); ce != nil {
				mc.wm.compressedOut(len(frame)-xdr.FrameHeaderLenV3, len(payload))
			}
		}
		if ce == nil {
			frame, err = e.FrameBytesV3(id, 0)
		}
	} else {
		frame, err = e.FrameBytes(id)
	}
	if err != nil {
		return false, err
	}
	if ce != nil {
		defer xdr.PutEncoder(ce) // frameWriter copies or writes synchronously
	}
	mc.wmu.Lock()
	// Arm the write deadline from this call's context; clearing a
	// previously-set deadline means no call inherits a stale timeout,
	// and the deadlineSet flag spares deadline-free traffic the runtime
	// call entirely. Reads are unbounded here — per-call read timeouts
	// are enforced by the ctx select in invokeMux, because a deadline on
	// the shared read side would interrupt other calls' responses.
	if deadline, ok := ctx.Deadline(); ok {
		_ = mc.conn.SetWriteDeadline(deadline)
		mc.deadlineSet = true
	} else if mc.deadlineSet {
		_ = mc.conn.SetWriteDeadline(time.Time{})
		mc.deadlineSet = false
	}
	mc.cw.n = 0
	_, err = mc.fw.Write(frame)
	wroteAny = mc.cw.n > 0
	mc.wmu.Unlock()
	if err == nil {
		mc.kickFlush()
	}
	return wroteAny, err
}

// invokeMux is the multiplexed call path.
func (p *XDRPort) invokeMux(ctx context.Context, op string, args []wire.Arg) ([]wire.Arg, error) {
	e := xdr.GetEncoder()
	defer xdr.PutEncoder(e)

	// At most one transparent resend, and only when provably safe (see
	// below); a dead connection discovered before writing costs only a
	// redial, bounded separately so a flapping peer cannot loop forever.
	const maxRedials = 2
	resent := false
	encodedProto := 0
	for redials := 0; ; {
		mc, err := p.muxConnLocked(ctx)
		if err != nil {
			// Dial failure: provably unsent, safe to retry at any level.
			return nil, resilience.MarkUnsent(err)
		}
		// The frame header size depends on the connection's protocol, and
		// a v3→v2 downgrade can happen between loop iterations — re-encode
		// only when the protocol actually changed.
		if encodedProto != mc.proto {
			e.Reset()
			if mc.proto >= 3 {
				e.ReserveFrameHeaderV3()
			} else {
				e.ReserveFrameHeader()
			}
			if err := encodeRequest(e, p.instance, op, args); err != nil {
				return nil, err
			}
			encodedProto = mc.proto
		}
		id, ch, err := mc.register()
		if err != nil {
			// The pooled connection died while idle; nothing was sent.
			p.noteV3Refused(mc)
			p.dropMux(mc)
			if redials++; redials <= maxRedials {
				continue
			}
			return nil, resilience.MarkUnsent(fmt.Errorf("invoke: xdr call %s: %w", op, err))
		}
		wroteAny, err := mc.writeRequest(ctx, id, e)
		if err != nil {
			mc.deregister(id, ch)
			mc.shutdown(err) // a partial frame desyncs the stream
			p.dropMux(mc)
			refused := p.noteV3Refused(mc)
			// Resend only if this was a pooled (reused) connection whose
			// first write failed outright — zero bytes reached the wire,
			// so the server cannot have seen, let alone executed, the
			// request — or if the peer provably rejected the v3 preamble
			// before reading any frame. Mid-frame failures are surfaced.
			if ((!wroteAny && mc.wasReused()) || refused) && !resent {
				resent = true
				continue
			}
			werr := fmt.Errorf("invoke: xdr call %s: %w", op, err)
			if !wroteAny {
				// Zero bytes reached the wire: the request provably never
				// left this process, so higher-level policies may retry it
				// even for non-idempotent operations.
				return nil, resilience.MarkUnsent(werr)
			}
			return nil, werr
		}
		select {
		case res := <-ch:
			// The channel's single send has been received, so it can be
			// recycled for a future call.
			muxChPool.Put(ch)
			if res.err != nil {
				p.dropMux(mc)
				// Silent fallback for pre-v3 peers: a v2-only server reads
				// MagicV3 as an over-limit v1 frame length and closes
				// without ever parsing a request frame, so resending on a
				// downgraded connection cannot double-invoke. (A true v3
				// server flushes its answer word before executing anything;
				// losing that word in flight is the one — accepted and
				// vanishingly narrow — replay window.)
				if p.noteV3Refused(mc) && !resent {
					resent = true
					continue
				}
				// Otherwise the request reached the wire but the connection
				// died before the response: the server may have executed
				// the call, so surfacing the error is the only safe move.
				return nil, fmt.Errorf("invoke: xdr call %s: %w", op, res.err)
			}
			mc.markReused()
			out, derr := decodeResponse(res.frame)
			xdr.PutFrameBuf(res.frame)
			return out, derr
		case <-ctx.Done():
			// Abandon this call only: the connection (and every other
			// in-flight call on it) stays healthy.
			mc.deregister(id, ch)
			return nil, ctx.Err()
		}
	}
}

// muxConnLocked returns the port's live multiplexed connection, dialing
// one if needed.
func (p *XDRPort) muxConnLocked(ctx context.Context) (*muxConn, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.mc != nil {
		return p.mc, nil
	}
	proto := p.proto
	if proto == 0 {
		proto = 3
	}
	var offer uint32
	var cc clientCompress
	if proto >= 3 {
		// A direct port resolves CompressAuto to off: with no WSDL there
		// is no advertisement to follow (openPort translates an advertised
		// `compress` capability into an explicit adaptive policy).
		offer = p.cpol.offerWord(false)
		cc = clientCompress{enabled: p.cpol.enabled(false), adaptive: p.cpol.adaptive()}
	}
	mc, err := dialMux(ctx, p.addr, p.wm, proto, offer, cc)
	if err != nil {
		return nil, err
	}
	p.mc = mc
	return mc, nil
}

// noteV3Refused downgrades the port to the v2 wire protocol when mc died
// without the server ever answering the v3 preamble — the stale-peer
// fallback. It reports whether a downgrade happened, which also certifies
// that the peer never processed anything sent on mc.
func (p *XDRPort) noteV3Refused(mc *muxConn) bool {
	if !mc.v3Refused() {
		return false
	}
	p.mu.Lock()
	p.proto = 2
	p.mu.Unlock()
	return true
}

// dropMux forgets mc if it is still the port's current connection. A
// concurrent caller may already have dialed a replacement; only the
// broken connection is discarded.
func (p *XDRPort) dropMux(mc *muxConn) {
	p.mu.Lock()
	if p.mc == mc {
		p.mc = nil
	}
	p.mu.Unlock()
}
