package invoke

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"harness2/internal/container"
	"harness2/internal/wire"
)

func benchXDRHost(b *testing.B) *XDRServer {
	b.Helper()
	c := container.New(container.Config{Name: "bench"})
	c.RegisterFactory("MatMul", matmulImpl())
	c.RegisterFactory("Counter", counterImpl())
	if _, _, err := c.Deploy("MatMul", "mm"); err != nil {
		b.Fatal(err)
	}
	if _, _, err := c.Deploy("Counter", "c1"); err != nil {
		b.Fatal(err)
	}
	srv, err := NewXDRServer(c, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = srv.Close() })
	return srv
}

var benchModes = []XDRMode{XDRModeSerial, XDRModeMux}

// BenchmarkXDRInvokeSmall measures one small (two-int64) call on a
// single connection — the per-call frame/encode floor of the binding —
// for the legacy serial transport and the multiplexed v2 transport.
func BenchmarkXDRInvokeSmall(b *testing.B) {
	for _, mode := range benchModes {
		b.Run(mode.String(), func(b *testing.B) {
			srv := benchXDRHost(b)
			p := NewXDRPortMode(srv.Addr(), "c1", mode)
			defer p.Close()
			args := wire.Args("by", int64(1))
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.Invoke(ctx, "inc", args); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkXDRInvokeArray1MB measures a 1 MiB []float64 echo through the
// full client+server path: the numeric-array bulk encode/decode fast
// path plus frame-buffer pooling.
func BenchmarkXDRInvokeArray1MB(b *testing.B) {
	for _, mode := range benchModes {
		b.Run(mode.String(), func(b *testing.B) {
			srv := benchXDRHost(b)
			p := NewXDRPortMode(srv.Addr(), "mm", mode)
			defer p.Close()
			n := 1 << 17 // 128k doubles = 1 MiB
			data := make([]float64, n)
			for i := range data {
				data[i] = float64(i)
			}
			args := wire.Args("mata", data, "matb", data)
			ctx := context.Background()
			b.SetBytes(int64(8 * n))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.Invoke(ctx, "getResult", args); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchXDRConcurrent drives `clients` goroutines over one shared port.
func benchXDRConcurrent(b *testing.B, mode XDRMode, clients int) {
	srv := benchXDRHost(b)
	p := NewXDRPortMode(srv.Addr(), "c1", mode)
	defer p.Close()
	args := wire.Args("by", int64(1))
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N / clients
	if per == 0 {
		per = 1
	}
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := p.Invoke(ctx, "inc", args); err != nil {
					b.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// BenchmarkXDRInvokeConcurrent is the E11 companion: aggregate
// throughput of one shared port under concurrent callers. The serial
// transport admits one call in flight, so ns/op stays flat; the
// multiplexed transport pipelines calls and batches frames per syscall,
// so ns/op falls as concurrency grows.
func BenchmarkXDRInvokeConcurrent(b *testing.B) {
	for _, mode := range benchModes {
		for _, clients := range []int{1, 4, 16, 64} {
			b.Run(fmt.Sprintf("%s/clients=%d", mode, clients), func(b *testing.B) {
				benchXDRConcurrent(b, mode, clients)
			})
		}
	}
}
