package invoke

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"harness2/internal/container"
	"harness2/internal/telemetry"
	"harness2/internal/wire"
)

// goroutineCount returns the goroutine count after giving the runtime a
// moment to retire exiting goroutines.
func goroutineCount() int {
	runtime.GC()
	return runtime.NumGoroutine()
}

// TestXDRMuxNoLeakOnServerChurn is the leak regression for the v2 client:
// every path out of the demux machinery (server death with calls in
// flight, register on a dead pooled connection, port close) must unwind
// both muxConn goroutines (readLoop, flushLoop) and close the socket.
// The test churns through server restarts with concurrent callers and
// asserts the goroutine count returns to baseline.
func TestXDRMuxNoLeakOnServerChurn(t *testing.T) {
	c := container.New(container.Config{Name: "leak"})
	c.RegisterFactory("Counter", counterImpl())
	if _, _, err := c.Deploy("Counter", "c1"); err != nil {
		t.Fatal(err)
	}

	round := func(killMidFlight bool) {
		xs, err := NewXDRServer(c, "127.0.0.1:0", WithXDRTelemetry(telemetry.Disabled()))
		if err != nil {
			t.Fatal(err)
		}
		p := NewXDRPort(xs.Addr(), "c1", false)
		p.SetTelemetry(telemetry.Disabled())
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 10; i++ {
					// Errors are expected once the server dies; the
					// invariant under test is resource unwinding, not
					// success.
					_, _ = p.Invoke(context.Background(), "inc", wire.Args("by", int64(1)))
				}
			}()
		}
		if killMidFlight {
			_ = xs.Close() // kill the server with calls in flight
		}
		wg.Wait()
		if !killMidFlight {
			_ = xs.Close()
		}
		// Calls against the dead server exercise the dial-failure and
		// dead-pooled-connection paths.
		_, _ = p.Invoke(context.Background(), "inc", wire.Args("by", int64(1)))
		_ = p.Close()
	}

	// Warm up lazy singletons (frame pools, default registries) so the
	// baseline is taken in steady state.
	round(false)
	baseline := goroutineCount()

	for i := 0; i < 4; i++ {
		round(i%2 == 0)
	}

	deadline := time.Now().Add(5 * time.Second)
	var now int
	for {
		now = goroutineCount()
		if now <= baseline+2 { // scheduler jitter tolerance
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: baseline=%d now=%d\n%s", baseline, now, buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestXDRMuxCancelledCallersDoNotLeak: callers that abandon calls via
// context cancellation must not strand goroutines or pending-map entries.
func TestXDRMuxCancelledCallersDoNotLeak(t *testing.T) {
	started := make(chan struct{}, 64)
	release := make(chan struct{})
	c := container.New(container.Config{Name: "leak2"})
	c.RegisterFactory("Blocker", blockerImpl(started, release))
	if _, _, err := c.Deploy("Blocker", "b1"); err != nil {
		t.Fatal(err)
	}
	xs, err := NewXDRServer(c, "127.0.0.1:0", WithXDRTelemetry(telemetry.Disabled()))
	if err != nil {
		t.Fatal(err)
	}
	defer xs.Close()
	p := NewXDRPort(xs.Addr(), "b1", false)
	p.SetTelemetry(telemetry.Disabled())
	defer p.Close()

	// Establish the connection (and its two goroutines) first.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	_, _ = p.Invoke(ctx, "block", nil)
	cancel()
	baseline := goroutineCount()

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
			defer cancel()
			if _, err := p.Invoke(ctx, "block", nil); err == nil {
				t.Error("blocked call should time out")
			}
		}()
	}
	wg.Wait()
	close(release) // let the server-side handlers drain

	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := goroutineCount(); n <= baseline+2 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after cancellations: baseline=%d now=%d", baseline, n)
		}
		time.Sleep(20 * time.Millisecond)
	}
	// The abandoned calls must not linger in the pending map.
	p.mu.Lock()
	mc := p.mc
	p.mu.Unlock()
	if mc != nil {
		mc.mu.Lock()
		n := len(mc.pending)
		mc.mu.Unlock()
		if n != 0 {
			t.Fatalf("%d abandoned calls still pending", n)
		}
	}
}
