package invoke

import (
	"errors"
	"reflect"
	"testing"

	"harness2/internal/wire"
)

// allArgs covers every kind the GET binding can carry.
var allArgs = []wire.Arg{
	{Name: "b", Value: true},
	{Name: "i", Value: int32(-42)},
	{Name: "l", Value: int64(1 << 40)},
	{Name: "f", Value: float32(2.5)},
	{Name: "d", Value: 3.14159},
	{Name: "s", Value: "hello <world> & more"},
	{Name: "raw", Value: []byte{0, 1, 2, 255}},
	{Name: "bools", Value: []bool{true, false}},
	{Name: "ints", Value: []int32{1, -2, 3}},
	{Name: "longs", Value: []int64{4, 5}},
	{Name: "floats", Value: []float32{0.5, -1.5}},
	{Name: "doubles", Value: []float64{1e300, -2e-300, 0}},
	{Name: "strs", Value: []string{"a", "b & c", ""}},
	{Name: "empty", Value: ""},
	{Name: "emptyArr", Value: []float64{}},
}

func argsEqual(a, b []wire.Arg) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Name != b[i].Name || !wire.Equal(a[i].Value, b[i].Value) {
			return false
		}
	}
	return true
}

// TestAppendResponseDocMatchesDOMParser checks the append-based encoder
// round-trips through both parsers identically.
func TestAppendResponseDocMatchesDOMParser(t *testing.T) {
	doc, err := appendResponseDoc(nil, "op", allArgs)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	fast, ferr := fastParseResponseDoc(doc)
	if errors.Is(ferr, errDocComplex) {
		t.Fatalf("own output fell back to DOM:\n%s", doc)
	}
	if ferr != nil {
		t.Fatalf("fast parse: %v", ferr)
	}
	dom, derr := domParseResponseDoc(doc)
	if derr != nil {
		t.Fatalf("dom parse: %v", derr)
	}
	if !argsEqual(fast, dom) {
		t.Fatalf("fast=%v dom=%v", fast, dom)
	}
}

// TestFastParseResponseDocDifferential feeds tricky documents to both
// parsers: wherever the fast path does not defer, results must agree.
func TestFastParseResponseDocDifferential(t *testing.T) {
	docs := []string{
		`<response op="x"/>`,
		"<response op=\"x\">\n  <out name=\"v\" type=\"double\">1.5</out>\n</response>\n",
		`<response><out name="v" type="int">7</out></response>`,
		`<response><out type="int">7</out></response>`,                  // missing name
		`<response><out name="v" type="nosuch">7</out></response>`,      // unknown type
		`<response><out name="v" type="int">x</out></response>`,         // parse error
		`<response><out name="v" type="int"><!-- c -->7</out></response>`,
		`<response><out name="s" type="string">a &amp; b</out></response>`,
		`<response><out name="s" type="string"> padded  </out></response>`,
		`<response><out name="s" type="string"/></response>`,
		`<response><out name="a" type="ArrayOfString"/></response>`,
		`<response><out name="a" type="ArrayOfInt"><item>1</item><item> 2 </item></out></response>`,
		`<response><out name="a" type="ArrayOfInt"><item/><item>2</item></out></response>`, // empty item errors
		`<response><out name="a" type="ArrayOfDouble"><item>1</item>stray<item>2</item></out></response>`,
		`<response><out name="raw" type="bytes">AAEC</out></response>`,
		`<response>loose text<out name="v" type="bool">true</out></response>`,
		`<wrong op="x"/>`,
		`<response:ns op="x"/>`,
		`<response><unknown/></response>`,
		`<response><out name="v" type="string">caf&#233;</out></response>`, // non-ASCII expansion
		`<response><out name="v" type="string">a<?pi?>b</out></response>`,  // two runs concat
		`not xml at all`,
		`<response><out name="v" type="string">bad &entity;</out></response>`,
		`<?xml version="1.0"?>` + "\n" + `<response op="x"><out name="v" type="long">9</out></response>` + "\n",
	}
	for _, doc := range docs {
		fast, ferr := fastParseResponseDoc([]byte(doc))
		if errors.Is(ferr, errDocComplex) {
			continue // deferred to the DOM; nothing to compare
		}
		dom, derr := domParseResponseDoc([]byte(doc))
		if (ferr != nil) != (derr != nil) {
			t.Errorf("%s:\nfast err=%v dom err=%v", doc, ferr, derr)
			continue
		}
		if ferr == nil && !argsEqual(fast, dom) {
			t.Errorf("%s:\nfast=%#v\ndom=%#v", doc, fast, dom)
		}
	}
}

// TestFastParseStringArrayNilMatchesDOM pins the corner where coerceArray
// returns a nil string slice for an item-less array.
func TestFastParseStringArrayNilMatchesDOM(t *testing.T) {
	doc := []byte(`<response><out name="a" type="ArrayOfString"/></response>`)
	fast, err := fastParseResponseDoc(doc)
	if err != nil {
		t.Fatalf("fast: %v", err)
	}
	dom, err := domParseResponseDoc(doc)
	if err != nil {
		t.Fatalf("dom: %v", err)
	}
	if !reflect.DeepEqual(fast, dom) {
		t.Fatalf("fast=%#v dom=%#v", fast, dom)
	}
}

// TestResponseDocScalarEncodeAllocFree is the regression gate for the
// base64/strconv append conversion: encoding a scalar-only response into
// a pre-sized buffer must not allocate.
func TestResponseDocScalarEncodeAllocFree(t *testing.T) {
	args := []wire.Arg{
		{Name: "d", Value: 3.14},
		{Name: "n", Value: int64(123456)},
		{Name: "ok", Value: true},
		{Name: "raw", Value: []byte{1, 2, 3, 4, 5, 6, 7, 8}},
		{Name: "s", Value: "plain text"},
	}
	buf := make([]byte, 0, 4096)
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := appendResponseDoc(buf, "op", args); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("appendResponseDoc scalar path allocates %.0f times per call, want 0", allocs)
	}
}

func BenchmarkResponseDocEncodeScalars(b *testing.B) {
	args := []wire.Arg{
		{Name: "d", Value: 3.14},
		{Name: "n", Value: int64(123456)},
		{Name: "raw", Value: []byte{1, 2, 3, 4, 5, 6, 7, 8}},
	}
	buf := make([]byte, 0, 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := appendResponseDoc(buf, "op", args); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseResponseDoc(b *testing.B) {
	doc, err := appendResponseDoc(nil, "op", []wire.Arg{
		{Name: "d", Value: 3.14},
		{Name: "vals", Value: []float64{1, 2, 3, 4, 5, 6, 7, 8}},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("fast", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := fastParseResponseDoc(doc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dom", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := domParseResponseDoc(doc); err != nil {
				b.Fatal(err)
			}
		}
	})
}
