package invoke

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"harness2/internal/container"
	"harness2/internal/resilience"
	"harness2/internal/resilience/chaos"
	"harness2/internal/telemetry"
	"harness2/internal/wire"
	"harness2/internal/wsdl"
)

// fakePort is an in-memory Port with a programmable failure budget.
type fakePort struct {
	kind   wsdl.BindingKind
	ep     string
	fail   int32 // fail this many calls before succeeding
	err    error
	calls  int32
	closed int32
}

func (f *fakePort) Invoke(ctx context.Context, op string, args []wire.Arg) ([]wire.Arg, error) {
	atomic.AddInt32(&f.calls, 1)
	if atomic.AddInt32(&f.fail, -1) >= 0 {
		return nil, f.err
	}
	return wire.Args("from", f.ep), nil
}

func (f *fakePort) Kind() wsdl.BindingKind { return f.kind }
func (f *fakePort) Endpoint() string       { return f.ep }
func (f *fakePort) Close() error           { atomic.AddInt32(&f.closed, 1); return nil }

func testResiliencePolicy(t *testing.T, opts ...resilience.Option) *resilience.Policy {
	t.Helper()
	base := []resilience.Option{
		resilience.WithMaxAttempts(4),
		resilience.WithBackoff(time.Microsecond, 10*time.Microsecond),
		resilience.WithTelemetry(telemetry.Disabled()),
	}
	p, err := resilience.New(append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestResilientPortNilPolicyFastPath(t *testing.T) {
	a := &fakePort{kind: wsdl.BindXDR, ep: "a"}
	b := &fakePort{kind: wsdl.BindSOAP, ep: "b"}
	p, err := NewResilientPort(nil, a, b)
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Invoke(context.Background(), "getX", nil)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := wire.GetArg(out, "from"); v != "a" {
		t.Fatalf("from = %v", v)
	}
	if a.calls != 1 || b.calls != 0 {
		t.Fatalf("calls = %d,%d", a.calls, b.calls)
	}
	// Errors pass through untouched on the disabled path.
	a.fail, a.err = 1, errors.New("boom")
	if _, err := p.Invoke(context.Background(), "getX", nil); err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v", err)
	}
}

func TestNewResilientPortRejectsEmptyLadder(t *testing.T) {
	if _, err := NewResilientPort(nil); err == nil {
		t.Fatal("empty ladder should be rejected")
	}
}

func TestResilientPortFailsOverAcrossLadder(t *testing.T) {
	a := &fakePort{kind: wsdl.BindXDR, ep: "a", fail: 99,
		err: resilience.MarkTransient(errors.New("link down"))}
	b := &fakePort{kind: wsdl.BindSOAP, ep: "b"}
	p, err := NewResilientPort(testResiliencePolicy(t), a, b)
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Invoke(context.Background(), "getX", nil)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := wire.GetArg(out, "from"); v != "b" {
		t.Fatalf("from = %v", v)
	}
	if a.calls == 0 || b.calls != 1 {
		t.Fatalf("calls = %d,%d", a.calls, b.calls)
	}
	// The port still reports the primary rung's identity.
	if p.Kind() != wsdl.BindXDR || p.Endpoint() != "a" {
		t.Fatalf("identity = %v %q", p.Kind(), p.Endpoint())
	}
	if err := p.Close(); err != nil || a.closed != 1 || b.closed != 1 {
		t.Fatalf("close: %v %d %d", err, a.closed, b.closed)
	}
}

func TestResilientPortPermanentErrorNoFailover(t *testing.T) {
	a := &fakePort{kind: wsdl.BindXDR, ep: "a", fail: 1,
		err: resilience.MarkPermanent(errors.New("no such operation"))}
	b := &fakePort{kind: wsdl.BindSOAP, ep: "b"}
	p, err := NewResilientPort(testResiliencePolicy(t), a, b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Invoke(context.Background(), "getX", nil); err == nil {
		t.Fatal("permanent error should surface")
	}
	if a.calls != 1 || b.calls != 0 {
		t.Fatalf("calls = %d,%d (permanent errors must not fail over)", a.calls, b.calls)
	}
}

func TestIdempotentByName(t *testing.T) {
	for op, want := range map[string]bool{
		"ping": true, "classes": true, "status": true,
		"getResult": true, "listInstances": true, "findByName": true,
		"describe": true, "lookup": true, "readState": true, "queryAll": true,
		"inc": false, "setMatrix": false, "destroy": false, "": false,
	} {
		if got := IdempotentByName(op); got != want {
			t.Errorf("IdempotentByName(%q) = %v, want %v", op, got, want)
		}
	}
}

// TestResilientDialChaosFailover is the end-to-end ladder test: chaos
// kills every XDR client call before it is sent, and the resilience
// policy walks the Figure 5 ladder down to SOAP. The operation is
// non-idempotent (Counter.inc), so the test also proves chaos error
// faults are classified unsent — retried without double-applying.
func TestResilientDialChaosFailover(t *testing.T) {
	h := newHost(t)
	_, defs := h.deploy(t, "Counter", "c1")

	inj, err := chaos.New(1, chaos.MustParse("error:1@xdr")...)
	if err != nil {
		t.Fatal(err)
	}
	p, err := DialResilient(defs, Options{
		Chaos:     inj,
		Policy:    testResiliencePolicy(t),
		Telemetry: telemetry.Disabled(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Kind() != wsdl.BindXDR {
		t.Fatalf("primary rung = %v, want xdr", p.Kind())
	}
	for i := 1; i <= 3; i++ {
		out, err := p.Invoke(context.Background(), "inc", wire.Args("by", int64(2)))
		if err != nil {
			t.Fatalf("inc %d: %v", i, err)
		}
		total, _ := wire.GetArg(out, "total")
		if total != int64(2*i) {
			t.Fatalf("total after inc %d = %v (retries must not double-apply)", i, total)
		}
	}
}

// TestResilientDialChaosRetry: a bounded chaos rule (#2) fails the first
// two XDR calls. With SOAP/HTTP forbidden the ladder has a single rung,
// so the policy must retry the XDR port itself until the rule's budget is
// spent and the call succeeds.
func TestResilientDialChaosRetry(t *testing.T) {
	h := newHost(t)
	_, defs := h.deploy(t, "MatMul", "m1")

	inj, err := chaos.New(7, chaos.MustParse("error:1@xdr#2")...)
	if err != nil {
		t.Fatal(err)
	}
	p, err := DialResilient(defs, Options{
		Chaos:     inj,
		Policy:    testResiliencePolicy(t),
		Telemetry: telemetry.Disabled(),
		Forbid:    []wsdl.BindingKind{wsdl.BindSOAP, wsdl.BindHTTP},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	out, err := p.Invoke(context.Background(), "getResult",
		wire.Args("mata", []float64{2, 3}, "matb", []float64{4, 5}))
	if err != nil {
		t.Fatal(err)
	}
	res, _ := wire.GetArg(out, "result")
	got := res.([]float64)
	if len(got) != 2 || got[0] != 8 || got[1] != 15 {
		t.Fatalf("result = %v", got)
	}
	if fired := inj.Fired(); len(fired) != 1 || fired[0] != 2 {
		t.Fatalf("chaos fired = %v, want [2]", fired)
	}
}

// blockerImpl is a component whose op parks until released — used to pin
// server concurrency for admission-control tests.
func blockerImpl(started chan<- struct{}, release <-chan struct{}) container.Factory {
	return container.FuncFactory(func() *container.FuncComponent {
		return &container.FuncComponent{
			Spec: wsdl.ServiceSpec{Name: "Blocker", Operations: []wsdl.OpSpec{
				{Name: "block", Output: []wsdl.ParamSpec{{Name: "ok", Type: wire.KindInt64}}},
			}},
			Handlers: map[string]container.OpFunc{
				"block": func(ctx context.Context, args []wire.Arg) ([]wire.Arg, error) {
					started <- struct{}{}
					select {
					case <-release:
					case <-ctx.Done():
					}
					return wire.Args("ok", int64(1)), nil
				},
			},
		}
	})
}

// TestXDRServerShedsWhenOverloaded: an XDR server with a one-slot, no-queue
// limiter sheds the second concurrent call with a fault that classifies as
// Overloaded on the client side of the wire.
func TestXDRServerShedsWhenOverloaded(t *testing.T) {
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	c := container.New(container.Config{Name: "shed"})
	c.RegisterFactory("Blocker", blockerImpl(started, release))
	if _, _, err := c.Deploy("Blocker", "b1"); err != nil {
		t.Fatal(err)
	}
	xs, err := NewXDRServer(c, "127.0.0.1:0",
		WithXDRLimiter(resilience.NewLimiter(1, 0, 0)),
		WithXDRTelemetry(telemetry.Disabled()))
	if err != nil {
		t.Fatal(err)
	}
	defer xs.Close()

	port := func() *XDRPort {
		p := NewXDRPort(xs.Addr(), "b1", false)
		p.SetTelemetry(telemetry.Disabled())
		return p
	}
	p1 := port()
	defer p1.Close()
	errc := make(chan error, 1)
	go func() {
		_, err := p1.Invoke(context.Background(), "block", nil)
		errc <- err
	}()
	<-started // the slot is now held

	p2 := port()
	defer p2.Close()
	_, err = p2.Invoke(context.Background(), "block", nil)
	if err == nil {
		t.Fatal("second concurrent call should be shed")
	}
	if kind := resilience.Classify(err); kind != resilience.KindOverloaded {
		t.Fatalf("shed classified %v (err %v), want Overloaded", kind, err)
	}
	close(release)
	if err := <-errc; err != nil {
		t.Fatalf("admitted call failed: %v", err)
	}
	// With the slot free the next call is admitted again.
	go func() { <-started }()
	if _, err := p2.Invoke(context.Background(), "block", nil); err != nil {
		t.Fatalf("post-release call failed: %v", err)
	}
}

// TestOverloadedShedFailsOverToNextRung: the shed fault's Overloaded
// classification is retryable-elsewhere, so a ResilientPort advances to
// an unlimited rung instead of failing the call.
func TestOverloadedShedFailsOverToNextRung(t *testing.T) {
	a := &fakePort{kind: wsdl.BindXDR, ep: "busy", fail: 99,
		err: fmt.Errorf("server shed: %w", resilience.ErrOverloaded)}
	b := &fakePort{kind: wsdl.BindSOAP, ep: "idle"}
	p, err := NewResilientPort(testResiliencePolicy(t), a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Non-idempotent op: Overloaded is still safe to retry elsewhere
	// because a shed provably never executed.
	out, err := p.Invoke(context.Background(), "inc", nil)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := wire.GetArg(out, "from"); v != "idle" {
		t.Fatalf("from = %v", v)
	}
}
