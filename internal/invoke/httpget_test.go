package invoke

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"harness2/internal/container"
	"harness2/internal/wire"
	"harness2/internal/wsdl"
)

// mixedFactory exposes one operation exercising every URL-encodable kind.
func mixedFactory() container.Factory {
	return container.FuncFactory(func() *container.FuncComponent {
		return &container.FuncComponent{
			Spec: wsdl.ServiceSpec{Name: "Mixed", Operations: []wsdl.OpSpec{{
				Name: "echo",
				Input: []wsdl.ParamSpec{
					{Name: "b", Type: wire.KindBool},
					{Name: "i", Type: wire.KindInt32},
					{Name: "l", Type: wire.KindInt64},
					{Name: "f", Type: wire.KindFloat32},
					{Name: "d", Type: wire.KindFloat64},
					{Name: "s", Type: wire.KindString},
					{Name: "raw", Type: wire.KindBytes},
					{Name: "ds", Type: wire.KindFloat64Array},
					{Name: "ss", Type: wire.KindStringArray},
				},
				Output: []wsdl.ParamSpec{
					{Name: "b", Type: wire.KindBool},
					{Name: "i", Type: wire.KindInt32},
					{Name: "l", Type: wire.KindInt64},
					{Name: "f", Type: wire.KindFloat32},
					{Name: "d", Type: wire.KindFloat64},
					{Name: "s", Type: wire.KindString},
					{Name: "raw", Type: wire.KindBytes},
					{Name: "ds", Type: wire.KindFloat64Array},
					{Name: "ss", Type: wire.KindStringArray},
				},
			}}},
			Handlers: map[string]container.OpFunc{
				"echo": func(ctx context.Context, args []wire.Arg) ([]wire.Arg, error) {
					return args, nil
				},
			},
		}
	})
}

func newGetHost(t *testing.T) (*container.Container, string) {
	t.Helper()
	c := container.New(container.Config{Name: "gh"})
	c.RegisterFactory("Mixed", mixedFactory())
	c.RegisterFactory("Counter", counterImpl())
	ts := httptest.NewServer(&HTTPGetHandler{Container: c})
	t.Cleanup(ts.Close)
	return c, ts.URL
}

func TestHTTPGetAllKindsRoundTrip(t *testing.T) {
	c, base := newGetHost(t)
	if _, _, err := c.Deploy("Mixed", "m"); err != nil {
		t.Fatal(err)
	}
	p := &HTTPPort{URL: base + "/m"}
	args := wire.Args(
		"b", true,
		"i", int32(-7),
		"l", int64(1<<40),
		"f", float32(1.5),
		"d", 2.25,
		"s", "hello world & <friends>",
		"raw", []byte{0, 1, 255},
		"ds", []float64{1.5, -2.5, 0},
		"ss", []string{"a b", "c&d", ""},
	)
	out, err := p.Invoke(context.Background(), "echo", args)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range args {
		got, ok := wire.GetArg(out, a.Name)
		if !ok {
			t.Errorf("missing output %q", a.Name)
			continue
		}
		// Empty strings inside arrays survive as empty items; whitespace
		// inside strings survives URL encoding.
		if !wire.Equal(got, a.Value) {
			t.Errorf("%s: got %#v want %#v", a.Name, got, a.Value)
		}
	}
	if p.Kind() != wsdl.BindHTTP || p.Endpoint() == "" || p.Close() != nil {
		t.Fatal("port surface broken")
	}
}

func TestHTTPGetStatefulInstance(t *testing.T) {
	c, base := newGetHost(t)
	if _, _, err := c.Deploy("Counter", "cnt"); err != nil {
		t.Fatal(err)
	}
	p := &HTTPPort{URL: base + "/cnt"}
	ctx := context.Background()
	var total int64
	for i := 0; i < 3; i++ {
		out, err := p.Invoke(ctx, "inc", wire.Args("by", int64(2)))
		if err != nil {
			t.Fatal(err)
		}
		v, _ := wire.GetArg(out, "total")
		total = v.(int64)
	}
	if total != 6 {
		t.Fatalf("total = %d", total)
	}
}

func TestHTTPGetErrors(t *testing.T) {
	c, base := newGetHost(t)
	if _, _, err := c.Deploy("Mixed", "m"); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	cases := []struct {
		name string
		port *HTTPPort
		op   string
		args []wire.Arg
		want string
	}{
		{"unknown instance", &HTTPPort{URL: base + "/ghost"}, "echo", nil, "no instance"},
		{"unknown op", &HTTPPort{URL: base + "/m"}, "nosuch", nil, "no operation"},
		{"bad param type", &HTTPPort{URL: base + "/m"}, "echo",
			wire.Args("i", "not-an-int-but-string-named-i"), "parameter"},
		{"struct arg rejected client-side", &HTTPPort{URL: base + "/m"}, "echo",
			wire.Args("s", wire.NewStruct("X")), "cannot carry"},
	}
	for _, tc := range cases {
		_, err := tc.port.Invoke(ctx, tc.op, tc.args)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func TestHTTPGetMethodNotAllowed(t *testing.T) {
	_, base := newGetHost(t)
	resp, err := defaultHTTPGet.Post(base+"/m/echo", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestHTTPGetViaDialPreference(t *testing.T) {
	// With everything but HTTP forbidden, Dial must produce an HTTPPort
	// from generated WSDL.
	h := newHost(t)
	_, defs := h.deploy(t, "Counter", "c1")
	refs := defs.PortsByKind(wsdl.BindHTTP)
	if len(refs) == 0 {
		t.Skip("host fixture has no HTTP base configured")
	}
	p, err := Dial(defs, Options{Forbid: []wsdl.BindingKind{
		wsdl.BindJavaObject, wsdl.BindXDR, wsdl.BindSOAP}})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Kind() != wsdl.BindHTTP {
		t.Fatalf("kind = %v", p.Kind())
	}
}

func TestHTTPGetOmittedParams(t *testing.T) {
	// Absent query params are simply not passed, like HTML forms.
	c, base := newGetHost(t)
	if _, _, err := c.Deploy("Mixed", "m"); err != nil {
		t.Fatal(err)
	}
	p := &HTTPPort{URL: base + "/m"}
	out, err := p.Invoke(context.Background(), "echo", wire.Args("i", int32(5)))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("out = %v", out)
	}
}
