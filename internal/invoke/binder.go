package invoke

import (
	"context"
	"fmt"
	"sync"
	"time"

	"harness2/internal/registry"
	"harness2/internal/wire"
	"harness2/internal/wsdl"
)

// Binder memoizes the whole client-side discovery pipeline: registry
// FindByName, WSDL parse, and port dial. Without it every logical call
// through a name pays a registry round trip plus an XML parse before any
// payload moves; with it a warm call is a map probe away from its open,
// keep-alive port — the paper's "after discovery the lookup service is
// out of the loop", applied to the whole bind chain.
//
// Bindings are reused for TTL, clamped to the service entry's
// LeaseRemaining so a port bound to a volatile registration is rebound
// no later than the lease under which it was discovered. Any invocation
// error invalidates the binding (the port is closed and the next call
// rediscovers), so a service that moved or died is re-resolved at the
// price of one failed call. TTL <= 0 disables caching: each call
// discovers, dials, and closes its own port.
type Binder struct {
	// Lookup resolves service names; typically a *registry.Cache over a
	// Remote, but any Lookup works.
	Lookup registry.Lookup
	// Opts configures port selection and dialing.
	Opts Options
	// TTL bounds binding reuse; 0 disables caching.
	TTL time.Duration
	// Clock is injectable for tests; nil uses time.Now.
	Clock func() time.Time

	mu    sync.Mutex
	ports map[string]*binding
}

type binding struct {
	done    chan struct{}
	port    Port
	err     error
	expires time.Time
}

func (b *Binder) now() time.Time {
	if b.Clock != nil {
		return b.Clock()
	}
	return time.Now()
}

// bind runs the full discovery pipeline for one service name, trying
// each discovered entry until one dials. Through a checked lookup, an
// unreachable registry surfaces as a distinct "registry unavailable"
// error rather than the misleading "no service" an empty result reads
// as — the caller can retry an outage, while a missing name needs a fix.
func (b *Binder) bind(service string) (Port, time.Duration, error) {
	var entries []registry.Entry
	if cl, ok := b.Lookup.(registry.CheckedLookup); ok {
		var err error
		if entries, err = cl.FindByNameErr(service); err != nil {
			return nil, 0, fmt.Errorf("invoke: resolving %q: %w", service, err)
		}
	} else {
		entries = b.Lookup.FindByName(service)
	}
	if len(entries) == 0 {
		return nil, 0, fmt.Errorf("invoke: no service %q in registry", service)
	}
	var firstErr error
	for _, e := range entries {
		defs, err := wsdl.ParseString(e.WSDL)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("invoke: entry %s: %w", e.Key, err)
			}
			continue
		}
		p, err := Dial(defs, b.Opts)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		return p, e.LeaseRemaining, nil
	}
	return nil, 0, firstErr
}

// Port returns an open port for the named service, rebinding on a miss,
// after expiry, or after an invalidation. With TTL <= 0 the caller owns
// the returned port and must Close it.
func (b *Binder) Port(service string) (Port, error) {
	if b.TTL <= 0 {
		p, _, err := b.bind(service)
		return p, err
	}
	for {
		b.mu.Lock()
		if b.ports == nil {
			b.ports = make(map[string]*binding)
		}
		s := b.ports[service]
		if s == nil {
			s = &binding{done: make(chan struct{})}
			b.ports[service] = s
			b.mu.Unlock()
			func() {
				defer close(s.done)
				var lease time.Duration
				s.port, lease, s.err = b.bind(service)
				if s.err == nil {
					ttl := b.TTL
					if lease > 0 && lease < ttl {
						ttl = lease
					}
					s.expires = b.now().Add(ttl)
				}
				// Errors keep a zero expiry: never served to later callers.
			}()
			return s.port, s.err
		}
		b.mu.Unlock()
		<-s.done
		if b.now().Before(s.expires) {
			return s.port, s.err
		}
		b.mu.Lock()
		if b.ports[service] == s {
			delete(b.ports, service)
		}
		b.mu.Unlock()
		if s.port != nil {
			_ = s.port.Close()
		}
	}
}

// Invalidate drops the cached binding for service, closing its port. The
// next call rediscovers. In-flight calls on the old port may fail; their
// own error handling re-invalidates harmlessly.
func (b *Binder) Invalidate(service string) {
	b.mu.Lock()
	s := b.ports[service]
	delete(b.ports, service)
	b.mu.Unlock()
	if s == nil {
		return
	}
	<-s.done
	if s.port != nil {
		_ = s.port.Close()
	}
}

// Close drops every cached binding.
func (b *Binder) Close() error {
	b.mu.Lock()
	ports := b.ports
	b.ports = nil
	b.mu.Unlock()
	for _, s := range ports {
		<-s.done
		if s.port != nil {
			_ = s.port.Close()
		}
	}
	return nil
}

// Invoke resolves service and invokes op on its bound port. Any error —
// transport fault or service fault — invalidates the binding so the next
// call rediscovers; a moved or restarted service costs one failed call.
func (b *Binder) Invoke(ctx context.Context, service, op string, args []wire.Arg) ([]wire.Arg, error) {
	p, err := b.Port(service)
	if err != nil {
		return nil, err
	}
	if b.TTL <= 0 {
		defer func() { _ = p.Close() }()
		return p.Invoke(ctx, op, args)
	}
	out, err := p.Invoke(ctx, op, args)
	if err != nil {
		b.Invalidate(service)
	}
	return out, err
}
