package invoke

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"

	"harness2/internal/container"
	"harness2/internal/wire"
	"harness2/internal/wsdl"
	"harness2/internal/xdr"
)

// The XDR binding wire protocol. Each frame is an xdr.WriteFrame record.
//
// Request:  string instance; string op; uint32 nargs;
//           nargs × (string name, tagged value)
// Response: uint32 status (0 ok / 1 fault);
//           ok:    uint32 nouts; nouts × (string name, tagged value)
//           fault: string message
//
// Values use xdr.EncodeValue and are therefore restricted to numeric data
// and arrays, per the paper's design of the binding. The header strings
// exist to "mimic the behavior of the RMI daemon to select the actual
// target component".

// XDRServer serves the XDR socket binding for a container's instances.
type XDRServer struct {
	c  *container.Container
	ln net.Listener

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]bool
	wg     sync.WaitGroup
}

// NewXDRServer starts an XDR listener on addr (e.g. "127.0.0.1:0") that
// dispatches to instances of c.
func NewXDRServer(c *container.Container, addr string) (*XDRServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("invoke: xdr listen: %w", err)
	}
	s := &XDRServer{c: c, ln: ln, conns: make(map[net.Conn]bool)}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener's address.
func (s *XDRServer) Addr() string { return s.ln.Addr().String() }

// Retarget points the server at a different container. Node bootstrap
// needs this: endpoint addresses must be known before the final container
// configuration (which advertises them) can be built.
func (s *XDRServer) Retarget(c *container.Container) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.c = c
}

func (s *XDRServer) target() *container.Container {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c
}

// Close stops the listener and all open connections.
func (s *XDRServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *XDRServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *XDRServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	for {
		frame, err := xdr.ReadFrame(conn)
		if err != nil {
			return // EOF or broken connection ends the session
		}
		resp := s.handleFrame(frame)
		if err := xdr.WriteFrame(conn, resp); err != nil {
			return
		}
	}
}

func (s *XDRServer) handleFrame(frame []byte) []byte {
	instance, op, args, err := decodeRequest(frame)
	if err != nil {
		return encodeFault(err)
	}
	out, err := s.target().Invoke(context.Background(), instance, op, args)
	if err != nil {
		return encodeFault(err)
	}
	resp, err := encodeResponse(out)
	if err != nil {
		return encodeFault(err)
	}
	return resp
}

func decodeRequest(frame []byte) (instance, op string, args []wire.Arg, err error) {
	d := xdr.NewDecoder(frame)
	if instance, err = d.String(); err != nil {
		return "", "", nil, err
	}
	if op, err = d.String(); err != nil {
		return "", "", nil, err
	}
	n, err := d.Uint32()
	if err != nil {
		return "", "", nil, err
	}
	if n > 1<<16 {
		return "", "", nil, errors.New("invoke: absurd argument count")
	}
	args = make([]wire.Arg, n)
	for i := range args {
		if args[i].Name, err = d.String(); err != nil {
			return "", "", nil, err
		}
		if args[i].Value, err = xdr.DecodeValue(d); err != nil {
			return "", "", nil, err
		}
	}
	return instance, op, args, nil
}

func encodeRequest(instance, op string, args []wire.Arg) ([]byte, error) {
	e := xdr.NewEncoder(64)
	e.String(instance)
	e.String(op)
	e.Uint32(uint32(len(args)))
	for _, a := range args {
		e.String(a.Name)
		if err := xdr.EncodeValue(e, a.Value); err != nil {
			return nil, err
		}
	}
	return e.Bytes(), nil
}

func encodeResponse(out []wire.Arg) ([]byte, error) {
	e := xdr.NewEncoder(64)
	e.Uint32(0)
	e.Uint32(uint32(len(out)))
	for _, a := range out {
		e.String(a.Name)
		if err := xdr.EncodeValue(e, a.Value); err != nil {
			return nil, err
		}
	}
	return e.Bytes(), nil
}

func encodeFault(err error) []byte {
	e := xdr.NewEncoder(64)
	e.Uint32(1)
	e.String(err.Error())
	return e.Bytes()
}

func decodeResponse(frame []byte) ([]wire.Arg, error) {
	d := xdr.NewDecoder(frame)
	status, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if status != 0 {
		msg, err := d.String()
		if err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("invoke: xdr fault: %s", msg)
	}
	n, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if n > 1<<16 {
		return nil, errors.New("invoke: absurd result count")
	}
	out := make([]wire.Arg, n)
	for i := range out {
		if out[i].Name, err = d.String(); err != nil {
			return nil, err
		}
		if out[i].Value, err = xdr.DecodeValue(d); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// XDRPort is the client side of the XDR socket binding. By default it
// keeps one TCP connection open across calls; DialPerCall reconnects for
// every invocation (the E3 ablation quantifying connection reuse).
type XDRPort struct {
	addr        string
	instance    string
	dialPerCall bool

	mu   sync.Mutex
	conn net.Conn
}

var _ Port = (*XDRPort)(nil)

// NewXDRPort returns a port bound to the XDR endpoint at addr targeting
// the given instance.
func NewXDRPort(addr, instance string, dialPerCall bool) *XDRPort {
	return &XDRPort{addr: addr, instance: instance, dialPerCall: dialPerCall}
}

// Invoke implements Port.
func (p *XDRPort) Invoke(ctx context.Context, op string, args []wire.Arg) ([]wire.Arg, error) {
	req, err := encodeRequest(p.instance, op, args)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	conn, err := p.connLocked(ctx)
	if err != nil {
		return nil, err
	}
	if deadline, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(deadline)
	}
	frame, err := p.exchange(conn, req)
	if err != nil {
		// One transparent retry on a fresh connection covers the case of
		// a pooled connection closed by the peer between calls.
		p.dropLocked()
		conn, cerr := p.connLocked(ctx)
		if cerr != nil {
			return nil, err
		}
		if frame, err = p.exchange(conn, req); err != nil {
			p.dropLocked()
			return nil, fmt.Errorf("invoke: xdr call %s: %w", op, err)
		}
	}
	if p.dialPerCall {
		p.dropLocked()
	}
	return decodeResponse(frame)
}

func (p *XDRPort) exchange(conn net.Conn, req []byte) ([]byte, error) {
	if err := xdr.WriteFrame(conn, req); err != nil {
		return nil, err
	}
	return xdr.ReadFrame(conn)
}

func (p *XDRPort) connLocked(ctx context.Context) (net.Conn, error) {
	if p.conn != nil {
		return p.conn, nil
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", p.addr)
	if err != nil {
		return nil, fmt.Errorf("invoke: xdr dial %s: %w", p.addr, err)
	}
	p.conn = conn
	return conn, nil
}

func (p *XDRPort) dropLocked() {
	if p.conn != nil {
		_ = p.conn.Close()
		p.conn = nil
	}
}

// Kind implements Port.
func (p *XDRPort) Kind() wsdl.BindingKind { return wsdl.BindXDR }

// Endpoint implements Port.
func (p *XDRPort) Endpoint() string { return p.addr }

// Close implements Port.
func (p *XDRPort) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.dropLocked()
	return nil
}
