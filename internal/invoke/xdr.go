package invoke

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"time"

	"harness2/internal/container"
	"harness2/internal/resilience"
	"harness2/internal/resilience/chaos"
	"harness2/internal/telemetry"
	"harness2/internal/wire"
	"harness2/internal/wsdl"
	"harness2/internal/xdr"
)

// The XDR binding wire protocol. Each frame is an xdr record — a v1
// [len][payload] record for legacy serial connections, or a v2
// [len][request-id][payload] record on multiplexed connections (see
// internal/xdr/frame.go for the framing and version negotiation).
//
// Request:  string instance; string op; uint32 nargs;
//           nargs × (string name, tagged value)
// Response: uint32 status (0 ok / 1 fault);
//           ok:    uint32 nouts; nouts × (string name, tagged value)
//           fault: string message
//
// Values use xdr.EncodeValue and are therefore restricted to numeric data
// and arrays, per the paper's design of the binding. The header strings
// exist to "mimic the behavior of the RMI daemon to select the actual
// target component".

// xdrBufSize sizes the per-connection buffered reader/writer: one flush
// per frame means one write syscall for any frame that fits.
const xdrBufSize = 32 << 10

// XDRServerOption configures NewXDRServer.
type XDRServerOption func(*XDRServer)

// WithXDRWorkers bounds the v2 dispatch worker pool: at most n request
// frames execute concurrently across all multiplexed connections. Values
// < 1 are ignored.
func WithXDRWorkers(n int) XDRServerOption {
	return func(s *XDRServer) {
		if n >= 1 {
			s.sem = make(chan struct{}, n)
		}
	}
}

// WithXDRTelemetry selects the server's metrics registry; nil falls back
// to the process default, telemetry.Disabled() switches instrumentation
// off.
func WithXDRTelemetry(r *telemetry.Registry) XDRServerOption {
	return func(s *XDRServer) { s.tel = r }
}

// WithXDRLimiter installs server-side admission control: requests beyond
// the limiter's bounds are refused with the distinguished Overloaded
// fault before the container executes them. A nil limiter admits
// everything.
func WithXDRLimiter(l *resilience.Limiter) XDRServerOption {
	return func(s *XDRServer) { s.limiter = l }
}

// WithXDRCompression sets the server's v3 compression policy: which
// codec it accepts from clients (and answers at negotiation) and how its
// own response frames are compressed. The default (auto) accepts the
// default codec and compresses responses adaptively — but only on
// connections whose client offered a codec, so raw peers see no change.
func WithXDRCompression(pol CompressPolicy) XDRServerOption {
	return func(s *XDRServer) { s.cpol = pol }
}

// WithXDRMaxProto caps the wire protocol versions the server speaks —
// WithXDRMaxProto(2) reproduces a pre-v3 peer, which reads MagicV3 as an
// over-limit v1 frame length and drops the connection, exactly what the
// negotiation matrix tests need to prove clients fall back silently.
func WithXDRMaxProto(v int) XDRServerOption {
	return func(s *XDRServer) { s.maxProto = v }
}

// XDRServer serves the XDR socket binding for a container's instances.
// It speaks both wire protocol versions, auto-detected per connection:
// v1 connections are served strictly sequentially (the protocol has no
// request IDs, so ordering is the contract); v2 connections dispatch
// every request frame to a bounded worker pool so one slow invocation
// cannot head-of-line-block the connection.
type XDRServer struct {
	c  *container.Container
	ln net.Listener

	tel     *telemetry.Registry
	limiter *resilience.Limiter // admission control; nil admits everything
	m       bindingMetrics
	wm      xdrWireMetrics

	cpol     CompressPolicy // v3 compression stance (default auto)
	maxProto int            // highest wire protocol served (default 3)

	sem       chan struct{} // bounds concurrently executing v2 requests
	closeCtx  context.Context
	closeStop context.CancelFunc

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]bool
	wg     sync.WaitGroup
}

// NewXDRServer starts an XDR listener on addr (e.g. "127.0.0.1:0") that
// dispatches to instances of c.
func NewXDRServer(c *container.Container, addr string, opts ...XDRServerOption) (*XDRServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("invoke: xdr listen: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &XDRServer{
		c: c, ln: ln, conns: make(map[net.Conn]bool),
		sem:      make(chan struct{}, defaultXDRWorkers()),
		maxProto: 3,
		closeCtx: ctx, closeStop: cancel,
	}
	for _, opt := range opts {
		opt(s)
	}
	reg := telemetry.Or(s.tel)
	s.m = newBindingMetrics(reg, "xdr-server")
	s.wm = newXDRWireMetrics(reg, "server")
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

func defaultXDRWorkers() int {
	n := 4 * runtime.GOMAXPROCS(0)
	if n < 8 {
		n = 8
	}
	return n
}

// Addr returns the listener's address.
func (s *XDRServer) Addr() string { return s.ln.Addr().String() }

// Retarget points the server at a different container. Node bootstrap
// needs this: endpoint addresses must be known before the final container
// configuration (which advertises them) can be built.
func (s *XDRServer) Retarget(c *container.Container) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.c = c
}

func (s *XDRServer) target() *container.Container {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c
}

// Close stops the listener and all open connections, then waits for
// in-flight handlers to drain.
func (s *XDRServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.mu.Unlock()
	s.closeStop()
	s.wg.Wait()
	return err
}

func (s *XDRServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// serveConn sniffs the protocol version from the first word of the
// stream: MagicV2 opens a multiplexed session, MagicV3 a multiplexed
// session with codec negotiation; any legal v1 frame length (always <
// MagicV2 < MagicV3, by construction) starts a legacy sequential
// session. With maxProto < 3 the MagicV3 word falls through to the v1
// path, which rejects it as an over-limit frame length — byte-for-byte
// what a real pre-v3 server does.
func (s *XDRServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	br := bufio.NewReaderSize(&countingReader{r: conn, rx: s.wm.rx}, xdrBufSize)
	var first [4]byte
	if _, err := io.ReadFull(br, first[:]); err != nil {
		return
	}
	word := binary.BigEndian.Uint32(first[:])
	if word == xdr.MagicV2 {
		s.serveMux(conn, br, 2, 0)
		return
	}
	if word == xdr.MagicV3 && s.maxProto >= 3 {
		var off [4]byte
		if _, err := io.ReadFull(br, off[:]); err != nil {
			return
		}
		s.serveMux(conn, br, 3, binary.BigEndian.Uint32(off[:]))
		return
	}
	s.serveV1(conn, br, word)
}

// serveV1 is the legacy path: one frame in, one frame out, in order.
func (s *XDRServer) serveV1(conn net.Conn, br *bufio.Reader, firstLen uint32) {
	bw := bufio.NewWriterSize(&countingWriter{w: conn, tx: s.wm.tx}, xdrBufSize)
	frame, err := xdr.ReadFramePooledAfterLen(br, firstLen)
	for err == nil {
		resp := s.handleFrame(frame, 1)
		xdr.PutFrameBuf(frame)
		if werr := xdr.WriteFrame(bw, resp.Bytes()); werr == nil {
			err = bw.Flush()
		} else {
			err = werr
		}
		xdr.PutEncoder(resp)
		if err != nil {
			return
		}
		frame, err = xdr.ReadFramePooled(br)
	}
}

// v2task is one request frame awaiting a worker.
type v2task struct {
	id    uint64
	flags byte // v3 codec flags; 0 on v2 connections and raw frames
	frame []byte
}

// serveMux is the multiplexed path (wire protocol v2 and v3): request
// frames are handed to a pool of persistent per-connection workers
// (bounded globally by s.sem) and responses are written back — tagged
// with the request ID they answer — as they complete, in any order.
// Persistent workers, rather than a goroutine per frame, keep their grown
// stacks across requests; per-call goroutine spawn and stack-copy churn
// would otherwise dominate the profile at high request rates.
//
// Workers buffer their response frames and a dedicated flusher goroutine
// commits them: after each wakeup it yields once so every worker that is
// already runnable appends its frame first, then the whole burst leaves
// in one write syscall (the dominant per-call cost on a fast network).
// An isolated response still flushes with only a scheduler yield of
// extra latency, and a bulk response skips the coalescing copy entirely
// — frameWriter sends it vectored with whatever is already buffered.
// See muxConn.flushLoop for the client-side twin.
//
// On a v3 connection the server first answers the client's offer word
// with the chosen codec — flushed before any request frame is touched,
// so a client that never sees the answer knows the server processed
// nothing — then decompresses flagged request payloads in the workers
// (parallel CPU) and compresses eligible response frames per cpol.
func (s *XDRServer) serveMux(conn net.Conn, br *bufio.Reader, proto int, offer uint32) {
	fw := newFrameWriter(conn, s.wm)
	var wmu sync.Mutex // serializes response frames on the shared writer

	var comp *xdr.Compressor // response compression; nil = raw
	if proto >= 3 {
		chosen := xdr.ChooseCodec(offer, s.cpol.acceptWord(true))
		var answer [4]byte
		if chosen != nil {
			binary.BigEndian.PutUint32(answer[:], uint32(chosen.ID()))
		}
		if _, err := fw.Write(answer[:]); err != nil {
			return
		}
		if err := fw.Flush(); err != nil {
			return
		}
		if chosen != nil {
			comp = xdr.NewCompressor(chosen, s.cpol.adaptive(), 0)
			s.wm.codecs.With(chosen.Name()).Inc()
			defer s.wm.codecs.With(chosen.Name()).Dec()
		}
	}

	flushKick := make(chan struct{}, 1)
	flushDone := make(chan struct{})
	kick := func() {
		select {
		case flushKick <- struct{}{}:
		default:
		}
	}
	go func() { // flusher
		for {
			select {
			case <-flushDone:
				return
			case <-flushKick:
			}
			runtime.Gosched() // let runnable workers append their frames
			select {
			case <-flushKick: // collapse kicks that arrived while yielding
			default:
			}
			wmu.Lock()
			var err error
			if fw.Buffered() > 0 {
				err = fw.Flush()
			}
			wmu.Unlock()
			if err != nil {
				_ = conn.Close() // unblocks the read loop below
				return
			}
		}
	}()

	nw := cap(s.sem)
	tasks := make(chan v2task, nw)
	var workers sync.WaitGroup
	for i := 0; i < nw; i++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for t := range tasks {
				s.sem <- struct{}{} // global bound across connections
				if t.flags != 0 {
					s.wm.compressedIn(len(t.frame))
					dec, derr := xdr.DecompressFrameV3(t.flags, t.frame)
					xdr.PutFrameBuf(t.frame)
					if derr != nil {
						<-s.sem
						_ = conn.Close() // protocol error: desynced stream
						continue
					}
					t.frame = dec
				}
				resp := s.handleFrame(t.frame, proto)
				xdr.PutFrameBuf(t.frame)
				var frame []byte
				var ce *xdr.Encoder
				var err error
				if proto >= 3 {
					if comp != nil {
						payload := resp.FramePayloadV3()
						if frame, ce = comp.CompressFrameV3(t.id, payload); ce != nil {
							s.wm.compressedOut(len(frame)-xdr.FrameHeaderLenV3, len(payload))
						}
					}
					if ce == nil {
						frame, err = resp.FrameBytesV3(t.id, 0)
					}
				} else {
					frame, err = resp.FrameBytes(t.id)
				}
				if err == nil {
					wmu.Lock()
					_, err = fw.Write(frame)
					wmu.Unlock()
				}
				xdr.PutEncoder(resp)
				if ce != nil {
					xdr.PutEncoder(ce)
				}
				<-s.sem
				if err != nil {
					_ = conn.Close() // unblocks the read loop below
					continue         // keep draining queued tasks
				}
				kick()
			}
		}()
	}

	for {
		var t v2task
		var err error
		if proto >= 3 {
			t.id, t.flags, t.frame, err = xdr.ReadFrameV3(br)
		} else {
			t.id, t.frame, err = xdr.ReadFrameID(br)
		}
		if err != nil {
			break
		}
		tasks <- t // blocks when workers saturate
	}
	close(tasks)
	workers.Wait()
	// Stop the flusher and commit anything it had not flushed yet (the
	// last worker's kick may still be sitting in the channel). The
	// deferred conn.Close in serveConn runs after this.
	close(flushDone)
	wmu.Lock()
	if fw.Buffered() > 0 {
		_ = fw.Flush()
	}
	wmu.Unlock()
}

// handleFrame decodes one request, invokes it, and encodes the response
// into a pooled encoder the caller must release with xdr.PutEncoder.
// proto primes the encoder for the caller's framing: 2 reserves a v2
// header for Encoder.FrameBytes, 3 a v3 header for FrameBytesV3, 1 none
// (the v1 path frames separately). The request frame is fully copied out
// by decodeRequest, so the caller may release it as soon as handleFrame
// returns.
func (s *XDRServer) handleFrame(frame []byte, proto int) *xdr.Encoder {
	e := xdr.GetEncoder()
	reserve := func() {
		switch {
		case proto >= 3:
			e.ReserveFrameHeaderV3()
		case proto == 2:
			e.ReserveFrameHeader()
		}
	}
	reserve()
	fault := func(err error) *xdr.Encoder {
		e.Reset()
		reserve()
		return encodeFault(e, err)
	}
	instance, op, args, err := decodeRequest(frame)
	if err != nil {
		return fault(err)
	}
	release, err := s.limiter.Acquire(s.closeCtx)
	if err != nil {
		// Shed before execution: the fault message carries the Overloaded
		// token so clients classify it as retryable-elsewhere across the
		// string-typed wire.
		return fault(err)
	}
	h, start := s.m.begin(op)
	out, err := s.target().Invoke(s.closeCtx, instance, op, args)
	release()
	s.m.done(op, h, start, err)
	if err != nil {
		return fault(err)
	}
	if err := encodeResponse(e, out); err != nil {
		return fault(err)
	}
	return e
}

func decodeRequest(frame []byte) (instance, op string, args []wire.Arg, err error) {
	d := xdr.NewDecoder(frame)
	if instance, err = d.String(); err != nil {
		return "", "", nil, err
	}
	if op, err = d.String(); err != nil {
		return "", "", nil, err
	}
	n, err := d.Uint32()
	if err != nil {
		return "", "", nil, err
	}
	if n > xdr.MaxArgs {
		return "", "", nil, errors.New("invoke: absurd argument count")
	}
	args = make([]wire.Arg, n)
	for i := range args {
		if args[i].Name, err = d.String(); err != nil {
			return "", "", nil, err
		}
		if args[i].Value, err = xdr.DecodeValue(d); err != nil {
			return "", "", nil, err
		}
	}
	return instance, op, args, nil
}

func encodeRequest(e *xdr.Encoder, instance, op string, args []wire.Arg) error {
	if len(args) > xdr.MaxArgs {
		return errors.New("invoke: absurd argument count")
	}
	e.String(instance)
	e.String(op)
	e.Uint32(uint32(len(args)))
	for _, a := range args {
		e.String(a.Name)
		if err := xdr.EncodeValue(e, a.Value); err != nil {
			return err
		}
	}
	return nil
}

func encodeResponse(e *xdr.Encoder, out []wire.Arg) error {
	if len(out) > xdr.MaxArgs {
		return errors.New("invoke: absurd result count")
	}
	e.Uint32(0)
	e.Uint32(uint32(len(out)))
	for _, a := range out {
		e.String(a.Name)
		if err := xdr.EncodeValue(e, a.Value); err != nil {
			return err
		}
	}
	return nil
}

func encodeFault(e *xdr.Encoder, err error) *xdr.Encoder {
	e.Uint32(1)
	e.String(err.Error())
	return e
}

func decodeResponse(frame []byte) ([]wire.Arg, error) {
	d := xdr.NewDecoder(frame)
	status, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if status != 0 {
		msg, err := d.String()
		if err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("invoke: xdr fault: %s", msg)
	}
	n, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if n > xdr.MaxArgs {
		return nil, errors.New("invoke: absurd result count")
	}
	out := make([]wire.Arg, n)
	for i := range out {
		if out[i].Name, err = d.String(); err != nil {
			return nil, err
		}
		if out[i].Value, err = xdr.DecodeValue(d); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// XDRMode selects the wire behavior of an XDRPort.
type XDRMode int

const (
	// XDRModeMux (the default) multiplexes many concurrent in-flight
	// calls over one shared v2 connection.
	XDRModeMux XDRMode = iota
	// XDRModeSerial keeps one pooled v1 connection with a single call in
	// flight — the pre-multiplexing behavior, kept as the E11 baseline
	// and for wire compatibility with v1-only servers.
	XDRModeSerial
	// XDRModeDialPerCall reconnects (v1) for every invocation — the E3
	// ablation quantifying connection reuse.
	XDRModeDialPerCall
)

func (m XDRMode) String() string {
	switch m {
	case XDRModeMux:
		return "mux"
	case XDRModeSerial:
		return "serial"
	case XDRModeDialPerCall:
		return "dial-per-call"
	}
	return fmt.Sprintf("XDRMode(%d)", int(m))
}

// countingWriter counts bytes that reached the underlying writer. The
// retry logic uses it to tell "nothing of this request hit the wire"
// (safe to resend) from "the frame was partially written" (resending
// could invoke a non-idempotent operation twice). It doubles as the
// tx-bytes instrumentation point: tx is a nil-safe telemetry counter.
type countingWriter struct {
	w  io.Writer
	n  int
	tx *telemetry.Counter
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += n
	if n > 0 {
		cw.tx.Add(uint64(n))
	}
	return n, err
}

// XDRPort is the client side of the XDR socket binding. In the default
// multiplexed mode it keeps one shared v2 connection over which any
// number of goroutines may Invoke concurrently; each call is tagged with
// a request ID and a demultiplexing goroutine routes responses back to
// their callers, so calls pipeline instead of serializing on round
// trips. See XDRMode for the legacy behaviors.
type XDRPort struct {
	addr     string
	instance string
	mode     XDRMode

	tel   *telemetry.Registry
	chaos *chaos.Injector
	minit sync.Once
	m     bindingMetrics
	wm    xdrWireMetrics

	cpol CompressPolicy // outbound v3 compression stance

	mu    sync.Mutex
	mc    *muxConn // XDRModeMux
	proto int      // mux wire protocol: 0 = newest (v3); 2 after a stale-peer downgrade

	// Serial (v1) connection state. A non-nil conn is always "pooled":
	// a connection that failed mid-call is dropped, so anything that
	// survives to the next Invoke completed its previous exchange.
	conn net.Conn
	cw   *countingWriter
	bw   *bufio.Writer
	br   *bufio.Reader
}

var _ Port = (*XDRPort)(nil)

// NewXDRPort returns a port bound to the XDR endpoint at addr targeting
// the given instance. dialPerCall selects XDRModeDialPerCall; otherwise
// the port is multiplexed (XDRModeMux).
func NewXDRPort(addr, instance string, dialPerCall bool) *XDRPort {
	mode := XDRModeMux
	if dialPerCall {
		mode = XDRModeDialPerCall
	}
	return NewXDRPortMode(addr, instance, mode)
}

// NewXDRPortMode returns a port with an explicit wire mode.
func NewXDRPortMode(addr, instance string, mode XDRMode) *XDRPort {
	return &XDRPort{addr: addr, instance: instance, mode: mode}
}

// Mode reports the port's wire mode.
func (p *XDRPort) Mode() XDRMode { return p.mode }

// SetTelemetry selects the port's metrics registry; it must be called
// before the first Invoke (openPort does). Nil falls back to the process
// default, telemetry.Disabled() switches instrumentation off.
func (p *XDRPort) SetTelemetry(r *telemetry.Registry) { p.tel = r }

// SetChaos attaches a fault injector evaluated before each wire call; it
// must be set before the first Invoke (openPort does). Nil disables
// injection at the cost of one branch.
func (p *XDRPort) SetChaos(in *chaos.Injector) { p.chaos = in }

// SetCompression sets the port's outbound v3 compression policy; it must
// be called before the first Invoke. The zero policy (auto) behaves as
// off on a direct port — openPort resolves a WSDL-advertised `compress`
// capability into an explicit adaptive policy here.
func (p *XDRPort) SetCompression(pol CompressPolicy) { p.cpol = pol }

// SetWireProtocol pins the multiplexed wire protocol version (2 or 3).
// 0 (the default) dials the newest and falls back to v2 transparently
// when the peer rejects the v3 preamble. Must be called before the first
// Invoke; used by the negotiation matrix tests and mixed-version fleets.
func (p *XDRPort) SetWireProtocol(v int) {
	p.mu.Lock()
	p.proto = v
	p.mu.Unlock()
}

func (p *XDRPort) metrics() *bindingMetrics {
	p.minit.Do(func() {
		r := telemetry.Or(p.tel)
		p.m = newBindingMetrics(r, "xdr")
		p.wm = newXDRWireMetrics(r, "client")
	})
	return &p.m
}

// Invoke implements Port. It is safe for concurrent use; in XDRModeMux
// concurrent calls share one connection without serializing on each
// other's round trips.
func (p *XDRPort) Invoke(ctx context.Context, op string, args []wire.Arg) ([]wire.Arg, error) {
	if err := p.chaos.Apply(ctx, "xdr", op, p.addr); err != nil {
		return nil, err
	}
	m := p.metrics()
	h, start := m.begin(op)
	ctx, sp := telemetry.Or(p.tel).ChildSpan(ctx, "invoke.xdr")
	var out []wire.Arg
	var err error
	if p.mode == XDRModeMux {
		out, err = p.invokeMux(ctx, op, args)
	} else {
		out, err = p.invokeSerial(ctx, op, args)
	}
	sp.SetError(err)
	sp.End()
	m.done(op, h, start, err)
	return out, err
}

// invokeSerial is the v1 path: the port mutex is held across the whole
// exchange, so one call is in flight at a time.
func (p *XDRPort) invokeSerial(ctx context.Context, op string, args []wire.Arg) ([]wire.Arg, error) {
	e := xdr.GetEncoder()
	defer xdr.PutEncoder(e)
	if err := encodeRequest(e, p.instance, op, args); err != nil {
		return nil, err
	}
	req := e.Bytes()

	p.mu.Lock()
	defer p.mu.Unlock()
	for attempt := 0; ; attempt++ {
		fresh := p.conn == nil
		if err := p.connLocked(ctx); err != nil {
			// A dial failure provably never sent the request: mark it so
			// resilience policies may retry even non-idempotent operations.
			return nil, resilience.MarkUnsent(err)
		}
		if !fresh && p.staleLocked() {
			// The pooled connection was closed by the peer while idle
			// (e.g. a server restart). Nothing has been sent yet, so
			// replacing it is transparent and cannot double-invoke.
			p.dropLocked()
			if err := p.connLocked(ctx); err != nil {
				return nil, resilience.MarkUnsent(err)
			}
			fresh = true
		}
		// Always arm the deadline from this call's context — a zero
		// deadline clears any deadline a previous call left behind, so a
		// pooled connection can never inherit a stale timeout.
		deadline, _ := ctx.Deadline()
		_ = p.conn.SetDeadline(deadline)

		p.cw.n = 0
		frame, err := p.exchangeLocked(req)
		if err != nil {
			wroteNothing := p.cw.n == 0
			p.dropLocked()
			// Transparent retry is restricted to the case where the
			// *first write* on a pooled (reused) connection failed: no
			// byte of the request reached the wire, so resending cannot
			// invoke a non-idempotent operation twice. Mid-frame write
			// failures and response-side errors are surfaced instead —
			// the server may already have executed the call.
			if !fresh && wroteNothing && attempt == 0 {
				continue
			}
			werr := fmt.Errorf("invoke: xdr call %s: %w", op, err)
			if wroteNothing {
				// No byte of the request reached the wire: resending is
				// provably safe, so let policies retry non-idempotent ops.
				return nil, resilience.MarkUnsent(werr)
			}
			return nil, werr
		}
		if p.mode == XDRModeDialPerCall {
			p.dropLocked()
		}
		out, derr := decodeResponse(frame)
		xdr.PutFrameBuf(frame)
		return out, derr
	}
}

func (p *XDRPort) exchangeLocked(req []byte) ([]byte, error) {
	if err := xdr.WriteFrame(p.bw, req); err != nil {
		return nil, err
	}
	if err := p.bw.Flush(); err != nil {
		return nil, err
	}
	return xdr.ReadFramePooled(p.br)
}

func (p *XDRPort) connLocked(ctx context.Context) error {
	if p.conn != nil {
		return nil
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", p.addr)
	if err != nil {
		return fmt.Errorf("invoke: xdr dial %s: %w", p.addr, err)
	}
	p.conn = conn
	p.cw = &countingWriter{w: conn, tx: p.wm.tx}
	p.bw = bufio.NewWriterSize(p.cw, xdrBufSize)
	p.br = bufio.NewReaderSize(&countingReader{r: conn, rx: p.wm.rx}, xdrBufSize)
	return nil
}

// staleLocked probes a pooled connection for a peer close with a
// non-blocking read: a FIN/RST that arrived while the connection sat idle
// is detected *before* the request is sent, which is the only moment a
// replacement is provably safe.
func (p *XDRPort) staleLocked() bool {
	if p.br.Buffered() > 0 {
		return true // response bytes with no call in flight: desynced
	}
	_ = p.conn.SetReadDeadline(time.Unix(1, 0)) // already expired
	var scratch [1]byte
	n, err := p.conn.Read(scratch[:])
	_ = p.conn.SetReadDeadline(time.Time{})
	if n > 0 {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return false // nothing readable: the healthy idle state
	}
	return true // EOF, reset, or any other read failure
}

func (p *XDRPort) dropLocked() {
	if p.conn != nil {
		_ = p.conn.Close()
		p.conn = nil
		p.cw = nil
		p.bw = nil
		p.br = nil
	}
}

// Kind implements Port.
func (p *XDRPort) Kind() wsdl.BindingKind { return wsdl.BindXDR }

// Endpoint implements Port.
func (p *XDRPort) Endpoint() string { return p.addr }

// Close implements Port.
func (p *XDRPort) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.dropLocked()
	if p.mc != nil {
		p.mc.shutdown(errors.New("invoke: xdr port closed"))
		p.mc = nil
	}
	return nil
}
