package invoke

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"harness2/internal/container"
	"harness2/internal/telemetry"
	"harness2/internal/wire"
	"harness2/internal/wsdl"
)

// TestLocalPortHonoursCancelledContext is the regression test for the
// ctx-handling bug: the local binding has no transport to surface
// cancellation, so Invoke itself must refuse an already-cancelled
// context instead of executing the operation anyway.
func TestLocalPortHonoursCancelledContext(t *testing.T) {
	c := container.New(container.Config{Name: "ctx"})
	c.RegisterFactory("Counter", counterImpl())
	inst, _, err := c.Deploy("Counter", "c1")
	if err != nil {
		t.Fatal(err)
	}
	p := &LocalPort{Container: c, Instance: "c1", Telemetry: telemetry.New()}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.Invoke(ctx, "inc", wire.Args("by", int64(1))); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := inst.Invocations(); n != 0 {
		t.Fatalf("cancelled call still executed: invocations = %d", n)
	}
	// A live context must still work.
	if _, err := p.Invoke(context.Background(), "inc", wire.Args("by", int64(1))); err != nil {
		t.Fatal(err)
	}
}

// TestTraceCrossesSOAPHop proves the h2:Trace header carries trace
// identity across a real SOAP round trip: the server-side span must be a
// child of the client-side hop span, in the same trace.
func TestTraceCrossesSOAPHop(t *testing.T) {
	reg := telemetry.New()
	c := container.New(container.Config{Name: "trace"})
	c.RegisterFactory("Counter", counterImpl())
	if _, _, err := c.Deploy("Counter", "c1"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(&SOAPHandler{Container: c, Telemetry: reg})
	defer ts.Close()

	p := &SOAPPort{URL: ts.URL + "/services/c1", Telemetry: reg}
	ctx, root := reg.StartSpan(context.Background(), "client")
	if _, err := p.Invoke(ctx, "inc", wire.Args("by", int64(3))); err != nil {
		t.Fatal(err)
	}
	root.End()

	var cli, hop, srv telemetry.SpanRecord
	for _, rec := range reg.RecentSpans() {
		switch rec.Name {
		case "client":
			cli = rec
		case "invoke.soap":
			hop = rec
		case "soap.server":
			srv = rec
		}
	}
	if cli.SpanID == 0 || hop.SpanID == 0 || srv.SpanID == 0 {
		t.Fatalf("missing spans: %+v", reg.RecentSpans())
	}
	if hop.TraceID != cli.TraceID || srv.TraceID != cli.TraceID {
		t.Fatalf("trace split: cli=%x hop=%x srv=%x", cli.TraceID, hop.TraceID, srv.TraceID)
	}
	if hop.ParentID != cli.SpanID {
		t.Fatalf("hop parent = %x, want %x", hop.ParentID, cli.SpanID)
	}
	if srv.ParentID != hop.SpanID {
		t.Fatalf("server parent = %x, want client hop %x", srv.ParentID, hop.SpanID)
	}
}

// TestUntracedInvokeCreatesNoSpans: without a caller-started trace, the
// per-hop instrumentation must not invent one (ChildSpan semantics).
func TestUntracedInvokeCreatesNoSpans(t *testing.T) {
	reg := telemetry.New()
	c := container.New(container.Config{Name: "untraced"})
	c.RegisterFactory("Counter", counterImpl())
	if _, _, err := c.Deploy("Counter", "c1"); err != nil {
		t.Fatal(err)
	}
	p := &LocalPort{Container: c, Instance: "c1", Telemetry: reg}
	if _, err := p.Invoke(context.Background(), "inc", wire.Args("by", int64(1))); err != nil {
		t.Fatal(err)
	}
	if n := len(reg.RecentSpans()); n != 0 {
		t.Fatalf("untraced invoke recorded %d spans", n)
	}
}

// TestInvokeMetricsPerBinding drives one call through each binding and
// checks the per-binding family trio plus the XDR wire-level counters.
func TestInvokeMetricsPerBinding(t *testing.T) {
	reg := telemetry.New()
	h := newHost(t)
	_, defs := h.deploy(t, "Counter", "c1")
	ports := OpenAll(defs, Options{
		LocalContainers: []*container.Container{h.c},
		Telemetry:       reg,
	})
	if len(ports) != 4 {
		t.Fatalf("ports = %d", len(ports))
	}
	ctx := context.Background()
	for _, p := range ports {
		if _, err := p.Invoke(ctx, "inc", wire.Args("by", int64(1))); err != nil {
			t.Fatalf("[%v] %v", p.Kind(), err)
		}
		_ = p.Close()
	}
	for _, binding := range []string{"local", "xdr", "soap", "http"} {
		if got := reg.Counter("harness_invoke_calls_total", "binding", binding, "op", "inc").Value(); got != 1 {
			t.Errorf("calls{binding=%s} = %d, want 1", binding, got)
		}
		if got := reg.Histogram("harness_invoke_latency_ns", "binding", binding, "op", "inc").Count(); got != 1 {
			t.Errorf("latency{binding=%s} count = %d, want 1", binding, got)
		}
		if got := reg.Counter("harness_invoke_errors_total", "binding", binding, "op", "inc").Value(); got != 0 {
			t.Errorf("errors{binding=%s} = %d, want 0", binding, got)
		}
	}
	if tx := reg.Counter("harness_xdr_tx_bytes_total", "role", "client").Value(); tx == 0 {
		t.Error("xdr client tx bytes not counted")
	}
	if rx := reg.Counter("harness_xdr_rx_bytes_total", "role", "client").Value(); rx == 0 {
		t.Error("xdr client rx bytes not counted")
	}
	// One mux call flushed exactly one batch and left nothing in flight.
	if n := reg.Histogram("harness_xdr_mux_flush_batch_bytes", "role", "client").Count(); n == 0 {
		t.Error("mux flush batch histogram empty")
	}
	if g := reg.Gauge("harness_xdr_mux_inflight", "role", "client").Value(); g != 0 {
		t.Errorf("mux inflight = %d after drain, want 0", g)
	}
	// Failed calls feed the error counter.
	ref := defs.PortsByKind(wsdl.BindXDR)
	ghost := NewXDRPort(ref[0].Port.Address, "ghost", false)
	ghost.SetTelemetry(reg)
	defer ghost.Close()
	if _, err := ghost.Invoke(ctx, "inc", wire.Args("by", int64(1))); err == nil {
		t.Fatal("ghost instance should fault")
	}
	if got := reg.Counter("harness_invoke_errors_total", "binding", "xdr", "op", "inc").Value(); got != 1 {
		t.Errorf("xdr errors = %d, want 1", got)
	}
}

// TestDisabledTelemetryRecordsNothing: ports wired to Disabled() must
// leave the registry view empty and still work.
func TestDisabledTelemetryRecordsNothing(t *testing.T) {
	h := newHost(t)
	_, defs := h.deploy(t, "Counter", "c1")
	ports := OpenAll(defs, Options{
		LocalContainers: []*container.Container{h.c},
		Telemetry:       telemetry.Disabled(),
	})
	ctx := context.Background()
	for _, p := range ports {
		if _, err := p.Invoke(ctx, "inc", wire.Args("by", int64(1))); err != nil {
			t.Fatalf("[%v] %v", p.Kind(), err)
		}
		_ = p.Close()
	}
	var sb strings.Builder
	if err := telemetry.Disabled().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Fatalf("disabled registry exposed:\n%s", sb.String())
	}
}
