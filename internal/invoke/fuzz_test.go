package invoke

import (
	"math/rand"
	"net"
	"strings"
	"testing"
	"time"

	"harness2/internal/container"
	"harness2/internal/wire"
	"harness2/internal/xdr"
)

// TestXDRRequestDecoderNeverPanics feeds random byte soup to the request
// decoder: every input must yield a value or an error, never a panic or
// an allocation explosion.
func TestXDRRequestDecoderNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 5000; i++ {
		b := make([]byte, r.Intn(256))
		r.Read(b)
		_, _, _, _ = decodeRequest(b)
	}
	// Structured-prefix corruption: take a valid frame and flip bytes.
	e := xdr.NewEncoder(64)
	if err := encodeRequest(e, "inst", "op", wire.Args("a", []float64{1, 2, 3})); err != nil {
		t.Fatal(err)
	}
	valid := e.Bytes()
	for i := 0; i < len(valid); i++ {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0xFF
		_, _, _, _ = decodeRequest(mut)
	}
}

// TestXDRResponseDecoderNeverPanics does the same for the response side.
func TestXDRResponseDecoderNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(100))
	for i := 0; i < 5000; i++ {
		b := make([]byte, r.Intn(256))
		r.Read(b)
		_, _ = decodeResponse(b)
	}
	e := xdr.NewEncoder(64)
	if err := encodeResponse(e, wire.Args("x", int64(1))); err != nil {
		t.Fatal(err)
	}
	valid := e.Bytes()
	for i := 0; i < len(valid); i++ {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0xFF
		_, _ = decodeResponse(mut)
	}
}

// FuzzParseLocalAddress fuzzes the JavaObject locator parser. Invariants:
// never panic; on success both components are non-empty, the container
// name holds no separator, and the locator reassembles byte-for-byte
// (the parser splits at the *first* '/', so the instance keeps any rest).
func FuzzParseLocalAddress(f *testing.F) {
	for _, seed := range []string{
		"local:node1/m1",         // the canonical form
		"local:node1/m1/extra",   // instance keeps trailing segments
		"local:",                 // nothing after the scheme
		"local:onlycontainer",    // no separator
		"local:/inst",            // empty container
		"local:c/",               // empty instance
		"http://host/x",          // wrong scheme
		"",                       // empty input
		"LOCAL:node1/m1",         // scheme is case-sensitive
		"local:a//b",             // empty-looking middle
		"local:ünïcode/instance", // non-ASCII survives
		"local:c/i\x00withnul",   // control bytes are data, not errors
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, addr string) {
		c, i, err := ParseLocalAddress(addr)
		if err != nil {
			if c != "" || i != "" {
				t.Fatalf("error with non-zero results: %q %q", c, i)
			}
			return
		}
		if c == "" || i == "" {
			t.Fatalf("success with empty component: container=%q instance=%q", c, i)
		}
		if strings.ContainsRune(c, '/') {
			t.Fatalf("container %q contains separator", c)
		}
		if got := "local:" + c + "/" + i; got != addr {
			t.Fatalf("reassembly %q != input %q", got, addr)
		}
	})
}

// TestXDRServerSurvivesGarbageConnections throws raw garbage at a live
// XDR listener: the server must stay up and keep serving well-formed
// clients afterwards.
func TestXDRServerSurvivesGarbageConnections(t *testing.T) {
	c := container.New(container.Config{Name: "fz"})
	c.RegisterFactory("Counter", counterImpl())
	if _, _, err := c.Deploy("Counter", "c1"); err != nil {
		t.Fatal(err)
	}
	srv, err := NewXDRServer(c, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	r := rand.New(rand.NewSource(7))
	for i := 0; i < 20; i++ {
		conn, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		junk := make([]byte, r.Intn(512)+1)
		r.Read(junk)
		_, _ = conn.Write(junk)
		// Some of these look like huge frame headers; the server must
		// reject or hang up, not crash.
		_ = conn.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
		buf := make([]byte, 64)
		_, _ = conn.Read(buf)
		_ = conn.Close()
	}
	// A correct client still works.
	p := NewXDRPort(srv.Addr(), "c1", false)
	defer p.Close()
	out, err := p.Invoke(t.Context(), "inc", wire.Args("by", int64(5)))
	if err != nil {
		t.Fatal(err)
	}
	total, _ := wire.GetArg(out, "total")
	if total.(int64) != 5 {
		t.Fatalf("total = %v", total)
	}
}

// TestXDRServerRejectsOversizedFrame confirms the frame-length guard.
func TestXDRServerRejectsOversizedFrame(t *testing.T) {
	c := container.New(container.Config{Name: "fz2"})
	srv, err := NewXDRServer(c, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Declare a 4 GiB frame.
	if _, err := conn.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(time.Second))
	buf := make([]byte, 16)
	if _, err := conn.Read(buf); err == nil {
		// Server may simply hang up; reading an actual response would
		// mean it tried to allocate the absurd frame.
		t.Log("server responded (acceptable if it was a fault frame)")
	}
	_ = xdr.MaxLen // documents the guard under test
}
