package invoke

// The shared-memory binding: the fourth rung of the binding ladder,
// between in-process JavaObject access and the XDR socket binding. It
// carries exactly the XDR request/response records of the socket binding
// (decodeRequest/encodeResponse — the wire contract is shared), but over
// a pair of mmap'd SPSC rings (internal/shmring) instead of a TCP
// connection, eliminating the syscall-per-exchange and kernel buffer
// copies that dominate same-host XDR round trips.
//
// Rendezvous is a unix-domain socket: the advertised address is
// shm:<hostname>:<socket path>. A client that shares the host connects,
// and the server creates a fresh per-connection segment in /dev/shm and
// sends its path and the server's generation stamp down the socket. The
// socket then goes quiet and serves as same-host proof (connecting at
// all requires the shared filesystem) and as the liveness channel: when
// either process dies, the peer's read returns and the segment is
// closed, unblocking every ring waiter. A server restart mints a new
// generation; a port that knew the old one refuses the new segment with
// ErrStaleShmGeneration, which invalidates stale Binder mappings.
//
// Dial-time negotiation is soft everywhere: a hostname mismatch, an
// unsupported platform, or a failed handshake makes openPort report the
// shm port unusable (not an error), so Dial falls through to XDR.

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"harness2/internal/container"
	"harness2/internal/resilience"
	"harness2/internal/resilience/chaos"
	"harness2/internal/shmring"
	"harness2/internal/telemetry"
	"harness2/internal/wire"
	"harness2/internal/wsdl"
	"harness2/internal/xdr"
)

// ErrStaleShmGeneration reports a shm handshake whose generation stamp
// differs from the one the port bound to: the server restarted behind
// the same socket path. The error is marked unsent (the request never
// left the client), so resilience policies may retry, and it propagates
// through Binder.Invoke's invalidate-on-error path so the stale binding
// is dropped and rebound.
var ErrStaleShmGeneration = errors.New("invoke: shm endpoint generation changed (server restarted)")

// ShmAddrPrefix starts every advertised shm endpoint address.
const ShmAddrPrefix = "shm:"

// ShmAddr builds the advertised address for a handshake socket on this
// host.
func ShmAddr(hostname, sockPath string) string {
	return ShmAddrPrefix + hostname + ":" + sockPath
}

// ParseShmAddress splits shm:<hostname>:<socket path>.
func ParseShmAddress(addr string) (hostname, sockPath string, err error) {
	rest, ok := strings.CutPrefix(addr, ShmAddrPrefix)
	if !ok {
		return "", "", fmt.Errorf("invoke: %q is not a shm address", addr)
	}
	i := strings.IndexByte(rest, ':')
	if i <= 0 || i == len(rest)-1 {
		return "", "", fmt.Errorf("invoke: malformed shm address %q", addr)
	}
	return rest[:i], rest[i+1:], nil
}

// sameHost reports whether the advertised shm address names this machine.
func sameHost(hostname string) bool {
	hn, err := os.Hostname()
	return err == nil && hn == hostname
}

var shmSockSeq atomic.Uint64

// ShmServerOption configures NewShmServer.
type ShmServerOption func(*ShmServer)

// WithShmTelemetry selects the server's metrics registry; nil falls back
// to the process default.
func WithShmTelemetry(r *telemetry.Registry) ShmServerOption {
	return func(s *ShmServer) { s.tel = r }
}

// WithShmLimiter installs server-side admission control, shared with the
// other bindings' servers.
func WithShmLimiter(l *resilience.Limiter) ShmServerOption {
	return func(s *ShmServer) { s.limiter = l }
}

// WithShmWorkers bounds concurrently executing requests across all
// segments. Values < 1 are ignored.
func WithShmWorkers(n int) ShmServerOption {
	return func(s *ShmServer) {
		if n >= 1 {
			s.sem = make(chan struct{}, n)
		}
	}
}

// WithShmRingBytes sizes each direction's ring for new segments.
func WithShmRingBytes(n int) ShmServerOption {
	return func(s *ShmServer) {
		if n > 0 {
			s.ringBytes = n
		}
	}
}

// ShmServer serves the shared-memory binding for a container's
// instances: a handshake listener plus one shmring segment and worker
// loop per connected client.
type ShmServer struct {
	c          *container.Container
	ln         net.Listener
	sockPath   string
	hostname   string
	generation uint64
	ringBytes  int

	tel     *telemetry.Registry
	limiter *resilience.Limiter
	m       bindingMetrics

	sem       chan struct{}
	closeCtx  context.Context
	closeStop context.CancelFunc

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]*shmring.Segment
	wg     sync.WaitGroup
}

// NewShmServer starts a shm handshake listener for container c. An empty
// sockPath picks a fresh socket in the segment directory. On platforms
// without mmap support it returns an error; callers advertise the
// binding only when the server started.
func NewShmServer(c *container.Container, sockPath string, opts ...ShmServerOption) (*ShmServer, error) {
	if !shmring.Supported() {
		return nil, errors.New("invoke: shm binding unsupported on this platform")
	}
	if sockPath == "" {
		sockPath = filepath.Join(shmring.SegmentDir(),
			fmt.Sprintf("h2shm-%d-%d.sock", os.Getpid(), shmSockSeq.Add(1)))
	}
	_ = os.Remove(sockPath) // a previous incarnation's socket is dead by definition
	ln, err := net.Listen("unix", sockPath)
	if err != nil {
		return nil, fmt.Errorf("invoke: shm listen: %w", err)
	}
	hostname, err := os.Hostname()
	if err != nil {
		hostname = "localhost"
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &ShmServer{
		c: c, ln: ln, sockPath: sockPath, hostname: hostname,
		// The generation stamp must differ across restarts of the same
		// socket path; wall-clock nanoseconds at startup do.
		generation: uint64(time.Now().UnixNano()) | 1,
		ringBytes:  shmring.DefaultRingBytes,
		sem:        make(chan struct{}, defaultXDRWorkers()),
		closeCtx:   ctx, closeStop: cancel,
		conns: make(map[net.Conn]*shmring.Segment),
	}
	for _, opt := range opts {
		opt(s)
	}
	s.m = newBindingMetrics(telemetry.Or(s.tel), "shm-server")
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the advertised endpoint address (shm:<host>:<socket>).
func (s *ShmServer) Addr() string { return ShmAddr(s.hostname, s.sockPath) }

// SockPath returns the handshake socket path.
func (s *ShmServer) SockPath() string { return s.sockPath }

// Generation returns the server's incarnation stamp.
func (s *ShmServer) Generation() uint64 { return s.generation }

// Retarget points the server at a different container (node bootstrap;
// see XDRServer.Retarget).
func (s *ShmServer) Retarget(c *container.Container) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.c = c
}

func (s *ShmServer) target() *container.Container {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c
}

// Close stops the listener and all segments, then waits for in-flight
// handlers to drain.
func (s *ShmServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	for conn, seg := range s.conns {
		_ = seg.Close()
		_ = conn.Close()
	}
	s.mu.Unlock()
	s.closeStop()
	s.wg.Wait()
	_ = os.Remove(s.sockPath)
	return err
}

func (s *ShmServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// serveConn owns one client: create the segment, hand its path over the
// socket, then serve ring records until the segment closes (client
// disconnect, server Close, or ring poisoning).
func (s *ShmServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()

	seg, err := shmring.Create("", s.ringBytes, s.generation)
	if err != nil {
		return
	}
	defer seg.Close()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.conns[conn] = seg
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	e := xdr.GetEncoder()
	e.String(seg.Path())
	e.Uint64(s.generation)
	err = xdr.WriteFrame(conn, e.Bytes())
	xdr.PutEncoder(e)
	if err != nil {
		return
	}

	// Liveness watcher: the handshake socket carries no further data, so
	// a read returns only when the client goes away — then the segment is
	// closed, unblocking the ring loops below.
	go func() {
		var b [1]byte
		for {
			if _, err := conn.Read(b[:]); err != nil {
				break
			}
		}
		_ = seg.Close()
	}()

	s.serveSegment(seg)
}

type shmTask struct {
	id    uint64
	frame []byte
}

// serveSegment is the shm twin of XDRServer.serveV2: request records
// fan out to a worker pool (bounded globally by s.sem) and responses
// return on the B ring in completion order, tagged with their request
// id. No flusher is needed — a ring write is its own commit.
func (s *ShmServer) serveSegment(seg *shmring.Segment) {
	var wmu sync.Mutex // serializes producers on the SPSC response ring
	nw := cap(s.sem)
	tasks := make(chan shmTask, nw)
	var workers sync.WaitGroup
	for i := 0; i < nw; i++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for t := range tasks {
				s.sem <- struct{}{}
				resp := s.handleRecord(t.frame)
				xdr.PutFrameBuf(t.frame)
				wmu.Lock()
				err := seg.B.WriteRecord(t.id, resp.Bytes())
				if errors.Is(err, shmring.ErrTooLarge) {
					// An oversized response faults its one call; closing the
					// segment would fail every other in-flight call too.
					f := xdr.GetEncoder()
					encodeFault(f, fmt.Errorf("invoke: shm response %d bytes exceeds the %d-byte record limit",
						resp.Len(), shmring.MaxRecordBytes))
					err = seg.B.WriteRecord(t.id, f.Bytes())
					xdr.PutEncoder(f)
				}
				wmu.Unlock()
				xdr.PutEncoder(resp)
				<-s.sem
				if err != nil {
					_ = seg.Close() // unblocks the read loop below
				}
			}
		}()
	}
	for {
		// Each record needs its own buffer (workers hold them
		// concurrently); the frame pool recycles them across requests.
		id, payload, err := seg.A.ReadRecord(xdr.GetFrameBuf(0))
		if err != nil {
			break
		}
		tasks <- shmTask{id: id, frame: payload}
	}
	close(tasks)
	workers.Wait()
}

// handleRecord decodes one request, invokes it, and encodes the response
// into a pooled encoder the caller must release — the same contract as
// XDRServer.handleFrame, minus the frame header (the ring record carries
// the id).
func (s *ShmServer) handleRecord(frame []byte) *xdr.Encoder {
	e := xdr.GetEncoder()
	fault := func(err error) *xdr.Encoder {
		e.Reset()
		return encodeFault(e, err)
	}
	instance, op, args, err := decodeRequest(frame)
	if err != nil {
		return fault(err)
	}
	release, err := s.limiter.Acquire(s.closeCtx)
	if err != nil {
		return fault(err)
	}
	h, start := s.m.begin(op)
	out, err := s.target().Invoke(s.closeCtx, instance, op, args)
	release()
	s.m.done(op, h, start, err)
	if err != nil {
		return fault(err)
	}
	if err := encodeResponse(e, out); err != nil {
		return fault(err)
	}
	return e
}

type shmReply struct {
	frame []byte
	err   error
}

// shmConn is one attached segment plus the pending-call map of the
// Invokes routed through it. Scoping the map per connection (not per
// port) means a demux goroutine left over from a replaced segment can
// only ever fail the calls that were actually in flight on its own
// segment — never fresh calls registered after a re-handshake.
type shmConn struct {
	seg *shmring.Segment

	mu    sync.Mutex
	calls map[uint64]chan shmReply
	err   error // set once the connection is dead; rejects registration
}

// register enrolls a call awaiting a response record, unless the
// connection already failed.
func (c *shmConn) register(id uint64, ch chan shmReply) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	c.calls[id] = ch
	return nil
}

// take removes and returns the waiter for id, or nil if the caller gave
// up (context cancellation) or the connection already failed.
func (c *shmConn) take(id uint64) chan shmReply {
	c.mu.Lock()
	ch := c.calls[id]
	delete(c.calls, id)
	c.mu.Unlock()
	return ch
}

// drop abandons a pending call (cancelled context, failed write).
func (c *shmConn) drop(id uint64) {
	c.mu.Lock()
	delete(c.calls, id)
	c.mu.Unlock()
}

// fail marks the connection dead and delivers err to every pending
// call. Idempotent: the first failure wins and later calls see c.err
// at registration time instead.
func (c *shmConn) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	calls := c.calls
	c.calls = nil
	c.mu.Unlock()
	for _, ch := range calls {
		ch <- shmReply{err: err}
	}
}

// pending reports the number of calls awaiting responses (tests).
func (c *shmConn) pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.calls)
}

// ShmPort is the client side of the shared-memory binding. Like the
// multiplexed XDRPort it supports any number of concurrent Invokes: each
// call tags its request record with an id and a demultiplexing goroutine
// routes response records back to their callers.
type ShmPort struct {
	addr     string // advertised shm:<host>:<socket> address
	sockPath string
	instance string

	tel   *telemetry.Registry
	chaos *chaos.Injector
	minit sync.Once
	m     bindingMetrics

	nextID atomic.Uint64

	mu         sync.Mutex // connection lifecycle
	conn       net.Conn
	cur        *shmConn // live segment + its pending calls; nil before dial
	generation uint64   // pinned at first handshake; 0 = not yet bound
	closed     bool

	wmu sync.Mutex // serializes producers on the SPSC request ring
}

var _ Port = (*ShmPort)(nil)

// NewShmPort returns an unconnected port for the advertised shm address,
// targeting the given instance. The first Invoke (or an explicit
// Connect) performs the handshake.
func NewShmPort(addr, instance string) (*ShmPort, error) {
	_, sockPath, err := ParseShmAddress(addr)
	if err != nil {
		return nil, err
	}
	return &ShmPort{addr: addr, sockPath: sockPath, instance: instance}, nil
}

// SetTelemetry selects the port's metrics registry; it must be called
// before the first Invoke (openPort does).
func (p *ShmPort) SetTelemetry(r *telemetry.Registry) { p.tel = r }

// SetChaos attaches a fault injector evaluated before each call; it must
// be set before the first Invoke (openPort does).
func (p *ShmPort) SetChaos(in *chaos.Injector) { p.chaos = in }

func (p *ShmPort) metrics() *bindingMetrics {
	p.minit.Do(func() { p.m = newBindingMetrics(telemetry.Or(p.tel), "shm") })
	return &p.m
}

// Connect performs the handshake eagerly so Dial can fall back to XDR
// when the shm endpoint is unreachable.
func (p *ShmPort) Connect(ctx context.Context) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, err := p.segmentLocked(ctx)
	return err
}

// Generation returns the server incarnation the port is bound to, or 0
// before the first handshake.
func (p *ShmPort) Generation() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.generation
}

// segmentLocked returns a live connection, handshaking (or
// re-handshaking after a connection loss) as needed. A re-handshake
// that reaches a different server incarnation fails with
// ErrStaleShmGeneration rather than silently rebinding: the caller's
// Binder owns rediscovery.
func (p *ShmPort) segmentLocked(ctx context.Context) (*shmConn, error) {
	if p.closed {
		return nil, errors.New("invoke: shm port closed")
	}
	if p.cur != nil && !p.cur.seg.Closed() {
		return p.cur, nil
	}
	p.dropLocked()

	var d net.Dialer
	conn, err := d.DialContext(ctx, "unix", p.sockPath)
	if err != nil {
		return nil, fmt.Errorf("invoke: shm dial %s: %w", p.sockPath, err)
	}
	if deadline, ok := ctx.Deadline(); ok {
		_ = conn.SetReadDeadline(deadline)
	}
	frame, err := xdr.ReadFramePooled(bufio.NewReaderSize(conn, 256))
	if err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("invoke: shm handshake: %w", err)
	}
	_ = conn.SetReadDeadline(time.Time{})
	dec := xdr.NewDecoder(frame)
	segPath, err := dec.String()
	var gen uint64
	if err == nil {
		gen, err = dec.Uint64()
	}
	xdr.PutFrameBuf(frame)
	if err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("invoke: shm handshake: %w", err)
	}
	if p.generation != 0 && gen != p.generation {
		_ = conn.Close()
		return nil, fmt.Errorf("invoke: shm rebind %s: %w", p.sockPath, ErrStaleShmGeneration)
	}
	seg, err := shmring.Open(segPath, gen)
	if err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("invoke: shm attach: %w", err)
	}
	c := &shmConn{seg: seg, calls: make(map[uint64]chan shmReply)}
	p.conn = conn
	p.cur = c
	p.generation = gen

	// Liveness watcher: a dead server surfaces as socket EOF; closing the
	// segment unblocks the demux loop and any writer stuck on a full ring.
	go func() {
		var b [1]byte
		for {
			if _, err := conn.Read(b[:]); err != nil {
				break
			}
		}
		_ = seg.Close()
	}()
	go demux(c)
	return c, nil
}

// demux routes response records to the connection's waiting callers.
// On segment close every call pending ON THIS CONNECTION fails: the
// request may or may not have executed, so the error is NOT marked
// unsent. Calls registered against a successor segment after a
// re-handshake live in that segment's own shmConn and are untouched.
func demux(c *shmConn) {
	var buf []byte
	for {
		id, payload, err := c.seg.B.ReadRecord(buf)
		if err != nil {
			c.fail(errors.New("invoke: shm connection lost"))
			return
		}
		ch := c.take(id)
		if ch == nil {
			buf = payload // caller gave up (ctx cancel); reuse the buffer
			continue
		}
		buf = nil
		ch <- shmReply{frame: payload}
	}
}

// Invoke implements Port; safe for concurrent use.
func (p *ShmPort) Invoke(ctx context.Context, op string, args []wire.Arg) ([]wire.Arg, error) {
	if err := p.chaos.Apply(ctx, "shm", op, p.addr); err != nil {
		return nil, err
	}
	m := p.metrics()
	h, start := m.begin(op)
	_, sp := telemetry.Or(p.tel).ChildSpan(ctx, "invoke.shm")
	out, err := p.invoke(ctx, op, args)
	sp.SetError(err)
	sp.End()
	m.done(op, h, start, err)
	return out, err
}

func (p *ShmPort) invoke(ctx context.Context, op string, args []wire.Arg) ([]wire.Arg, error) {
	p.mu.Lock()
	c, err := p.segmentLocked(ctx)
	p.mu.Unlock()
	if err != nil {
		// Nothing was sent: dial, handshake, and generation failures all
		// happen before the request record exists.
		return nil, resilience.MarkUnsent(err)
	}

	e := xdr.GetEncoder()
	if err := encodeRequest(e, p.instance, op, args); err != nil {
		xdr.PutEncoder(e)
		return nil, err
	}
	id := p.nextID.Add(1)
	ch := make(chan shmReply, 1)
	if err := c.register(id, ch); err != nil {
		xdr.PutEncoder(e)
		// The connection died before the request record existed.
		return nil, resilience.MarkUnsent(fmt.Errorf("invoke: shm call %s: %w", op, err))
	}

	p.wmu.Lock()
	err = c.seg.A.WriteRecord(id, e.Bytes())
	p.wmu.Unlock()
	xdr.PutEncoder(e)
	if err != nil {
		c.drop(id)
		// A WriteRecord error can only be the segment closing (or an
		// absurdly oversized record that never started): the server's
		// reader stops at the same close and a partially streamed record
		// is never delivered, so the request did not execute.
		return nil, resilience.MarkUnsent(fmt.Errorf("invoke: shm call %s: %w", op, err))
	}

	select {
	case r := <-ch:
		if r.err != nil {
			return nil, fmt.Errorf("invoke: shm call %s: %w", op, r.err)
		}
		out, derr := decodeResponse(r.frame)
		xdr.PutFrameBuf(r.frame)
		return out, derr
	case <-ctx.Done():
		c.drop(id)
		return nil, ctx.Err()
	}
}

// Kind implements Port.
func (p *ShmPort) Kind() wsdl.BindingKind { return wsdl.BindShm }

// Endpoint implements Port.
func (p *ShmPort) Endpoint() string { return p.addr }

func (p *ShmPort) dropLocked() {
	if p.cur != nil {
		_ = p.cur.seg.Close()
		p.cur = nil
	}
	if p.conn != nil {
		_ = p.conn.Close()
		p.conn = nil
	}
}

// Close implements Port.
func (p *ShmPort) Close() error {
	p.mu.Lock()
	p.closed = true
	c := p.cur
	p.dropLocked()
	p.mu.Unlock()
	if c != nil {
		c.fail(errors.New("invoke: shm port closed"))
	}
	return nil
}
