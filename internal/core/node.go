// Package core is the HARNESS II facade: it assembles the substrate
// packages — containers, bindings, registry, DVM — into the deployable
// units a user works with. A Node is a component container with live
// SOAP/HTTP and XDR endpoints; a Framework groups nodes around a lookup
// service and drives the full publish → discover → bind → invoke loop of
// Figures 3 and 4.
package core

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"harness2/internal/container"
	"harness2/internal/invoke"
	"harness2/internal/registry"
	"harness2/internal/resilience"
	"harness2/internal/resilience/chaos"
	"harness2/internal/soap"
	"harness2/internal/telemetry"
	"harness2/internal/wire"
	"harness2/internal/wsdl"
)

// NodeOptions configure a node.
type NodeOptions struct {
	// Addr is the TCP address to listen on; empty means 127.0.0.1:0.
	Addr string
	// Policy is the deployment cost model (default Lightweight).
	Policy container.DeployPolicy
	// Codec configures SOAP array encoding on the server side.
	Codec soap.Codec
	// DisableSOAP / DisableXDR / DisableShm suppress the respective
	// endpoints. The shm endpoint is additionally skipped — without error
	// — on platforms where shared-memory segments are unsupported.
	DisableSOAP bool
	DisableXDR  bool
	DisableShm  bool
	// Compress is the XDR wire-compression policy (S33). The zero value
	// (CompressAuto) accepts adaptive flate from v3 clients and advertises
	// the codec in generated WSDL; CompressOff disables negotiation.
	Compress invoke.CompressPolicy
	// Telemetry selects the metrics registry for the node's container,
	// bindings, and /metrics endpoint; nil falls back to the process
	// default, telemetry.Disabled() switches instrumentation off.
	Telemetry *telemetry.Registry
	// Admission, when non-nil, bounds concurrent invocations across every
	// binding of this node; excess requests are shed with the Overloaded
	// fault (S28). Nil admits everything.
	Admission *resilience.Limiter
	// Chaos, when non-nil, injects deterministic faults at the node's
	// dispatch boundary (S28); nil costs one branch.
	Chaos *chaos.Injector
}

// Node is a running HARNESS II host: a container plus its live bindings.
type Node struct {
	c *container.Container

	httpLn  net.Listener
	httpSrv *http.Server
	xdrSrv  *invoke.XDRServer
	shmSrv  *invoke.ShmServer

	soapBase string
	restBase string
	xdrAddr  string
	shmAddr  string

	closeOnce sync.Once
	closeErr  error
}

// NewNode starts a node named name with live SOAP and XDR listeners.
func NewNode(name string, opts NodeOptions) (*Node, error) {
	addr := opts.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	n := &Node{}
	if !opts.DisableSOAP {
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			return nil, fmt.Errorf("core: node %s: %w", name, err)
		}
		n.httpLn = ln
		n.soapBase = "http://" + ln.Addr().String() + "/services"
		n.restBase = "http://" + ln.Addr().String() + "/rest"
	}
	cfg := container.Config{
		Name:      name,
		SOAPBase:  n.soapBase,
		HTTPBase:  n.restBase,
		Policy:    opts.Policy,
		Telemetry: opts.Telemetry,
		Admission: opts.Admission,
		Chaos:     opts.Chaos,
	}
	// The XDR and shm servers need the container, and the container's
	// advertised addresses need the servers' endpoints: create the
	// container with empty addresses first, then re-create with the final
	// config. The container is cheap; no instances exist yet.
	c := container.New(cfg)
	if !opts.DisableXDR {
		xs, err := invoke.NewXDRServer(c, "127.0.0.1:0",
			invoke.WithXDRTelemetry(opts.Telemetry),
			invoke.WithXDRCompression(opts.Compress))
		if err != nil {
			if n.httpLn != nil {
				_ = n.httpLn.Close()
			}
			return nil, fmt.Errorf("core: node %s: %w", name, err)
		}
		n.xdrSrv = xs
		n.xdrAddr = xs.Addr()
		cfg.XDRAddr = n.xdrAddr
		cfg.XDRCompress = opts.Compress.Advertised()
	}
	if !opts.DisableShm {
		// Best-effort: on platforms without mmap segments the node simply
		// does not advertise the shm rung; clients fall back to XDR.
		if ss, err := invoke.NewShmServer(c, "", invoke.WithShmTelemetry(opts.Telemetry)); err == nil {
			n.shmSrv = ss
			n.shmAddr = ss.Addr()
			cfg.ShmAddr = n.shmAddr
		}
	}
	if cfg.XDRAddr != "" || cfg.ShmAddr != "" {
		c = container.New(cfg)
		if n.xdrSrv != nil {
			n.xdrSrv.Retarget(c)
		}
		if n.shmSrv != nil {
			n.shmSrv.Retarget(c)
		}
	}
	n.c = c
	if n.httpLn != nil {
		mux := http.NewServeMux()
		mux.Handle("/services/", &invoke.SOAPHandler{Container: c, Codec: opts.Codec, Telemetry: opts.Telemetry})
		mux.Handle("/rest/", http.StripPrefix("/rest/", &invoke.HTTPGetHandler{Container: c, Telemetry: opts.Telemetry}))
		wsil := &registry.WSILHandler{Source: c, Base: "http://" + n.httpLn.Addr().String()}
		mux.Handle("/inspection.wsil", wsil)
		mux.Handle("/wsdl/", wsil)
		// The observability plane (telemetry S27): Prometheus text
		// exposition for everything charged to this node's registry.
		mux.Handle("/metrics", telemetry.Handler(telemetry.Or(opts.Telemetry)))
		n.httpSrv = &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() { _ = n.httpSrv.Serve(n.httpLn) }()
	}
	return n, nil
}

// Container returns the node's component container.
func (n *Node) Container() *container.Container { return n.c }

// Name returns the node name.
func (n *Node) Name() string { return n.c.Name() }

// SOAPBase returns the advertised SOAP endpoint base URL (may be empty).
func (n *Node) SOAPBase() string { return n.soapBase }

// RESTBase returns the advertised HTTP GET endpoint base URL (may be
// empty).
func (n *Node) RESTBase() string { return n.restBase }

// XDRAddr returns the advertised XDR endpoint (may be empty).
func (n *Node) XDRAddr() string { return n.xdrAddr }

// ShmAddr returns the advertised shared-memory endpoint (may be empty).
func (n *Node) ShmAddr() string { return n.shmAddr }

// Close shuts down the node's listeners.
func (n *Node) Close() error {
	n.closeOnce.Do(func() {
		if n.httpSrv != nil {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			n.closeErr = n.httpSrv.Shutdown(ctx)
		}
		if n.xdrSrv != nil {
			if err := n.xdrSrv.Close(); err != nil && n.closeErr == nil {
				n.closeErr = err
			}
		}
		if n.shmSrv != nil {
			if err := n.shmSrv.Close(); err != nil && n.closeErr == nil {
				n.closeErr = err
			}
		}
	})
	return n.closeErr
}

// Framework ties nodes to a lookup service.
type Framework struct {
	Registry registry.Lookup

	mu    sync.Mutex
	nodes map[string]*Node
}

// NewFramework creates a framework around the given lookup service; nil
// creates a fresh in-process registry pre-loaded with the well-known
// binding tModels.
func NewFramework(lookup registry.Lookup) *Framework {
	if lookup == nil {
		reg := registry.New()
		for _, tm := range registry.WellKnownTModels() {
			_ = reg.PublishTModel(tm)
		}
		lookup = reg
	}
	return &Framework{Registry: lookup, nodes: make(map[string]*Node)}
}

// AddNode starts and enrolls a node.
func (f *Framework) AddNode(name string, opts NodeOptions) (*Node, error) {
	n, err := NewNode(name, opts)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.nodes[name]; ok {
		_ = n.Close()
		return nil, fmt.Errorf("core: node %q already exists", name)
	}
	f.nodes[name] = n
	return n, nil
}

// Node returns an enrolled node.
func (f *Framework) Node(name string) (*Node, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n, ok := f.nodes[name]
	return n, ok
}

// Close shuts every node down.
func (f *Framework) Close() {
	f.mu.Lock()
	nodes := make([]*Node, 0, len(f.nodes))
	for _, n := range f.nodes {
		nodes = append(nodes, n)
	}
	f.nodes = map[string]*Node{}
	f.mu.Unlock()
	for _, n := range nodes {
		_ = n.Close()
	}
}

// localContainers snapshots the containers of all enrolled nodes for
// co-location-aware dialing.
func (f *Framework) localContainers() []*container.Container {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*container.Container, 0, len(f.nodes))
	for _, n := range f.nodes {
		out = append(out, n.c)
	}
	return out
}

// DeployAndPublish deploys class on the named node and publishes the
// instance's WSDL in the framework registry, returning the instance and
// its registry key.
func (f *Framework) DeployAndPublish(node, class, id string) (*container.Instance, string, error) {
	n, ok := f.Node(node)
	if !ok {
		return nil, "", fmt.Errorf("core: no node %q", node)
	}
	inst, _, err := n.c.Deploy(class, id)
	if err != nil {
		return nil, "", err
	}
	key, err := n.c.Expose(inst.ID, f.Registry)
	if err != nil {
		_ = n.c.Undeploy(inst.ID)
		return nil, "", err
	}
	return inst, key, nil
}

// Discover finds services by name in the registry and parses their WSDL.
func (f *Framework) Discover(serviceName string) ([]*wsdl.Definitions, error) {
	entries := f.Registry.FindByName(serviceName)
	return parseEntries(entries)
}

// DiscoverByQuery finds services whose WSDL matches an xmlq path query.
func (f *Framework) DiscoverByQuery(query string) ([]*wsdl.Definitions, error) {
	entries, err := f.Registry.FindByQuery(query)
	if err != nil {
		return nil, err
	}
	return parseEntries(entries)
}

func parseEntries(entries []registry.Entry) ([]*wsdl.Definitions, error) {
	out := make([]*wsdl.Definitions, 0, len(entries))
	for _, e := range entries {
		d, err := wsdl.ParseString(e.WSDL)
		if err != nil {
			return nil, fmt.Errorf("core: entry %s: %w", e.Key, err)
		}
		out = append(out, d)
	}
	return out, nil
}

// Dial opens the cheapest usable port for defs, treating every enrolled
// node as co-located (the framework runs in one address space; remote
// deployments pass their own invoke.Options instead).
func (f *Framework) Dial(defs *wsdl.Definitions) (invoke.Port, error) {
	return invoke.Dial(defs, invoke.Options{LocalContainers: f.localContainers()})
}

// DialRemote opens a port pretending no co-location, forcing a network
// binding — the Figure 5 remote path.
func (f *Framework) DialRemote(defs *wsdl.Definitions) (invoke.Port, error) {
	return invoke.Dial(defs, invoke.Options{})
}

// Call is the one-shot convenience: discover by service name, dial, and
// invoke op, returning the named result.
func (f *Framework) Call(ctx context.Context, service, op string, args []wire.Arg, result string) (any, error) {
	defsList, err := f.Discover(service)
	if err != nil {
		return nil, err
	}
	if len(defsList) == 0 {
		return nil, fmt.Errorf("core: service %q not found", service)
	}
	p, err := f.Dial(defsList[0])
	if err != nil {
		return nil, err
	}
	defer p.Close()
	return invoke.CallOperation(ctx, p, op, args, result)
}
