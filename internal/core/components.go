package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"harness2/internal/container"
	"harness2/internal/wire"
	"harness2/internal/wsdl"
)

// Built-in components reproducing the paper's running examples: the
// WSTime service of Figure 7, the MatMul service of Figure 8, and a
// LinSolve service standing in for the "highly optimized version of the
// LAPACK service" of the Section 6 locality scenario.

// WSTimeFactory builds the trivial Time service of Figure 7. now may be
// nil, defaulting to time.Now (injectable for deterministic tests).
func WSTimeFactory(now func() time.Time) container.Factory {
	if now == nil {
		now = time.Now
	}
	return container.FuncFactory(func() *container.FuncComponent {
		return &container.FuncComponent{
			Spec: wsdl.WSTimeSpec(),
			Handlers: map[string]container.OpFunc{
				"getTime": func(ctx context.Context, args []wire.Arg) ([]wire.Arg, error) {
					return wire.Args("time", now().UTC().Format(time.RFC1123)), nil
				},
			},
		}
	})
}

// MatMulSpecN extends the paper's Figure 8 service with an explicit
// dimension parameter so square matrices of any size multiply.
func MatMulSpecN() wsdl.ServiceSpec {
	return wsdl.ServiceSpec{
		Name: "MatMul",
		Operations: []wsdl.OpSpec{{
			Name: "getResult",
			Input: []wsdl.ParamSpec{
				{Name: "mata", Type: wire.KindFloat64Array},
				{Name: "matb", Type: wire.KindFloat64Array},
				{Name: "n", Type: wire.KindInt32},
			},
			Output: []wsdl.ParamSpec{{Name: "result", Type: wire.KindFloat64Array}},
		}},
	}
}

// MatMul multiplies two n×n row-major matrices.
func MatMul(a, b []float64, n int) ([]float64, error) {
	if n < 0 || len(a) != n*n || len(b) != n*n {
		return nil, fmt.Errorf("core: matmul wants two %d×%d matrices, got %d and %d elements",
			n, n, len(a), len(b))
	}
	out := make([]float64, n*n)
	// ikj loop order for cache-friendly access to b and out.
	for i := 0; i < n; i++ {
		arow := a[i*n : (i+1)*n]
		orow := out[i*n : (i+1)*n]
		for k := 0; k < n; k++ {
			aik := arow[k]
			if aik == 0 {
				continue
			}
			brow := b[k*n : (k+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += aik * brow[j]
			}
		}
	}
	return out, nil
}

// MatMulFactory builds the MatMul component of Figure 8.
func MatMulFactory() container.Factory {
	return container.FuncFactory(func() *container.FuncComponent {
		return &container.FuncComponent{
			Spec: MatMulSpecN(),
			Handlers: map[string]container.OpFunc{
				"getResult": func(ctx context.Context, args []wire.Arg) ([]wire.Arg, error) {
					av, ok := wire.GetArg(args, "mata")
					if !ok {
						return nil, fmt.Errorf("core: matmul missing mata")
					}
					bv, ok := wire.GetArg(args, "matb")
					if !ok {
						return nil, fmt.Errorf("core: matmul missing matb")
					}
					a, _ := av.([]float64)
					b, _ := bv.([]float64)
					n := int(math.Sqrt(float64(len(a))))
					if nv, ok := wire.GetArg(args, "n"); ok {
						if ni, ok := nv.(int32); ok {
							n = int(ni)
						}
					}
					out, err := MatMul(a, b, n)
					if err != nil {
						return nil, err
					}
					return wire.Args("result", out), nil
				},
			},
		}
	})
}

// LinSolveSpec describes the LAPACK stand-in: solve(A, b, n) -> x with
// A an n×n row-major matrix.
func LinSolveSpec() wsdl.ServiceSpec {
	return wsdl.ServiceSpec{
		Name: "LinSolve",
		Operations: []wsdl.OpSpec{{
			Name: "solve",
			Input: []wsdl.ParamSpec{
				{Name: "a", Type: wire.KindFloat64Array},
				{Name: "b", Type: wire.KindFloat64Array},
				{Name: "n", Type: wire.KindInt32},
			},
			Output: []wsdl.ParamSpec{{Name: "x", Type: wire.KindFloat64Array}},
		}},
	}
}

// LinSolve solves Ax = b by LU decomposition with partial pivoting.
// A is n×n row-major and is not modified.
func LinSolve(a, b []float64, n int) ([]float64, error) {
	if n < 0 || len(a) != n*n || len(b) != n {
		return nil, fmt.Errorf("core: linsolve wants %d×%d matrix and %d-vector, got %d and %d elements",
			n, n, n, len(a), len(b))
	}
	lu := append([]float64(nil), a...)
	x := append([]float64(nil), b...)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(lu[perm[col]*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(lu[perm[r]*n+col]); v > best {
				best, pivot = v, r
			}
		}
		if best == 0 {
			return nil, fmt.Errorf("core: linsolve: singular matrix (column %d)", col)
		}
		perm[col], perm[pivot] = perm[pivot], perm[col]
		prow := perm[col]
		pv := lu[prow*n+col]
		for r := col + 1; r < n; r++ {
			row := perm[r]
			f := lu[row*n+col] / pv
			if f == 0 {
				continue
			}
			lu[row*n+col] = f
			for c := col + 1; c < n; c++ {
				lu[row*n+c] -= f * lu[prow*n+c]
			}
		}
	}
	// Forward substitution (Ly = Pb).
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := x[perm[i]]
		for j := 0; j < i; j++ {
			sum -= lu[perm[i]*n+j] * y[j]
		}
		y[i] = sum
	}
	// Back substitution (Ux = y).
	out := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := y[i]
		for j := i + 1; j < n; j++ {
			sum -= lu[perm[i]*n+j] * out[j]
		}
		out[i] = sum / lu[perm[i]*n+i]
	}
	return out, nil
}

// LinSolveFactory builds the LAPACK stand-in component.
func LinSolveFactory() container.Factory {
	return container.FuncFactory(func() *container.FuncComponent {
		return &container.FuncComponent{
			Spec: LinSolveSpec(),
			Handlers: map[string]container.OpFunc{
				"solve": func(ctx context.Context, args []wire.Arg) ([]wire.Arg, error) {
					av, _ := wire.GetArg(args, "a")
					bv, _ := wire.GetArg(args, "b")
					nv, _ := wire.GetArg(args, "n")
					a, _ := av.([]float64)
					b, _ := bv.([]float64)
					ni, _ := nv.(int32)
					x, err := LinSolve(a, b, int(ni))
					if err != nil {
						return nil, err
					}
					return wire.Args("x", x), nil
				},
			},
		}
	})
}

// RegisterBuiltins installs every built-in component class on a container.
func RegisterBuiltins(c *container.Container) {
	c.RegisterFactory("WSTime", WSTimeFactory(nil))
	c.RegisterFactory("MatMul", MatMulFactory())
	c.RegisterFactory("LinSolve", LinSolveFactory())
}
