package core

import (
	"context"
	"net/http/httptest"
	"testing"

	"harness2/internal/registry"
	"harness2/internal/wire"
	"harness2/internal/wsdl"
)

// TestTwoFrameworksSharedRemoteRegistry is the full distributed scenario:
// two independent frameworks (separate address spaces in spirit) share a
// central SOAP registry. Provider publishes through it; consumer
// discovers through it and must invoke over a network binding, because
// the provider's container is not co-located.
func TestTwoFrameworksSharedRemoteRegistry(t *testing.T) {
	// Central registry served over SOAP/HTTP.
	reg := registry.New()
	regSrv := httptest.NewServer(registry.NewServer(reg))
	defer regSrv.Close()

	provider := NewFramework(registry.NewRemote(regSrv.URL))
	defer provider.Close()
	consumer := NewFramework(registry.NewRemote(regSrv.URL))
	defer consumer.Close()

	pnode, err := provider.AddNode("provider-node", NodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	RegisterBuiltins(pnode.Container())
	if _, err := consumer.AddNode("consumer-node", NodeOptions{}); err != nil {
		t.Fatal(err)
	}

	// Publish travels over SOAP to the central registry.
	if _, _, err := provider.DeployAndPublish("provider-node", "MatMul", "mm"); err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 1 {
		t.Fatalf("central registry has %d entries", reg.Len())
	}

	// The consumer discovers through the same central registry...
	defsList, err := consumer.Discover("MatMul")
	if err != nil || len(defsList) != 1 {
		t.Fatalf("consumer discover: %v %v", defsList, err)
	}
	// ...and must not get a local binding: the provider's container is
	// not among the consumer framework's nodes.
	p, err := consumer.Dial(defsList[0])
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Kind() == wsdl.BindJavaObject {
		t.Fatalf("consumer dialled a local binding across frameworks")
	}
	out, err := p.Invoke(context.Background(), "getResult",
		wire.Args("mata", []float64{1, 2}, "matb", []float64{3, 4}, "n", int32(0)))
	_ = out
	// n=0 with 2-element matrices is a dimension error served remotely:
	// the fault must propagate as an error, not a panic.
	if err == nil {
		t.Fatal("dimension error should propagate across the binding")
	}
	out, err = p.Invoke(context.Background(), "getResult",
		wire.Args("mata", []float64{1, 2, 3, 4}, "matb", []float64{5, 6, 7, 8}, "n", int32(2)))
	if err != nil {
		t.Fatal(err)
	}
	res, _ := wire.GetArg(out, "result")
	if !wire.Equal(res, []float64{19, 22, 43, 50}) {
		t.Fatalf("result = %v", res)
	}

	// Unpublish via the provider: the consumer stops finding it.
	if err := pnode.Container().Unexpose("mm", provider.Registry); err != nil {
		t.Fatal(err)
	}
	defsList, err = consumer.Discover("MatMul")
	if err != nil {
		t.Fatal(err)
	}
	if len(defsList) != 0 {
		t.Fatalf("service still discoverable after unpublish: %v", defsList)
	}
}

// TestCrossFrameworkWSILDiscovery covers the registry-free path between
// frameworks: the consumer learns everything from the provider node's
// inspection document.
func TestCrossFrameworkWSILDiscovery(t *testing.T) {
	provider := NewFramework(nil)
	defer provider.Close()
	pnode, err := provider.AddNode("p", NodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	RegisterBuiltins(pnode.Container())
	if _, _, err := pnode.Container().Deploy("LinSolve", "lapack"); err != nil {
		t.Fatal(err)
	}

	base := pnode.SOAPBase()[:len(pnode.SOAPBase())-len("/services")]
	defsList, err := registry.DiscoverViaWSIL(base + "/inspection.wsil")
	if err != nil {
		t.Fatal(err)
	}
	if len(defsList) != 1 || defsList[0].Name != "LinSolve" {
		t.Fatalf("wsil = %v", defsList)
	}
	// The discovered description is complete enough to solve a system
	// through the XDR binding.
	consumer := NewFramework(nil)
	defer consumer.Close()
	p, err := consumer.DialRemote(defsList[0])
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	out, err := p.Invoke(context.Background(), "solve",
		wire.Args("a", []float64{2, 0, 0, 2}, "b", []float64{2, 4}, "n", int32(2)))
	if err != nil {
		t.Fatal(err)
	}
	x, _ := wire.GetArg(out, "x")
	if !wire.Equal(x, []float64{1, 2}) {
		t.Fatalf("x = %v", x)
	}
}
