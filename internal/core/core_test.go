package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"harness2/internal/container"
	"harness2/internal/invoke"
	"harness2/internal/registry"
	"harness2/internal/resilience"
	"harness2/internal/resilience/chaos"
	"harness2/internal/wire"
	"harness2/internal/wsdl"
)

func newFW(t *testing.T) *Framework {
	t.Helper()
	f := NewFramework(nil)
	t.Cleanup(f.Close)
	return f
}

func addNode(t *testing.T, f *Framework, name string) *Node {
	t.Helper()
	n, err := f.AddNode(name, NodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	RegisterBuiltins(n.Container())
	return n
}

func TestMatMulKernel(t *testing.T) {
	a := []float64{1, 2, 3, 4} // [[1,2],[3,4]]
	b := []float64{5, 6, 7, 8}
	got, err := MatMul(a, b, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{19, 22, 43, 50}
	if !wire.Equal(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
	if _, err := MatMul(a, b, 3); err == nil {
		t.Fatal("dimension mismatch should fail")
	}
	// Identity property.
	id := []float64{1, 0, 0, 1}
	got, _ = MatMul(a, id, 2)
	if !wire.Equal(got, a) {
		t.Fatalf("A*I = %v", got)
	}
	// Empty matrices are legal.
	if out, err := MatMul(nil, nil, 0); err != nil || len(out) != 0 {
		t.Fatalf("0×0: %v %v", out, err)
	}
}

func TestLinSolveKernel(t *testing.T) {
	// 3x3 system with known solution x = (1, -2, 3).
	a := []float64{
		2, 1, -1,
		-3, -1, 2,
		-2, 1, 2,
	}
	x := []float64{1, -2, 3}
	b := make([]float64, 3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			b[i] += a[i*3+j] * x[j]
		}
	}
	got, err := LinSolve(a, b, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(got[i]-x[i]) > 1e-9 {
			t.Fatalf("x = %v", got)
		}
	}
	// Singular matrix.
	if _, err := LinSolve([]float64{1, 2, 2, 4}, []float64{1, 2}, 2); err == nil {
		t.Fatal("singular matrix should fail")
	}
	// Size mismatch.
	if _, err := LinSolve(a, b, 2); err == nil {
		t.Fatal("size mismatch should fail")
	}
	// Pivoting required: zero on the diagonal.
	a2 := []float64{0, 1, 1, 0}
	got, err = LinSolve(a2, []float64{3, 5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-5) > 1e-12 || math.Abs(got[1]-3) > 1e-12 {
		t.Fatalf("pivoted solve = %v", got)
	}
}

func TestPropertyLinSolveResidual(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		a := make([]float64, n*n)
		for i := range a {
			a[i] = r.NormFloat64()
		}
		// Diagonal dominance guarantees non-singularity.
		for i := 0; i < n; i++ {
			a[i*n+i] += float64(n) + 1
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x, err := LinSolve(a, b, n)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			sum := 0.0
			for j := 0; j < n; j++ {
				sum += a[i*n+j] * x[j]
			}
			if math.Abs(sum-b[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMatMulDistributesOverIdentity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		a := make([]float64, n*n)
		id := make([]float64, n*n)
		for i := range a {
			a[i] = r.NormFloat64()
		}
		for i := 0; i < n; i++ {
			id[i*n+i] = 1
		}
		left, err1 := MatMul(id, a, n)
		right, err2 := MatMul(a, id, n)
		return err1 == nil && err2 == nil && wire.Equal(left, a) && wire.Equal(right, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeEndpointsLive(t *testing.T) {
	f := newFW(t)
	n := addNode(t, f, "n1")
	if n.SOAPBase() == "" || n.XDRAddr() == "" {
		t.Fatalf("endpoints: soap=%q xdr=%q", n.SOAPBase(), n.XDRAddr())
	}
	if n.Name() != "n1" {
		t.Fatalf("name = %q", n.Name())
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	// Double close is safe.
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestPublishDiscoverInvokeLoop(t *testing.T) {
	// The full Figure 3/4 loop: deploy → publish → discover → bind →
	// invoke → lookup service out of the loop.
	f := newFW(t)
	addNode(t, f, "n1")
	inst, key, err := f.DeployAndPublish("n1", "MatMul", "mm")
	if err != nil {
		t.Fatal(err)
	}
	if inst.ID != "mm" || key == "" {
		t.Fatalf("inst=%v key=%q", inst.ID, key)
	}
	defsList, err := f.Discover("MatMul")
	if err != nil || len(defsList) != 1 {
		t.Fatalf("discover: %v %v", defsList, err)
	}
	p, err := f.Dial(defsList[0])
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	// Co-located: must select the JavaObject binding.
	if p.Kind() != wsdl.BindJavaObject {
		t.Fatalf("kind = %v", p.Kind())
	}
	out, err := p.Invoke(context.Background(), "getResult",
		wire.Args("mata", []float64{1, 2, 3, 4}, "matb", []float64{5, 6, 7, 8}, "n", int32(2)))
	if err != nil {
		t.Fatal(err)
	}
	res, _ := wire.GetArg(out, "result")
	if !wire.Equal(res, []float64{19, 22, 43, 50}) {
		t.Fatalf("result = %v", res)
	}
}

func TestDialRemoteForcesNetworkBinding(t *testing.T) {
	f := newFW(t)
	addNode(t, f, "n1")
	if _, _, err := f.DeployAndPublish("n1", "MatMul", "mm"); err != nil {
		t.Fatal(err)
	}
	defsList, _ := f.Discover("MatMul")
	p, err := f.DialRemote(defsList[0])
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Kind() == wsdl.BindJavaObject {
		t.Fatal("remote dial must not use the local binding")
	}
	out, err := p.Invoke(context.Background(), "getResult",
		wire.Args("mata", []float64{2}, "matb", []float64{3}, "n", int32(1)))
	if err != nil {
		t.Fatal(err)
	}
	res, _ := wire.GetArg(out, "result")
	if !wire.Equal(res, []float64{6}) {
		t.Fatalf("result = %v", res)
	}
}

func TestWSTimeService(t *testing.T) {
	f := newFW(t)
	n := addNode(t, f, "n1")
	fixed := time.Date(2002, 4, 15, 12, 0, 0, 0, time.UTC)
	n.Container().RegisterFactory("WSTime", WSTimeFactory(func() time.Time { return fixed }))
	if _, _, err := f.DeployAndPublish("n1", "WSTime", "time"); err != nil {
		t.Fatal(err)
	}
	v, err := f.Call(context.Background(), "WSTime", "getTime", nil, "time")
	if err != nil {
		t.Fatal(err)
	}
	if v.(string) != fixed.Format(time.RFC1123) {
		t.Fatalf("time = %q", v)
	}
	// WSTime is string-typed: its WSDL must not advertise XDR.
	defsList, _ := f.Discover("WSTime")
	if refs := defsList[0].PortsByKind(wsdl.BindXDR); len(refs) != 0 {
		t.Fatal("WSTime must not have an XDR port")
	}
}

func TestDiscoverByQuery(t *testing.T) {
	f := newFW(t)
	addNode(t, f, "n1")
	_, _, _ = f.DeployAndPublish("n1", "MatMul", "")
	_, _, _ = f.DeployAndPublish("n1", "WSTime", "")
	// Find services with an XDR endpoint: only MatMul qualifies.
	defsList, err := f.DiscoverByQuery("//binding/xdr:binding")
	if err != nil {
		t.Fatal(err)
	}
	if len(defsList) != 1 || defsList[0].Name != "MatMul" {
		t.Fatalf("query result = %v", defsList)
	}
	if _, err := f.DiscoverByQuery("bad["); err == nil {
		t.Fatal("bad query should fail")
	}
}

func TestCallErrors(t *testing.T) {
	f := newFW(t)
	addNode(t, f, "n1")
	if _, err := f.Call(context.Background(), "Nope", "x", nil, "r"); err == nil {
		t.Fatal("unknown service should fail")
	}
}

func TestFrameworkNodeManagement(t *testing.T) {
	f := newFW(t)
	addNode(t, f, "n1")
	if _, err := f.AddNode("n1", NodeOptions{}); err == nil {
		t.Fatal("duplicate node should fail")
	}
	if _, ok := f.Node("n1"); !ok {
		t.Fatal("node lookup failed")
	}
	if _, ok := f.Node("ghost"); ok {
		t.Fatal("ghost node found")
	}
}

func TestNodeWithoutEndpoints(t *testing.T) {
	n, err := NewNode("bare", NodeOptions{DisableSOAP: true, DisableXDR: true})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if n.SOAPBase() != "" || n.XDRAddr() != "" {
		t.Fatal("endpoints should be empty")
	}
	RegisterBuiltins(n.Container())
	inst, _, err := n.Container().Deploy("MatMul", "")
	if err != nil {
		t.Fatal(err)
	}
	// Local invocation still works — this is a purely private container.
	out, err := n.Container().Invoke(context.Background(), inst.ID, "getResult",
		wire.Args("mata", []float64{1}, "matb", []float64{1}, "n", int32(1)))
	if err != nil {
		t.Fatal(err)
	}
	res, _ := wire.GetArg(out, "result")
	if !wire.Equal(res, []float64{1}) {
		t.Fatalf("result = %v", res)
	}
}

func TestStatefulAcrossBindingsEndToEnd(t *testing.T) {
	// Stateful instance addressed through SOAP and XDR endpoints from a
	// "remote" client: state accumulates on the single pinned instance.
	f := newFW(t)
	n := addNode(t, f, "n1")
	n.Container().RegisterFactory("Accum", accumFactory())
	if _, _, err := f.DeployAndPublish("n1", "Accum", "acc"); err != nil {
		t.Fatal(err)
	}
	defsList, _ := f.Discover("Accum")
	ports := invoke.OpenAll(defsList[0], invoke.Options{})
	if len(ports) != 4 { // shm + XDR + SOAP + HTTP GET (numeric service), no local
		t.Fatalf("ports = %d", len(ports))
	}
	ctx := context.Background()
	var last float64
	for _, p := range ports {
		out, err := p.Invoke(ctx, "add", wire.Args("x", 1.5))
		if err != nil {
			t.Fatalf("[%v] %v", p.Kind(), err)
		}
		s, _ := wire.GetArg(out, "sum")
		last = s.(float64)
		_ = p.Close()
	}
	if last != 6 {
		t.Fatalf("sum = %v", last)
	}
}

func TestNodeServesWSILInspection(t *testing.T) {
	// Registry-free discovery: fetch the node's inspection document, walk
	// to the referenced WSDL, dial, and invoke.
	f := newFW(t)
	n := addNode(t, f, "n1")
	if _, _, err := n.Container().Deploy("MatMul", "mm"); err != nil {
		t.Fatal(err)
	}
	base := strings.TrimSuffix(n.SOAPBase(), "/services")
	defsList, err := registry.DiscoverViaWSIL(base + "/inspection.wsil")
	if err != nil {
		t.Fatal(err)
	}
	if len(defsList) != 1 || defsList[0].Name != "MatMul" {
		t.Fatalf("wsil discovery = %v", defsList)
	}
	p, err := invoke.Dial(defsList[0], invoke.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	out, err := p.Invoke(context.Background(), "getResult",
		wire.Args("mata", []float64{3}, "matb", []float64{5}, "n", int32(1)))
	if err != nil {
		t.Fatal(err)
	}
	res, _ := wire.GetArg(out, "result")
	if !wire.Equal(res, []float64{15}) {
		t.Fatalf("result = %v", res)
	}
}

func accumFactory() container.Factory {
	return container.FuncFactory(func() *container.FuncComponent {
		var mu sync.Mutex
		var sum float64
		return &container.FuncComponent{
			Spec: wsdl.ServiceSpec{Name: "Accum", Operations: []wsdl.OpSpec{
				{Name: "add", Input: []wsdl.ParamSpec{{Name: "x", Type: wire.KindFloat64}},
					Output: []wsdl.ParamSpec{{Name: "sum", Type: wire.KindFloat64}}},
			}},
			Handlers: map[string]container.OpFunc{
				"add": func(ctx context.Context, args []wire.Arg) ([]wire.Arg, error) {
					xv, _ := wire.GetArg(args, "x")
					mu.Lock()
					defer mu.Unlock()
					sum += xv.(float64)
					return wire.Args("sum", sum), nil
				},
			},
		}
	})
}

// TestNodeResilienceOptions: the S28 knobs on NodeOptions reach the
// dispatch boundary — a chaos rule at the container site faults local
// invocations deterministically, and an admission limiter sheds the
// second concurrent call with the Overloaded fault.
func TestNodeResilienceOptions(t *testing.T) {
	inj, err := chaos.NewFromSpec(1, "error:1@container#1")
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewNode("chaotic", NodeOptions{
		DisableSOAP: true, DisableXDR: true,
		Chaos:     inj,
		Admission: resilience.NewLimiter(1, 0, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	RegisterBuiltins(n.Container())
	inst, _, err := n.Container().Deploy("WSTime", "")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// The one-shot chaos rule kills the first dispatch with an unsent
	// fault; the second goes through.
	if _, err := n.Container().Invoke(ctx, inst.ID, "getTime", nil); err == nil {
		t.Fatal("first dispatch should fault")
	} else if !resilience.IsUnsent(err) {
		t.Fatalf("chaos fault not marked unsent: %v", err)
	}
	if _, err := n.Container().Invoke(ctx, inst.ID, "getTime", nil); err != nil {
		t.Fatalf("second dispatch: %v", err)
	}
	if fired := inj.Fired(); len(fired) != 1 || fired[0] != 1 {
		t.Fatalf("chaos fired = %v", fired)
	}

	// Admission: hold the single slot with a blocked call, then prove the
	// next one is shed as Overloaded.
	blocked := make(chan struct{})
	unblock := make(chan struct{})
	n.Container().RegisterFactory("Blocker", container.FuncFactory(func() *container.FuncComponent {
		return &container.FuncComponent{
			Spec: wsdl.ServiceSpec{Name: "Blocker", Operations: []wsdl.OpSpec{
				{Name: "block", Output: []wsdl.ParamSpec{{Name: "ok", Type: wire.KindInt64}}},
			}},
			Handlers: map[string]container.OpFunc{
				"block": func(ctx context.Context, args []wire.Arg) ([]wire.Arg, error) {
					close(blocked)
					<-unblock
					return wire.Args("ok", int64(1)), nil
				},
			},
		}
	}))
	b, _, err := n.Container().Deploy("Blocker", "b1")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := n.Container().Invoke(ctx, b.ID, "block", nil)
		done <- err
	}()
	<-blocked
	if _, err := n.Container().Invoke(ctx, inst.ID, "getTime", nil); !errors.Is(err, resilience.ErrOverloaded) {
		t.Fatalf("expected Overloaded shed, got %v", err)
	}
	close(unblock)
	if err := <-done; err != nil {
		t.Fatalf("admitted call: %v", err)
	}
}
