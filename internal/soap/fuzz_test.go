package soap

import (
	"math/rand"
	"testing"

	"harness2/internal/wire"
)

// TestDecodersNeverPanicOnGarbage feeds random bytes and mutated valid
// envelopes to both decoders: errors are fine, panics are not.
func TestDecodersNeverPanicOnGarbage(t *testing.T) {
	c := Codec{}
	r := rand.New(rand.NewSource(12))
	for i := 0; i < 2000; i++ {
		b := make([]byte, r.Intn(512))
		r.Read(b)
		_, _ = c.DecodeCall(b)
		_, _ = c.DecodeResponse(b)
	}
	valid, err := c.EncodeCall(&Call{
		Method:  "m",
		Headers: []Header{{Name: "h", Value: "v", MustUnderstand: true}},
		Params: []Param{
			{"a", []float64{1, 2}},
			{"s", wire.NewStruct("T").Set("x", int32(1))},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Single-byte corruptions of a real envelope.
	for i := 0; i < len(valid); i += 3 {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0x5A
		_, _ = c.DecodeCall(mut)
	}
	// Truncations.
	for i := 0; i < len(valid); i += 7 {
		_, _ = c.DecodeCall(valid[:i])
	}
}

// TestDecodeCallStructuredAbuse covers hand-crafted hostile envelopes.
func TestDecodeCallStructuredAbuse(t *testing.T) {
	c := Codec{}
	envelope := func(body string) []byte {
		return []byte(`<SOAP-ENV:Envelope xmlns:SOAP-ENV="http://schemas.xmlsoap.org/soap/envelope/" xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance" xmlns:SOAP-ENC="http://schemas.xmlsoap.org/soap/encoding/">` + body + `</SOAP-ENV:Envelope>`)
	}
	abuse := []string{
		// Packed array with a length far beyond the payload.
		`<SOAP-ENV:Body><m:f xmlns:m="urn:x"><p xsi:type="hns:ArrayOfDouble" enc="base64" length="1000000">AAAA</p></m:f></SOAP-ENV:Body>`,
		// Negative length.
		`<SOAP-ENV:Body><m:f xmlns:m="urn:x"><p xsi:type="hns:ArrayOfDouble" enc="base64" length="-5">AAAA</p></m:f></SOAP-ENV:Body>`,
		// Deeply nested structs (stack abuse).
		`<SOAP-ENV:Body><m:f xmlns:m="urn:x">` + nest(200) + `</m:f></SOAP-ENV:Body>`,
		// Header without a body.
		`<SOAP-ENV:Header><h xsi:type="xsd:string">x</h></SOAP-ENV:Header>`,
		// Two bodies.
		`<SOAP-ENV:Body><a/></SOAP-ENV:Body><SOAP-ENV:Body><b/></SOAP-ENV:Body>`,
	}
	for i, b := range abuse {
		if _, err := c.DecodeCall(envelope(b)); err == nil && i < 2 {
			t.Errorf("abuse %d should fail", i)
		}
	}
}

func nest(depth int) string {
	open, close := "", ""
	for i := 0; i < depth; i++ {
		open += `<s xsi:type="m:S">`
		close = `</s>` + close
	}
	return open + close
}
