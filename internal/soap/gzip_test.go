package soap

import (
	"bytes"
	"compress/gzip"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func gzipGet(t *testing.T, h http.Handler, acceptGzip bool) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", "/", nil)
	if acceptGzip {
		req.Header.Set("Accept-Encoding", "gzip")
	}
	rec := httptest.NewRecorder()
	Gzip(h).ServeHTTP(rec, req)
	return rec
}

func TestGzipLargeResponse(t *testing.T) {
	body := strings.Repeat("<item>soap envelope</item>", 200) // well over floor
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/xml")
		_, _ = io.WriteString(w, body)
	})
	rec := gzipGet(t, h, true)
	if rec.Header().Get("Content-Encoding") != "gzip" {
		t.Fatalf("Content-Encoding = %q", rec.Header().Get("Content-Encoding"))
	}
	if rec.Body.Len() >= len(body) {
		t.Fatalf("compressed %d >= raw %d", rec.Body.Len(), len(body))
	}
	zr, err := gzip.NewReader(bytes.NewReader(rec.Body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != body {
		t.Fatal("round trip mismatch")
	}
	if rec.Header().Get("Content-Type") != "text/xml" {
		t.Fatal("Content-Type lost")
	}
}

func TestGzipSmallResponseStaysRaw(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.WriteString(w, "tiny")
	})
	rec := gzipGet(t, h, true)
	if rec.Header().Get("Content-Encoding") != "" {
		t.Fatalf("tiny response compressed")
	}
	if rec.Body.String() != "tiny" {
		t.Fatalf("body = %q", rec.Body.String())
	}
}

func TestGzipRespectsAcceptEncoding(t *testing.T) {
	body := strings.Repeat("x", 4096)
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.WriteString(w, body)
	})
	rec := gzipGet(t, h, false)
	if rec.Header().Get("Content-Encoding") != "" {
		t.Fatal("compressed without Accept-Encoding: gzip")
	}
	if rec.Body.String() != body {
		t.Fatal("body altered")
	}
}

func TestGzipPreservesStatus(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
		_, _ = io.WriteString(w, strings.Repeat("fault!", 200))
	})
	rec := gzipGet(t, h, true)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d", rec.Code)
	}
	if rec.Header().Get("Content-Encoding") != "gzip" {
		t.Fatal("large fault body should still compress")
	}
}

func TestGzipEmptyResponse(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	})
	rec := gzipGet(t, h, true)
	if rec.Code != http.StatusNoContent || rec.Body.Len() != 0 {
		t.Fatalf("code=%d len=%d", rec.Code, rec.Body.Len())
	}
	if rec.Header().Get("Content-Encoding") != "" {
		t.Fatal("empty response must not claim gzip")
	}
}

func TestGzipMultiWriteAccumulates(t *testing.T) {
	// Many small writes crossing the floor mid-stream must all survive.
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		for i := 0; i < 100; i++ {
			_, _ = io.WriteString(w, "chunk-0123456789")
		}
	})
	rec := gzipGet(t, h, true)
	if rec.Header().Get("Content-Encoding") != "gzip" {
		t.Fatal("expected gzip")
	}
	zr, err := gzip.NewReader(bytes.NewReader(rec.Body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(zr)
	if len(got) != 1600 {
		t.Fatalf("decoded %d bytes, want 1600", len(got))
	}
}
