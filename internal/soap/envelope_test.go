package soap

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"harness2/internal/wire"
)

func roundTripCall(t *testing.T, c Codec, call *Call) *Call {
	t.Helper()
	data, err := c.EncodeCall(call)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := c.DecodeCall(data)
	if err != nil {
		t.Fatalf("decode: %v\n%s", err, data)
	}
	return got
}

func TestCallRoundTripScalars(t *testing.T) {
	call := &Call{
		Method: "getResult",
		Params: []Param{
			{"b", true},
			{"i", int32(-42)},
			{"l", int64(1 << 50)},
			{"f", float32(1.5)},
			{"d", math.Pi},
			{"s", "hello <world> & friends"},
			{"raw", []byte{0, 1, 2, 255}},
		},
	}
	for _, enc := range []ArrayEncoding{EncodeBase64, EncodeElementwise, EncodeHex} {
		got := roundTripCall(t, Codec{Arrays: enc}, call)
		if got.Method != "getResult" {
			t.Fatalf("[%v] method = %q", enc, got.Method)
		}
		if len(got.Params) != len(call.Params) {
			t.Fatalf("[%v] params = %d", enc, len(got.Params))
		}
		for i, p := range call.Params {
			if got.Params[i].Name != p.Name || !wire.Equal(got.Params[i].Value, p.Value) {
				t.Errorf("[%v] param %s: got %#v want %#v", enc, p.Name, got.Params[i].Value, p.Value)
			}
		}
	}
}

func TestCallRoundTripArrays(t *testing.T) {
	call := &Call{
		Method: "arrays",
		Params: []Param{
			{"bools", []bool{true, false, true}},
			{"ints", []int32{1, -2, 3}},
			{"longs", []int64{1 << 40, -9}},
			{"floats", []float32{0.5, -1.25}},
			{"doubles", []float64{math.Pi, math.Inf(1), math.NaN()}},
			{"strings", []string{"a", "b <c>", ""}},
			{"empty", []float64{}},
		},
	}
	for _, enc := range []ArrayEncoding{EncodeBase64, EncodeElementwise, EncodeHex} {
		got := roundTripCall(t, Codec{Arrays: enc}, call)
		for i, p := range call.Params {
			if !wire.Equal(got.Params[i].Value, p.Value) {
				t.Errorf("[%v] param %s: got %#v want %#v", enc, p.Name, got.Params[i].Value, p.Value)
			}
		}
	}
}

func TestCallRoundTripStruct(t *testing.T) {
	s := wire.NewStruct("JobSpec").
		Set("cmd", "matmul").
		Set("size", int32(512)).
		Set("weights", []float64{1, 2, 3})
	inner := wire.NewStruct("Inner").Set("x", int64(1))
	s.Set("nested", inner)
	call := &Call{Method: "submit", Params: []Param{{"spec", s}}}
	got := roundTripCall(t, Codec{}, call)
	gs, ok := got.Params[0].Value.(*wire.Struct)
	if !ok {
		t.Fatalf("decoded %T", got.Params[0].Value)
	}
	if gs.Name != "JobSpec" {
		t.Fatalf("struct name = %q", gs.Name)
	}
	if !wire.Equal(gs, s) {
		t.Fatalf("struct mismatch:\n got %#v\nwant %#v", gs, s)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	c := Codec{}
	data, err := c.EncodeResponse("getResult", []Param{{"result", []float64{1, 2}}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.DecodeResponse(data)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Fault != nil {
		t.Fatalf("unexpected fault %v", resp.Fault)
	}
	if resp.Method != "getResult" {
		t.Fatalf("method = %q", resp.Method)
	}
	if !wire.Equal(resp.Params[0].Value, []float64{1, 2}) {
		t.Fatalf("result = %v", resp.Params[0].Value)
	}
}

func TestFaultRoundTrip(t *testing.T) {
	c := Codec{}
	f := &Fault{Code: "Client", String: "no such method <x>", Detail: "detail & more"}
	resp, err := c.DecodeResponse(c.EncodeFault(f))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Fault == nil {
		t.Fatal("fault lost")
	}
	if resp.Fault.Code != "Client" || resp.Fault.String != f.String || resp.Fault.Detail != f.Detail {
		t.Fatalf("fault = %+v", resp.Fault)
	}
	if !strings.Contains(f.Error(), "no such method") {
		t.Fatal("fault Error() malformed")
	}
}

func TestDecodeCallRejectsFault(t *testing.T) {
	c := Codec{}
	if _, err := c.DecodeCall(c.EncodeFault(&Fault{Code: "Server", String: "x"})); err == nil {
		t.Fatal("DecodeCall should reject fault envelopes")
	}
}

func TestDecodeErrors(t *testing.T) {
	c := Codec{}
	bad := []string{
		"",
		"<notsoap/>",
		"<Envelope/>",
		`<SOAP-ENV:Envelope xmlns:SOAP-ENV="http://schemas.xmlsoap.org/soap/envelope/"><SOAP-ENV:Body/></SOAP-ENV:Envelope>`,
		`<SOAP-ENV:Envelope xmlns:SOAP-ENV="http://schemas.xmlsoap.org/soap/envelope/"><SOAP-ENV:Body><a/><b/></SOAP-ENV:Body></SOAP-ENV:Envelope>`,
	}
	for _, s := range bad {
		if _, err := c.DecodeCall([]byte(s)); err == nil {
			t.Errorf("DecodeCall(%q) should fail", s)
		}
	}
}

func TestDecodeBadValues(t *testing.T) {
	c := Codec{}
	envelope := func(inner string) []byte {
		return []byte(`<SOAP-ENV:Envelope xmlns:SOAP-ENV="http://schemas.xmlsoap.org/soap/envelope/" xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance" xmlns:SOAP-ENC="http://schemas.xmlsoap.org/soap/encoding/"><SOAP-ENV:Body><m:f xmlns:m="urn:x">` + inner + `</m:f></SOAP-ENV:Body></SOAP-ENV:Envelope>`)
	}
	bad := []string{
		`<p xsi:type="xsd:int">notanint</p>`,
		`<p xsi:type="xsd:double">nope</p>`,
		`<p xsi:type="xsd:base64Binary">!!!</p>`,
		`<p xsi:type="SOAP-ENC:Array">no arrayType</p>`,
		`<p xsi:type="SOAP-ENC:Array" SOAP-ENC:arrayType="xsd:unknown[1]"><item>1</item></p>`,
		`<p xsi:type="hns:ArrayOfDouble" enc="base64" length="2">AAA=</p>`,
		`<p xsi:type="hns:ArrayOfDouble" enc="wat" length="0"></p>`,
		`<p xsi:type="hns:ArrayOfDouble" enc="base64">AAA=</p>`,
		`<p xsi:type="hns:ArrayOfNope" enc="base64" length="0"></p>`,
		`<p xsi:type="SOAP-ENC:Array" SOAP-ENC:arrayType="xsd:int[1]"><item>x</item></p>`,
	}
	for _, s := range bad {
		if _, err := c.DecodeCall(envelope(s)); err == nil {
			t.Errorf("should fail: %s", s)
		}
	}
}

func TestEncodeRejectsInvalidWireValues(t *testing.T) {
	c := Codec{}
	if _, err := c.EncodeCall(&Call{Method: "m", Params: []Param{{"x", int(1)}}}); err == nil {
		t.Fatal("EncodeCall should reject non-wire types")
	}
	if _, err := c.EncodeResponse("m", []Param{{"x", map[string]int{}}}); err == nil {
		t.Fatal("EncodeResponse should reject non-wire types")
	}
}

func TestEncodingSizes(t *testing.T) {
	// The paper's data-encoding claim: XML text encodings expand numeric
	// payloads substantially. BASE64 expands by ~4/3; element-wise XML is
	// far worse; both exceed the raw 8 bytes/double.
	doubles := make([]float64, 1000)
	for i := range doubles {
		doubles[i] = rand.New(rand.NewSource(7)).NormFloat64()
	}
	sizes := map[ArrayEncoding]int{}
	for _, enc := range []ArrayEncoding{EncodeBase64, EncodeElementwise, EncodeHex} {
		data, err := Codec{Arrays: enc}.EncodeCall(&Call{Method: "m", Params: []Param{{"a", doubles}}})
		if err != nil {
			t.Fatal(err)
		}
		sizes[enc] = len(data)
	}
	raw := 8 * len(doubles)
	if sizes[EncodeBase64] <= raw {
		t.Errorf("base64 envelope (%d) should exceed raw payload (%d)", sizes[EncodeBase64], raw)
	}
	if sizes[EncodeHex] <= sizes[EncodeBase64] {
		t.Errorf("hex (%d) should exceed base64 (%d)", sizes[EncodeHex], sizes[EncodeBase64])
	}
	if sizes[EncodeElementwise] <= sizes[EncodeBase64] {
		t.Errorf("elementwise (%d) should exceed base64 (%d)", sizes[EncodeElementwise], sizes[EncodeBase64])
	}
}

func TestArrayEncodingString(t *testing.T) {
	if EncodeBase64.String() != "base64" || EncodeElementwise.String() != "elementwise" ||
		EncodeHex.String() != "hex" || ArrayEncoding(99).String() != "unknown" {
		t.Fatal("ArrayEncoding.String broken")
	}
}

func TestPropertyFloat64ArrayRoundTripAllEncodings(t *testing.T) {
	for _, enc := range []ArrayEncoding{EncodeBase64, EncodeElementwise, EncodeHex} {
		c := Codec{Arrays: enc}
		f := func(a []float64) bool {
			data, err := c.EncodeCall(&Call{Method: "m", Params: []Param{{"a", a}}})
			if err != nil {
				return false
			}
			got, err := c.DecodeCall(data)
			if err != nil {
				return false
			}
			return wire.Equal(got.Params[0].Value, a)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Fatalf("[%v] %v", enc, err)
		}
	}
}

func TestPropertyStringRoundTrip(t *testing.T) {
	c := Codec{}
	f := func(s string) bool {
		clean := sanitizeXML(s)
		data, err := c.EncodeCall(&Call{Method: "m", Params: []Param{{"s", clean}}})
		if err != nil {
			return false
		}
		got, err := c.DecodeCall(data)
		if err != nil {
			return false
		}
		// Parser trims surrounding whitespace; compare trimmed.
		return got.Params[0].Value.(string) == strings.TrimSpace(clean)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func sanitizeXML(s string) string {
	return strings.Map(func(r rune) rune {
		if r < 0x20 && r != '\t' && r != '\n' && r != '\r' {
			return -1
		}
		if r == 0xFFFE || r == 0xFFFF || (r >= 0xD800 && r <= 0xDFFF) {
			return -1
		}
		return r
	}, s)
}
