package soap

// fastdecode.go is the streaming decode plane (experiment E14): a
// scan-based decoder for the common RPC envelope shape — single body
// element, flat params, packed arrays — that walks the raw bytes with
// xmlq.Scanner instead of building a DOM.
//
// The contract with the DOM path is differential: on any input, the
// fast path must either (a) return exactly the result the DOM decoder
// would, (b) return a definitive error only when the DOM decoder
// certainly also errors, or (c) return errFallback, in which case the
// caller retries through the DOM. Anything outside the scanner subset
// (comments, CDATA, non-ASCII text, unusual entities) — and any
// structural situation whose DOM outcome is not provably identical —
// takes route (c). The fuzz target FuzzFastDecodeDifferential enforces
// the contract.

import (
	"bytes"
	"encoding/base64"
	"encoding/hex"
	"errors"
	"fmt"
	"strconv"
	"sync"

	"harness2/internal/wire"
	"harness2/internal/xmlq"
)

// errFallback routes a decode to the DOM parser. Never returned to
// callers of DecodeCall/DecodeResponse.
var errFallback = errors.New("soap: envelope outside fast-path subset")

// nsBinding is one xmlns declaration seen on the Envelope → Body →
// method descent. A nil prefix is the default namespace.
type nsBinding struct {
	prefix []byte
	uri    []byte
}

// fastDecoder holds the reusable state for one decode. Pooled; all
// returned values are copied out of its buffers.
type fastDecoder struct {
	sc      xmlq.Scanner
	textBuf []byte      // accumulated trimmed text runs of the current leaf
	raw     []byte      // packed-array byte scratch
	stack   [][]byte    // open-element names while skipping a subtree
	ns      []nsBinding // xmlns declarations on the descent to the method
}

var fastDecPool = sync.Pool{New: func() any { return new(fastDecoder) }}

func fastDecodeCall(data []byte) (*Call, error) {
	d := fastDecPool.Get().(*fastDecoder)
	call, _, err := d.envelope(data, true)
	putFastDecoder(d)
	return call, err
}

func fastDecodeResponse(data []byte) (*Response, error) {
	d := fastDecPool.Get().(*fastDecoder)
	_, resp, err := d.envelope(data, false)
	putFastDecoder(d)
	return resp, err
}

func putFastDecoder(d *fastDecoder) {
	d.sc.Reset(nil)
	if cap(d.textBuf) > maxPooledBuffer {
		d.textBuf = nil
	}
	if cap(d.raw) > maxPooledBuffer {
		d.raw = nil
	}
	// The name/binding slices alias the caller's buffer; zero them past
	// len so the pool does not pin old request bodies.
	clear(d.stack[:cap(d.stack)])
	clear(d.ns[:cap(d.ns)])
	d.stack, d.ns = d.stack[:0], d.ns[:0]
	fastDecPool.Put(d)
}

// envelope scans one document. wantCall selects Call vs Response
// semantics, mirroring domDecodeCall / domDecodeResponse.
func (d *fastDecoder) envelope(data []byte, wantCall bool) (*Call, *Response, error) {
	d.sc.Reset(data)
	d.ns = d.ns[:0]

	// Leading content: PIs are skipped by the scanner, pure whitespace
	// is insignificant; anything else (the DOM ignores stray top-level
	// chardata) falls back.
	var root xmlq.RawToken
	for {
		tok, err := d.sc.Next()
		if err != nil {
			return nil, nil, errFallback
		}
		if tok.Kind == xmlq.TokText {
			if !allSpace(tok.Text) {
				return nil, nil, errFallback
			}
			continue
		}
		if tok.Kind != xmlq.TokStart {
			return nil, nil, errFallback
		}
		root = tok
		break
	}
	if root.SelfClose || string(xmlq.LocalName(root.Name)) != "Envelope" {
		return nil, nil, errFallback
	}
	rootName := root.Name
	d.pushNS(root.Attrs)

	var (
		call       *Call
		resp       *Response
		hdrs       []Header
		seenHeader bool
		seenBody   bool
	)
envloop:
	for {
		tok, err := d.sc.Next()
		if err != nil {
			return nil, nil, errFallback
		}
		switch tok.Kind {
		case xmlq.TokEOF:
			return nil, nil, errFallback
		case xmlq.TokText:
			// Root text is dropped by the DOM; entities in it would
			// still be validated there, so any '&' falls back.
			if xmlq.HasAmp(tok.Text) {
				return nil, nil, errFallback
			}
		case xmlq.TokEnd:
			if !bytes.Equal(tok.Name, rootName) {
				return nil, nil, errFallback
			}
			break envloop
		case xmlq.TokStart:
			local := xmlq.LocalName(tok.Name)
			switch {
			case !seenHeader && string(local) == "Header":
				seenHeader = true
				if wantCall {
					hdrs, err = d.headers(tok)
					if err != nil {
						return nil, nil, err
					}
				} else if err := d.skipFrom(tok); err != nil {
					return nil, nil, err
				}
			case !seenBody && string(local) == "Body":
				seenBody = true
				if tok.SelfClose {
					return nil, nil, errFallback
				}
				d.pushNS(tok.Attrs)
				call, resp, err = d.body(tok.Name, wantCall)
				if err != nil {
					return nil, nil, err
				}
			default:
				if err := d.skipFrom(tok); err != nil {
					return nil, nil, err
				}
			}
		}
	}
	if !seenBody {
		return nil, nil, errFallback
	}
	// Trailing content: whitespace and PIs only; a second root or
	// stray text is the DOM's call.
	for {
		tok, err := d.sc.Next()
		if err != nil {
			return nil, nil, errFallback
		}
		switch tok.Kind {
		case xmlq.TokEOF:
			if call != nil {
				call.Headers = hdrs
			}
			return call, resp, nil
		case xmlq.TokText:
			if !allSpace(tok.Text) {
				return nil, nil, errFallback
			}
		default:
			return nil, nil, errFallback
		}
	}
}

// body scans the Body element: exactly one child (the method element or
// a Fault), mirroring bodyOf's "exactly one element" rule by falling
// back on anything else.
func (d *fastDecoder) body(bodyName []byte, wantCall bool) (*Call, *Response, error) {
	parent := bodyName
	var call *Call
	var resp *Response
	seen := false
	for {
		tok, err := d.sc.Next()
		if err != nil {
			return nil, nil, errFallback
		}
		switch tok.Kind {
		case xmlq.TokEOF:
			return nil, nil, errFallback
		case xmlq.TokText:
			if xmlq.HasAmp(tok.Text) {
				return nil, nil, errFallback
			}
		case xmlq.TokEnd:
			if !seen || !bytes.Equal(tok.Name, parent) {
				return nil, nil, errFallback
			}
			return call, resp, nil
		case xmlq.TokStart:
			if seen {
				// Second Body child: DOM reports a count error.
				return nil, nil, errFallback
			}
			seen = true
			local := xmlq.LocalName(tok.Name)
			if wantCall {
				if string(local) == "Fault" {
					return nil, nil, errFallback
				}
				d.pushNS(tok.Attrs)
				ns, err := d.resolveName(tok.Name)
				if err != nil {
					return nil, nil, err
				}
				call = &Call{Method: string(local), Namespace: ns}
				call.Params, err = d.paramList(tok)
				if err != nil {
					return nil, nil, err
				}
				continue
			}
			if string(local) == "Fault" {
				f, err := d.fault(tok)
				if err != nil {
					return nil, nil, err
				}
				resp = &Response{Fault: f}
				continue
			}
			resp = &Response{Method: string(bytes.TrimSuffix(local, []byte("Response")))}
			var perr error
			resp.Params, perr = d.paramList(tok)
			if perr != nil {
				return nil, nil, perr
			}
		}
	}
}

// paramList decodes the children of the method element in order.
func (d *fastDecoder) paramList(parentTok xmlq.RawToken) ([]Param, error) {
	params := make([]Param, 0, 4)
	if parentTok.SelfClose {
		return params, nil
	}
	parent := parentTok.Name
	for {
		tok, err := d.sc.Next()
		if err != nil {
			return nil, errFallback
		}
		switch tok.Kind {
		case xmlq.TokEOF:
			return nil, errFallback
		case xmlq.TokText:
			if xmlq.HasAmp(tok.Text) {
				return nil, errFallback
			}
		case xmlq.TokEnd:
			if !bytes.Equal(tok.Name, parent) {
				return nil, errFallback
			}
			return params, nil
		case xmlq.TokStart:
			name := string(xmlq.LocalName(tok.Name))
			v, err := d.value(tok)
			if err != nil {
				return nil, err
			}
			params = append(params, Param{Name: name, Value: v})
		}
	}
}

// headers decodes the Header element's entries, mirroring
// domDecodeCall's header loop.
func (d *fastDecoder) headers(hdrTok xmlq.RawToken) ([]Header, error) {
	var out []Header
	if hdrTok.SelfClose {
		return out, nil
	}
	parent := hdrTok.Name
	for {
		tok, err := d.sc.Next()
		if err != nil {
			return nil, errFallback
		}
		switch tok.Kind {
		case xmlq.TokEOF:
			return nil, errFallback
		case xmlq.TokText:
			if xmlq.HasAmp(tok.Text) {
				return nil, errFallback
			}
		case xmlq.TokEnd:
			if !bytes.Equal(tok.Name, parent) {
				return nil, errFallback
			}
			return out, nil
		case xmlq.TokStart:
			name := string(xmlq.LocalName(tok.Name))
			var muR, actR []byte
			var muSet, actSet bool
			for _, a := range tok.Attrs {
				switch string(xmlq.LocalName(a.Name)) {
				case "mustUnderstand":
					if !muSet {
						muSet, muR = true, a.Value
					}
				case "actor":
					if !actSet {
						actSet, actR = true, a.Value
					}
				}
			}
			mu, err := attrVal(muR)
			if err != nil {
				return nil, err
			}
			act, err := attrVal(actR)
			if err != nil {
				return nil, err
			}
			actor := string(act)
			must := string(mu) == "1"
			v, err := d.value(tok)
			if err != nil {
				if errors.Is(err, errFallback) {
					return nil, err
				}
				return nil, fmt.Errorf("soap: header %s: %w", name, err)
			}
			out = append(out, Header{Name: name, Value: v, MustUnderstand: must, Actor: actor})
		}
	}
}

// fault decodes a Fault body element: first faultcode / faultstring /
// detail child each win, like Node.Child.
func (d *fastDecoder) fault(tok xmlq.RawToken) (*Fault, error) {
	f := &Fault{}
	if tok.SelfClose {
		return f, nil
	}
	parent := tok.Name
	var codeSet, strSet, detSet bool
	for {
		t, err := d.sc.Next()
		if err != nil {
			return nil, errFallback
		}
		switch t.Kind {
		case xmlq.TokEOF:
			return nil, errFallback
		case xmlq.TokText:
			if xmlq.HasAmp(t.Text) {
				return nil, errFallback
			}
		case xmlq.TokEnd:
			if !bytes.Equal(t.Name, parent) {
				return nil, errFallback
			}
			return f, nil
		case xmlq.TokStart:
			local := string(xmlq.LocalName(t.Name))
			isFirst := (local == "faultcode" && !codeSet) ||
				(local == "faultstring" && !strSet) ||
				(local == "detail" && !detSet)
			if !isFirst {
				if err := d.skipFrom(t); err != nil {
					return nil, err
				}
				continue
			}
			txt, _, err := d.leafText(t.Name, t.SelfClose)
			if err != nil {
				return nil, err
			}
			switch local {
			case "faultcode":
				codeSet = true
				f.Code = string(bytes.TrimPrefix(txt, []byte("SOAP-ENV:")))
			case "faultstring":
				strSet = true
				f.String = string(txt)
			case "detail":
				detSet = true
				f.Detail = string(txt)
			}
		}
	}
}

// value mirrors Codec.decodeValue over the scanner. tok is the already
// consumed start tag of the value element; on success the matching end
// tag has been consumed too.
func (d *fastDecoder) value(tok xmlq.RawToken) (any, error) {
	name := tok.Name
	var typR, atR, encR, lenR []byte
	var typSet, atSet, encSet, lenSet bool
	for _, a := range tok.Attrs {
		switch string(xmlq.LocalName(a.Name)) {
		case "type":
			if !typSet {
				typSet, typR = true, a.Value
			}
		case "arrayType":
			if !atSet {
				atSet, atR = true, a.Value
			}
		case "enc":
			if !encSet {
				encSet, encR = true, a.Value
			}
		case "length":
			if !lenSet {
				lenSet, lenR = true, a.Value
			}
		}
	}
	typ, err := attrVal(typR)
	if err != nil {
		return nil, err
	}
	switch {
	case string(typ) == "xsd:boolean":
		t, _, err := d.leafText(name, tok.SelfClose)
		if err != nil {
			return nil, err
		}
		return strconv.ParseBool(string(t))
	case string(typ) == "xsd:int":
		t, _, err := d.leafText(name, tok.SelfClose)
		if err != nil {
			return nil, err
		}
		v, perr := strconv.ParseInt(string(t), 10, 32)
		return int32(v), perr
	case string(typ) == "xsd:long":
		t, _, err := d.leafText(name, tok.SelfClose)
		if err != nil {
			return nil, err
		}
		return strconv.ParseInt(string(t), 10, 64)
	case string(typ) == "xsd:float":
		t, _, err := d.leafText(name, tok.SelfClose)
		if err != nil {
			return nil, err
		}
		v, perr := strconv.ParseFloat(string(t), 32)
		return float32(v), perr
	case string(typ) == "xsd:double":
		t, _, err := d.leafText(name, tok.SelfClose)
		if err != nil {
			return nil, err
		}
		return strconv.ParseFloat(string(t), 64)
	case string(typ) == "xsd:string":
		t, _, err := d.leafText(name, tok.SelfClose)
		if err != nil {
			return nil, err
		}
		return string(t), nil
	case len(typ) == 0:
		t, children, err := d.leafText(name, tok.SelfClose)
		if err != nil {
			return nil, err
		}
		if children > 0 {
			return nil, fmt.Errorf("soap: cannot decode element %s with type %q",
				string(xmlq.LocalName(name)), "")
		}
		return string(t), nil
	case string(typ) == "xsd:base64Binary":
		t, _, err := d.leafText(name, tok.SelfClose)
		if err != nil {
			return nil, err
		}
		return base64.StdEncoding.AppendDecode(nil, t)
	case bytes.HasSuffix(typ, []byte(":Array")) || string(typ) == "Array":
		return d.elementwise(name, atR, tok.SelfClose)
	case bytes.HasPrefix(typ, []byte("hns:ArrayOf")):
		return d.packed(name, typ, encR, lenR, tok.SelfClose)
	case bytes.IndexByte(typ, ':') >= 0:
		return d.structValue(name, typ, tok.SelfClose)
	}
	return nil, fmt.Errorf("soap: cannot decode element %s with type %q",
		string(xmlq.LocalName(name)), string(typ))
}

// structValue mirrors decodeStruct: every child is a field value.
func (d *fastDecoder) structValue(parent, typ []byte, selfClose bool) (any, error) {
	nm := typ
	if i := bytes.IndexByte(typ, ':'); i >= 0 {
		nm = typ[i+1:]
	}
	s := wire.NewStruct(string(nm))
	if selfClose {
		return s, nil
	}
	for {
		tok, err := d.sc.Next()
		if err != nil {
			return nil, errFallback
		}
		switch tok.Kind {
		case xmlq.TokEOF:
			return nil, errFallback
		case xmlq.TokText:
			if xmlq.HasAmp(tok.Text) {
				return nil, errFallback
			}
		case xmlq.TokEnd:
			if !bytes.Equal(tok.Name, parent) {
				return nil, errFallback
			}
			return s, nil
		case xmlq.TokStart:
			fname := string(xmlq.LocalName(tok.Name))
			v, err := d.value(tok)
			if err != nil {
				return nil, err
			}
			s.Set(fname, v)
		}
	}
}

// elementwise mirrors decodeElementwiseArray: children locally named
// "item" are elements, everything else is skipped.
func (d *fastDecoder) elementwise(parent, atR []byte, selfClose bool) (any, error) {
	at, err := attrVal(atR)
	if err != nil {
		return nil, err
	}
	i := bytes.IndexByte(at, '[')
	if i < 0 {
		return nil, fmt.Errorf("soap: array %s missing arrayType", string(xmlq.LocalName(parent)))
	}
	elem := string(at[:i])
	switch elem {
	case "xsd:string", "xsd:boolean", "xsd:int", "xsd:long", "xsd:float", "xsd:double":
	default:
		return nil, fmt.Errorf("soap: unsupported arrayType %q", string(at))
	}
	var (
		ss []string
		bs []bool
		is []int32
		ls []int64
		fs []float32
		ds []float64
	)
	addItem := func(t []byte) error {
		switch elem {
		case "xsd:string":
			ss = append(ss, string(t))
		case "xsd:boolean":
			v, err := strconv.ParseBool(string(t))
			if err != nil {
				return err
			}
			bs = append(bs, v)
		case "xsd:int":
			v, err := strconv.ParseInt(string(t), 10, 32)
			if err != nil {
				return err
			}
			is = append(is, int32(v))
		case "xsd:long":
			v, err := strconv.ParseInt(string(t), 10, 64)
			if err != nil {
				return err
			}
			ls = append(ls, v)
		case "xsd:float":
			v, err := strconv.ParseFloat(string(t), 32)
			if err != nil {
				return err
			}
			fs = append(fs, float32(v))
		case "xsd:double":
			v, err := strconv.ParseFloat(string(t), 64)
			if err != nil {
				return err
			}
			ds = append(ds, v)
		}
		return nil
	}
	if !selfClose {
	loop:
		for {
			tok, err := d.sc.Next()
			if err != nil {
				return nil, errFallback
			}
			switch tok.Kind {
			case xmlq.TokEOF:
				return nil, errFallback
			case xmlq.TokText:
				if xmlq.HasAmp(tok.Text) {
					return nil, errFallback
				}
			case xmlq.TokEnd:
				if !bytes.Equal(tok.Name, parent) {
					return nil, errFallback
				}
				break loop
			case xmlq.TokStart:
				if string(xmlq.LocalName(tok.Name)) != "item" {
					if err := d.skipFrom(tok); err != nil {
						return nil, err
					}
					continue
				}
				t, _, err := d.leafText(tok.Name, tok.SelfClose)
				if err != nil {
					return nil, err
				}
				if err := addItem(t); err != nil {
					return nil, err
				}
			}
		}
	}
	switch elem {
	case "xsd:string":
		if ss == nil {
			ss = []string{}
		}
		return ss, nil
	case "xsd:boolean":
		if bs == nil {
			bs = []bool{}
		}
		return bs, nil
	case "xsd:int":
		if is == nil {
			is = []int32{}
		}
		return is, nil
	case "xsd:long":
		if ls == nil {
			ls = []int64{}
		}
		return ls, nil
	case "xsd:float":
		if fs == nil {
			fs = []float32{}
		}
		return fs, nil
	}
	if ds == nil {
		ds = []float64{}
	}
	return ds, nil
}

// packed mirrors decodePackedArray: BASE64/hex text decoded straight
// into pooled scratch, elements unpacked by the shared XDR bulk loops.
func (d *fastDecoder) packed(parent, typ, encR, lenR []byte, selfClose bool) (any, error) {
	kind := wire.KindByName(string(typ[len("hns:"):]))
	if kind == wire.KindInvalid || !kind.IsArray() {
		return nil, fmt.Errorf("soap: unknown packed array type %q", string(typ))
	}
	lenV, err := attrVal(lenR)
	if err != nil {
		return nil, err
	}
	length, aerr := strconv.Atoi(string(lenV))
	if aerr != nil || length < 0 {
		return nil, fmt.Errorf("soap: packed array %s has bad length attribute", string(xmlq.LocalName(parent)))
	}
	encV, err := attrVal(encR)
	if err != nil {
		return nil, err
	}
	text, _, err := d.leafText(parent, selfClose)
	if err != nil {
		return nil, err
	}
	var raw []byte
	var derr error
	switch string(encV) {
	case "base64":
		raw, derr = base64.StdEncoding.AppendDecode(d.raw[:0], text)
	case "hex":
		raw, derr = hex.AppendDecode(d.raw[:0], text)
	default:
		return nil, fmt.Errorf("soap: packed array %s has unknown enc", string(xmlq.LocalName(parent)))
	}
	d.raw = raw[:0]
	if derr != nil {
		return nil, fmt.Errorf("soap: packed array %s: %w", string(xmlq.LocalName(parent)), derr)
	}
	return unpackArray(kind, raw, length)
}

// leafText consumes the element opened by open (already scanned) up to
// its end tag, returning the concatenated per-run-trimmed text — the
// byte-level equivalent of Node.Text — plus the number of child
// elements (whose subtrees are validated and skipped).
func (d *fastDecoder) leafText(open []byte, selfClose bool) ([]byte, int, error) {
	d.textBuf = d.textBuf[:0]
	var only []byte // single-run zero-copy case: aliases the input buffer
	useBuf := false
	children := 0
	if selfClose {
		return nil, 0, nil
	}
	for {
		tok, err := d.sc.Next()
		if err != nil {
			return nil, 0, errFallback
		}
		switch tok.Kind {
		case xmlq.TokEOF:
			return nil, 0, errFallback
		case xmlq.TokEnd:
			if !bytes.Equal(tok.Name, open) {
				return nil, 0, errFallback
			}
			if !useBuf {
				return only, children, nil
			}
			return d.textBuf, children, nil
		case xmlq.TokStart:
			children++
			if err := d.skipFrom(tok); err != nil {
				return nil, 0, err
			}
		case xmlq.TokText:
			run := tok.Text
			if !xmlq.HasAmp(run) {
				run = xmlq.TrimSpaceBytes(run)
				if len(run) == 0 {
					continue
				}
				if !useBuf && only == nil {
					only = run
					continue
				}
				if !useBuf {
					d.textBuf = append(d.textBuf[:0], only...)
					useBuf = true
				}
				d.textBuf = append(d.textBuf, run...)
				continue
			}
			// Entity run: unescape, then re-check the result is ASCII —
			// entity expansion can smuggle in bytes the scanner never
			// sees, and non-ASCII would diverge from strings.TrimSpace's
			// Unicode whitespace handling. Trim matches the DOM order:
			// expand first, trim after.
			if !useBuf {
				d.textBuf = append(d.textBuf[:0], only...)
				only = nil
				useBuf = true
			}
			pre := len(d.textBuf)
			d.textBuf, err = xmlq.AppendUnescaped(d.textBuf, run)
			if err != nil {
				return nil, 0, errFallback
			}
			seg := d.textBuf[pre:]
			for _, b := range seg {
				if b >= 0x80 {
					return nil, 0, errFallback
				}
			}
			seg = xmlq.TrimSpaceBytes(seg)
			n := copy(d.textBuf[pre:], seg)
			d.textBuf = d.textBuf[:pre+n]
		}
	}
}

// skipFrom structurally consumes the subtree opened by tok (a start
// tag), verifying balanced, byte-identical end tags; any uncertainty
// falls back.
func (d *fastDecoder) skipFrom(tok xmlq.RawToken) error {
	if tok.SelfClose {
		return nil
	}
	d.stack = d.stack[:0]
	d.stack = append(d.stack, tok.Name)
	for len(d.stack) > 0 {
		t, err := d.sc.Next()
		if err != nil {
			return errFallback
		}
		switch t.Kind {
		case xmlq.TokEOF:
			return errFallback
		case xmlq.TokText:
			if xmlq.HasAmp(t.Text) {
				return errFallback
			}
		case xmlq.TokStart:
			if !t.SelfClose {
				d.stack = append(d.stack, t.Name)
			}
		case xmlq.TokEnd:
			if !bytes.Equal(t.Name, d.stack[len(d.stack)-1]) {
				return errFallback
			}
			d.stack = d.stack[:len(d.stack)-1]
		}
	}
	return nil
}

// pushNS records the xmlns declarations of one start tag, innermost
// last, so resolveName can search backward.
func (d *fastDecoder) pushNS(attrs []xmlq.RawAttr) {
	for _, a := range attrs {
		p := xmlq.PrefixOf(a.Name)
		if p == nil {
			if string(a.Name) == "xmlns" {
				d.ns = append(d.ns, nsBinding{prefix: nil, uri: a.Value})
			}
		} else if string(p) == "xmlns" {
			d.ns = append(d.ns, nsBinding{prefix: xmlq.LocalName(a.Name), uri: a.Value})
		}
	}
}

// resolveName maps the method element's written name to the namespace
// string encoding/xml would report: the nearest matching declaration,
// the prefix itself when undeclared, the xml/xmlns specials, or "".
func (d *fastDecoder) resolveName(name []byte) (string, error) {
	p := xmlq.PrefixOf(name)
	if p == nil {
		if string(name) == "xmlns" {
			return "", nil
		}
		for i := len(d.ns) - 1; i >= 0; i-- {
			if len(d.ns[i].prefix) == 0 {
				return d.nsValue(i)
			}
		}
		return "", nil
	}
	if string(p) == "xmlns" {
		return "xmlns", nil
	}
	if string(p) == "xml" {
		return "http://www.w3.org/XML/1998/namespace", nil
	}
	for i := len(d.ns) - 1; i >= 0; i-- {
		if bytes.Equal(d.ns[i].prefix, p) {
			return d.nsValue(i)
		}
	}
	return string(p), nil
}

func (d *fastDecoder) nsValue(i int) (string, error) {
	v, err := attrVal(d.ns[i].uri)
	if err != nil {
		return "", err
	}
	return string(v), nil
}

// attrVal materialises an attribute value: raw bytes when entity-free,
// an unescaped copy otherwise. Unknown entities fall back (the DOM
// parser errors on them).
func attrVal(raw []byte) ([]byte, error) {
	if len(raw) == 0 || !xmlq.HasAmp(raw) {
		return raw, nil
	}
	out, err := xmlq.AppendUnescaped(make([]byte, 0, len(raw)), raw)
	if err != nil {
		return nil, errFallback
	}
	return out, nil
}

func allSpace(b []byte) bool {
	for _, c := range b {
		if c != ' ' && c != '\t' && c != '\n' {
			return false
		}
	}
	return true
}
