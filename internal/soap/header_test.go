package soap

import (
	"errors"
	"net/http/httptest"
	"strings"
	"testing"

	"harness2/internal/wire"
)

func TestHeaderRoundTrip(t *testing.T) {
	c := Codec{}
	call := &Call{
		Method: "op",
		Headers: []Header{
			{Name: "transaction", Value: "txn-42", MustUnderstand: true},
			{Name: "priority", Value: int32(7)},
			{Name: "route", Value: "via <gw>", Actor: "urn:harness2:gateway"},
		},
		Params: []Param{{"x", 1.5}},
	}
	data, err := c.EncodeCall(call)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.DecodeCall(data)
	if err != nil {
		t.Fatalf("%v\n%s", err, data)
	}
	if len(got.Headers) != 3 {
		t.Fatalf("headers = %d", len(got.Headers))
	}
	h0 := got.Headers[0]
	if h0.Name != "transaction" || h0.Value.(string) != "txn-42" || !h0.MustUnderstand {
		t.Fatalf("h0 = %+v", h0)
	}
	h1 := got.Headers[1]
	if h1.Name != "priority" || h1.Value.(int32) != 7 || h1.MustUnderstand {
		t.Fatalf("h1 = %+v", h1)
	}
	h2 := got.Headers[2]
	if h2.Actor != "urn:harness2:gateway" || h2.Value.(string) != "via <gw>" {
		t.Fatalf("h2 = %+v", h2)
	}
	// Body untouched.
	if got.Params[0].Value.(float64) != 1.5 {
		t.Fatalf("params = %v", got.Params)
	}
}

func TestNoHeaderSectionWhenEmpty(t *testing.T) {
	c := Codec{}
	data, err := c.EncodeCall(&Call{Method: "op"})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "<SOAP-ENV:Header>") {
		t.Fatalf("empty header section emitted:\n%s", data)
	}
}

func TestServerMustUnderstand(t *testing.T) {
	s := NewServer()
	s.Handle("op", func(call *Call) ([]Param, error) {
		return []Param{{"ok", true}}, nil
	})
	ts := httptest.NewServer(s)
	defer ts.Close()
	c := &Client{}

	// Un-understood mustUnderstand header: MustUnderstand fault.
	_, err := c.CallRemote(ts.URL, &Call{Method: "op",
		Headers: []Header{{Name: "exotic", Value: "x", MustUnderstand: true}}})
	var f *Fault
	if !errors.As(err, &f) || f.Code != "MustUnderstand" {
		t.Fatalf("err = %v", err)
	}
	// Same header without mustUnderstand: ignored, call succeeds.
	out, err := c.CallRemote(ts.URL, &Call{Method: "op",
		Headers: []Header{{Name: "exotic", Value: "x"}}})
	if err != nil || !out[0].Value.(bool) {
		t.Fatalf("out=%v err=%v", out, err)
	}
	// Declared understood: succeeds.
	s.Understand("exotic")
	out, err = c.CallRemote(ts.URL, &Call{Method: "op",
		Headers: []Header{{Name: "exotic", Value: "x", MustUnderstand: true}}})
	if err != nil || !out[0].Value.(bool) {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

func TestHandlerSeesHeaders(t *testing.T) {
	s := NewServer()
	s.Understand("tenant")
	var seen []Header
	s.Handle("op", func(call *Call) ([]Param, error) {
		seen = call.Headers
		return nil, nil
	})
	ts := httptest.NewServer(s)
	defer ts.Close()
	c := &Client{}
	if _, err := c.CallRemote(ts.URL, &Call{Method: "op",
		Headers: []Header{{Name: "tenant", Value: "acme", MustUnderstand: true}}}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 || seen[0].Value.(string) != "acme" {
		t.Fatalf("seen = %+v", seen)
	}
}

func TestHeaderArrayValue(t *testing.T) {
	// Non-string header values use the body encoding, including packed
	// arrays, and survive the trip with attributes intact.
	c := Codec{}
	data, err := c.EncodeCall(&Call{Method: "op", Headers: []Header{
		{Name: "weights", Value: []float64{1, 2, 3}, MustUnderstand: true},
	}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.DecodeCall(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Headers) != 1 || !got.Headers[0].MustUnderstand {
		t.Fatalf("headers = %+v", got.Headers)
	}
	if !wire.Equal(got.Headers[0].Value, []float64{1, 2, 3}) {
		t.Fatalf("value = %v", got.Headers[0].Value)
	}
}
