package soap

import (
	"errors"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"harness2/internal/wire"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer()
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func TestHTTPInvoke(t *testing.T) {
	s, ts := newTestServer(t)
	s.Handle("add", func(call *Call) ([]Param, error) {
		a := call.Params[0].Value.(float64)
		b := call.Params[1].Value.(float64)
		return []Param{{"sum", a + b}}, nil
	})
	c := &Client{}
	out, err := c.CallRemote(ts.URL, &Call{Method: "add", Params: []Param{{"a", 2.0}, {"b", 3.0}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Value.(float64) != 5 {
		t.Fatalf("out = %v", out)
	}
}

func TestHTTPArrayPayload(t *testing.T) {
	s, ts := newTestServer(t)
	s.Handle("scale", func(call *Call) ([]Param, error) {
		in := call.Params[0].Value.([]float64)
		k := call.Params[1].Value.(float64)
		out := make([]float64, len(in))
		for i, v := range in {
			out[i] = v * k
		}
		return []Param{{"out", out}}, nil
	})
	c := &Client{}
	out, err := c.CallRemote(ts.URL, &Call{Method: "scale",
		Params: []Param{{"in", []float64{1, 2, 3}}, {"k", 2.0}}})
	if err != nil {
		t.Fatal(err)
	}
	if !wire.Equal(out[0].Value, []float64{2, 4, 6}) {
		t.Fatalf("out = %v", out[0].Value)
	}
}

func TestHTTPFaultPropagation(t *testing.T) {
	s, ts := newTestServer(t)
	s.Handle("boom", func(call *Call) ([]Param, error) {
		return nil, errors.New("kernel exploded")
	})
	s.Handle("faulty", func(call *Call) ([]Param, error) {
		return nil, &Fault{Code: "Client", String: "bad arguments"}
	})
	c := &Client{}
	_, err := c.CallRemote(ts.URL, &Call{Method: "boom"})
	var f *Fault
	if !errors.As(err, &f) || f.Code != "Server" || !strings.Contains(f.String, "kernel exploded") {
		t.Fatalf("err = %v", err)
	}
	_, err = c.CallRemote(ts.URL, &Call{Method: "faulty"})
	if !errors.As(err, &f) || f.Code != "Client" || f.String != "bad arguments" {
		t.Fatalf("err = %v", err)
	}
}

func TestHTTPUnknownAction(t *testing.T) {
	_, ts := newTestServer(t)
	c := &Client{}
	_, err := c.CallRemote(ts.URL, &Call{Method: "missing"})
	var f *Fault
	if !errors.As(err, &f) || f.Code != "Client" {
		t.Fatalf("err = %v", err)
	}
}

func TestHTTPMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := ts.Client().Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestHandleRemoveActions(t *testing.T) {
	s := NewServer()
	h := func(*Call) ([]Param, error) { return nil, nil }
	s.Handle("a", h)
	s.Handle("b", h)
	if got := s.Actions(); len(got) != 2 {
		t.Fatalf("actions = %v", got)
	}
	s.Remove("a")
	if got := s.Actions(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("actions = %v", got)
	}
}

func TestHTTPConcurrentClients(t *testing.T) {
	s, ts := newTestServer(t)
	s.Handle("echo", func(call *Call) ([]Param, error) {
		return call.Params, nil
	})
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(n int32) {
			defer wg.Done()
			c := &Client{}
			out, err := c.CallRemote(ts.URL, &Call{Method: "echo", Params: []Param{{"n", n}}})
			if err != nil {
				errs <- err
				return
			}
			if out[0].Value.(int32) != n {
				errs <- errors.New("echo mismatch")
			}
		}(int32(i))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestSOAPActionHeaderDispatch(t *testing.T) {
	// When SOAPAction names a different registered action, the header wins,
	// matching the SOAP 1.1 HTTP binding.
	s, ts := newTestServer(t)
	s.Handle("viaHeader", func(call *Call) ([]Param, error) {
		return []Param{{"who", "header"}}, nil
	})
	c := &Client{}
	data, err := c.Codec.EncodeCall(&Call{Method: "viaHeader"})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", ts.URL, strings.NewReader(string(data)))
	_ = req
	out, err := c.CallRemote(ts.URL, &Call{Method: "viaHeader"})
	if err != nil || out[0].Value.(string) != "header" {
		t.Fatalf("out=%v err=%v", out, err)
	}
}
