package soap

import (
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"harness2/internal/wire"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// domCodec decodes through the DOM path only.
var domCodec = Codec{DisableFastPath: true}

func callsEqual(a, b *Call) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if a.Method != b.Method || a.Namespace != b.Namespace {
		return false
	}
	if len(a.Headers) != len(b.Headers) {
		return false
	}
	for i := range a.Headers {
		x, y := a.Headers[i], b.Headers[i]
		if x.Name != y.Name || x.MustUnderstand != y.MustUnderstand || x.Actor != y.Actor {
			return false
		}
		if !wire.Equal(x.Value, y.Value) {
			return false
		}
	}
	return paramsEqual(a.Params, b.Params)
}

func respsEqual(a, b *Response) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if a.Method != b.Method {
		return false
	}
	if (a.Fault == nil) != (b.Fault == nil) {
		return false
	}
	if a.Fault != nil {
		if *a.Fault != *b.Fault {
			return false
		}
	}
	return paramsEqual(a.Params, b.Params)
}

func paramsEqual(a, b []Param) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Name != b[i].Name || !wire.Equal(a[i].Value, b[i].Value) {
			return false
		}
	}
	return true
}

// diffCheck runs one input through the fast decoder and the DOM decoder
// and enforces the differential contract: when the fast path commits to
// a result (success or definitive error), the DOM must agree.
func diffCheck(t *testing.T, data []byte) {
	t.Helper()
	fc, ferr := fastDecodeCall(data)
	dc, derr := domCodec.DecodeCall(data)
	if !errors.Is(ferr, errFallback) {
		if (ferr == nil) != (derr == nil) {
			t.Fatalf("call decode disagreement on %q:\nfast err=%v\ndom err=%v", data, ferr, derr)
		}
		if ferr == nil && !callsEqual(fc, dc) {
			t.Fatalf("call result disagreement on %q:\nfast=%+v\ndom=%+v", data, fc, dc)
		}
	}
	fr, ferr := fastDecodeResponse(data)
	dr, derr := domCodec.DecodeResponse(data)
	if !errors.Is(ferr, errFallback) {
		if (ferr == nil) != (derr == nil) {
			t.Fatalf("response decode disagreement on %q:\nfast err=%v\ndom err=%v", data, ferr, derr)
		}
		if ferr == nil && !respsEqual(fr, dr) {
			t.Fatalf("response result disagreement on %q:\nfast=%+v\ndom=%+v", data, fr, dr)
		}
	}
}

// trickyEnvelopes is the satellite regression battery: envelopes with
// comments, CDATA, namespace-prefix variation, insignificant
// whitespace, entities, and element-wise arrays. Both decode paths must
// produce identical results on every one (for some the fast path
// internally falls back — that IS the correct behaviour).
var trickyEnvelopes = []string{
	// Plain call produced by our own encoder shape.
	`<?xml version="1.0" encoding="UTF-8"?>
<SOAP-ENV:Envelope xmlns:SOAP-ENV="http://schemas.xmlsoap.org/soap/envelope/" xmlns:xsd="http://www.w3.org/2001/XMLSchema" xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance" xmlns:SOAP-ENC="http://schemas.xmlsoap.org/soap/encoding/">
  <SOAP-ENV:Body>
    <m:Add xmlns:m="urn:harness2">
      <a xsi:type="xsd:int">2</a>
      <b xsi:type="xsd:int">3</b>
    </m:Add>
  </SOAP-ENV:Body>
</SOAP-ENV:Envelope>`,
	// Comment inside the body (DOM drops it; fast path falls back).
	`<SOAP-ENV:Envelope xmlns:SOAP-ENV="http://schemas.xmlsoap.org/soap/envelope/" xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance"><SOAP-ENV:Body><m:f xmlns:m="urn:x"><!-- hello --><p xsi:type="xsd:int">7</p></m:f></SOAP-ENV:Body></SOAP-ENV:Envelope>`,
	// CDATA section carrying the value.
	`<SOAP-ENV:Envelope xmlns:SOAP-ENV="http://schemas.xmlsoap.org/soap/envelope/" xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance"><SOAP-ENV:Body><m:f xmlns:m="urn:x"><p xsi:type="xsd:string"><![CDATA[<raw & data>]]></p></m:f></SOAP-ENV:Body></SOAP-ENV:Envelope>`,
	// Unusual envelope prefix.
	`<env:Envelope xmlns:env="http://schemas.xmlsoap.org/soap/envelope/" xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance"><env:Body><q:f xmlns:q="urn:other"><p xsi:type="xsd:long">99</p></q:f></env:Body></env:Envelope>`,
	// No prefix at all, default namespace on the method element.
	`<Envelope><Body><f xmlns="urn:default"><p xsi:type="xsd:double">1.5</p></f></Body></Envelope>`,
	// Undeclared method prefix (encoding/xml reports the prefix itself).
	`<Envelope><Body><mm:f><p xsi:type="xsd:boolean">true</p></mm:f></Body></Envelope>`,
	// Whitespace everywhere, including inside tags.
	"<Envelope >\n\t<Body >\n  <m:f xmlns:m  =  \"urn:x\" >\n\t\t<p xsi:type = \"xsd:int\" > 42 </p>\n  </m:f>\n</Body ></Envelope >\n\n",
	// Element-wise arrays of every element type.
	`<Envelope><Body><m:f xmlns:m="urn:x">
	  <xs xsi:type="SOAP-ENC:Array" SOAP-ENC:arrayType="xsd:int[3]"><item>1</item><item>2</item><item>3</item></xs>
	  <ys xsi:type="SOAP-ENC:Array" SOAP-ENC:arrayType="xsd:double[2]"><item>1.25</item><item>-2e3</item></ys>
	  <zs xsi:type="SOAP-ENC:Array" SOAP-ENC:arrayType="xsd:string[2]"><item>alpha</item><item>beta&amp;gamma</item></zs>
	  <bs xsi:type="SOAP-ENC:Array" SOAP-ENC:arrayType="xsd:boolean[2]"><item>true</item><item>0</item></bs>
	  <ls xsi:type="SOAP-ENC:Array" SOAP-ENC:arrayType="xsd:long[1]"><item>-9007199254740993</item></ls>
	  <fs xsi:type="SOAP-ENC:Array" SOAP-ENC:arrayType="xsd:float[1]"><item>0.5</item></fs>
	</m:f></Body></Envelope>`,
	// Element-wise array with stray non-item children and text.
	`<Envelope><Body><m:f xmlns:m="urn:x"><a xsi:type="SOAP-ENC:Array" SOAP-ENC:arrayType="xsd:int[2]"> junk <noise/><item>5</item><other><item>ignored</item></other><item>6</item></a></m:f></Body></Envelope>`,
	// Packed arrays, base64 and hex.
	`<Envelope><Body><m:f xmlns:m="urn:x"><p xsi:type="hns:ArrayOfDouble" enc="base64" length="2">P/AAAAAAAABAAAAAAAAAAA==</p><q xsi:type="hns:ArrayOfInt" enc="hex" length="2">0000000100000002</q></m:f></Body></Envelope>`,
	// Headers: mustUnderstand, actor, struct-valued entry, response-side skip.
	`<Envelope xmlns:SOAP-ENV="http://schemas.xmlsoap.org/soap/envelope/"><SOAP-ENV:Header><auth xsi:type="xsd:string" SOAP-ENV:mustUnderstand="1" SOAP-ENV:actor="urn:me">tok&lt;1&gt;</auth><ctx xsi:type="m:Ctx"><id xsi:type="xsd:int">4</id></ctx></SOAP-ENV:Header><SOAP-ENV:Body><m:f xmlns:m="urn:x"></m:f></SOAP-ENV:Body></Envelope>`,
	// Fault response with prefixed children and detail.
	`<Envelope><Body><SOAP-ENV:Fault><faultcode>SOAP-ENV:Server</faultcode><faultstring>boom &amp; bust</faultstring><detail>ctx</detail></SOAP-ENV:Fault></Body></Envelope>`,
	// Fault with duplicate children: first one wins in both paths.
	`<Envelope><Body><Fault><faultcode>A</faultcode><faultcode>B</faultcode><faultstring>s</faultstring></Fault></Body></Envelope>`,
	// Nested struct with entity-bearing strings.
	`<Envelope><Body><m:f xmlns:m="urn:x"><s xsi:type="m:Outer"><inner xsi:type="m:Inner"><msg xsi:type="xsd:string">a&amp;b&#33;</msg></inner><n xsi:type="xsd:long">8</n></s></m:f></Body></Envelope>`,
	// Untyped element with no children decodes as a string.
	`<Envelope><Body><m:f xmlns:m="urn:x"><p>bare text</p></m:f></Body></Envelope>`,
	// Untyped element WITH children: definitive error on both paths.
	`<Envelope><Body><m:f xmlns:m="urn:x"><p><q/></p></m:f></Body></Envelope>`,
	// Scalar with ignored child elements: text runs concatenate.
	`<Envelope><Body><m:f xmlns:m="urn:x"><p xsi:type="xsd:int"> 1 <gap/> 2 </p></m:f></Body></Envelope>`,
	// Extra envelope children and duplicate Body: first Body wins.
	`<Envelope><Other><deep><er/></deep></Other><Body><m:f xmlns:m="urn:x"/></Body><Body><n:g xmlns:n="urn:y"/></Body></Envelope>`,
	// Processing instruction between elements.
	`<Envelope><Body><?pi data?><m:f xmlns:m="urn:x"><p xsi:type="xsd:int">1<?mid?>2</p></m:f></Body></Envelope>`,
	// Self-closing everything.
	`<Envelope><Body><f/></Body></Envelope>`,
	// Numeric character references, decimal and hex.
	`<Envelope><Body><m:f xmlns:m="urn:x"><p xsi:type="xsd:string">&#104;&#x69;</p></m:f></Body></Envelope>`,
	// Non-ASCII text: fast path must fall back, results still equal.
	`<Envelope><Body><m:f xmlns:m="urn:x"><p xsi:type="xsd:string">héllo</p></m:f></Body></Envelope>`,
	// Non-ASCII smuggled through a character reference.
	`<Envelope><Body><m:f xmlns:m="urn:x"><p xsi:type="xsd:string">&#233;</p></m:f></Body></Envelope>`,
	// xmlns:type shadows the xsi:type lookup by local name in the DOM.
	`<Envelope><Body><m:f xmlns:m="urn:x"><p xmlns:type="u" xsi:type="xsd:int">3</p></m:f></Body></Envelope>`,
	// Attribute-order variation: first "type" local wins.
	`<Envelope><Body><m:f xmlns:m="urn:x"><p xsi:type="xsd:int" foo:type="xsd:long">3</p></m:f></Body></Envelope>`,
	// Bad values: both paths must error identically.
	`<Envelope><Body><m:f xmlns:m="urn:x"><p xsi:type="xsd:int">twelve</p></m:f></Body></Envelope>`,
	`<Envelope><Body><m:f xmlns:m="urn:x"><p xsi:type="hns:ArrayOfDouble" enc="base64" length="9">AAAA</p></m:f></Body></Envelope>`,
	`<Envelope><Body><m:f xmlns:m="urn:x"><p xsi:type="hns:ArrayOfDouble" enc="wat" length="0"></p></m:f></Body></Envelope>`,
	`<Envelope><Body><m:f xmlns:m="urn:x"><p xsi:type="nope">x</p></m:f></Body></Envelope>`,
	// Response envelope.
	`<Envelope><Body><m:AddResponse xmlns:m="urn:harness2"><result xsi:type="xsd:int">5</result></m:AddResponse></Body></Envelope>`,
	// Trailing junk after the root element.
	`<Envelope><Body><f/></Body></Envelope>  ` + "\n",
	`<Envelope><Body><f/></Body></Envelope><more/>`,
}

// TestFastPathGoldenEnvelopes runs the regression battery through both
// decode paths and requires identical results.
func TestFastPathGoldenEnvelopes(t *testing.T) {
	for i, env := range trickyEnvelopes {
		t.Run(string(rune('a'+i%26))+"_"+itoa(i), func(t *testing.T) {
			diffCheck(t, []byte(env))
		})
	}
}

func itoa(i int) string {
	return string([]byte{byte('0' + i/10), byte('0' + i%10)})
}

// TestFastPathTakesOwnTraffic guards against silent fallback: envelopes
// produced by our own encoders must decode on the fast path, not fall
// back to the DOM.
func TestFastPathTakesOwnTraffic(t *testing.T) {
	for _, arrays := range []ArrayEncoding{EncodeBase64, EncodeElementwise, EncodeHex} {
		c := Codec{Arrays: arrays}
		call := &Call{
			Method: "Mix",
			Headers: []Header{
				{Name: "auth", Value: "secret", MustUnderstand: true, Actor: "urn:me"},
				{Name: "seq", Value: int64(42)},
			},
			Params: []Param{
				{"b", true},
				{"i", int32(-7)},
				{"l", int64(1) << 40},
				{"f", float32(0.25)},
				{"d", 3.25},
				{"s", "a<b>&c"},
				{"raw", []byte{0, 1, 2, 254}},
				{"xs", []float64{1, 2.5, -3}},
				{"ys", []int32{4, 5}},
				{"strs", []string{"x", "y&z"}},
				{"st", wire.NewStruct("Point").Set("x", int32(1)).Set("y", 2.5)},
			},
		}
		data, err := c.EncodeCall(call)
		if err != nil {
			t.Fatal(err)
		}
		got, err := fastDecodeCall(data)
		if err != nil {
			t.Fatalf("arrays=%v: fast path declined own encoding: %v", arrays, err)
		}
		dom, err := domCodec.DecodeCall(data)
		if err != nil {
			t.Fatal(err)
		}
		if !callsEqual(got, dom) {
			t.Fatalf("arrays=%v: fast=%+v dom=%+v", arrays, got, dom)
		}
		rdata, err := c.EncodeResponse("Mix", call.Params)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fastDecodeResponse(rdata); err != nil {
			t.Fatalf("arrays=%v: fast path declined own response: %v", arrays, err)
		}
		fdata := c.EncodeFault(&Fault{Code: "Server", String: "s>t", Detail: "d"})
		fr, err := fastDecodeResponse(fdata)
		if err != nil {
			t.Fatalf("arrays=%v: fast path declined fault: %v", arrays, err)
		}
		if fr.Fault == nil || fr.Fault.Code != "Server" || fr.Fault.String != "s>t" || fr.Fault.Detail != "d" {
			t.Fatalf("fault mismatch: %+v", fr.Fault)
		}
	}
}

// TestEncodeGolden freezes the envelope byte format. The golden file
// locks both interop (other stacks parse these bytes) and the
// append-based encoder against drift; regenerate with -update.
func TestEncodeGolden(t *testing.T) {
	call := &Call{
		Method:    "Survey",
		Namespace: "urn:harness2",
		Headers: []Header{
			{Name: "auth", Value: "tok<1>", MustUnderstand: true, Actor: "urn:me&you"},
			{Name: "seq", Value: int64(7)},
		},
		Params: []Param{
			{"flag", true},
			{"count", int32(-12)},
			{"big", int64(1) << 40},
			{"ratio", float32(0.5)},
			{"exact", 6.125},
			{"label", "x<y>&z"},
			{"blob", []byte{0xDE, 0xAD, 0xBE, 0xEF}},
			{"grid", []float64{1, -2.5, 3e10}},
			{"ids", []int32{1, 2, 3}},
			{"names", []string{"a", "b&c"}},
			{"pt", wire.NewStruct("Point").Set("x", int32(1)).Set("y", 2.5)},
		},
	}
	var got strings.Builder
	for _, arrays := range []ArrayEncoding{EncodeBase64, EncodeElementwise, EncodeHex} {
		c := Codec{Arrays: arrays}
		data, err := c.EncodeCall(call)
		if err != nil {
			t.Fatal(err)
		}
		got.WriteString("=== call arrays=" + arrays.String() + "\n")
		got.Write(data)
	}
	c := Codec{}
	rdata, err := c.EncodeResponse("Survey", []Param{{"result", []float64{4, 5}}})
	if err != nil {
		t.Fatal(err)
	}
	got.WriteString("=== response\n")
	got.Write(rdata)
	got.WriteString("=== fault\n")
	got.Write(c.EncodeFault(&Fault{Code: "Client", String: "bad & wrong", Detail: "<detail>"}))

	path := filepath.Join("testdata", "envelopes.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if got.String() != string(want) {
		t.Fatalf("envelope bytes drifted from golden; diff against %s", path)
	}
}

// FuzzFastDecodeDifferential is the satellite differential target: on
// every input the fast path must agree with the DOM path whenever it
// does not fall back.
func FuzzFastDecodeDifferential(f *testing.F) {
	for _, env := range trickyEnvelopes {
		f.Add([]byte(env))
	}
	c := Codec{}
	seed, err := c.EncodeCall(&Call{
		Method:  "m",
		Headers: []Header{{Name: "h", Value: "v", MustUnderstand: true}},
		Params: []Param{
			{"a", []float64{1, 2}},
			{"s", wire.NewStruct("T").Set("x", int32(1))},
		},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		diffCheck(t, data)
	})
}
