package soap

// HTTP-plane counterpart of the XDR v3 wire compression (S33): a standard
// Content-Encoding: gzip middleware for the registry's SOAP surface. The
// negotiation is pure HTTP — the client's Accept-Encoding header replaces
// the XDR dial-time codec word — so stale peers interoperate for free.

import (
	"compress/gzip"
	"net/http"
	"strings"
	"sync"
)

// gzipMinLen is the response-size floor below which compression is not
// attempted: tiny SOAP faults and probes cost more in header bytes and
// CPU than they save.
const gzipMinLen = 512

var gzipWriters = sync.Pool{
	New: func() any {
		zw, _ := gzip.NewWriterLevel(nil, gzip.BestSpeed)
		return zw
	},
}

// gzipResponseWriter buffers the status until the first body write so it
// can decide raw-versus-gzip once the handler has set Content-Type, then
// streams through a pooled gzip.Writer.
type gzipResponseWriter struct {
	http.ResponseWriter
	zw          *gzip.Writer
	status      int
	wroteHeader bool
	// small first-write buffer so sub-floor responses ship raw
	pending []byte
	decided bool
	useGzip bool
}

func (g *gzipResponseWriter) WriteHeader(status int) {
	if g.wroteHeader {
		return
	}
	g.status = status
	g.wroteHeader = true
}

func (g *gzipResponseWriter) Write(p []byte) (int, error) {
	if !g.wroteHeader {
		g.WriteHeader(http.StatusOK)
	}
	if !g.decided {
		g.pending = append(g.pending, p...)
		if len(g.pending) >= gzipMinLen {
			g.decide(true) // flushes the buffered prefix
		}
		return len(p), nil
	}
	if g.useGzip {
		return g.zw.Write(p)
	}
	return g.ResponseWriter.Write(p)
}

// decide commits to gzip or raw, flushes any buffered prefix, and emits
// the response headers.
func (g *gzipResponseWriter) decide(useGzip bool) {
	g.decided = true
	g.useGzip = useGzip
	h := g.ResponseWriter.Header()
	if useGzip {
		h.Set("Content-Encoding", "gzip")
		h.Del("Content-Length")
		h.Add("Vary", "Accept-Encoding")
		g.zw = gzipWriters.Get().(*gzip.Writer)
		g.zw.Reset(g.ResponseWriter)
	}
	g.ResponseWriter.WriteHeader(g.status)
	if len(g.pending) > 0 {
		if useGzip {
			_, _ = g.zw.Write(g.pending)
		} else {
			_, _ = g.ResponseWriter.Write(g.pending)
		}
		g.pending = nil
	}
}

// finish flushes whatever path was chosen and returns the pooled writer.
func (g *gzipResponseWriter) finish() {
	if !g.decided {
		// Response never reached the floor (or was empty): ship raw.
		if !g.wroteHeader {
			return // handler wrote nothing; leave the writer untouched
		}
		g.decide(false)
		return
	}
	if g.useGzip {
		_ = g.zw.Close()
		gzipWriters.Put(g.zw)
		g.zw = nil
	}
}

// Gzip wraps next with response compression for clients that send
// Accept-Encoding: gzip. Responses below a size floor ship identity, so
// the middleware is safe to leave on unconditionally.
func Gzip(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.Contains(r.Header.Get("Accept-Encoding"), "gzip") ||
			r.Header.Get("Range") != "" {
			next.ServeHTTP(w, r)
			return
		}
		gw := &gzipResponseWriter{ResponseWriter: w}
		defer gw.finish()
		next.ServeHTTP(gw, r)
	})
}
