// Package soap implements the SOAP 1.1 subset that backs the HARNESS II
// standard binding: RPC-style envelopes, typed parameter encoding, faults,
// and an HTTP transport.
//
// The paper's data-encoding critique concerns exactly this code path:
// "SOAP, being an XML-based protocol, is suitable mostly for exchanging
// structured data in reasonably small quantities ... the default BASE64
// encoding adopted by SOAP for XSD data types introduces unacceptable
// overheads for scientific data both in terms of the network bandwidth and
// the encoding/decoding time". The package therefore supports three array
// encodings — element-wise XML, BASE64-packed, and hex-packed — so the
// E2 experiment can measure each against the XDR binding.
package soap

import (
	"bytes"
	"encoding/base64"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"harness2/internal/wire"
	"harness2/internal/xmlq"
)

// ArrayEncoding selects how numeric arrays are carried inside envelopes.
type ArrayEncoding int

const (
	// EncodeBase64 packs the raw big-endian element bytes in BASE64 text,
	// the default the paper attributes to SOAP toolkits of the era.
	EncodeBase64 ArrayEncoding = iota
	// EncodeElementwise writes one XML element per array element,
	// SOAP-ENC:Array style.
	EncodeElementwise
	// EncodeHex packs raw element bytes as hexadecimal text (ablation).
	EncodeHex
)

// String names the encoding for reports.
func (a ArrayEncoding) String() string {
	switch a {
	case EncodeBase64:
		return "base64"
	case EncodeElementwise:
		return "elementwise"
	case EncodeHex:
		return "hex"
	}
	return "unknown"
}

// Param is a named RPC parameter.
type Param struct {
	Name  string
	Value any
}

// Header is one SOAP header entry. Headers carry out-of-band context —
// routing hints, credentials, transaction identity — and the SOAP 1.1
// mustUnderstand attribute obliges the receiver to fault rather than
// silently ignore an entry it does not support.
type Header struct {
	Name           string
	Value          any
	MustUnderstand bool
	// Actor is the SOAP 1.1 actor URI; empty targets the final receiver.
	Actor string
}

// Call is an RPC request: a method within a namespace plus parameters and
// optional header entries.
type Call struct {
	Method    string
	Namespace string
	Headers   []Header
	Params    []Param
}

// Response carries either return values or a fault.
type Response struct {
	Method string // echoed method name with "Response" suffix stripped
	Params []Param
	Fault  *Fault
}

// Fault is a SOAP 1.1 fault element.
type Fault struct {
	Code   string // e.g. "Client", "Server"
	String string // human-readable description
	Detail string
}

// Error implements the error interface so faults can flow as Go errors.
func (f *Fault) Error() string {
	return fmt.Sprintf("soap fault %s: %s", f.Code, f.String)
}

// Codec encodes and decodes envelopes with a fixed array encoding.
// The zero value uses BASE64 array packing.
type Codec struct {
	Arrays ArrayEncoding
}

const (
	envNS = "http://schemas.xmlsoap.org/soap/envelope/"
	xsdNS = "http://www.w3.org/2001/XMLSchema"
	xsiNS = "http://www.w3.org/2001/XMLSchema-instance"
	encNS = "http://schemas.xmlsoap.org/soap/encoding/"
)

// EncodeCall serialises an RPC request envelope.
func (c Codec) EncodeCall(call *Call) ([]byte, error) {
	var b bytes.Buffer
	c.writePrologWithHeaders(&b, call.Headers)
	ns := call.Namespace
	if ns == "" {
		ns = "urn:harness2"
	}
	fmt.Fprintf(&b, "    <m:%s xmlns:m=%q>\n", call.Method, ns)
	for _, p := range call.Params {
		if err := c.writeValue(&b, p.Name, p.Value, 6); err != nil {
			return nil, fmt.Errorf("soap: encode call %s: %w", call.Method, err)
		}
	}
	fmt.Fprintf(&b, "    </m:%s>\n", call.Method)
	c.writeEpilog(&b)
	return b.Bytes(), nil
}

// EncodeResponse serialises an RPC response envelope for method.
func (c Codec) EncodeResponse(method string, params []Param) ([]byte, error) {
	var b bytes.Buffer
	c.writeProlog(&b)
	fmt.Fprintf(&b, "    <m:%sResponse xmlns:m=\"urn:harness2\">\n", method)
	for _, p := range params {
		if err := c.writeValue(&b, p.Name, p.Value, 6); err != nil {
			return nil, fmt.Errorf("soap: encode response %s: %w", method, err)
		}
	}
	fmt.Fprintf(&b, "    </m:%sResponse>\n", method)
	c.writeEpilog(&b)
	return b.Bytes(), nil
}

// EncodeFault serialises a fault envelope.
func (c Codec) EncodeFault(f *Fault) []byte {
	var b bytes.Buffer
	c.writeProlog(&b)
	b.WriteString("    <SOAP-ENV:Fault>\n")
	fmt.Fprintf(&b, "      <faultcode>SOAP-ENV:%s</faultcode>\n", escape(f.Code))
	fmt.Fprintf(&b, "      <faultstring>%s</faultstring>\n", escape(f.String))
	if f.Detail != "" {
		fmt.Fprintf(&b, "      <detail>%s</detail>\n", escape(f.Detail))
	}
	b.WriteString("    </SOAP-ENV:Fault>\n")
	c.writeEpilog(&b)
	return b.Bytes()
}

func (c Codec) writeProlog(b *bytes.Buffer) { c.writePrologWithHeaders(b, nil) }

func (c Codec) writePrologWithHeaders(b *bytes.Buffer, headers []Header) {
	b.WriteString(`<?xml version="1.0" encoding="UTF-8"?>` + "\n")
	fmt.Fprintf(b, "<SOAP-ENV:Envelope xmlns:SOAP-ENV=%q xmlns:xsd=%q xmlns:xsi=%q xmlns:SOAP-ENC=%q>\n",
		envNS, xsdNS, xsiNS, encNS)
	if len(headers) > 0 {
		b.WriteString("  <SOAP-ENV:Header>\n")
		for _, h := range headers {
			attrs := ""
			if h.MustUnderstand {
				attrs += ` SOAP-ENV:mustUnderstand="1"`
			}
			if h.Actor != "" {
				attrs += fmt.Sprintf(" SOAP-ENV:actor=%q", escapeHdr(h.Actor))
			}
			if s, ok := h.Value.(string); ok {
				fmt.Fprintf(b, "    <%s xsi:type=\"xsd:string\"%s>%s</%s>\n",
					h.Name, attrs, escape(s), h.Name)
			} else {
				// Non-string header values reuse the body value encoding,
				// then splice the attributes into the opening tag.
				var hb bytes.Buffer
				if err := c.writeValue(&hb, h.Name, h.Value, 4); err == nil {
					entry := hb.String()
					if attrs != "" {
						entry = strings.Replace(entry, "<"+h.Name+" ", "<"+h.Name+attrs+" ", 1)
					}
					b.WriteString(entry)
				}
			}
		}
		b.WriteString("  </SOAP-ENV:Header>\n")
	}
	b.WriteString("  <SOAP-ENV:Body>\n")
}

func escapeHdr(s string) string { return escape(s) }

func (c Codec) writeEpilog(b *bytes.Buffer) {
	b.WriteString("  </SOAP-ENV:Body>\n")
	b.WriteString("</SOAP-ENV:Envelope>\n")
}

// scalarType maps scalar kinds to xsi:type names.
func scalarType(k wire.Kind) string {
	switch k {
	case wire.KindBool:
		return "xsd:boolean"
	case wire.KindInt32:
		return "xsd:int"
	case wire.KindInt64:
		return "xsd:long"
	case wire.KindFloat32:
		return "xsd:float"
	case wire.KindFloat64:
		return "xsd:double"
	case wire.KindString:
		return "xsd:string"
	case wire.KindBytes:
		return "xsd:base64Binary"
	}
	return ""
}

func arrayTypeName(elem wire.Kind) string {
	switch elem {
	case wire.KindBool:
		return "xsd:boolean"
	case wire.KindInt32:
		return "xsd:int"
	case wire.KindInt64:
		return "xsd:long"
	case wire.KindFloat32:
		return "xsd:float"
	case wire.KindFloat64:
		return "xsd:double"
	case wire.KindString:
		return "xsd:string"
	}
	return ""
}

func (c Codec) writeValue(b *bytes.Buffer, name string, v any, indent int) error {
	if err := wire.Check(v); err != nil {
		return err
	}
	pad := strings.Repeat(" ", indent)
	k := wire.KindOf(v)
	switch k {
	case wire.KindBool:
		fmt.Fprintf(b, "%s<%s xsi:type=\"xsd:boolean\">%t</%s>\n", pad, name, v.(bool), name)
	case wire.KindInt32:
		fmt.Fprintf(b, "%s<%s xsi:type=\"xsd:int\">%d</%s>\n", pad, name, v.(int32), name)
	case wire.KindInt64:
		fmt.Fprintf(b, "%s<%s xsi:type=\"xsd:long\">%d</%s>\n", pad, name, v.(int64), name)
	case wire.KindFloat32:
		fmt.Fprintf(b, "%s<%s xsi:type=\"xsd:float\">%s</%s>\n", pad, name,
			strconv.FormatFloat(float64(v.(float32)), 'g', -1, 32), name)
	case wire.KindFloat64:
		fmt.Fprintf(b, "%s<%s xsi:type=\"xsd:double\">%s</%s>\n", pad, name,
			strconv.FormatFloat(v.(float64), 'g', -1, 64), name)
	case wire.KindString:
		fmt.Fprintf(b, "%s<%s xsi:type=\"xsd:string\">%s</%s>\n", pad, name, escape(v.(string)), name)
	case wire.KindBytes:
		fmt.Fprintf(b, "%s<%s xsi:type=\"xsd:base64Binary\">%s</%s>\n", pad, name,
			base64.StdEncoding.EncodeToString(v.([]byte)), name)
	case wire.KindStringArray:
		// String arrays are always element-wise; packing is meaningless.
		a := v.([]string)
		fmt.Fprintf(b, "%s<%s xsi:type=\"SOAP-ENC:Array\" SOAP-ENC:arrayType=\"xsd:string[%d]\">\n", pad, name, len(a))
		for _, s := range a {
			fmt.Fprintf(b, "%s  <item>%s</item>\n", pad, escape(s))
		}
		fmt.Fprintf(b, "%s</%s>\n", pad, name)
	case wire.KindBoolArray, wire.KindInt32Array, wire.KindInt64Array,
		wire.KindFloat32Array, wire.KindFloat64Array:
		return c.writeNumericArray(b, name, v, k, pad)
	case wire.KindStruct:
		s := v.(*wire.Struct)
		fmt.Fprintf(b, "%s<%s xsi:type=\"m:%s\">\n", pad, name, s.Name)
		for _, f := range s.Fields {
			if err := c.writeValue(b, f.Name, f.Value, indent+2); err != nil {
				return err
			}
		}
		fmt.Fprintf(b, "%s</%s>\n", pad, name)
	default:
		return fmt.Errorf("soap: cannot encode kind %v", k)
	}
	return nil
}

func (c Codec) writeNumericArray(b *bytes.Buffer, name string, v any, k wire.Kind, pad string) error {
	n := arrayLen(v)
	if c.Arrays == EncodeElementwise {
		fmt.Fprintf(b, "%s<%s xsi:type=\"SOAP-ENC:Array\" SOAP-ENC:arrayType=\"%s[%d]\">\n",
			pad, name, arrayTypeName(k.Elem()), n)
		writeItems(b, v, pad)
		fmt.Fprintf(b, "%s</%s>\n", pad, name)
		return nil
	}
	raw := packArray(v)
	var text string
	var encName string
	if c.Arrays == EncodeHex {
		text = hex.EncodeToString(raw)
		encName = "hex"
	} else {
		text = base64.StdEncoding.EncodeToString(raw)
		encName = "base64"
	}
	fmt.Fprintf(b, "%s<%s xsi:type=\"hns:%s\" enc=%q length=\"%d\">%s</%s>\n",
		pad, name, k.String(), encName, n, text, name)
	return nil
}

func writeItems(b *bytes.Buffer, v any, pad string) {
	switch a := v.(type) {
	case []bool:
		for _, x := range a {
			fmt.Fprintf(b, "%s  <item>%t</item>\n", pad, x)
		}
	case []int32:
		for _, x := range a {
			fmt.Fprintf(b, "%s  <item>%d</item>\n", pad, x)
		}
	case []int64:
		for _, x := range a {
			fmt.Fprintf(b, "%s  <item>%d</item>\n", pad, x)
		}
	case []float32:
		for _, x := range a {
			fmt.Fprintf(b, "%s  <item>%s</item>\n", pad, strconv.FormatFloat(float64(x), 'g', -1, 32))
		}
	case []float64:
		for _, x := range a {
			fmt.Fprintf(b, "%s  <item>%s</item>\n", pad, strconv.FormatFloat(x, 'g', -1, 64))
		}
	}
}

func arrayLen(v any) int {
	switch a := v.(type) {
	case []bool:
		return len(a)
	case []int32:
		return len(a)
	case []int64:
		return len(a)
	case []float32:
		return len(a)
	case []float64:
		return len(a)
	case []string:
		return len(a)
	}
	return 0
}

// packArray serialises numeric array elements as big-endian raw bytes.
func packArray(v any) []byte {
	switch a := v.(type) {
	case []bool:
		out := make([]byte, len(a))
		for i, x := range a {
			if x {
				out[i] = 1
			}
		}
		return out
	case []int32:
		out := make([]byte, 4*len(a))
		for i, x := range a {
			binary.BigEndian.PutUint32(out[4*i:], uint32(x))
		}
		return out
	case []int64:
		out := make([]byte, 8*len(a))
		for i, x := range a {
			binary.BigEndian.PutUint64(out[8*i:], uint64(x))
		}
		return out
	case []float32:
		out := make([]byte, 4*len(a))
		for i, x := range a {
			binary.BigEndian.PutUint32(out[4*i:], math.Float32bits(x))
		}
		return out
	case []float64:
		out := make([]byte, 8*len(a))
		for i, x := range a {
			binary.BigEndian.PutUint64(out[8*i:], math.Float64bits(x))
		}
		return out
	}
	return nil
}

func unpackArray(kind wire.Kind, raw []byte, n int) (any, error) {
	switch kind {
	case wire.KindBoolArray:
		if len(raw) != n {
			return nil, fmt.Errorf("soap: bool array length mismatch")
		}
		out := make([]bool, n)
		for i, b := range raw {
			out[i] = b != 0
		}
		return out, nil
	case wire.KindInt32Array:
		if len(raw) != 4*n {
			return nil, fmt.Errorf("soap: int array length mismatch")
		}
		out := make([]int32, n)
		for i := range out {
			out[i] = int32(binary.BigEndian.Uint32(raw[4*i:]))
		}
		return out, nil
	case wire.KindInt64Array:
		if len(raw) != 8*n {
			return nil, fmt.Errorf("soap: long array length mismatch")
		}
		out := make([]int64, n)
		for i := range out {
			out[i] = int64(binary.BigEndian.Uint64(raw[8*i:]))
		}
		return out, nil
	case wire.KindFloat32Array:
		if len(raw) != 4*n {
			return nil, fmt.Errorf("soap: float array length mismatch")
		}
		out := make([]float32, n)
		for i := range out {
			out[i] = math.Float32frombits(binary.BigEndian.Uint32(raw[4*i:]))
		}
		return out, nil
	case wire.KindFloat64Array:
		if len(raw) != 8*n {
			return nil, fmt.Errorf("soap: double array length mismatch")
		}
		out := make([]float64, n)
		for i := range out {
			out[i] = math.Float64frombits(binary.BigEndian.Uint64(raw[8*i:]))
		}
		return out, nil
	}
	return nil, fmt.Errorf("soap: cannot unpack kind %v", kind)
}

func escape(s string) string {
	if !strings.ContainsAny(s, "&<>") {
		return s
	}
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// DecodeCall parses a request envelope into a Call, including any header
// entries.
func (c Codec) DecodeCall(data []byte) (*Call, error) {
	root, err := c.envelope(data)
	if err != nil {
		return nil, err
	}
	body, err := c.bodyOf(root)
	if err != nil {
		return nil, err
	}
	if body.Local == "Fault" {
		return nil, fmt.Errorf("soap: request envelope contains a fault")
	}
	call := &Call{Method: body.Local, Namespace: body.Space}
	if hdr := root.Child("Header"); hdr != nil {
		for _, hn := range hdr.Children {
			v, err := c.decodeValue(hn)
			if err != nil {
				return nil, fmt.Errorf("soap: header %s: %w", hn.Local, err)
			}
			call.Headers = append(call.Headers, Header{
				Name:           hn.Local,
				Value:          v,
				MustUnderstand: hn.AttrOr("mustUnderstand", "") == "1",
				Actor:          hn.AttrOr("actor", ""),
			})
		}
	}
	call.Params, err = c.decodeParams(body)
	if err != nil {
		return nil, err
	}
	return call, nil
}

// DecodeResponse parses a response envelope. A fault envelope yields a
// Response whose Fault field is set (and no error).
func (c Codec) DecodeResponse(data []byte) (*Response, error) {
	body, err := c.bodyElement(data)
	if err != nil {
		return nil, err
	}
	if body.Local == "Fault" {
		f := &Fault{}
		if fc := body.Child("faultcode"); fc != nil {
			f.Code = strings.TrimPrefix(fc.Text, "SOAP-ENV:")
		}
		if fs := body.Child("faultstring"); fs != nil {
			f.String = fs.Text
		}
		if d := body.Child("detail"); d != nil {
			f.Detail = d.Text
		}
		return &Response{Fault: f}, nil
	}
	resp := &Response{Method: strings.TrimSuffix(body.Local, "Response")}
	resp.Params, err = c.decodeParams(body)
	if err != nil {
		return nil, err
	}
	return resp, nil
}

func (c Codec) bodyElement(data []byte) (*xmlq.Node, error) {
	root, err := c.envelope(data)
	if err != nil {
		return nil, err
	}
	return c.bodyOf(root)
}

func (c Codec) envelope(data []byte) (*xmlq.Node, error) {
	root, err := xmlq.Parse(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("soap: %w", err)
	}
	if root.Local != "Envelope" {
		return nil, fmt.Errorf("soap: root element is %q, want Envelope", root.Local)
	}
	return root, nil
}

func (c Codec) bodyOf(root *xmlq.Node) (*xmlq.Node, error) {
	body := root.Child("Body")
	if body == nil {
		return nil, fmt.Errorf("soap: envelope has no Body")
	}
	if len(body.Children) != 1 {
		return nil, fmt.Errorf("soap: Body must contain exactly one element, has %d", len(body.Children))
	}
	return body.Children[0], nil
}

func (c Codec) decodeParams(parent *xmlq.Node) ([]Param, error) {
	params := make([]Param, 0, len(parent.Children))
	for _, child := range parent.Children {
		v, err := c.decodeValue(child)
		if err != nil {
			return nil, err
		}
		params = append(params, Param{Name: child.Local, Value: v})
	}
	return params, nil
}

func (c Codec) decodeValue(n *xmlq.Node) (any, error) {
	xsiType := n.AttrOr("type", "")
	switch {
	case xsiType == "xsd:boolean":
		return strconv.ParseBool(n.Text)
	case xsiType == "xsd:int":
		v, err := strconv.ParseInt(n.Text, 10, 32)
		return int32(v), err
	case xsiType == "xsd:long":
		return strconv.ParseInt(n.Text, 10, 64)
	case xsiType == "xsd:float":
		v, err := strconv.ParseFloat(n.Text, 32)
		return float32(v), err
	case xsiType == "xsd:double":
		return strconv.ParseFloat(n.Text, 64)
	case xsiType == "xsd:string" || (xsiType == "" && len(n.Children) == 0):
		return n.Text, nil
	case xsiType == "xsd:base64Binary":
		return base64.StdEncoding.DecodeString(n.Text)
	case strings.HasSuffix(xsiType, ":Array") || xsiType == "Array":
		return c.decodeElementwiseArray(n)
	case strings.HasPrefix(xsiType, "hns:ArrayOf"):
		return c.decodePackedArray(n, xsiType)
	case strings.Contains(xsiType, ":"):
		// Treat any other prefixed type as a struct.
		return c.decodeStruct(n, xsiType)
	}
	return nil, fmt.Errorf("soap: cannot decode element %s with type %q", n.Local, xsiType)
}

func (c Codec) decodeStruct(n *xmlq.Node, xsiType string) (any, error) {
	name := xsiType
	if i := strings.IndexByte(name, ':'); i >= 0 {
		name = name[i+1:]
	}
	s := wire.NewStruct(name)
	for _, child := range n.Children {
		v, err := c.decodeValue(child)
		if err != nil {
			return nil, err
		}
		s.Set(child.Local, v)
	}
	return s, nil
}

func (c Codec) decodeElementwiseArray(n *xmlq.Node) (any, error) {
	at := n.AttrOr("arrayType", "")
	i := strings.IndexByte(at, '[')
	if i < 0 {
		return nil, fmt.Errorf("soap: array %s missing arrayType", n.Local)
	}
	elemName := at[:i]
	items := n.ChildrenNamed("item")
	switch elemName {
	case "xsd:string":
		out := make([]string, len(items))
		for j, it := range items {
			out[j] = it.Text
		}
		return out, nil
	case "xsd:boolean":
		out := make([]bool, len(items))
		for j, it := range items {
			v, err := strconv.ParseBool(it.Text)
			if err != nil {
				return nil, err
			}
			out[j] = v
		}
		return out, nil
	case "xsd:int":
		out := make([]int32, len(items))
		for j, it := range items {
			v, err := strconv.ParseInt(it.Text, 10, 32)
			if err != nil {
				return nil, err
			}
			out[j] = int32(v)
		}
		return out, nil
	case "xsd:long":
		out := make([]int64, len(items))
		for j, it := range items {
			v, err := strconv.ParseInt(it.Text, 10, 64)
			if err != nil {
				return nil, err
			}
			out[j] = v
		}
		return out, nil
	case "xsd:float":
		out := make([]float32, len(items))
		for j, it := range items {
			v, err := strconv.ParseFloat(it.Text, 32)
			if err != nil {
				return nil, err
			}
			out[j] = float32(v)
		}
		return out, nil
	case "xsd:double":
		out := make([]float64, len(items))
		for j, it := range items {
			v, err := strconv.ParseFloat(it.Text, 64)
			if err != nil {
				return nil, err
			}
			out[j] = v
		}
		return out, nil
	}
	return nil, fmt.Errorf("soap: unsupported arrayType %q", at)
}

func (c Codec) decodePackedArray(n *xmlq.Node, xsiType string) (any, error) {
	kindName := strings.TrimPrefix(xsiType, "hns:")
	kind := wire.KindByName(kindName)
	if kind == wire.KindInvalid || !kind.IsArray() {
		return nil, fmt.Errorf("soap: unknown packed array type %q", xsiType)
	}
	length, err := strconv.Atoi(n.AttrOr("length", ""))
	if err != nil || length < 0 {
		return nil, fmt.Errorf("soap: packed array %s has bad length attribute", n.Local)
	}
	var raw []byte
	switch n.AttrOr("enc", "") {
	case "base64":
		raw, err = base64.StdEncoding.DecodeString(n.Text)
	case "hex":
		raw, err = hex.DecodeString(n.Text)
	default:
		return nil, fmt.Errorf("soap: packed array %s has unknown enc", n.Local)
	}
	if err != nil {
		return nil, fmt.Errorf("soap: packed array %s: %w", n.Local, err)
	}
	return unpackArray(kind, raw, length)
}

// WriteEnvelope writes data to w. Split out so transports can stream.
func WriteEnvelope(w io.Writer, data []byte) error {
	_, err := w.Write(data)
	return err
}
