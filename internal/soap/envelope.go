// Package soap implements the SOAP 1.1 subset that backs the HARNESS II
// standard binding: RPC-style envelopes, typed parameter encoding, faults,
// and an HTTP transport.
//
// The paper's data-encoding critique concerns exactly this code path:
// "SOAP, being an XML-based protocol, is suitable mostly for exchanging
// structured data in reasonably small quantities ... the default BASE64
// encoding adopted by SOAP for XSD data types introduces unacceptable
// overheads for scientific data both in terms of the network bandwidth and
// the encoding/decoding time". The package therefore supports three array
// encodings — element-wise XML, BASE64-packed, and hex-packed — so the
// E2 experiment can measure each against the XDR binding.
//
// Two data planes exist per direction (experiment E14). Encoding is
// append-based: envelopes are built directly into (pooled) byte slices
// with in-place BASE64/hex encoding of packed arrays, no intermediate
// strings or DOM. Decoding first attempts a streaming scan of the common
// RPC envelope shape (fastdecode.go) and falls back to the xmlq DOM
// parser for anything outside that subset — comments, CDATA, exotic
// namespaces, non-ASCII content — so the fast path takes the hot traffic
// while the DOM path keeps full-grammar correctness.
package soap

import (
	"bytes"
	"encoding/base64"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"

	"harness2/internal/telemetry"
	"harness2/internal/wire"
	"harness2/internal/xdr"
	"harness2/internal/xmlq"
)

// ArrayEncoding selects how numeric arrays are carried inside envelopes.
type ArrayEncoding int

const (
	// EncodeBase64 packs the raw big-endian element bytes in BASE64 text,
	// the default the paper attributes to SOAP toolkits of the era.
	EncodeBase64 ArrayEncoding = iota
	// EncodeElementwise writes one XML element per array element,
	// SOAP-ENC:Array style.
	EncodeElementwise
	// EncodeHex packs raw element bytes as hexadecimal text (ablation).
	EncodeHex
)

// String names the encoding for reports.
func (a ArrayEncoding) String() string {
	switch a {
	case EncodeBase64:
		return "base64"
	case EncodeElementwise:
		return "elementwise"
	case EncodeHex:
		return "hex"
	}
	return "unknown"
}

// Param is a named RPC parameter.
type Param struct {
	Name  string
	Value any
}

// Header is one SOAP header entry. Headers carry out-of-band context —
// routing hints, credentials, transaction identity — and the SOAP 1.1
// mustUnderstand attribute obliges the receiver to fault rather than
// silently ignore an entry it does not support.
type Header struct {
	Name           string
	Value          any
	MustUnderstand bool
	// Actor is the SOAP 1.1 actor URI; empty targets the final receiver.
	Actor string
}

// Call is an RPC request: a method within a namespace plus parameters and
// optional header entries.
type Call struct {
	Method    string
	Namespace string
	Headers   []Header
	Params    []Param
}

// Response carries either return values or a fault.
type Response struct {
	Method string // echoed method name with "Response" suffix stripped
	Params []Param
	Fault  *Fault
}

// Fault is a SOAP 1.1 fault element.
type Fault struct {
	Code   string // e.g. "Client", "Server"
	String string // human-readable description
	Detail string
}

// Error implements the error interface so faults can flow as Go errors.
func (f *Fault) Error() string {
	return fmt.Sprintf("soap fault %s: %s", f.Code, f.String)
}

// Codec encodes and decodes envelopes with a fixed array encoding.
// The zero value uses BASE64 array packing and the streaming decoder.
type Codec struct {
	Arrays ArrayEncoding
	// DisableFastPath forces every decode through the DOM parser —
	// the E14 ablation switch, also used by the differential tests.
	DisableFastPath bool
}

const (
	envNS = "http://schemas.xmlsoap.org/soap/envelope/"
	xsdNS = "http://www.w3.org/2001/XMLSchema"
	xsiNS = "http://www.w3.org/2001/XMLSchema-instance"
	encNS = "http://schemas.xmlsoap.org/soap/encoding/"
)

// Envelope buffer pool: CallRemote, the HTTP handlers, and hot encode
// loops reuse envelope-sized buffers instead of allocating one per call.
// Buffers above the cap are dropped rather than pooled so one huge array
// payload does not pin memory forever.
const maxPooledBuffer = 16 << 20

var bufferPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// AcquireBuffer returns a reusable byte slice (length 0) from the
// package pool. Release it with ReleaseBuffer when the encoded bytes
// are no longer referenced.
func AcquireBuffer() *[]byte {
	b := bufferPool.Get().(*[]byte)
	*b = (*b)[:0]
	return b
}

// ReleaseBuffer returns a buffer obtained from AcquireBuffer.
func ReleaseBuffer(b *[]byte) {
	if b == nil || cap(*b) > maxPooledBuffer {
		return
	}
	bufferPool.Put(b)
}

// scratchPool holds raw-byte scratch for packed-array encode/decode.
var scratchPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// decode-path telemetry (S27): how much traffic the streaming decoder
// takes versus the DOM fallback.
var (
	decodeFast     *telemetry.Counter
	decodeFallback *telemetry.Counter
)

func init() {
	r := telemetry.Default()
	r.Help("harness_soap_decode_total", "SOAP envelope decodes by path (fast scan vs DOM fallback)")
	decodeFast = r.Counter("harness_soap_decode_total", "path", "fast")
	decodeFallback = r.Counter("harness_soap_decode_total", "path", "dom")
}

// EncodeCall serialises an RPC request envelope.
func (c Codec) EncodeCall(call *Call) ([]byte, error) {
	return c.AppendCall(make([]byte, 0, c.sizeHintCall(call)), call)
}

// AppendCall appends an RPC request envelope to dst and returns the
// extended slice — the allocation-free encode path when dst comes from
// AcquireBuffer.
func (c Codec) AppendCall(dst []byte, call *Call) ([]byte, error) {
	dst = c.appendPrologWithHeaders(dst, call.Headers)
	ns := call.Namespace
	if ns == "" {
		ns = "urn:harness2"
	}
	dst = append(dst, "    <m:"...)
	dst = append(dst, call.Method...)
	dst = append(dst, " xmlns:m="...)
	dst = strconv.AppendQuote(dst, ns)
	dst = append(dst, ">\n"...)
	var err error
	for _, p := range call.Params {
		if dst, err = c.appendValue(dst, p.Name, p.Value, 6); err != nil {
			return nil, fmt.Errorf("soap: encode call %s: %w", call.Method, err)
		}
	}
	dst = append(dst, "    </m:"...)
	dst = append(dst, call.Method...)
	dst = append(dst, ">\n"...)
	return c.appendEpilog(dst), nil
}

// EncodeResponse serialises an RPC response envelope for method.
func (c Codec) EncodeResponse(method string, params []Param) ([]byte, error) {
	return c.AppendResponse(make([]byte, 0, c.sizeHintParams(params)), method, params)
}

// AppendResponse appends an RPC response envelope to dst.
func (c Codec) AppendResponse(dst []byte, method string, params []Param) ([]byte, error) {
	dst = c.appendProlog(dst)
	dst = append(dst, "    <m:"...)
	dst = append(dst, method...)
	dst = append(dst, `Response xmlns:m="urn:harness2">`...)
	dst = append(dst, '\n')
	var err error
	for _, p := range params {
		if dst, err = c.appendValue(dst, p.Name, p.Value, 6); err != nil {
			return nil, fmt.Errorf("soap: encode response %s: %w", method, err)
		}
	}
	dst = append(dst, "    </m:"...)
	dst = append(dst, method...)
	dst = append(dst, "Response>\n"...)
	return c.appendEpilog(dst), nil
}

// EncodeFault serialises a fault envelope.
func (c Codec) EncodeFault(f *Fault) []byte {
	return c.AppendFault(make([]byte, 0, 512), f)
}

// AppendFault appends a fault envelope to dst.
func (c Codec) AppendFault(dst []byte, f *Fault) []byte {
	dst = c.appendProlog(dst)
	dst = append(dst, "    <SOAP-ENV:Fault>\n      <faultcode>SOAP-ENV:"...)
	dst = appendEscaped(dst, f.Code)
	dst = append(dst, "</faultcode>\n      <faultstring>"...)
	dst = appendEscaped(dst, f.String)
	dst = append(dst, "</faultstring>\n"...)
	if f.Detail != "" {
		dst = append(dst, "      <detail>"...)
		dst = appendEscaped(dst, f.Detail)
		dst = append(dst, "</detail>\n"...)
	}
	dst = append(dst, "    </SOAP-ENV:Fault>\n"...)
	return c.appendEpilog(dst)
}

// sizeHintCall estimates the envelope size so the one allocation the
// non-pooled entry points make is usually the only one.
func (c Codec) sizeHintCall(call *Call) int {
	n := 512 + 64*len(call.Headers)
	for _, h := range call.Headers {
		if s, ok := h.Value.(string); ok {
			n += len(s)
		}
	}
	return n + c.sizeHintValues(call.Params)
}

func (c Codec) sizeHintParams(params []Param) int {
	return 512 + c.sizeHintValues(params)
}

func (c Codec) sizeHintValues(params []Param) int {
	n := 0
	for _, p := range params {
		switch v := p.Value.(type) {
		case string:
			n += len(v) + 64
		case []byte:
			n += base64.StdEncoding.EncodedLen(len(v)) + 64
		case []string:
			for _, s := range v {
				n += len(s) + 16
			}
			n += 128
		default:
			if raw := xdr.RawSize(v); raw >= 0 {
				switch c.Arrays {
				case EncodeElementwise:
					n += raw*4 + 128
				case EncodeHex:
					n += raw*2 + 96
				default:
					n += base64.StdEncoding.EncodedLen(raw) + 96
				}
			} else {
				n += 96
			}
		}
	}
	return n
}

const prologText = `<?xml version="1.0" encoding="UTF-8"?>` + "\n" +
	`<SOAP-ENV:Envelope xmlns:SOAP-ENV="` + envNS + `" xmlns:xsd="` + xsdNS +
	`" xmlns:xsi="` + xsiNS + `" xmlns:SOAP-ENC="` + encNS + `">` + "\n"

func (c Codec) appendProlog(dst []byte) []byte {
	dst = append(dst, prologText...)
	return append(dst, "  <SOAP-ENV:Body>\n"...)
}

func (c Codec) appendPrologWithHeaders(dst []byte, headers []Header) []byte {
	if len(headers) == 0 {
		return c.appendProlog(dst)
	}
	dst = append(dst, prologText...)
	dst = append(dst, "  <SOAP-ENV:Header>\n"...)
	for _, h := range headers {
		attrs := ""
		if h.MustUnderstand {
			attrs += ` SOAP-ENV:mustUnderstand="1"`
		}
		if h.Actor != "" {
			attrs += " SOAP-ENV:actor=" + strconv.Quote(escape(h.Actor))
		}
		if s, ok := h.Value.(string); ok {
			dst = append(dst, "    <"...)
			dst = append(dst, h.Name...)
			dst = append(dst, ` xsi:type="xsd:string"`...)
			dst = append(dst, attrs...)
			dst = append(dst, '>')
			dst = appendEscaped(dst, s)
			dst = append(dst, "</"...)
			dst = append(dst, h.Name...)
			dst = append(dst, ">\n"...)
			continue
		}
		// Non-string header values reuse the body value encoding, then
		// splice the attributes into the opening tag (cold path).
		hb, err := c.appendValue(nil, h.Name, h.Value, 4)
		if err != nil {
			continue
		}
		entry := string(hb)
		if attrs != "" {
			entry = strings.Replace(entry, "<"+h.Name+" ", "<"+h.Name+attrs+" ", 1)
		}
		dst = append(dst, entry...)
	}
	dst = append(dst, "  </SOAP-ENV:Header>\n  <SOAP-ENV:Body>\n"...)
	return dst
}

func (c Codec) appendEpilog(dst []byte) []byte {
	return append(dst, "  </SOAP-ENV:Body>\n</SOAP-ENV:Envelope>\n"...)
}

// scalarType maps scalar kinds to xsi:type names.
func scalarType(k wire.Kind) string {
	switch k {
	case wire.KindBool:
		return "xsd:boolean"
	case wire.KindInt32:
		return "xsd:int"
	case wire.KindInt64:
		return "xsd:long"
	case wire.KindFloat32:
		return "xsd:float"
	case wire.KindFloat64:
		return "xsd:double"
	case wire.KindString:
		return "xsd:string"
	case wire.KindBytes:
		return "xsd:base64Binary"
	}
	return ""
}

func arrayTypeName(elem wire.Kind) string {
	switch elem {
	case wire.KindBool:
		return "xsd:boolean"
	case wire.KindInt32:
		return "xsd:int"
	case wire.KindInt64:
		return "xsd:long"
	case wire.KindFloat32:
		return "xsd:float"
	case wire.KindFloat64:
		return "xsd:double"
	case wire.KindString:
		return "xsd:string"
	}
	return ""
}

const padSpaces = "                                                                "

// appendPad appends n spaces.
func appendPad(dst []byte, n int) []byte {
	for n > len(padSpaces) {
		dst = append(dst, padSpaces...)
		n -= len(padSpaces)
	}
	return append(dst, padSpaces[:n]...)
}

// appendScalarOpen writes `<name xsi:type="typ">` at the given indent.
func appendScalarOpen(dst []byte, name, typ string, indent int) []byte {
	dst = appendPad(dst, indent)
	dst = append(dst, '<')
	dst = append(dst, name...)
	dst = append(dst, ` xsi:type="`...)
	dst = append(dst, typ...)
	dst = append(dst, `">`...)
	return dst
}

func appendClose(dst []byte, name string) []byte {
	dst = append(dst, "</"...)
	dst = append(dst, name...)
	dst = append(dst, ">\n"...)
	return dst
}

func (c Codec) appendValue(dst []byte, name string, v any, indent int) ([]byte, error) {
	if err := wire.Check(v); err != nil {
		return dst, err
	}
	k := wire.KindOf(v)
	switch k {
	case wire.KindBool:
		dst = appendScalarOpen(dst, name, "xsd:boolean", indent)
		dst = strconv.AppendBool(dst, v.(bool))
		return appendClose(dst, name), nil
	case wire.KindInt32:
		dst = appendScalarOpen(dst, name, "xsd:int", indent)
		dst = strconv.AppendInt(dst, int64(v.(int32)), 10)
		return appendClose(dst, name), nil
	case wire.KindInt64:
		dst = appendScalarOpen(dst, name, "xsd:long", indent)
		dst = strconv.AppendInt(dst, v.(int64), 10)
		return appendClose(dst, name), nil
	case wire.KindFloat32:
		dst = appendScalarOpen(dst, name, "xsd:float", indent)
		dst = strconv.AppendFloat(dst, float64(v.(float32)), 'g', -1, 32)
		return appendClose(dst, name), nil
	case wire.KindFloat64:
		dst = appendScalarOpen(dst, name, "xsd:double", indent)
		dst = strconv.AppendFloat(dst, v.(float64), 'g', -1, 64)
		return appendClose(dst, name), nil
	case wire.KindString:
		dst = appendScalarOpen(dst, name, "xsd:string", indent)
		dst = appendEscaped(dst, v.(string))
		return appendClose(dst, name), nil
	case wire.KindBytes:
		dst = appendScalarOpen(dst, name, "xsd:base64Binary", indent)
		dst = base64.StdEncoding.AppendEncode(dst, v.([]byte))
		return appendClose(dst, name), nil
	case wire.KindStringArray:
		// String arrays are always element-wise; packing is meaningless.
		a := v.([]string)
		dst = appendPad(dst, indent)
		dst = append(dst, '<')
		dst = append(dst, name...)
		dst = append(dst, ` xsi:type="SOAP-ENC:Array" SOAP-ENC:arrayType="xsd:string[`...)
		dst = strconv.AppendInt(dst, int64(len(a)), 10)
		dst = append(dst, `]">`...)
		dst = append(dst, '\n')
		for _, s := range a {
			dst = appendPad(dst, indent+2)
			dst = append(dst, "<item>"...)
			dst = appendEscaped(dst, s)
			dst = append(dst, "</item>\n"...)
		}
		dst = appendPad(dst, indent)
		return appendClose(dst, name), nil
	case wire.KindBoolArray, wire.KindInt32Array, wire.KindInt64Array,
		wire.KindFloat32Array, wire.KindFloat64Array:
		return c.appendNumericArray(dst, name, v, k, indent), nil
	case wire.KindStruct:
		s := v.(*wire.Struct)
		dst = appendPad(dst, indent)
		dst = append(dst, '<')
		dst = append(dst, name...)
		dst = append(dst, ` xsi:type="m:`...)
		dst = append(dst, s.Name...)
		dst = append(dst, `">`...)
		dst = append(dst, '\n')
		var err error
		for _, f := range s.Fields {
			if dst, err = c.appendValue(dst, f.Name, f.Value, indent+2); err != nil {
				return dst, err
			}
		}
		dst = appendPad(dst, indent)
		return appendClose(dst, name), nil
	}
	return dst, fmt.Errorf("soap: cannot encode kind %v", k)
}

func (c Codec) appendNumericArray(dst []byte, name string, v any, k wire.Kind, indent int) []byte {
	n := arrayLen(v)
	if c.Arrays == EncodeElementwise {
		dst = appendPad(dst, indent)
		dst = append(dst, '<')
		dst = append(dst, name...)
		dst = append(dst, ` xsi:type="SOAP-ENC:Array" SOAP-ENC:arrayType="`...)
		dst = append(dst, arrayTypeName(k.Elem())...)
		dst = append(dst, '[')
		dst = strconv.AppendInt(dst, int64(n), 10)
		dst = append(dst, `]">`...)
		dst = append(dst, '\n')
		dst = appendItems(dst, v, indent)
		dst = appendPad(dst, indent)
		return appendClose(dst, name)
	}
	dst = appendPad(dst, indent)
	dst = append(dst, '<')
	dst = append(dst, name...)
	dst = append(dst, ` xsi:type="hns:`...)
	dst = append(dst, k.String()...)
	dst = append(dst, `" enc="`...)
	if c.Arrays == EncodeHex {
		dst = append(dst, `hex" length="`...)
	} else {
		dst = append(dst, `base64" length="`...)
	}
	dst = strconv.AppendInt(dst, int64(n), 10)
	dst = append(dst, `">`...)
	// Pack the raw big-endian element bytes into pooled scratch (the
	// XDR bulk loops), then text-encode them in place into dst — no
	// intermediate string, no full-copy EncodeToString.
	scratch := scratchPool.Get().(*[]byte)
	raw := xdr.AppendRaw((*scratch)[:0], v)
	if c.Arrays == EncodeHex {
		dst = hex.AppendEncode(dst, raw)
	} else {
		dst = base64.StdEncoding.AppendEncode(dst, raw)
	}
	*scratch = raw
	if cap(raw) <= maxPooledBuffer {
		scratchPool.Put(scratch)
	}
	return appendClose(dst, name)
}

func appendItems(dst []byte, v any, indent int) []byte {
	const open, close = "<item>", "</item>\n"
	switch a := v.(type) {
	case []bool:
		for _, x := range a {
			dst = appendPad(dst, indent+2)
			dst = append(dst, open...)
			dst = strconv.AppendBool(dst, x)
			dst = append(dst, close...)
		}
	case []int32:
		for _, x := range a {
			dst = appendPad(dst, indent+2)
			dst = append(dst, open...)
			dst = strconv.AppendInt(dst, int64(x), 10)
			dst = append(dst, close...)
		}
	case []int64:
		for _, x := range a {
			dst = appendPad(dst, indent+2)
			dst = append(dst, open...)
			dst = strconv.AppendInt(dst, x, 10)
			dst = append(dst, close...)
		}
	case []float32:
		for _, x := range a {
			dst = appendPad(dst, indent+2)
			dst = append(dst, open...)
			dst = strconv.AppendFloat(dst, float64(x), 'g', -1, 32)
			dst = append(dst, close...)
		}
	case []float64:
		for _, x := range a {
			dst = appendPad(dst, indent+2)
			dst = append(dst, open...)
			dst = strconv.AppendFloat(dst, x, 'g', -1, 64)
			dst = append(dst, close...)
		}
	}
	return dst
}

func arrayLen(v any) int {
	switch a := v.(type) {
	case []bool:
		return len(a)
	case []int32:
		return len(a)
	case []int64:
		return len(a)
	case []float32:
		return len(a)
	case []float64:
		return len(a)
	case []string:
		return len(a)
	}
	return 0
}

// unpackArray decodes packed big-endian element bytes through the shared
// XDR bulk loops.
func unpackArray(kind wire.Kind, raw []byte, n int) (any, error) {
	v, err := xdr.UnpackRaw(kind, raw, n)
	if err != nil {
		return nil, fmt.Errorf("soap: %w", err)
	}
	return v, nil
}

// appendEscaped appends s with the markup-significant characters
// escaped, matching the historical escape() exactly.
func appendEscaped(dst []byte, s string) []byte {
	if !strings.ContainsAny(s, "&<>") {
		return append(dst, s...)
	}
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '&':
			dst = append(dst, "&amp;"...)
		case '<':
			dst = append(dst, "&lt;"...)
		case '>':
			dst = append(dst, "&gt;"...)
		default:
			dst = append(dst, s[i])
		}
	}
	return dst
}

func escape(s string) string {
	if !strings.ContainsAny(s, "&<>") {
		return s
	}
	return string(appendEscaped(nil, s))
}

// DecodeCall parses a request envelope into a Call, including any header
// entries. The streaming scanner handles the common envelope shape; any
// input outside its subset is retried through the DOM parser.
func (c Codec) DecodeCall(data []byte) (*Call, error) {
	if !c.DisableFastPath {
		call, err := fastDecodeCall(data)
		if err == nil {
			decodeFast.Inc()
			return call, nil
		}
		if !errors.Is(err, errFallback) {
			decodeFast.Inc()
			return nil, err
		}
		decodeFallback.Inc()
	}
	return c.domDecodeCall(data)
}

func (c Codec) domDecodeCall(data []byte) (*Call, error) {
	root, err := c.envelope(data)
	if err != nil {
		return nil, err
	}
	body, err := c.bodyOf(root)
	if err != nil {
		return nil, err
	}
	if body.Local == "Fault" {
		return nil, fmt.Errorf("soap: request envelope contains a fault")
	}
	call := &Call{Method: body.Local, Namespace: body.Space}
	if hdr := root.Child("Header"); hdr != nil {
		for _, hn := range hdr.Children {
			v, err := c.decodeValue(hn)
			if err != nil {
				return nil, fmt.Errorf("soap: header %s: %w", hn.Local, err)
			}
			call.Headers = append(call.Headers, Header{
				Name:           hn.Local,
				Value:          v,
				MustUnderstand: hn.AttrOr("mustUnderstand", "") == "1",
				Actor:          hn.AttrOr("actor", ""),
			})
		}
	}
	call.Params, err = c.decodeParams(body)
	if err != nil {
		return nil, err
	}
	return call, nil
}

// DecodeResponse parses a response envelope. A fault envelope yields a
// Response whose Fault field is set (and no error). Like DecodeCall it
// scans first and falls back to the DOM parser outside the subset.
func (c Codec) DecodeResponse(data []byte) (*Response, error) {
	if !c.DisableFastPath {
		resp, err := fastDecodeResponse(data)
		if err == nil {
			decodeFast.Inc()
			return resp, nil
		}
		if !errors.Is(err, errFallback) {
			decodeFast.Inc()
			return nil, err
		}
		decodeFallback.Inc()
	}
	return c.domDecodeResponse(data)
}

func (c Codec) domDecodeResponse(data []byte) (*Response, error) {
	body, err := c.bodyElement(data)
	if err != nil {
		return nil, err
	}
	if body.Local == "Fault" {
		f := &Fault{}
		if fc := body.Child("faultcode"); fc != nil {
			f.Code = strings.TrimPrefix(fc.Text, "SOAP-ENV:")
		}
		if fs := body.Child("faultstring"); fs != nil {
			f.String = fs.Text
		}
		if d := body.Child("detail"); d != nil {
			f.Detail = d.Text
		}
		return &Response{Fault: f}, nil
	}
	resp := &Response{Method: strings.TrimSuffix(body.Local, "Response")}
	resp.Params, err = c.decodeParams(body)
	if err != nil {
		return nil, err
	}
	return resp, nil
}

func (c Codec) bodyElement(data []byte) (*xmlq.Node, error) {
	root, err := c.envelope(data)
	if err != nil {
		return nil, err
	}
	return c.bodyOf(root)
}

func (c Codec) envelope(data []byte) (*xmlq.Node, error) {
	root, err := xmlq.Parse(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("soap: %w", err)
	}
	if root.Local != "Envelope" {
		return nil, fmt.Errorf("soap: root element is %q, want Envelope", root.Local)
	}
	return root, nil
}

func (c Codec) bodyOf(root *xmlq.Node) (*xmlq.Node, error) {
	body := root.Child("Body")
	if body == nil {
		return nil, fmt.Errorf("soap: envelope has no Body")
	}
	if len(body.Children) != 1 {
		return nil, fmt.Errorf("soap: Body must contain exactly one element, has %d", len(body.Children))
	}
	return body.Children[0], nil
}

func (c Codec) decodeParams(parent *xmlq.Node) ([]Param, error) {
	params := make([]Param, 0, len(parent.Children))
	for _, child := range parent.Children {
		v, err := c.decodeValue(child)
		if err != nil {
			return nil, err
		}
		params = append(params, Param{Name: child.Local, Value: v})
	}
	return params, nil
}

func (c Codec) decodeValue(n *xmlq.Node) (any, error) {
	xsiType := n.AttrOr("type", "")
	switch {
	case xsiType == "xsd:boolean":
		return strconv.ParseBool(n.Text)
	case xsiType == "xsd:int":
		v, err := strconv.ParseInt(n.Text, 10, 32)
		return int32(v), err
	case xsiType == "xsd:long":
		return strconv.ParseInt(n.Text, 10, 64)
	case xsiType == "xsd:float":
		v, err := strconv.ParseFloat(n.Text, 32)
		return float32(v), err
	case xsiType == "xsd:double":
		return strconv.ParseFloat(n.Text, 64)
	case xsiType == "xsd:string" || (xsiType == "" && len(n.Children) == 0):
		return n.Text, nil
	case xsiType == "xsd:base64Binary":
		return base64.StdEncoding.DecodeString(n.Text)
	case strings.HasSuffix(xsiType, ":Array") || xsiType == "Array":
		return c.decodeElementwiseArray(n)
	case strings.HasPrefix(xsiType, "hns:ArrayOf"):
		return c.decodePackedArray(n, xsiType)
	case strings.Contains(xsiType, ":"):
		// Treat any other prefixed type as a struct.
		return c.decodeStruct(n, xsiType)
	}
	return nil, fmt.Errorf("soap: cannot decode element %s with type %q", n.Local, xsiType)
}

func (c Codec) decodeStruct(n *xmlq.Node, xsiType string) (any, error) {
	name := xsiType
	if i := strings.IndexByte(name, ':'); i >= 0 {
		name = name[i+1:]
	}
	s := wire.NewStruct(name)
	for _, child := range n.Children {
		v, err := c.decodeValue(child)
		if err != nil {
			return nil, err
		}
		s.Set(child.Local, v)
	}
	return s, nil
}

func (c Codec) decodeElementwiseArray(n *xmlq.Node) (any, error) {
	at := n.AttrOr("arrayType", "")
	i := strings.IndexByte(at, '[')
	if i < 0 {
		return nil, fmt.Errorf("soap: array %s missing arrayType", n.Local)
	}
	elemName := at[:i]
	items := n.ChildrenNamed("item")
	switch elemName {
	case "xsd:string":
		out := make([]string, len(items))
		for j, it := range items {
			out[j] = it.Text
		}
		return out, nil
	case "xsd:boolean":
		out := make([]bool, len(items))
		for j, it := range items {
			v, err := strconv.ParseBool(it.Text)
			if err != nil {
				return nil, err
			}
			out[j] = v
		}
		return out, nil
	case "xsd:int":
		out := make([]int32, len(items))
		for j, it := range items {
			v, err := strconv.ParseInt(it.Text, 10, 32)
			if err != nil {
				return nil, err
			}
			out[j] = int32(v)
		}
		return out, nil
	case "xsd:long":
		out := make([]int64, len(items))
		for j, it := range items {
			v, err := strconv.ParseInt(it.Text, 10, 64)
			if err != nil {
				return nil, err
			}
			out[j] = v
		}
		return out, nil
	case "xsd:float":
		out := make([]float32, len(items))
		for j, it := range items {
			v, err := strconv.ParseFloat(it.Text, 32)
			if err != nil {
				return nil, err
			}
			out[j] = float32(v)
		}
		return out, nil
	case "xsd:double":
		out := make([]float64, len(items))
		for j, it := range items {
			v, err := strconv.ParseFloat(it.Text, 64)
			if err != nil {
				return nil, err
			}
			out[j] = v
		}
		return out, nil
	}
	return nil, fmt.Errorf("soap: unsupported arrayType %q", at)
}

func (c Codec) decodePackedArray(n *xmlq.Node, xsiType string) (any, error) {
	kindName := strings.TrimPrefix(xsiType, "hns:")
	kind := wire.KindByName(kindName)
	if kind == wire.KindInvalid || !kind.IsArray() {
		return nil, fmt.Errorf("soap: unknown packed array type %q", xsiType)
	}
	length, err := strconv.Atoi(n.AttrOr("length", ""))
	if err != nil || length < 0 {
		return nil, fmt.Errorf("soap: packed array %s has bad length attribute", n.Local)
	}
	var raw []byte
	switch n.AttrOr("enc", "") {
	case "base64":
		raw, err = base64.StdEncoding.DecodeString(n.Text)
	case "hex":
		raw, err = hex.DecodeString(n.Text)
	default:
		return nil, fmt.Errorf("soap: packed array %s has unknown enc", n.Local)
	}
	if err != nil {
		return nil, fmt.Errorf("soap: packed array %s: %w", n.Local, err)
	}
	return unpackArray(kind, raw, length)
}

// WriteEnvelope writes data to w. Split out so transports can stream.
func WriteEnvelope(w io.Writer, data []byte) error {
	_, err := w.Write(data)
	return err
}
