package soap

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"harness2/internal/telemetry"
)

// Handler processes one RPC call and returns the output parameters.
// Returning a *Fault transmits it verbatim; any other error becomes a
// Server fault.
type Handler func(call *Call) ([]Param, error)

// Server dispatches SOAP-over-HTTP requests to registered handlers.
// Dispatch is by SOAPAction header when present, else by the body's
// method name. It implements http.Handler.
type Server struct {
	Codec Codec

	mu         sync.RWMutex
	handlers   map[string]Handler
	understood map[string]bool
}

// NewServer returns an empty dispatcher.
func NewServer() *Server {
	return &Server{handlers: make(map[string]Handler), understood: make(map[string]bool)}
}

// Understand declares header entry names this server processes. Requests
// carrying a mustUnderstand header outside this set are refused with a
// MustUnderstand fault, per SOAP 1.1 §4.2.3.
func (s *Server) Understand(names ...string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, n := range names {
		s.understood[n] = true
	}
}

// checkMustUnderstand returns the first offending header name, if any.
func (s *Server) checkMustUnderstand(call *Call) (string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, h := range call.Headers {
		if h.MustUnderstand && !s.understood[h.Name] {
			return h.Name, false
		}
	}
	return "", true
}

// Handle registers a handler for the given action (method) name.
// Registering a name twice replaces the previous handler.
func (s *Server) Handle(action string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[action] = h
}

// Remove unregisters an action.
func (s *Server) Remove(action string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.handlers, action)
}

// Actions lists registered action names.
func (s *Server) Actions() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.handlers))
	for a := range s.handlers {
		out = append(out, a)
	}
	return out
}

func (s *Server) lookup(action string) (Handler, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	h, ok := s.handlers[action]
	return h, ok
}

// ServeHTTP implements the SOAP HTTP binding: POST with text/xml body.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "soap endpoint requires POST", http.StatusMethodNotAllowed)
		return
	}
	bodyBuf := AcquireBuffer()
	defer ReleaseBuffer(bodyBuf)
	body, err := AppendReadAll(*bodyBuf, r.Body, r.ContentLength)
	*bodyBuf = body[:0]
	if err != nil {
		s.writeFault(w, &Fault{Code: "Client", String: "unreadable request body"})
		return
	}
	srvRecvBytes.Add(uint64(len(body)))
	// Decoded calls never alias the request buffer, so it can be pooled
	// as soon as DecodeCall returns.
	call, err := s.Codec.DecodeCall(body)
	if err != nil {
		s.writeFault(w, &Fault{Code: "Client", String: err.Error()})
		return
	}
	if name, ok := s.checkMustUnderstand(call); !ok {
		s.writeFault(w, &Fault{Code: "MustUnderstand",
			String: fmt.Sprintf("header %q not understood", name)})
		return
	}
	action := strings.Trim(r.Header.Get("SOAPAction"), `"`)
	if action == "" {
		action = call.Method
	}
	h, ok := s.lookup(action)
	if !ok {
		s.writeFault(w, &Fault{Code: "Client", String: fmt.Sprintf("no such action %q", action)})
		return
	}
	out, err := h(call)
	if err != nil {
		if f, ok := err.(*Fault); ok {
			s.writeFault(w, f)
		} else {
			s.writeFault(w, &Fault{Code: "Server", String: err.Error()})
		}
		return
	}
	respBuf := AcquireBuffer()
	defer ReleaseBuffer(respBuf)
	resp, err := s.Codec.AppendResponse(*respBuf, call.Method, out)
	if err != nil {
		s.writeFault(w, &Fault{Code: "Server", String: err.Error()})
		return
	}
	*respBuf = resp[:0]
	w.Header().Set("Content-Type", "text/xml; charset=utf-8")
	w.Header().Set("Content-Length", strconv.Itoa(len(resp)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(resp)
	srvSentBytes.Add(uint64(len(resp)))
}

func (s *Server) writeFault(w http.ResponseWriter, f *Fault) {
	buf := AcquireBuffer()
	defer ReleaseBuffer(buf)
	data := s.Codec.AppendFault(*buf, f)
	*buf = data[:0]
	w.Header().Set("Content-Type", "text/xml; charset=utf-8")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	// SOAP 1.1 over HTTP reports faults with a 500 status.
	w.WriteHeader(http.StatusInternalServerError)
	_, _ = w.Write(data)
	srvSentBytes.Add(uint64(len(data)))
}

// Client invokes SOAP endpoints over HTTP.
type Client struct {
	Codec Codec
	// HTTP is the underlying client; nil uses SharedHTTP.
	HTTP *http.Client
}

// Transport is the tuned shared http.Transport for all HARNESS SOAP and
// HTTP-GET traffic. Connection keep-alive matters here: kernel RPC is
// many small calls to a handful of peer DVMs, so the default transport's
// two idle conns per host serializes concurrent callers behind fresh
// TCP (and TLS) handshakes. The pool is sized for a DVM-wide fan-out.
var Transport = &http.Transport{
	Proxy: http.ProxyFromEnvironment,
	DialContext: (&net.Dialer{
		Timeout:   10 * time.Second,
		KeepAlive: 30 * time.Second,
	}).DialContext,
	MaxIdleConns:          512,
	MaxIdleConnsPerHost:   128,
	IdleConnTimeout:       90 * time.Second,
	TLSHandshakeTimeout:   10 * time.Second,
	ExpectContinueTimeout: time.Second,
	ForceAttemptHTTP2:     true,
}

// SharedHTTP is the default client used by every HARNESS HTTP binding
// (SOAP RPC, HTTP-GET binding, registry client) so that they share one
// keep-alive connection pool.
var SharedHTTP = &http.Client{Transport: Transport, Timeout: 30 * time.Second}

// Wire-volume counters, split by side of the connection.
var (
	cliSentBytes, cliRecvBytes *telemetry.Counter
	srvSentBytes, srvRecvBytes *telemetry.Counter
)

func init() {
	r := telemetry.Default()
	r.Help("harness_soap_wire_bytes_total", "SOAP envelope bytes moved over HTTP")
	cliSentBytes = r.Counter("harness_soap_wire_bytes_total", "side", "client", "dir", "sent")
	cliRecvBytes = r.Counter("harness_soap_wire_bytes_total", "side", "client", "dir", "recv")
	srvSentBytes = r.Counter("harness_soap_wire_bytes_total", "side", "server", "dir", "sent")
	srvRecvBytes = r.Counter("harness_soap_wire_bytes_total", "side", "server", "dir", "recv")
}

// AppendReadAll reads r to EOF, appending into dst (reset to length 0 by
// the caller); sizeHint, when positive, pre-grows dst so that a body with
// an accurate Content-Length reads in one allocation-free pass.
func AppendReadAll(dst []byte, r io.Reader, sizeHint int64) ([]byte, error) {
	if sizeHint > 0 && int64(cap(dst)) < sizeHint+1 && sizeHint < 1<<30 {
		grown := make([]byte, 0, sizeHint+1)
		dst = append(grown, dst...)
	}
	for {
		if len(dst) == cap(dst) {
			dst = append(dst, 0)[:len(dst)]
		}
		n, err := r.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return dst, err
		}
	}
}

// CallRemote posts call to the endpoint URL and decodes the response.
// A SOAP fault is returned as a *Fault error.
func (c *Client) CallRemote(endpoint string, call *Call) ([]Param, error) {
	reqBuf := AcquireBuffer()
	defer ReleaseBuffer(reqBuf)
	data, err := c.Codec.AppendCall(*reqBuf, call)
	if err != nil {
		return nil, err
	}
	*reqBuf = data[:0]
	httpc := c.HTTP
	if httpc == nil {
		httpc = SharedHTTP
	}
	req, err := http.NewRequest(http.MethodPost, endpoint, bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("soap: %w", err)
	}
	req.Header.Set("Content-Type", "text/xml; charset=utf-8")
	req.Header.Set("SOAPAction", `"`+call.Method+`"`)
	httpResp, err := httpc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("soap: post %s: %w", endpoint, err)
	}
	defer httpResp.Body.Close()
	cliSentBytes.Add(uint64(len(data)))
	respBuf := AcquireBuffer()
	defer ReleaseBuffer(respBuf)
	respBody, err := AppendReadAll(*respBuf, httpResp.Body, httpResp.ContentLength)
	*respBuf = respBody[:0]
	if err != nil {
		return nil, fmt.Errorf("soap: read response: %w", err)
	}
	cliRecvBytes.Add(uint64(len(respBody)))
	// Decoded responses never alias respBody, so the deferred release is safe.
	resp, err := c.Codec.DecodeResponse(respBody)
	if err != nil {
		return nil, fmt.Errorf("soap: decode response (HTTP %d): %w", httpResp.StatusCode, err)
	}
	if resp.Fault != nil {
		return nil, resp.Fault
	}
	return resp.Params, nil
}
