package soap

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Handler processes one RPC call and returns the output parameters.
// Returning a *Fault transmits it verbatim; any other error becomes a
// Server fault.
type Handler func(call *Call) ([]Param, error)

// Server dispatches SOAP-over-HTTP requests to registered handlers.
// Dispatch is by SOAPAction header when present, else by the body's
// method name. It implements http.Handler.
type Server struct {
	Codec Codec

	mu         sync.RWMutex
	handlers   map[string]Handler
	understood map[string]bool
}

// NewServer returns an empty dispatcher.
func NewServer() *Server {
	return &Server{handlers: make(map[string]Handler), understood: make(map[string]bool)}
}

// Understand declares header entry names this server processes. Requests
// carrying a mustUnderstand header outside this set are refused with a
// MustUnderstand fault, per SOAP 1.1 §4.2.3.
func (s *Server) Understand(names ...string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, n := range names {
		s.understood[n] = true
	}
}

// checkMustUnderstand returns the first offending header name, if any.
func (s *Server) checkMustUnderstand(call *Call) (string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, h := range call.Headers {
		if h.MustUnderstand && !s.understood[h.Name] {
			return h.Name, false
		}
	}
	return "", true
}

// Handle registers a handler for the given action (method) name.
// Registering a name twice replaces the previous handler.
func (s *Server) Handle(action string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[action] = h
}

// Remove unregisters an action.
func (s *Server) Remove(action string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.handlers, action)
}

// Actions lists registered action names.
func (s *Server) Actions() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.handlers))
	for a := range s.handlers {
		out = append(out, a)
	}
	return out
}

func (s *Server) lookup(action string) (Handler, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	h, ok := s.handlers[action]
	return h, ok
}

// ServeHTTP implements the SOAP HTTP binding: POST with text/xml body.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "soap endpoint requires POST", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		s.writeFault(w, &Fault{Code: "Client", String: "unreadable request body"})
		return
	}
	call, err := s.Codec.DecodeCall(body)
	if err != nil {
		s.writeFault(w, &Fault{Code: "Client", String: err.Error()})
		return
	}
	if name, ok := s.checkMustUnderstand(call); !ok {
		s.writeFault(w, &Fault{Code: "MustUnderstand",
			String: fmt.Sprintf("header %q not understood", name)})
		return
	}
	action := strings.Trim(r.Header.Get("SOAPAction"), `"`)
	if action == "" {
		action = call.Method
	}
	h, ok := s.lookup(action)
	if !ok {
		s.writeFault(w, &Fault{Code: "Client", String: fmt.Sprintf("no such action %q", action)})
		return
	}
	out, err := h(call)
	if err != nil {
		if f, ok := err.(*Fault); ok {
			s.writeFault(w, f)
		} else {
			s.writeFault(w, &Fault{Code: "Server", String: err.Error()})
		}
		return
	}
	resp, err := s.Codec.EncodeResponse(call.Method, out)
	if err != nil {
		s.writeFault(w, &Fault{Code: "Server", String: err.Error()})
		return
	}
	w.Header().Set("Content-Type", "text/xml; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(resp)
}

func (s *Server) writeFault(w http.ResponseWriter, f *Fault) {
	w.Header().Set("Content-Type", "text/xml; charset=utf-8")
	// SOAP 1.1 over HTTP reports faults with a 500 status.
	w.WriteHeader(http.StatusInternalServerError)
	_, _ = w.Write(s.Codec.EncodeFault(f))
}

// Client invokes SOAP endpoints over HTTP.
type Client struct {
	Codec Codec
	// HTTP is the underlying client; nil uses a client with a 30 s timeout.
	HTTP *http.Client
}

var defaultHTTP = &http.Client{Timeout: 30 * time.Second}

// CallRemote posts call to the endpoint URL and decodes the response.
// A SOAP fault is returned as a *Fault error.
func (c *Client) CallRemote(endpoint string, call *Call) ([]Param, error) {
	data, err := c.Codec.EncodeCall(call)
	if err != nil {
		return nil, err
	}
	httpc := c.HTTP
	if httpc == nil {
		httpc = defaultHTTP
	}
	req, err := http.NewRequest(http.MethodPost, endpoint, strings.NewReader(string(data)))
	if err != nil {
		return nil, fmt.Errorf("soap: %w", err)
	}
	req.Header.Set("Content-Type", "text/xml; charset=utf-8")
	req.Header.Set("SOAPAction", `"`+call.Method+`"`)
	httpResp, err := httpc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("soap: post %s: %w", endpoint, err)
	}
	defer httpResp.Body.Close()
	respBody, err := io.ReadAll(httpResp.Body)
	if err != nil {
		return nil, fmt.Errorf("soap: read response: %w", err)
	}
	resp, err := c.Codec.DecodeResponse(respBody)
	if err != nil {
		return nil, fmt.Errorf("soap: decode response (HTTP %d): %w", httpResp.StatusCode, err)
	}
	if resp.Fault != nil {
		return nil, resp.Fault
	}
	return resp.Params, nil
}
