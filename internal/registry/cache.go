package registry

import (
	"sync/atomic"
	"time"

	"harness2/internal/clock"
	"harness2/internal/cowmap"
	"harness2/internal/telemetry"
)

// Cache wraps a Lookup with client-side discovery memoization. The paper
// is explicit that after discovery "the lookup service is out of the
// loop"; in practice clients re-resolve names far more often than
// registrations change, and against a Remote registry every resolution
// is a SOAP round trip. The cache keeps read results (Get, FindByName,
// FindByQuery) for a TTL so steady-state discovery is a map probe.
//
// Three properties keep cached descriptions honest:
//
//   - the TTL is clamped to the shortest LeaseRemaining among the cached
//     entries, so a volatile registration is never served beyond the
//     lease under which the registry promised it;
//   - writes through the cache (Publish, Remove) invalidate everything,
//     since a registration change can alter any query's result;
//   - concurrent misses for the same key are collapsed into one upstream
//     call (singleflight), so a cold popular name costs one round trip.
//
// Negative results (an authoritative "not there") are cached under a
// SEPARATE, shorter TTL: after a service dies its name stays popular for
// a while, and a full-length negative TTL would hide its re-publication
// for the whole window, while no negative caching at all would stampede
// the registry with misses. See SetNegativeTTL.
//
// A zero or negative TTL disables caching entirely: every call passes
// straight through at the cost of a single branch. Cached result slices
// are shared between callers and must be treated as read-only.
//
// Concurrency (S34 metacity rework): slots live in cowmap sharded
// copy-on-write maps and publish their result through an atomic pointer,
// so a cache HIT — the operation a metacity's worth of clients repeats
// forever — is lock-free and allocation-free: a sharded snapshot load,
// an atomic result load, and an expiry check. Only fills and evictions
// touch a (per-shard) lock.
type Cache struct {
	src    Lookup
	ttl    time.Duration
	negTTL time.Duration // 0 = default (ttl/4)
	now    func() time.Time
	tel    *telemetry.Registry

	hits, misses *telemetry.Counter

	gets    *cowmap.Map[*cacheSlot]
	names   *cowmap.Map[*cacheSlot]
	queries *cowmap.Map[*cacheSlot]
}

// cacheSlot is one memoized lookup in flight or filled. done closes when
// the result is published; res is nil until then and immutable after.
type cacheSlot struct {
	done chan struct{}
	res  atomic.Pointer[cacheResult]
}

// cacheResult is the immutable outcome of one upstream call. A zero
// expires (errors) is already in the past: direct waiters receive it,
// later readers evict and refetch.
type cacheResult struct {
	expires time.Time

	entry   Entry // Get
	ok      bool
	entries []Entry // FindByName / FindByQuery
	err     error
}

var (
	_ Lookup        = (*Cache)(nil)
	_ CheckedLookup = (*Cache)(nil)
)

// checked returns the source's checked-lookup view when it has one, so
// the cache can tell an authoritative miss from an outage. A plain
// Lookup source never reports outages; its answers are taken as
// authoritative, exactly as before.
func (c *Cache) checked() (CheckedLookup, bool) {
	cl, ok := c.src.(CheckedLookup)
	return cl, ok
}

// NewCache returns a cache over src holding read results for ttl
// (clamped per-result to lease lifetimes). ttl <= 0 disables caching.
// Expiry runs on the coarse process clock: TTLs are seconds, so
// millisecond resolution is free precision loss, and the hit path —
// the single hottest operation at metacity scale — never pays a real
// clock call.
func NewCache(src Lookup, ttl time.Duration) *Cache {
	return NewCacheWithClock(src, ttl, clock.Coarse)
}

// NewCacheWithClock is NewCache with an injectable clock for
// deterministic expiry tests.
func NewCacheWithClock(src Lookup, ttl time.Duration, now func() time.Time) *Cache {
	c := &Cache{
		src:     src,
		ttl:     ttl,
		now:     now,
		gets:    cowmap.New[*cacheSlot](),
		names:   cowmap.New[*cacheSlot](),
		queries: cowmap.New[*cacheSlot](),
	}
	c.initMetrics()
	return c
}

// SetNegativeTTL sets how long authoritative misses (Get of an absent
// key, FindByName with no matches) stay cached; d <= 0 restores the
// default of a quarter of the positive TTL. Shorter than the positive
// TTL because a dead service's re-publication should become visible
// quickly while its name is still being hammered.
func (c *Cache) SetNegativeTTL(d time.Duration) {
	if d < 0 {
		d = 0
	}
	c.negTTL = d
}

// SetTelemetry selects the cache's metrics registry; nil falls back to
// the process default, telemetry.Disabled() switches instrumentation off.
func (c *Cache) SetTelemetry(t *telemetry.Registry) {
	c.tel = t
	c.initMetrics()
}

func (c *Cache) initMetrics() {
	tel := telemetry.Or(c.tel)
	tel.Help("harness_discovery_cache_total", "discovery cache lookups by result")
	c.hits = tel.Counter("harness_discovery_cache_total", "result", "hit")
	c.misses = tel.Counter("harness_discovery_cache_total", "result", "miss")
}

// cached returns the live result for key, filling a fresh slot on a
// miss. fill runs outside any lock (it is a network call for Remote
// sources); concurrent misses wait on the filling goroutine's slot. The
// hit path takes no locks.
func (c *Cache) cached(m *cowmap.Map[*cacheSlot], key string, fill func(*cacheResult)) *cacheResult {
	for {
		s, loaded := m.LoadOrCreate(key, newCacheSlot)
		if !loaded {
			c.misses.Inc()
			res := &cacheResult{}
			func() {
				// Publish-then-close even if fill panics, so waiters
				// never hang on the slot.
				defer func() { s.res.Store(res); close(s.done) }()
				fill(res)
			}()
			return res
		}
		res := s.res.Load()
		if res == nil {
			<-s.done
			res = s.res.Load()
		}
		if c.now().Before(res.expires) {
			c.hits.Inc()
			return res
		}
		// Expired (or an uncached error): evict exactly this slot — a
		// racing refill may already have replaced it — and retry.
		m.DeleteIf(key, func(cur *cacheSlot) bool { return cur == s })
	}
}

func newCacheSlot() *cacheSlot {
	return &cacheSlot{done: make(chan struct{})}
}

// expiry computes a positive result's deadline: now+TTL, clamped to the
// shortest live lease so cached state dies no later than its
// registration.
func (c *Cache) expiry(minLease time.Duration) time.Time {
	ttl := c.ttl
	if minLease > 0 && minLease < ttl {
		ttl = minLease
	}
	return c.now().Add(ttl)
}

// negExpiry computes a negative result's deadline under the separate,
// shorter negative TTL.
func (c *Cache) negExpiry() time.Time {
	ttl := c.negTTL
	if ttl <= 0 {
		ttl = c.ttl / 4
	}
	if ttl <= 0 {
		ttl = c.ttl
	}
	return c.now().Add(ttl)
}

func minLease(entries []Entry) time.Duration {
	var min time.Duration
	for _, e := range entries {
		if e.LeaseRemaining > 0 && (min == 0 || e.LeaseRemaining < min) {
			min = e.LeaseRemaining
		}
	}
	return min
}

// Get returns the cached entry for key, consulting the source on a miss
// or after expiry. Authoritative misses are cached too (negative
// caching), so a busy poller cannot hammer the registry for a name that
// is not there — but a failure to REACH the registry is never cached:
// negative-caching an outage would hide every registration behind one
// dropped packet for a full TTL.
func (c *Cache) Get(key string) (Entry, bool) {
	e, ok, _ := c.GetErr(key)
	return e, ok
}

// GetErr is Get through the source's checked view: an authoritative miss
// returns (ok=false, err=nil) and is negative-cached under the shorter
// negative TTL; an unreachable registry returns an error wrapping
// ErrUnavailable and the slot expires immediately, so the next caller
// retries the source.
func (c *Cache) GetErr(key string) (Entry, bool, error) {
	fill := func() (Entry, bool, error) {
		if cl, ok := c.checked(); ok {
			return cl.GetErr(key)
		}
		e, ok := c.src.Get(key)
		return e, ok, nil
	}
	if c.ttl <= 0 {
		return fill()
	}
	res := c.cached(c.gets, key, func(res *cacheResult) {
		res.entry, res.ok, res.err = fill()
		switch {
		case res.err != nil:
			// expires stays zero: served to direct waiters only.
		case res.ok:
			res.expires = c.expiry(res.entry.LeaseRemaining)
		default:
			res.expires = c.negExpiry()
		}
	})
	return res.entry, res.ok, res.err
}

// FindByName returns the cached name-index result.
func (c *Cache) FindByName(name string) []Entry {
	es, _ := c.FindByNameErr(name)
	return es
}

// FindByNameErr is FindByName through the source's checked view; like
// GetErr, only authoritative results are cached — empty ones under the
// negative TTL.
func (c *Cache) FindByNameErr(name string) ([]Entry, error) {
	fill := func() ([]Entry, error) {
		if cl, ok := c.checked(); ok {
			return cl.FindByNameErr(name)
		}
		return c.src.FindByName(name), nil
	}
	if c.ttl <= 0 {
		return fill()
	}
	res := c.cached(c.names, name, func(res *cacheResult) {
		res.entries, res.err = fill()
		switch {
		case res.err != nil:
		case len(res.entries) > 0:
			res.expires = c.expiry(minLease(res.entries))
		default:
			res.expires = c.negExpiry()
		}
	})
	return res.entries, res.err
}

// FindByQuery returns the cached structural-query result. Errors are
// returned but not cached: the next caller retries the source.
func (c *Cache) FindByQuery(query string) ([]Entry, error) {
	if c.ttl <= 0 {
		return c.src.FindByQuery(query)
	}
	res := c.cached(c.queries, query, func(res *cacheResult) {
		res.entries, res.err = c.src.FindByQuery(query)
		if res.err == nil {
			res.expires = c.expiry(minLease(res.entries))
		}
		// On error res.expires stays zero: already expired, never served
		// to a later caller.
	})
	return res.entries, res.err
}

// Publish writes through to the source and invalidates the cache: a new
// or revised registration can change any cached result.
func (c *Cache) Publish(e Entry) (string, error) {
	key, err := c.src.Publish(e)
	if err == nil {
		c.InvalidateAll()
	}
	return key, err
}

// Remove writes through to the source and invalidates the cache.
func (c *Cache) Remove(key string) error {
	err := c.src.Remove(key)
	if err == nil {
		c.InvalidateAll()
	}
	return err
}

// InvalidateKey drops the cached Get result for one key.
func (c *Cache) InvalidateKey(key string) {
	c.gets.Delete(key)
}

// InvalidateName drops the cached FindByName result for one name.
func (c *Cache) InvalidateName(name string) {
	c.names.Delete(name)
}

// InvalidateAll empties the cache; in-flight fills complete but only
// their direct waiters observe the results.
func (c *Cache) InvalidateAll() {
	c.gets.Clear()
	c.names.Clear()
	c.queries.Clear()
}
