package registry

import (
	"sync"
	"time"

	"harness2/internal/telemetry"
)

// Cache wraps a Lookup with client-side discovery memoization. The paper
// is explicit that after discovery "the lookup service is out of the
// loop"; in practice clients re-resolve names far more often than
// registrations change, and against a Remote registry every resolution
// is a SOAP round trip. The cache keeps read results (Get, FindByName,
// FindByQuery) for a TTL so steady-state discovery is a map probe.
//
// Three properties keep cached descriptions honest:
//
//   - the TTL is clamped to the shortest LeaseRemaining among the cached
//     entries, so a volatile registration is never served beyond the
//     lease under which the registry promised it;
//   - writes through the cache (Publish, Remove) invalidate everything,
//     since a registration change can alter any query's result;
//   - concurrent misses for the same key are collapsed into one upstream
//     call (singleflight), so a cold popular name costs one round trip.
//
// A zero or negative TTL disables caching entirely: every call passes
// straight through at the cost of a single branch. Cached result slices
// are shared between callers and must be treated as read-only.
type Cache struct {
	src Lookup
	ttl time.Duration
	now func() time.Time
	tel *telemetry.Registry

	hits, misses *telemetry.Counter

	mu      sync.Mutex
	gets    map[string]*cacheSlot
	names   map[string]*cacheSlot
	queries map[string]*cacheSlot
}

// cacheSlot holds one memoized lookup result. done closes when the slot
// is filled; a slot past its expiry is evicted and refetched.
type cacheSlot struct {
	done    chan struct{}
	expires time.Time

	entry   Entry // Get
	ok      bool
	entries []Entry // FindByName / FindByQuery
	err     error
}

var (
	_ Lookup        = (*Cache)(nil)
	_ CheckedLookup = (*Cache)(nil)
)

// checked returns the source's checked-lookup view when it has one, so
// the cache can tell an authoritative miss from an outage. A plain
// Lookup source never reports outages; its answers are taken as
// authoritative, exactly as before.
func (c *Cache) checked() (CheckedLookup, bool) {
	cl, ok := c.src.(CheckedLookup)
	return cl, ok
}

// NewCache returns a cache over src holding read results for ttl
// (clamped per-result to lease lifetimes). ttl <= 0 disables caching.
func NewCache(src Lookup, ttl time.Duration) *Cache {
	return NewCacheWithClock(src, ttl, time.Now)
}

// NewCacheWithClock is NewCache with an injectable clock for
// deterministic expiry tests.
func NewCacheWithClock(src Lookup, ttl time.Duration, now func() time.Time) *Cache {
	c := &Cache{
		src:     src,
		ttl:     ttl,
		now:     now,
		gets:    make(map[string]*cacheSlot),
		names:   make(map[string]*cacheSlot),
		queries: make(map[string]*cacheSlot),
	}
	c.initMetrics()
	return c
}

// SetTelemetry selects the cache's metrics registry; nil falls back to
// the process default, telemetry.Disabled() switches instrumentation off.
func (c *Cache) SetTelemetry(t *telemetry.Registry) {
	c.tel = t
	c.initMetrics()
}

func (c *Cache) initMetrics() {
	tel := telemetry.Or(c.tel)
	tel.Help("harness_discovery_cache_total", "discovery cache lookups by result")
	c.hits = tel.Counter("harness_discovery_cache_total", "result", "hit")
	c.misses = tel.Counter("harness_discovery_cache_total", "result", "miss")
}

// cached returns the live slot for key, filling it via fill on a miss.
// fill runs outside the cache lock (it is a network call for Remote
// sources); concurrent misses wait on the filling goroutine's slot.
func (c *Cache) cached(m map[string]*cacheSlot, key string, fill func(*cacheSlot)) *cacheSlot {
	for {
		c.mu.Lock()
		s := m[key]
		if s == nil {
			s = &cacheSlot{done: make(chan struct{})}
			m[key] = s
			c.mu.Unlock()
			c.misses.Inc()
			func() {
				defer close(s.done)
				fill(s)
			}()
			return s
		}
		c.mu.Unlock()
		<-s.done
		if c.now().Before(s.expires) {
			c.hits.Inc()
			return s
		}
		// Expired (or an uncached error): evict if still current, retry.
		c.mu.Lock()
		if m[key] == s {
			delete(m, key)
		}
		c.mu.Unlock()
	}
}

// expiry computes a result's deadline: now+TTL, clamped to the shortest
// live lease so cached state dies no later than its registration.
func (c *Cache) expiry(minLease time.Duration) time.Time {
	ttl := c.ttl
	if minLease > 0 && minLease < ttl {
		ttl = minLease
	}
	return c.now().Add(ttl)
}

func minLease(entries []Entry) time.Duration {
	var min time.Duration
	for _, e := range entries {
		if e.LeaseRemaining > 0 && (min == 0 || e.LeaseRemaining < min) {
			min = e.LeaseRemaining
		}
	}
	return min
}

// Get returns the cached entry for key, consulting the source on a miss
// or after expiry. Authoritative misses are cached too (negative
// caching), so a busy poller cannot hammer the registry for a name that
// is not there — but a failure to REACH the registry is never cached:
// negative-caching an outage would hide every registration behind one
// dropped packet for a full TTL.
func (c *Cache) Get(key string) (Entry, bool) {
	e, ok, _ := c.GetErr(key)
	return e, ok
}

// GetErr is Get through the source's checked view: an authoritative miss
// returns (ok=false, err=nil) and is cached; an unreachable registry
// returns an error wrapping ErrUnavailable and the slot expires
// immediately, so the next caller retries the source.
func (c *Cache) GetErr(key string) (Entry, bool, error) {
	fill := func() (Entry, bool, error) {
		if cl, ok := c.checked(); ok {
			return cl.GetErr(key)
		}
		e, ok := c.src.Get(key)
		return e, ok, nil
	}
	if c.ttl <= 0 {
		return fill()
	}
	s := c.cached(c.gets, key, func(s *cacheSlot) {
		s.entry, s.ok, s.err = fill()
		if s.err == nil {
			s.expires = c.expiry(s.entry.LeaseRemaining)
		}
		// On error s.expires stays zero: served to direct waiters only,
		// never to a later caller.
	})
	return s.entry, s.ok, s.err
}

// FindByName returns the cached name-index result.
func (c *Cache) FindByName(name string) []Entry {
	es, _ := c.FindByNameErr(name)
	return es
}

// FindByNameErr is FindByName through the source's checked view; like
// GetErr, only authoritative results (including empty ones) are cached.
func (c *Cache) FindByNameErr(name string) ([]Entry, error) {
	fill := func() ([]Entry, error) {
		if cl, ok := c.checked(); ok {
			return cl.FindByNameErr(name)
		}
		return c.src.FindByName(name), nil
	}
	if c.ttl <= 0 {
		return fill()
	}
	s := c.cached(c.names, name, func(s *cacheSlot) {
		s.entries, s.err = fill()
		if s.err == nil {
			s.expires = c.expiry(minLease(s.entries))
		}
	})
	return s.entries, s.err
}

// FindByQuery returns the cached structural-query result. Errors are
// returned but not cached: the next caller retries the source.
func (c *Cache) FindByQuery(query string) ([]Entry, error) {
	if c.ttl <= 0 {
		return c.src.FindByQuery(query)
	}
	s := c.cached(c.queries, query, func(s *cacheSlot) {
		s.entries, s.err = c.src.FindByQuery(query)
		if s.err == nil {
			s.expires = c.expiry(minLease(s.entries))
		}
		// On error s.expires stays zero: already expired, never served
		// to a later caller.
	})
	return s.entries, s.err
}

// Publish writes through to the source and invalidates the cache: a new
// or revised registration can change any cached result.
func (c *Cache) Publish(e Entry) (string, error) {
	key, err := c.src.Publish(e)
	if err == nil {
		c.InvalidateAll()
	}
	return key, err
}

// Remove writes through to the source and invalidates the cache.
func (c *Cache) Remove(key string) error {
	err := c.src.Remove(key)
	if err == nil {
		c.InvalidateAll()
	}
	return err
}

// InvalidateKey drops the cached Get result for one key.
func (c *Cache) InvalidateKey(key string) {
	c.mu.Lock()
	delete(c.gets, key)
	c.mu.Unlock()
}

// InvalidateName drops the cached FindByName result for one name.
func (c *Cache) InvalidateName(name string) {
	c.mu.Lock()
	delete(c.names, name)
	c.mu.Unlock()
}

// InvalidateAll empties the cache; in-flight fills complete but only
// their direct waiters observe the results.
func (c *Cache) InvalidateAll() {
	c.mu.Lock()
	clear(c.gets)
	clear(c.names)
	clear(c.queries)
	c.mu.Unlock()
}
