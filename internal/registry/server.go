package registry

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"harness2/internal/resilience"
	"harness2/internal/resilience/chaos"
	"harness2/internal/soap"
)

// Backend is the operation surface Server exposes over SOAP. The
// in-process *Registry satisfies it, and so does a cluster node routing
// each operation to its owning shard — the server wiring is identical
// either way.
type Backend interface {
	Lookup
	PublishLeased(e Entry, lease time.Duration) (string, error)
	Renew(key string) error
}

// RedirectError reports that the receiving peer does not own the key and
// names the peer that does. The SOAP server maps it to a fault with Code
// "Redirect" whose Detail carries the owner endpoint; Remote follows it.
type RedirectError struct {
	// Owner is the endpoint URL of the owning peer.
	Owner string
	// Key is the entry key the redirect is about.
	Key string
}

// Error implements the error interface.
func (e *RedirectError) Error() string {
	return fmt.Sprintf("registry: not the owner of %q; owner at %s", e.Key, e.Owner)
}

// FaultCodeRedirect is the SOAP fault code carrying ownership redirects.
const FaultCodeRedirect = "Redirect"

// Server exposes a registry Backend as a SOAP web service — the registry
// is itself a full-fledged service, per the paper's "every entity is
// potentially a public service" principle.
//
// Operations: publish, publishLeased, renew, remove, get, findByName,
// findByQuery; cluster peers add peer-RPC operations via HandleExtra.
type Server struct {
	reg  Backend
	soap *soap.Server
}

// NewServer wraps reg in a SOAP dispatcher.
func NewServer(reg *Registry) *Server { return NewBackendServer(reg) }

// NewBackendServer wraps any Backend (a local registry or a cluster
// node) in a SOAP dispatcher.
func NewBackendServer(b Backend) *Server {
	s := &Server{reg: b, soap: soap.NewServer()}
	s.soap.Handle("publish", s.publish)
	s.soap.Handle("publishLeased", s.publishLeased)
	s.soap.Handle("renew", s.renew)
	s.soap.Handle("remove", s.remove)
	s.soap.Handle("get", s.get)
	s.soap.Handle("findByName", s.find(func(arg string) ([]Entry, error) {
		// The checked read lets a cluster backend report an unreachable
		// shard group as a Server fault instead of an empty result.
		if cl, ok := b.(CheckedLookup); ok {
			return cl.FindByNameErr(arg)
		}
		return b.FindByName(arg), nil
	}))
	s.soap.Handle("findByQuery", s.find(b.FindByQuery))
	return s
}

// HandleExtra registers an additional SOAP action on the server —
// cluster peers hang their peer-RPC surface (replicate, gossip, handoff,
// members) off the same dispatcher the client operations use.
func (s *Server) HandleExtra(action string, h soap.Handler) {
	s.soap.Handle(action, h)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.soap.ServeHTTP(w, r)
}

func param(call *soap.Call, name string) (any, error) {
	for _, p := range call.Params {
		if p.Name == name {
			return p.Value, nil
		}
	}
	return nil, &soap.Fault{Code: "Client", String: fmt.Sprintf("missing parameter %q", name)}
}

func stringParam(call *soap.Call, name string) (string, error) {
	v, err := param(call, name)
	if err != nil {
		return "", err
	}
	s, ok := v.(string)
	if !ok {
		return "", &soap.Fault{Code: "Client", String: fmt.Sprintf("parameter %q must be a string", name)}
	}
	return s, nil
}

// int64Param reads an integer parameter tolerating the numeric Go types
// a decoded SOAP value may surface as (int64, int32, int, float64).
func int64Param(call *soap.Call, name string) (int64, error) {
	v, err := param(call, name)
	if err != nil {
		return 0, err
	}
	switch n := v.(type) {
	case int64:
		return n, nil
	case int32:
		return int64(n), nil
	case int:
		return int64(n), nil
	case float64:
		return int64(n), nil
	}
	return 0, &soap.Fault{Code: "Client", String: fmt.Sprintf("parameter %q must be an integer", name)}
}

// decodeEntry reads the shared publish parameter set into an Entry.
func decodeEntry(call *soap.Call) (Entry, error) {
	e := Entry{}
	var err error
	if e.Name, err = stringParam(call, "name"); err != nil {
		return e, err
	}
	if e.WSDL, err = stringParam(call, "wsdl"); err != nil {
		return e, err
	}
	if v, err := param(call, "business"); err == nil {
		e.Business, _ = v.(string)
	}
	if v, err := param(call, "key"); err == nil {
		e.Key, _ = v.(string)
	}
	if v, err := param(call, "tmodels"); err == nil {
		if tms, ok := v.([]string); ok {
			e.TModels = tms
		}
	}
	return e, nil
}

// opFault maps a backend error onto the SOAP fault taxonomy: ownership
// redirects keep their owner endpoint in Detail, reachability failures
// become Server faults (the client must not read them as "not there"),
// everything else is a Client fault.
func opFault(err error) error {
	var rd *RedirectError
	if errors.As(err, &rd) {
		return &soap.Fault{Code: FaultCodeRedirect, String: err.Error(), Detail: rd.Owner}
	}
	if errors.Is(err, ErrUnavailable) {
		return &soap.Fault{Code: "Server", String: err.Error()}
	}
	return &soap.Fault{Code: "Client", String: err.Error()}
}

func (s *Server) publish(call *soap.Call) ([]soap.Param, error) {
	e, err := decodeEntry(call)
	if err != nil {
		return nil, err
	}
	key, err := s.reg.Publish(e)
	if err != nil {
		return nil, opFault(err)
	}
	return []soap.Param{{Name: "key", Value: key}}, nil
}

func (s *Server) publishLeased(call *soap.Call) ([]soap.Param, error) {
	e, err := decodeEntry(call)
	if err != nil {
		return nil, err
	}
	ms, err := int64Param(call, "leaseMs")
	if err != nil {
		return nil, err
	}
	if ms < 0 {
		return nil, &soap.Fault{Code: "Client", String: "leaseMs must be non-negative"}
	}
	key, err := s.reg.PublishLeased(e, time.Duration(ms)*time.Millisecond)
	if err != nil {
		return nil, opFault(err)
	}
	return []soap.Param{{Name: "key", Value: key}}, nil
}

func (s *Server) renew(call *soap.Call) ([]soap.Param, error) {
	key, err := stringParam(call, "key")
	if err != nil {
		return nil, err
	}
	if err := s.reg.Renew(key); err != nil {
		return nil, opFault(err)
	}
	return []soap.Param{{Name: "ok", Value: true}}, nil
}

func (s *Server) remove(call *soap.Call) ([]soap.Param, error) {
	key, err := stringParam(call, "key")
	if err != nil {
		return nil, err
	}
	if err := s.reg.Remove(key); err != nil {
		return nil, opFault(err)
	}
	return []soap.Param{{Name: "ok", Value: true}}, nil
}

func (s *Server) get(call *soap.Call) ([]soap.Param, error) {
	key, err := stringParam(call, "key")
	if err != nil {
		return nil, err
	}
	// Prefer the checked read so a cluster backend's "shard unreachable"
	// surfaces as a Server fault, not as a spurious "no entry".
	var (
		e  Entry
		ok bool
	)
	if cl, isChecked := s.reg.(CheckedLookup); isChecked {
		var gerr error
		e, ok, gerr = cl.GetErr(key)
		if gerr != nil {
			return nil, opFault(gerr)
		}
	} else {
		e, ok = s.reg.Get(key)
	}
	if !ok {
		return nil, &soap.Fault{Code: "Client", String: fmt.Sprintf("no entry %q", key)}
	}
	return entryParams(e), nil
}

func (s *Server) find(fn func(string) ([]Entry, error)) soap.Handler {
	return func(call *soap.Call) ([]soap.Param, error) {
		arg, err := stringParam(call, "arg")
		if err != nil {
			return nil, err
		}
		entries, err := fn(arg)
		if err != nil {
			return nil, opFault(err)
		}
		return MarshalEntries(entries), nil
	}
}

// MarshalEntries renders a find result in the column-wise wire encoding
// (parallel arrays over the matches), shared by the public find
// operations and the cluster peer RPCs.
func MarshalEntries(entries []Entry) []soap.Param {
	keys := make([]string, len(entries))
	names := make([]string, len(entries))
	businesses := make([]string, len(entries))
	wsdls := make([]string, len(entries))
	leases := make([]int64, len(entries))
	for i, e := range entries {
		keys[i] = e.Key
		names[i] = e.Name
		businesses[i] = e.Business
		wsdls[i] = e.WSDL
		leases[i] = e.LeaseRemaining.Milliseconds()
	}
	return []soap.Param{
		{Name: "keys", Value: keys},
		{Name: "names", Value: names},
		{Name: "businesses", Value: businesses},
		{Name: "wsdls", Value: wsdls},
		{Name: "leases", Value: leases},
	}
}

// UnmarshalEntries reads the column-wise find encoding back into
// entries, tolerating servers that omit the (newer) leases column.
func UnmarshalEntries(out []soap.Param) ([]Entry, error) {
	var keys, names, businesses, wsdls []string
	if v, ok := outParam(out, "keys"); ok {
		keys, _ = v.([]string)
	}
	if v, ok := outParam(out, "names"); ok {
		names, _ = v.([]string)
	}
	if v, ok := outParam(out, "businesses"); ok {
		businesses, _ = v.([]string)
	}
	if v, ok := outParam(out, "wsdls"); ok {
		wsdls, _ = v.([]string)
	}
	var leases []int64
	if v, ok := outParam(out, "leases"); ok {
		leases, _ = v.([]int64)
	}
	n := len(keys)
	if len(names) != n || len(businesses) != n || len(wsdls) != n {
		return nil, fmt.Errorf("registry: malformed find response")
	}
	entries := make([]Entry, n)
	for i := 0; i < n; i++ {
		entries[i] = Entry{Key: keys[i], Name: names[i], Business: businesses[i], WSDL: wsdls[i]}
		if i < len(leases) {
			entries[i].LeaseRemaining = time.Duration(leases[i]) * time.Millisecond
		}
	}
	return entries, nil
}

// MarshalEntry renders one entry (including its lease remaining, as
// leaseMs) as the row-wise parameter set get responses and cluster
// replication RPCs share.
func MarshalEntry(e Entry) []soap.Param { return entryParams(e) }

// UnmarshalEntry reads the parameter set produced by MarshalEntry or by
// a publish request; a leaseMs parameter, when present, lands in
// LeaseRemaining.
func UnmarshalEntry(call *soap.Call) (Entry, error) {
	e, err := decodeEntry(call)
	if err != nil {
		return e, err
	}
	if v, perr := param(call, "leaseMs"); perr == nil {
		if ms, ok := asInt64(v); ok {
			e.LeaseRemaining = time.Duration(ms) * time.Millisecond
		}
	}
	return e, nil
}

func entryParams(e Entry) []soap.Param {
	tms := e.TModels
	if tms == nil {
		tms = []string{}
	}
	return []soap.Param{
		{Name: "key", Value: e.Key},
		{Name: "name", Value: e.Name},
		{Name: "business", Value: e.Business},
		{Name: "tmodels", Value: tms},
		{Name: "wsdl", Value: e.WSDL},
		{Name: "leaseMs", Value: e.LeaseRemaining.Milliseconds()},
	}
}

// Remote is a SOAP client view of a registry server; it satisfies Lookup
// so callers can swap a co-located Registry for a network one unchanged.
type Remote struct {
	Endpoint string
	Client   soap.Client
	// Policy, when non-nil, runs every call through the resilience plane:
	// transient transport failures (including registry restarts) are
	// retried with backoff for idempotent operations, and per-endpoint
	// breakers stop hammering a dead registry. nil disables all of it.
	Policy *resilience.Policy
	// Chaos, when non-nil, evaluates the fault injector before every
	// call at site ("registry", method, endpoint) — the hook outage and
	// cluster tests use to fail exactly the Nth lookup. nil costs one
	// branch.
	Chaos *chaos.Injector
}

var _ Lookup = (*Remote)(nil)
var _ CheckedLookup = (*Remote)(nil)

// NewRemote returns a client for the registry at endpoint.
func NewRemote(endpoint string) *Remote {
	return &Remote{Endpoint: endpoint}
}

// maxRedirectHops bounds ownership-redirect following so two confused
// peers cannot bounce a client forever mid-rebalance.
const maxRedirectHops = 3

// call performs one SOAP exchange, routed through the resilience policy
// when one is configured, following cluster ownership redirects. Lookup
// methods carry no context, so policy executions run against
// context.Background(): the policy's own attempt timeouts and retry
// budget still bound the call.
func (r *Remote) call(method string, idempotent bool, params []soap.Param) ([]soap.Param, error) {
	endpoint := r.Endpoint
	for hop := 0; ; hop++ {
		out, err := r.callEndpoint(endpoint, method, idempotent, params)
		if f := (*soap.Fault)(nil); errors.As(err, &f) && f.Code == FaultCodeRedirect &&
			f.Detail != "" && hop < maxRedirectHops {
			// The receiving peer no longer owns the key (the ring moved
			// under us); retry against the owner it named.
			endpoint = f.Detail
			continue
		}
		return out, err
	}
}

func (r *Remote) callEndpoint(endpoint, method string, idempotent bool, params []soap.Param) ([]soap.Param, error) {
	if err := r.Chaos.Apply(context.Background(), "registry", method, endpoint); err != nil {
		return nil, err
	}
	if r.Policy == nil {
		return r.Client.CallRemote(endpoint, &soap.Call{Method: method, Params: params})
	}
	out, err := r.Policy.Do(context.Background(), endpoint, "registry."+method, idempotent,
		func(ctx context.Context) (any, error) {
			return r.Client.CallRemote(endpoint, &soap.Call{Method: method, Params: params})
		})
	if err != nil {
		return nil, err
	}
	res, _ := out.([]soap.Param)
	return res, nil
}

func outParam(out []soap.Param, name string) (any, bool) {
	for _, p := range out {
		if p.Name == name {
			return p.Value, true
		}
	}
	return nil, false
}

func entryCallParams(e Entry) []soap.Param {
	tms := e.TModels
	if tms == nil {
		tms = []string{}
	}
	return []soap.Param{
		{Name: "name", Value: e.Name},
		{Name: "wsdl", Value: e.WSDL},
		{Name: "business", Value: e.Business},
		{Name: "key", Value: e.Key},
		{Name: "tmodels", Value: tms},
	}
}

func keyResult(out []soap.Param, op string) (string, error) {
	if v, ok := outParam(out, "key"); ok {
		if s, ok := v.(string); ok {
			return s, nil
		}
	}
	return "", fmt.Errorf("registry: %s response missing key", op)
}

// Publish publishes an entry through the remote registry. A keyed publish
// is idempotent (re-publication overwrites), so the policy may retry it;
// an unkeyed publish is retried only when the request provably never
// reached the server.
func (r *Remote) Publish(e Entry) (string, error) {
	out, err := r.call("publish", e.Key != "", entryCallParams(e))
	if err != nil {
		return "", err
	}
	return keyResult(out, "publish")
}

// PublishLeased publishes an entry with a lease through the remote
// registry; it expires unless renewed via Renew.
func (r *Remote) PublishLeased(e Entry, lease time.Duration) (string, error) {
	params := append(entryCallParams(e),
		soap.Param{Name: "leaseMs", Value: lease.Milliseconds()})
	out, err := r.call("publishLeased", e.Key != "", params)
	if err != nil {
		return "", err
	}
	return keyResult(out, "publishLeased")
}

// Renew extends the keyed entry's lease remotely. Renewal is idempotent:
// re-arming an already-renewed lease is harmless, so the policy retries
// it through transient registry outages.
func (r *Remote) Renew(key string) error {
	_, err := r.call("renew", true, []soap.Param{{Name: "key", Value: key}})
	return err
}

// Remove unpublishes the keyed entry remotely.
func (r *Remote) Remove(key string) error {
	_, err := r.call("remove", false, []soap.Param{{Name: "key", Value: key}})
	return err
}

// notFoundFault recognises the server's authoritative "no entry" answer,
// which arrives as a Client fault; anything else — transport failure,
// Server fault, decode error — is NOT an authoritative miss.
func notFoundFault(err error) bool {
	var f *soap.Fault
	return errors.As(err, &f) && f.Code == "Client" && strings.Contains(f.String, "no entry")
}

// Get fetches one entry; a missing key yields ok=false. A transport
// failure also yields ok=false — use GetErr to tell the two apart.
func (r *Remote) Get(key string) (Entry, bool) {
	e, ok, _ := r.GetErr(key)
	return e, ok
}

// GetErr fetches one entry, distinguishing an authoritative miss
// (ok=false, err=nil) from a failure to reach the registry (err wraps
// ErrUnavailable) — the distinction that keeps caches from
// negative-caching an outage.
func (r *Remote) GetErr(key string) (Entry, bool, error) {
	out, err := r.call("get", true, []soap.Param{{Name: "key", Value: key}})
	if err != nil {
		if notFoundFault(err) {
			return Entry{}, false, nil
		}
		var f *soap.Fault
		if errors.As(err, &f) && f.Code == "Client" {
			// Any other Client fault is an authoritative rejection of
			// the request itself, not an outage.
			return Entry{}, false, err
		}
		return Entry{}, false, fmt.Errorf("%w: get %s: %v", ErrUnavailable, r.Endpoint, err)
	}
	e := Entry{}
	if v, ok := outParam(out, "key"); ok {
		e.Key, _ = v.(string)
	}
	if v, ok := outParam(out, "name"); ok {
		e.Name, _ = v.(string)
	}
	if v, ok := outParam(out, "business"); ok {
		e.Business, _ = v.(string)
	}
	if v, ok := outParam(out, "tmodels"); ok {
		e.TModels, _ = v.([]string)
	}
	if v, ok := outParam(out, "wsdl"); ok {
		e.WSDL, _ = v.(string)
	}
	// Older servers omit leaseMs; tolerate its absence and any numeric type.
	if v, ok := outParam(out, "leaseMs"); ok {
		if ms, ok := asInt64(v); ok {
			e.LeaseRemaining = time.Duration(ms) * time.Millisecond
		}
	}
	return e, true, nil
}

// asInt64 reads the numeric Go types a decoded SOAP value may surface as.
func asInt64(v any) (int64, bool) {
	switch n := v.(type) {
	case int64:
		return n, true
	case int32:
		return int64(n), true
	case int:
		return int64(n), true
	case float64:
		return int64(n), true
	}
	return 0, false
}

func (r *Remote) findRemote(method, arg string) ([]Entry, error) {
	out, err := r.call(method, true, []soap.Param{{Name: "arg", Value: arg}})
	if err != nil {
		var f *soap.Fault
		if errors.As(err, &f) && f.Code == "Client" {
			// Authoritative server-side rejection (e.g. a bad query).
			return nil, err
		}
		return nil, fmt.Errorf("%w: %s %s: %v", ErrUnavailable, method, r.Endpoint, err)
	}
	return UnmarshalEntries(out)
}

// FindByName queries the remote name index. A transport failure yields
// nil, indistinguishable from an empty result — use FindByNameErr to
// tell the two apart.
func (r *Remote) FindByName(name string) []Entry {
	entries, err := r.FindByNameErr(name)
	if err != nil {
		return nil
	}
	return entries
}

// FindByNameErr queries the remote name index, distinguishing an empty
// result from a failure to reach the registry (err wraps
// ErrUnavailable).
func (r *Remote) FindByNameErr(name string) ([]Entry, error) {
	return r.findRemote("findByName", name)
}

// FindByQuery runs a structural XML query remotely.
func (r *Remote) FindByQuery(query string) ([]Entry, error) {
	return r.findRemote("findByQuery", query)
}
