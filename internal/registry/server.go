package registry

import (
	"fmt"
	"net/http"

	"harness2/internal/soap"
)

// Server exposes a Registry as a SOAP web service — the registry is
// itself a full-fledged service, per the paper's "every entity is
// potentially a public service" principle.
//
// Operations: publish, remove, get, findByName, findByQuery.
type Server struct {
	reg  *Registry
	soap *soap.Server
}

// NewServer wraps reg in a SOAP dispatcher.
func NewServer(reg *Registry) *Server {
	s := &Server{reg: reg, soap: soap.NewServer()}
	s.soap.Handle("publish", s.publish)
	s.soap.Handle("remove", s.remove)
	s.soap.Handle("get", s.get)
	s.soap.Handle("findByName", s.find(func(arg string) ([]Entry, error) {
		return reg.FindByName(arg), nil
	}))
	s.soap.Handle("findByQuery", s.find(reg.FindByQuery))
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.soap.ServeHTTP(w, r)
}

func param(call *soap.Call, name string) (any, error) {
	for _, p := range call.Params {
		if p.Name == name {
			return p.Value, nil
		}
	}
	return nil, &soap.Fault{Code: "Client", String: fmt.Sprintf("missing parameter %q", name)}
}

func stringParam(call *soap.Call, name string) (string, error) {
	v, err := param(call, name)
	if err != nil {
		return "", err
	}
	s, ok := v.(string)
	if !ok {
		return "", &soap.Fault{Code: "Client", String: fmt.Sprintf("parameter %q must be a string", name)}
	}
	return s, nil
}

func (s *Server) publish(call *soap.Call) ([]soap.Param, error) {
	e := Entry{}
	var err error
	if e.Name, err = stringParam(call, "name"); err != nil {
		return nil, err
	}
	if e.WSDL, err = stringParam(call, "wsdl"); err != nil {
		return nil, err
	}
	if v, err := param(call, "business"); err == nil {
		e.Business, _ = v.(string)
	}
	if v, err := param(call, "key"); err == nil {
		e.Key, _ = v.(string)
	}
	if v, err := param(call, "tmodels"); err == nil {
		if tms, ok := v.([]string); ok {
			e.TModels = tms
		}
	}
	key, err := s.reg.Publish(e)
	if err != nil {
		return nil, &soap.Fault{Code: "Client", String: err.Error()}
	}
	return []soap.Param{{Name: "key", Value: key}}, nil
}

func (s *Server) remove(call *soap.Call) ([]soap.Param, error) {
	key, err := stringParam(call, "key")
	if err != nil {
		return nil, err
	}
	if err := s.reg.Remove(key); err != nil {
		return nil, &soap.Fault{Code: "Client", String: err.Error()}
	}
	return []soap.Param{{Name: "ok", Value: true}}, nil
}

func (s *Server) get(call *soap.Call) ([]soap.Param, error) {
	key, err := stringParam(call, "key")
	if err != nil {
		return nil, err
	}
	e, ok := s.reg.Get(key)
	if !ok {
		return nil, &soap.Fault{Code: "Client", String: fmt.Sprintf("no entry %q", key)}
	}
	return entryParams(e), nil
}

func (s *Server) find(fn func(string) ([]Entry, error)) soap.Handler {
	return func(call *soap.Call) ([]soap.Param, error) {
		arg, err := stringParam(call, "arg")
		if err != nil {
			return nil, err
		}
		entries, err := fn(arg)
		if err != nil {
			return nil, &soap.Fault{Code: "Client", String: err.Error()}
		}
		// Column-wise result encoding: parallel arrays over the matches.
		keys := make([]string, len(entries))
		names := make([]string, len(entries))
		businesses := make([]string, len(entries))
		wsdls := make([]string, len(entries))
		for i, e := range entries {
			keys[i] = e.Key
			names[i] = e.Name
			businesses[i] = e.Business
			wsdls[i] = e.WSDL
		}
		return []soap.Param{
			{Name: "keys", Value: keys},
			{Name: "names", Value: names},
			{Name: "businesses", Value: businesses},
			{Name: "wsdls", Value: wsdls},
		}, nil
	}
}

func entryParams(e Entry) []soap.Param {
	tms := e.TModels
	if tms == nil {
		tms = []string{}
	}
	return []soap.Param{
		{Name: "key", Value: e.Key},
		{Name: "name", Value: e.Name},
		{Name: "business", Value: e.Business},
		{Name: "tmodels", Value: tms},
		{Name: "wsdl", Value: e.WSDL},
	}
}

// Remote is a SOAP client view of a registry server; it satisfies Lookup
// so callers can swap a co-located Registry for a network one unchanged.
type Remote struct {
	Endpoint string
	Client   soap.Client
}

var _ Lookup = (*Remote)(nil)

// NewRemote returns a client for the registry at endpoint.
func NewRemote(endpoint string) *Remote {
	return &Remote{Endpoint: endpoint}
}

func (r *Remote) call(method string, params []soap.Param) ([]soap.Param, error) {
	return r.Client.CallRemote(r.Endpoint, &soap.Call{Method: method, Params: params})
}

func outParam(out []soap.Param, name string) (any, bool) {
	for _, p := range out {
		if p.Name == name {
			return p.Value, true
		}
	}
	return nil, false
}

// Publish publishes an entry through the remote registry.
func (r *Remote) Publish(e Entry) (string, error) {
	tms := e.TModels
	if tms == nil {
		tms = []string{}
	}
	out, err := r.call("publish", []soap.Param{
		{Name: "name", Value: e.Name},
		{Name: "wsdl", Value: e.WSDL},
		{Name: "business", Value: e.Business},
		{Name: "key", Value: e.Key},
		{Name: "tmodels", Value: tms},
	})
	if err != nil {
		return "", err
	}
	if v, ok := outParam(out, "key"); ok {
		if s, ok := v.(string); ok {
			return s, nil
		}
	}
	return "", fmt.Errorf("registry: publish response missing key")
}

// Remove unpublishes the keyed entry remotely.
func (r *Remote) Remove(key string) error {
	_, err := r.call("remove", []soap.Param{{Name: "key", Value: key}})
	return err
}

// Get fetches one entry; a missing key yields ok=false.
func (r *Remote) Get(key string) (Entry, bool) {
	out, err := r.call("get", []soap.Param{{Name: "key", Value: key}})
	if err != nil {
		return Entry{}, false
	}
	e := Entry{}
	if v, ok := outParam(out, "key"); ok {
		e.Key, _ = v.(string)
	}
	if v, ok := outParam(out, "name"); ok {
		e.Name, _ = v.(string)
	}
	if v, ok := outParam(out, "business"); ok {
		e.Business, _ = v.(string)
	}
	if v, ok := outParam(out, "tmodels"); ok {
		e.TModels, _ = v.([]string)
	}
	if v, ok := outParam(out, "wsdl"); ok {
		e.WSDL, _ = v.(string)
	}
	return e, true
}

func (r *Remote) findRemote(method, arg string) ([]Entry, error) {
	out, err := r.call(method, []soap.Param{{Name: "arg", Value: arg}})
	if err != nil {
		return nil, err
	}
	var keys, names, businesses, wsdls []string
	if v, ok := outParam(out, "keys"); ok {
		keys, _ = v.([]string)
	}
	if v, ok := outParam(out, "names"); ok {
		names, _ = v.([]string)
	}
	if v, ok := outParam(out, "businesses"); ok {
		businesses, _ = v.([]string)
	}
	if v, ok := outParam(out, "wsdls"); ok {
		wsdls, _ = v.([]string)
	}
	n := len(keys)
	if len(names) != n || len(businesses) != n || len(wsdls) != n {
		return nil, fmt.Errorf("registry: malformed find response")
	}
	entries := make([]Entry, n)
	for i := 0; i < n; i++ {
		entries[i] = Entry{Key: keys[i], Name: names[i], Business: businesses[i], WSDL: wsdls[i]}
	}
	return entries, nil
}

// FindByName queries the remote name index.
func (r *Remote) FindByName(name string) []Entry {
	entries, err := r.findRemote("findByName", name)
	if err != nil {
		return nil
	}
	return entries
}

// FindByQuery runs a structural XML query remotely.
func (r *Remote) FindByQuery(query string) ([]Entry, error) {
	return r.findRemote("findByQuery", query)
}
