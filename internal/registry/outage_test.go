package registry

import (
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"harness2/internal/resilience"
	"harness2/internal/telemetry"
)

// restartableServer is an HTTP front end whose listener can be killed and
// re-opened on the same address, simulating a registry process restart.
type restartableServer struct {
	t       *testing.T
	addr    string
	handler http.Handler
	srv     *http.Server
	done    chan struct{}
}

func startRestartable(t *testing.T, handler http.Handler) *restartableServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rs := &restartableServer{t: t, addr: ln.Addr().String(), handler: handler}
	rs.serve(ln)
	return rs
}

func (rs *restartableServer) serve(ln net.Listener) {
	rs.srv = &http.Server{Handler: rs.handler}
	rs.done = make(chan struct{})
	go func() {
		defer close(rs.done)
		_ = rs.srv.Serve(ln)
	}()
}

// kill closes the listener and every live connection.
func (rs *restartableServer) kill() {
	_ = rs.srv.Close()
	<-rs.done
}

// restart re-listens on the original address. The OS may briefly hold the
// port, so the bind is retried.
func (rs *restartableServer) restart() {
	rs.t.Helper()
	var ln net.Listener
	var err error
	for i := 0; i < 100; i++ {
		ln, err = net.Listen("tcp", rs.addr)
		if err == nil {
			rs.serve(ln)
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	rs.t.Fatalf("re-listen on %s: %v", rs.addr, err)
}

// TestLeaseSurvivesRegistryOutage is the resilience regression for the
// lease-renewal path: a registry server is killed mid-lease and restarted
// before the lease lapses. The renewal loop, running through a resilience
// policy, must ride out the outage — the entry never expires and is never
// re-published, so consumers observe one continuous registration.
func TestLeaseSurvivesRegistryOutage(t *testing.T) {
	reg := New()
	rs := startRestartable(t, NewServer(reg))
	defer rs.kill()

	policy, err := resilience.New(
		resilience.WithMaxAttempts(4),
		resilience.WithBackoff(5*time.Millisecond, 40*time.Millisecond),
		resilience.WithTelemetry(telemetry.Disabled()),
	)
	if err != nil {
		t.Fatal(err)
	}
	remote := NewRemote("http://" + rs.addr)
	remote.Policy = policy

	xml := wstimeWSDL(t)
	const lease = 2 * time.Second
	keeper, err := KeepLease(remote, Entry{Name: "Fluid", WSDL: xml}, lease, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer keeper.Stop()
	key := keeper.Key()
	if _, ok := reg.Get(key); !ok {
		t.Fatal("leased entry missing after publish")
	}

	// Let a few renewals land, then take the registry down for an outage
	// that is long against the renew interval but short against the lease.
	time.Sleep(200 * time.Millisecond)
	rs.kill()
	time.Sleep(500 * time.Millisecond)
	rs.restart()

	// After recovery, renewals must resume and keep the entry alive well
	// past where the lease would have lapsed without them.
	deadline := time.Now().Add(lease + lease/2)
	for time.Now().Before(deadline) {
		if _, ok := reg.Get(key); !ok {
			t.Fatal("leased entry expired during/after registry outage")
		}
		time.Sleep(50 * time.Millisecond)
	}
	renewals, failures, republishes := keeper.Stats()
	if renewals == 0 {
		t.Fatal("no successful renewals recorded")
	}
	if republishes != 0 {
		t.Fatalf("entry was re-published %d times; lease should never have lapsed", republishes)
	}
	t.Logf("renewals=%d failures=%d republishes=%d", renewals, failures, republishes)
	if e, ok := reg.Get(key); !ok || e.Name != "Fluid" {
		t.Fatalf("final get = %+v ok=%v", e, ok)
	}
}

// TestLeaseKeeperRepublishesAfterLapse covers the recovery path the
// outage test must avoid: when an outage outlasts the lease, the keeper
// re-publishes under the same key instead of leaking a dead registration.
func TestLeaseKeeperRepublishesAfterLapse(t *testing.T) {
	reg := New()
	xml := wstimeWSDL(t)
	keeper, err := KeepLease(reg, Entry{Name: "Lazarus", WSDL: xml}, 40*time.Millisecond, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer keeper.Stop()
	key := keeper.Key()

	// Force a lapse by removing the entry out from under the keeper —
	// the next renewal sees "no entry" and must re-publish.
	if err := reg.Remove(key); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, _, republishes := keeper.Stats(); republishes > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("keeper never re-published after lapse")
		}
		time.Sleep(10 * time.Millisecond)
	}
	e, ok := reg.Get(key)
	if !ok || e.Name != "Lazarus" || e.Key != key {
		t.Fatalf("re-published entry = %+v ok=%v (want same key %q)", e, ok, key)
	}
	if reg.Len() != 1 {
		t.Fatalf("len = %d; republish must not duplicate", reg.Len())
	}
}

// steppedClock is a mutex-guarded manual clock safe to advance from the
// test goroutine while server handler goroutines read it.
type steppedClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *steppedClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *steppedClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// TestRemoteLeaseRoundTrip exercises publishLeased/renew over the SOAP
// wire against a clock-stepped registry.
func TestRemoteLeaseRoundTrip(t *testing.T) {
	clk := &steppedClock{now: time.Unix(9000, 0)}
	reg := NewWithClock(clk.Now)
	rs := startRestartable(t, NewServer(reg))
	defer rs.kill()
	remote := NewRemote("http://" + rs.addr)

	xml := wstimeWSDL(t)
	key, err := remote.PublishLeased(Entry{Name: "V", WSDL: xml}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(20 * time.Second)
	if err := remote.Renew(key); err != nil {
		t.Fatal(err)
	}
	clk.Advance(20 * time.Second)
	if _, ok := remote.Get(key); !ok {
		t.Fatal("renewed entry should survive")
	}
	clk.Advance(time.Minute)
	if err := remote.Renew(key); err == nil {
		t.Fatal("renewing a lapsed entry should fail over the wire")
	}
	if _, ok := remote.Get(key); ok {
		t.Fatal("lapsed entry should be gone")
	}
	if err := remote.Renew("ghost"); err == nil {
		t.Fatal("renewing unknown key should fail")
	}
}
