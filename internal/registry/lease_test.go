package registry

import (
	"testing"
	"time"

	"harness2/internal/wsdl"
)

func leasedRegistry(t *testing.T) (*Registry, *time.Time, string) {
	t.Helper()
	now := time.Unix(5000, 0)
	r := NewWithClock(func() time.Time { return now })
	d, err := wsdl.Generate(wsdl.WSTimeSpec(), wsdl.EndpointSet{SOAPAddress: "http://h/t"})
	if err != nil {
		t.Fatal(err)
	}
	return r, &now, d.String()
}

func TestLeaseExpiryHidesEntry(t *testing.T) {
	r, now, xml := leasedRegistry(t)
	key, err := r.PublishLeased(Entry{Name: "Volatile", WSDL: xml}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Publish(Entry{Name: "Persistent", WSDL: xml}); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("len = %d", r.Len())
	}
	*now = now.Add(time.Minute)
	// All read paths must hide the lapsed entry.
	if r.Len() != 1 {
		t.Fatalf("len after expiry = %d", r.Len())
	}
	if _, ok := r.Get(key); ok {
		t.Fatal("Get returned an expired entry")
	}
	if got := r.FindByName("Volatile"); len(got) != 0 {
		t.Fatalf("FindByName = %v", got)
	}
	if got := r.List(); len(got) != 1 || got[0].Name != "Persistent" {
		t.Fatalf("List = %v", got)
	}
	got, err := r.FindByQuery("//service")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("FindByQuery = %v", got)
	}
	// A write sweeps the corpse: republishing under the same name works
	// and the old key is really gone.
	if _, err := r.PublishLeased(Entry{Name: "Volatile", WSDL: xml}, time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := r.Renew(key); err == nil {
		t.Fatal("renewing an expired key should fail")
	}
}

func TestRenewExtendsLease(t *testing.T) {
	r, now, xml := leasedRegistry(t)
	key, err := r.PublishLeased(Entry{Name: "V", WSDL: xml}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		*now = now.Add(20 * time.Second)
		if err := r.Renew(key); err != nil {
			t.Fatalf("renew %d: %v", i, err)
		}
	}
	if _, ok := r.Get(key); !ok {
		t.Fatal("renewed entry should survive")
	}
	// Stop renewing: it lapses.
	*now = now.Add(time.Minute)
	if _, ok := r.Get(key); ok {
		t.Fatal("entry should lapse once renewals stop")
	}
}

func TestRenewPersistentNoop(t *testing.T) {
	r, now, xml := leasedRegistry(t)
	key, err := r.Publish(Entry{Name: "P", WSDL: xml})
	if err != nil {
		t.Fatal(err)
	}
	*now = now.Add(24 * time.Hour)
	if err := r.Renew(key); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Get(key); !ok {
		t.Fatal("persistent entry should never lapse")
	}
	if err := r.Renew("ghost"); err == nil {
		t.Fatal("renewing unknown key should fail")
	}
}

func TestTModelFindSkipsExpired(t *testing.T) {
	r, now, _ := leasedRegistry(t)
	d, _ := wsdl.Generate(wsdl.MatMulSpec(), wsdl.EndpointSet{XDRAddress: "h:1"})
	if _, err := r.PublishLeased(Entry{Name: "M", WSDL: d.String(),
		TModels: TModelsFor(d)}, time.Second); err != nil {
		t.Fatal(err)
	}
	if got := r.FindByTModel("uddi:harness2:binding:xdr"); len(got) != 1 {
		t.Fatalf("find = %v", got)
	}
	*now = now.Add(time.Hour)
	if got := r.FindByTModel("uddi:harness2:binding:xdr"); len(got) != 0 {
		t.Fatalf("expired find = %v", got)
	}
}
