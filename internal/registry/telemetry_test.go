package registry

import (
	"testing"
	"time"

	"harness2/internal/telemetry"
)

// TestRegistryMetrics checks the S27 registry instrument set: per-op
// latency histograms, the live-entry and live-lease gauges, and the
// lease-expiration counter.
func TestRegistryMetrics(t *testing.T) {
	reg := telemetry.New()
	clock := time.Unix(1000, 0)
	r := NewWithClock(func() time.Time { return clock })
	r.SetTelemetry(reg)

	w, _ := matmulWSDL(t)
	if _, err := r.Publish(Entry{Name: "Persistent", WSDL: w}); err != nil {
		t.Fatal(err)
	}
	key, err := r.PublishLeased(Entry{Name: "Volatile", WSDL: w}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.FindByName("Volatile"); len(got) != 1 {
		t.Fatalf("FindByName = %d entries", len(got))
	}
	if _, ok := r.Get(key); !ok {
		t.Fatal("Get failed")
	}

	lat := reg.HistogramVec("harness_registry_op_latency_ns", "op")
	for op, want := range map[string]uint64{"publish": 2, "find-name": 1, "get": 1} {
		if got := lat.With(op).Count(); got != want {
			t.Errorf("latency count for %s = %d, want %d", op, got, want)
		}
	}
	if g := reg.Gauge("harness_registry_entries").Value(); g != 2 {
		t.Fatalf("entries gauge = %d, want 2", g)
	}
	if g := reg.Gauge("harness_registry_leases").Value(); g != 1 {
		t.Fatalf("leases gauge = %d, want 1", g)
	}

	// Expire the lease: the next mutating op collects it.
	clock = clock.Add(time.Minute)
	if _, err := r.Publish(Entry{Name: "Another", WSDL: w}); err != nil {
		t.Fatal(err)
	}
	if c := reg.Counter("harness_registry_lease_expirations_total").Value(); c != 1 {
		t.Fatalf("expirations = %d, want 1", c)
	}
	if g := reg.Gauge("harness_registry_leases").Value(); g != 0 {
		t.Fatalf("leases gauge after expiry = %d, want 0", g)
	}
	if g := reg.Gauge("harness_registry_entries").Value(); g != 2 {
		t.Fatalf("entries gauge after expiry = %d, want 2", g)
	}
}
