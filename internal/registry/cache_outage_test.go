package registry

import (
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"harness2/internal/resilience/chaos"
)

// chaosRemote builds a registry server plus a Remote whose endpoint is
// chaos-injected with the given spec.
func chaosRemote(t *testing.T, spec string) (*Registry, *Remote) {
	t.Helper()
	reg := New()
	srv := httptest.NewServer(NewServer(reg))
	t.Cleanup(srv.Close)
	inj, err := chaos.NewFromSpec(1, spec)
	if err != nil {
		t.Fatal(err)
	}
	rem := NewRemote(srv.URL)
	rem.Chaos = inj
	return reg, rem
}

// TestRemoteGetDistinguishesOutageFromMiss is the regression for the old
// behaviour where any transport error read as "not found": GetErr must
// wrap ErrUnavailable on an injected endpoint fault, and only a
// reachable registry's answer may report ok=false with a nil error.
func TestRemoteGetDistinguishesOutageFromMiss(t *testing.T) {
	reg, rem := chaosRemote(t, "error:1@registry/get/*#1")
	key, err := reg.Publish(Entry{Name: "WSTime", WSDL: wstimeWSDL(t)})
	if err != nil {
		t.Fatal(err)
	}
	// Injected fault: must be an outage, not a miss.
	if _, ok, err := rem.GetErr(key); ok || !errors.Is(err, ErrUnavailable) {
		t.Fatalf("chaos call: ok=%v err=%v, want ErrUnavailable", ok, err)
	}
	// Budget spent: the entry is there.
	if e, ok, err := rem.GetErr(key); !ok || err != nil || e.Name != "WSTime" {
		t.Fatalf("after chaos: e=%+v ok=%v err=%v", e, ok, err)
	}
	// A genuinely absent key is an authoritative miss, not an error.
	if _, ok, err := rem.GetErr("nope"); ok || err != nil {
		t.Fatalf("miss: ok=%v err=%v", ok, err)
	}
}

// TestRemoteFindByNameDistinguishesOutage mirrors the Get regression for
// the name index.
func TestRemoteFindByNameDistinguishesOutage(t *testing.T) {
	reg, rem := chaosRemote(t, "error:1@registry/findByName/*#1")
	if _, err := reg.Publish(Entry{Name: "WSTime", WSDL: wstimeWSDL(t)}); err != nil {
		t.Fatal(err)
	}
	if _, err := rem.FindByNameErr("WSTime"); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("chaos call: err=%v, want ErrUnavailable", err)
	}
	if es, err := rem.FindByNameErr("WSTime"); err != nil || len(es) != 1 {
		t.Fatalf("after chaos: %v err=%v", es, err)
	}
	// An empty result from a live registry is authoritative.
	if es, err := rem.FindByNameErr("Ghost"); err != nil || len(es) != 0 {
		t.Fatalf("empty: %v err=%v", es, err)
	}
}

// TestCacheNeverNegativeCachesOutage is the satellite regression: a
// Cache over a chaos-injected Remote must not turn one failed lookup
// into a TTL-long "not found".
func TestCacheNeverNegativeCachesOutage(t *testing.T) {
	reg, rem := chaosRemote(t, "error:1@registry/get/*#1; error:1@registry/findByName/*#1")
	key, err := reg.Publish(Entry{Name: "WSTime", WSDL: wstimeWSDL(t)})
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache(rem, time.Hour)
	// First calls hit the injected faults; the cache reports the outage.
	if _, ok, err := cache.GetErr(key); ok || err == nil {
		t.Fatalf("get during outage: ok=%v err=%v", ok, err)
	}
	if _, err := cache.FindByNameErr("WSTime"); err == nil {
		t.Fatal("find during outage should error")
	}
	// Immediately after — same cache, TTL untouched — both must succeed:
	// the failed fills were not cached.
	if _, ok, err := cache.GetErr(key); !ok || err != nil {
		t.Fatalf("get after outage: ok=%v err=%v", ok, err)
	}
	if es, err := cache.FindByNameErr("WSTime"); err != nil || len(es) != 1 {
		t.Fatalf("find after outage: %v err=%v", es, err)
	}
	// And authoritative misses ARE still cached: hit counters move only
	// for the miss slot, the upstream sees one call.
	if _, ok := cache.Get("ghost"); ok {
		t.Fatal("ghost should miss")
	}
	if cache.gets.Len() == 0 {
		t.Fatal("authoritative results should be cached")
	}
}
