package registry

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// countingLookup is a Lookup stub that counts upstream calls and lets
// tests control results.
type countingLookup struct {
	mu      sync.Mutex
	gets    int32
	finds   int32
	queries int32
	entries map[string]Entry
	byName  map[string][]Entry
	queryFn func(string) ([]Entry, error)
	// block, when non-nil, is received from inside FindByName so tests
	// can hold concurrent callers inside one upstream call.
	block chan struct{}
}

func (c *countingLookup) Publish(e Entry) (string, error) { return e.Key, nil }
func (c *countingLookup) Remove(key string) error         { return nil }

func (c *countingLookup) Get(key string) (Entry, bool) {
	atomic.AddInt32(&c.gets, 1)
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	return e, ok
}

func (c *countingLookup) FindByName(name string) []Entry {
	atomic.AddInt32(&c.finds, 1)
	if c.block != nil {
		<-c.block
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.byName[name]
}

func (c *countingLookup) FindByQuery(q string) ([]Entry, error) {
	atomic.AddInt32(&c.queries, 1)
	if c.queryFn != nil {
		return c.queryFn(q)
	}
	return nil, nil
}

func TestCacheTTLExpiry(t *testing.T) {
	src := &countingLookup{entries: map[string]Entry{"k": {Key: "k", Name: "svc"}}}
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	c := NewCacheWithClock(src, time.Minute, clock)

	for i := 0; i < 5; i++ {
		if e, ok := c.Get("k"); !ok || e.Key != "k" {
			t.Fatalf("get %d: %v %v", i, e, ok)
		}
	}
	if n := atomic.LoadInt32(&src.gets); n != 1 {
		t.Fatalf("expected 1 upstream get within TTL, got %d", n)
	}
	now = now.Add(time.Minute + time.Second)
	if _, ok := c.Get("k"); !ok {
		t.Fatal("get after expiry")
	}
	if n := atomic.LoadInt32(&src.gets); n != 2 {
		t.Fatalf("expected refetch after TTL, got %d upstream gets", n)
	}
}

func TestCacheLeaseClampsTTL(t *testing.T) {
	src := &countingLookup{byName: map[string][]Entry{
		"svc": {{Key: "k", Name: "svc", LeaseRemaining: 10 * time.Second}},
	}}
	now := time.Unix(0, 0)
	c := NewCacheWithClock(src, time.Hour, func() time.Time { return now })

	c.FindByName("svc")
	now = now.Add(9 * time.Second)
	c.FindByName("svc")
	if n := atomic.LoadInt32(&src.finds); n != 1 {
		t.Fatalf("within lease: want 1 upstream find, got %d", n)
	}
	// Past the lease but far inside the nominal TTL: must refetch.
	now = now.Add(2 * time.Second)
	c.FindByName("svc")
	if n := atomic.LoadInt32(&src.finds); n != 2 {
		t.Fatalf("lease expiry must invalidate despite TTL; got %d upstream finds", n)
	}
}

func TestCacheInvalidation(t *testing.T) {
	src := &countingLookup{
		entries: map[string]Entry{"k": {Key: "k", Name: "svc"}},
		byName:  map[string][]Entry{"svc": {{Key: "k", Name: "svc"}}},
	}
	c := NewCacheWithClock(src, time.Hour, func() time.Time { return time.Unix(0, 0) })

	c.Get("k")
	c.FindByName("svc")
	c.InvalidateKey("k")
	c.Get("k")
	if n := atomic.LoadInt32(&src.gets); n != 2 {
		t.Fatalf("InvalidateKey: want 2 upstream gets, got %d", n)
	}
	c.InvalidateName("svc")
	c.FindByName("svc")
	if n := atomic.LoadInt32(&src.finds); n != 2 {
		t.Fatalf("InvalidateName: want 2 upstream finds, got %d", n)
	}
	// Writes through the cache clear everything.
	if _, err := c.Publish(Entry{Key: "k2", Name: "svc"}); err != nil {
		t.Fatal(err)
	}
	c.Get("k")
	c.FindByName("svc")
	if atomic.LoadInt32(&src.gets) != 3 || atomic.LoadInt32(&src.finds) != 3 {
		t.Fatalf("publish must invalidate: gets=%d finds=%d",
			atomic.LoadInt32(&src.gets), atomic.LoadInt32(&src.finds))
	}
}

func TestCacheQueryErrorsNotCached(t *testing.T) {
	fail := true
	src := &countingLookup{queryFn: func(q string) ([]Entry, error) {
		if fail {
			return nil, fmt.Errorf("registry down")
		}
		return []Entry{{Key: "k"}}, nil
	}}
	c := NewCacheWithClock(src, time.Hour, func() time.Time { return time.Unix(0, 0) })

	if _, err := c.FindByQuery("//q"); err == nil {
		t.Fatal("expected error")
	}
	fail = false
	got, err := c.FindByQuery("//q")
	if err != nil || len(got) != 1 {
		t.Fatalf("error must not be cached: %v %v", got, err)
	}
	if n := atomic.LoadInt32(&src.queries); n != 2 {
		t.Fatalf("want 2 upstream queries, got %d", n)
	}
	// The successful result is cached.
	c.FindByQuery("//q")
	if n := atomic.LoadInt32(&src.queries); n != 2 {
		t.Fatalf("success must be cached, got %d upstream queries", n)
	}
}

// TestCacheSingleflight holds the upstream inside one FindByName while a
// crowd of goroutines misses on the same name: exactly one upstream call
// may happen.
func TestCacheSingleflight(t *testing.T) {
	src := &countingLookup{
		byName: map[string][]Entry{"svc": {{Key: "k", Name: "svc"}}},
		block:  make(chan struct{}),
	}
	c := NewCacheWithClock(src, time.Hour, time.Now)

	const callers = 32
	var wg sync.WaitGroup
	results := make([][]Entry, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = c.FindByName("svc")
		}(i)
	}
	// Let the losers queue up behind the filling goroutine, then release.
	for atomic.LoadInt32(&src.finds) == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	close(src.block)
	wg.Wait()
	if n := atomic.LoadInt32(&src.finds); n != 1 {
		t.Fatalf("singleflight violated: %d upstream finds", n)
	}
	for i, r := range results {
		if len(r) != 1 || r[0].Key != "k" {
			t.Fatalf("caller %d got %v", i, r)
		}
	}
}

func TestCacheDisabledPassesThrough(t *testing.T) {
	src := &countingLookup{entries: map[string]Entry{"k": {Key: "k"}}}
	c := NewCache(src, 0)
	for i := 0; i < 3; i++ {
		c.Get("k")
	}
	if n := atomic.LoadInt32(&src.gets); n != 3 {
		t.Fatalf("ttl=0 must not cache: got %d upstream gets", n)
	}
}

// BenchmarkDiscoveryCache measures the steady-state hit path and the
// pass-through overhead of a disabled cache — the two numbers the E14
// gate watches.
func BenchmarkDiscoveryCache(b *testing.B) {
	src := &countingLookup{entries: map[string]Entry{"k": {Key: "k", Name: "svc"}}}
	b.Run("hit", func(b *testing.B) {
		c := NewCacheWithClock(src, time.Hour, time.Now)
		c.Get("k")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Get("k")
		}
	})
	b.Run("disabled", func(b *testing.B) {
		c := NewCache(src, 0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Get("k")
		}
	})
	b.Run("direct", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			src.Get("k")
		}
	})
}

// TestCacheNegativeTTLShorter is the regression test for the hot-miss
// stampede after service death: an authoritative miss must be cached
// (one upstream call absorbs the stampede), but under the SEPARATE
// negative TTL — shorter than the positive one — so the re-published
// service reappears well before a positive-TTL cache would have noticed.
func TestCacheNegativeTTLShorter(t *testing.T) {
	src := &countingLookup{byName: map[string][]Entry{}}
	now := time.Unix(0, 0)
	c := NewCacheWithClock(src, time.Minute, func() time.Time { return now })
	c.SetNegativeTTL(5 * time.Second)

	// The service is dead: a crowd of resolvers produces ONE upstream call.
	for i := 0; i < 50; i++ {
		if es := c.FindByName("dead"); len(es) != 0 {
			t.Fatalf("resolve %d: %v", i, es)
		}
	}
	if n := atomic.LoadInt32(&src.finds); n != 1 {
		t.Fatalf("negative result not cached: %d upstream finds", n)
	}

	// The service comes back. Within the negative TTL the miss is still
	// served...
	src.mu.Lock()
	src.byName["dead"] = []Entry{{Key: "k", Name: "dead"}}
	src.mu.Unlock()
	now = now.Add(4 * time.Second)
	if es := c.FindByName("dead"); len(es) != 0 {
		t.Fatalf("inside negative TTL: %v", es)
	}
	// ...but past it — far inside the 1-minute positive TTL — the
	// re-publication is visible again.
	now = now.Add(2 * time.Second)
	if es := c.FindByName("dead"); len(es) != 1 {
		t.Fatal("re-published service hidden past the negative TTL")
	}

	// Get misses take the same negative TTL.
	if _, ok := c.Get("ghost"); ok {
		t.Fatal("ghost should miss")
	}
	gets := atomic.LoadInt32(&src.gets)
	if _, ok := c.Get("ghost"); ok || atomic.LoadInt32(&src.gets) != gets {
		t.Fatal("negative Get result not cached")
	}
	now = now.Add(6 * time.Second)
	c.Get("ghost")
	if atomic.LoadInt32(&src.gets) != gets+1 {
		t.Fatal("negative Get slot should expire under the negative TTL")
	}
}

// TestCacheNegativeTTLDefault checks the default: a quarter of the
// positive TTL.
func TestCacheNegativeTTLDefault(t *testing.T) {
	src := &countingLookup{byName: map[string][]Entry{}}
	now := time.Unix(0, 0)
	c := NewCacheWithClock(src, time.Minute, func() time.Time { return now })

	c.FindByName("dead")
	src.mu.Lock()
	src.byName["dead"] = []Entry{{Key: "k", Name: "dead"}}
	src.mu.Unlock()
	// ttl/4 = 15s: hidden at 14s, visible at 16s.
	now = now.Add(14 * time.Second)
	if es := c.FindByName("dead"); len(es) != 0 {
		t.Fatalf("at 14s: %v", es)
	}
	now = now.Add(2 * time.Second)
	if es := c.FindByName("dead"); len(es) != 1 {
		t.Fatal("negative default TTL must be ttl/4")
	}
}
