package registry

import (
	"strings"
	"sync"
	"time"
)

// LeaseHolder is the publication surface a lease keeper needs; it is
// satisfied by both *Registry (co-located) and *Remote (network), so a
// component keeps its registration alive the same way wherever the
// registry runs.
type LeaseHolder interface {
	PublishLeased(e Entry, lease time.Duration) (string, error)
	Renew(key string) error
}

var (
	_ LeaseHolder = (*Registry)(nil)
	_ LeaseHolder = (*Remote)(nil)
)

// LeaseKeeper keeps one leased registration alive: it publishes the entry
// once, then renews it every Interval until stopped. A failed renewal is
// retried on the next tick (the holder's own resilience policy handles
// in-call retries); if the registry reports the lease lapsed ("no entry"),
// the keeper re-publishes under the same key — keyed publication is
// idempotent, so recovery after an outage longer than the lease is
// automatic and produces no duplicate entries.
type LeaseKeeper struct {
	holder   LeaseHolder
	entry    Entry
	lease    time.Duration
	interval time.Duration

	mu          sync.Mutex
	key         string
	renewals    int
	failures    int
	republishes int

	stop chan struct{}
	done chan struct{}
}

// KeepLease publishes e with the given lease and starts a renewal loop
// ticking every interval. The initial publication is synchronous: an
// error here means the registration never existed and no keeper runs.
func KeepLease(h LeaseHolder, e Entry, lease, interval time.Duration) (*LeaseKeeper, error) {
	key, err := h.PublishLeased(e, lease)
	if err != nil {
		return nil, err
	}
	e.Key = key
	k := &LeaseKeeper{
		holder:   h,
		entry:    e,
		lease:    lease,
		interval: interval,
		key:      key,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go k.loop()
	return k, nil
}

// Key returns the registration key assigned at publication.
func (k *LeaseKeeper) Key() string {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.key
}

// Stats reports renewal-loop counters: successful renewals, failed
// renewal attempts, and re-publications after a lapsed lease.
func (k *LeaseKeeper) Stats() (renewals, failures, republishes int) {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.renewals, k.failures, k.republishes
}

// Stop halts the renewal loop and waits for it to exit. The registration
// itself is left to lapse at its lease expiry.
func (k *LeaseKeeper) Stop() {
	select {
	case <-k.stop:
	default:
		close(k.stop)
	}
	<-k.done
}

func (k *LeaseKeeper) loop() {
	defer close(k.done)
	t := time.NewTicker(k.interval)
	defer t.Stop()
	for {
		select {
		case <-k.stop:
			return
		case <-t.C:
			k.tick()
		}
	}
}

// lapsed recognises the registry's "no entry" renewal failure, which may
// arrive wrapped or flattened into a SOAP fault string.
func lapsed(err error) bool {
	return err != nil && strings.Contains(err.Error(), "no entry")
}

func (k *LeaseKeeper) tick() {
	err := k.holder.Renew(k.Key())
	k.mu.Lock()
	defer k.mu.Unlock()
	if err == nil {
		k.renewals++
		return
	}
	k.failures++
	if !lapsed(err) {
		return // transient: try again next tick
	}
	// The lease expired (e.g. an outage outlasted it): re-publish under
	// the same key so consumers observe one continuous registration.
	if key, perr := k.holder.PublishLeased(k.entry, k.lease); perr == nil {
		k.key = key
		k.republishes++
	}
}
