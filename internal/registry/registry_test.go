package registry

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"harness2/internal/wsdl"
)

func matmulWSDL(t testing.TB) (string, *wsdl.Definitions) {
	t.Helper()
	d, err := wsdl.Generate(wsdl.MatMulSpec(), wsdl.EndpointSet{
		SOAPAddress: "http://host:8080/matmul",
		XDRAddress:  "host:9010",
	})
	if err != nil {
		t.Fatal(err)
	}
	return d.String(), d
}

func wstimeWSDL(t *testing.T) string {
	t.Helper()
	d, err := wsdl.Generate(wsdl.WSTimeSpec(), wsdl.EndpointSet{
		SOAPAddress: "http://host:8080/time",
	})
	if err != nil {
		t.Fatal(err)
	}
	return d.String()
}

func TestPublishGetRemove(t *testing.T) {
	r := New()
	xml, defs := matmulWSDL(t)
	key, err := r.Publish(Entry{Name: "MatMul", Business: "nodeA", WSDL: xml, TModels: TModelsFor(defs)})
	if err != nil {
		t.Fatal(err)
	}
	if key == "" {
		t.Fatal("empty key")
	}
	e, ok := r.Get(key)
	if !ok || e.Name != "MatMul" || e.Business != "nodeA" {
		t.Fatalf("get = %+v ok=%v", e, ok)
	}
	if r.Len() != 1 {
		t.Fatalf("len = %d", r.Len())
	}
	if err := r.Remove(key); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Get(key); ok {
		t.Fatal("entry should be gone")
	}
	if err := r.Remove(key); err == nil {
		t.Fatal("double remove should error")
	}
}

func TestPublishValidation(t *testing.T) {
	r := New()
	if _, err := r.Publish(Entry{Name: "", WSDL: "<definitions/>"}); err == nil {
		t.Error("unnamed entry should fail")
	}
	if _, err := r.Publish(Entry{Name: "x", WSDL: "not xml"}); err == nil {
		t.Error("unparsable WSDL should fail")
	}
	if _, err := r.Publish(Entry{Name: "x", WSDL: "<notwsdl/>"}); err == nil {
		t.Error("non-WSDL XML should fail")
	}
}

func TestRepublishReplacesAndReindexes(t *testing.T) {
	r := New()
	xml, _ := matmulWSDL(t)
	key, err := r.Publish(Entry{Key: "fixed", Name: "MatMul", WSDL: xml})
	if err != nil || key != "fixed" {
		t.Fatalf("key=%q err=%v", key, err)
	}
	// Republish under a new name: old name index entry must vanish.
	if _, err := r.Publish(Entry{Key: "fixed", Name: "MatMulV2", WSDL: xml}); err != nil {
		t.Fatal(err)
	}
	if got := r.FindByName("MatMul"); len(got) != 0 {
		t.Fatalf("stale name index: %v", got)
	}
	if got := r.FindByName("MatMulV2"); len(got) != 1 {
		t.Fatalf("new name missing: %v", got)
	}
	if r.Len() != 1 {
		t.Fatalf("len = %d", r.Len())
	}
}

func TestFindByName(t *testing.T) {
	r := New()
	xml, _ := matmulWSDL(t)
	for i := 0; i < 3; i++ {
		if _, err := r.Publish(Entry{Name: "MatMul", Business: fmt.Sprintf("node%d", i), WSDL: xml}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Publish(Entry{Name: "Other", WSDL: wstimeWSDL(t)}); err != nil {
		t.Fatal(err)
	}
	got := r.FindByName("MatMul")
	if len(got) != 3 {
		t.Fatalf("found %d", len(got))
	}
	if len(r.FindByName("nope")) != 0 {
		t.Fatal("miss should return empty")
	}
}

func TestFindByTModel(t *testing.T) {
	r := New()
	xml, defs := matmulWSDL(t)
	tms := TModelsFor(defs)
	if len(tms) != 2 { // soap + xdr
		t.Fatalf("tmodels = %v", tms)
	}
	if _, err := r.Publish(Entry{Name: "MatMul", WSDL: xml, TModels: tms}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Publish(Entry{Name: "Time", WSDL: wstimeWSDL(t), TModels: []string{"uddi:harness2:binding:soap"}}); err != nil {
		t.Fatal(err)
	}
	if got := r.FindByTModel("uddi:harness2:binding:xdr"); len(got) != 1 || got[0].Name != "MatMul" {
		t.Fatalf("xdr find = %v", got)
	}
	if got := r.FindByTModel("uddi:harness2:binding:soap"); len(got) != 2 {
		t.Fatalf("soap find = %v", got)
	}
}

func TestFindByQuery(t *testing.T) {
	r := New()
	xml, _ := matmulWSDL(t)
	if _, err := r.Publish(Entry{Name: "MatMul", WSDL: xml}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Publish(Entry{Name: "Time", WSDL: wstimeWSDL(t)}); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		q    string
		want int
	}{
		{"//binding/xdr:binding", 1},
		{"//binding/soap:binding", 2},
		{"//service[@name='MatMulService']", 1},
		{"//part[@type='xsd:ArrayOfDouble']", 1},
		{"//operation[@name='getTime']", 1},
		{"//operation[@name='nothing']", 0},
	}
	for _, c := range cases {
		got, err := r.FindByQuery(c.q)
		if err != nil {
			t.Errorf("query %q: %v", c.q, err)
			continue
		}
		if len(got) != c.want {
			t.Errorf("query %q: got %d want %d", c.q, len(got), c.want)
		}
	}
	if _, err := r.FindByQuery("not a query"); err == nil {
		t.Error("bad query should error")
	}
}

func TestTModelRegistration(t *testing.T) {
	r := New()
	for _, tm := range WellKnownTModels() {
		if err := r.PublishTModel(tm); err != nil {
			t.Fatal(err)
		}
	}
	tm, ok := r.TModelByKey("uddi:harness2:binding:xdr")
	if !ok || !strings.Contains(tm.Name, "XDR") {
		t.Fatalf("tm = %+v ok=%v", tm, ok)
	}
	if err := r.PublishTModel(TModel{}); err == nil {
		t.Fatal("empty tModel should fail")
	}
}

func TestListSorted(t *testing.T) {
	r := New()
	xml, _ := matmulWSDL(t)
	for i := 0; i < 5; i++ {
		if _, err := r.Publish(Entry{Name: "S", WSDL: xml}); err != nil {
			t.Fatal(err)
		}
	}
	list := r.List()
	if len(list) != 5 {
		t.Fatalf("list = %d", len(list))
	}
	for i := 1; i < len(list); i++ {
		if list[i-1].Key >= list[i].Key {
			t.Fatal("list not sorted by key")
		}
	}
}

func TestConcurrentPublishFind(t *testing.T) {
	r := New()
	xml, _ := matmulWSDL(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				name := fmt.Sprintf("S%d", i)
				if _, err := r.Publish(Entry{Name: name, WSDL: xml}); err != nil {
					t.Error(err)
					return
				}
				_ = r.FindByName(name)
				_, _ = r.FindByQuery("//service")
			}
		}(i)
	}
	wg.Wait()
	if r.Len() != 160 {
		t.Fatalf("len = %d", r.Len())
	}
}

func TestSOAPServerRoundTrip(t *testing.T) {
	reg := New()
	ts := httptest.NewServer(NewServer(reg))
	defer ts.Close()
	remote := NewRemote(ts.URL)

	xml, defs := matmulWSDL(t)
	key, err := remote.Publish(Entry{Name: "MatMul", Business: "nodeA", WSDL: xml, TModels: TModelsFor(defs)})
	if err != nil {
		t.Fatal(err)
	}
	if key == "" {
		t.Fatal("no key")
	}
	// The local registry must see the remotely published entry.
	if reg.Len() != 1 {
		t.Fatalf("local len = %d", reg.Len())
	}
	e, ok := remote.Get(key)
	if !ok || e.Name != "MatMul" || e.Business != "nodeA" || e.WSDL == "" {
		t.Fatalf("remote get = %+v", e)
	}
	if len(e.TModels) != 2 {
		t.Fatalf("tmodels lost: %v", e.TModels)
	}
	found := remote.FindByName("MatMul")
	if len(found) != 1 || found[0].Key != key {
		t.Fatalf("findByName = %v", found)
	}
	qfound, err := remote.FindByQuery("//binding/xdr:binding")
	if err != nil || len(qfound) != 1 {
		t.Fatalf("findByQuery = %v err=%v", qfound, err)
	}
	// Round-trip: the WSDL fetched through SOAP must still parse.
	if _, err := wsdl.ParseString(qfound[0].WSDL); err != nil {
		t.Fatalf("returned WSDL unparsable: %v", err)
	}
	if err := remote.Remove(key); err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 0 {
		t.Fatal("remove did not propagate")
	}
	if _, ok := remote.Get(key); ok {
		t.Fatal("get after remove should miss")
	}
}

func TestSOAPServerErrors(t *testing.T) {
	reg := New()
	ts := httptest.NewServer(NewServer(reg))
	defer ts.Close()
	remote := NewRemote(ts.URL)

	if _, err := remote.Publish(Entry{Name: "", WSDL: "<x/>"}); err == nil {
		t.Error("publish of invalid entry should fail remotely")
	}
	if err := remote.Remove("nope"); err == nil {
		t.Error("remove of unknown key should fail remotely")
	}
	if _, err := remote.FindByQuery("bad query"); err == nil {
		t.Error("bad query should fail remotely")
	}
	if _, ok := remote.Get("nope"); ok {
		t.Error("get of unknown key should miss")
	}
}

func TestFindByQueryEmptyResultRemote(t *testing.T) {
	reg := New()
	ts := httptest.NewServer(NewServer(reg))
	defer ts.Close()
	remote := NewRemote(ts.URL)
	got, err := remote.FindByQuery("//service")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("want empty, got %v", got)
	}
}
